package miodb_test

import (
	"fmt"

	"miodb"
)

// ExampleOpen shows the minimal lifecycle.
func ExampleOpen() {
	db, err := miodb.Open(nil)
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("city/tokyo"), []byte("37M"))
	v, _ := db.Get([]byte("city/tokyo"))
	fmt.Println(string(v))
	// Output: 37M
}

// ExampleDB_Scan shows bounded ordered iteration.
func ExampleDB_Scan() {
	db, _ := miodb.Open(nil)
	defer db.Close()
	for _, city := range []string{"lagos", "lima", "london", "luanda"} {
		db.Put([]byte("city/"+city), []byte("x"))
	}
	db.Scan([]byte("city/li"), 2, func(k, v []byte) bool {
		fmt.Println(string(k))
		return true
	})
	// Output:
	// city/lima
	// city/london
}

// ExampleDB_Write shows atomic batches.
func ExampleDB_Write() {
	db, _ := miodb.Open(nil)
	defer db.Close()

	var b miodb.Batch
	b.Put([]byte("acct/alice"), []byte("90"))
	b.Put([]byte("acct/bob"), []byte("110"))
	b.Delete([]byte("acct/mallory"))
	if err := db.Write(&b); err != nil {
		panic(err)
	}
	v, _ := db.Get([]byte("acct/bob"))
	fmt.Println(string(v))
	// Output: 110
}

// ExampleDB_Stats shows the paper's cost accounting.
func ExampleDB_Stats() {
	db, _ := miodb.Open(nil)
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 512))
	}
	db.Flush()
	st := db.Stats()
	fmt.Println(st.IntervalStall) // MioDB's elastic buffer: no write stalls
	// Output: 0s
}

// ExampleDB_NewIterator shows manual iteration with version pinning.
func ExampleDB_NewIterator() {
	db, _ := miodb.Open(nil)
	defer db.Close()
	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("a"), []byte("1"))

	it := db.NewIterator()
	defer it.Close()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fmt.Printf("%s=%s\n", it.Key(), it.Value())
	}
	// Output:
	// a=1
	// b=2
}
