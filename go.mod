module miodb

go 1.22
