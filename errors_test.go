package miodb

import (
	"errors"
	"testing"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/vlog"
)

// TestSentinelIdentity pins the one-value-per-error contract: the public
// sentinels, the kvstore contract package, and the internal layers that
// raise them all share identity, so errors.Is answers the same no matter
// which layer produced or matched the error.
func TestSentinelIdentity(t *testing.T) {
	pairs := []struct {
		name             string
		public, internal error
	}{
		{"ErrNotFound", ErrNotFound, kvstore.ErrNotFound},
		{"ErrClosed", ErrClosed, kvstore.ErrClosed},
		{"ErrDegraded", ErrDegraded, kvstore.ErrDegraded},
		{"ErrDegraded/core", ErrDegraded, core.ErrDegraded},
		{"ErrSnapshotUnsupported", ErrSnapshotUnsupported, kvstore.ErrSnapshotUnsupported},
		{"ErrSnapshotUnsupported/core", ErrSnapshotUnsupported, core.ErrSnapshotUnsupported},
		{"ErrSnapshotClosed", ErrSnapshotClosed, core.ErrSnapshotClosed},
		{"ErrValueLogCorrupt", ErrValueLogCorrupt, kvstore.ErrValueLogCorrupt},
		{"ErrValueLogCorrupt/vlog", ErrValueLogCorrupt, vlog.ErrCorrupt},
	}
	for _, p := range pairs {
		if !errors.Is(p.public, p.internal) || !errors.Is(p.internal, p.public) {
			t.Errorf("%s: public and internal sentinels are distinct values", p.name)
		}
	}
}

// TestSentinelsSurfaceThroughAPI: the sentinels are what the public API
// actually returns, not merely aliases that happen to exist.
func TestSentinelsSurfaceThroughAPI(t *testing.T) {
	db, err := Open(&Options{UseSSD: true, MemTableSize: 8 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(absent) = %v, want ErrNotFound", err)
	}
	if _, err := db.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("Snapshot on SSD store = %v, want ErrSnapshotUnsupported", err)
	}
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put on closed store = %v, want ErrClosed", err)
	}
}
