// Package histogram provides the latency-measurement machinery behind the
// paper's tail-latency tables (Tables 2 and 3) and the latency-over-time
// plot (Fig 8): a log-bucketed histogram with percentile queries, and a
// time-series recorder that bins operation latencies by elapsed time.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// bucketCount covers 1 ns .. ~18 s with ~4.6% resolution
// (64 decades of 16 sub-buckets over powers of √2 would be overkill;
// we use value = 2^(i/8), giving 8 buckets per octave).
const (
	subBucketsPerOctave = 8
	bucketCount         = 64 * subBucketsPerOctave / 2 // up to 2^32 ns ≈ 4.3 s
)

// Histogram records durations and answers percentile queries. It is safe
// for concurrent Record calls. The zero value is an empty histogram ready
// for use, so histograms can be embedded by value (stats.Recorder does).
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]int64
	count   int64
	sum     time.Duration
	min     time.Duration // valid only when count > 0
	max     time.Duration
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{}
}

func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	i := int(math.Log2(ns) * subBucketsPerOctave)
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

func bucketValue(i int) time.Duration {
	return time.Duration(math.Exp2(float64(i)/subBucketsPerOctave) + 0.5)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) { h.RecordN(d, 1) }

// RecordN adds n samples of the same duration under one lock acquisition —
// the group-commit write path records one measured latency for every
// record that rode the same commit.
func (h *Histogram) RecordN(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(d)] += n
	if h.count == 0 || d < h.min {
		h.min = d
	}
	h.count += n
	h.sum += d * time.Duration(n)
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.buckets = [bucketCount]int64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// percentileFrom answers a quantile query against raw bucket counts.
// p is clamped to [0,100]; the answer is the representative value of the
// bucket containing the p-th sample (≤5% relative error), clamped to the
// observed [min, max] — so a single-sample histogram (min == max) reports
// that sample exactly at every quantile.
func percentileFrom(buckets []int64, count int64, min, max time.Duration, p float64) time.Duration {
	if count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range buckets {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// Percentile returns the approximate latency at quantile p; p outside
// [0,100] is clamped (an out-of-range query answers the nearest valid one
// instead of walking past the last bucket).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return percentileFrom(h.buckets[:], h.count, h.min, h.max, p)
}

// Snapshot bundles the latency metrics the paper's tables report, plus
// the median the service-level benchmarks (netscale) need. Buckets carries
// the raw counts (nil when Count == 0) so snapshots from different shards
// merge without percentile-of-percentile error.
type Snapshot struct {
	Count                     int64
	Mean, P50, P90, P99, P999 time.Duration
	Min, Max                  time.Duration
	Sum                       time.Duration
	Buckets                   []int64 `json:"-"`
}

// Snapshot computes count/avg/min/max and all percentiles atomically
// under one lock acquisition, so concurrent Record calls can never yield
// a torn view (e.g. p50 > p99, or a count inconsistent with the mean).
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return Snapshot{}
	}
	return makeSnapshot(h.buckets[:], h.count, h.sum, h.min, h.max)
}

// makeSnapshot derives the full metric bundle from raw histogram state,
// copying the bucket counts so the snapshot stays immutable.
func makeSnapshot(buckets []int64, count int64, sum, min, max time.Duration) Snapshot {
	s := Snapshot{Count: count, Sum: sum, Min: min, Max: max}
	if count == 0 {
		return s
	}
	s.Mean = sum / time.Duration(count)
	s.P50 = percentileFrom(buckets, count, min, max, 50)
	s.P90 = percentileFrom(buckets, count, min, max, 90)
	s.P99 = percentileFrom(buckets, count, min, max, 99)
	s.P999 = percentileFrom(buckets, count, min, max, 99.9)
	s.Buckets = append([]int64(nil), buckets...)
	return s
}

// Merge combines two snapshots into the snapshot of the union of their
// samples, recomputing mean and percentiles from the merged bucket counts
// (exact to bucket resolution — not a lossy percentile-of-percentiles).
// Shard aggregation uses this to report store-wide per-op latencies.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	buckets := make([]int64, bucketCount)
	copy(buckets, s.Buckets)
	for i, c := range o.Buckets {
		buckets[i] += c
	}
	min := s.Min
	if o.Min < min {
		min = o.Min
	}
	max := s.Max
	if o.Max > max {
		max = o.Max
	}
	return makeSnapshot(buckets, s.Count+o.Count, s.Sum+o.Sum, min, max)
}

// String renders the snapshot in the paper's Table 2 layout.
func (s Snapshot) String() string {
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/1e3) }
	return fmt.Sprintf("avg=%sµs p90=%sµs p99=%sµs p99.9=%sµs",
		us(s.Mean), us(s.P90), us(s.P99), us(s.P999))
}

// Timeline bins per-operation latencies by wall-clock elapsed time,
// reproducing Fig 8's latency-over-time trace: each bin keeps the mean and
// max latency of operations issued during that interval, so compaction- or
// flush-induced latency spikes are visible.
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	sums   []time.Duration
	maxs   []time.Duration
	counts []int64
}

// NewTimeline starts a timeline with the given bin width.
func NewTimeline(binWidth time.Duration) *Timeline {
	return &Timeline{start: time.Now(), width: binWidth}
}

// Record logs one operation latency at the current time.
func (t *Timeline) Record(d time.Duration) {
	idx := int(time.Since(t.start) / t.width)
	t.mu.Lock()
	for len(t.sums) <= idx {
		t.sums = append(t.sums, 0)
		t.maxs = append(t.maxs, 0)
		t.counts = append(t.counts, 0)
	}
	t.sums[idx] += d
	t.counts[idx]++
	if d > t.maxs[idx] {
		t.maxs[idx] = d
	}
	t.mu.Unlock()
}

// BinWidth returns the timeline's bin width.
func (t *Timeline) BinWidth() time.Duration { return t.width }

// Bin is one timeline interval.
type Bin struct {
	Start     time.Duration
	Mean, Max time.Duration
	Count     int64
}

// Bins returns the recorded intervals in order.
func (t *Timeline) Bins() []Bin {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Bin, 0, len(t.sums))
	for i := range t.sums {
		b := Bin{Start: time.Duration(i) * t.width, Count: t.counts[i], Max: t.maxs[i]}
		if b.Count > 0 {
			b.Mean = t.sums[i] / time.Duration(b.Count)
		}
		out = append(out, b)
	}
	return out
}

// Sparkline renders max-latency bins as a compact ASCII trace — enough to
// eyeball whether a store exhibits Fig 8's periodic spikes.
func (t *Timeline) Sparkline() string {
	bins := t.Bins()
	if len(bins) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	maxv := time.Duration(1)
	for _, b := range bins {
		if b.Max > maxv {
			maxv = b.Max
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		// log scale: spikes of 100× read as near-full bars
		f := math.Log1p(float64(b.Max)) / math.Log1p(float64(maxv))
		i := int(f * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[i])
	}
	return sb.String()
}

// SpikeFactor summarizes a timeline as max-bin-latency ÷ median-bin-latency;
// a store with write stalls shows a large factor, a stall-free store ≈ 1.
func (t *Timeline) SpikeFactor() float64 {
	bins := t.Bins()
	vals := make([]float64, 0, len(bins))
	var maxv float64
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		v := float64(b.Max)
		vals = append(vals, v)
		if v > maxv {
			maxv = v
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	if med == 0 {
		return 0
	}
	return maxv / med
}
