// Package histogram provides the latency-measurement machinery behind the
// paper's tail-latency tables (Tables 2 and 3) and the latency-over-time
// plot (Fig 8): a log-bucketed histogram with percentile queries, and a
// time-series recorder that bins operation latencies by elapsed time.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// bucketCount covers 1 ns .. ~18 s with ~4.6% resolution
// (64 decades of 16 sub-buckets over powers of √2 would be overkill;
// we use value = 2^(i/8), giving 8 buckets per octave).
const (
	subBucketsPerOctave = 8
	bucketCount         = 64 * subBucketsPerOctave / 2 // up to 2^32 ns ≈ 4.3 s
)

// Histogram records durations and answers percentile queries. It is safe
// for concurrent Record calls.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	i := int(math.Log2(ns) * subBucketsPerOctave)
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

func bucketValue(i int) time.Duration {
	return time.Duration(math.Exp2(float64(i)/subBucketsPerOctave) + 0.5)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the approximate latency at quantile p in [0,100].
// The answer is the representative value of the bucket containing the
// p-th sample (≤5% relative error), clamped to the observed min/max.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Snapshot bundles the latency metrics the paper's tables report, plus
// the median the service-level benchmarks (netscale) need.
type Snapshot struct {
	Count                     int64
	Mean, P50, P90, P99, P999 time.Duration
	Max                       time.Duration
}

// Snapshot computes avg/50/90/99/99.9 percentiles in one pass.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// String renders the snapshot in the paper's Table 2 layout.
func (s Snapshot) String() string {
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/1e3) }
	return fmt.Sprintf("avg=%sµs p90=%sµs p99=%sµs p99.9=%sµs",
		us(s.Mean), us(s.P90), us(s.P99), us(s.P999))
}

// Timeline bins per-operation latencies by wall-clock elapsed time,
// reproducing Fig 8's latency-over-time trace: each bin keeps the mean and
// max latency of operations issued during that interval, so compaction- or
// flush-induced latency spikes are visible.
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	sums   []time.Duration
	maxs   []time.Duration
	counts []int64
}

// NewTimeline starts a timeline with the given bin width.
func NewTimeline(binWidth time.Duration) *Timeline {
	return &Timeline{start: time.Now(), width: binWidth}
}

// Record logs one operation latency at the current time.
func (t *Timeline) Record(d time.Duration) {
	idx := int(time.Since(t.start) / t.width)
	t.mu.Lock()
	for len(t.sums) <= idx {
		t.sums = append(t.sums, 0)
		t.maxs = append(t.maxs, 0)
		t.counts = append(t.counts, 0)
	}
	t.sums[idx] += d
	t.counts[idx]++
	if d > t.maxs[idx] {
		t.maxs[idx] = d
	}
	t.mu.Unlock()
}

// Bin is one timeline interval.
type Bin struct {
	Start     time.Duration
	Mean, Max time.Duration
	Count     int64
}

// Bins returns the recorded intervals in order.
func (t *Timeline) Bins() []Bin {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Bin, 0, len(t.sums))
	for i := range t.sums {
		b := Bin{Start: time.Duration(i) * t.width, Count: t.counts[i], Max: t.maxs[i]}
		if b.Count > 0 {
			b.Mean = t.sums[i] / time.Duration(b.Count)
		}
		out = append(out, b)
	}
	return out
}

// Sparkline renders max-latency bins as a compact ASCII trace — enough to
// eyeball whether a store exhibits Fig 8's periodic spikes.
func (t *Timeline) Sparkline() string {
	bins := t.Bins()
	if len(bins) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	maxv := time.Duration(1)
	for _, b := range bins {
		if b.Max > maxv {
			maxv = b.Max
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		// log scale: spikes of 100× read as near-full bars
		f := math.Log1p(float64(b.Max)) / math.Log1p(float64(maxv))
		i := int(f * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[i])
	}
	return sb.String()
}

// SpikeFactor summarizes a timeline as max-bin-latency ÷ median-bin-latency;
// a store with write stalls shows a large factor, a stall-free store ≈ 1.
func (t *Timeline) SpikeFactor() float64 {
	bins := t.Bins()
	vals := make([]float64, 0, len(bins))
	var maxv float64
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		v := float64(b.Max)
		vals = append(vals, v)
		if v > maxv {
			maxv = v
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	if med == 0 {
		return 0
	}
	return maxv / med
}
