package histogram

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram not all-zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P999 != 0 {
		t.Error("empty snapshot not zero")
	}
}

func TestBasicStats(t *testing.T) {
	h := New()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Microsecond || mean > 56*time.Microsecond {
		t.Errorf("Mean = %v, want ≈50.5µs", mean)
	}
	if h.Max() != 100*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Microsecond || p50 > 60*time.Microsecond {
		t.Errorf("P50 = %v, want ≈50µs", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Microsecond || p99 > 105*time.Microsecond {
		t.Errorf("P99 = %v, want ≈99µs", p99)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(samplesRaw []uint32) bool {
		if len(samplesRaw) == 0 {
			return true
		}
		h := New()
		for _, s := range samplesRaw {
			h.Record(time.Duration(s%1e9) * time.Nanosecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{10, 50, 90, 99, 99.9, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Log-bucketed: ≤ ~9% relative error per bucket.
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i+1) * time.Microsecond)
	}
	for _, p := range []float64{50, 90, 99} {
		want := float64(p) / 100 * 10000 // µs
		got := h.Percentile(p).Seconds() * 1e6
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("P%.0f = %.0fµs, want ≈%.0fµs", p, got, want)
		}
	}
}

func TestNegativeAndZeroDurations(t *testing.T) {
	h := New()
	h.Record(-5 * time.Second)
	h.Record(0)
	if h.Count() != 2 {
		t.Error("negative/zero samples dropped")
	}
	if h.Max() != 0 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d after concurrent records", h.Count())
	}
}

func TestTimelineBinsAndSpikes(t *testing.T) {
	tl := NewTimeline(5 * time.Millisecond)
	// Several flat bins, then one spiky bin: spread wall-clock time so
	// records land in distinct bins.
	for bin := 0; bin < 5; bin++ {
		lat := 10 * time.Microsecond
		if bin == 3 {
			lat = 10 * time.Millisecond // the stall spike
		}
		for i := 0; i < 10; i++ {
			tl.Record(lat)
		}
		time.Sleep(6 * time.Millisecond)
	}
	bins := tl.Bins()
	if len(bins) < 4 {
		t.Fatalf("only %d bins", len(bins))
	}
	var total int64
	for _, b := range bins {
		total += b.Count
	}
	if total != 50 {
		t.Errorf("bins hold %d samples, want 50", total)
	}
	if tl.SpikeFactor() < 10 {
		t.Errorf("SpikeFactor = %.1f, want large (spiky trace)", tl.SpikeFactor())
	}
	if tl.Sparkline() == "" {
		t.Error("empty sparkline")
	}
}

func TestTimelineFlatProfile(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	for i := 0; i < 100; i++ {
		tl.Record(20 * time.Microsecond)
	}
	if f := tl.SpikeFactor(); f > 1.5 {
		t.Errorf("flat profile SpikeFactor = %.2f", f)
	}
}

func TestZeroValueHistogram(t *testing.T) {
	// The zero value must behave like New(): stats.Recorder embeds
	// histograms by value without a constructor.
	var h Histogram
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Error("zero-value histogram not empty")
	}
	h.Record(3 * time.Microsecond)
	h.Record(9 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 3*time.Microsecond || s.Max != 9*time.Microsecond {
		t.Errorf("zero-value after records: %+v", s)
	}
}

func TestRecordNAndReset(t *testing.T) {
	var h Histogram
	h.RecordN(5*time.Microsecond, 10)
	h.RecordN(time.Microsecond, 0)  // no-op
	h.RecordN(time.Microsecond, -3) // no-op
	s := h.Snapshot()
	if s.Count != 10 || s.Mean != 5*time.Microsecond || s.Min != 5*time.Microsecond {
		t.Errorf("RecordN snapshot: %+v", s)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset left samples behind")
	}
	h.Record(time.Microsecond)
	if got := h.Snapshot(); got.Count != 1 || got.Min != time.Microsecond {
		t.Errorf("post-Reset snapshot: %+v", got)
	}
}

func TestPercentileOutOfRangeClamped(t *testing.T) {
	h := New()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got, want := h.Percentile(-10), h.Percentile(0); got != want {
		t.Errorf("Percentile(-10) = %v, want Percentile(0) = %v", got, want)
	}
	if got, want := h.Percentile(250), h.Percentile(100); got != want {
		t.Errorf("Percentile(250) = %v, want Percentile(100) = %v", got, want)
	}
	if h.Percentile(250) > h.Max() {
		t.Errorf("Percentile(250) = %v exceeds Max = %v", h.Percentile(250), h.Max())
	}
}

func TestSingleSamplePercentiles(t *testing.T) {
	// With one sample min == max: every quantile must answer that sample
	// exactly, regardless of which bucket boundary it falls on.
	for _, d := range []time.Duration{1, 777, time.Microsecond, 3*time.Millisecond + 1} {
		var h Histogram
		h.Record(d)
		for _, p := range []float64{0, 50, 99, 99.9, 100, -5, 200} {
			if got := h.Percentile(p); got != d {
				t.Errorf("single sample %v: Percentile(%v) = %v", d, p, got)
			}
		}
		s := h.Snapshot()
		if s.P50 != d || s.P999 != d || s.Min != d || s.Max != d || s.Mean != d {
			t.Errorf("single sample %v: snapshot %+v", d, s)
		}
	}
}

// TestSnapshotMonotoneUnderConcurrentRecord is the regression test for
// the torn-snapshot bug: Snapshot used to acquire the mutex separately
// for Count/Mean/each Percentile/Max, so concurrent Record calls could
// yield p50 > p99 or a count inconsistent with the mean. The whole
// snapshot is now computed under one lock; its percentiles must be
// monotone no matter how hard writers race it.
func TestSnapshotMonotoneUnderConcurrentRecord(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(1<<uint(4*g)) * time.Microsecond
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Record(d + time.Duration(i%1000)*time.Nanosecond)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			t.Fatalf("torn snapshot: p50=%v p90=%v p99=%v p99.9=%v max=%v",
				s.P50, s.P90, s.P99, s.P999, s.Max)
		}
		if s.Min > s.P50 || s.Mean > s.Max || s.Mean < s.Min {
			t.Fatalf("inconsistent snapshot: min=%v mean=%v max=%v p50=%v",
				s.Min, s.Mean, s.Max, s.P50)
		}
		if s.Mean != s.Sum/time.Duration(s.Count) {
			t.Fatalf("mean %v inconsistent with sum %v / count %d", s.Mean, s.Sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := whole.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum ||
		got.Min != want.Min || got.Max != want.Max ||
		got.Mean != want.Mean || got.P50 != want.P50 ||
		got.P90 != want.P90 || got.P99 != want.P99 || got.P999 != want.P999 {
		t.Errorf("merged snapshot differs from whole:\n got %+v\nwant %+v", got, want)
	}
	// Merging with an empty side is the identity.
	if m := got.Merge(Snapshot{}); m.Count != got.Count || m.P99 != got.P99 {
		t.Errorf("merge with empty changed the snapshot: %+v", m)
	}
	if m := (Snapshot{}).Merge(got); m.Count != got.Count || m.P999 != got.P999 {
		t.Errorf("empty merged with full lost data: %+v", m)
	}
}

func TestSnapshotString(t *testing.T) {
	h := New()
	h.Record(100 * time.Microsecond)
	s := h.Snapshot().String()
	if s == "" {
		t.Error("empty snapshot string")
	}
}
