package histogram

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram not all-zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P999 != 0 {
		t.Error("empty snapshot not zero")
	}
}

func TestBasicStats(t *testing.T) {
	h := New()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Microsecond || mean > 56*time.Microsecond {
		t.Errorf("Mean = %v, want ≈50.5µs", mean)
	}
	if h.Max() != 100*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Microsecond || p50 > 60*time.Microsecond {
		t.Errorf("P50 = %v, want ≈50µs", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Microsecond || p99 > 105*time.Microsecond {
		t.Errorf("P99 = %v, want ≈99µs", p99)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(samplesRaw []uint32) bool {
		if len(samplesRaw) == 0 {
			return true
		}
		h := New()
		for _, s := range samplesRaw {
			h.Record(time.Duration(s%1e9) * time.Nanosecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{10, 50, 90, 99, 99.9, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Log-bucketed: ≤ ~9% relative error per bucket.
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i+1) * time.Microsecond)
	}
	for _, p := range []float64{50, 90, 99} {
		want := float64(p) / 100 * 10000 // µs
		got := h.Percentile(p).Seconds() * 1e6
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("P%.0f = %.0fµs, want ≈%.0fµs", p, got, want)
		}
	}
}

func TestNegativeAndZeroDurations(t *testing.T) {
	h := New()
	h.Record(-5 * time.Second)
	h.Record(0)
	if h.Count() != 2 {
		t.Error("negative/zero samples dropped")
	}
	if h.Max() != 0 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d after concurrent records", h.Count())
	}
}

func TestTimelineBinsAndSpikes(t *testing.T) {
	tl := NewTimeline(5 * time.Millisecond)
	// Several flat bins, then one spiky bin: spread wall-clock time so
	// records land in distinct bins.
	for bin := 0; bin < 5; bin++ {
		lat := 10 * time.Microsecond
		if bin == 3 {
			lat = 10 * time.Millisecond // the stall spike
		}
		for i := 0; i < 10; i++ {
			tl.Record(lat)
		}
		time.Sleep(6 * time.Millisecond)
	}
	bins := tl.Bins()
	if len(bins) < 4 {
		t.Fatalf("only %d bins", len(bins))
	}
	var total int64
	for _, b := range bins {
		total += b.Count
	}
	if total != 50 {
		t.Errorf("bins hold %d samples, want 50", total)
	}
	if tl.SpikeFactor() < 10 {
		t.Errorf("SpikeFactor = %.1f, want large (spiky trace)", tl.SpikeFactor())
	}
	if tl.Sparkline() == "" {
		t.Error("empty sparkline")
	}
}

func TestTimelineFlatProfile(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	for i := 0; i < 100; i++ {
		tl.Record(20 * time.Microsecond)
	}
	if f := tl.SpikeFactor(); f > 1.5 {
		t.Errorf("flat profile SpikeFactor = %.2f", f)
	}
}

func TestSnapshotString(t *testing.T) {
	h := New()
	h.Record(100 * time.Microsecond)
	s := h.Snapshot().String()
	if s == "" {
		t.Error("empty snapshot string")
	}
}
