package bench

import "fmt"

// The extra experiments validate claims the paper makes in prose rather
// than in a numbered figure.

// ExtraScanSettle tests §5.2's workload-E claim: "when intensive PMTable
// compactions finish, MioDB also maintains a large sorted skip list in the
// data repository. The performance of MioDB would approach that of
// NoveLSM-NoSST for scan operations."
func ExtraScanSettle(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("extra-escan", "Workload E immediately after load vs after compactions settle", p.Out)
	const valueSize = 4 << 10
	rows := [][]string{}
	for _, kind := range []StoreKind{MioDB, NoveLSMNoSST} {
		s, err := open(p, kind)
		if err != nil {
			return nil, err
		}
		records := uint64(p.entries(valueSize))
		if _, err := YCSBLoad(s, records, valueSize); err != nil {
			return nil, err
		}
		immediate, err := YCSBRun(s, "E", p.ycsbOps()/2, records, valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil { // let the elastic buffer settle
			return nil, err
		}
		settled, err := YCSBRun(s, "E", p.ycsbOps()/2, records, valueSize, p.Seed+1, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{string(kind), f1(immediate.KIOPS), f1(settled.KIOPS)})
		s.Close()
	}
	r.Table([]string{"store", "E-immediate", "E-settled"}, rows)
	r.Printf("shape: MioDB's scan throughput right after load lags NoveLSM-NoSST (ongoing compactions, many small PMTables); once settled into the repository it approaches the single-big-skip-list result, as §5.2 predicts.")
	return r, nil
}

// ExtraNoveLSMVariants compares the paper's Figure 1 architectures:
// hierarchical NoveLSM (1(b)), flat NoveLSM (1(c)), and NoveLSM-NoSST.
// The paper states it evaluates flat "because its performance is better
// than the hierarchical NoveLSM".
func ExtraNoveLSMVariants(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("extra-novelsm", "NoveLSM architecture comparison (flat vs hierarchical vs NoSST)", p.Out)
	const valueSize = 4 << 10
	rows := [][]string{}
	for _, kind := range []StoreKind{NoveLSM, NoveLSMHier, NoveLSMNoSST} {
		s, err := open(p, kind)
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		rows = append(rows, []string{
			string(kind),
			f1(wres.KIOPS), f1(rres.KIOPS),
			fmt.Sprintf("%.1f", (st.IntervalStall+st.CumulativeStall).Seconds()*1e3),
			f2(st.WriteAmplification),
		})
		s.Close()
	}
	r.Table([]string{"variant", "fillrandom", "readrandom", "stalls-ms", "WA"}, rows)
	r.Printf("shape: flat beats hierarchical on writes (the paper's reason for evaluating flat); NoSST avoids serialization entirely at the cost of unbounded NVM growth.")
	return r, nil
}
