package bench

import (
	"fmt"
	"io"
	"time"

	"miodb/internal/histogram"
)

// Params scales and directs an experiment run. The paper's sizes are
// already divided by 1000 in this reproduction (80 GB → 80 MB, 64 MB
// memtables → 64 KB); Scale shrinks them further for quick runs
// (Scale=1.0 is the full scaled reproduction, 0.25 a smoke-test pass).
type Params struct {
	Scale float64
	Out   io.Writer
	// Seed offsets workload randomness (fixed default for repeatability).
	Seed int64
	// JSONDir, when non-empty, is where experiments that emit
	// machine-readable artifacts write their BENCH_<id>.json files.
	JSONDir string
}

func (p Params) norm() Params {
	if p.Scale <= 0 {
		p.Scale = 0.25
	}
	if p.Seed == 0 {
		p.Seed = 20230325 // the conference date; any fixed seed works
	}
	return p
}

// datasetBytes is the paper's 80 GB dataset, scaled.
func (p Params) datasetBytes() int64 { return int64(80 * float64(1<<20) * p.Scale) }

// readOps is the paper's 1 M read ops, scaled to stay proportionate.
func (p Params) readOps() int {
	n := int(20000 * p.Scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

// ycsbOps is the paper's 1 M YCSB ops, scaled.
func (p Params) ycsbOps() int {
	n := int(12000 * p.Scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

func (p Params) entries(valueSize int) int {
	n := int(p.datasetBytes() / int64(valueSize+16))
	if n < 256 {
		n = 256
	}
	return n
}

// Experiment is one reproducible paper table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params) (*Report, error)
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Motivation: stalls, deserialization, flush throughput, WA (NoveLSM & MatrixKV)", Fig2Motivation},
		{"fig6", "Micro-benchmarks: read/write throughput vs value size (in-memory mode)", Fig6MicroThroughput},
		{"table1", "Cost analysis: stalls, deserialization, flushing, WA", Table1CostAnalysis},
		{"fig7", "YCSB throughput, workloads Load and A–F (1 KB and 4 KB values)", Fig7YCSB},
		{"table2", "Tail latencies of YCSB workload A (in-memory mode)", Table2TailLatency},
		{"fig8", "Latency over time, YCSB workload A (4 KB values)", Fig8LatencyTimeline},
		{"fig9", "Sensitivity: number of levels / compaction threads", Fig9LevelSweep},
		{"fig10", "Sensitivity: dataset size vs random read/write throughput", Fig10DatasetSweep},
		{"fig11", "Write amplification vs dataset size", Fig11WriteAmp},
		{"fig12", "Sensitivity: MemTable size vs flush latency and throughput", Fig12MemtableSweep},
		{"fig13", "DRAM-NVM-SSD hierarchy: db_bench and YCSB throughput", Fig13SSDMode},
		{"table3", "Tail latencies of YCSB workload A (DRAM-NVM-SSD)", Table3SSDTailLatency},
		{"fig14", "Sensitivity: NVM buffer size (DRAM-NVM-SSD)", Fig14BufferSweep},
		{"ablation", "MioDB design ablations (one-piece flush, zero-copy, parallelism, bloom)", Ablations},
		{"concurrent", "Multi-writer throughput: group commit vs serialized writes", ConcurrentWrites},
		{"readscale", "Multi-reader throughput: epoch-pinned reads vs mutex-refcount", ReadScale},
		{"shardscale", "Sharded store: fill/readrandom throughput vs shard count", ShardScale},
		{"netscale", "Pipelined network front end: connections × window sweep over loopback", NetScale},
		{"multiget", "Versioned read API: GetMulti vs pipelined Gets at group sizes 1-16", MultiGet},
		{"stability", "Sustained-fill stability: throughput over time, tail traces, backlog vs admission control", Stability},
		{"membalance", "Adaptive memory governor: skewed shard traffic, adaptive vs static split at equal total memory", MemBalance},
		{"valuesize", "Key-value separation: WA and throughput vs value size, value log on/off at equal memory", ValueSize},
		{"torture", "Crash torture: randomized power failures, torn writes, recovery invariants", CrashTorture},
		{"extra-escan", "Bonus: workload E before vs after compactions settle (§5.2 claim)", ExtraScanSettle},
		{"extra-novelsm", "Bonus: NoveLSM flat vs hierarchical vs NoSST (§3.1 claim)", ExtraNoveLSMVariants},
	}
}

// FindExperiment looks an experiment up by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// inMemoryKinds is the §5.1–5.3 comparison set.
func inMemoryKinds() []StoreKind { return []StoreKind{MioDB, MatrixKV, NoveLSM} }

func open(p Params, kind StoreKind, mutate ...func(*Config)) (Store, error) {
	cfg := Config{Kind: kind, Simulate: true}
	for _, m := range mutate {
		m(&cfg)
	}
	return OpenStore(cfg)
}

// Fig2Motivation reproduces Figure 2: the baselines' write time split into
// stalls vs useful work, read time split into deserialization vs the
// rest, flushing throughput, and write amplification.
func Fig2Motivation(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig2", "Motivation: NoveLSM and MatrixKV costs (4 KB values)", p.Out)
	const valueSize = 4 << 10
	rows := [][]string{}
	for _, kind := range []StoreKind{NoveLSM, MatrixKV} {
		s, err := open(p, kind)
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		stall := st.IntervalStall + st.CumulativeStall
		flushMBps := 0.0
		if st.FlushTime > 0 {
			flushMBps = float64(st.FlushBytes) / st.FlushTime.Seconds() / (1 << 20)
		}
		rows = append(rows, []string{
			string(kind),
			msec(wres.Duration), msec(stall),
			msec(rres.Duration), msec(st.DeserializeTime),
			f1(flushMBps),
			f2(st.WriteAmplification),
		})
		s.Close()
	}
	r.Table([]string{"store", "write-ms", "stall-ms", "read-ms", "deser-ms", "flush-MB/s", "WA"}, rows)
	r.Printf("shape: both baselines lose a large share of write time to stalls and of read time to deserialization; WA well above 3.")
	return r, nil
}

// Fig6MicroThroughput reproduces Figure 6: random/sequential write and
// read throughput across value sizes for the in-memory mode.
func Fig6MicroThroughput(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig6", "db_bench throughput vs value size (KIOPS, in-memory mode)", p.Out)
	valueSizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	header := []string{"store", "value", "fillrandom", "fillseq", "readrandom", "readseq"}
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		for _, vs := range valueSizes {
			n := p.entries(vs)

			// Random write + random read on the same instance.
			s, err := open(p, kind)
			if err != nil {
				return nil, err
			}
			wr, err := FillRandom(s, n, uint64(n), vs, p.Seed, nil)
			if err != nil {
				return nil, err
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			rr, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
			if err != nil {
				return nil, err
			}
			s.Close()

			// Sequential write + sequential read on a fresh instance.
			s2, err := open(p, kind)
			if err != nil {
				return nil, err
			}
			ws, err := FillSeq(s2, n, vs, nil)
			if err != nil {
				return nil, err
			}
			if err := s2.Flush(); err != nil {
				return nil, err
			}
			rs, err := ReadSeq(s2, p.readOps())
			if err != nil {
				return nil, err
			}
			s2.Close()

			rows = append(rows, []string{
				string(kind), fmt.Sprintf("%dK", vs>>10),
				f1(wr.KIOPS), f1(ws.KIOPS), f1(rr.KIOPS), f1(rs.KIOPS),
			})
		}
	}
	r.Table(header, rows)
	r.Printf("shape: MioDB leads random writes at every value size (paper: 2.5×/8.3× avg) and reads degrade least with value size.")
	return r, nil
}

// Table1CostAnalysis reproduces Table 1: interval stalls, cumulative
// stalls, deserialization, flushing, and write amplification for the
// three stores.
func Table1CostAnalysis(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("table1", "Cost analysis (4 KB values)", p.Out)
	const valueSize = 4 << 10
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		s, err := open(p, kind)
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		if _, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil); err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		if _, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1); err != nil {
			return nil, err
		}
		st := s.Stats()
		rows = append(rows, []string{
			string(kind),
			msec(st.IntervalStall),
			msec(st.CumulativeStall),
			msec(st.DeserializeTime),
			msec(st.FlushTime),
			f2(st.WriteAmplification),
		})
		s.Close()
	}
	r.Table([]string{"store", "interval-stall-ms", "cumulative-stall-ms", "deserialize-ms", "flushing-ms", "WA"}, rows)
	r.Printf("shape: MioDB's measured stall counters stay at or near zero (its writers rotate into the elastic buffer instead of waiting — run -experiment stability to see the deferred backlog), deserialization is near-zero, flushing far faster, and WA ≈ 3 (paper: 2.9× vs 5.6×/6.6×).")
	return r, nil
}

// Fig7YCSB reproduces Figure 7: YCSB Load and A–F throughput for the four
// stores at 1 KB and 4 KB values.
func Fig7YCSB(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig7", "YCSB throughput (KIOPS)", p.Out)
	kinds := []StoreKind{MioDB, MatrixKV, NoveLSM, NoveLSMNoSST}
	workloads := []string{"A", "B", "C", "D", "E", "F"}
	for _, vs := range []int{4 << 10, 1 << 10} {
		header := append([]string{"store", "value", "Load"}, workloads...)
		rows := [][]string{}
		for _, kind := range kinds {
			s, err := open(p, kind)
			if err != nil {
				return nil, err
			}
			records := uint64(p.entries(vs))
			loadRes, err := YCSBLoad(s, records, vs)
			if err != nil {
				return nil, err
			}
			row := []string{string(kind), fmt.Sprintf("%dK", vs>>10), f1(loadRes.KIOPS)}
			for wi, w := range workloads {
				res, err := YCSBRun(s, w, p.ycsbOps(), records, vs, p.Seed+int64(wi), nil)
				if err != nil {
					return nil, err
				}
				row = append(row, f1(res.KIOPS))
			}
			rows = append(rows, row)
			s.Close()
		}
		r.Table(header, rows)
	}
	r.Printf("shape: MioDB leads Load and the write-dominant A/F (paper: 12.1×/2.8× on Load); NoveLSM-NoSST wins scans (E) right after load, as the paper observes.")
	return r, nil
}

// Table2TailLatency reproduces Table 2: workload A latency percentiles at
// 4 KB and 1 KB values, in-memory mode.
func Table2TailLatency(p Params) (*Report, error) {
	return tailLatencyTable(p, "table2", false)
}

func tailLatencyTable(p Params, id string, ssd bool) (*Report, error) {
	p = p.norm()
	title := "YCSB-A tail latencies (µs)"
	if ssd {
		title += " — DRAM-NVM-SSD"
	}
	r := NewReport(id, title, p.Out)
	rows := [][]string{}
	for _, vs := range []int{4 << 10, 1 << 10} {
		for _, kind := range inMemoryKinds() {
			s, err := open(p, kind, func(c *Config) { c.SSD = ssd })
			if err != nil {
				return nil, err
			}
			records := uint64(p.entries(vs))
			if _, err := YCSBLoad(s, records, vs); err != nil {
				return nil, err
			}
			res, err := YCSBRun(s, "A", p.ycsbOps(), records, vs, p.Seed, nil)
			if err != nil {
				return nil, err
			}
			l := res.Latency
			rows = append(rows, []string{
				fmt.Sprintf("%dK", vs>>10), string(kind),
				usec(l.Mean), usec(l.P90), usec(l.P99), usec(l.P999),
			})
			s.Close()
		}
	}
	r.Table([]string{"value", "store", "avg", "p90", "p99", "p99.9"}, rows)
	r.Printf("shape: MioDB's p99.9 sits an order of magnitude (or more) below the baselines (paper: 17.1×/21.7× lower).")
	return r, nil
}

// Fig8LatencyTimeline reproduces Figure 8: the latency-over-time trace of
// workload A, exposing the baselines' periodic stall spikes.
func Fig8LatencyTimeline(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig8", "YCSB-A latency over time (4 KB values)", p.Out)
	const valueSize = 4 << 10
	for _, kind := range inMemoryKinds() {
		s, err := open(p, kind)
		if err != nil {
			return nil, err
		}
		records := uint64(p.entries(valueSize))
		if _, err := YCSBLoad(s, records, valueSize); err != nil {
			return nil, err
		}
		tl := histogram.NewTimeline(20 * time.Millisecond)
		res, err := YCSBRun(s, "A", p.ycsbOps(), records, valueSize, p.Seed, tl)
		if err != nil {
			return nil, err
		}
		r.Printf("%-14s spike-factor=%6.1f  max=%8s µs  trace: %s",
			kind, tl.SpikeFactor(), usec(res.Latency.Max), tl.Sparkline())
		s.Close()
	}
	r.Printf("shape: the baselines' traces show tall periodic spikes (write stalls); MioDB's trace is flat (paper Fig 8).")
	return r, nil
}

// Fig9LevelSweep reproduces Figure 9: MioDB's write latency/throughput
// and read throughput as the number of elastic-buffer levels (= compaction
// threads) grows.
func Fig9LevelSweep(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig9", "MioDB: levels (compaction threads) sensitivity", p.Out)
	const valueSize = 4 << 10
	rows := [][]string{}
	for _, levels := range []int{2, 4, 6, 8, 10} {
		s, err := open(p, MioDB, func(c *Config) { c.Levels = levels })
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", levels),
			usec(wres.Latency.Mean), f1(wres.KIOPS), f1(rres.KIOPS),
		})
		s.Close()
	}
	r.Table([]string{"levels", "write-avg-µs", "write-KIOPS", "read-KIOPS"}, rows)
	r.Printf("shape: write performance is flat across levels (flushing is the only write-path cost); read throughput improves with depth and saturates around 8 (the paper's chosen default).")
	return r, nil
}

// Fig10DatasetSweep reproduces Figure 10: random write and read
// throughput as the dataset grows (paper: 40–200 GB → 40–200 MB).
func Fig10DatasetSweep(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig10", "Dataset size sensitivity (KIOPS)", p.Out)
	const valueSize = 4 << 10
	fractions := []float64{0.5, 1.0, 1.5, 2.0, 2.5} // of the 80 MB base
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		for _, f := range fractions {
			s, err := open(p, kind)
			if err != nil {
				return nil, err
			}
			n := int(float64(p.entries(valueSize)) * f)
			wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
			if err != nil {
				return nil, err
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				string(kind),
				fmt.Sprintf("%dMB-equiv", int(80*f*p.Scale)),
				f1(wres.KIOPS), f1(rres.KIOPS),
			})
			s.Close()
		}
	}
	r.Table([]string{"store", "dataset", "fillrandom", "readrandom"}, rows)
	r.Printf("shape: the baselines degrade steeply with dataset size; MioDB's write throughput is nearly flat and its reads drop gently (paper: −33.5%% over 5×).")
	return r, nil
}

// Fig11WriteAmp reproduces Figure 11: write amplification vs dataset size.
func Fig11WriteAmp(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig11", "Write amplification vs dataset size", p.Out)
	const valueSize = 4 << 10
	fractions := []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		for _, f := range fractions {
			s, err := open(p, kind)
			if err != nil {
				return nil, err
			}
			n := int(float64(p.entries(valueSize)) * f)
			if _, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil); err != nil {
				return nil, err
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			st := s.Stats()
			rows = append(rows, []string{
				string(kind),
				fmt.Sprintf("%dMB-equiv", int(80*f*p.Scale)),
				f2(st.WriteAmplification),
			})
			s.Close()
		}
	}
	r.Table([]string{"store", "dataset", "WA"}, rows)
	r.Printf("shape: MioDB stays near its ≈3 bound at every size; the baselines' WA grows with the dataset (paper: up to 5×/4.9× higher at 200 GB).")
	return r, nil
}

// Fig12MemtableSweep reproduces Figure 12: how the DRAM MemTable size
// affects flush latency/throughput and random read/write throughput.
func Fig12MemtableSweep(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig12", "MemTable size sensitivity", p.Out)
	const valueSize = 4 << 10
	sizes := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		for _, ms := range sizes {
			s, err := open(p, kind, func(c *Config) { c.MemTableSize = ms })
			if err != nil {
				return nil, err
			}
			n := p.entries(valueSize)
			wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
			if err != nil {
				return nil, err
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
			if err != nil {
				return nil, err
			}
			st := s.Stats()
			avgFlush := time.Duration(0)
			if st.Flushes > 0 {
				avgFlush = st.FlushTime / time.Duration(st.Flushes)
			}
			rows = append(rows, []string{
				string(kind), fmt.Sprintf("%dK", ms>>10),
				msec(avgFlush), msec(st.FlushTime),
				f1(wres.KIOPS), f1(rres.KIOPS),
			})
			s.Close()
		}
	}
	r.Table([]string{"store", "memtable", "flush-avg-ms", "flush-total-ms", "fillrandom-KIOPS", "readrandom-KIOPS"}, rows)
	r.Printf("shape: MioDB's per-flush latency is an order of magnitude below the baselines (paper: 37.6×/11.9× shorter) and total flush time is flat; throughput barely moves with memtable size for all stores.")
	return r, nil
}

// Fig13SSDMode reproduces Figure 13: the DRAM-NVM-SSD hierarchy —
// db_bench random read/write plus YCSB Load and A–F throughput.
func Fig13SSDMode(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig13", "DRAM-NVM-SSD hierarchy throughput (KIOPS, 4 KB values)", p.Out)
	const valueSize = 4 << 10
	// db_bench half.
	rows := [][]string{}
	for _, kind := range inMemoryKinds() {
		s, err := open(p, kind, func(c *Config) { c.SSD = true })
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{string(kind), f1(wres.KIOPS), f1(rres.KIOPS)})
		s.Close()
	}
	r.Table([]string{"store", "fillrandom", "readrandom"}, rows)

	// YCSB half. SSD-mode scans cost tens of milliseconds each (every
	// scan seeks one block in every live SSTable at ~80 µs), so the op
	// count is reduced to a third of the in-memory experiments' — still
	// thousands of operations per cell, and throughput is rate-like.
	ssdOps := p.ycsbOps() / 3
	if ssdOps < 1000 {
		ssdOps = 1000
	}
	workloads := []string{"A", "B", "C", "D", "E", "F"}
	header := append([]string{"store", "Load"}, workloads...)
	rows = [][]string{}
	for _, kind := range inMemoryKinds() {
		s, err := open(p, kind, func(c *Config) { c.SSD = true })
		if err != nil {
			return nil, err
		}
		records := uint64(p.entries(valueSize))
		loadRes, err := YCSBLoad(s, records, valueSize)
		if err != nil {
			return nil, err
		}
		row := []string{string(kind), f1(loadRes.KIOPS)}
		for wi, w := range workloads {
			res, err := YCSBRun(s, w, ssdOps, records, valueSize, p.Seed+int64(wi), nil)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(res.KIOPS))
		}
		rows = append(rows, row)
		s.Close()
	}
	r.Table(header, rows)
	r.Printf("shape: MioDB's elastic buffer absorbs bursts before the SSD, keeping its lead (paper: 10.5×/11.2× random write, 11.8×/12.1× Load).")
	return r, nil
}

// Table3SSDTailLatency reproduces Table 3: workload A percentiles in the
// DRAM-NVM-SSD hierarchy.
func Table3SSDTailLatency(p Params) (*Report, error) {
	rep, err := tailLatencyTable(p, "table3", true)
	return rep, err
}

// Fig14BufferSweep reproduces Figure 14: random read/write throughput as
// the baselines' NVM buffer grows (MioDB's buffer is elastic, so it
// appears as one configuration).
func Fig14BufferSweep(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("fig14", "NVM buffer size sensitivity (DRAM-NVM-SSD, KIOPS)", p.Out)
	const valueSize = 4 << 10
	sizes := []int64{8 << 20, 16 << 20, 32 << 20, 64 << 20}
	rows := [][]string{}
	run := func(kind StoreKind, label string, mutate func(*Config)) error {
		s, err := open(p, kind, func(c *Config) {
			c.SSD = true
			if mutate != nil {
				mutate(c)
			}
		})
		if err != nil {
			return err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return err
		}
		if err := s.Flush(); err != nil {
			return err
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return err
		}
		rows = append(rows, []string{string(kind), label, f1(wres.KIOPS), f1(rres.KIOPS)})
		s.Close()
		return nil
	}
	if err := run(MioDB, "elastic", nil); err != nil {
		return nil, err
	}
	for _, kind := range []StoreKind{MatrixKV, NoveLSM} {
		for _, bs := range sizes {
			bs := bs
			label := fmt.Sprintf("%dMB", bs>>20)
			if err := run(kind, label, func(c *Config) { c.NVMBufferSize = bs }); err != nil {
				return nil, err
			}
		}
	}
	r.Table([]string{"store", "buffer", "fillrandom", "readrandom"}, rows)
	r.Printf("shape: bigger fixed buffers help the baselines only so far (reads can even regress); MioDB's single elastic configuration beats every buffer size (paper: 2.3×/4.9× write at 64 GB).")
	return r, nil
}

// Ablations quantifies each MioDB design choice DESIGN.md calls out.
func Ablations(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("ablation", "MioDB design ablations (4 KB values)", p.Out)
	const valueSize = 4 << 10
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline", nil},
		{"no-one-piece-flush", func(c *Config) { c.OnePieceFlush = boolp(false) }},
		{"no-zero-copy-merge", func(c *Config) { c.ZeroCopyMerge = boolp(false) }},
		{"no-parallel-compaction", func(c *Config) { c.ParallelCompaction = boolp(false) }},
		{"no-bloom-filters", func(c *Config) { c.DisableBloom = true }},
		{"no-wal", func(c *Config) { c.DisableWAL = true }},
	}
	rows := [][]string{}
	for _, v := range variants {
		muts := []func(*Config){}
		if v.mutate != nil {
			muts = append(muts, v.mutate)
		}
		s, err := open(p, MioDB, muts...)
		if err != nil {
			return nil, err
		}
		n := p.entries(valueSize)
		wres, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil)
		if err != nil {
			return nil, err
		}
		flushStart := time.Now()
		if err := s.Flush(); err != nil {
			return nil, err
		}
		drain := time.Since(flushStart)
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), p.Seed+1)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		avgFlush := time.Duration(0)
		if st.Flushes > 0 {
			avgFlush = st.FlushTime / time.Duration(st.Flushes)
		}
		rows = append(rows, []string{
			v.name,
			f1(wres.KIOPS), f1(rres.KIOPS),
			f2(st.WriteAmplification),
			msec(avgFlush), msec(drain),
		})
		s.Close()
	}
	r.Table([]string{"variant", "fillrandom-KIOPS", "readrandom-KIOPS", "WA", "flush-avg-ms", "drain-ms"}, rows)
	r.Printf("shape: removing one-piece flush slows flushes; removing zero-copy raises WA; removing bloom filters hurts reads; removing parallel compaction slows the drain.")
	return r, nil
}

func boolp(b bool) *bool { return &b }

// RunAll executes every experiment in order.
func RunAll(p Params) ([]*Report, error) {
	var out []*Report
	for _, e := range Experiments() {
		rep, err := e.Run(p)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
