package bench

import (
	"io"
	"strings"
	"testing"
)

// tiny returns the smallest sensible experiment parameters for tests.
func tiny() Params { return Params{Scale: 0.02, Out: io.Discard} }

func TestOpenStoreAllKinds(t *testing.T) {
	for _, kind := range []StoreKind{MioDB, LevelDB, NoveLSM, NoveLSMNoSST, MatrixKV} {
		s, err := OpenStore(Config{Kind: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("%s put: %v", kind, err)
		}
		v, err := s.Get([]byte("k"))
		if err != nil || string(v) != "v" {
			t.Fatalf("%s get: %q %v", kind, v, err)
		}
		s.ResetCounters()
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", kind, err)
		}
	}
	if _, err := OpenStore(Config{Kind: "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestOpenStoreSSDMode(t *testing.T) {
	for _, kind := range []StoreKind{MioDB, LevelDB, NoveLSM, MatrixKV} {
		s, err := OpenStore(Config{Kind: kind, SSD: true})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := 0; i < 500; i++ {
			s.Put([]byte(dbKey(uint64(i))), dbValue(uint64(i), 0, 512))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(dbKey(100)); err != nil {
			t.Fatalf("%s ssd get: %v", kind, err)
		}
		s.Close()
	}
}

func TestRunnersProduceSaneResults(t *testing.T) {
	s, err := OpenStore(Config{Kind: MioDB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wres, err := FillRandom(s, 1000, 1000, 256, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Ops != 1000 || wres.KIOPS <= 0 || wres.Latency.Count != 1000 {
		t.Errorf("FillRandom result: %+v", wres)
	}
	if _, err := FillSeq(s, 500, 256, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rres, misses, err := ReadRandom(s, 500, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if misses > 0 {
		t.Errorf("ReadRandom missed %d keys written by FillSeq", misses)
	}
	if rres.KIOPS <= 0 {
		t.Error("ReadRandom zero throughput")
	}
	sres, err := ReadSeq(s, 300)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Ops != 300 {
		t.Errorf("ReadSeq scanned %d", sres.Ops)
	}
}

func TestYCSBRunnerAllWorkloads(t *testing.T) {
	s, err := OpenStore(Config{Kind: MioDB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const records = 500
	if _, err := YCSBLoad(s, records, 128); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"A", "B", "C", "D", "E", "F"} {
		res, err := YCSBRun(s, w, 300, records, 128, 1, nil)
		if err != nil {
			t.Fatalf("workload %s: %v", w, err)
		}
		if res.Ops != 300 || res.KIOPS <= 0 {
			t.Errorf("workload %s result: %+v", w, res)
		}
	}
	if _, err := YCSBRun(s, "Z", 10, records, 128, 1, nil); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig6", "table1", "fig7", "table2", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table3", "fig14", "ablation",
		"concurrent", "readscale", "shardscale", "netscale", "multiget", "stability", "membalance", "valuesize", "torture", "extra-escan", "extra-novelsm",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
		if _, ok := FindExperiment(id); !ok {
			t.Errorf("FindExperiment(%s) failed", id)
		}
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("FindExperiment(nope) succeeded")
	}
}

// TestExperimentsSmoke runs a representative subset end-to-end at a tiny
// scale to guard all experiment plumbing (the full set runs as benchmarks
// and via cmd/miodb-repro).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, id := range []string{"table1", "fig9", "ablation", "extra-escan", "extra-novelsm"} {
		e, _ := FindExperiment(id)
		rep, err := e.Run(tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Lines()) < 3 {
			t.Errorf("%s produced no table", id)
		}
		if !strings.Contains(rep.String(), "shape:") {
			t.Errorf("%s missing shape note", id)
		}
	}
}

func TestReportTableFormatting(t *testing.T) {
	r := NewReport("x", "test", nil)
	r.Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := r.String()
	if !strings.Contains(out, "a    bb") {
		t.Errorf("unexpected table header formatting:\n%s", out)
	}
	if len(r.Lines()) != 5 { // title + header + sep + 2 rows
		t.Errorf("got %d lines", len(r.Lines()))
	}
}
