package bench

import (
	"fmt"

	"miodb/internal/core"
)

// CrashTorture runs the randomized crash-recovery harness as a
// reproducible experiment: repeated write / crash / recover / verify
// cycles with injected device crashes, torn tails, and interrupted
// recoveries (see core.RunTorture for the invariants). Scale stretches
// the cycle count; the seed pins every crash point.
func CrashTorture(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("torture", "Crash torture: randomized power failures, torn writes, recovery invariants", p.Out)

	cycles := int(50 * p.Scale)
	if cycles < 10 {
		cycles = 10
	}
	ops := 300

	var rows [][]string
	for i, seed := range []int64{p.Seed, p.Seed + 1, p.Seed + 2} {
		rep, err := core.RunTorture(core.TortureConfig{
			Seed:   seed,
			Cycles: cycles,
			Ops:    ops,
		})
		if err != nil {
			return nil, fmt.Errorf("torture seed %d: %w", seed, err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("run %d", i+1),
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%d", rep.OpsAcked),
			fmt.Sprintf("%d", rep.OpsUncertain),
			fmt.Sprintf("%d", rep.KeysChecked),
			fmt.Sprintf("%d/%d/%d", rep.CleanCrashes, rep.ByteCrashes, rep.OpCrashes),
			fmt.Sprintf("%d", rep.DoubleCrashes),
			fmt.Sprintf("%d", rep.Degraded),
		})
	}
	r.Table(
		[]string{"run", "cycles", "acked", "uncertain", "verified", "clean/byte/op", "dbl-crash", "degraded"},
		rows,
	)
	r.Printf("all invariants held: no acked update lost, unacked all-or-nothing,")
	r.Printf("no resurrection, seq monotone, structure consistent, zero region leaks")
	return r, nil
}
