package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
)

// Machine-readable benchmark artifacts (BENCH_*.json). Every record
// follows the same repeated-runs shape: each measured cell carries all
// its per-rep throughputs plus the derived best and median, and the
// latency percentiles of the best rep — so downstream tooling can both
// re-derive the summary statistics and spot noisy cells (a wide
// best/median gap) without re-running anything.

// JSONKIOPS summarizes throughput over a cell's repetitions.
type JSONKIOPS struct {
	Best   float64   `json:"best"`
	Median float64   `json:"median"`
	All    []float64 `json:"all"`
}

// JSONLatency holds the best rep's latency percentiles in microseconds.
type JSONLatency struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// JSONTimelineBin is one wall-clock interval of a latency-over-time
// trace: the operations issued during it and their mean/max latency.
type JSONTimelineBin struct {
	StartMs float64 `json:"start_ms"`
	Ops     int64   `json:"ops"`
	MeanUs  float64 `json:"mean_us"`
	MaxUs   float64 `json:"max_us"`
}

// JSONTimeline is a throughput/latency-over-time trace (Fig 8 shape):
// per-bin op counts double as a throughput-over-time series and the
// max column exposes stall-induced tail spikes.
type JSONTimeline struct {
	BinMs float64           `json:"bin_ms"`
	Bins  []JSONTimelineBin `json:"bins"`
}

// JSONResult is one measured cell of a benchmark sweep.
type JSONResult struct {
	Name    string                 `json:"name"`
	Config  map[string]interface{} `json:"config,omitempty"`
	Reps    int                    `json:"reps"`
	Ops     int64                  `json:"ops"`
	KIOPS   JSONKIOPS              `json:"kiops"`
	Latency *JSONLatency           `json:"latency_us,omitempty"`
	// Timeline holds the best rep's latency-over-time trace when the
	// run recorded one (the stability experiment always does).
	Timeline *JSONTimeline `json:"timeline,omitempty"`
	// Extra carries sweep-specific scalars (e.g. mean group-commit size).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// JSONReport is the top-level BENCH_*.json document.
type JSONReport struct {
	Bench   string                 `json:"bench"`
	Go      string                 `json:"go"`
	GOOS    string                 `json:"goos"`
	GOARCH  string                 `json:"goarch"`
	NumCPU  int                    `json:"num_cpu"`
	Config  map[string]interface{} `json:"config,omitempty"`
	Results []JSONResult           `json:"results"`
	Notes   []string               `json:"notes,omitempty"`
}

// NewJSONReport starts a document stamped with the build environment.
func NewJSONReport(benchName string, config map[string]interface{}) *JSONReport {
	return &JSONReport{
		Bench:  benchName,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Config: config,
	}
}

// AddRuns records one cell from its repetitions: best/median throughput
// across all reps, latency percentiles from the best rep.
func (r *JSONReport) AddRuns(name string, config map[string]interface{}, runs []RunResult, extra map[string]float64) {
	if len(runs) == 0 {
		return
	}
	all := make([]float64, len(runs))
	best := runs[0]
	for i, run := range runs {
		all[i] = run.KIOPS
		if run.KIOPS > best.KIOPS {
			best = run
		}
	}
	res := JSONResult{
		Name:   name,
		Config: config,
		Reps:   len(runs),
		Ops:    best.Ops,
		KIOPS:  JSONKIOPS{Best: best.KIOPS, Median: median(all), All: all},
		Extra:  extra,
	}
	if best.Latency.Count > 0 {
		l := best.Latency
		res.Latency = &JSONLatency{
			P50:  l.P50.Seconds() * 1e6,
			P99:  l.P99.Seconds() * 1e6,
			P999: l.P999.Seconds() * 1e6,
			Max:  l.Max.Seconds() * 1e6,
		}
	}
	if best.Timeline != nil {
		if bins := best.Timeline.Bins(); len(bins) > 0 {
			tl := &JSONTimeline{BinMs: best.Timeline.BinWidth().Seconds() * 1e3}
			for _, b := range bins {
				tl.Bins = append(tl.Bins, JSONTimelineBin{
					StartMs: b.Start.Seconds() * 1e3,
					Ops:     b.Count,
					MeanUs:  b.Mean.Seconds() * 1e6,
					MaxUs:   b.Max.Seconds() * 1e6,
				})
			}
			res.Timeline = tl
		}
	}
	r.Results = append(r.Results, res)
}

// Note appends a free-form provenance line.
func (r *JSONReport) Note(line string) { r.Notes = append(r.Notes, line) }

// Write marshals the document to path (indented, trailing newline).
func (r *JSONReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// median of the values (mean of the middle two for even counts).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
