package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"miodb/internal/server"
)

// TestNetScaleRepDrivesServer checks the rep driver end to end at small
// scale: every put must reach the store, and the timed result must be
// rate-like.
func TestNetScaleRepDrivesServer(t *testing.T) {
	s, err := OpenStore(Config{Kind: MioDB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := server.NewWithOptions(s, server.Options{Window: 32})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const total = 2000
	res, err := netScaleRep(addr.String(), 8, 4, total, total, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != total || res.KIOPS <= 0 || res.Latency.Count != total {
		t.Errorf("rep result: %+v", res)
	}
	if st := s.Stats(); st.Puts != total {
		t.Errorf("store saw %d puts, want %d", st.Puts, total)
	}
}

// TestNetScaleExperimentAndJSON runs the full experiment with shrunken
// arms and checks the report shape and the BENCH_netscale.json artifact.
func TestNetScaleExperimentAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("netscale smoke test skipped in -short mode")
	}
	oldArms, oldReps := netScaleArms, netScaleReps
	netScaleArms = []netArm{{4, 1}, {4, 4}}
	netScaleReps = 1
	t.Cleanup(func() { netScaleArms, netScaleReps = oldArms, oldReps })

	dir := t.TempDir()
	rep, err := NetScale(Params{Scale: 0.02, Out: io.Discard, JSONDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "shape:") || !strings.Contains(out, "window") {
		t.Errorf("report missing expected sections:\n%s", out)
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_netscale.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc JSONReport
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Bench != "netscale" || doc.NumCPU <= 0 {
		t.Errorf("header: %+v", doc)
	}
	// Two sweep arms plus the local 8-writer reference.
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	names := map[string]bool{}
	for _, res := range doc.Results {
		names[res.Name] = true
		if res.KIOPS.Best <= 0 || res.Reps != 1 || len(res.KIOPS.All) != 1 {
			t.Errorf("result %s: %+v", res.Name, res)
		}
		if res.Latency == nil || res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P999 {
			t.Errorf("result %s latency: %+v", res.Name, res.Latency)
		}
	}
	for _, want := range []string{"conns=4/window=1", "conns=4/window=4", "local/writers=8"} {
		if !names[want] {
			t.Errorf("missing result %q (have %v)", want, names)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{5, 1}, 3},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
