package bench

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkShardScale measures fill and readrandom throughput as the
// keyspace is hash-partitioned over more engines — the multi-core
// scaling regime the shard router targets. Run e.g.:
//
//	go test ./internal/bench -bench ShardScale -benchtime 1x
func BenchmarkShardScale(b *testing.B) {
	const (
		entries   = 8000
		valueSize = 128
		threads   = 8
	)
	counts := []int{1, 2, 4, 8}
	if testing.Short() {
		counts = counts[:2]
	}
	for _, shards := range counts {
		cfg := Config{Kind: MioDB, Simulate: true, Shards: shards}
		b.Run(fmt.Sprintf("fill/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := OpenStore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				r, err := ConcurrentFill(s, entries, entries, valueSize, 1, threads, Uniform)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(r.KIOPS*1000, "ops/s")
				s.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("readrandom/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := OpenStore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := FillRandom(s, entries, entries, valueSize, 1, nil); err != nil {
					b.Fatal(err)
				}
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
				s.ResetCounters()
				b.StartTimer()
				r, _, err := ConcurrentReadRandom(s, entries, entries, 2, threads)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(r.KIOPS*1000, "ops/s")
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// TestShardScaleSmoke runs the shardscale experiment at a tiny scale to
// guard its plumbing (shard counts > 1 open real routers), and checks
// the sharded arm agrees with the single-engine arm on what was stored.
func TestShardScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test skipped in -short mode")
	}
	e, ok := FindExperiment("shardscale")
	if !ok {
		t.Fatal("shardscale not registered")
	}
	rep, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "shards") || !strings.Contains(out, "shape:") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

// TestOpenStoreSharded covers the harness factory's sharded branch: the
// router must satisfy the full Store surface (batch writes, scans,
// counter reset) and reject the unsupported SSD combination.
func TestOpenStoreSharded(t *testing.T) {
	s, err := OpenStore(Config{Kind: MioDB, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		if err := s.Put(dbKey(uint64(i)), dbValue(uint64(i), 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	var last []byte
	err = s.Scan(nil, 0, func(k, v []byte) bool {
		if last != nil && string(k) <= string(last) {
			t.Fatalf("scan out of order: %q after %q", k, last)
		}
		last = append(last[:0], k...)
		n++
		return true
	})
	if err != nil || n != 500 {
		t.Fatalf("scan n=%d err=%v", n, err)
	}
	st := s.Stats()
	if len(st.Shards) != 4 {
		t.Errorf("Stats().Shards len = %d, want 4", len(st.Shards))
	}
	if st.Puts != 500 {
		t.Errorf("aggregated puts = %d, want 500", st.Puts)
	}
	s.ResetCounters()
	if st := s.Stats(); st.Puts != 0 {
		t.Errorf("puts after reset = %d", st.Puts)
	}

	if _, err := OpenStore(Config{Kind: MioDB, Shards: 4, SSD: true}); err == nil {
		t.Error("sharded SSD config accepted; want error")
	}
}
