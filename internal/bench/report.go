package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report collects an experiment's output as formatted text plus the raw
// rows, so EXPERIMENTS.md generation and tests can assert on shapes.
type Report struct {
	ID    string
	Title string
	w     io.Writer
	lines []string
}

// NewReport starts a report mirrored to w (may be nil).
func NewReport(id, title string, w io.Writer) *Report {
	r := &Report{ID: id, Title: title, w: w}
	r.Printf("=== %s: %s ===", id, title)
	return r
}

// Printf appends a formatted line.
func (r *Report) Printf(format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	r.lines = append(r.lines, line)
	if r.w != nil {
		fmt.Fprintln(r.w, line)
	}
}

// Table prints a fixed-width table with a header.
func (r *Report) Table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		return sb.String()
	}
	r.Printf("%s", line(header))
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	r.Printf("%s", line(sep))
	for _, row := range rows {
		r.Printf("%s", line(row))
	}
}

// Lines returns everything printed so far.
func (r *Report) Lines() []string { return append([]string(nil), r.lines...) }

// String joins the report's lines.
func (r *Report) String() string { return strings.Join(r.lines, "\n") }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func usec(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.1f", d.Seconds()*1e6)
}

func msec(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.1f", d.Seconds()*1e3)
}
