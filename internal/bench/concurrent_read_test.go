package bench

import (
	"fmt"
	"testing"

	"miodb/internal/core"
)

// BenchmarkConcurrentReads measures multi-reader throughput — the regime
// the epoch-pinned lock-free read path targets. It sweeps 1/2/4/8/16
// reader goroutines over a preloaded, quiesced store: read-only uniform
// lookups plus the YCSB-B (95/5) and YCSB-C (100/0) zipfian mixes, MioDB
// against its own mutex-refcount ablation (the seed's read path, where
// every Get takes db.mu twice).
//
// Run e.g.:
//
//	go test ./internal/bench -bench ConcurrentReads -benchtime 1x
func BenchmarkConcurrentReads(b *testing.B) {
	const (
		entries   = 8000
		ops       = 16000
		valueSize = 128
	)
	arms := []struct {
		name string
		cfg  Config
	}{
		{"miodb", Config{Kind: MioDB, Simulate: true}},
		// The seed's read path: acquire/release the version under the
		// global mutex with per-version refcounts. This is the baseline
		// the ≥2× read-scaling claim is measured against.
		{"miodb-mutexread", Config{Kind: MioDB, Simulate: true, EpochReads: core.Bool(false)}},
	}
	workloads := []struct {
		name     string
		readFrac float64 // <0 = uniform read-only
	}{
		{"readonly", -1},
		{"ycsb-b", 0.95},
		{"ycsb-c", 1.0},
	}
	if testing.Short() {
		workloads = workloads[:1]
	}
	for _, wl := range workloads {
		for _, arm := range arms {
			for _, threads := range []int{1, 2, 4, 8, 16} {
				name := fmt.Sprintf("%s/%s/threads=%d", wl.name, arm.name, threads)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						s, err := OpenStore(arm.cfg)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := FillRandom(s, entries, entries, valueSize, 1, nil); err != nil {
							b.Fatal(err)
						}
						if err := s.Flush(); err != nil {
							b.Fatal(err)
						}
						s.ResetCounters()
						b.StartTimer()
						var r RunResult
						if wl.readFrac < 0 {
							r, _, err = ConcurrentReadRandom(s, ops, entries, 2, threads)
						} else {
							r, err = ConcurrentMixed(s, ops, entries, valueSize, 2, threads, wl.readFrac)
						}
						if err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						b.ReportMetric(r.KIOPS*1000, "ops/s")
						st := s.Stats()
						if passed := st.BloomProbes - st.BloomSkips; passed > 0 {
							b.ReportMetric(st.BloomFalsePositiveRate, "bloom-fp-rate")
						}
						s.Close()
						b.StartTimer()
					}
				})
			}
		}
	}
}

// TestConcurrentReadRunners smoke-tests the concurrent read drivers and
// the read-path observability they feed: counters must be populated and
// internally consistent after a mixed run, in both read-path modes.
func TestConcurrentReadRunners(t *testing.T) {
	for _, arm := range []struct {
		name string
		cfg  Config
	}{
		{"epoch", Config{Kind: MioDB}},
		{"mutexread", Config{Kind: MioDB, EpochReads: core.Bool(false)}},
	} {
		t.Run(arm.name, func(t *testing.T) {
			s, err := OpenStore(arm.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			const n = 3000
			if _, err := FillRandom(s, n, n, 64, 1, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if r, _, err := ConcurrentReadRandom(s, 2000, n, 2, 4); err != nil {
				t.Fatal(err)
			} else if r.Ops != 2000 {
				t.Fatalf("readrandom ops = %d, want 2000", r.Ops)
			}
			if r, err := ConcurrentMixed(s, 2000, n, 64, 3, 4, 0.95); err != nil {
				t.Fatal(err)
			} else if r.Ops != 2000 {
				t.Fatalf("ycsb-b ops = %d, want 2000", r.Ops)
			}
			st := s.Stats()
			if st.Gets == 0 {
				t.Fatal("no gets recorded")
			}
			if st.BloomProbes > 0 {
				if st.BloomSkips > st.BloomProbes {
					t.Fatalf("bloom skips %d > probes %d", st.BloomSkips, st.BloomProbes)
				}
				if st.BloomFalsePositives > st.BloomProbes-st.BloomSkips {
					t.Fatalf("bloom fps %d > passed probes %d", st.BloomFalsePositives, st.BloomProbes-st.BloomSkips)
				}
			}
			if st.LiveVersions < 1 {
				t.Fatalf("live versions = %d, want >= 1", st.LiveVersions)
			}
		})
	}
}
