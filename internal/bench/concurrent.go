package bench

import (
	"fmt"
	"sync"
	"time"

	"miodb/internal/core"
	"miodb/internal/histogram"
	"miodb/internal/kvstore"
	"miodb/internal/ycsb"
)

// KeyDist selects the key distribution for concurrent fill workloads.
type KeyDist int

const (
	// Uniform draws keys uniformly from [0, keySpace).
	Uniform KeyDist = iota
	// Zipfian draws keys with YCSB's scrambled-zipfian skew (theta 0.99),
	// the contended regime where group commit matters most: many writers
	// hammering a hot key range all funnel into the same memtable.
	Zipfian
)

func (d KeyDist) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

func (d KeyDist) chooser(keySpace uint64, seed int64) ycsb.Chooser {
	if d == Zipfian {
		return ycsb.NewZipfianChooser(keySpace, seed)
	}
	return ycsb.NewUniformChooser(seed)
}

// valuePool pre-generates a cycle of distinct values so the per-op cost of
// a concurrent driver is choosing a key, not seeding a PRNG: with many
// writer goroutines on few cores, per-op value generation would otherwise
// dominate the profile and mask the store's own behavior.
type valuePool struct {
	vals [][]byte
	next int
}

func newValuePool(gen, size, n int) *valuePool {
	p := &valuePool{vals: make([][]byte, n)}
	for i := range p.vals {
		p.vals[i] = dbValue(uint64(i), gen, size)
	}
	return p
}

func (p *valuePool) value() []byte {
	v := p.vals[p.next]
	p.next++
	if p.next == len(p.vals) {
		p.next = 0
	}
	return v
}

// ConcurrentFill drives total writes from `writers` goroutines issuing
// Put operations as fast as the store admits them — the multi-client
// regime a one-goroutine-per-connection server produces. Latencies from
// all writers land in one shared (thread-safe) histogram. total is split
// evenly across writers; the remainder goes to writer 0.
func ConcurrentFill(s kvstore.Store, total int, keySpace uint64, valueSize int, seed int64, writers int, dist KeyDist) (RunResult, error) {
	if writers < 1 {
		writers = 1
	}
	h := histogram.New()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	per := total / writers
	start := time.Now()
	for g := 0; g < writers; g++ {
		n := per
		if g == 0 {
			n += total - per*writers
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			choose := dist.chooser(keySpace, seed+int64(g)*7919)
			pool := newValuePool(g+1, valueSize, 64)
			for i := 0; i < n; i++ {
				k := dbKey(choose.Choose(keySpace))
				v := pool.value()
				t0 := time.Now()
				if err := s.Put(k, v); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
				h.Record(time.Since(t0))
			}
		}(g, n)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return RunResult{}, err
	default:
	}
	return finishRun(int64(total), time.Since(start), h, nil), nil
}

// ConcurrentWrites is the multi-writer experiment behind the group-commit
// pipeline: fill throughput vs writer count, MioDB's group commit against
// its own serialized-write ablation (the seed's write path) and NoveLSM
// (whose write path stays serialized), for uniform and zipfian keys. The
// group-size column shows how many writes each leader commit carried.
func ConcurrentWrites(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("concurrent", "Multi-writer fill throughput (KIOPS): group commit vs serialized", p.Out)
	const valueSize = 128
	n := int(32000 * p.Scale)
	if n < 4000 {
		n = 4000
	}
	arms := []struct {
		name string
		cfg  Config
	}{
		{"miodb", Config{Kind: MioDB, Simulate: true}},
		{"miodb-serial", Config{Kind: MioDB, Simulate: true, GroupCommit: core.Bool(false)}},
		{"miodb-sh4", Config{Kind: MioDB, Simulate: true, Shards: 4}},
		{"novelsm", Config{Kind: NoveLSM, Simulate: true}},
	}
	// Scheduler noise on small hosts swamps single-shot cells; report the
	// best of three runs per cell (the standard db_bench practice for
	// throughput), with group stats taken from the best run.
	const reps = 3
	for _, dist := range []KeyDist{Uniform, Zipfian} {
		rows := [][]string{}
		for _, writers := range []int{1, 2, 4, 8, 16} {
			row := []string{fmt.Sprintf("%d", writers)}
			for _, arm := range arms {
				best, bestGS := 0.0, 0.0
				for rep := 0; rep < reps; rep++ {
					s, err := OpenStore(arm.cfg)
					if err != nil {
						return nil, err
					}
					res, err := ConcurrentFill(s, n, uint64(n), valueSize, p.Seed+int64(rep), writers, dist)
					if err != nil {
						s.Close()
						return nil, err
					}
					st := s.Stats()
					s.Close()
					if res.KIOPS > best {
						best = res.KIOPS
						if st.WriteGroups > 0 {
							bestGS = float64(st.GroupedWrites) / float64(st.WriteGroups)
						}
					}
				}
				row = append(row, f1(best))
				if arm.name == "miodb" {
					row = append(row, fmt.Sprintf("%.2f", bestGS))
				}
			}
			rows = append(rows, row)
		}
		r.Table([]string{"writers", "miodb", "group-size", "miodb-serial", "miodb-sh4", "novelsm"}, rows)
		r.Printf("(%s keys, %d entries, %d B values, best of %d runs)", dist, n, valueSize, reps)
	}
	r.Printf("shape: with one writer the arms coincide — an uncontended writer bypasses the queue and commits exactly like the serialized path (groups of 1). As writers grow, the group-size column shows leader commits carrying nearly the whole writer set, coalescing their WAL appends. On a single-core host that coalescing is roughly cost-neutral — the serialized ablation (which shares this build's fast paths) keeps pace, because the queue's park/wake handoffs cost about what the saved commit entries cost; the win the pipeline targets is multi-core, where followers park instead of contending. The miodb-sh4 arm hash-partitions the same build over 4 engines — 4 commit locks and 4 WALs — which on a multi-core host compounds with group commit (each shard forms its own groups) and on a single core is roughly cost-neutral. All MioDB arms stay far above NoveLSM, whose write path serializes and stalls.")
	return r, nil
}

// ConcurrentBatchFill is ConcurrentFill with each writer grouping its
// operations into client-side batches of batchSize before submitting them
// through the store's batch interface (kvstore.BatchWriter). Stores
// without batch support fall back to per-op Puts.
func ConcurrentBatchFill(s kvstore.Store, total int, keySpace uint64, valueSize int, seed int64, writers, batchSize int, dist KeyDist) (RunResult, error) {
	bw, ok := s.(kvstore.BatchWriter)
	if batchSize <= 1 || !ok {
		return ConcurrentFill(s, total, keySpace, valueSize, seed, writers, dist)
	}
	if writers < 1 {
		writers = 1
	}
	h := histogram.New()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	per := total / writers
	start := time.Now()
	for g := 0; g < writers; g++ {
		n := per
		if g == 0 {
			n += total - per*writers
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			choose := dist.chooser(keySpace, seed+int64(g)*7919)
			pool := newValuePool(g+1, valueSize, 64)
			for done := 0; done < n; {
				m := batchSize
				if n-done < m {
					m = n - done
				}
				ops := make([]kvstore.BatchOp, 0, m)
				for i := 0; i < m; i++ {
					ops = append(ops, kvstore.BatchOp{
						Key:   dbKey(choose.Choose(keySpace)),
						Value: pool.value(),
					})
				}
				t0 := time.Now()
				if err := bw.WriteBatch(ops); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
				h.Record(time.Since(t0))
				done += m
			}
		}(g, n)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return RunResult{}, err
	default:
	}
	return finishRun(int64(total), time.Since(start), h, nil), nil
}
