package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"miodb/internal/core"
	"miodb/internal/histogram"
)

// Stability is the sustained-fill stability experiment behind the
// backlog-aware admission controller: throughput-over-time and tail
// traces for MioDB with and without admission control, against the
// baselines whose write stalls the paper measures. The unbounded arm
// shows the paper's trade honestly — flat latency, zero stalls, but a
// backlog gauge that grows with the burst — while the bounded arm keeps
// the backlog at its threshold and pays for it with measured stall time.
func Stability(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("stability", "Sustained-fill stability: throughput over time, tails, backlog vs admission", p.Out)
	const valueSize = 4 << 10
	const binWidth = 20 * time.Millisecond
	n := p.entries(valueSize)
	arms := []struct {
		name string
		cfg  Config
	}{
		{"miodb", Config{Kind: MioDB, Simulate: true}},
		{"miodb-bounded", Config{Kind: MioDB, Simulate: true,
			Admission: &core.AdmissionOptions{SoftImms: 4, HardImms: 8}}},
		{"novelsm", Config{Kind: NoveLSM, Simulate: true}},
		{"matrixkv", Config{Kind: MatrixKV, Simulate: true}},
	}
	jr := NewJSONReport("stability", map[string]interface{}{
		"entries": n, "value_size": valueSize, "bin_ms": binWidth.Seconds() * 1e3,
	})
	rows := [][]string{}
	for _, arm := range arms {
		s, err := OpenStore(arm.cfg)
		if err != nil {
			return nil, err
		}
		tl := histogram.NewTimeline(binWidth)

		// Sample the backlog gauges while the fill runs: the peak is the
		// elastic-buffer debt the writer deferred instead of stalling.
		var (
			sampleWG  sync.WaitGroup
			sampleDie = make(chan struct{})
			peakImms  int64
			peakBytes int64
		)
		sampleWG.Add(1)
		go func() {
			defer sampleWG.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-sampleDie:
					return
				case <-tick.C:
					st := s.Stats()
					if st.PendingImms > peakImms {
						peakImms = st.PendingImms
					}
					if st.PendingImmBytes > peakBytes {
						peakBytes = st.PendingImmBytes
					}
				}
			}
		}()

		res, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, tl)
		close(sampleDie)
		sampleWG.Wait()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("%s: %w", arm.name, err)
		}
		st := s.Stats()
		s.Close()

		cv := throughputCV(tl)
		l := res.Latency
		rows = append(rows, []string{
			arm.name, f1(res.KIOPS), f2(cv), fmt.Sprintf("%.1f", tl.SpikeFactor()),
			usec(l.P50), usec(l.P99), usec(l.P999), usec(l.Max),
			fmt.Sprintf("%d", st.IntervalStalls), msec(st.IntervalStall), msec(st.CumulativeStall),
			fmt.Sprintf("%d", peakImms),
		})
		jr.AddRuns(arm.name,
			map[string]interface{}{"arm": arm.name, "ops": n},
			[]RunResult{res},
			map[string]float64{
				"throughput_cv":       cv,
				"spike_factor":        tl.SpikeFactor(),
				"interval_stalls":     float64(st.IntervalStalls),
				"interval_stall_ms":   st.IntervalStall.Seconds() * 1e3,
				"cumulative_stall_ms": st.CumulativeStall.Seconds() * 1e3,
				"peak_pending_imms":   float64(peakImms),
				"peak_pending_bytes":  float64(peakBytes),
			},
		)
		r.Printf("%-14s trace: %s", arm.name, tl.Sparkline())
	}
	r.Table([]string{"arm", "KIOPS", "tput-cv", "spike", "p50-µs", "p99-µs", "p99.9-µs", "max-µs",
		"stalls", "stall-ms", "throttle-ms", "peak-imms"}, rows)
	r.Printf("(%d entries, %d B values, sustained fillrandom, %s bins; tput-cv = stddev/mean of per-bin op counts; peak-imms sampled every 2 ms)", n, valueSize, binWidth)
	r.Printf("shape: unbounded MioDB records zero stalls because bursts rotate into the elastic buffer — the deferred cost shows up as peak-imms, not stall counters — and its throughput variance and spike factor sit well below the baselines'. The bounded arm trades a measured throttle/stall budget for a backlog capped at its thresholds. The baselines show the classic stall signature: periodic throughput troughs (NoveLSM's trace goes flat while its memtables drain) and measured interval stalls.")

	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_stability.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}

// throughputCV summarizes a timeline's throughput variability as the
// coefficient of variation (stddev/mean) of per-bin op counts. The last
// bin is dropped — it is almost always partial. A stall-free store sits
// near 0; periodic write stalls push it up.
func throughputCV(tl *histogram.Timeline) float64 {
	bins := tl.Bins()
	if len(bins) > 1 {
		bins = bins[:len(bins)-1]
	}
	if len(bins) == 0 {
		return 0
	}
	var sum float64
	for _, b := range bins {
		sum += float64(b.Count)
	}
	mean := sum / float64(len(bins))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, b := range bins {
		d := float64(b.Count) - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(bins))) / mean
}
