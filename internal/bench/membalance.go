package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"miodb/internal/core"
	"miodb/internal/histogram"
	"miodb/internal/shard"
	"miodb/internal/stats"
	"miodb/internal/ycsb"
)

// MemBalance is the adaptive-memory-governor experiment: skewed zipfian
// traffic concentrated on a few of 8 shards, adaptive vs static at equal
// total memory. The static arm splits the global memtable budget evenly,
// so the hot shards rotate and flush constantly while cold shards sit on
// idle arenas; the governed arm rebalances the same budget toward the
// heat and should show fewer hot-shard flushes at throughput/p99 no
// worse. The JSON artifact carries per-shard flush counts and
// memtable-target timelines (as JSONTimeline, in byte units — see the
// note it embeds).
func MemBalance(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("membalance", "Adaptive memory governor: skewed 8-shard fill, adaptive vs static at equal total memory", p.Out)
	const (
		shards    = 8
		valueSize = 4 << 10
		writers   = 4
		binWidth  = 20 * time.Millisecond
	)
	budget := int64(shards) * (64 << 10) // both arms: 8 × 64 KB total
	n := int(24000 * p.Scale)
	if n < 6000 {
		n = 6000
	}

	// Pre-bucket the keyspace by routing shard so the drivers can aim
	// traffic: each op picks a shard by scrambled zipfian (the scramble
	// is a pure function of the rank, so every writer — and both arms —
	// shares one shard-popularity pattern) and then a uniform key from
	// that shard's pool. Routing is a pure key hash, identical across
	// arms.
	pools := make([][]uint64, shards)
	{
		probe, err := shard.Open(shards, coreConfigFor(budget))
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < uint64(n); i++ {
			sh := probe.ShardFor(dbKey(i))
			pools[sh] = append(pools[sh], i)
		}
		probe.Close()
	}

	arms := []struct {
		name string
		gov  *shard.GovernorOptions
	}{
		{"static", nil},
		{"adaptive", &shard.GovernorOptions{Budget: budget, Interval: 5 * time.Millisecond}},
	}
	jr := NewJSONReport("membalance", map[string]interface{}{
		"shards": shards, "budget_bytes": budget, "ops": n,
		"value_size": valueSize, "writers": writers, "bin_ms": binWidth.Seconds() * 1e3,
	})
	jr.Note("target/* results are memtable-target timelines, not latencies: each sample records the shard's target bytes as a duration, so mean_us × 1000 = target bytes (mean_us ≈ target KB).")

	rows := [][]string{}
	var hotShard int
	for _, arm := range arms {
		router, err := shard.OpenGoverned(shards, coreConfigFor(budget), arm.gov)
		if err != nil {
			return nil, err
		}

		// Sample every shard's memtable target while the fill runs: the
		// static arm's lines are flat at budget/n, the governed arm's
		// spread apart as heat concentrates.
		targetTLs := make([]*histogram.Timeline, shards)
		for i := range targetTLs {
			targetTLs[i] = histogram.NewTimeline(binWidth)
		}
		var (
			sampleWG  sync.WaitGroup
			sampleDie = make(chan struct{})
		)
		sampleWG.Add(1)
		go func() {
			defer sampleWG.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-sampleDie:
					return
				case <-tick.C:
					for i, t := range router.MemTableTargets() {
						targetTLs[i].Record(time.Duration(t))
					}
				}
			}
		}()

		latTL := histogram.NewTimeline(binWidth)
		res, err := skewedShardFill(router, pools, n, valueSize, p.Seed, writers, latTL)
		close(sampleDie)
		sampleWG.Wait()
		if err != nil {
			router.Close()
			return nil, fmt.Errorf("%s: %w", arm.name, err)
		}
		router.WaitIdle()
		st := router.Stats()
		targets := router.MemTableTargets()
		moves := router.GovernorMoves()
		router.Close()

		// The hot shard is the one the skew hit hardest; the scramble is
		// arm-independent, so both arms agree on it.
		hotShard = 0
		var totalFlushes int64
		for i, sh := range st.Shards {
			totalFlushes += sh.Flushes
			if sh.Puts > st.Shards[hotShard].Puts {
				hotShard = i
			}
		}
		hot := st.Shards[hotShard]

		extra := map[string]float64{
			"flushes_total":  float64(totalFlushes),
			"flushes_hot":    float64(hot.Flushes),
			"rotations_hot":  float64(hot.Rotations),
			"hot_shard":      float64(hotShard),
			"governor_moves": float64(moves),
		}
		for i, sh := range st.Shards {
			extra[fmt.Sprintf("flushes_shard%d", i)] = float64(sh.Flushes)
			extra[fmt.Sprintf("puts_shard%d", i)] = float64(sh.Puts)
			extra[fmt.Sprintf("target_shard%d", i)] = float64(targets[i])
		}
		jr.AddRuns("fill/"+arm.name,
			map[string]interface{}{"arm": arm.name, "ops": n, "writers": writers},
			[]RunResult{res}, extra)
		for i, tl := range targetTLs {
			jr.AddRuns(fmt.Sprintf("target/%s/shard=%d", arm.name, i),
				map[string]interface{}{"arm": arm.name, "shard": i},
				[]RunResult{{Ops: res.Ops, Timeline: tl}}, nil)
		}

		l := res.Latency
		rows = append(rows, []string{
			arm.name, f1(res.KIOPS), usec(l.P50), usec(l.P99), usec(l.P999),
			fmt.Sprintf("%d", totalFlushes), fmt.Sprintf("%d", hot.Flushes),
			fmt.Sprintf("%d", targets[hotShard]>>10), fmt.Sprintf("%d", moves),
		})
		r.Printf("%-8s flushes/shard: %s  targets-KB: %s", arm.name,
			perShardInts(st.Shards, func(s int) int64 { return st.Shards[s].Flushes }),
			perShardInts(st.Shards, func(s int) int64 { return targets[s] >> 10 }))
	}
	r.Table([]string{"arm", "KIOPS", "p50-µs", "p99-µs", "p99.9-µs", "flushes", "hot-flushes", "hot-target-KB", "moves"}, rows)
	r.Printf("(%d ops, %d B values, %d writers, %d shards sharing a %d KB budget; shard %d is the zipfian hot spot; targets sampled every 2 ms)",
		n, valueSize, writers, shards, budget>>10, hotShard)
	r.Printf("shape: the static arm flushes the hot shard constantly — its 1/%d slice of the budget is too small for ~a third of the traffic — while cold shards idle. The governor reads the same heat the flush counters do and moves budget toward it, so the adaptive arm's hot-shard memtable grows toward the ChunkSize cap, its flush count drops well below the static arm's, and throughput/p99 stay no worse (the write path only reads one extra atomic). Hysteresis suppresses sub-15%% wobble, so per tick most shards stand still — the moves column divided by the tick count stays near one shard per tick, not %d.", shards, shards)

	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_membalance.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}

// coreConfigFor is the shared per-arm store shape: 8 shards of
// budget/8 each, simulation on, matching OpenStore's MioDB defaults.
func coreConfigFor(budget int64) core.Options {
	return core.Options{
		MemTableSize: budget / 8,
		Levels:       8,
		Simulate:     true,
		TimeScale:    1,
	}
}

// skewedShardFill drives total writes from `writers` goroutines: each op
// picks a target shard by scrambled zipfian over the shard indices, then
// a uniform key from that shard's pool. Latencies land in one shared
// histogram and timeline.
func skewedShardFill(s *shard.Router, pools [][]uint64, total, valueSize int, seed int64, writers int, tl *histogram.Timeline) (RunResult, error) {
	if writers < 1 {
		writers = 1
	}
	h := histogram.New()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	per := total / writers
	start := time.Now()
	for g := 0; g < writers; g++ {
		n := per
		if g == 0 {
			n += total - per*writers
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			choose := ycsb.NewZipfianChooser(uint64(len(pools)), seed+int64(g)*7919)
			rnd := rand.New(rand.NewSource(seed + int64(g)*104729))
			pool := newValuePool(g+1, valueSize, 64)
			for i := 0; i < n; i++ {
				sh := int(choose.Choose(uint64(len(pools))))
				keys := pools[sh]
				if len(keys) == 0 {
					continue
				}
				k := dbKey(keys[rnd.Intn(len(keys))])
				v := pool.value()
				t0 := time.Now()
				if err := s.Put(k, v); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
				d := time.Since(t0)
				h.Record(d)
				tl.Record(d)
			}
		}(g, n)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return RunResult{}, err
	default:
	}
	return finishRun(int64(total), time.Since(start), h, tl), nil
}

// perShardInts renders a compact per-shard int list for report lines.
func perShardInts(shardsSnap []stats.Snapshot, get func(i int) int64) string {
	out := ""
	for i := range shardsSnap {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", get(i))
	}
	return out
}
