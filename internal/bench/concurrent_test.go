package bench

import (
	"fmt"
	"testing"

	"miodb/internal/core"
)

// BenchmarkConcurrentWrites measures multi-writer fill throughput with
// the device latency models on — the regime the group-commit write
// pipeline targets. It sweeps 1/2/4/8/16 writer goroutines over uniform
// and zipfian key distributions, against MioDB and the baselines (whose
// write paths stay serialized).
//
// Run e.g.:
//
//	go test ./internal/bench -bench ConcurrentWrites -benchtime 1x
func BenchmarkConcurrentWrites(b *testing.B) {
	const (
		entries   = 8000
		valueSize = 128
	)
	arms := []struct {
		name string
		cfg  Config
	}{
		{"miodb", Config{Kind: MioDB, Simulate: true}},
		// The seed's write path: every writer commits individually under
		// the commit lock with a per-record WAL append. This is the
		// baseline the ≥2× group-commit claim is measured against.
		{"miodb-serial", Config{Kind: MioDB, Simulate: true, GroupCommit: core.Bool(false)}},
		{"novelsm", Config{Kind: NoveLSM, Simulate: true}},
		{"matrixkv", Config{Kind: MatrixKV, Simulate: true}},
	}
	if testing.Short() {
		arms = arms[:2]
	}
	for _, arm := range arms {
		for _, dist := range []KeyDist{Uniform, Zipfian} {
			for _, writers := range []int{1, 2, 4, 8, 16} {
				name := fmt.Sprintf("%s/%s/writers=%d", arm.name, dist, writers)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						s, err := OpenStore(arm.cfg)
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						r, err := ConcurrentFill(s, entries, entries, valueSize, 1, writers, dist)
						if err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						b.ReportMetric(r.KIOPS*1000, "ops/s")
						if gs := meanGroupSize(s); gs > 0 {
							b.ReportMetric(gs, "group-size")
						}
						s.Close()
						b.StartTimer()
					}
					b.SetBytes(int64(entries * (valueSize + 16) / 1))
				})
			}
		}
	}
}

// meanGroupSize extracts the commit-group coalescing factor when the
// store reports one (MioDB after the group-commit pipeline; 0 otherwise).
func meanGroupSize(s Store) float64 {
	st := s.Stats()
	if st.WriteGroups == 0 {
		return 0
	}
	return float64(st.GroupedWrites) / float64(st.WriteGroups)
}
