package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"miodb/internal/core"
	"miodb/internal/histogram"
	"miodb/internal/kvstore"
	"miodb/internal/ycsb"
)

// ConcurrentReadRandom drives total point lookups from `readers`
// goroutines over keys drawn uniformly from [0, keySpace) — db_bench's
// readrandom under the multi-client regime the lock-free read path
// targets. total is split evenly across readers; the remainder goes to
// reader 0. Misses are tolerated and counted (fillrandom leaves gaps).
func ConcurrentReadRandom(s kvstore.Store, total int, keySpace uint64, seed int64, readers int) (RunResult, int, error) {
	if readers < 1 {
		readers = 1
	}
	h := histogram.New()
	var wg sync.WaitGroup
	var misses atomic.Int64
	errCh := make(chan error, readers)
	per := total / readers
	start := time.Now()
	for g := 0; g < readers; g++ {
		n := per
		if g == 0 {
			n += total - per*readers
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			choose := ycsb.NewUniformChooser(seed + int64(g)*7919)
			for i := 0; i < n; i++ {
				k := dbKey(choose.Choose(keySpace))
				t0 := time.Now()
				_, err := s.Get(k)
				h.Record(time.Since(t0))
				if err == kvstore.ErrNotFound {
					misses.Add(1)
				} else if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return RunResult{}, int(misses.Load()), err
	default:
	}
	return finishRun(int64(total), time.Since(start), h, nil), int(misses.Load()), nil
}

// ConcurrentMixed drives total operations from `threads` goroutines, each
// reading with probability readFrac and updating otherwise, over a
// zipfian key popularity (YCSB's scrambled-zipfian, theta 0.99).
// readFrac 0.95 is YCSB-B (read-heavy), 1.0 is YCSB-C (read-only) — the
// mixed regimes where the read path's independence from db.mu (and from
// the writers contending on it) is measured.
func ConcurrentMixed(s kvstore.Store, total int, keySpace uint64, valueSize int, seed int64, threads int, readFrac float64) (RunResult, error) {
	if threads < 1 {
		threads = 1
	}
	h := histogram.New()
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	per := total / threads
	start := time.Now()
	for g := 0; g < threads; g++ {
		n := per
		if g == 0 {
			n += total - per*threads
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			choose := ycsb.NewZipfianChooser(keySpace, seed+int64(g)*7919)
			opRnd := ycsb.NewUniformChooser(seed + int64(g)*104729 + 1)
			pool := newValuePool(g+1, valueSize, 64)
			for i := 0; i < n; i++ {
				k := dbKey(choose.Choose(keySpace))
				// Scale to 1e6 buckets for the read/update coin flip.
				isRead := readFrac >= 1 || float64(opRnd.Choose(1_000_000)) < readFrac*1_000_000
				t0 := time.Now()
				if isRead {
					if _, err := s.Get(k); err != nil && err != kvstore.ErrNotFound {
						errCh <- fmt.Errorf("thread %d: %w", g, err)
						return
					}
				} else {
					if err := s.Put(k, pool.value()); err != nil {
						errCh <- fmt.Errorf("thread %d: %w", g, err)
						return
					}
				}
				h.Record(time.Since(t0))
			}
		}(g, n)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return RunResult{}, err
	default:
	}
	return finishRun(int64(total), time.Since(start), h, nil), nil
}

// ReadScale is the multi-reader experiment behind the lock-free read
// path: read throughput vs thread count, the epoch-pinned read path
// against its own mutex-refcount ablation (the seed's acquire/release
// under the global lock), for read-only uniform keys and the YCSB-B
// (95/5 zipfian) and YCSB-C (100/0 zipfian) mixes.
func ReadScale(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("readscale", "Multi-reader throughput (KIOPS): epoch-pinned reads vs mutex-refcount", p.Out)
	const valueSize = 128
	n := int(24000 * p.Scale)
	if n < 4000 {
		n = 4000
	}
	ops := int(48000 * p.Scale)
	if ops < 8000 {
		ops = 8000
	}
	arms := []struct {
		name string
		cfg  Config
	}{
		{"miodb", Config{Kind: MioDB, Simulate: true}},
		{"miodb-mutexread", Config{Kind: MioDB, Simulate: true, EpochReads: core.Bool(false)}},
		{"miodb-sh4", Config{Kind: MioDB, Simulate: true, Shards: 4}},
	}
	workloads := []struct {
		name     string
		readFrac float64 // <0 means uniform read-only (no mixing, no zipf)
	}{
		{"readonly", -1},
		{"ycsb-b", 0.95},
		{"ycsb-c", 1.0},
	}
	// Best-of-three per cell, as in the concurrent-write experiment:
	// scheduler noise on small hosts swamps single-shot runs.
	const reps = 3
	jr := NewJSONReport("readscale", map[string]interface{}{
		"entries": n, "ops": ops, "value_size": valueSize, "reps": reps,
	})
	for _, wl := range workloads {
		rows := [][]string{}
		for _, threads := range []int{1, 2, 4, 8, 16} {
			row := []string{fmt.Sprintf("%d", threads)}
			for _, arm := range arms {
				best := 0.0
				var bestStats struct {
					fpRate float64
					swept  int64
				}
				var runs []RunResult
				for rep := 0; rep < reps; rep++ {
					s, err := OpenStore(arm.cfg)
					if err != nil {
						return nil, err
					}
					// Preload and quiesce so the measured phase reads a
					// settled multi-level structure.
					if _, err := FillRandom(s, n, uint64(n), valueSize, p.Seed, nil); err != nil {
						s.Close()
						return nil, err
					}
					if err := s.Flush(); err != nil {
						s.Close()
						return nil, err
					}
					s.ResetCounters()
					var res RunResult
					if wl.readFrac < 0 {
						res, _, err = ConcurrentReadRandom(s, ops, uint64(n), p.Seed+int64(rep)+1, threads)
					} else {
						res, err = ConcurrentMixed(s, ops, uint64(n), valueSize, p.Seed+int64(rep)+1, threads, wl.readFrac)
					}
					if err != nil {
						s.Close()
						return nil, err
					}
					st := s.Stats()
					s.Close()
					runs = append(runs, res)
					if res.KIOPS > best {
						best = res.KIOPS
						bestStats.fpRate = st.BloomFalsePositiveRate
						bestStats.swept = st.VersionsSwept
					}
				}
				jr.AddRuns(
					fmt.Sprintf("%s/threads=%d/%s", wl.name, threads, arm.name),
					map[string]interface{}{"workload": wl.name, "threads": threads, "arm": arm.name},
					runs,
					map[string]float64{"bloom_fp_rate": bestStats.fpRate},
				)
				row = append(row, f1(best))
				if arm.name == "miodb" {
					row = append(row, fmt.Sprintf("%.3f", bestStats.fpRate))
				}
			}
			rows = append(rows, row)
		}
		r.Table([]string{"threads", "miodb", "bloom-fp", "miodb-mutexread", "miodb-sh4"}, rows)
		r.Printf("(%s, %d entries preloaded, %d ops, best of %d runs)", wl.name, n, ops, reps)
	}
	r.Printf("shape: with one reader the arms coincide (an uncontended mutex costs little more than an epoch announce). As threads grow, the epoch arm scales with core count while the mutex arm flattens — every acquire/release serializes on db.mu against all other readers, and in the mixed runs against writers and compaction too. The bloom-fp column is the measured filter false-positive rate during the run. The miodb-sh4 arm partitions the same build over 4 engines; reads were already lock-free, so sharding mostly helps the mixed workloads, where each shard's writers contend on a quarter of the keyspace.")
	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_readscale.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}
