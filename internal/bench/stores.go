// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5). It provides:
//
//   - a uniform store factory over MioDB and the three baselines, with the
//     paper's configuration scaled 1/1000 (DESIGN.md §1);
//   - db_bench-style micro-benchmark runners (fillseq/fillrandom/
//     readseq/readrandom) and a YCSB driver;
//   - one experiment function per paper table/figure, each printing the
//     rows/series the paper reports (see experiments.go and DESIGN.md §3).
package bench

import (
	"fmt"

	"miodb/internal/baseline/leveldbkv"
	"miodb/internal/baseline/matrixkv"
	"miodb/internal/baseline/novelsm"
	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/shard"
	"miodb/internal/vfs"
)

// StoreKind names one of the systems under comparison.
type StoreKind string

// The comparison set of §5.
const (
	MioDB        StoreKind = "miodb"
	LevelDB      StoreKind = "leveldb"
	NoveLSM      StoreKind = "novelsm"
	NoveLSMNoSST StoreKind = "novelsm-nosst"
	NoveLSMHier  StoreKind = "novelsm-hier"
	MatrixKV     StoreKind = "matrixkv"
)

// Config is the shared store configuration; zero fields take the paper's
// scaled defaults.
type Config struct {
	Kind StoreKind

	// MemTableSize is the DRAM buffer (paper 64 MB → 64 KB).
	MemTableSize int64
	// NVMBufferSize is NoveLSM's NVM memtable / MatrixKV's container
	// budget (paper 4–8 GB → 4–8 MB).
	NVMBufferSize int64
	// Levels is MioDB's elastic-buffer depth (paper default 8).
	Levels int
	// Shards hash-partitions MioDB over this many independent engines
	// (0/1 = the single-engine path; baselines ignore it).
	Shards int
	// SSD switches the block tier to the SSD profile (the §5.4
	// DRAM-NVM-SSD hierarchy); otherwise baselines keep SSTables on
	// NVM-as-block and MioDB uses the in-NVM repository.
	SSD bool
	// Simulate enables the device latency models (on for benchmarks).
	Simulate bool
	// TimeScale scales injected latencies.
	TimeScale float64

	// Admission bounds MioDB's elastic-buffer backlog (nil = the paper's
	// stall-free unbounded rotation; baselines ignore it). The stability
	// experiment uses it to compare bounded vs unbounded arms.
	Admission *core.AdmissionOptions

	// ValueLog enables MioDB's key-value separation (nil = value-inline;
	// baselines ignore it). The valuesize experiment compares the two
	// arms at equal memory across value sizes.
	ValueLog *core.ValueLogOptions

	// MemoryBudget is the sharded MioDB store's global memtable budget:
	// each shard starts at MemoryBudget/Shards (overriding MemTableSize).
	// 0 keeps the per-shard MemTableSize semantics.
	MemoryBudget int64
	// Governor enables adaptive rebalancing of the budget across shards
	// (nil = static split; requires Shards > 1). The membalance
	// experiment compares the two at equal total memory.
	Governor *shard.GovernorOptions

	// MioDB ablation switches (nil = paper defaults).
	ParallelCompaction *bool
	ZeroCopyMerge      *bool
	OnePieceFlush      *bool
	GroupCommit        *bool
	EpochReads         *bool
	DisableBloom       bool
	DisableWAL         bool
}

func (c Config) withDefaults() Config {
	if c.MemTableSize <= 0 {
		c.MemTableSize = 64 << 10
	}
	if c.NVMBufferSize <= 0 {
		if c.Kind == MatrixKV {
			c.NVMBufferSize = 8 << 20
		} else {
			c.NVMBufferSize = 4 << 20
		}
	}
	if c.Levels <= 0 {
		c.Levels = 8
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	return c
}

// Store extends kvstore.Store with the counter reset the harness uses
// between load and measure phases.
type Store interface {
	kvstore.Store
	ResetCounters()
}

// miodbStore adapts core.DB to the harness interface.
type miodbStore struct{ *core.DB }

func (s miodbStore) Flush() error { return s.DB.FlushAll() }

// lsmOptions builds the shared leveled-tree configuration (64 KB tables,
// 10× fanout — the paper's "64 MB SSTables with an amplification factor
// of 10", scaled).
func lsmOptions() lsm.Options {
	return lsm.Options{
		TableSize: 64 << 10,
		L1Size:    640 << 10,
		Fanout:    10,
		NumLevels: 7,
	}
}

func (c Config) disk() *vfs.Disk {
	if c.SSD {
		return vfs.NewDisk(vfs.SSDProfile())
	}
	return vfs.NewDisk(vfs.NVMBlockProfile())
}

// OpenStore builds the requested system.
func OpenStore(c Config) (Store, error) {
	c = c.withDefaults()
	if c.ValueLog != nil && c.Kind != MioDB {
		// Only MioDB implements kvstore.ValueLogger; refuse up front
		// rather than silently benchmarking an arm that isn't there.
		return nil, fmt.Errorf("bench: store kind %q does not support key-value separation (ValueLog)", c.Kind)
	}
	switch c.Kind {
	case MioDB:
		opts := core.Options{
			MemTableSize:       c.MemTableSize,
			Levels:             c.Levels,
			Simulate:           c.Simulate,
			TimeScale:          c.TimeScale,
			ParallelCompaction: c.ParallelCompaction,
			ZeroCopyMerge:      c.ZeroCopyMerge,
			OnePieceFlush:      c.OnePieceFlush,
			GroupCommit:        c.GroupCommit,
			EpochReads:         c.EpochReads,
			DisableWAL:         c.DisableWAL,
			Admission:          c.Admission,
			ValueLog:           c.ValueLog,
		}
		if c.DisableBloom {
			opts.BloomBitsPerKey = -1
		}
		if c.SSD {
			opts.SSD = &core.SSDOptions{
				Disk: vfs.NewDisk(vfs.SSDProfile()),
				LSM:  lsmOptions(),
			}
		}
		if c.Shards > 1 {
			// Each shard builds its own SSD tier from opts when enabled,
			// so the shared Disk handle above must not be reused across
			// shards; sharded SSD mode is not wired in the harness.
			if c.SSD {
				return nil, fmt.Errorf("bench: sharded store does not support -ssd")
			}
			if c.Governor != nil {
				g := *c.Governor
				if g.Budget == 0 {
					g.Budget = c.MemoryBudget
				}
				return shard.OpenGoverned(c.Shards, opts, &g)
			}
			if c.MemoryBudget > 0 {
				opts.MemTableSize = c.MemoryBudget / int64(c.Shards)
			}
			return shard.Open(c.Shards, opts)
		}
		if c.Governor != nil {
			return nil, fmt.Errorf("bench: governor requires shards > 1")
		}
		if c.MemoryBudget > 0 {
			opts.MemTableSize = c.MemoryBudget
		}
		db, err := core.Open(opts)
		if err != nil {
			return nil, err
		}
		return miodbStore{db}, nil

	case LevelDB:
		return leveldbkv.Open(leveldbkv.Options{
			MemTableSize: c.MemTableSize,
			Disk:         c.disk(),
			LSM:          lsmOptions(),
			Simulate:     c.Simulate,
			TimeScale:    c.TimeScale,
			DisableWAL:   c.DisableWAL,
		})

	case NoveLSM:
		return novelsm.Open(novelsm.Options{
			MemTableSize:  c.MemTableSize,
			NVMBufferSize: c.NVMBufferSize,
			Disk:          c.disk(),
			LSM:           lsmOptions(),
			Simulate:      c.Simulate,
			TimeScale:     c.TimeScale,
			DisableWAL:    c.DisableWAL,
		})

	case NoveLSMNoSST:
		return novelsm.Open(novelsm.Options{
			MemTableSize:  c.MemTableSize,
			NVMBufferSize: c.NVMBufferSize,
			NoSST:         true,
			Simulate:      c.Simulate,
			TimeScale:     c.TimeScale,
			DisableWAL:    c.DisableWAL,
		})

	case NoveLSMHier:
		return novelsm.Open(novelsm.Options{
			MemTableSize:  c.MemTableSize,
			NVMBufferSize: c.NVMBufferSize,
			Hierarchical:  true,
			Disk:          c.disk(),
			LSM:           lsmOptions(),
			Simulate:      c.Simulate,
			TimeScale:     c.TimeScale,
			DisableWAL:    c.DisableWAL,
		})

	case MatrixKV:
		return matrixkv.Open(matrixkv.Options{
			MemTableSize:  c.MemTableSize,
			NVMBufferSize: c.NVMBufferSize,
			Disk:          c.disk(),
			LSM:           lsmOptions(),
			Simulate:      c.Simulate,
			TimeScale:     c.TimeScale,
			DisableWAL:    c.DisableWAL,
		})
	}
	return nil, fmt.Errorf("bench: unknown store kind %q", c.Kind)
}
