package bench

import (
	"fmt"
	"path/filepath"
)

// ShardScale is the multi-core scaling experiment behind the shard
// router: fill and readrandom throughput vs shard count at a fixed
// thread count, so the partitioned front end (N MemTables, N WALs, N
// commit locks) is compared arm-vs-arm against the single engine the
// same build runs with Shards=1. On a single-core host the arms should
// roughly coincide — partitioning buys parallelism, not work reduction —
// so the table is primarily a multi-core artifact (see EXPERIMENTS.md's
// single-core caveat).
func ShardScale(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("shardscale", "Sharded store throughput (KIOPS) vs shard count", p.Out)
	const valueSize = 128
	const threads = 8
	n := int(32000 * p.Scale)
	if n < 4000 {
		n = 4000
	}
	// Best-of-three per cell, as in the other concurrency experiments:
	// scheduler noise on small hosts swamps single-shot runs.
	const reps = 3
	jr := NewJSONReport("shardscale", map[string]interface{}{
		"entries": n, "value_size": valueSize, "threads": threads, "reps": reps,
	})
	rows := [][]string{}
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := Config{Kind: MioDB, Simulate: true, Shards: shards}
		bestFill, bestRead := 0.0, 0.0
		var maxImbalance float64
		var fillRuns, readRuns []RunResult
		for rep := 0; rep < reps; rep++ {
			s, err := OpenStore(cfg)
			if err != nil {
				return nil, err
			}
			fill, err := ConcurrentFill(s, n, uint64(n), valueSize, p.Seed+int64(rep), threads, Uniform)
			if err != nil {
				s.Close()
				return nil, err
			}
			if err := s.Flush(); err != nil {
				s.Close()
				return nil, err
			}
			read, _, err := ConcurrentReadRandom(s, n, uint64(n), p.Seed+int64(rep)+1, threads)
			if err != nil {
				s.Close()
				return nil, err
			}
			st := s.Stats()
			s.Close()
			fillRuns = append(fillRuns, fill)
			readRuns = append(readRuns, read)
			if fill.KIOPS > bestFill {
				bestFill = fill.KIOPS
			}
			if read.KIOPS > bestRead {
				bestRead = read.KIOPS
			}
			// Routing balance: max shard's write share over the ideal
			// 1/shards share (1.00 = perfectly even).
			if len(st.Shards) > 0 {
				var maxPuts int64
				for _, sh := range st.Shards {
					if sh.Puts > maxPuts {
						maxPuts = sh.Puts
					}
				}
				imb := float64(maxPuts) * float64(len(st.Shards)) / float64(st.Puts)
				if imb > maxImbalance {
					maxImbalance = imb
				}
			}
		}
		balance := "-"
		if maxImbalance > 0 {
			balance = fmt.Sprintf("%.2f", maxImbalance)
		}
		cellCfg := map[string]interface{}{"shards": shards}
		extra := map[string]float64{}
		if maxImbalance > 0 {
			extra["balance"] = maxImbalance
		}
		jr.AddRuns(fmt.Sprintf("fill/shards=%d", shards), cellCfg, fillRuns, extra)
		jr.AddRuns(fmt.Sprintf("readrandom/shards=%d", shards), cellCfg, readRuns, nil)
		rows = append(rows, []string{
			fmt.Sprintf("%d", shards), f1(bestFill), f1(bestRead), balance,
		})
	}
	r.Table([]string{"shards", "fill", "readrandom", "balance"}, rows)
	r.Printf("(%d entries, %d B values, %d writer/reader threads, uniform keys, best of %d runs; balance = hottest shard's write share ÷ the even 1/N share)", n, valueSize, threads, reps)
	r.Printf("shape: shards=1 is byte-for-byte the single-engine path. Each added shard splits the front end — its own MemTable, WAL, commit lock, and compaction pipeline — so on a multi-core host fill and readrandom scale with shard count until cores run out; on a single-core host the arms roughly coincide (the hash split adds a few percent of routing overhead and buys no parallelism). FNV-1a routing keeps the balance column near 1.0: no shard becomes a hot spot under uniform keys.")
	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_shardscale.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}
