package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"miodb/internal/client"
	"miodb/internal/histogram"
	"miodb/internal/kvstore"
	"miodb/internal/server"
)

// multiGetSizes is the swept group size: how many keys one logical
// lookup needs. 1 is the degenerate case (MGET overhead vs a plain GET).
var multiGetSizes = []int{1, 2, 4, 8, 16}

// multiGetReps repetitions per cell, reported best + median.
var multiGetReps = 3

// multiGetRep times `groups` lookups of `size` keys each over one
// pipelined connection, either as one MGET round trip per group or as
// size concurrent pipelined GETs per group (the client-side emulation
// MGET replaces). Latency is recorded per group — the time until the
// whole answer set is in hand, which is what a caller assembling a page
// of records experiences.
func multiGetRep(addr string, size, groups int, keySpace uint64, seed int64, useMGet bool) (RunResult, error) {
	c, err := client.Dial(addr, client.Options{Window: 64})
	if err != nil {
		return RunResult{}, err
	}
	defer c.Close()

	choose := Uniform.chooser(keySpace, seed)
	keys := make([][]byte, size)
	h := histogram.New()
	start := time.Now()
	for g := 0; g < groups; g++ {
		for i := range keys {
			keys[i] = dbKey(choose.Choose(keySpace))
		}
		t0 := time.Now()
		// FillRandom leaves coupon-collector holes in the key space, so
		// ErrNotFound is a valid answer, not a failure.
		if useMGet {
			_, errs := c.GetMulti(keys)
			for _, err := range errs {
				if err != nil && err != kvstore.ErrNotFound {
					return RunResult{}, fmt.Errorf("mget: %w", err)
				}
			}
		} else {
			var wg sync.WaitGroup
			errCh := make(chan error, size)
			for _, k := range keys {
				wg.Add(1)
				go func(k []byte) {
					defer wg.Done()
					if _, err := c.Get(k); err != nil && err != kvstore.ErrNotFound {
						errCh <- err
					}
				}(k)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				return RunResult{}, fmt.Errorf("pipelined get: %w", err)
			default:
			}
		}
		h.Record(time.Since(t0))
	}
	dur := time.Since(start)
	// Ops = keys answered, so KIOPS compares across group sizes; the
	// histogram stays per-group.
	return finishRun(int64(groups*size), dur, h, nil), nil
}

// MultiGet is the versioned-read-API experiment: GetMulti (one MGET
// round trip, one pinned version per engine) versus the same lookups as
// N concurrent pipelined GETs, at group sizes 1–16 over loopback. The
// pipelined-GET arm is the strongest client-side emulation — without
// pipelining the gap is a full RTT per key, not per group.
func MultiGet(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("multiget", "GetMulti vs pipelined Gets: loopback lookup groups", p.Out)
	const valueSize = 128
	records := int(8000 * p.Scale)
	if records < 2000 {
		records = 2000
	}
	groups := int(6000 * p.Scale)
	if groups < 1500 {
		groups = 1500
	}
	reps := multiGetReps

	jr := NewJSONReport("multiget", map[string]interface{}{
		"store":      "miodb",
		"value_size": valueSize,
		"records":    records,
		"groups":     groups,
		"reps":       reps,
		"scale":      p.Scale,
	})

	// One preloaded store and server for the whole sweep: the workload is
	// read-only, so arms don't disturb each other.
	s, err := OpenStore(Config{Kind: MioDB, Simulate: true})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := FillRandom(s, records, uint64(records), valueSize, p.Seed, nil); err != nil {
		return nil, err
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	srv := server.NewWithOptions(s, server.Options{Window: 128})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	rows := [][]string{}
	for _, size := range multiGetSizes {
		var mgetRuns, getRuns []RunResult
		var mgetBest, getBest RunResult
		for rep := 0; rep < reps; rep++ {
			seed := p.Seed + int64(rep)*7919
			mres, err := multiGetRep(addr.String(), size, groups, uint64(records), seed, true)
			if err != nil {
				return nil, fmt.Errorf("size=%d mget: %w", size, err)
			}
			gres, err := multiGetRep(addr.String(), size, groups, uint64(records), seed, false)
			if err != nil {
				return nil, fmt.Errorf("size=%d gets: %w", size, err)
			}
			mgetRuns = append(mgetRuns, mres)
			getRuns = append(getRuns, gres)
			if mres.KIOPS > mgetBest.KIOPS {
				mgetBest = mres
			}
			if gres.KIOPS > getBest.KIOPS {
				getBest = gres
			}
		}
		jr.AddRuns(fmt.Sprintf("mget/size=%d", size),
			map[string]interface{}{"size": size, "groups": groups, "api": "GetMulti"},
			mgetRuns, nil)
		jr.AddRuns(fmt.Sprintf("gets/size=%d", size),
			map[string]interface{}{"size": size, "groups": groups, "api": "pipelined-Get"},
			getRuns, nil)

		speedup := 0.0
		if getBest.KIOPS > 0 {
			speedup = mgetBest.KIOPS / getBest.KIOPS
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", size),
			f1(mgetBest.KIOPS), f1(median(kiopsOf(mgetRuns))),
			usec(mgetBest.Latency.P50), usec(mgetBest.Latency.P99),
			f1(getBest.KIOPS), f1(median(kiopsOf(getRuns))),
			usec(getBest.Latency.P50), usec(getBest.Latency.P99),
			f2(speedup),
		})
	}
	r.Table([]string{"keys/group",
		"mget-KIOPS", "mget-med", "mget-p50-µs", "mget-p99-µs",
		"gets-KIOPS", "gets-med", "gets-p50-µs", "gets-p99-µs",
		"speedup"}, rows)
	r.Printf("(%d B values, %d uniform records, %d lookup groups per arm, best of %d runs; KIOPS counts keys answered, latency is per whole group; speedup = best mget / best pipelined-gets)", valueSize, records, groups, reps)
	r.Printf("shape: at size 1 the two are the same wire exchange, so the ratio sits near 1. As the group grows, MGET stays one round trip and one version pin while the GET arm pays per-key framing, per-key dispatch, and a version pin per key — the gap widens with group size and the mget per-group latency grows far slower than the gets arm's.")

	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_multiget.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}
