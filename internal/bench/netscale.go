package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"miodb/internal/client"
	"miodb/internal/histogram"
	"miodb/internal/server"
)

// netArm is one cell of the netscale sweep: how many TCP connections,
// and how many requests each keeps in flight (its pipeline window).
// depth=1 is the ablation arm — strict request/response lockstep, the
// pre-pipelining protocol's behavior on the new server.
type netArm struct {
	conns, depth int
}

// netScaleArms is the default sweep: a window sweep at 256 connections
// (1 → 64, where 1 is the no-pipelining ablation) crossed with a
// connection sweep at window 16 (64 → 512). Tests shrink this.
var netScaleArms = []netArm{
	{64, 16},
	{256, 1},
	{256, 4},
	{256, 16},
	{256, 64},
	{512, 16},
}

// netScaleReps repetitions per cell, reported best + median.
var netScaleReps = 3

// netScaleRep drives one timed fill through the network stack: conns
// pipelined connections to addr, depth worker goroutines per connection
// (so each connection holds ~depth requests in flight), total Puts of
// valueSize bytes split evenly across workers, uniform keys in
// [0, keySpace). Dial and teardown are outside the timed region.
func netScaleRep(addr string, conns, depth, total int, keySpace uint64, valueSize int, seed int64) (RunResult, error) {
	clients := make([]*client.Conn, conns)
	for i := range clients {
		c, err := client.Dial(addr, client.Options{Window: depth})
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return RunResult{}, fmt.Errorf("dial conn %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// One shared immutable value set: per-worker pools at 512×64 workers
	// would cost more memory than the store under test.
	vals := make([][]byte, 64)
	for i := range vals {
		vals[i] = dbValue(uint64(i), 1, valueSize)
	}

	workers := conns * depth
	per := total / workers
	rem := total - per*workers
	h := histogram.New()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for ci, c := range clients {
		for d := 0; d < depth; d++ {
			w := ci*depth + d
			n := per
			if w < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(c *client.Conn, w, n int) {
				defer wg.Done()
				choose := Uniform.chooser(keySpace, seed+int64(w)*7919)
				for i := 0; i < n; i++ {
					k := dbKey(choose.Choose(keySpace))
					v := vals[(w+i)%len(vals)]
					t0 := time.Now()
					if err := c.Put(k, v); err != nil {
						errCh <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
					h.Record(time.Since(t0))
				}
			}(c, w, n)
		}
	}
	wg.Wait()
	dur := time.Since(start)
	select {
	case err := <-errCh:
		return RunResult{}, err
	default:
	}
	return finishRun(int64(total), dur, h, nil), nil
}

// NetScale is the network front-end experiment behind the pipelined
// protocol: loopback fill throughput and latency vs connections ×
// pipeline window, against one MioDB server whose cross-connection
// batcher feeds every connection's writes into shared group commits.
// The window=1 arm is the ablation (one request in flight per
// connection, as a non-pipelined client behaves), and a local 8-writer
// ConcurrentFill reference shows what group commit alone achieves
// without the network — its group-size column is the comparison the
// server-side batcher has to beat.
func NetScale(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("netscale", "Pipelined network front end: loopback fill vs conns × window", p.Out)
	const valueSize = 128
	base := int(24000 * p.Scale)
	if base < 4000 {
		base = 4000
	}
	reps := netScaleReps

	jr := NewJSONReport("netscale", map[string]interface{}{
		"store":      "miodb",
		"value_size": valueSize,
		"reps":       reps,
		"base_ops":   base,
		"scale":      p.Scale,
	})

	results := make([]netArmResult, 0, len(netScaleArms))
	for _, arm := range netScaleArms {
		// Keep at least a few ops per worker so deep-window arms actually
		// fill their pipelines instead of measuring dial/teardown edges.
		n := base
		if min := arm.conns * arm.depth * 4; n < min {
			n = min
		}
		ar := netArmResult{arm: arm, ops: n}
		var runs []RunResult
		for rep := 0; rep < reps; rep++ {
			s, err := OpenStore(Config{Kind: MioDB, Simulate: true})
			if err != nil {
				return nil, err
			}
			srv := server.NewWithOptions(s, server.Options{Window: 128})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				s.Close()
				return nil, err
			}
			res, err := netScaleRep(addr.String(), arm.conns, arm.depth, n, uint64(n), valueSize, p.Seed+int64(rep))
			if err != nil {
				srv.Close()
				s.Close()
				return nil, fmt.Errorf("conns=%d window=%d: %w", arm.conns, arm.depth, err)
			}
			srv.Close()
			st := s.Stats()
			s.Close()
			runs = append(runs, res)
			ar.kiops = append(ar.kiops, res.KIOPS)
			if res.KIOPS > ar.best.KIOPS {
				ar.best = res
				ar.groupSize = st.MeanGroupSize
			}
		}
		results = append(results, ar)
		jr.AddRuns(
			fmt.Sprintf("conns=%d/window=%d", arm.conns, arm.depth),
			map[string]interface{}{"conns": arm.conns, "window": arm.depth, "ops": n},
			runs,
			map[string]float64{"mean_group_size": ar.groupSize},
		)
	}

	// Local reference: PR 1's 8-writer direct fill on the same store
	// build — no sockets, group commit formed only by writer contention.
	var localRuns []RunResult
	var localBest RunResult
	localGroup := 0.0
	for rep := 0; rep < reps; rep++ {
		s, err := OpenStore(Config{Kind: MioDB, Simulate: true})
		if err != nil {
			return nil, err
		}
		res, err := ConcurrentFill(s, base, uint64(base), valueSize, p.Seed+int64(rep), 8, Uniform)
		if err != nil {
			s.Close()
			return nil, err
		}
		st := s.Stats()
		s.Close()
		localRuns = append(localRuns, res)
		if res.KIOPS > localBest.KIOPS {
			localBest = res
			localGroup = st.MeanGroupSize
		}
	}
	jr.AddRuns("local/writers=8",
		map[string]interface{}{"writers": 8, "ops": base, "network": false},
		localRuns,
		map[string]float64{"mean_group_size": localGroup},
	)

	rows := [][]string{}
	for _, ar := range results {
		l := ar.best.Latency
		rows = append(rows, []string{
			fmt.Sprintf("%d", ar.arm.conns), fmt.Sprintf("%d", ar.arm.depth),
			f1(ar.best.KIOPS), f1(median(ar.kiops)),
			usec(l.P50), usec(l.P99), usec(l.P999), usec(l.Max),
			f2(ar.groupSize),
		})
	}
	l := localBest.Latency
	rows = append(rows, []string{
		"local×8", "-",
		f1(localBest.KIOPS), f1(median(kiopsOf(localRuns))),
		usec(l.P50), usec(l.P99), usec(l.P999), usec(l.Max),
		f2(localGroup),
	})
	r.Table([]string{"conns", "window", "best-KIOPS", "median-KIOPS", "p50-µs", "p99-µs", "p99.9-µs", "max-µs", "group-size"}, rows)
	r.Printf("(%d B values, uniform keys, ≥%d puts per arm scaled to fill deep windows, best of %d runs; group-size = mean ops per store-level commit; local×8 = PR 1's 8 direct writers, no network)", valueSize, base, reps)

	// Headline: pipelining speedup at the largest conn count that has
	// both a window=1 ablation and a window≥16 arm.
	speedup, atConns := netSpeedup(results)
	if atConns > 0 {
		r.Printf("pipelining speedup at %d conns (window≥16 vs window=1): %.2f×", atConns, speedup)
		jr.Note(fmt.Sprintf("speedup_conns%d=%.3f", atConns, speedup))
	}
	r.Printf("shape: at window=1 every request pays a full syscall round trip on both sides, so throughput is capped by per-op socket costs no matter how many connections pile up. Raising the window lets the client writer coalesce many requests per write() and the server writer many responses — and the cross-connection batcher turns concurrent singles into large shared group commits (group-size far above the local 8-writer reference, which can merge at most 8). Tails grow with depth (requests queue behind their own window); the win is throughput per connection, not per-request latency.")

	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_netscale.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}

// netArmResult is one swept cell's summary.
type netArmResult struct {
	arm       netArm
	best      RunResult
	kiops     []float64
	groupSize float64
	ops       int
}

// netSpeedup finds best-KIOPS(window≥16)/best-KIOPS(window=1) at the
// largest connection count carrying both arms, returning the ratio and
// that connection count (0 if no conn count has both).
func netSpeedup(results []netArmResult) (float64, int) {
	bestConns := 0
	var base, piped float64
	for _, c := range uniqueConns(results) {
		var w1, wn float64
		for _, ar := range results {
			if ar.arm.conns != c {
				continue
			}
			if ar.arm.depth == 1 && ar.best.KIOPS > w1 {
				w1 = ar.best.KIOPS
			}
			if ar.arm.depth >= 16 && ar.best.KIOPS > wn {
				wn = ar.best.KIOPS
			}
		}
		if w1 > 0 && wn > 0 && c > bestConns {
			bestConns, base, piped = c, w1, wn
		}
	}
	if bestConns == 0 {
		return 0, 0
	}
	return piped / base, bestConns
}

func uniqueConns(results []netArmResult) []int {
	seen := map[int]bool{}
	out := []int{}
	for _, ar := range results {
		if !seen[ar.arm.conns] {
			seen[ar.arm.conns] = true
			out = append(out, ar.arm.conns)
		}
	}
	return out
}

func kiopsOf(runs []RunResult) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.KIOPS
	}
	return out
}
