package bench

import (
	"fmt"
	"path/filepath"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/vlog"
)

// valueSizeSweep is the swept value size, 128 B to 256 KB. The smallest
// cell sits below the separation threshold (1 KiB by default), so the
// vlog arm runs there with the log enabled but every value inline — the
// parity point the comparison is anchored on.
var valueSizeSweep = []int{128, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}

// valueSizeReps repetitions per cell, reported best + median.
var valueSizeReps = 2

// valueSizeMemTable picks the per-cell DRAM budget — identical for both
// arms (that is the comparison's contract), scaled up only as far as the
// largest inline entry forces: chunk capacity is MemTableSize/4, and the
// inline arm must fit value-size entries in a chunk.
func valueSizeMemTable(vs int) int64 {
	mt := int64(256 << 10)
	if int64(8*vs) > mt {
		mt = int64(8 * vs)
	}
	return mt
}

// valueSizeArm fills a fresh store and reads it back, reps times.
// Returns the fill and read results plus the last rep's write
// amplification and value-log counters.
func valueSizeArm(p Params, vs int, vlogOn bool) (fills, reads []RunResult, wa float64, vc vlog.Counters, err error) {
	for rep := 0; rep < valueSizeReps; rep++ {
		cfg := Config{
			Kind:         MioDB,
			Simulate:     true,
			MemTableSize: valueSizeMemTable(vs),
		}
		if vlogOn {
			cfg.ValueLog = &core.ValueLogOptions{}
		}
		s, err := OpenStore(cfg)
		if err != nil {
			return nil, nil, 0, vlog.Counters{}, err
		}
		n := p.entries(vs)
		seed := p.Seed + int64(rep)*7919
		fres, err := FillRandom(s, n, uint64(n), vs, seed, nil)
		if err != nil {
			s.Close()
			return nil, nil, 0, vlog.Counters{}, err
		}
		if err := s.Flush(); err != nil {
			s.Close()
			return nil, nil, 0, vlog.Counters{}, err
		}
		// A full GC pass on the separated arm: fillrandom's overwrites
		// leave dead log space, and reclamation cost belongs in the
		// arm's write amplification.
		if lg, ok := s.(kvstore.ValueLogger); ok && lg.ValueLogEnabled() {
			if _, err := lg.RunValueLogGC(); err != nil {
				s.Close()
				return nil, nil, 0, vlog.Counters{}, err
			}
		}
		rres, _, err := ReadRandom(s, p.readOps(), uint64(n), seed+1)
		if err != nil {
			s.Close()
			return nil, nil, 0, vlog.Counters{}, err
		}
		fills = append(fills, fres)
		reads = append(reads, rres)
		wa = s.Stats().WriteAmplification
		if c, ok := s.(interface{ ValueLogCounters() vlog.Counters }); ok {
			vc = c.ValueLogCounters()
		}
		s.Close()
	}
	return fills, reads, wa, vc, nil
}

// ValueSize is the key-value-separation experiment: fillrandom and
// readrandom across value sizes, MioDB with the value log on versus off
// at equal memory budget. The separated arm moves 16-byte pointers
// through flushes and compactions instead of value bytes, so its write
// amplification should fall away from the inline arm's as values grow —
// while small values (below the 1 KiB threshold) stay inline and the two
// arms coincide.
func ValueSize(p Params) (*Report, error) {
	p = p.norm()
	r := NewReport("valuesize", "Key-value separation: WA and throughput vs value size", p.Out)
	jr := NewJSONReport("valuesize", map[string]interface{}{
		"store": "miodb",
		"reps":  valueSizeReps,
		"scale": p.Scale,
	})

	rows := [][]string{}
	for _, vs := range valueSizeSweep {
		inFills, inReads, inWA, _, err := valueSizeArm(p, vs, false)
		if err != nil {
			return nil, fmt.Errorf("value=%d inline: %w", vs, err)
		}
		vlFills, vlReads, vlWA, vc, err := valueSizeArm(p, vs, true)
		if err != nil {
			return nil, fmt.Errorf("value=%d vlog: %w", vs, err)
		}

		cell := map[string]interface{}{"value_size": vs, "entries": p.entries(vs), "memtable": valueSizeMemTable(vs)}
		withArm := func(arm string) map[string]interface{} {
			m := map[string]interface{}{"arm": arm}
			for k, v := range cell {
				m[k] = v
			}
			return m
		}
		jr.AddRuns(fmt.Sprintf("fill/value=%d/arm=inline", vs), withArm("inline"), inFills,
			map[string]float64{"wa": inWA})
		jr.AddRuns(fmt.Sprintf("fill/value=%d/arm=vlog", vs), withArm("vlog"), vlFills,
			map[string]float64{
				"wa":               vlWA,
				"vlog_appends":     float64(vc.Appends),
				"vlog_relocations": float64(vc.GCRelocations),
				"vlog_reclaimed":   float64(vc.GCSegmentsReclaimed),
			})
		jr.AddRuns(fmt.Sprintf("read/value=%d/arm=inline", vs), withArm("inline"), inReads, nil)
		jr.AddRuns(fmt.Sprintf("read/value=%d/arm=vlog", vs), withArm("vlog"), vlReads, nil)

		ratio := 0.0
		if vlWA > 0 {
			ratio = inWA / vlWA
		}
		rows = append(rows, []string{
			sizeLabel(vs),
			f1(bestKIOPS(inFills)), f1(bestKIOPS(vlFills)),
			f1(bestKIOPS(inReads)), f1(bestKIOPS(vlReads)),
			f2(inWA), f2(vlWA), f2(ratio),
		})
	}
	r.Table([]string{"value",
		"fill-inline", "fill-vlog",
		"read-inline", "read-vlog",
		"WA-inline", "WA-vlog", "WA-ratio"}, rows)
	r.Printf("(fillrandom/readrandom KIOPS, best of %d runs per cell; equal DRAM budget per cell; WA from the final rep, separated arm includes GC relocation traffic)", valueSizeReps)
	r.Printf("shape: below the 1 KiB threshold the arms coincide. As values grow the inline arm re-copies value bytes through every flush and merge while the separated arm moves 16-byte pointers, so WA-ratio climbs with value size and the vlog arm's fill throughput holds up; reads pay one extra NVM hop for the indirection.")

	if p.JSONDir != "" {
		path := filepath.Join(p.JSONDir, "BENCH_valuesize.json")
		if err := jr.Write(path); err != nil {
			return nil, fmt.Errorf("write %s: %w", path, err)
		}
		r.Printf("wrote %s", path)
	}
	return r, nil
}

// bestKIOPS is the best throughput across runs.
func bestKIOPS(runs []RunResult) float64 {
	best := 0.0
	for _, r := range runs {
		if r.KIOPS > best {
			best = r.KIOPS
		}
	}
	return best
}

// sizeLabel renders a byte count compactly (128, 1K, 256K).
func sizeLabel(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}
