package bench

import (
	"fmt"
	"math/rand"
	"time"

	"miodb/internal/histogram"
	"miodb/internal/kvstore"
	"miodb/internal/ycsb"
)

// RunResult summarizes one workload phase.
type RunResult struct {
	Ops      int64
	Duration time.Duration
	// KIOPS is throughput in thousand operations per second — the unit
	// the paper's Figures 6, 7, 13, 14 use.
	KIOPS float64
	// Latency holds the per-op latency distribution (Tables 2/3).
	Latency histogram.Snapshot
	// Timeline, when requested, bins latencies over elapsed time (Fig 8).
	Timeline *histogram.Timeline
}

func finishRun(ops int64, dur time.Duration, h *histogram.Histogram, tl *histogram.Timeline) RunResult {
	r := RunResult{Ops: ops, Duration: dur, Timeline: tl}
	if dur > 0 {
		r.KIOPS = float64(ops) / dur.Seconds() / 1000
	}
	if h != nil {
		r.Latency = h.Snapshot()
	}
	return r
}

// dbKey renders a db_bench-style 16-byte key.
func dbKey(i uint64) []byte { return []byte(fmt.Sprintf("%016d", i)) }

// dbValue builds a pseudo-random value; distinct per (index, generation).
func dbValue(i uint64, gen, size int) []byte {
	v := make([]byte, size)
	rnd := rand.New(rand.NewSource(int64(i)*1099511628211 + int64(gen)))
	rnd.Read(v)
	return v
}

// FillRandom writes n entries with keys drawn uniformly from [0, keySpace)
// in random order — db_bench's fillrandom. Returns throughput/latency.
func FillRandom(s kvstore.Store, n int, keySpace uint64, valueSize int, seed int64, tl *histogram.Timeline) (RunResult, error) {
	h := histogram.New()
	rnd := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < n; i++ {
		k := dbKey(uint64(rnd.Int63()) % keySpace)
		v := dbValue(uint64(i), 0, valueSize)
		t0 := time.Now()
		if err := s.Put(k, v); err != nil {
			return RunResult{}, err
		}
		d := time.Since(t0)
		h.Record(d)
		if tl != nil {
			tl.Record(d)
		}
	}
	return finishRun(int64(n), time.Since(start), h, tl), nil
}

// FillSeq writes n entries with ascending keys — db_bench's fillseq.
func FillSeq(s kvstore.Store, n int, valueSize int, tl *histogram.Timeline) (RunResult, error) {
	h := histogram.New()
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := s.Put(dbKey(uint64(i)), dbValue(uint64(i), 0, valueSize)); err != nil {
			return RunResult{}, err
		}
		d := time.Since(t0)
		h.Record(d)
		if tl != nil {
			tl.Record(d)
		}
	}
	return finishRun(int64(n), time.Since(start), h, tl), nil
}

// ReadRandom issues n point lookups over keys known to exist (written by
// FillSeq/FillRandom over [0, keySpace)) — db_bench's readrandom.
// Misses (possible under fillrandom, which may not touch every key) are
// tolerated but counted.
func ReadRandom(s kvstore.Store, n int, keySpace uint64, seed int64) (RunResult, int, error) {
	h := histogram.New()
	rnd := rand.New(rand.NewSource(seed))
	misses := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		k := dbKey(uint64(rnd.Int63()) % keySpace)
		t0 := time.Now()
		_, err := s.Get(k)
		h.Record(time.Since(t0))
		if err == kvstore.ErrNotFound {
			misses++
		} else if err != nil {
			return RunResult{}, misses, err
		}
	}
	return finishRun(int64(n), time.Since(start), h, nil), misses, nil
}

// ReadSeq scans n entries in key order — db_bench's readseq.
func ReadSeq(s kvstore.Store, n int) (RunResult, error) {
	h := histogram.New()
	start := time.Now()
	count := 0
	t0 := time.Now()
	err := s.Scan(nil, n, func(k, v []byte) bool {
		h.Record(time.Since(t0))
		count++
		t0 = time.Now()
		return true
	})
	if err != nil {
		return RunResult{}, err
	}
	return finishRun(int64(count), time.Since(start), h, nil), nil
}

// YCSBLoad inserts records user0..user(n-1) with the given value size —
// the YCSB load phase the paper runs before workloads A–F.
func YCSBLoad(s kvstore.Store, records uint64, valueSize int) (RunResult, error) {
	h := histogram.New()
	start := time.Now()
	for i := uint64(0); i < records; i++ {
		t0 := time.Now()
		if err := s.Put(ycsb.Key(i), ycsb.Value(i, 0, valueSize)); err != nil {
			return RunResult{}, err
		}
		h.Record(time.Since(t0))
	}
	return finishRun(int64(records), time.Since(start), h, nil), nil
}

// YCSBRun executes ops operations of the named workload (A–F, plus the
// multi-get mix M) against a store pre-loaded with records entries.
// Workload M's multi-reads go through kvstore.MultiGetter when the
// store provides it and fall back to sequential Gets otherwise.
func YCSBRun(s kvstore.Store, letter string, ops int, records uint64, valueSize int, seed int64, tl *histogram.Timeline) (RunResult, error) {
	w, err := ycsb.StandardWorkload(letter, records, seed)
	if err != nil {
		return RunResult{}, err
	}
	g := ycsb.NewGenerator(w, records, seed+1)
	h := histogram.New()
	gen := 1
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := g.Next()
		t0 := time.Now()
		switch op.Kind {
		case ycsb.OpRead:
			if _, err := s.Get(ycsb.Key(op.KeyIdx)); err != nil && err != kvstore.ErrNotFound {
				return RunResult{}, err
			}
		case ycsb.OpUpdate, ycsb.OpInsert:
			if err := s.Put(ycsb.Key(op.KeyIdx), ycsb.Value(op.KeyIdx, gen, valueSize)); err != nil {
				return RunResult{}, err
			}
		case ycsb.OpScan:
			err := s.Scan(ycsb.Key(op.KeyIdx), op.ScanLen, func(k, v []byte) bool { return true })
			if err != nil {
				return RunResult{}, err
			}
		case ycsb.OpReadModifyWrite:
			if _, err := s.Get(ycsb.Key(op.KeyIdx)); err != nil && err != kvstore.ErrNotFound {
				return RunResult{}, err
			}
			if err := s.Put(ycsb.Key(op.KeyIdx), ycsb.Value(op.KeyIdx, gen, valueSize)); err != nil {
				return RunResult{}, err
			}
		case ycsb.OpMultiRead:
			keys := make([][]byte, len(op.KeyIdxs))
			for j, idx := range op.KeyIdxs {
				keys[j] = ycsb.Key(idx)
			}
			if mg, ok := s.(kvstore.MultiGetter); ok {
				_, errs := mg.GetMulti(keys)
				for _, err := range errs {
					if err != nil && err != kvstore.ErrNotFound {
						return RunResult{}, err
					}
				}
			} else {
				for _, k := range keys {
					if _, err := s.Get(k); err != nil && err != kvstore.ErrNotFound {
						return RunResult{}, err
					}
				}
			}
		}
		d := time.Since(t0)
		h.Record(d)
		if tl != nil {
			tl.Record(d)
		}
	}
	return finishRun(int64(ops), time.Since(start), h, tl), nil
}
