package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"miodb/internal/core"
)

// TestValueSizeExperimentAndJSON runs the valuesize experiment with a
// shrunken sweep and checks the report shape, the BENCH_valuesize.json
// artifact, and the claim the experiment exists to demonstrate: at
// large values the separated arm's write amplification is measurably
// below the inline arm's.
func TestValueSizeExperimentAndJSON(t *testing.T) {
	oldSweep, oldReps := valueSizeSweep, valueSizeReps
	valueSizeSweep = []int{128, 64 << 10}
	valueSizeReps = 1
	defer func() { valueSizeSweep, valueSizeReps = oldSweep, oldReps }()

	dir := t.TempDir()
	rep, err := ValueSize(Params{Scale: 0.05, Out: io.Discard, JSONDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.ID != "valuesize" {
		t.Fatalf("report = %+v", rep)
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_valuesize.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc JSONReport
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Bench != "valuesize" {
		t.Fatalf("bench name = %q", doc.Bench)
	}
	// 2 sizes × 2 arms × (fill + read) = 8 cells.
	if len(doc.Results) != 8 {
		t.Fatalf("results = %d cells, want 8", len(doc.Results))
	}
	was := map[string]float64{}
	for _, res := range doc.Results {
		if res.KIOPS.Best <= 0 || res.Ops <= 0 {
			t.Errorf("cell %s: no throughput recorded: %+v", res.Name, res)
		}
		if strings.HasPrefix(res.Name, "fill/") {
			wa, ok := res.Extra["wa"]
			if !ok || wa <= 0 {
				t.Errorf("cell %s: missing write amplification: %v", res.Name, res.Extra)
			}
			was[res.Name] = wa
		}
	}
	// The point of separation: at 64 KB values the vlog arm's WA must be
	// measurably below the inline arm's.
	inline, vl := was["fill/value=65536/arm=inline"], was["fill/value=65536/arm=vlog"]
	if inline == 0 || vl == 0 {
		t.Fatalf("missing 64K WA cells: %v", was)
	}
	if vl >= inline {
		t.Errorf("64K values: vlog WA %.2f not below inline WA %.2f", vl, inline)
	}
	// And the vlog arm actually routed values through the log there.
	var appends float64
	for _, res := range doc.Results {
		if res.Name == "fill/value=65536/arm=vlog" {
			appends = res.Extra["vlog_appends"]
		}
	}
	if appends == 0 {
		t.Error("64K vlog arm recorded no value-log appends")
	}
}

// TestOpenStoreRefusesValueLogOnBaselines pins the capability refusal:
// only MioDB implements kvstore.ValueLogger, and asking a baseline for a
// value log fails descriptively instead of silently running inline.
func TestOpenStoreRefusesValueLogOnBaselines(t *testing.T) {
	for _, kind := range []StoreKind{LevelDB, NoveLSM, MatrixKV} {
		_, err := OpenStore(Config{Kind: kind, ValueLog: &core.ValueLogOptions{}})
		if err == nil || !strings.Contains(err.Error(), "ValueLog") {
			t.Errorf("%s: err = %v, want descriptive ValueLog refusal", kind, err)
		}
	}
}
