package bench

import (
	"testing"
)

// TestAblationEffectsMeasurable asserts that the ablation switches
// actually change the cost profile in the direction the paper's design
// arguments predict, at a small but non-trivial scale. Throughput is too
// noisy on shared CI hardware to assert on; device traffic and stall/cost
// accounting are deterministic enough.
func TestAblationEffectsMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation measurement skipped in -short mode")
	}
	const valueSize = 1 << 10
	const n = 4000

	run := func(mutate func(*Config)) (wa float64, nvmWritten int64) {
		cfg := Config{Kind: MioDB} // no latency simulation: accounting only
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := OpenStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := FillRandom(s, n, uint64(n), valueSize, 1, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		for _, d := range st.Devices {
			if d.Name == "nvm" {
				nvmWritten = d.BytesWritten
			}
		}
		return st.WriteAmplification, nvmWritten
	}

	baseWA, baseWritten := run(nil)

	// Copying merges must write strictly more NVM than zero-copy merges.
	copyWA, copyWritten := run(func(c *Config) { c.ZeroCopyMerge = boolp(false) })
	if copyWA <= baseWA || copyWritten <= baseWritten {
		t.Errorf("no-zero-copy WA %.2f (traffic %d) not above baseline %.2f (%d)",
			copyWA, copyWritten, baseWA, baseWritten)
	}

	// Disabling the WAL must cut roughly 1× of user bytes from traffic.
	noWalWA, _ := run(func(c *Config) { c.DisableWAL = true })
	if noWalWA >= baseWA-0.5 {
		t.Errorf("no-WAL WA %.2f not ≈1 below baseline %.2f", noWalWA, baseWA)
	}
}
