// Package sstable implements the block-based Sorted String Table format
// used by the baselines (LevelDB-style, NoveLSM, MatrixKV's L1+) and by
// MioDB's DRAM-NVM-SSD mode. It is a faithful, simplified LevelDB format:
// prefix-compressed data blocks with restart points, an index block keyed
// by each block's last internal key, a whole-table bloom filter, and a
// fixed footer.
//
// The point of keeping a real serialized format — rather than just dumping
// entries — is that the costs the paper attributes to SSTables arise here
// for real: building a table serializes every entry (charged as
// serialization time), and reading one back requires block I/O plus
// decode (charged as deserialization time). MioDB's PMTables pay neither.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"time"

	"miodb/internal/bloom"
	"miodb/internal/keys"
	"miodb/internal/stats"
	"miodb/internal/vfs"
)

const (
	// Magic terminates every table file.
	Magic = 0x6d696f5353546230 // "mioSSTb0"
	// MagicCompressed marks a table whose data blocks are
	// flate-compressed (LevelDB compresses blocks with snappy; flate is
	// the stdlib equivalent). Index and filter blocks stay raw.
	MagicCompressed = 0x6d696f5353546231 // "mioSSTb1"

	footerSize      = 40
	restartInterval = 16

	// DefaultBlockSize is the data block target (LevelDB's 4 KiB).
	DefaultBlockSize = 4 << 10
)

// BuilderOptions configures table construction.
type BuilderOptions struct {
	// BlockSize is the uncompressed data block target size.
	BlockSize int
	// BloomBitsPerKey sizes the table's bloom filter (0 disables).
	BloomBitsPerKey int
	// ExpectedKeys pre-sizes the bloom filter.
	ExpectedKeys int
	// Stats receives serialization time; may be nil.
	Stats *stats.Recorder
	// Compression flate-compresses data blocks. Off by default: the
	// paper's comparison isolates serialization structure, not codec
	// choice, and compression would skew the byte-traffic accounting
	// between stores.
	Compression bool
}

func (o BuilderOptions) withDefaults() BuilderOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.ExpectedKeys <= 0 {
		o.ExpectedKeys = 1 << 14
	}
	return o
}

// Builder streams sorted entries into an SSTable file. Entries must be
// added in (user key asc, seq desc) order.
type Builder struct {
	w    *vfs.Writer
	opts BuilderOptions

	block     []byte
	restarts  []uint32
	counter   int
	lastKey   []byte
	lastSeq   uint64
	hasLast   bool
	entries   int64
	rawBytes  int64
	index     []indexEntry
	filter    *bloom.Filter
	blockLast []byte // last internal key of the open block
}

type indexEntry struct {
	lastIKey []byte
	offset   uint64
	size     uint64
}

// NewBuilder starts a table in the given file writer.
func NewBuilder(w *vfs.Writer, opts BuilderOptions) *Builder {
	opts = opts.withDefaults()
	b := &Builder{w: w, opts: opts}
	if opts.BloomBitsPerKey > 0 {
		b.filter = bloom.New(opts.ExpectedKeys, opts.BloomBitsPerKey)
	}
	return b
}

// Add appends one entry. The serialization work (prefix compression,
// varint encoding, block layout) is timed into the stats recorder.
func (b *Builder) Add(key []byte, seq uint64, kind keys.Kind, value []byte) error {
	start := time.Now()
	defer func() {
		if b.opts.Stats != nil {
			b.opts.Stats.AddSerialize(time.Since(start))
		}
	}()

	shared := 0
	if b.counter%restartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.block)))
	} else if b.hasLast {
		max := len(key)
		if len(b.lastKey) < max {
			max = len(b.lastKey)
		}
		for shared < max && key[shared] == b.lastKey[shared] {
			shared++
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	b.block = append(b.block, tmp[:binary.PutUvarint(tmp[:], uint64(shared))]...)
	b.block = append(b.block, tmp[:binary.PutUvarint(tmp[:], uint64(len(key)-shared))]...)
	b.block = append(b.block, tmp[:binary.PutUvarint(tmp[:], uint64(len(value)))]...)
	binary.LittleEndian.PutUint64(tmp[:8], keys.Trailer(seq, kind))
	b.block = append(b.block, tmp[:8]...)
	b.block = append(b.block, key[shared:]...)
	b.block = append(b.block, value...)

	b.counter++
	b.entries++
	b.rawBytes += int64(len(key) + len(value))
	b.lastKey = append(b.lastKey[:0], key...)
	b.lastSeq = seq
	b.hasLast = true
	b.blockLast = keys.Encode(b.blockLast[:0], key, seq, kind)
	if b.filter != nil {
		b.filter.Add(key)
	}
	if len(b.block) >= b.opts.BlockSize {
		return b.finishBlock()
	}
	return nil
}

func (b *Builder) finishBlock() error {
	if len(b.block) == 0 {
		return nil
	}
	var tmp [4]byte
	for _, r := range b.restarts {
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.block = append(b.block, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	b.block = append(b.block, tmp[:4]...)

	payload := b.block
	if b.opts.Compression {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := zw.Write(b.block); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	offset := uint64(b.w.Offset())
	if _, err := b.w.Write(payload); err != nil {
		return err
	}
	b.index = append(b.index, indexEntry{
		lastIKey: append([]byte(nil), b.blockLast...),
		offset:   offset,
		size:     uint64(len(payload)),
	})
	b.block = b.block[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.hasLast = false
	return nil
}

// Entries returns the number of entries added.
func (b *Builder) Entries() int64 { return b.entries }

// RawBytes returns the user payload bytes added.
func (b *Builder) RawBytes() int64 { return b.rawBytes }

// EstimatedSize returns the bytes written plus the open block.
func (b *Builder) EstimatedSize() int64 { return b.w.Offset() + int64(len(b.block)) }

// Finish flushes the open block, writes filter + index + footer, and
// syncs. The table is complete afterwards.
func (b *Builder) Finish() error {
	start := time.Now()
	if err := b.finishBlock(); err != nil {
		return err
	}
	var filterOff, filterLen uint64
	if b.filter != nil {
		enc := b.filter.Encode()
		filterOff = uint64(b.w.Offset())
		filterLen = uint64(len(enc))
		if _, err := b.w.Write(enc); err != nil {
			return err
		}
	}
	indexOff := uint64(b.w.Offset())
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range b.index {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.lastIKey)))]...)
		buf = append(buf, e.lastIKey...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], e.offset)]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], e.size)]...)
	}
	if _, err := b.w.Write(buf); err != nil {
		return err
	}
	indexLen := uint64(b.w.Offset()) - indexOff

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOff)
	binary.LittleEndian.PutUint64(footer[8:16], indexLen)
	binary.LittleEndian.PutUint64(footer[16:24], filterOff)
	binary.LittleEndian.PutUint64(footer[24:32], filterLen)
	magic := uint64(Magic)
	if b.opts.Compression {
		magic = MagicCompressed
	}
	binary.LittleEndian.PutUint64(footer[32:40], magic)
	if _, err := b.w.Write(footer[:]); err != nil {
		return err
	}
	b.w.Sync()
	if b.opts.Stats != nil {
		b.opts.Stats.AddSerialize(time.Since(start))
	}
	return nil
}
