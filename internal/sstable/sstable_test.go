package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/stats"
	"miodb/internal/vfs"
)

func buildTestTable(t testing.TB, n int, valSize int) (*Table, *stats.Recorder) {
	t.Helper()
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	st := &stats.Recorder{}
	w := disk.Create("test.sst")
	b := NewBuilder(w, BuilderOptions{BloomBitsPerKey: 16, ExpectedKeys: n, Stats: st})
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val := bytes.Repeat([]byte{byte(i)}, valSize)
		if err := b.Add(key, uint64(i+1), keys.KindSet, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := disk.Open("test.sst")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(r, st)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, st
}

func TestBuildOpenGet(t *testing.T) {
	tbl, st := buildTestTable(t, 1000, 64)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		v, seq, kind, ok := tbl.Get(key)
		if !ok || seq != uint64(i+1) || kind != keys.KindSet {
			t.Fatalf("Get(%s): ok=%v seq=%d kind=%d", key, ok, seq, kind)
		}
		if len(v) != 64 || v[0] != byte(i) {
			t.Fatalf("Get(%s) wrong value", key)
		}
	}
	if _, _, _, ok := tbl.Get([]byte("absent")); ok {
		t.Error("found absent key")
	}
	if _, _, _, ok := tbl.Get([]byte("zzz")); ok {
		t.Error("found key past the end")
	}
	// Bounds.
	if string(tbl.Smallest) != "key-000000" || string(tbl.Largest) != "key-000999" {
		t.Errorf("bounds [%s, %s]", tbl.Smallest, tbl.Largest)
	}
	// Serialization and deserialization were accounted.
	snap := st.Snapshot()
	if snap.SerializeTime == 0 {
		t.Error("no serialization time recorded")
	}
	if snap.DeserializeTime == 0 {
		t.Error("no deserialization time recorded")
	}
}

func TestMultipleVersionsAndTombstones(t *testing.T) {
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	w := disk.Create("t.sst")
	b := NewBuilder(w, BuilderOptions{BloomBitsPerKey: 16})
	// (key asc, seq desc) order with versions and a tombstone.
	b.Add([]byte("a"), 9, keys.KindSet, []byte("a-new"))
	b.Add([]byte("a"), 5, keys.KindSet, []byte("a-old"))
	b.Add([]byte("b"), 7, keys.KindDelete, nil)
	b.Add([]byte("b"), 3, keys.KindSet, []byte("b-old"))
	b.Add([]byte("c"), 8, keys.KindSet, []byte("c"))
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	r, _ := disk.Open("t.sst")
	tbl, err := Open(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, seq, _, ok := tbl.Get([]byte("a"))
	if !ok || string(v) != "a-new" || seq != 9 {
		t.Fatalf("Get(a) = %q seq=%d", v, seq)
	}
	_, seq, kind, ok := tbl.Get([]byte("b"))
	if !ok || kind != keys.KindDelete || seq != 7 {
		t.Fatalf("Get(b): seq=%d kind=%d ok=%v — newest must be the tombstone", seq, kind, ok)
	}
}

func TestIteratorFullScan(t *testing.T) {
	tbl, _ := buildTestTable(t, 500, 32)
	it := tbl.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		want := fmt.Sprintf("key-%06d", i)
		if string(it.Key()) != want {
			t.Fatalf("scan[%d] = %q, want %q", i, it.Key(), want)
		}
		if it.Seq() != uint64(i+1) {
			t.Fatalf("scan[%d] seq = %d", i, it.Seq())
		}
		i++
	}
	if i != 500 {
		t.Fatalf("scanned %d entries, want 500", i)
	}
}

func TestIteratorSeek(t *testing.T) {
	tbl, _ := buildTestTable(t, 500, 32)
	it := tbl.NewIterator()
	it.Seek([]byte("key-000250"))
	if !it.Valid() || string(it.Key()) != "key-000250" {
		t.Fatalf("Seek exact landed on %q", it.Key())
	}
	it.Seek([]byte("key-0002505")) // between 250 and 251
	if !it.Valid() || string(it.Key()) != "key-000251" {
		t.Fatalf("Seek between landed on %q", it.Key())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Error("Seek past end still valid")
	}
	// Seek to a block boundary region and iterate across it.
	it.Seek([]byte("key-000100"))
	for j := 100; j < 200; j++ {
		if !it.Valid() || string(it.Key()) != fmt.Sprintf("key-%06d", j) {
			t.Fatalf("cross-block iteration broke at %d (%q)", j, it.Key())
		}
		it.Next()
	}
}

func TestPrefixCompressionRoundTrip(t *testing.T) {
	// Keys sharing long prefixes stress the restart/shared-prefix logic.
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	w := disk.Create("p.sst")
	b := NewBuilder(w, BuilderOptions{BlockSize: 256}) // many small blocks
	var want []string
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("user/profile/%04d/settings", i)
		want = append(want, k)
		if err := b.Add([]byte(k), uint64(i+1), keys.KindSet, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	r, _ := disk.Open("p.sst")
	tbl, err := Open(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := tbl.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) != want[i] {
			t.Fatalf("prefix-compressed key %d = %q, want %q", i, it.Key(), want[i])
		}
		if string(it.Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("value %d mismatch", i)
		}
		i++
	}
	if i != 300 {
		t.Fatalf("got %d entries", i)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	w := disk.Create("bad.sst")
	w.Write([]byte("this is not an sstable, not even close......."))
	r, _ := disk.Open("bad.sst")
	if _, err := Open(r, nil); err == nil {
		t.Error("Open accepted garbage")
	}
	w2 := disk.Create("tiny.sst")
	w2.Write([]byte("x"))
	r2, _ := disk.Open("tiny.sst")
	if _, err := Open(r2, nil); err == nil {
		t.Error("Open accepted tiny file")
	}
}

func TestBloomFilterSkipsAbsent(t *testing.T) {
	tbl, _ := buildTestTable(t, 1000, 16)
	if tbl.Filter() == nil {
		t.Fatal("no filter built")
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		if !tbl.Filter().MayContain([]byte(fmt.Sprintf("key-%06d", i))) {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("%d false negatives", misses)
	}
}

func TestCompressedTableRoundTrip(t *testing.T) {
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	w := disk.Create("c.sst")
	b := NewBuilder(w, BuilderOptions{BloomBitsPerKey: 16, Compression: true})
	// Highly compressible values.
	val := bytes.Repeat([]byte("abcdefgh"), 128) // 1 KiB
	const n = 500
	for i := 0; i < n; i++ {
		if err := b.Add([]byte(fmt.Sprintf("key-%06d", i)), uint64(i+1), keys.KindSet, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	r, _ := disk.Open("c.sst")
	// Compression must actually shrink the file well below the payload.
	if r.Size() > int64(n*len(val))/4 {
		t.Errorf("compressed table %d bytes for %d of payload", r.Size(), n*len(val))
	}
	tbl, err := Open(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, seq, _, ok := tbl.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if !ok || seq != uint64(i+1) || !bytes.Equal(v, val) {
			t.Fatalf("compressed Get(%d): ok=%v seq=%d", i, ok, seq)
		}
	}
	it := tbl.NewIterator()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if count != n {
		t.Fatalf("compressed scan saw %d entries", count)
	}
}

func TestCompressedAndRawInterop(t *testing.T) {
	// A reader must never misinterpret one format as the other.
	disk := vfs.NewDisk(vfs.NVMBlockProfile())
	for _, compress := range []bool{false, true} {
		name := fmt.Sprintf("t-%v.sst", compress)
		w := disk.Create(name)
		b := NewBuilder(w, BuilderOptions{Compression: compress})
		b.Add([]byte("k"), 1, keys.KindSet, []byte("v"))
		if err := b.Finish(); err != nil {
			t.Fatal(err)
		}
		r, _ := disk.Open(name)
		tbl, err := Open(r, nil)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if v, _, _, ok := tbl.Get([]byte("k")); !ok || string(v) != "v" {
			t.Fatalf("compress=%v: Get broken", compress)
		}
	}
}
