package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"miodb/internal/bloom"
	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/stats"
	"miodb/internal/vfs"
)

// Table reads one SSTable. The index and bloom filter are decoded at Open
// and cached (the role of LevelDB's table cache); data blocks are read and
// deserialized on demand, charging the device and the deserialization
// clock each time.
type Table struct {
	r          *vfs.Reader
	st         *stats.Recorder
	index      []indexEntry
	filter     *bloom.Filter
	compressed bool

	// Smallest and Largest bound the table's user keys (for leveled
	// compaction overlap checks).
	Smallest, Largest []byte
	// Size is the file size in bytes.
	Size int64
}

// Open parses a table's footer, index, and filter.
func Open(r *vfs.Reader, st *stats.Recorder) (*Table, error) {
	size := r.Size()
	if size < footerSize {
		return nil, fmt.Errorf("sstable: file too small (%d bytes)", size)
	}
	var footer [footerSize]byte
	if _, err := r.ReadAt(footer[:], size-footerSize); err != nil {
		return nil, err
	}
	compressed := false
	switch binary.LittleEndian.Uint64(footer[32:40]) {
	case Magic:
	case MagicCompressed:
		compressed = true
	default:
		return nil, fmt.Errorf("sstable: bad magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	filterOff := int64(binary.LittleEndian.Uint64(footer[16:24]))
	filterLen := int64(binary.LittleEndian.Uint64(footer[24:32]))

	t := &Table{r: r, st: st, Size: size, compressed: compressed}

	if filterLen > 0 {
		fb := make([]byte, filterLen)
		if _, err := r.ReadAt(fb, filterOff); err != nil {
			return nil, err
		}
		f, err := bloom.Decode(fb)
		if err != nil {
			return nil, err
		}
		t.filter = f
	}

	ib := make([]byte, indexLen)
	if _, err := r.ReadAt(ib, indexOff); err != nil {
		return nil, err
	}
	for len(ib) > 0 {
		klen, n := binary.Uvarint(ib)
		if n <= 0 || uint64(len(ib)) < uint64(n)+klen {
			return nil, fmt.Errorf("sstable: corrupt index")
		}
		ib = ib[n:]
		ikey := append([]byte(nil), ib[:klen]...)
		ib = ib[klen:]
		off, n2 := binary.Uvarint(ib)
		if n2 <= 0 {
			return nil, fmt.Errorf("sstable: corrupt index offset")
		}
		ib = ib[n2:]
		sz, n3 := binary.Uvarint(ib)
		if n3 <= 0 {
			return nil, fmt.Errorf("sstable: corrupt index size")
		}
		ib = ib[n3:]
		t.index = append(t.index, indexEntry{lastIKey: ikey, offset: off, size: sz})
	}
	if len(t.index) > 0 {
		// Largest from the index; smallest from the first block's first key.
		uk, _, _, ok := keys.Decode(t.index[len(t.index)-1].lastIKey)
		if !ok {
			return nil, fmt.Errorf("sstable: corrupt last key")
		}
		t.Largest = append([]byte(nil), uk...)
		blk, err := t.readBlock(0)
		if err != nil {
			return nil, err
		}
		if len(blk.entries) > 0 {
			t.Smallest = append([]byte(nil), blk.entries[0].key...)
		}
	}
	return t, nil
}

// Filter exposes the table's bloom filter (may be nil).
func (t *Table) Filter() *bloom.Filter { return t.filter }

// Entries returns the number of entries (by full scan; used by tests).
func (t *Table) Entries() (int64, error) {
	var n int64
	it := t.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	return n, nil
}

type entry struct {
	key   []byte
	seq   uint64
	kind  keys.Kind
	value []byte
}

type block struct {
	entries []entry
}

// readBlock reads and deserializes data block i. The read is charged to
// the device by vfs; the decode loop is charged to the deserialization
// clock — the cost that dominates the baselines' read path (Fig 2(b)).
func (t *Table) readBlock(i int) (*block, error) {
	ie := t.index[i]
	raw := make([]byte, ie.size)
	if _, err := t.r.ReadAt(raw, int64(ie.offset)); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		if t.st != nil {
			t.st.AddDeserialize(time.Since(start))
		}
	}()
	if t.compressed {
		zr := flate.NewReader(bytes.NewReader(raw))
		inflated, err := io.ReadAll(io.LimitReader(zr, 64<<20))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("sstable: block %d inflate: %w", i, err)
		}
		raw = inflated
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("sstable: block %d too small", i)
	}
	nRestarts := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	dataEnd := len(raw) - 4 - int(nRestarts)*4
	if dataEnd < 0 {
		return nil, fmt.Errorf("sstable: block %d corrupt restarts", i)
	}
	b := &block{}
	data := raw[:dataEnd]
	var prevKey []byte
	for len(data) > 0 {
		shared, n1 := binary.Uvarint(data)
		if n1 <= 0 {
			return nil, fmt.Errorf("sstable: corrupt entry header")
		}
		data = data[n1:]
		unshared, n2 := binary.Uvarint(data)
		if n2 <= 0 {
			return nil, fmt.Errorf("sstable: corrupt entry header")
		}
		data = data[n2:]
		vlen, n3 := binary.Uvarint(data)
		if n3 <= 0 {
			return nil, fmt.Errorf("sstable: corrupt entry header")
		}
		data = data[n3:]
		if len(data) < 8 {
			return nil, fmt.Errorf("sstable: truncated trailer")
		}
		seq, kind := keys.UnpackTrailer(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if uint64(len(data)) < unshared+vlen || shared > uint64(len(prevKey)) {
			return nil, fmt.Errorf("sstable: truncated entry")
		}
		key := make([]byte, shared+unshared)
		copy(key, prevKey[:shared])
		copy(key[shared:], data[:unshared])
		data = data[unshared:]
		value := append([]byte(nil), data[:vlen]...)
		data = data[vlen:]
		b.entries = append(b.entries, entry{key: key, seq: seq, kind: kind, value: value})
		prevKey = key
	}
	return b, nil
}

// Get returns the newest version of key in the table.
func (t *Table) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	if t.filter != nil && !t.filter.MayContain(key) {
		return nil, 0, 0, false
	}
	target := keys.Encode(nil, key, keys.MaxSeq, keys.KindSet)
	i := sort.Search(len(t.index), func(i int) bool {
		return keys.CompareInternal(t.index[i].lastIKey, target) >= 0
	})
	if i >= len(t.index) {
		return nil, 0, 0, false
	}
	blk, err := t.readBlock(i)
	if err != nil {
		return nil, 0, 0, false
	}
	j := sort.Search(len(blk.entries), func(j int) bool {
		e := blk.entries[j]
		return keys.Compare(e.key, e.seq, key, keys.MaxSeq) >= 0
	})
	if j >= len(blk.entries) || !bytes.Equal(blk.entries[j].key, key) {
		return nil, 0, 0, false
	}
	e := blk.entries[j]
	return e.value, e.seq, e.kind, true
}

// iterator walks the table's blocks in order.
type iterator struct {
	t        *Table
	blockIdx int
	blk      *block
	pos      int
	err      error
}

// NewIterator returns an iterator over the whole table.
func (t *Table) NewIterator() iterx.Iterator { return &iterator{t: t} }

func (it *iterator) loadBlock(i int) {
	if i >= len(it.t.index) {
		it.blk = nil
		return
	}
	blk, err := it.t.readBlock(i)
	if err != nil {
		it.err = err
		it.blk = nil
		return
	}
	it.blockIdx = i
	it.blk = blk
	it.pos = 0
}

// SeekToFirst positions at the table's first entry.
func (it *iterator) SeekToFirst() {
	it.loadBlock(0)
}

// Seek positions at the first entry with user key ≥ key.
func (it *iterator) Seek(key []byte) {
	target := keys.Encode(nil, key, keys.MaxSeq, keys.KindSet)
	i := sort.Search(len(it.t.index), func(i int) bool {
		return keys.CompareInternal(it.t.index[i].lastIKey, target) >= 0
	})
	if i >= len(it.t.index) {
		it.blk = nil
		return
	}
	it.loadBlock(i)
	if it.blk == nil {
		return
	}
	it.pos = sort.Search(len(it.blk.entries), func(j int) bool {
		e := it.blk.entries[j]
		return keys.Compare(e.key, e.seq, key, keys.MaxSeq) >= 0
	})
	if it.pos >= len(it.blk.entries) {
		it.loadBlock(i + 1)
	}
}

// Next advances one entry, crossing block boundaries as needed.
func (it *iterator) Next() {
	if it.blk == nil {
		return
	}
	it.pos++
	if it.pos >= len(it.blk.entries) {
		it.loadBlock(it.blockIdx + 1)
	}
}

// Valid reports whether positioned on an entry.
func (it *iterator) Valid() bool { return it.blk != nil && it.pos < len(it.blk.entries) }

// Key returns the current user key.
func (it *iterator) Key() []byte { return it.blk.entries[it.pos].key }

// Value returns the current value.
func (it *iterator) Value() []byte { return it.blk.entries[it.pos].value }

// Seq returns the current sequence number.
func (it *iterator) Seq() uint64 { return it.blk.entries[it.pos].seq }

// Kind returns the current entry kind.
func (it *iterator) Kind() keys.Kind { return it.blk.entries[it.pos].kind }
