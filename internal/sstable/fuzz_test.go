package sstable

import (
	"testing"

	"miodb/internal/keys"
	"miodb/internal/vfs"
)

// FuzzOpen feeds arbitrary bytes to the SSTable reader: Open and any
// subsequent reads must fail cleanly (error returns), never panic or
// over-read. Run with `go test -fuzz=FuzzOpen`; seeds run as a test.
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage that is longer than a footer but not a table"))
	{
		// A valid table's raw bytes as a mutation seed.
		disk := vfs.NewDisk(vfs.NVMBlockProfile())
		w := disk.Create("seed.sst")
		b := NewBuilder(w, BuilderOptions{BloomBitsPerKey: 16})
		b.Add([]byte("alpha"), 3, keys.KindSet, []byte("one"))
		b.Add([]byte("beta"), 2, keys.KindSet, []byte("two"))
		b.Finish()
		r, _ := disk.Open("seed.sst")
		raw := make([]byte, r.Size())
		r.ReadAt(raw, 0)
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		disk := vfs.NewDisk(vfs.NVMBlockProfile())
		w := disk.Create("f.sst")
		w.Write(data)
		r, err := disk.Open("f.sst")
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := Open(r, nil)
		if err != nil {
			return // rejected cleanly
		}
		// If it parsed, basic operations must stay panic-free.
		tbl.Get([]byte("alpha"))
		it := tbl.NewIterator()
		n := 0
		for it.SeekToFirst(); it.Valid() && n < 1000; it.Next() {
			_ = it.Key()
			_ = it.Value()
			n++
		}
		it.Seek([]byte("m"))
	})
}
