// Package vlog implements the value log behind MioDB's key-value
// separation (DESIGN.md §14). Values at or above a configurable threshold
// are appended to segmented logs — NVM arenas by default, files on the
// simulated SSD tier when offloaded — and the LSM structure stores a
// compact 16-byte address in their place. Compaction then moves pointers,
// not value bytes: the write-amplification win WiscKey-style separation
// is known for, applied to the paper's NVM-resident design.
//
// A segment is append-only and immutable once sealed. Liveness is tracked
// per segment as advisory dead-byte counts (fed by the engine's compaction
// drop hooks and by GC relocation itself); reclamation is a scan of a
// sealed candidate segment that re-commits still-live values through the
// normal write path and then frees the segment. The engine defers the
// actual free onto its epoch/version machinery so that no pinned snapshot
// or in-flight reader can observe a reclaimed address — see core's
// value-log GC for the safety argument.
package vlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"miodb/internal/kvstore"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
)

// ErrCorrupt reports a value-log entry that failed validation: an unknown
// segment, an out-of-bounds address, or a checksum mismatch. Reaching it
// from a live read means the pointer and the log disagree — an invariant
// violation, not an expected runtime condition. The sentinel lives in
// kvstore (as ErrValueLogCorrupt) so every layer shares one identity.
var ErrCorrupt = kvstore.ErrValueLogCorrupt

// Addr locates one entry inside the value log: segment id, byte offset of
// the entry header within the segment, and the total entry length
// (header + key + value).
type Addr struct {
	Seg uint32
	Off int64
	Len uint32
}

// AddrSize is the encoded size of an Addr — the bytes a pointer entry
// occupies in place of its value throughout the LSM structure.
const AddrSize = 16

// Encode appends the 16-byte encoding of a to dst.
func (a Addr) Encode(dst []byte) []byte {
	var b [AddrSize]byte
	binary.LittleEndian.PutUint32(b[0:4], a.Seg)
	binary.LittleEndian.PutUint64(b[4:12], uint64(a.Off))
	binary.LittleEndian.PutUint32(b[12:16], a.Len)
	return append(dst, b[:]...)
}

// DecodeAddr parses a pointer produced by Encode.
func DecodeAddr(b []byte) (Addr, bool) {
	if len(b) != AddrSize {
		return Addr{}, false
	}
	return Addr{
		Seg: binary.LittleEndian.Uint32(b[0:4]),
		Off: int64(binary.LittleEndian.Uint64(b[4:12])),
		Len: binary.LittleEndian.Uint32(b[12:16]),
	}, true
}

// Entry layout inside a segment:
//
//	[ crc32 u32 | keyLen u32 | valLen u32 | seq u64 | key | value ]
//
// The checksum covers everything after itself. The key rides along so
// that GC can decide liveness (and recovery scans can rebuild segment
// extents) from the log alone.
const entryHeaderSize = 20

func alignUp(n int64) int64 { return (n + 7) &^ 7 }

// Config sizes a Store.
type Config struct {
	// SegmentSize is the soft capacity of one segment; an oversized entry
	// gets a dedicated segment of its own.
	SegmentSize int
	// GCDeadRatio is the dead-byte fraction at which a sealed segment
	// becomes a reclamation candidate.
	GCDeadRatio float64
}

// segment is one append-only log extent: an NVM arena region, or a file
// on the SSD tier. size and live are atomics because readers and the
// dead-byte accounting hooks run without the store mutex.
type segment struct {
	id     uint32
	region *vaddr.Region // NVM-backed
	name   string        // SSD-backed
	w      *vfs.Writer
	r      *vfs.Reader
	cap    int64
	size   atomic.Int64
	live   atomic.Int64
	sealed atomic.Bool // GC candidate scans read it without the store mutex

	// condemned latches once a reclaimer has claimed the segment: its free
	// is queued (epoch-deferred), so PickGC must stop offering it — the
	// segment stays installed and readable until the free actually runs.
	condemned atomic.Bool
}

func (g *segment) deadRatio() float64 {
	size := g.size.Load()
	if size <= 0 {
		return 1 // an empty sealed segment is pure overhead
	}
	return float64(size-g.live.Load()) / float64(size)
}

// Counters is a snapshot of value-log accounting (feeds stats.Snapshot).
type Counters struct {
	Segments            int64
	SegmentBytes        int64
	LiveBytes           int64
	Appends             int64
	AppendedBytes       int64
	GCRelocations       int64
	GCRelocatedBytes    int64
	GCSegmentsReclaimed int64
	GCReclaimedBytes    int64
}

// DeadRatio is the dead-space fraction across all segment bytes.
func (c Counters) DeadRatio() float64 {
	if c.SegmentBytes <= 0 {
		return 0
	}
	return float64(c.SegmentBytes-c.LiveBytes) / float64(c.SegmentBytes)
}

// Entry is one decoded log record, yielded by Scan.
type Entry struct {
	Key, Value []byte
	Seq        uint64
	Addr       Addr
}

// Store is a segmented value log. Appends are serialized by the caller
// (they run under the engine's commit lock); reads are lock-free against
// a copy-on-write segment map, mirroring how vaddr resolves regions.
type Store struct {
	dev  *nvm.Device // NVM backing (nil when on SSD)
	disk *vfs.Disk   // SSD backing (nil when on NVM)
	cfg  Config

	// OnNewSegment, when non-nil, is invoked synchronously right after a
	// fresh segment is installed, before any entry lands in it. The engine
	// logs a manifest record here so recovery re-attaches the segment
	// before WAL replay commits pointers into it. It runs WITHOUT the
	// store mutex held (the callback takes engine locks that themselves
	// order before this store's mutex); an error uninstalls the segment
	// and aborts the append.
	OnNewSegment func(id uint32, regionIndex uint32, name string) error

	mu     sync.Mutex
	segs   atomic.Pointer[map[uint32]*segment]
	active *segment
	nextID uint32

	appends, appendedBytes        atomic.Int64
	relocations, relocatedBytes   atomic.Int64
	reclaimedSegs, reclaimedBytes atomic.Int64
}

// NewNVM creates a value log over byte-addressable NVM arenas.
func NewNVM(dev *nvm.Device, cfg Config) *Store {
	s := &Store{dev: dev, cfg: cfg}
	empty := map[uint32]*segment{}
	s.segs.Store(&empty)
	return s
}

// NewSSD creates a value log over files on the simulated SSD tier.
func NewSSD(disk *vfs.Disk, cfg Config) *Store {
	s := &Store{disk: disk, cfg: cfg}
	empty := map[uint32]*segment{}
	s.segs.Store(&empty)
	return s
}

// OnSSD reports whether segments live on the SSD tier.
func (s *Store) OnSSD() bool { return s.disk != nil }

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) lookup(id uint32) *segment {
	return (*s.segs.Load())[id]
}

// installLocked publishes the segment map with g added. Caller holds s.mu.
func (s *Store) installLocked(g *segment) {
	cur := *s.segs.Load()
	next := make(map[uint32]*segment, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[g.id] = g
	s.segs.Store(&next)
}

// removeLocked unpublishes the segment with the given id. Caller holds s.mu.
func (s *Store) removeLocked(id uint32) *segment {
	cur := *s.segs.Load()
	g := cur[id]
	if g == nil {
		return nil
	}
	next := make(map[uint32]*segment, len(cur))
	for k, v := range cur {
		if k != id {
			next[k] = v
		}
	}
	s.segs.Store(&next)
	return g
}

// newSegment creates, installs, and announces a fresh segment whose
// capacity is at least minCap bytes. Install happens before the
// OnNewSegment announcement so a concurrently rolled manifest snapshot
// can never miss the segment; on announcement failure the (still empty)
// segment is uninstalled and its backing released. Callers are the
// serialized appender — never holding s.mu.
func (s *Store) newSegment(minCap int64) (*segment, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID = id + 1
	g := &segment{id: id}
	if s.dev != nil {
		chunk := s.cfg.SegmentSize
		if int64(chunk) < minCap {
			chunk = int(minCap)
		}
		region := s.dev.NewRegion(chunk)
		g.region = region
		g.cap = int64(region.ChunkSize()) // pow2-rounded: keeps every segment single-chunk
	} else {
		g.name = fmt.Sprintf("vlog-%06d", id)
		g.cap = int64(s.cfg.SegmentSize)
		if g.cap < minCap {
			g.cap = minCap
		}
		g.w = s.disk.Create(g.name)
		r, err := s.disk.Open(g.name)
		if err != nil {
			s.mu.Unlock()
			s.disk.Remove(g.name)
			return nil, err
		}
		g.r = r
	}
	if s.active != nil {
		// The segment being rolled past is full (or errored): seal it so it
		// becomes a GC candidate.
		s.active.sealed.Store(true)
	}
	s.installLocked(g)
	s.active = g
	s.mu.Unlock()

	if s.OnNewSegment != nil {
		var err error
		if g.region != nil {
			err = s.OnNewSegment(id, g.region.Index(), "")
		} else {
			err = s.OnNewSegment(id, 0, g.name)
		}
		if err != nil {
			s.mu.Lock()
			s.removeLocked(id)
			if s.active == g {
				s.active = nil
			}
			s.mu.Unlock()
			if g.region != nil {
				s.dev.Release(g.region)
			} else {
				s.disk.Remove(g.name)
			}
			return nil, err
		}
	}
	return g, nil
}

// Append stores (key, value, seq) and returns the entry's address. Any
// write error seals the current segment so torn bytes only ever sit at a
// sealed segment's tail — where the recovery scan stops — and later
// appends land in a fresh segment.
func (s *Store) Append(key, value []byte, seq uint64) (Addr, error) {
	entryLen := entryHeaderSize + len(key) + len(value)
	buf := make([]byte, entryLen)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(value)))
	binary.LittleEndian.PutUint64(buf[12:20], seq)
	copy(buf[entryHeaderSize:], key)
	copy(buf[entryHeaderSize+len(key):], value)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))

	s.mu.Lock()
	g := s.active
	s.mu.Unlock()
	if g == nil || g.sealed.Load() || g.size.Load()+int64(entryLen) > g.cap ||
		g.size.Load() >= int64(s.cfg.SegmentSize) {
		var err error
		if g, err = s.newSegment(int64(entryLen)); err != nil {
			return Addr{}, err
		}
	}

	off := g.size.Load()
	if g.region != nil {
		// Gate the whole entry against the fault plan up front; a torn
		// outcome leaves a prefix on the media, exactly like a torn file
		// write, and the crc catches it at scan time.
		if out := s.dev.CheckWrite(entryLen); out.Err != nil {
			if out.Torn > 0 {
				if a, aerr := g.region.Alloc(entryLen); aerr == nil {
					g.region.Write(a, buf[:out.Torn])
					g.size.Store(off + alignUp(int64(entryLen)))
				}
			}
			g.sealed.Store(true)
			return Addr{}, out.Err
		}
		a, err := g.region.Alloc(entryLen)
		if err != nil {
			g.sealed.Store(true)
			return Addr{}, err
		}
		g.region.Write(a, buf)
		off = a.Offset()
	} else {
		if _, err := g.w.Write(buf); err != nil {
			g.size.Store(g.w.Offset())
			g.sealed.Store(true)
			return Addr{}, err
		}
	}
	g.size.Store(off + alignUp(int64(entryLen)))
	g.live.Add(int64(entryLen))
	s.appends.Add(1)
	s.appendedBytes.Add(int64(entryLen))
	return Addr{Seg: g.id, Off: off, Len: uint32(entryLen)}, nil
}

// Read resolves a pointer to its (key, value, seq). The returned slices
// alias log storage for NVM segments and must be copied before the caller
// releases its version pin. A failure is ErrCorrupt (wrapped with
// detail): unknown segment, out-of-bounds address, or checksum mismatch.
func (s *Store) Read(a Addr) (key, value []byte, seq uint64, err error) {
	g := s.lookup(a.Seg)
	if g == nil {
		return nil, nil, 0, fmt.Errorf("%w: pointer into unknown segment %d", ErrCorrupt, a.Seg)
	}
	if a.Len < entryHeaderSize || a.Off < 0 || a.Off+int64(a.Len) > g.size.Load() {
		return nil, nil, 0, fmt.Errorf("%w: address %d:%d+%d out of bounds", ErrCorrupt, a.Seg, a.Off, a.Len)
	}
	var buf []byte
	if g.region != nil {
		buf = g.region.Read(g.region.Base().Add(a.Off), int(a.Len))
	} else {
		buf = make([]byte, a.Len)
		if _, rerr := g.r.ReadAt(buf, a.Off); rerr != nil {
			return nil, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, rerr)
		}
	}
	return decodeEntry(buf, a)
}

func decodeEntry(buf []byte, a Addr) (key, value []byte, seq uint64, err error) {
	crc := binary.LittleEndian.Uint32(buf[0:4])
	keyLen := binary.LittleEndian.Uint32(buf[4:8])
	valLen := binary.LittleEndian.Uint32(buf[8:12])
	seq = binary.LittleEndian.Uint64(buf[12:20])
	if entryHeaderSize+int(keyLen)+int(valLen) != len(buf) {
		return nil, nil, 0, fmt.Errorf("%w: entry at %d:%d length mismatch", ErrCorrupt, a.Seg, a.Off)
	}
	if crc32.ChecksumIEEE(buf[4:]) != crc {
		return nil, nil, 0, fmt.Errorf("%w: checksum mismatch at %d:%d", ErrCorrupt, a.Seg, a.Off)
	}
	key = buf[entryHeaderSize : entryHeaderSize+keyLen]
	value = buf[entryHeaderSize+keyLen:]
	return key, value, seq, nil
}

// MarkDead records that the entry at a is no longer referenced by the LSM
// structure (dropped by a merge, superseded, or relocated). The count is
// advisory — it steers GC candidate selection; the GC scan itself decides
// per-entry liveness. Unknown segments (already reclaimed) are ignored.
func (s *Store) MarkDead(a Addr) {
	g := s.lookup(a.Seg)
	if g == nil {
		return
	}
	// Clamp at zero: double-marks (replays, duplicate drop notifications)
	// must not drive the advisory count negative.
	for {
		cur := g.live.Load()
		next := cur - int64(a.Len)
		if next < 0 {
			next = 0
		}
		if g.live.CompareAndSwap(cur, next) {
			return
		}
	}
}

// SealActive closes the current segment; the next append opens a fresh
// one. Recovery calls it so replayed segments are never appended to.
func (s *Store) SealActive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		s.active.sealed.Store(true)
	}
}

// sealFullLocked is used by PickGC so a filled-but-active segment can
// become a candidate without waiting for the next append.
func (s *Store) sealFullLocked() {
	if s.active != nil && !s.active.sealed.Load() && s.active.size.Load() >= int64(s.cfg.SegmentSize) {
		s.active.sealed.Store(true)
	}
}

// PickGC returns the sealed segment with the highest dead ratio at or
// above the configured threshold, or ok=false when nothing qualifies.
func (s *Store) PickGC() (id uint32, ok bool) {
	s.mu.Lock()
	s.sealFullLocked()
	s.mu.Unlock()
	best := -1.0
	for _, g := range *s.segs.Load() {
		if !g.sealed.Load() || g.condemned.Load() {
			continue
		}
		if r := g.deadRatio(); r >= s.cfg.GCDeadRatio && r > best {
			best = r
			id = g.id
			ok = true
		}
	}
	return id, ok
}

// Scan iterates the entries of one segment in append order, stopping at
// the first invalid entry (a torn tail) or when fn returns false. The
// Entry's slices are only valid during the callback.
func (s *Store) Scan(id uint32, fn func(e Entry) bool) error {
	g := s.lookup(id)
	if g == nil {
		return fmt.Errorf("%w: scan of unknown segment %d", ErrCorrupt, id)
	}
	size := g.size.Load()
	var off int64
	for off+entryHeaderSize <= size {
		var hdr []byte
		if g.region != nil {
			hdr = g.region.Read(g.region.Base().Add(off), entryHeaderSize)
		} else {
			hdr = make([]byte, entryHeaderSize)
			if _, err := g.r.ReadAt(hdr, off); err != nil {
				return nil // torn tail
			}
		}
		keyLen := binary.LittleEndian.Uint32(hdr[4:8])
		valLen := binary.LittleEndian.Uint32(hdr[8:12])
		entryLen := int64(entryHeaderSize) + int64(keyLen) + int64(valLen)
		if keyLen == 0 || off+entryLen > size {
			return nil // zero-fill or truncated: end of valid data
		}
		a := Addr{Seg: id, Off: off, Len: uint32(entryLen)}
		var buf []byte
		if g.region != nil {
			buf = g.region.Read(g.region.Base().Add(off), int(entryLen))
		} else {
			buf = make([]byte, entryLen)
			if _, err := g.r.ReadAt(buf, off); err != nil {
				return nil
			}
		}
		key, value, seq, err := decodeEntry(buf, a)
		if err != nil {
			return nil // torn entry: nothing after it was ever acknowledged
		}
		if !fn(Entry{Key: key, Value: value, Seq: seq, Addr: a}) {
			return nil
		}
		off += alignUp(entryLen)
	}
	return nil
}

// Condemn claims a segment for reclamation: exactly one caller gets true
// per segment lifetime. A condemned segment stays installed and readable
// (epoch-pinned readers may still resolve into it) but PickGC no longer
// offers it — the claimant owns logging the free and queueing Free.
func (s *Store) Condemn(id uint32) bool {
	g := s.lookup(id)
	if g == nil {
		return false
	}
	if !g.condemned.CompareAndSwap(false, true) {
		return false
	}
	// Reclamation is logically complete here (the claimant makes it durable
	// before queueing the deferred free), so the counters report it now —
	// Free only returns the memory.
	s.reclaimedSegs.Add(1)
	s.reclaimedBytes.Add(g.size.Load())
	return true
}

// Free removes a segment from the store and releases its backing memory.
// The engine calls it only once no reader, snapshot, or pinned version
// can still resolve addresses into the segment (epoch-deferred).
func (s *Store) Free(id uint32) {
	s.mu.Lock()
	g := s.removeLocked(id)
	if g != nil && s.active == g {
		s.active = nil
	}
	s.mu.Unlock()
	if g == nil {
		return
	}
	if g.region != nil {
		s.dev.Release(g.region)
	} else {
		s.disk.Remove(g.name)
	}
}

// AddRelocation accounts one live value moved by GC.
func (s *Store) AddRelocation(bytes int64) {
	s.relocations.Add(1)
	s.relocatedBytes.Add(bytes)
}

// Attach re-installs a recovered NVM segment from its region, rebuilding
// its extent with a checksum-validated scan (torn tails are excluded).
// Live bytes are conservatively reset to the full extent — GC relearns
// dead space from compaction drops; it can only be delayed, never unsafe.
// The segment is sealed: recovery never appends to replayed segments.
func (s *Store) Attach(id uint32, region *vaddr.Region) {
	g := &segment{id: id, region: region, cap: int64(region.ChunkSize())}
	g.sealed.Store(true)
	size := scanExtent(region)
	g.size.Store(size)
	g.live.Store(size)
	s.mu.Lock()
	s.installLocked(g)
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.mu.Unlock()
}

// scanExtent walks crc-valid entries from offset 0 and returns the byte
// extent of the valid prefix.
func scanExtent(region *vaddr.Region) int64 {
	limit := region.Size()
	var off int64
	for off+entryHeaderSize <= limit {
		hdr := region.Read(region.Base().Add(off), entryHeaderSize)
		keyLen := binary.LittleEndian.Uint32(hdr[4:8])
		valLen := binary.LittleEndian.Uint32(hdr[8:12])
		entryLen := int64(entryHeaderSize) + int64(keyLen) + int64(valLen)
		if keyLen == 0 || off+entryLen > limit {
			break
		}
		buf := region.Read(region.Base().Add(off), int(entryLen))
		if _, _, _, err := decodeEntry(buf, Addr{Off: off, Len: uint32(entryLen)}); err != nil {
			break
		}
		off += alignUp(entryLen)
	}
	return off
}

// Segments returns the ids of all installed segments, and Regions the NVM
// regions backing them — the leak audit's view of what the value log owns.
func (s *Store) Segments() []uint32 {
	m := *s.segs.Load()
	out := make([]uint32, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// Regions returns the NVM regions backing installed segments.
func (s *Store) Regions() []*vaddr.Region {
	m := *s.segs.Load()
	out := make([]*vaddr.Region, 0, len(m))
	for _, g := range m {
		if g.region != nil {
			out = append(out, g.region)
		}
	}
	return out
}

// SegmentRef identifies one installed NVM segment for manifest snapshots.
type SegmentRef struct {
	ID     uint32
	Region uint32
}

// SnapshotState returns the next segment id and the installed NVM
// segments sorted by id — what a manifest full-state snapshot embeds.
// SSD segments are excluded (not crash-recoverable).
func (s *Store) SnapshotState() (next uint32, segs []SegmentRef) {
	s.mu.Lock()
	next = s.nextID
	s.mu.Unlock()
	for id, g := range *s.segs.Load() {
		if g.region != nil {
			segs = append(segs, SegmentRef{ID: id, Region: g.region.Index()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].ID < segs[j].ID })
	return next, segs
}

// SetNextID raises the next segment id to at least id. Recovery restores
// the persisted counter so reclaimed segment ids are never reused.
func (s *Store) SetNextID(id uint32) {
	s.mu.Lock()
	if id > s.nextID {
		s.nextID = id
	}
	s.mu.Unlock()
}

// RegionIndex returns the NVM region index of a segment (recovery uses it
// to match manifest records), or false for SSD segments.
func (s *Store) RegionIndex(id uint32) (uint32, bool) {
	g := s.lookup(id)
	if g == nil || g.region == nil {
		return 0, false
	}
	return g.region.Index(), true
}

// Counters returns a snapshot of the store's accounting.
func (s *Store) Counters() Counters {
	var c Counters
	for _, g := range *s.segs.Load() {
		c.Segments++
		c.SegmentBytes += g.size.Load()
		c.LiveBytes += g.live.Load()
	}
	c.Appends = s.appends.Load()
	c.AppendedBytes = s.appendedBytes.Load()
	c.GCRelocations = s.relocations.Load()
	c.GCRelocatedBytes = s.relocatedBytes.Load()
	c.GCSegmentsReclaimed = s.reclaimedSegs.Load()
	c.GCReclaimedBytes = s.reclaimedBytes.Load()
	return c
}
