package core

import (
	"errors"
	"fmt"
	"testing"

	"miodb/internal/nvm"
)

// TestPersistentFaultDegradesStore: a persistent device fault on the
// write path must latch the store read-only — no panic, no partial
// release — while reads keep serving every acknowledged update.
func TestPersistentFaultDegradesStore(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	acked := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}

	// Persistent (non-transient) failures on every NVM write. FlushAll
	// forces a rotation whose manifest record cannot land, and wakes the
	// flusher whose device gate cannot pass — either path must latch the
	// store degraded, never panic.
	_, dev := db.Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(3).FailWritesEvery(1))
	if err := db.FlushAll(); err == nil {
		t.Fatal("FlushAll succeeded with every device write failing")
	}
	db.WaitIdle()
	if err := db.Err(); err == nil {
		t.Fatal("DB.Err() == nil after persistent write faults")
	} else if !errors.Is(err, ErrDegraded) {
		t.Fatalf("DB.Err() = %v, not wrapped in ErrDegraded", err)
	}
	if err := db.Put([]byte("more"), []byte("data")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put on degraded store: %v, want ErrDegraded", err)
	}

	// Reads must still serve everything that was acknowledged.
	dev.SetFaultPlan(nil) // reads are never blocked, but keep it clean
	for k, v := range acked {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("degraded read %q = %q, %v (want %q)", k, got, err, v)
		}
	}
}

// TestTransientFaultsRetried: transient faults on background device
// operations are absorbed by the retry/backoff policy — the store stays
// healthy and records the retries in its stats.
func TestTransientFaultsRetried(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("somevalue")); err != nil {
			t.Fatal(err)
		}
	}

	// Every 4th device-write check fails transiently; retries succeed.
	_, dev := db.Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(11).FailWritesEvery(4).AllTransient())
	defer dev.SetFaultPlan(nil)

	if err := db.FlushAll(); err != nil {
		t.Fatalf("FlushAll under transient faults: %v", err)
	}
	if err := db.Err(); err != nil {
		t.Fatalf("store degraded by transient faults: %v", err)
	}
	if got := db.Stats().DeviceRetries; got == 0 {
		t.Error("no device retries recorded despite injected transient faults")
	}
	for i := 0; i < 300; i += 37 {
		k := fmt.Sprintf("k%04d", i)
		if v, err := db.Get([]byte(k)); err != nil || string(v) != "somevalue" {
			t.Fatalf("Get(%q) = %q, %v after retried flush", k, v, err)
		}
	}
}
