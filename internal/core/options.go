// Package core implements the MioDB engine: the paper's elastic multi-level
// PMTable buffer over a DRAM write buffer and a huge bottom-level
// repository, with one-piece flushing, zero-copy + lazy-copy compaction,
// per-level parallel compaction threads, bloom-filtered reads, write-ahead
// logging, and crash recovery. See DESIGN.md for the system map.
package core

import (
	"miodb/internal/lsm"
	"miodb/internal/nvm"
	"miodb/internal/vfs"
)

// Options configures a DB. The zero value is usable: defaults reproduce
// the paper's configuration scaled by 1/1000 (64 KB memtables standing in
// for 64 MB, 8 elastic-buffer levels, 16 bloom bits per key).
type Options struct {
	// MemTableSize is the DRAM buffer's soft capacity before rotation.
	MemTableSize int64
	// ChunkSize is the arena chunk size and bounds the largest entry.
	ChunkSize int
	// Levels is the number of elastic-buffer levels n (L0..L(n-1)); the
	// repository below them is Ln. The paper settles on 8 (Fig 9).
	Levels int
	// BloomBitsPerKey and FilterCapacity size the fixed, mergeable
	// per-PMTable bloom filters (§4.6). A negative BloomBitsPerKey
	// disables filtering entirely (the read-optimization ablation).
	BloomBitsPerKey int
	FilterCapacity  int

	// DisableWAL turns off write-ahead logging (benchmark ablation).
	DisableWAL bool

	// ParallelCompaction runs one compaction goroutine per level (§4.5).
	// When false a single goroutine serves all levels round-robin — the
	// ablation Fig 9 contrasts with.
	ParallelCompaction *bool

	// ZeroCopyMerge selects pointer-only merging in the elastic buffer.
	// When false, merges physically copy nodes (ablation: what the
	// elastic buffer would cost without byte addressability).
	ZeroCopyMerge *bool

	// OnePieceFlush selects whole-arena flushing (§4.2). When false, the
	// flusher copies entries one by one into a fresh NVM skip list — the
	// NoveLSM-style flush the paper's Fig 12 compares against.
	OnePieceFlush *bool

	// GroupCommit selects the leader-based group-commit write pipeline:
	// concurrent writers coalesce into one WAL append and one bulk
	// memtable insert. When false, every write commits individually under
	// the commit lock with a per-record WAL append — the serialized write
	// path the ablation benchmarks compare against.
	GroupCommit *bool

	// EpochReads selects the lock-free read path: the current version is
	// published through an atomic pointer and readers pin snapshots via
	// striped epoch slots, never touching the structural mutex (see
	// epoch.go / DESIGN.md §8). When false, readers acquire and release
	// versions under the global mutex with per-version refcounts — the
	// serialized read path the readscale ablation compares against.
	EpochReads *bool

	// SSD enables the DRAM-NVM-SSD hierarchy (§5.4): the repository is
	// replaced by leveled SSTables on a simulated SSD.
	SSD *SSDOptions

	// ValueLog enables key-value separation (DESIGN.md §14): values at or
	// above the threshold are appended to a segmented value log and the
	// LSM structure stores 16-byte addresses in their place, so flushes
	// and compactions move pointers instead of value bytes. nil keeps the
	// engine byte-for-byte value-inline.
	ValueLog *ValueLogOptions

	// Admission enables backlog-aware write admission control; nil (the
	// default) keeps the paper's stall-free behavior: makeRoomForWrite
	// rotates into the immutable queue without bound and a burst trades a
	// visible stall for unbounded DRAM growth. With it set, the committing
	// leader throttles (soft) or blocks until flush progress (hard) when
	// the backlog crosses the thresholds, and the waits are recorded as
	// measured cumulative/interval stalls.
	Admission *AdmissionOptions

	// Simulate enables device latency injection (benchmarks); unit tests
	// leave it off.
	Simulate bool
	// TimeScale scales injected latencies (1.0 = full model).
	TimeScale float64
}

// ValueLogOptions configures key-value separation.
type ValueLogOptions struct {
	// Threshold is the minimum value size (bytes) separated into the log;
	// smaller values stay inline. Default 1 KiB.
	Threshold int
	// SegmentSize is the soft capacity of one log segment (an oversized
	// value gets a dedicated segment). Default 4× MemTableSize.
	SegmentSize int
	// GCDeadRatio is the dead-space fraction at which a sealed segment is
	// garbage-collected (live values relocated, segment reclaimed).
	// Default 0.5.
	GCDeadRatio float64
	// OnSSD places segments on the simulated SSD tier instead of NVM —
	// the large-value offload arm. Checkpoint images and crash recovery
	// do not cover SSD-resident segments.
	OnSSD bool
}

// SSDOptions configures the SSD tier.
type SSDOptions struct {
	// Disk is the simulated SSD; if nil one is created with SSDProfile.
	Disk *vfs.Disk
	// LSM tunes the on-SSD leveled tree.
	LSM lsm.Options
}

func (o Options) withDefaults() Options {
	if o.MemTableSize <= 0 {
		o.MemTableSize = 64 << 10
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256 << 10
	}
	if o.ChunkSize < int(o.MemTableSize/4) {
		// Keep clone-based flushing efficient: a memtable arena should
		// span only a handful of chunks, so a ChunkSize under a quarter
		// of the memtable snaps up to the full MemTableSize. Note the
		// snap changes arena granularity for *everything* sharing the
		// space (WAL regions, repository chunks), not just the memtable.
		//
		// This clamp is also what makes dynamic memtable sizing sound:
		// ChunkSize is fixed for the life of the DB, so a resized target
		// must never exceed what the fixed chunk size can serve.
		// Post-defaults ChunkSize ≥ MemTableSize/4 always holds, which
		// guarantees SetMemTableTarget's cap of maxArenaChunks (4) ×
		// ChunkSize is at least the configured MemTableSize — the
		// governor can grow a shard back to (and beyond) its static
		// size in every legal configuration. See memtarget.go and
		// TestChunkSizeInvariant.
		o.ChunkSize = int(o.MemTableSize)
	}
	if o.Levels <= 0 {
		o.Levels = 8
	}
	if o.Levels < 2 {
		o.Levels = 2
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 16
	}
	if o.FilterCapacity <= 0 {
		o.FilterCapacity = 1 << 14
	}
	if o.ParallelCompaction == nil {
		o.ParallelCompaction = boolPtr(true)
	}
	if o.ZeroCopyMerge == nil {
		o.ZeroCopyMerge = boolPtr(true)
	}
	if o.OnePieceFlush == nil {
		o.OnePieceFlush = boolPtr(true)
	}
	if o.GroupCommit == nil {
		o.GroupCommit = boolPtr(true)
	}
	if o.EpochReads == nil {
		o.EpochReads = boolPtr(true)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.ValueLog != nil {
		// Clone: defaulting must never mutate a literal shared across shards.
		vc := *o.ValueLog
		if vc.Threshold <= 0 {
			vc.Threshold = 1 << 10
		}
		if vc.SegmentSize <= 0 {
			vc.SegmentSize = int(o.MemTableSize) * 4
		}
		if vc.GCDeadRatio <= 0 {
			vc.GCDeadRatio = 0.5
		}
		o.ValueLog = &vc
	}
	if o.Admission != nil {
		// Clone so defaulting never mutates a literal the caller may share
		// across shards.
		ac := *o.Admission
		if ac.SlowdownDelay <= 0 {
			ac.SlowdownDelay = defaultSlowdownDelay
		}
		o.Admission = &ac
	}
	return o
}

func boolPtr(b bool) *bool { return &b }

// Bool is a helper for setting the ablation flags in Options literals.
func Bool(b bool) *bool { return &b }

// devices bundles the memory devices of one store instance.
type devices struct {
	dram *nvm.Device
	nvm  *nvm.Device
}
