// Degraded read-only mode. Before this layer existed, every background
// I/O failure (flush, compaction, lazy copy, manifest append) was a
// panic(err) that took the whole process down. A production store must
// instead keep serving what it can: transient device errors are retried
// with capped backoff; a persistent error latches a sticky background
// error, background work stops, writes fail fast with ErrDegraded, and
// reads keep being served from the intact in-memory structure.
//
// The latch is deliberately conservative about durability: once the
// manifest (or a WAL) can no longer be appended to, nothing that the
// last recoverable manifest state still references is ever released —
// leaking those arenas is the price of guaranteeing that a crash of the
// degraded process loses no acknowledged write.
package core

import (
	"fmt"
	"time"

	"miodb/internal/kvstore"
	"miodb/internal/nvm"
)

// ErrDegraded wraps the sticky background error: the store is read-only
// because a background I/O path failed persistently. Inspect DB.Err()
// for the root cause. The sentinel lives in kvstore so the network
// client can map wire errors back onto the same identity.
var ErrDegraded = kvstore.ErrDegraded

// Err returns the store's sticky background error, or nil while the
// store is healthy. Once non-nil it never clears: writes fail with this
// error while reads continue to be served.
func (db *DB) Err() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bgErr
}

// degradeLocked latches the first background failure. Callers hold db.mu.
func (db *DB) degradeLocked(op string, err error) {
	if db.bgErr != nil || err == nil {
		return
	}
	db.bgErr = fmt.Errorf("%w (%s): %w", ErrDegraded, op, err)
	db.st.CountBackgroundError()
	// Wake background loops (they exit), WaitIdle callers, and writers.
	db.cond.Broadcast()
	// Background loops stop on the latch, so no further version edits (and
	// their synchronous sweeps) may ever run; kick one last opportunistic
	// sweep so retired versions whose grace period has already elapsed are
	// reclaimed rather than parked until Close.
	if db.epochReads {
		db.trySweep()
	}
}

// degrade is degradeLocked for callers not holding db.mu.
func (db *DB) degrade(op string, err error) {
	db.mu.Lock()
	db.degradeLocked(op, err)
	db.mu.Unlock()
}

// Retry policy for transient device errors: a handful of attempts with
// exponential backoff capped in the low milliseconds. Anything that
// survives the budget is treated as persistent.
const (
	deviceRetries   = 5
	retryBackoffMin = 200 * time.Microsecond
	retryBackoffMax = 5 * time.Millisecond
)

// runDeviceOp runs op, transparently retrying errors the device reports
// as transient (nvm.IsTransient). It returns nil, the first persistent
// error, or the last transient error once the retry budget is exhausted.
func (db *DB) runDeviceOp(op func() error) error {
	backoff := retryBackoffMin
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !nvm.IsTransient(err) || attempt >= deviceRetries {
			return err
		}
		db.st.AddDeviceRetry()
		nvm.Spin(backoff)
		backoff *= 2
		if backoff > retryBackoffMax {
			backoff = retryBackoffMax
		}
	}
}

// gateNVMWrite consults the NVM device's fault plan for an n-byte
// logical write at the top of a background operation whose body is raw
// pointer work (one-piece flush, zero-copy merge). Those stores cannot
// fail mid-operation on real persistent memory either, so the modeled
// device admits the whole operation or fails it up front; transient
// refusals are retried here.
func (db *DB) gateNVMWrite(n int) error {
	return db.runDeviceOp(func() error { return db.nvm.CheckWrite(n).Err })
}

// writeGateLocked reports why writes are currently refused, if they are.
// Callers hold db.mu.
func (db *DB) writeGateLocked() error {
	if db.closed {
		return ErrClosed
	}
	return db.bgErr
}

// writeGate is writeGateLocked for callers not holding db.mu.
func (db *DB) writeGate() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.writeGateLocked()
}
