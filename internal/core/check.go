package core

import (
	"fmt"

	"miodb/internal/keys"
)

// CheckConsistency validates the store's structural invariants — the
// online fsck used by tests and the verification tooling:
//
//  1. every PMTable's skip list is well-formed (ordering, tower
//     subsequence structure, no cycles);
//  2. entries within a level are newest-first, and every table in level i
//     holds strictly newer sequences than every table below — the
//     invariant the first-hit-wins read path depends on;
//  3. no table's bloom filter yields a false negative for its own keys;
//  4. the repository's list is well-formed and holds no tombstones.
//
// It runs against the current version with the structural lock released
// (tables are immutable once settled), but callers should quiesce the
// store first (WaitIdle) for a meaningful full check.
func (db *DB) CheckConsistency() error {
	pin := db.acquireVersion()
	defer db.releaseVersion(pin)
	v := pin.v

	prevLevelMin := uint64(1) << 62
	for level, entries := range v.levels {
		var levelMin uint64 = 1 << 62
		for i, e := range entries {
			te, ok := e.(tableEntry)
			if !ok {
				return fmt.Errorf("check: level %d entry %d is mid-merge; quiesce first", level, i)
			}
			t := te.t
			if _, err := t.List().CheckInvariants(); err != nil {
				return fmt.Errorf("check: level %d table %d: %w", level, t.ID, err)
			}
			if i > 0 {
				if prev := entries[i-1]; prev.newestSeq() <= t.MaxSeq {
					return fmt.Errorf("check: level %d entries not newest-first at %d", level, i)
				}
			}
			if t.MaxSeq >= prevLevelMin {
				return fmt.Errorf("check: level %d table %d seq [%d,%d] overlaps newer level (min %d)",
					level, t.ID, t.MinSeq, t.MaxSeq, prevLevelMin)
			}
			if t.MinSeq < levelMin {
				levelMin = t.MinSeq
			}
			// Bloom self-coverage.
			it := t.NewIterator()
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if !t.MayContain(it.Key()) {
					return fmt.Errorf("check: level %d table %d bloom false negative for %q",
						level, t.ID, it.Key())
				}
			}
		}
		if len(entries) > 0 {
			prevLevelMin = levelMin
		}
	}

	if v.repo != nil {
		if _, err := v.repo.List().CheckInvariants(); err != nil {
			return fmt.Errorf("check: repository: %w", err)
		}
		it := v.repo.NewIterator()
		var lastKey []byte
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if it.Kind() == keys.KindDelete {
				return fmt.Errorf("check: repository holds tombstone for %q", it.Key())
			}
			if lastKey != nil && string(lastKey) == string(it.Key()) {
				return fmt.Errorf("check: repository holds duplicate versions of %q", it.Key())
			}
			lastKey = append(lastKey[:0], it.Key()...)
		}
	}
	return nil
}

// CheckRegionAccounting verifies that every live region in the store's
// address space is reachable from the current version: the superblock,
// the memtable arenas and WAL regions (live + immutable), every
// PMTable's arenas, and the repository. Anything else is a leak — an
// arena some code path allocated and then lost track of, which on real
// NVM would be permanently unreclaimable.
//
// The check first installs a no-op version edit to flush deferred
// releases (releaseFns attached to the current version only run once it
// is superseded and drained), so it must only be called on a quiesced
// store (WaitIdle) with no concurrent readers holding old versions.
func (db *DB) CheckRegionAccounting() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	// The no-op edit retires the current version (freezing its release
	// queue onto the chain) and, in epoch mode, runs a blocking
	// advance-and-sweep: with no concurrent readers announced, both epoch
	// advances succeed and the whole chain drains synchronously.
	db.editVersionLocked(func(*version) {})
	db.sweepMu.Lock()
	drained := db.oldest == db.current.Load()
	db.sweepMu.Unlock()
	if !drained {
		return fmt.Errorf("check: version chain not drained; quiesce first")
	}
	live, err := db.liveRegionsLocked()
	if err != nil {
		return err
	}
	var leaked []uint32
	for _, r := range db.space.Regions() {
		if !live[r.Index()] {
			leaked = append(leaked, r.Index())
		}
	}
	if len(leaked) > 0 {
		return fmt.Errorf("check: %d region(s) leaked (allocated but unreachable): %v",
			len(leaked), leaked)
	}
	return nil
}

// liveRegionsLocked computes the set of region indexes reachable from the
// current version: the superblock/manifest, the live and immutable
// memtable arenas plus their WAL regions, every settled PMTable's
// arenas, and the repository. Callers hold db.mu; the current version
// must hold no in-flight merges (its entries must all be tableEntry).
func (db *DB) liveRegionsLocked() (map[uint32]bool, error) {
	live := map[uint32]bool{db.manifest.region().Index(): true}
	v := db.current.Load()
	addMem := func(h *memHandle) {
		live[h.mt.Region().Index()] = true
		if h.log != nil {
			live[h.log.Region().Index()] = true
		}
	}
	addMem(v.mem)
	for _, h := range v.imms {
		addMem(h)
	}
	for level, entries := range v.levels {
		for _, e := range entries {
			te, ok := e.(tableEntry)
			if !ok {
				return nil, fmt.Errorf("check: level %d is mid-merge; quiesce first", level)
			}
			for _, r := range te.t.Regions() {
				live[r.Index()] = true
			}
		}
	}
	if v.repo != nil {
		live[v.repo.Region().Index()] = true
	}
	if db.vlog != nil {
		for _, r := range db.vlog.Regions() {
			live[r.Index()] = true
		}
	}
	return live, nil
}

// CompactionStats describes one elastic-buffer level's lifetime work —
// the per-level observability behind Fig 9's thread-scaling analysis.
type CompactionStats struct {
	// Level is the elastic-buffer level index (the last level's entry
	// reports lazy-copy compactions into the repository).
	Level int
	// Merges counts completed compactions initiated at this level.
	Merges int64
	// NodesMoved counts nodes re-linked (zero-copy) or copied (lazy).
	NodesMoved int64
	// GarbageBytes counts superseded-node bytes logically deleted here.
	GarbageBytes int64
}

// CompactionStats returns per-level compaction counters.
func (db *DB) CompactionStats() []CompactionStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]CompactionStats, len(db.levelStats))
	for i := range db.levelStats {
		out[i] = CompactionStats{
			Level:        i,
			Merges:       db.levelStats[i].merges,
			NodesMoved:   db.levelStats[i].nodesMoved,
			GarbageBytes: db.levelStats[i].garbageBytes,
		}
	}
	return out
}
