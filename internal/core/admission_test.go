package core

import (
	"fmt"
	"testing"
	"time"

	"miodb/internal/nvm"
)

// admissionOpts builds a store whose flush path can be slowed through the
// NVM device's fault-plan brake while the foreground write path stays
// fast: the WAL is off (its appends would pay the brake too) and the
// memtable is tiny so a short burst forces many rotations.
func admissionOpts(ac *AdmissionOptions) Options {
	return Options{
		MemTableSize:   4 << 10,
		ChunkSize:      16 << 10,
		Levels:         3,
		FilterCapacity: 1 << 12,
		DisableWAL:     true,
		Admission:      ac,
	}
}

// burstWrites drives writes much faster than the braked flush path can
// retire them, sampling the imms backlog gauge as it goes. Returns the
// peak observed backlog.
func burstWrites(t *testing.T, db *DB, n int) int64 {
	t.Helper()
	value := make([]byte, 256)
	var peak int64
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), value); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i%20 == 0 {
			if imms := db.Stats().PendingImms; imms > peak {
				peak = imms
			}
		}
	}
	if imms := db.Stats().PendingImms; imms > peak {
		peak = imms
	}
	return peak
}

func scanAll(t *testing.T, db *DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := db.Scan(nil, 0, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBacklogGaugeRisesWithoutAdmission: with the default (nil) admission
// config, a write burst that outruns a slowed flush path must show up in
// the PendingImms gauge — the unbounded elastic-buffer debt the paper's
// stall-free result quietly accumulates — while both stall counters stay
// zero (the writer never waited).
func TestBacklogGaugeRisesWithoutAdmission(t *testing.T) {
	db := mustOpen(t, admissionOpts(nil))
	defer db.Close()
	_, dev := db.Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(1).DelayWrites(1<<10, 2*time.Millisecond))
	defer dev.SetFaultPlan(nil)

	peak := burstWrites(t, db, 600)
	if peak < 8 {
		t.Errorf("peak PendingImms = %d, want ≥8 (backlog should grow without bound)", peak)
	}
	st := db.Stats()
	if st.IntervalStalls != 0 || st.IntervalStall != 0 || st.CumulativeStall != 0 {
		t.Errorf("admission off must never stall: intervals=%d (%v) cumulative=%v",
			st.IntervalStalls, st.IntervalStall, st.CumulativeStall)
	}
	if st.PendingImmBytes == 0 && st.PendingImms > 0 {
		t.Error("PendingImmBytes gauge empty while imms are queued")
	}
	// Lift the brake so Close's drain runs at full speed.
	dev.SetFaultPlan(nil)
}

// TestAdmissionBoundsBacklogAndRecordsStalls: with the hard band on
// (soft off, so unthrottled writes slam straight into the bound), the
// same burst must keep the imms queue bounded at HardImms and every
// block must be visible as a measured interval stall.
func TestAdmissionBoundsBacklogAndRecordsStalls(t *testing.T) {
	const hard = 4
	db := mustOpen(t, admissionOpts(&AdmissionOptions{HardImms: hard}))
	defer db.Close()
	_, dev := db.Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(1).DelayWrites(1<<10, 5*time.Millisecond))
	defer dev.SetFaultPlan(nil)

	peak := burstWrites(t, db, 600)
	// admitWrite checks before rotation, so the queue can reach HardImms
	// but never grow past it.
	if peak > hard {
		t.Errorf("peak PendingImms = %d with HardImms=%d: backlog not bounded", peak, hard)
	}
	st := db.Stats()
	if st.IntervalStalls == 0 || st.IntervalStall == 0 {
		t.Errorf("hard admission blocks not recorded: %d stalls, %v", st.IntervalStalls, st.IntervalStall)
	}
	if st.CumulativeStall != 0 {
		t.Errorf("soft band disabled but cumulative stall = %v", st.CumulativeStall)
	}
	dev.SetFaultPlan(nil)
}

// TestAdmissionSoftThrottleRecordsCumulativeStall: with only the soft
// band on, a braked flush keeps the backlog at or above the threshold,
// so commits pay (and record) throttling delays — cumulative stall time
// measured on the write path, never the blocking interval counter.
func TestAdmissionSoftThrottleRecordsCumulativeStall(t *testing.T) {
	db := mustOpen(t, admissionOpts(&AdmissionOptions{SoftImms: 1}))
	defer db.Close()
	_, dev := db.Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(1).DelayWrites(1<<10, 5*time.Millisecond))
	defer dev.SetFaultPlan(nil)

	burstWrites(t, db, 300)
	st := db.Stats()
	if st.CumulativeStall == 0 {
		t.Error("soft throttling delays not recorded")
	}
	if st.IntervalStalls != 0 {
		t.Errorf("soft-only config recorded %d interval stalls", st.IntervalStalls)
	}
	dev.SetFaultPlan(nil)
}

// TestAdmissionOffMatchesDefault: Admission=nil and an admission-enabled
// store must agree on every stored byte after the same workload — the
// controller only schedules writes, it never changes what they write.
// The nil arm also re-checks the structural invariant that today's
// default records no stalls at all.
func TestAdmissionOffMatchesDefault(t *testing.T) {
	withAC := mustOpen(t, admissionOpts(&AdmissionOptions{SoftImms: 2, HardImms: 4}))
	defer withAC.Close()
	without := mustOpen(t, admissionOpts(nil))
	defer without.Close()

	value := make([]byte, 128)
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("k%05d", i))
		if err := withAC.Put(k, value); err != nil {
			t.Fatal(err)
		}
		if err := without.Put(k, value); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := withAC.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := without.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := scanAll(t, withAC), scanAll(t, without)
	if len(a) != len(b) {
		t.Fatalf("content diverged: %d keys with admission, %d without", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("key %q: %q with admission, %q without", k, v, b[k])
		}
	}
	if st := without.Stats(); st.IntervalStalls != 0 || st.CumulativeStall != 0 {
		t.Errorf("default path recorded stalls: %d / %v", st.IntervalStalls, st.CumulativeStall)
	}
}

// TestAdmissionDefaults: withDefaults must fill SlowdownDelay without
// mutating the caller's literal (shards share one Options value).
func TestAdmissionDefaults(t *testing.T) {
	ac := &AdmissionOptions{HardImms: 8}
	o := Options{Admission: ac}.withDefaults()
	if o.Admission.SlowdownDelay != defaultSlowdownDelay {
		t.Errorf("SlowdownDelay = %v, want %v", o.Admission.SlowdownDelay, defaultSlowdownDelay)
	}
	if ac.SlowdownDelay != 0 {
		t.Error("withDefaults mutated the caller's AdmissionOptions")
	}
	o2 := (Options{}).withDefaults()
	if o2.Admission != nil {
		t.Error("defaults invented an admission config")
	}
}
