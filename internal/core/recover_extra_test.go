package core

import (
	"fmt"
	"testing"

	"miodb/internal/nvm"
)

// TestRecoveryTornManifestTail simulates a crash that tore the last
// superblock record: recovery must fall back to the previous intact state
// and still serve everything durable up to it.
func TestRecoveryTornManifestTail(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 1500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	img := db.CrashForTest()

	// Tear the manifest tail: append a record header that claims more
	// payload than exists, as an interrupted append would leave behind.
	super := img.Space.Region(0)
	addr, err := super.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	super.Write(addr, []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0x0f, 0x00, 1, 2, 3, 4, 5, 6, 7, 8})

	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := re.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after torn-tail recovery Get(%s) = %q, %v", k, v, err)
		}
	}
}

// TestRecoveryReplayRotatesMemtable recovers a crashed store whose WAL
// holds far more data than one (recovery-time) memtable: the replay loop
// must seal full memtables into the immutable queue and keep going, not
// overflow the DRAM arena. Shrinking MemTableSize between crash and
// recovery makes the overflow deterministic.
func TestRecoveryReplayRotatesMemtable(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 32 << 10
	db := mustOpen(t, opts)
	golden := map[string]string{}
	val := fmt.Sprintf("%064d", 7)
	for i := 0; i < 250; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := db.Put([]byte(k), []byte(val)); err != nil {
			t.Fatal(err)
		}
		golden[k] = val
	}
	img := db.CrashForTest()

	shrunk := opts
	shrunk.MemTableSize = 2 << 10 // force many rotations during replay
	re, err := Recover(img, shrunk)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	re.WaitIdle()
	if err := re.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := re.CheckRegionAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCrashDuringRecovery crashes the recovery itself at a sweep
// of byte budgets — tearing the WAL re-log, the manifest snapshot, or
// the tail repair at different offsets — and verifies a second, clean
// recovery from the same image still produces every durable update, a
// consistent structure, and no leaked regions. This is the crash-during-
// Recover guarantee: a failed recovery must leave the image exactly as
// recoverable as it found it.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	golden := map[string]string{}
	for i := 0; i < 1200; i++ {
		k := fmt.Sprintf("key-%04d", i%400)
		v := fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	img := db.CrashForTest()

	for _, budget := range []int64{1, 64, 512, 4 << 10, 32 << 10, 256 << 10} {
		img.NVM.SetFaultPlan(nvm.NewFaultPlan(budget).CrashAfterBytes(budget).TornWrites())
		re, err := Recover(img, opts)
		if err == nil {
			// Budget outlived this recovery attempt; crash the recovered
			// store instead and recover the fresh image below.
			img = re.CrashForTest()
		}
		img.NVM.SetFaultPlan(nil)

		re, err = Recover(img, opts)
		if err != nil {
			t.Fatalf("budget %d: clean recovery after interrupted recovery: %v", budget, err)
		}
		for k, v := range golden {
			got, err := re.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("budget %d: Get(%s) = %q, %v; want %q", budget, k, got, err, v)
			}
		}
		re.WaitIdle()
		if err := re.CheckConsistency(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := re.CheckRegionAccounting(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		// Crash again and reuse the image for the next budget.
		img = re.CrashForTest()
	}
}

// TestRecoveryRejectsWrongLevels guards the structural-option check.
func TestRecoveryRejectsWrongLevels(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	db.Put([]byte("k"), []byte("v"))
	img := db.CrashForTest()

	bad := opts
	bad.Levels = opts.Levels + 2
	if _, err := Recover(img, bad); err == nil {
		t.Fatal("recovery with mismatched Levels succeeded")
	}
	// The image is still usable with the right options.
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, err := re.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatal("recovery after failed attempt broken")
	}
}

// TestRecoveryManyDeltasNoSnapshot exercises replay across a long delta
// chain (more edits than the snapshot interval, including merges through
// every level).
func TestRecoveryLongDeltaChain(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 4 << 10 // many rotations → many delta records
	db := mustOpen(t, opts)
	golden := map[string]string{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%04d", i%800)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
}
