package core

import (
	"fmt"
	"testing"
)

// TestRecoveryTornManifestTail simulates a crash that tore the last
// superblock record: recovery must fall back to the previous intact state
// and still serve everything durable up to it.
func TestRecoveryTornManifestTail(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 1500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	img := db.CrashForTest()

	// Tear the manifest tail: append a record header that claims more
	// payload than exists, as an interrupted append would leave behind.
	super := img.Space.Region(0)
	addr, err := super.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	super.Write(addr, []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0x0f, 0x00, 1, 2, 3, 4, 5, 6, 7, 8})

	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := re.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after torn-tail recovery Get(%s) = %q, %v", k, v, err)
		}
	}
}

// TestRecoveryRejectsWrongLevels guards the structural-option check.
func TestRecoveryRejectsWrongLevels(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	db.Put([]byte("k"), []byte("v"))
	img := db.CrashForTest()

	bad := opts
	bad.Levels = opts.Levels + 2
	if _, err := Recover(img, bad); err == nil {
		t.Fatal("recovery with mismatched Levels succeeded")
	}
	// The image is still usable with the right options.
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, err := re.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatal("recovery after failed attempt broken")
	}
}

// TestRecoveryManyDeltasNoSnapshot exercises replay across a long delta
// chain (more edits than the snapshot interval, including merges through
// every level).
func TestRecoveryLongDeltaChain(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 4 << 10 // many rotations → many delta records
	db := mustOpen(t, opts)
	golden := map[string]string{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%04d", i%800)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
}
