package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// TestQuickModelEquivalence drives random operation sequences against the
// engine and an in-memory reference map, checking Get and full-scan
// equivalence after each burst. This is the engine-level property test:
// whatever one-piece flushes, zero-copy merges, lazy copies, and repo
// compactions happen underneath, the visible store must behave exactly
// like a map.
func TestQuickModelEquivalence(t *testing.T) {
	type op struct {
		Key    uint8 // small keyspace → frequent overwrites and merges
		Val    uint16
		Delete bool
	}
	f := func(ops []op) bool {
		opts := smallOpts()
		opts.MemTableSize = 4 << 10 // force constant flushing
		db, err := Open(opts)
		if err != nil {
			return false
		}
		defer db.Close()

		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key)
			if o.Delete {
				if err := db.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%05d-%d", o.Val, i)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			}
		}
		db.WaitIdle()

		// Point-lookup equivalence.
		for i := 0; i < 256; i++ {
			k := fmt.Sprintf("key-%03d", i)
			v, err := db.Get([]byte(k))
			want, present := model[k]
			if present != (err == nil) {
				return false
			}
			if present && string(v) != want {
				return false
			}
		}
		// Scan equivalence.
		seen := map[string]string{}
		var prev []byte
		it := db.NewIterator()
		defer it.Close()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
				return false
			}
			prev = append(prev[:0], it.Key()...)
			seen[string(it.Key())] = string(it.Value())
		}
		if len(seen) != len(model) {
			return false
		}
		for k, v := range model {
			if seen[k] != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCrashRecoveryEquivalence is the crash-safety property: after
// any random operation sequence and a power failure, recovery restores
// exactly the acknowledged state.
func TestQuickCrashRecoveryEquivalence(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
	}
	f := func(ops []op) bool {
		opts := smallOpts()
		db, err := Open(opts)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key)
			if o.Delete {
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%05d-%d", o.Val, i)
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
		}
		img := db.CrashForTest()
		re, err := Recover(img, opts)
		if err != nil {
			return false
		}
		defer re.Close()
		for i := 0; i < 256; i++ {
			k := fmt.Sprintf("key-%03d", i)
			v, err := re.Get([]byte(k))
			want, present := model[k]
			if present != (err == nil) {
				return false
			}
			if present && string(v) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
