package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"miodb/internal/nvm"
	"miodb/internal/pmtable"
	"miodb/internal/vaddr"
)

// manifestLog is MioDB's superblock: an append-only log of full structural
// snapshots in the *first* NVM region of the store, so recovery can find
// it without any external root. Each record frames one encoded state:
//
//	[ crc32 uint32 | len uint32 | payload ]
//
// The last intact record wins (a torn tail write is ignored). The region
// also hosts the per-level insertion-mark slots that zero-copy merges
// persist through (§4.7); their addresses are carried inside every state
// record.
type manifestLog struct {
	dev *nvm.Device
	reg *vaddr.Region

	// poisoned latches once a failed append left a torn prefix on the
	// media: the last-intact-record scan stops there forever, so any
	// further append could never be recovered. Appending to a poisoned
	// manifest is refused with a persistent error.
	poisoned bool
}

// errManifestPoisoned is deliberately persistent (it never carries the
// transient marker) even when the underlying injected fault was
// transient: a torn record is already on the media, and retrying an
// append behind it would write state recovery can never see.
var errManifestPoisoned = fmt.Errorf("manifest: log poisoned by torn append")

const manifestChunk = 1 << 20

func newManifestLog(dev *nvm.Device) *manifestLog {
	return &manifestLog{dev: dev, reg: dev.NewRegion(manifestChunk)}
}

func attachManifestLog(dev *nvm.Device, reg *vaddr.Region) *manifestLog {
	return &manifestLog{dev: dev, reg: reg}
}

func (m *manifestLog) region() *vaddr.Region { return m.reg }

// allocSlot reserves an 8-byte persisted slot (insertion marks).
func (m *manifestLog) allocSlot() (vaddr.Addr, error) {
	a, err := m.reg.Alloc(8)
	if err != nil {
		return vaddr.NilAddr, err
	}
	m.reg.PutUint64(a, 0)
	return a, nil
}

// append durably adds one state record, gated on the device fault plan.
// An injected torn write persists exactly the torn prefix (recovery
// discards it as a damaged tail) and poisons the log.
func (m *manifestLog) append(payload []byte) error {
	if m.poisoned {
		return errManifestPoisoned
	}
	total := 8 + len(payload)
	if total > m.reg.ChunkSize() {
		return fmt.Errorf("manifest: record of %d bytes exceeds chunk %d", total, m.reg.ChunkSize())
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[8:], payload)
	if out := m.dev.CheckWrite(total); out.Err != nil {
		if out.Torn > 0 {
			torn := out.Torn
			if torn > total {
				torn = total
			}
			if addr, err := m.reg.Alloc(total); err == nil {
				m.reg.Write(addr, buf[:torn])
			}
			m.poisoned = true
			return fmt.Errorf("%w: %v", errManifestPoisoned, out.Err)
		}
		return fmt.Errorf("manifest: append: %w", out.Err)
	}
	addr, err := m.reg.Alloc(total)
	if err != nil {
		return err
	}
	m.reg.Write(addr, buf)
	return nil
}

// scan walks every intact record in order from scanFrom (the offset of
// the first record, past the mark slots), invoking fn with each payload.
// A zero header ends the log; a CRC mismatch discards the torn tail.
//
// The returned tornAt/torn pair reports how the walk ended: torn=true
// means it stopped at a damaged record (the signature of an append
// interrupted mid-record) starting at offset tornAt, torn=false means a
// clean zero-header EOF. Recovery uses the distinction to repair the
// media (repairTornTail) — records appended behind torn garbage would
// otherwise be invisible to every future scan.
func (m *manifestLog) scan(scanFrom int64, fn func(payload []byte) error) (tornAt int64, torn bool, err error) {
	chunk := int64(m.reg.ChunkSize())
	off := scanFrom
	size := m.reg.Size()
	for {
		if off+8 > size {
			return 0, false, nil
		}
		if off/chunk != (off+8-1)/chunk {
			off = (off + chunk - 1) / chunk * chunk
			continue
		}
		hdr := m.reg.Read(m.reg.Base().Add(off), 8)
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if crc == 0 && plen == 0 {
			next := (off/chunk + 1) * chunk
			if next+8 > size {
				return 0, false, nil
			}
			nh := m.reg.Read(m.reg.Base().Add(next), 8)
			if binary.LittleEndian.Uint32(nh[0:4]) == 0 && binary.LittleEndian.Uint32(nh[4:8]) == 0 {
				return 0, false, nil
			}
			off = next
			continue
		}
		total := 8 + plen
		if plen <= 0 || off/chunk != (off+total-1)/chunk || off+total > size {
			return off, true, nil
		}
		payload := m.reg.Read(m.reg.Base().Add(off+8), int(plen))
		if crc32.ChecksumIEEE(payload) != crc {
			return off, true, nil
		}
		if err := fn(payload); err != nil {
			return 0, false, err
		}
		off += (total + 7) &^ 7
	}
}

// repairTornTail makes a manifest with a damaged tail appendable again.
// A torn append leaves a partial record on the media; the scan stops
// there forever, so a record appended behind it could never be recovered.
// The repair zeroes everything from the damaged record to the current
// allocation edge (idempotent — a crash mid-repair just leaves a shorter
// damaged tail for the next attempt) and then pads the allocation to the
// next chunk boundary, which is exactly where the scan's zero-header
// probe looks for a continuation. Subsequent appends land there and are
// reachable again.
func (m *manifestLog) repairTornTail(tornAt int64) error {
	size := m.reg.Size()
	if tornAt < size {
		n := size - tornAt
		if out := m.dev.CheckWrite(int(n)); out.Err != nil {
			return fmt.Errorf("manifest: tail repair: %w", out.Err)
		}
		m.reg.Write(m.reg.Base().Add(tornAt), make([]byte, n))
	}
	chunk := int64(m.reg.ChunkSize())
	if rem := m.reg.Size() % chunk; rem != 0 {
		if _, err := m.reg.Alloc(int(chunk - rem)); err != nil {
			return fmt.Errorf("manifest: tail repair: %w", err)
		}
	}
	return nil
}

// manifest state encoding. All integers little-endian, fixed width.

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf.Write(v)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.err = fmt.Errorf("manifest: truncated state")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = fmt.Errorf("manifest: truncated state")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = fmt.Errorf("manifest: truncated state")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.b) < n {
		d.err = fmt.Errorf("manifest: truncated state")
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

// tableState is the persisted identity of one PMTable.
type tableState struct {
	id             uint64
	head           uint64
	minSeq, maxSeq uint64
	regions        []uint32
}

type mergeState struct {
	newT, oldT tableState
	markSlot   uint64
}

type entryState struct {
	isMerge bool
	table   tableState // when !isMerge
	merge   mergeState // when isMerge
}

type manifestState struct {
	lastSeq     uint64
	nextTableID uint64
	markSlots   []uint64
	walRegions  []uint32 // oldest-first; last is the active log
	hasRepo     bool
	repoRegion  uint32
	repoHead    uint64
	levels      [][]entryState

	// rangeDels are the live range tombstones, seq-ascending. Encoded at
	// the very end of the snapshot body so a state written before range
	// deletes existed (no trailing bytes) still decodes.
	rangeDels []rangeTombstone

	// Value-log state: installed NVM segments and the next segment id.
	// Encoded as a second trailing section after the tombstones, with the
	// same backward-compatibility rule (absent in older states). SSD
	// segments are not crash-recoverable and never appear here.
	vlogSegs []vlogSegState
	vlogNext uint32
}

// vlogSegState is the persisted identity of one NVM value-log segment.
type vlogSegState struct {
	id     uint32
	region uint32
}

func encodeVlogState(e *encoder, next uint32, segs []vlogSegState) {
	e.u32(next)
	e.u32(uint32(len(segs)))
	for _, g := range segs {
		e.u32(g.id)
		e.u32(g.region)
	}
}

func decodeVlogState(d *decoder) (next uint32, segs []vlogSegState) {
	next = d.u32()
	n := d.u32()
	if d.err == nil && n > 1<<24 {
		d.err = fmt.Errorf("manifest: absurd vlog segment count %d", n)
		return 0, nil
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		var g vlogSegState
		g.id = d.u32()
		g.region = d.u32()
		if d.err == nil {
			segs = append(segs, g)
		}
	}
	return next, segs
}

// encodeRangeDels appends a tombstone section: count, then per tombstone
// the commit seq and the [start, end) bounds.
func encodeRangeDels(e *encoder, dels []rangeTombstone) {
	e.u32(uint32(len(dels)))
	for _, t := range dels {
		e.u64(t.seq)
		e.bytes(t.start)
		e.bytes(t.end)
	}
}

func decodeRangeDels(d *decoder) []rangeTombstone {
	n := d.u32()
	if d.err == nil && n > 1<<24 {
		d.err = fmt.Errorf("manifest: absurd tombstone count %d", n)
		return nil
	}
	var dels []rangeTombstone
	for i := uint32(0); i < n && d.err == nil; i++ {
		var t rangeTombstone
		t.seq = d.u64()
		t.start = d.bytes()
		t.end = d.bytes()
		if d.err == nil {
			dels = append(dels, t)
		}
	}
	return dels
}

const (
	entryKindTable = 0
	entryKindMerge = 1
)

func encodeTable(e *encoder, t tableState) {
	e.u64(t.id)
	e.u64(t.head)
	e.u64(t.minSeq)
	e.u64(t.maxSeq)
	e.u32(uint32(len(t.regions)))
	for _, r := range t.regions {
		e.u32(r)
	}
}

func decodeTable(d *decoder) tableState {
	var t tableState
	t.id = d.u64()
	t.head = d.u64()
	t.minSeq = d.u64()
	t.maxSeq = d.u64()
	n := d.u32()
	if d.err == nil && n > 1<<20 {
		d.err = fmt.Errorf("manifest: absurd region count %d", n)
		return t
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		t.regions = append(t.regions, d.u32())
	}
	return t
}

func (s *manifestState) encode() []byte {
	var e encoder
	e.u64(s.lastSeq)
	e.u64(s.nextTableID)
	e.u32(uint32(len(s.markSlots)))
	for _, m := range s.markSlots {
		e.u64(m)
	}
	e.u32(uint32(len(s.walRegions)))
	for _, w := range s.walRegions {
		e.u32(w)
	}
	if s.hasRepo {
		e.u8(1)
		e.u32(s.repoRegion)
		e.u64(s.repoHead)
	} else {
		e.u8(0)
	}
	e.u32(uint32(len(s.levels)))
	for _, lvl := range s.levels {
		e.u32(uint32(len(lvl)))
		for _, ent := range lvl {
			if ent.isMerge {
				e.u8(entryKindMerge)
				encodeTable(&e, ent.merge.newT)
				encodeTable(&e, ent.merge.oldT)
				e.u64(ent.merge.markSlot)
			} else {
				e.u8(entryKindTable)
				encodeTable(&e, ent.table)
			}
		}
	}
	// Trailing section: range tombstones (absent in pre-range-delete
	// states — the decoder treats end-of-payload here as empty).
	encodeRangeDels(&e, s.rangeDels)
	// Second trailing section: value-log segments (absent in pre-vlog
	// states — same end-of-payload rule).
	encodeVlogState(&e, s.vlogNext, s.vlogSegs)
	return e.buf.Bytes()
}

func decodeManifestState(payload []byte) (*manifestState, error) {
	d := &decoder{b: payload}
	s := &manifestState{}
	s.lastSeq = d.u64()
	s.nextTableID = d.u64()
	nMarks := d.u32()
	for i := uint32(0); i < nMarks && d.err == nil; i++ {
		s.markSlots = append(s.markSlots, d.u64())
	}
	nWals := d.u32()
	for i := uint32(0); i < nWals && d.err == nil; i++ {
		s.walRegions = append(s.walRegions, d.u32())
	}
	if d.u8() == 1 {
		s.hasRepo = true
		s.repoRegion = d.u32()
		s.repoHead = d.u64()
	}
	nLevels := d.u32()
	if d.err == nil && nLevels > 1<<10 {
		return nil, fmt.Errorf("manifest: absurd level count %d", nLevels)
	}
	for i := uint32(0); i < nLevels && d.err == nil; i++ {
		nEnt := d.u32()
		lvl := []entryState{}
		for j := uint32(0); j < nEnt && d.err == nil; j++ {
			switch d.u8() {
			case entryKindTable:
				lvl = append(lvl, entryState{table: decodeTable(d)})
			case entryKindMerge:
				var ms mergeState
				ms.newT = decodeTable(d)
				ms.oldT = decodeTable(d)
				ms.markSlot = d.u64()
				lvl = append(lvl, entryState{isMerge: true, merge: ms})
			default:
				if d.err == nil {
					d.err = fmt.Errorf("manifest: unknown entry kind")
				}
			}
		}
		s.levels = append(s.levels, lvl)
	}
	if d.err == nil && len(d.b) > 0 {
		s.rangeDels = decodeRangeDels(d)
	}
	if d.err == nil && len(d.b) > 0 {
		s.vlogNext, s.vlogSegs = decodeVlogState(d)
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// Delta records. A full-state snapshot on every structural event would
// write more superblock traffic than user data (and would show up as
// bogus write amplification), so the manifest logs small deltas — rotate,
// flush-done, merge-start/done, lazy-done, repo-swap — with a fresh full
// snapshot every snapshotEvery records to bound recovery replay.
const (
	recSnapshot   = 0
	recRotate     = 1
	recFlushDone  = 2
	recMergeStart = 3
	recMergeDone  = 4
	recLazyDone   = 5
	recRepoSwap   = 6
	recRangeDrop  = 7
	recVlogSeg    = 8
	recVlogFree   = 9

	snapshotEvery = 64
)

// appendManifestLocked appends one delta record (or a rolling snapshot),
// retrying transient device errors. A persistent failure latches the
// store degraded and is returned: the caller must not queue the release
// of any resource the failed record would have retired — the last
// recoverable manifest state still references it.
func (db *DB) appendManifestLocked(kind uint8, body func(e *encoder)) error {
	db.manifestEdits++
	if kind != recSnapshot && db.manifestEdits >= snapshotEvery {
		// Roll a snapshot instead of the delta when it fits. Under an
		// extreme table backlog a full snapshot can exceed the record
		// cap — then we must keep appending deltas (replay just walks a
		// longer chain) and retry the snapshot later.
		ok, err := db.trySnapshotLocked()
		if err != nil {
			db.degradeLocked("manifest snapshot", err)
			return err
		}
		if ok {
			return nil
		}
		db.manifestEdits = 0 // retry after another snapshotEvery edits
	}
	var e encoder
	e.u8(kind)
	body(&e)
	if err := db.runDeviceOp(func() error { return db.manifest.append(e.buf.Bytes()) }); err != nil {
		db.degradeLocked("manifest append", err)
		return err
	}
	return nil
}

// logRotateLocked records a memtable rotation (new active WAL region).
func (db *DB) logRotateLocked(h *memHandle) error {
	if h.log == nil {
		return nil // nothing recoverable changed
	}
	return db.appendManifestLocked(recRotate, func(e *encoder) {
		e.u32(h.log.Region().Index())
		e.u64(db.seq.Load())
	})
}

// logFlushDoneLocked records a completed one-piece flush: the new L0
// table and the retirement of its WAL region. rangeDels are the range
// tombstones whose durability the retired WAL carried — from here on the
// manifest owns them (trailing section, so pre-range-delete records
// decode unchanged).
func (db *DB) logFlushDoneLocked(ts tableState, walRegion uint32, hadWal bool, rangeDels []rangeTombstone) error {
	return db.appendManifestLocked(recFlushDone, func(e *encoder) {
		if hadWal {
			e.u8(1)
			e.u32(walRegion)
		} else {
			e.u8(0)
		}
		encodeTable(e, ts)
		encodeRangeDels(e, rangeDels)
	})
}

// logRangeDropLocked records that the range tombstone committed at seq has
// been fully applied and is no longer needed for correctness (tombstone
// garbage collection; see maybeCompactRepo).
func (db *DB) logRangeDropLocked(seq uint64) error {
	return db.appendManifestLocked(recRangeDrop, func(e *encoder) {
		e.u64(seq)
	})
}

// logVlogSegment records a freshly created NVM value-log segment before
// any pointer naming it can reach the WAL. It is the vlog.Store's
// OnNewSegment callback: invoked from vlog.Append under commitMu but
// outside both the vlog's own mutex and db.mu (lock order
// commitMu → mu). SSD segments (name != "") are not crash-recoverable
// and are not logged.
func (db *DB) logVlogSegment(id uint32, regionIdx uint32, name string) error {
	if name != "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.appendManifestLocked(recVlogSeg, func(e *encoder) {
		e.u32(id)
		e.u32(regionIdx)
	})
}

// logVlogFreeLocked records that a value-log segment has been fully
// relocated and reclaimed. Callers hold db.mu. Replay order guarantees
// safety: every relocation's WAL pointer record precedes this record, so
// the recovered LSM never holds a live pointer into the freed segment.
func (db *DB) logVlogFreeLocked(id uint32) error {
	return db.appendManifestLocked(recVlogFree, func(e *encoder) {
		e.u32(id)
	})
}

// logMergeStartLocked records the pairing of the two oldest tables of a
// level for zero-copy compaction.
func (db *DB) logMergeStartLocked(level int, newID, oldID uint64) error {
	return db.appendManifestLocked(recMergeStart, func(e *encoder) {
		e.u32(uint32(level))
		e.u64(newID)
		e.u64(oldID)
	})
}

// logMergeDoneLocked records a completed merge and its result table.
func (db *DB) logMergeDoneLocked(level int, newID, oldID uint64, result tableState) error {
	return db.appendManifestLocked(recMergeDone, func(e *encoder) {
		e.u32(uint32(level))
		e.u64(newID)
		e.u64(oldID)
		encodeTable(e, result)
	})
}

// logLazyDoneLocked records a table absorbed into the repository.
func (db *DB) logLazyDoneLocked(level int, tableID uint64) error {
	return db.appendManifestLocked(recLazyDone, func(e *encoder) {
		e.u32(uint32(level))
		e.u64(tableID)
	})
}

// logRepoSwapLocked records a repository garbage compaction.
func (db *DB) logRepoSwapLocked(region uint32, head uint64) error {
	return db.appendManifestLocked(recRepoSwap, func(e *encoder) {
		e.u32(region)
		e.u64(head)
	})
}

// applyDelta folds one delta record into a replayed state. It mirrors the
// engine's own transitions exactly.
func (s *manifestState) applyDelta(kind uint8, d *decoder) error {
	switch kind {
	case recRotate:
		s.walRegions = append(s.walRegions, d.u32())
		if seq := d.u64(); seq > s.lastSeq {
			s.lastSeq = seq
		}
	case recFlushDone:
		hadWal := d.u8() == 1
		var wr uint32
		if hadWal {
			wr = d.u32()
		}
		ts := decodeTable(d)
		var dels []rangeTombstone
		if d.err == nil && len(d.b) > 0 {
			dels = decodeRangeDels(d)
		}
		if d.err != nil {
			return d.err
		}
		for _, t := range dels {
			s.rangeDels = appendRangeDel(s.rangeDels, t)
		}
		if hadWal {
			for i, w := range s.walRegions {
				if w == wr {
					s.walRegions = append(s.walRegions[:i], s.walRegions[i+1:]...)
					break
				}
			}
		}
		if len(s.levels) == 0 {
			return fmt.Errorf("manifest: flush delta before snapshot")
		}
		s.levels[0] = append([]entryState{{table: ts}}, s.levels[0]...)
		if ts.id >= s.nextTableID {
			s.nextTableID = ts.id + 1
		}
		if ts.maxSeq > s.lastSeq {
			s.lastSeq = ts.maxSeq
		}
	case recMergeStart:
		level := int(d.u32())
		newID, oldID := d.u64(), d.u64()
		if d.err != nil {
			return d.err
		}
		if level >= len(s.levels) {
			return fmt.Errorf("manifest: merge delta for level %d", level)
		}
		lv := s.levels[level]
		var newT, oldT *entryState
		rest := lv[:0:0]
		for i := range lv {
			switch {
			case !lv[i].isMerge && lv[i].table.id == newID:
				newT = &lv[i]
			case !lv[i].isMerge && lv[i].table.id == oldID:
				oldT = &lv[i]
			default:
				rest = append(rest, lv[i])
			}
		}
		if newT == nil || oldT == nil {
			return fmt.Errorf("manifest: merge pair %d/%d not found in level %d", newID, oldID, level)
		}
		rest = append(rest, entryState{
			isMerge: true,
			merge: mergeState{
				newT:     newT.table,
				oldT:     oldT.table,
				markSlot: s.markSlots[level],
			},
		})
		s.levels[level] = rest
	case recMergeDone:
		level := int(d.u32())
		newID, oldID := d.u64(), d.u64()
		result := decodeTable(d)
		if d.err != nil {
			return d.err
		}
		if level+1 >= len(s.levels) {
			return fmt.Errorf("manifest: merge-done delta for level %d", level)
		}
		lv := s.levels[level]
		rest := lv[:0:0]
		for i := range lv {
			if lv[i].isMerge && lv[i].merge.newT.id == newID && lv[i].merge.oldT.id == oldID {
				continue
			}
			rest = append(rest, lv[i])
		}
		s.levels[level] = rest
		s.levels[level+1] = append([]entryState{{table: result}}, s.levels[level+1]...)
	case recLazyDone:
		level := int(d.u32())
		id := d.u64()
		if d.err != nil {
			return d.err
		}
		if level >= len(s.levels) {
			return fmt.Errorf("manifest: lazy delta for level %d", level)
		}
		lv := s.levels[level]
		rest := lv[:0:0]
		for i := range lv {
			if !lv[i].isMerge && lv[i].table.id == id {
				continue
			}
			rest = append(rest, lv[i])
		}
		s.levels[level] = rest
	case recRepoSwap:
		s.hasRepo = true
		s.repoRegion = d.u32()
		s.repoHead = d.u64()
	case recRangeDrop:
		seq := d.u64()
		if d.err != nil {
			return d.err
		}
		s.rangeDels = dropRangeDel(s.rangeDels, seq)
	case recVlogSeg:
		id, region := d.u32(), d.u32()
		if d.err != nil {
			return d.err
		}
		// Dedupe: a snapshot rolled between the segment's install and this
		// delta can already carry it.
		dup := false
		for _, g := range s.vlogSegs {
			if g.id == id {
				dup = true
				break
			}
		}
		if !dup {
			s.vlogSegs = append(s.vlogSegs, vlogSegState{id: id, region: region})
		}
		if id >= s.vlogNext {
			s.vlogNext = id + 1
		}
	case recVlogFree:
		id := d.u32()
		if d.err != nil {
			return d.err
		}
		rest := s.vlogSegs[:0:0]
		for _, g := range s.vlogSegs {
			if g.id != id {
				rest = append(rest, g)
			}
		}
		s.vlogSegs = rest
	default:
		return fmt.Errorf("manifest: unknown record kind %d", kind)
	}
	return d.err
}

// replayManifest reads all records from scanFrom, folding deltas into the
// most recent snapshot, and returns the reconstructed state plus the
// scan's torn-tail report (tornAt/torn; see scan).
func (m *manifestLog) replayManifest(scanFrom int64) (*manifestState, int64, bool, error) {
	var state *manifestState
	tornAt, torn, err := m.scan(scanFrom, func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("manifest: empty record")
		}
		kind, body := payload[0], payload[1:]
		if kind == recSnapshot {
			s, err := decodeManifestState(body)
			if err != nil {
				return err
			}
			state = s
			return nil
		}
		if state == nil {
			return fmt.Errorf("manifest: delta record before any snapshot")
		}
		return state.applyDelta(kind, &decoder{b: body})
	})
	if err != nil {
		return nil, 0, false, err
	}
	if state == nil {
		return nil, 0, false, fmt.Errorf("manifest: no intact snapshot record")
	}
	return state, tornAt, torn, nil
}

// writeManifestLocked snapshots the current structure into the
// superblock. It fails if the snapshot cannot be written — a device
// fault, or a snapshot exceeding the record capacity (only possible
// with an absurd table backlog; the delta path handles that case
// instead). Callers hold db.mu.
func (db *DB) writeManifestLocked() error {
	ok, err := db.trySnapshotLocked()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("miodb: manifest snapshot exceeds record capacity")
	}
	return nil
}

// trySnapshotLocked writes a full-state snapshot record if it fits,
// reporting success. SSD-mode table state lives in the lsm tree and is
// not covered by crash recovery (see Recover).
func (db *DB) trySnapshotLocked() (bool, error) {
	s := &manifestState{
		lastSeq:     db.seq.Load(),
		nextTableID: db.tableID.Load(),
	}
	for _, slot := range db.markSlots {
		s.markSlots = append(s.markSlots, uint64(slot))
	}
	v := db.current.Load()
	// WAL regions oldest-first, active log last.
	for i := len(v.imms) - 1; i >= 0; i-- {
		if v.imms[i].log != nil {
			s.walRegions = append(s.walRegions, v.imms[i].log.Region().Index())
		}
	}
	if v.mem.log != nil {
		s.walRegions = append(s.walRegions, v.mem.log.Region().Index())
	}
	if db.repo != nil {
		s.hasRepo = true
		s.repoRegion = db.repo.Region().Index()
		s.repoHead = uint64(db.repo.Head())
	}
	for level, entries := range v.levels {
		lvl := make([]entryState, 0, len(entries))
		for _, e := range entries {
			switch ent := e.(type) {
			case tableEntry:
				lvl = append(lvl, entryState{table: tableToState(ent.t)})
			case mergeEntry:
				lvl = append(lvl, entryState{
					isMerge: true,
					merge: mergeState{
						newT:     tableToState(ent.m.New),
						oldT:     tableToState(ent.m.Old),
						markSlot: uint64(db.markSlots[level]),
					},
				})
			}
		}
		s.levels = append(s.levels, lvl)
	}
	s.rangeDels = v.rangeDels
	if db.vlog != nil {
		next, refs := db.vlog.SnapshotState()
		s.vlogNext = next
		for _, r := range refs {
			s.vlogSegs = append(s.vlogSegs, vlogSegState{id: r.ID, region: r.Region})
		}
	}
	payload := append([]byte{recSnapshot}, s.encode()...)
	if len(payload)+8 > db.manifest.region().ChunkSize() {
		return false, nil
	}
	if err := db.runDeviceOp(func() error { return db.manifest.append(payload) }); err != nil {
		return false, err
	}
	db.manifestEdits = 0
	return true, nil
}

func tableToState(t *pmtable.Table) tableState {
	ts := tableState{
		id:     t.ID,
		head:   uint64(t.List().Head()),
		minSeq: t.MinSeq,
		maxSeq: t.MaxSeq,
	}
	for _, r := range t.Regions() {
		ts.regions = append(ts.regions, r.Index())
	}
	return ts
}
