package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// raceValue renders the self-validating value for key k at generation g:
// it embeds the key, so a Get that returned bytes from a released or
// recycled arena is detected by content, not just by -race.
func raceValue(k string, g int) []byte {
	return []byte(fmt.Sprintf("VAL[%s]gen%06d-%s", k, g, "padpadpadpadpadpadpadpadpadpad"))
}

// checkRaceValue asserts v is a well-formed value for key k (any
// generation — readers race writers, so any committed generation is
// acceptable; a torn or foreign value is not).
func checkRaceValue(t *testing.T, k string, v []byte) {
	t.Helper()
	prefix := []byte(fmt.Sprintf("VAL[%s]gen", k))
	if !bytes.HasPrefix(v, prefix) {
		t.Errorf("Get(%s) returned foreign/corrupt value %q", k, v)
	}
}

// runReadRace hammers one DB with concurrent readers (Get/Scan/
// NewIterator) against writers driving flushes, zero-copy merges, lazy
// compaction, and repository garbage rebuilds. Every value read is
// validated against its key, so a value served from a released arena —
// the failure mode the epoch grace period exists to prevent — fails the
// test even without -race.
func runReadRace(t *testing.T, opts Options) {
	db := mustOpen(t, opts)

	const (
		keyCount = 96
		writers  = 3
		readers  = 4
		scanners = 2
		duration = 400 * time.Millisecond
	)
	key := func(i int) string { return fmt.Sprintf("rr-%04d", i%keyCount) }

	// Seed every key so readers never hit ErrNotFound.
	for i := 0; i < keyCount; i++ {
		if err := db.Put([]byte(key(i)), raceValue(key(i), 0)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+scanners)

	// Writers: overwrite the key space continuously. The small memtable
	// keeps rotations, flushes, per-level merges, lazy compaction, and —
	// once garbage accumulates — the repository rebuild all churning
	// underneath the readers.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := 1; !stop.Load(); g++ {
				k := key(g*7 + w)
				if err := db.Put([]byte(k), raceValue(k, g)); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; !stop.Load(); i++ {
				k := key(i * 13)
				v, err := db.Get([]byte(k))
				if err != nil {
					errCh <- fmt.Errorf("reader %d Get(%s): %w", r, k, err)
					return
				}
				checkRaceValue(t, k, v)
			}
		}(r)
	}

	// Scanners: iterate through merging/mid-flush structure; every pair
	// observed must be self-consistent. Scans hold their version pin for
	// the whole pass, so they exercise long-lived epoch pins against the
	// sweep.
	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for !stop.Load() {
				err := db.Scan([]byte("rr-"), keyCount, func(k, v []byte) bool {
					checkRaceValue(t, string(k), v)
					return true
				})
				if err != nil {
					errCh <- fmt.Errorf("scanner %d: %w", sc, err)
					return
				}
			}
		}(sc)
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesce and audit: the consistency fsck, then the zero-leak region
	// accounting — the sweep must have run every deferred release (arena
	// frees, WAL regions) despite all the reader pins that were in flight.
	db.WaitIdle()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckRegionAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadRaceEpoch is the lock-free read path's race-regression test:
// Get/Scan against flush, zero-copy merges, lazy compaction, and repo
// rebuilds, with every value validated against its key. Run under -race.
func TestReadRaceEpoch(t *testing.T) {
	runReadRace(t, smallOpts())
}

// TestReadRaceMutexAblation runs the identical workload through the
// mutex-refcount ablation (the seed's read path): it must be equally
// correct, just slower.
func TestReadRaceMutexAblation(t *testing.T) {
	opts := smallOpts()
	opts.EpochReads = Bool(false)
	runReadRace(t, opts)
}

// TestGetCloseRace exercises the Close-vs-reader seam: readers hammer
// Get/Scan/NewIterator while Close tears the store down. Every read must
// either succeed with a valid value or fail with ErrClosed — never crash,
// and never observe torn-down state — and Close must wait for the reader
// epochs to drain before returning.
func TestGetCloseRace(t *testing.T) {
	for _, mode := range []struct {
		name  string
		epoch bool
	}{{"epoch", true}, {"mutexread", false}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := smallOpts()
			opts.EpochReads = Bool(mode.epoch)
			db := mustOpen(t, opts)

			const keyCount = 64
			key := func(i int) string { return fmt.Sprintf("cl-%04d", i%keyCount) }
			for i := 0; i < keyCount; i++ {
				if err := db.Put([]byte(key(i)), raceValue(key(i), 0)); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			start := make(chan struct{})
			const readers = 6
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					<-start
					for i := 0; ; i++ {
						k := key(i*3 + r)
						v, err := db.Get([]byte(k))
						if err == ErrClosed {
							return
						}
						if err != nil {
							t.Errorf("reader %d: Get(%s): %v", r, k, err)
							return
						}
						checkRaceValue(t, k, v)
						if i%17 == 0 {
							it := db.NewIterator()
							if it.Err() == ErrClosed {
								it.Close()
								return
							}
							it.SeekToFirst()
							if it.Valid() {
								checkRaceValue(t, string(it.Key()), it.Value())
							}
							it.Close()
						}
					}
				}(r)
			}
			close(start)
			time.Sleep(10 * time.Millisecond)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// After Close returns, the epoch buckets must be fully drained:
			// any straggler reader would still be announced.
			wg.Wait()
			if !db.readersQuiescent() {
				t.Fatal("Close returned with reader epochs still announced")
			}
			if _, err := db.Get([]byte(key(0))); err != ErrClosed {
				t.Fatalf("Get after Close = %v, want ErrClosed", err)
			}
			if it := db.NewIterator(); it.Err() != ErrClosed {
				t.Fatalf("NewIterator after Close Err() = %v, want ErrClosed", it.Err())
			}
		})
	}
}

// TestCloseWaitsForIterator pins a version through an open iterator and
// verifies Close blocks until the iterator is closed — the "leaked
// iterator blocks Close by design" contract.
func TestCloseWaitsForIterator(t *testing.T) {
	db := mustOpen(t, smallOpts())
	for i := 0; i < 32; i++ {
		if err := db.Put([]byte(fmt.Sprintf("it-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	it := db.NewIterator()
	it.SeekToFirst()
	if !it.Valid() {
		t.Fatal("iterator empty")
	}

	closed := make(chan struct{})
	go func() {
		db.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while an iterator still pinned a version")
	case <-time.After(50 * time.Millisecond):
	}
	it.Close()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the last iterator closed")
	}
}
