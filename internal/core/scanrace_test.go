package core

import (
	"fmt"
	"testing"
)

// TestScanDuringCompactionComplete: a scan racing the background
// flush/merge/absorb pipeline must still observe every committed key
// exactly once. This is the regression test for the migration-teleport
// bug: an iterator chasing raw node pointers through a table under
// zero-copy merge could follow a migrated node's rewritten tower into the
// other list and silently skip the rest of the first one — Get (seqlock
// protected) saw the keys, Scan intermittently did not. The safe re-seek
// iterators (pmtable.SafeIterator) close the race; this test replays the
// workload shape that exposed it, many times, with small memtables so
// scans overlap heavy structural churn.
func TestScanDuringCompactionComplete(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		db := mustOpen(t, admissionOpts(nil))
		value := make([]byte, 128)
		want := map[string]bool{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%05d", i)
			if err := db.Put([]byte(k), value); err != nil {
				t.Fatal(err)
			}
			want[k] = true
			if i%7 == 0 {
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				want[k] = false
			}
		}
		// Scan immediately: flushes, zero-copy merges, and lazy absorbs
		// from the load above are still in flight.
		got := scanAll(t, db)
		for k, alive := range want {
			_, inScan := got[k]
			if alive && !inScan {
				_, gerr := db.Get([]byte(k))
				t.Errorf("iter %d: key %s missing from scan (Get err=%v)", iter, k, gerr)
			}
			if !alive && inScan {
				t.Errorf("iter %d: deleted key %s visible in scan", iter, k)
			}
		}
		db.Close()
		if t.Failed() {
			return
		}
	}
}
