package core

import (
	"sync/atomic"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/pmtable"
	"miodb/internal/wal"
)

// levelEntry is one read source inside an elastic-buffer level: either a
// settled PMTable or an in-flight zero-copy merge (which must be read
// through its mark-aware protocol).
type levelEntry interface {
	get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool)
	mayContain(key []byte) bool
	iterators() []iterx.Iterator
	newestSeq() uint64
}

type tableEntry struct{ t *pmtable.Table }

// get uses the merge-hardened probe: a reader whose version snapshot
// predates a zero-copy merge of this table must still observe the node
// currently in flight between the pair — or, once the merge completed,
// be redirected to the result (whose filter covers the migrated nodes).
func (e tableEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.t.GetSafe(key) }
func (e tableEntry) mayContain(key []byte) bool                       { return e.t.MayContainSafe(key) }
func (e tableEntry) iterators() []iterx.Iterator {
	if f := e.t.Forward(); f != nil {
		return tableEntry{f}.iterators()
	}
	if m := e.t.ActiveMerge(); m != nil {
		return mergeEntry{m}.iterators()
	}
	return []iterx.Iterator{e.t.NewIterator()}
}
func (e tableEntry) newestSeq() uint64 { return e.t.MaxSeq }

type mergeEntry struct{ m *pmtable.Merge }

func (e mergeEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.m.Get(key) }
func (e mergeEntry) mayContain(key []byte) bool                       { return e.m.MayContain(key) }
func (e mergeEntry) iterators() []iterx.Iterator {
	// A completed merge scans through its result: the drained pair's
	// shared list may already be migrating under a later merge.
	if r := e.m.Result(); r != nil {
		return tableEntry{r}.iterators()
	}
	its := []iterx.Iterator{
		e.m.New.NewIterator(),
		e.m.Old.NewIterator(),
	}
	// The in-flight node belongs to neither list; expose it so scans
	// taken mid-merge cannot miss it.
	if n, ok := e.m.MarkNode(); ok {
		its = append(its, iterx.NewSingle(n.Key(), n.Value(), n.Seq(), n.Kind()))
	}
	return its
}
func (e mergeEntry) newestSeq() uint64 { return e.m.New.MaxSeq }

// memHandle pairs a memtable with its write-ahead log.
type memHandle struct {
	mt             *memtable.MemTable
	log            *wal.Log
	minSeq, maxSeq uint64
}

// version is an immutable snapshot of the store's readable structure.
// Readers acquire the current version, search it without locks, and
// release it; structural changes install a fresh version. Resources that a
// newer version stopped referencing (flushed memtable arenas, retired WAL
// regions, lazily-copied PMTable arenas) are queued on the version that
// last referenced them and freed once that version and every older one
// have drained — the deferred, arena-granularity reclamation the paper's
// lazy memory freeing calls for, made safe under concurrent readers.
type version struct {
	refs atomic.Int32
	next *version

	mem    *memHandle
	imms   []*memHandle   // newest first
	levels [][]levelEntry // per level, newest first
	repo   *pmtable.Repository

	// releaseFns run when this version and all older versions are dead.
	releaseFns []func()
}

// acquireVersion takes a reference on the current version.
func (db *DB) acquireVersion() *version {
	db.mu.Lock()
	v := db.current
	v.refs.Add(1)
	db.mu.Unlock()
	return v
}

// releaseVersion drops a reference and sweeps freeable old versions.
func (db *DB) releaseVersion(v *version) {
	db.mu.Lock()
	v.refs.Add(-1)
	db.sweepVersionsLocked()
	db.mu.Unlock()
}

// sweepVersionsLocked frees dead versions from the oldest end of the
// chain. Ordering matters: a version's garbage may still be referenced by
// older versions, so the sweep stops at the first live one.
func (db *DB) sweepVersionsLocked() {
	for db.oldest != db.current && db.oldest.refs.Load() == 0 {
		for _, fn := range db.oldest.releaseFns {
			fn()
		}
		db.oldest.releaseFns = nil
		db.oldest = db.oldest.next
	}
}

// editVersion clones the current version, applies edit, and installs the
// clone as current. garbage lists resources that the new version no longer
// references. Must be called with db.mu held.
func (db *DB) editVersionLocked(edit func(v *version), garbage ...func()) {
	cur := db.current
	nv := &version{
		mem:    cur.mem,
		imms:   append([]*memHandle(nil), cur.imms...),
		levels: make([][]levelEntry, len(cur.levels)),
		repo:   cur.repo,
	}
	for i := range cur.levels {
		nv.levels[i] = append([]levelEntry(nil), cur.levels[i]...)
	}
	edit(nv)

	// The outgoing version owns the garbage: it may still be read.
	cur.releaseFns = append(cur.releaseFns, garbage...)

	nv.refs.Store(1) // the DB's own reference
	cur.next = nv
	db.current = nv
	cur.refs.Add(-1) // drop the DB's reference on the old version
	db.sweepVersionsLocked()
	db.cond.Broadcast()
}
