package core

import (
	"sync/atomic"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/pmtable"
	"miodb/internal/wal"
)

// levelEntry is one read source inside an elastic-buffer level: either a
// settled PMTable or an in-flight zero-copy merge (which must be read
// through its mark-aware protocol).
type levelEntry interface {
	get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool)
	mayContain(key []byte) bool
	iterators() []iterx.Iterator
	newestSeq() uint64
}

type tableEntry struct{ t *pmtable.Table }

// get uses the merge-hardened probe: a reader whose version snapshot
// predates a zero-copy merge of this table must still observe the node
// currently in flight between the pair — or, once the merge completed,
// be redirected to the result (whose filter covers the migrated nodes).
func (e tableEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.t.GetSafe(key) }
func (e tableEntry) mayContain(key []byte) bool                       { return e.t.MayContainSafe(key) }
func (e tableEntry) iterators() []iterx.Iterator {
	if f := e.t.Forward(); f != nil {
		return tableEntry{f}.iterators()
	}
	if m := e.t.ActiveMerge(); m != nil {
		return mergeEntry{m}.iterators()
	}
	return []iterx.Iterator{e.t.NewIterator()}
}
func (e tableEntry) newestSeq() uint64 { return e.t.MaxSeq }

type mergeEntry struct{ m *pmtable.Merge }

func (e mergeEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.m.Get(key) }
func (e mergeEntry) mayContain(key []byte) bool                       { return e.m.MayContain(key) }
func (e mergeEntry) iterators() []iterx.Iterator {
	// A completed merge scans through its result: the drained pair's
	// shared list may already be migrating under a later merge.
	if r := e.m.Result(); r != nil {
		return tableEntry{r}.iterators()
	}
	its := []iterx.Iterator{
		e.m.New.NewIterator(),
		e.m.Old.NewIterator(),
	}
	// The in-flight node belongs to neither list; expose it so scans
	// taken mid-merge cannot miss it.
	if n, ok := e.m.MarkNode(); ok {
		its = append(its, iterx.NewSingle(n.Key(), n.Value(), n.Seq(), n.Kind()))
	}
	return its
}
func (e mergeEntry) newestSeq() uint64 { return e.m.New.MaxSeq }

// memHandle pairs a memtable with its write-ahead log.
type memHandle struct {
	mt             *memtable.MemTable
	log            *wal.Log
	minSeq, maxSeq uint64
}

// version is an immutable snapshot of the store's readable structure.
// Readers pin the current version through the epoch machinery (epoch.go),
// search it without locks, and exit; structural changes install a fresh
// version with one atomic pointer store. Resources that a newer version
// stopped referencing (flushed memtable arenas, retired WAL regions,
// lazily-copied PMTable arenas) are queued on the version that last
// referenced them and freed once that version — and every older one —
// has drained past its reader grace period: the deferred,
// arena-granularity reclamation the paper's lazy memory freeing calls
// for, made safe under lock-free concurrent readers.
type version struct {
	next *version

	// retireEpoch is the global epoch at which this version stopped being
	// current (notRetired while installed). A retired version is dead once
	// the epoch has advanced two past it — no reader pin can still reach
	// it (see epoch.go).
	retireEpoch atomic.Uint64

	// refs backs the mutex-refcount ablation (Options.EpochReads=false):
	// the store's own reference plus one per in-flight reader, all
	// manipulated under db.mu. Unused in epoch mode.
	refs atomic.Int32

	mem    *memHandle
	imms   []*memHandle   // newest first
	levels [][]levelEntry // per level, newest first
	repo   *pmtable.Repository

	// releaseFns run when this version and all older versions are dead.
	// Appended only while the version is current (under db.mu), so a
	// retired version's queue is frozen.
	releaseFns []func()
}

// newRootVersion builds the chain's first version (Open/Recover).
func newRootVersion() *version {
	v := &version{}
	v.retireEpoch.Store(notRetired)
	v.refs.Store(1) // the store's own reference (mutex ablation)
	return v
}

// sweepVersionsLocked is the mutex-refcount ablation's sweep: free dead
// versions from the oldest end of the chain, stopping at the first one a
// reader still references. Callers hold db.mu (which serializes every
// refcount transition in that mode).
func (db *DB) sweepVersionsLocked() {
	cur := db.current.Load()
	for db.oldest != cur && db.oldest.refs.Load() == 0 {
		for _, fn := range db.oldest.releaseFns {
			fn()
		}
		db.oldest.releaseFns = nil
		db.oldest = db.oldest.next
		db.st.CountVersionSwept()
	}
}

// queueReleaseLocked appends fn to the current version's release queue:
// it runs once that version and every older one have drained past their
// reader grace period. Callers hold db.mu — the current version's queue
// is the only mutable one (a retired version's queue is frozen), and the
// retire stamp in editVersionLocked is the release point the sweeper
// synchronizes with, so the append is always visible before the run.
func (db *DB) queueReleaseLocked(fn func()) {
	cur := db.current.Load()
	cur.releaseFns = append(cur.releaseFns, fn)
}

// editVersion clones the current version, applies edit, and installs the
// clone as current with a single atomic store — the only write the
// lock-free read path ever observes. garbage lists resources that the
// new version no longer references; they are queued on the outgoing
// version, which may still be pinned by readers. Must be called with
// db.mu held.
func (db *DB) editVersionLocked(edit func(v *version), garbage ...func()) {
	cur := db.current.Load()
	nv := &version{
		mem:    cur.mem,
		imms:   append([]*memHandle(nil), cur.imms...),
		levels: make([][]levelEntry, len(cur.levels)),
		repo:   cur.repo,
	}
	nv.retireEpoch.Store(notRetired)
	for i := range cur.levels {
		nv.levels[i] = append([]levelEntry(nil), cur.levels[i]...)
	}
	edit(nv)

	// The outgoing version owns the garbage: it may still be read.
	cur.releaseFns = append(cur.releaseFns, garbage...)
	cur.next = nv

	if db.epochReads {
		db.current.Store(nv)
		// Retire strictly after the install: a reader that loaded cur
		// pinned it before this stamp, so its entry epoch is ≤ the stamp
		// and the grace period covers it.
		db.retireVersionLocked(cur)
		// Writers sweep synchronously (blocking on sweepMu is fine here —
		// reader-side sweeps are try-lock only) so structural churn can
		// never outrun reclamation even if no reader ever exits.
		db.sweepMu.Lock()
		db.advanceAndSweepLocked()
		db.sweepMu.Unlock()
	} else {
		nv.refs.Store(1) // the store's own reference
		db.current.Store(nv)
		cur.refs.Add(-1) // drop the store's reference on the old version
		db.sweepVersionsLocked()
	}
	db.cond.Broadcast()
}
