package core

import (
	"sync/atomic"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/pmtable"
	"miodb/internal/wal"
)

// levelEntry is one read source inside an elastic-buffer level: either a
// settled PMTable or an in-flight zero-copy merge (which must be read
// through its mark-aware protocol).
type levelEntry interface {
	get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool)
	// getAt is get restricted to versions with sequence ≤ maxSeq (snapshot
	// reads). maxSeq = keys.MaxSeq must behave exactly like get.
	getAt(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool)
	mayContain(key []byte) bool
	iterators() []iterx.Iterator
	newestSeq() uint64
}

type tableEntry struct{ t *pmtable.Table }

// get uses the merge-hardened probe: a reader whose version snapshot
// predates a zero-copy merge of this table must still observe the node
// currently in flight between the pair — or, once the merge completed,
// be redirected to the result (whose filter covers the migrated nodes).
func (e tableEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.t.GetSafe(key) }
func (e tableEntry) getAt(key []byte, maxSeq uint64) ([]byte, uint64, keys.Kind, bool) {
	return e.t.GetBoundedSafe(key, maxSeq)
}
func (e tableEntry) mayContain(key []byte) bool { return e.t.MayContainSafe(key) }

// iterators returns the table's scan source. Always the migration-safe
// re-seek iterator: even a table that is settled when the scan starts can
// enter a zero-copy merge mid-scan, and a raw pointer-chasing iterator
// standing on a node the merge migrates would follow the rewritten tower
// into the other list — silently skipping the rest of this one.
func (e tableEntry) iterators() []iterx.Iterator {
	return []iterx.Iterator{e.t.NewSafeIterator()}
}
func (e tableEntry) newestSeq() uint64 { return e.t.MaxSeq }

type mergeEntry struct{ m *pmtable.Merge }

func (e mergeEntry) get(key []byte) ([]byte, uint64, keys.Kind, bool) { return e.m.Get(key) }
func (e mergeEntry) getAt(key []byte, maxSeq uint64) ([]byte, uint64, keys.Kind, bool) {
	return e.m.GetBounded(key, maxSeq)
}
func (e mergeEntry) mayContain(key []byte) bool { return e.m.MayContain(key) }
func (e mergeEntry) iterators() []iterx.Iterator {
	// The safe iterator reads both lists plus the in-flight mark node
	// under the merge's seqlock, re-seeking each step, and follows the
	// result table once the merge completes mid-scan.
	return []iterx.Iterator{e.m.NewSafeIterator()}
}
func (e mergeEntry) newestSeq() uint64 { return e.m.New.MaxSeq }

// memHandle pairs a memtable with its write-ahead log.
type memHandle struct {
	mt             *memtable.MemTable
	log            *wal.Log
	minSeq, maxSeq uint64

	// bornSeq is db.seq at handle creation, stamped before publication
	// (immutable afterwards, so readable without the commit lock). Every
	// entry committed into this handle has seq > bornSeq — the race-free
	// lower bound tombstone GC needs (see minSeqAlive).
	bornSeq uint64

	// rangeDels are the range tombstones committed while this handle was
	// the active memtable. They never enter the skip list; they ride here
	// so the flush that retires the handle's WAL can carry them into a
	// manifest record first (durability handoff, like any other entry in
	// the WAL). Appended under commitMu; frozen once the handle rotates
	// into the immutable queue.
	rangeDels []rangeTombstone
}

// version is an immutable snapshot of the store's readable structure.
// Readers pin the current version through the epoch machinery (epoch.go),
// search it without locks, and exit; structural changes install a fresh
// version with one atomic pointer store. Resources that a newer version
// stopped referencing (flushed memtable arenas, retired WAL regions,
// lazily-copied PMTable arenas) are queued on the version that last
// referenced them and freed once that version — and every older one —
// has drained past its reader grace period: the deferred,
// arena-granularity reclamation the paper's lazy memory freeing calls
// for, made safe under lock-free concurrent readers.
type version struct {
	next *version

	// retireEpoch is the global epoch at which this version stopped being
	// current (notRetired while installed). A retired version is dead once
	// the epoch has advanced two past it — no reader pin can still reach
	// it (see epoch.go).
	retireEpoch atomic.Uint64

	// refs backs the mutex-refcount ablation (Options.EpochReads=false):
	// the store's own reference plus one per in-flight reader, all
	// manipulated under db.mu. Unused in epoch mode.
	refs atomic.Int32

	mem    *memHandle
	imms   []*memHandle   // newest first
	levels [][]levelEntry // per level, newest first
	repo   *pmtable.Repository

	// rangeDels are the live range tombstones, sorted by seq ascending.
	// The slice is copy-on-write: a registration builds a fresh slice in
	// its version edit, so a pinned version's view is immutable and —
	// because a snapshot's bound covers every tombstone that existed at
	// capture — complete for that snapshot forever.
	rangeDels []rangeTombstone

	// releaseFns run when this version and all older versions are dead.
	// Appended only while the version is current (under db.mu), so a
	// retired version's queue is frozen.
	releaseFns []func()
}

// newRootVersion builds the chain's first version (Open/Recover).
func newRootVersion() *version {
	v := &version{}
	v.retireEpoch.Store(notRetired)
	v.refs.Store(1) // the store's own reference (mutex ablation)
	return v
}

// sweepVersionsLocked is the mutex-refcount ablation's sweep: free dead
// versions from the oldest end of the chain, stopping at the first one a
// reader still references. Callers hold db.mu (which serializes every
// refcount transition in that mode).
func (db *DB) sweepVersionsLocked() {
	cur := db.current.Load()
	for db.oldest != cur && db.oldest.refs.Load() == 0 {
		for _, fn := range db.oldest.releaseFns {
			fn()
		}
		db.oldest.releaseFns = nil
		db.oldest = db.oldest.next
		db.st.CountVersionSwept()
	}
}

// queueReleaseLocked appends fn to the current version's release queue:
// it runs once that version and every older one have drained past their
// reader grace period. Callers hold db.mu — the current version's queue
// is the only mutable one (a retired version's queue is frozen), and the
// retire stamp in editVersionLocked is the release point the sweeper
// synchronizes with, so the append is always visible before the run.
func (db *DB) queueReleaseLocked(fn func()) {
	cur := db.current.Load()
	cur.releaseFns = append(cur.releaseFns, fn)
}

// editVersion clones the current version, applies edit, and installs the
// clone as current with a single atomic store — the only write the
// lock-free read path ever observes. garbage lists resources that the
// new version no longer references; they are queued on the outgoing
// version, which may still be pinned by readers. Must be called with
// db.mu held.
func (db *DB) editVersionLocked(edit func(v *version), garbage ...func()) {
	cur := db.current.Load()
	nv := &version{
		mem:       cur.mem,
		imms:      append([]*memHandle(nil), cur.imms...),
		levels:    make([][]levelEntry, len(cur.levels)),
		repo:      cur.repo,
		rangeDels: cur.rangeDels, // copy-on-write; edits replace the slice
	}
	nv.retireEpoch.Store(notRetired)
	for i := range cur.levels {
		nv.levels[i] = append([]levelEntry(nil), cur.levels[i]...)
	}
	edit(nv)

	// The outgoing version owns the garbage: it may still be read.
	cur.releaseFns = append(cur.releaseFns, garbage...)
	cur.next = nv

	if db.epochReads {
		db.current.Store(nv)
		// Retire strictly after the install: a reader that loaded cur
		// pinned it before this stamp, so its entry epoch is ≤ the stamp
		// and the grace period covers it.
		db.retireVersionLocked(cur)
		// Writers sweep synchronously (blocking on sweepMu is fine here —
		// reader-side sweeps are try-lock only) so structural churn can
		// never outrun reclamation even if no reader ever exits.
		db.sweepMu.Lock()
		db.advanceAndSweepLocked()
		db.sweepMu.Unlock()
	} else {
		nv.refs.Store(1) // the store's own reference
		db.current.Store(nv)
		cur.refs.Add(-1) // drop the store's reference on the old version
		db.sweepVersionsLocked()
	}
	db.cond.Broadcast()
}
