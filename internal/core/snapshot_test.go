package core

import (
	"fmt"
	"testing"
	"time"
)

// TestSnapshotIsolationBasic: writes after capture are invisible through
// every snapshot read path (Get, GetMulti, Scan, Iterator), while the
// live store sees them immediately.
func TestSnapshotIsolationBasic(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Overwrite, delete, and insert after the capture.
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete([]byte("k050")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("later"), []byte("x")); err != nil {
		t.Fatal(err)
	}

	if v, err := snap.Get([]byte("k050")); err != nil || string(v) != "old" {
		t.Fatalf("snap.Get(deleted-later) = %q, %v", v, err)
	}
	if _, err := snap.Get([]byte("later")); err != ErrNotFound {
		t.Fatalf("snap.Get(inserted-later) err = %v", err)
	}
	if v, err := db.Get([]byte("k000")); err != nil || string(v) != "new" {
		t.Fatalf("live Get = %q, %v", v, err)
	}

	values, errs := snap.GetMulti([][]byte{[]byte("k000"), []byte("later"), []byte("k099")})
	if string(values[0]) != "old" || errs[0] != nil || errs[1] != ErrNotFound || string(values[2]) != "old" {
		t.Fatalf("snap.GetMulti = %q %v / %v / %q %v", values[0], errs[0], errs[1], values[2], errs[2])
	}

	// Scan and iterator walk exactly the captured cut: 100 keys, all old.
	n := 0
	err = snap.Scan(nil, 0, func(k, v []byte) bool {
		if string(v) != "old" {
			t.Fatalf("snap scan saw %q=%q", k, v)
		}
		n++
		return true
	})
	if err != nil || n != 100 {
		t.Fatalf("snap scan n=%d err=%v", n, err)
	}
	it := snap.NewIterator()
	it.Seek([]byte("k050"))
	if !it.Valid() || string(it.Key()) != "k050" || string(it.Value()) != "old" {
		t.Fatalf("snap iterator at %q=%q", it.Key(), it.Value())
	}
	it.Close()
}

// TestSnapshotSurvivesFlushAndCompaction: a snapshot keeps answering
// from its cut after the buffered state it pinned has been flushed,
// zero-copy merged down the levels, lazily absorbed into the
// repository, and repo-compacted — the acceptance bar for the epoch
// substrate doing the pinning.
func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	const keys = 200
	for i := 0; i < keys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Heavy churn: many overwrite rounds with full drains between them,
	// forcing flushes, merges, lazy absorbs, and (with enough garbage)
	// repository compactions while the snapshot stays open.
	for round := 0; round < 20; round++ {
		for i := 0; i < keys; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}

	for _, i := range []int{0, 1, 73, 127, keys - 1} {
		k := fmt.Sprintf("k%04d", i)
		v, err := snap.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("old-%d", i) {
			t.Fatalf("snap.Get(%s) after churn = %q, %v", k, v, err)
		}
	}
	// Full cut scan still returns every original value.
	n := 0
	err = snap.Scan(nil, 0, func(k, v []byte) bool {
		n++
		return true
	})
	if err != nil || n != keys {
		t.Fatalf("snap scan after churn n=%d err=%v", n, err)
	}
	// And the live store reads the final round.
	if v, err := db.Get([]byte("k0000")); err != nil || string(v) != "r19-0" {
		t.Fatalf("live Get after churn = %q, %v", v, err)
	}
}

// TestSnapshotClosedReads pins the lifecycle contract: reads on a
// closed snapshot fail with ErrSnapshotClosed, Close is idempotent, and
// an iterator derived before Close stays valid until its own Close.
func TestSnapshotClosedReads(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	it := snap.NewIterator()
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := snap.Get([]byte("k")); err != ErrSnapshotClosed {
		t.Fatalf("Get on closed snapshot err = %v", err)
	}
	if _, errs := snap.GetMulti([][]byte{[]byte("k")}); errs[0] != ErrSnapshotClosed {
		t.Fatalf("GetMulti on closed snapshot err = %v", errs[0])
	}
	if err := snap.Scan(nil, 0, func(k, v []byte) bool { return true }); err != ErrSnapshotClosed {
		t.Fatalf("Scan on closed snapshot err = %v", err)
	}
	// The pre-Close iterator holds its own reference and still works.
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "k" {
		t.Fatalf("derived iterator after snapshot Close: valid=%v key=%q", it.Valid(), it.Key())
	}
	it.Close()
}

// TestSnapshotLeakBlocksClose: an open snapshot holds a reader pin, so
// DB.Close must wait for it — the same leak discipline as iterators.
func TestSnapshotLeakBlocksClose(t *testing.T) {
	db := mustOpen(t, smallOpts())
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case <-done:
		t.Fatal("Close returned with a snapshot still open")
	case <-time.After(100 * time.Millisecond):
	}
	snap.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close still blocked after the snapshot released")
	}
}

// TestSnapshotUnsupportedOnSSD: the on-SSD compactor rewrites tables in
// place with no version pinning, so SSD-mode stores refuse snapshots
// descriptively.
func TestSnapshotUnsupportedOnSSD(t *testing.T) {
	opts := smallOpts()
	opts.SSD = &SSDOptions{}
	db := mustOpen(t, opts)
	defer db.Close()
	if _, err := db.Snapshot(); err != ErrSnapshotUnsupported {
		t.Fatalf("Snapshot on SSD store err = %v", err)
	}
}

// TestSnapshotSurvivesCheckpoint: taking a checkpoint (which quiesces
// and flushes the store) must not disturb an open snapshot's cut.
func TestSnapshotSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, smallOpts())
	defer db.Close()

	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(dir + "/snap.img"); err != nil {
		t.Fatal(err)
	}
	if v, err := snap.Get([]byte("k025")); err != nil || string(v) != "old" {
		t.Fatalf("snap.Get after checkpoint = %q, %v", v, err)
	}
	// The image itself restores to the live (new) state.
	re, err := OpenImage(dir+"/snap.img", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, err := re.Get([]byte("k025")); err != nil || string(v) != "new" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
}
