package core

import (
	"fmt"
	"testing"

	"miodb/internal/kvstore"
)

// TestDeleteRangeReadPaths: a range tombstone takes effect on every
// read path immediately — Get, GetMulti, Scan, Iterator — and a write
// after the tombstone resurrects only itself.
func TestDeleteRangeReadPaths(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteRange([]byte("k020"), []byte("k060")); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Get([]byte("k020")); err != ErrNotFound {
		t.Fatalf("Get(start) err = %v", err)
	}
	if _, err := db.Get([]byte("k059")); err != ErrNotFound {
		t.Fatalf("Get(last covered) err = %v", err)
	}
	if v, err := db.Get([]byte("k060")); err != nil || string(v) != "v60" {
		t.Fatalf("Get(end, exclusive) = %q, %v", v, err)
	}
	if v, err := db.Get([]byte("k019")); err != nil || string(v) != "v19" {
		t.Fatalf("Get(before start) = %q, %v", v, err)
	}

	values, errs := db.GetMulti([][]byte{[]byte("k019"), []byte("k030"), []byte("k060")})
	if errs[0] != nil || errs[1] != ErrNotFound || errs[2] != nil {
		t.Fatalf("GetMulti errs = %v %v %v", errs[0], errs[1], errs[2])
	}
	_ = values

	// Scan skips the covered span without a gap in ordering.
	var seen []string
	if err := db.Scan([]byte("k018"), 4, func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"k018", "k019", "k060", "k061"}
	if len(seen) != len(want) {
		t.Fatalf("scan = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scan = %v, want %v", seen, want)
		}
	}

	// A later write inside the range is visible (its seq is newer than
	// the tombstone's).
	if err := db.Put([]byte("k030"), []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("k030")); err != nil || string(v) != "reborn" {
		t.Fatalf("Get(rewritten) = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("k031")); err != ErrNotFound {
		t.Fatalf("neighbor of rewritten key resurrected: %v", err)
	}
}

// TestDeleteRangeUnboundedAndEmpty: an empty end deletes every key ≥
// start; an inverted or empty range is a no-op.
func TestDeleteRangeUnboundedAndEmpty(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Inverted and empty ranges change nothing.
	if err := db.DeleteRange([]byte("k040"), []byte("k010")); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteRange([]byte("k040"), []byte("k040")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("k040")); err != nil || string(v) != "v" {
		t.Fatalf("Get after empty-range deletes = %q, %v", v, err)
	}
	// Unbounded end: everything from k025 on disappears.
	if err := db.DeleteRange([]byte("k025"), nil); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := db.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("scan after unbounded delete n = %d, want 25", n)
	}
}

// TestDeleteRangeBatchForms: the tombstone rides Batch.DeleteRange and
// the kvstore.BatchOp form, ordered against the batch's other ops.
func TestDeleteRangeBatchForms(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	b := &Batch{}
	b.Put([]byte("k3"), []byte("pre")) // overwritten by the tombstone behind it
	b.DeleteRange([]byte("k2"), []byte("k5"))
	b.Put([]byte("k4"), []byte("post")) // after the tombstone: survives
	if err := db.Write(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k3")); err != ErrNotFound {
		t.Fatalf("k3 err = %v", err)
	}
	if v, err := db.Get([]byte("k4")); err != nil || string(v) != "post" {
		t.Fatalf("k4 = %q, %v", v, err)
	}

	// kvstore op form via WriteBatch (the server's path).
	if err := db.WriteBatch([]kvstore.BatchOp{
		{Key: []byte("k6"), Value: []byte("k9"), RangeDelete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k7")); err != ErrNotFound {
		t.Fatalf("k7 err = %v", err)
	}
	if v, err := db.Get([]byte("k9")); err != nil || string(v) != "v" {
		t.Fatalf("k9 = %q, %v", v, err)
	}
}

// TestDeleteRangeAcrossCompaction: covered entries that already live in
// flushed PMTables (across levels and in the repository) stay dead
// through flushes, merges, and absorbs.
func TestDeleteRangeAcrossCompaction(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	const keys = 300
	for i := 0; i < keys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Push everything deep into the pipeline before the tombstone lands.
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteRange([]byte("k0100"), []byte("k0200")); err != nil {
		t.Fatal(err)
	}
	// More churn afterwards so compactions run with the tombstone live.
	for round := 0; round < 10; round++ {
		for i := 200; i < keys; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}

	for _, i := range []int{100, 150, 199} {
		if _, err := db.Get([]byte(fmt.Sprintf("k%04d", i))); err != ErrNotFound {
			t.Fatalf("covered k%04d err = %v", i, err)
		}
	}
	for _, i := range []int{0, 99, 200, 299} {
		if _, err := db.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("uncovered k%04d err = %v", i, err)
		}
	}
	n := 0
	if err := db.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != keys-100 {
		t.Fatalf("scan n = %d, want %d", n, keys-100)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRangeCrashRecovery: the tombstone is durable the moment
// DeleteRange returns — after a crash, covered keys stay dead, covered
// keys re-written after the tombstone come back, and the boundary is
// exact.
func TestDeleteRangeCrashRecovery(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteRange([]byte("k030"), []byte("k070")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k040"), []byte("reborn")); err != nil {
		t.Fatal(err)
	}

	re, err := Recover(db.CrashForTest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get([]byte("k030")); err != ErrNotFound {
		t.Fatalf("covered key after recovery err = %v", err)
	}
	if _, err := re.Get([]byte("k069")); err != ErrNotFound {
		t.Fatalf("covered key after recovery err = %v", err)
	}
	if v, err := re.Get([]byte("k040")); err != nil || string(v) != "reborn" {
		t.Fatalf("re-written key after recovery = %q, %v", v, err)
	}
	if v, err := re.Get([]byte("k070")); err != nil || string(v) != "v" {
		t.Fatalf("boundary key after recovery = %q, %v", v, err)
	}
	if err := re.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Second hop: crash again after the manifest snapshot from the first
	// recovery — the tombstone must ride the manifest image this time,
	// not just the WAL.
	re2, err := Recover(re.CrashForTest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if _, err := re2.Get([]byte("k050")); err != ErrNotFound {
		t.Fatalf("covered key after second recovery err = %v", err)
	}
	if v, err := re2.Get([]byte("k040")); err != nil || string(v) != "reborn" {
		t.Fatalf("re-written key after second recovery = %q, %v", v, err)
	}
}

// TestDeleteRangeCheckpointRoundTrip: the tombstone survives a
// checkpoint image and its restore (which flushes first — the covered
// entries may be deep in the levels by then).
func TestDeleteRangeCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteRange([]byte("k050"), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(dir + "/rd.img"); err != nil {
		t.Fatal(err)
	}
	re, err := OpenImage(dir+"/rd.img", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get([]byte("k075")); err != ErrNotFound {
		t.Fatalf("covered key after restore err = %v", err)
	}
	if v, err := re.Get([]byte("k049")); err != nil || string(v) != "v" {
		t.Fatalf("uncovered key after restore = %q, %v", v, err)
	}
	n := 0
	if err := re.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("restored scan n = %d, want 50", n)
	}
}

// TestDeleteRangeSnapshotInteraction: a snapshot taken before the
// tombstone keeps reading covered keys; one taken after never sees
// them; and the tombstone cannot be GC'd while the older snapshot needs
// the covered entries.
func TestDeleteRangeSnapshotInteraction(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 60; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()
	if err := db.DeleteRange([]byte("k000"), []byte("k030")); err != nil {
		t.Fatal(err)
	}
	after, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()

	if v, err := before.Get([]byte("k010")); err != nil || string(v) != "v" {
		t.Fatalf("pre-tombstone snapshot Get = %q, %v", v, err)
	}
	if _, err := after.Get([]byte("k010")); err != ErrNotFound {
		t.Fatalf("post-tombstone snapshot Get err = %v", err)
	}
	// Churn with both snapshots open; the old cut must keep its keys.
	for round := 0; round < 5; round++ {
		for i := 30; i < 60; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := before.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("pre-tombstone snapshot scan n = %d, want 60", n)
	}
	n = 0
	if err := after.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("post-tombstone snapshot scan n = %d, want 30", n)
	}
}

// TestRangeTombstoneGC: once every covered entry has been physically
// dropped (absorbed away) and a repository rebuild has applied the
// tombstone, the tombstone itself is garbage-collected from the side
// table — it must not accumulate forever.
func TestRangeTombstoneGC(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("dead%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteRange([]byte("dead"), []byte("deae")); err != nil {
		t.Fatal(err)
	}
	if got := len(db.current.Load().rangeDels); got != 1 {
		t.Fatalf("registered tombstones = %d, want 1", got)
	}

	// Update-heavy churn on uncovered keys: generates repository garbage
	// until a rebuild fires, which applies and then GCs the tombstone.
	collected := false
	for round := 0; round < 300 && !collected; round++ {
		for i := 0; i < 100; i++ {
			if err := db.Put([]byte(fmt.Sprintf("live%04d", i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.FlushAll(); err != nil {
			t.Fatal(err)
		}
		collected = len(db.current.Load().rangeDels) == 0
	}
	if !collected {
		t.Fatal("range tombstone never garbage-collected")
	}
	// Correctness after GC: covered keys stay dead (physically gone).
	if _, err := db.Get([]byte("dead0042")); err != ErrNotFound {
		t.Fatalf("covered key after GC err = %v", err)
	}
	if v, err := db.Get([]byte("live0042")); err != nil || len(v) == 0 {
		t.Fatalf("live key after GC = %q, %v", v, err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// And the dropped tombstone stays dropped across a crash.
	re, err := Recover(db.CrashForTest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.current.Load().rangeDels); got != 0 {
		t.Fatalf("tombstones after recovery = %d, want 0", got)
	}
	if _, err := re.Get([]byte("dead0042")); err != ErrNotFound {
		t.Fatalf("covered key after GC+recovery err = %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
