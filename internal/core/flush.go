package core

import (
	"time"

	"miodb/internal/pmtable"
)

// flushLoop is the background flusher: it drains the immutable-memtable
// queue oldest-first, one-piece-flushing each into a new L0 PMTable.
//
// Timeline per memtable (§4.2): bulk arena copy to NVM + background
// pointer swizzling + bloom build, all inside pmtable.Flush. The memtable
// keeps serving reads until the version without it drains; only then are
// its DRAM arena and WAL region released.
func (db *DB) flushLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for len(db.current.imms) == 0 && !db.closed {
			db.cond.Wait()
		}
		if db.abandon || (db.closed && len(db.current.imms) == 0) {
			db.mu.Unlock()
			return
		}
		imms := db.current.imms
		h := imms[len(imms)-1] // oldest
		db.mu.Unlock()

		db.flushOne(h)
	}
}

func (db *DB) flushOne(h *memHandle) {
	start := time.Now()
	var table *pmtable.Table
	if *db.opts.OnePieceFlush {
		table = pmtable.Flush(db.nvm, h.mt, db.tableID.Add(1), h.minSeq, h.maxSeq, db.fp)
	} else {
		// Ablation: copy entries one by one into a fresh NVM skip list —
		// each insert pays an NVM-resident position search plus a copy,
		// the cost profile Fig 12 attributes to NoveLSM/MatrixKV.
		t, err := pmtable.Build(db.nvm, db.opts.ChunkSize, h.mt.NewIterator(), db.tableID.Add(1), db.fp)
		if err != nil {
			panic(err) // arena allocation cannot fail in simulation
		}
		t.MinSeq, t.MaxSeq = h.minSeq, h.maxSeq
		table = t
	}
	db.st.AddFlush(time.Since(start), h.mt.ApproximateBytes())

	db.mu.Lock()
	mt, log := h.mt, h.log
	db.editVersionLocked(func(v *version) {
		// Retire the flushed memtable and publish the L0 table (L0 is
		// newest-first).
		v.imms = v.imms[:len(v.imms)-1]
		v.levels[0] = append([]levelEntry{tableEntry{table}}, v.levels[0]...)
	}, func() {
		mt.Release()
		if log != nil {
			log.Release()
		}
	})
	var walRegion uint32
	if log != nil {
		walRegion = log.Region().Index()
	}
	db.logFlushDoneLocked(tableToState(table), walRegion, log != nil)
	db.mu.Unlock()
}
