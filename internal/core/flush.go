package core

import (
	"fmt"
	"time"

	"miodb/internal/pmtable"
)

// flushLoop is the background flusher: it drains the immutable-memtable
// queue oldest-first, one-piece-flushing each into a new L0 PMTable.
//
// Timeline per memtable (§4.2): bulk arena copy to NVM + background
// pointer swizzling + bloom build, all inside pmtable.Flush. The memtable
// keeps serving reads until the version without it drains; only then are
// its DRAM arena and WAL region released.
//
// A persistent device or manifest failure latches the store degraded and
// stops the loop; the flushed-but-unreleased state is intentionally
// leaked so the last recoverable manifest image stays self-consistent.
func (db *DB) flushLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for len(db.current.Load().imms) == 0 && !db.closed && db.bgErr == nil {
			db.cond.Wait()
		}
		if db.abandon || db.bgErr != nil || (db.closed && len(db.current.Load().imms) == 0) {
			db.mu.Unlock()
			return
		}
		imms := db.current.Load().imms
		h := imms[len(imms)-1] // oldest
		db.mu.Unlock()

		if err := db.flushOne(h); err != nil {
			db.degrade("flush", err)
			return
		}
	}
}

func (db *DB) flushOne(h *memHandle) error {
	start := time.Now()

	// Gate the whole one-piece transfer on the device up front: the bulk
	// copy and pointer swizzling inside pmtable.Flush are raw memory
	// operations with no failure seam of their own.
	if err := db.gateNVMWrite(int(h.mt.ApproximateBytes())); err != nil {
		return fmt.Errorf("device: %w", err)
	}

	var table *pmtable.Table
	if *db.opts.OnePieceFlush {
		table = pmtable.Flush(db.nvm, h.mt, db.tableID.Add(1), h.minSeq, h.maxSeq, db.fp)
	} else {
		// Ablation: copy entries one by one into a fresh NVM skip list —
		// each insert pays an NVM-resident position search plus a copy,
		// the cost profile Fig 12 attributes to NoveLSM/MatrixKV.
		t, err := pmtable.Build(db.nvm, db.opts.ChunkSize, h.mt.NewIterator(), db.tableID.Add(1), db.fp)
		if err != nil {
			return fmt.Errorf("build: %w", err)
		}
		t.MinSeq, t.MaxSeq = h.minSeq, h.maxSeq
		table = t
	}
	db.st.AddFlush(time.Since(start), h.mt.ApproximateBytes())

	db.mu.Lock()
	mt, log := h.mt, h.log
	db.editVersionLocked(func(v *version) {
		// Retire the flushed memtable and publish the L0 table (L0 is
		// newest-first).
		v.imms = v.imms[:len(v.imms)-1]
		v.levels[0] = append([]levelEntry{tableEntry{table}}, v.levels[0]...)
	})
	var walRegion uint32
	if log != nil {
		walRegion = log.Region().Index()
	}
	if err := db.logFlushDoneLocked(tableToState(table), walRegion, log != nil, h.rangeDels); err != nil {
		// The manifest still references the WAL region (and recovery
		// would replay it): leak memtable and log rather than release
		// state the recoverable image depends on.
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	// Only now — with the retirement durably logged — may the memtable
	// arena and WAL region be queued for release once every reader
	// version referencing them drains. Appending to the current version's
	// queue is safe here: releaseFns mutate only under db.mu while the
	// version is current, and retired versions' queues are frozen.
	db.queueReleaseLocked(func() {
		mt.Release()
		if log != nil {
			log.Release()
		}
	})
	db.mu.Unlock()
	return nil
}
