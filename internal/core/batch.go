package core

import (
	"bytes"
	"fmt"
	"time"

	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/stats"
)

// Batch collects writes for atomic application: either every operation in
// the batch becomes visible (and durable in the WAL) or — across a crash —
// none or a prefix-free subset never happens, because all records land in
// the log before any is acknowledged. Batches also amortize the write
// path's locking over many operations.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key, value []byte
	kind       keys.Kind
}

// Put queues a key-value write.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		kind:  keys.KindSet,
	})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		key:  append([]byte(nil), key...),
		kind: keys.KindDelete,
	})
}

// DeleteRange queues a range tombstone deleting every key k with
// start ≤ k < end (empty end = unbounded; see DB.DeleteRange). An empty
// range queues nothing.
func (b *Batch) DeleteRange(start, end []byte) {
	if len(end) > 0 && bytes.Compare(start, end) >= 0 {
		return // empty range
	}
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), start...),
		value: append([]byte(nil), end...),
		kind:  keys.KindRangeDelete,
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Each calls fn for every queued operation in order. The key and value
// slices alias the batch's internal copies and must not be mutated or
// retained past the callback. For a range delete, key/value carry the
// [start, end) bounds. The shard router uses it to split a batch by
// routing hash without re-copying the payload.
func (b *Batch) Each(fn func(key, value []byte, del, rangeDel bool)) {
	for _, op := range b.ops {
		fn(op.key, op.value, op.kind == keys.KindDelete, op.kind == keys.KindRangeDelete)
	}
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Write applies a batch through the group-commit queue: all operations
// receive consecutive sequence numbers, are framed into the leader's
// single coalesced WAL append, and are inserted into the memtable
// together. A reader either sees none of the batch or a consistent
// prefix while it is being inserted, and all of it afterwards. The batch
// may share its commit group (and its WAL append) with other concurrent
// writers.
func (db *DB) Write(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		// Range deletes are exempt: an empty start means "from the first
		// key" (the end rides in value and may be empty = unbounded).
		if len(op.key) == 0 && op.kind != keys.KindRangeDelete {
			return fmt.Errorf("miodb: empty key in batch")
		}
	}
	start := time.Now()
	err := db.commit(b.ops)
	if err == nil {
		// One commit sample per batch (on top of commit's per-record
		// put/delete samples): the latency an MPUT caller experienced.
		db.st.RecordOp(stats.OpCommit, time.Since(start))
	}
	return err
}

// WriteBatch applies a batch given as kvstore operations — the adapter
// the network server's MPUT handler and the harness feed. The slices are
// consumed synchronously; callers may reuse them after return.
func (db *DB) WriteBatch(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	bops := make([]batchOp, 0, len(ops))
	for _, op := range ops {
		switch {
		case op.RangeDelete:
			if len(op.Value) > 0 && bytes.Compare(op.Key, op.Value) >= 0 {
				continue // empty range — matches DeleteRange's no-op
			}
			bops = append(bops, batchOp{key: op.Key, value: op.Value, kind: keys.KindRangeDelete})
		case op.Delete:
			if len(op.Key) == 0 {
				return fmt.Errorf("miodb: empty key in batch")
			}
			bops = append(bops, batchOp{key: op.Key, kind: keys.KindDelete})
		default:
			if len(op.Key) == 0 {
				return fmt.Errorf("miodb: empty key in batch")
			}
			bops = append(bops, batchOp{key: op.Key, value: op.Value, kind: keys.KindSet})
		}
	}
	if len(bops) == 0 {
		return nil
	}
	start := time.Now()
	err := db.commit(bops)
	if err == nil {
		db.st.RecordOp(stats.OpCommit, time.Since(start))
	}
	return err
}
