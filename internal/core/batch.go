package core

import (
	"fmt"

	"miodb/internal/keys"
)

// Batch collects writes for atomic application: either every operation in
// the batch becomes visible (and durable in the WAL) or — across a crash —
// none or a prefix-free subset never happens, because all records land in
// the log before any is acknowledged. Batches also amortize the write
// path's locking over many operations.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key, value []byte
	kind       keys.Kind
}

// Put queues a key-value write.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		kind:  keys.KindSet,
	})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		key:  append([]byte(nil), key...),
		kind: keys.KindDelete,
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Write applies a batch: all operations receive consecutive sequence
// numbers under one write-lock acquisition, are logged back to back, and
// are inserted into the memtable together. A reader either sees none of
// the batch or a consistent prefix while it is being inserted, and all of
// it afterwards.
func (db *DB) Write(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if len(op.key) == 0 {
			return fmt.Errorf("miodb: empty key in batch")
		}
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.isClosed() {
		return ErrClosed
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}

	db.mu.Lock()
	mem := db.current.mem
	db.mu.Unlock()

	// Log every record first: a crash during insertion replays the whole
	// batch from the WAL.
	var userBytes int64
	firstSeq := db.seq.Load() + 1
	for i, op := range b.ops {
		seq := firstSeq + uint64(i)
		if mem.log != nil {
			if err := mem.log.Append(op.key, op.value, seq, op.kind); err != nil {
				return err
			}
		}
		userBytes += int64(len(op.key) + len(op.value))
	}
	for i, op := range b.ops {
		seq := firstSeq + uint64(i)
		if err := mem.mt.Add(op.key, op.value, seq, op.kind); err != nil {
			return err
		}
		if op.kind == keys.KindDelete {
			db.st.CountDelete()
		} else {
			db.st.CountPut()
		}
	}
	db.seq.Store(firstSeq + uint64(len(b.ops)) - 1)
	if mem.minSeq == 0 {
		mem.minSeq = firstSeq
	}
	mem.maxSeq = firstSeq + uint64(len(b.ops)) - 1
	db.st.AddUserBytes(userBytes)
	return nil
}
