package core

import (
	"fmt"
	"time"

	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/stats"
)

// Batch collects writes for atomic application: either every operation in
// the batch becomes visible (and durable in the WAL) or — across a crash —
// none or a prefix-free subset never happens, because all records land in
// the log before any is acknowledged. Batches also amortize the write
// path's locking over many operations.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key, value []byte
	kind       keys.Kind
}

// Put queues a key-value write.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		kind:  keys.KindSet,
	})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		key:  append([]byte(nil), key...),
		kind: keys.KindDelete,
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Each calls fn for every queued operation in order. The key and value
// slices alias the batch's internal copies and must not be mutated or
// retained past the callback. The shard router uses it to split a batch
// by routing hash without re-copying the payload.
func (b *Batch) Each(fn func(key, value []byte, del bool)) {
	for _, op := range b.ops {
		fn(op.key, op.value, op.kind == keys.KindDelete)
	}
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Write applies a batch through the group-commit queue: all operations
// receive consecutive sequence numbers, are framed into the leader's
// single coalesced WAL append, and are inserted into the memtable
// together. A reader either sees none of the batch or a consistent
// prefix while it is being inserted, and all of it afterwards. The batch
// may share its commit group (and its WAL append) with other concurrent
// writers.
func (db *DB) Write(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if len(op.key) == 0 {
			return fmt.Errorf("miodb: empty key in batch")
		}
	}
	start := time.Now()
	err := db.commit(b.ops)
	if err == nil {
		// One commit sample per batch (on top of commit's per-record
		// put/delete samples): the latency an MPUT caller experienced.
		db.st.RecordOp(stats.OpCommit, time.Since(start))
	}
	return err
}

// WriteBatch applies a batch given as kvstore operations — the adapter
// the network server's MPUT handler and the harness feed. The slices are
// consumed synchronously; callers may reuse them after return.
func (db *DB) WriteBatch(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	bops := make([]batchOp, len(ops))
	for i, op := range ops {
		if len(op.Key) == 0 {
			return fmt.Errorf("miodb: empty key in batch")
		}
		if op.Delete {
			bops[i] = batchOp{key: op.Key, kind: keys.KindDelete}
		} else {
			bops[i] = batchOp{key: op.Key, value: op.Value, kind: keys.KindSet}
		}
	}
	start := time.Now()
	err := db.commit(bops)
	if err == nil {
		db.st.RecordOp(stats.OpCommit, time.Since(start))
	}
	return err
}
