package core

import (
	"fmt"
	"testing"
)

func TestBatchWriteAndVisibility(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	b.Delete([]byte("k050"))
	if b.Len() != 101 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, err := db.Get([]byte(k))
		if i == 50 {
			if err != ErrNotFound {
				t.Fatalf("deleted key in batch visible: %v", err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
	// Sequences continue correctly for later writes.
	if err := db.Put([]byte("after"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("after")); err != nil || string(v) != "x" {
		t.Fatal("post-batch write broken")
	}
}

func TestBatchEmptyAndInvalid(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	if err := db.Write(nil); err != nil {
		t.Errorf("nil batch: %v", err)
	}
	var empty Batch
	if err := db.Write(&empty); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	var bad Batch
	bad.Put(nil, []byte("v"))
	if err := db.Write(&bad); err == nil {
		t.Error("empty key in batch accepted")
	}
}

func TestBatchReset(t *testing.T) {
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
}

func TestBatchSurvivesCrash(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 1 << 20 // keep everything in the WAL
	db := mustOpen(t, opts)

	var b Batch
	for i := 0; i < 200; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, err := re.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after crash Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestBatchOverwriteOrdering(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	var b Batch
	b.Put([]byte("k"), []byte("first"))
	b.Put([]byte("k"), []byte("second"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("final"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "final" {
		t.Fatalf("Get = %q, %v; batch ops must apply in order", v, err)
	}
}
