package core

import (
	"fmt"
	"io"
	"math/rand"

	"miodb/internal/nvm"
)

// TortureConfig drives RunTorture, the randomized crash-recovery
// harness. The zero value of every field selects a sensible default.
type TortureConfig struct {
	// Seed makes the whole run deterministic: the same seed replays the
	// same workload, the same fault plans, and the same crash points.
	Seed int64
	// Cycles is the number of crash/recover rounds (default 50).
	Cycles int
	// Ops is the target number of updates per cycle; an injected crash
	// usually cuts a cycle short (default 400).
	Ops int
	// Opts overrides the store's structural options. The zero value uses
	// a torture-tuned configuration (tiny memtables, 4 levels) so every
	// cycle pushes data through flushes, zero-copy merges, and lazy
	// copies before it crashes.
	Opts *Options
	// ValueLog tortures key-value separation: the store runs with a
	// low separation threshold (unless Opts supplies its own ValueLog
	// configuration), the workload pads values to straddle it, value-log
	// GC runs both mid-workload (racing the armed crash plans) and
	// immediately after every recovery, and the per-cycle verification
	// sweep re-reads every key through whatever relocations GC performed
	// — a pointer resolving into a reclaimed segment fails the run.
	ValueLog bool
	// Log, when non-nil, receives one progress line per cycle.
	Log io.Writer
}

// TortureReport summarizes a finished torture run.
type TortureReport struct {
	Cycles int
	// OpsAcked counts updates whose Put/Delete returned nil — the
	// updates recovery must never lose.
	OpsAcked int64
	// OpsUncertain counts updates cut off by an injected fault: the ack
	// never arrived, so recovery may legitimately surface either the old
	// or the new value.
	OpsUncertain int64
	// Resurrected counts uncertain updates that recovery proved durable
	// (the WAL record beat the crash).
	Resurrected int64
	// RangeDeletes counts acknowledged DeleteRange ops mixed into the
	// workload; every key they covered must stay dead across recovery.
	RangeDeletes int64
	// KeysChecked counts post-recovery point lookups verified against
	// the model.
	KeysChecked int64
	// CleanCrashes are cycles crashed with no fault injection (background
	// work dropped mid-flight); ByteCrashes and OpCrashes are cycles cut
	// by a byte-budget or op-count device crash trigger (torn tails on).
	CleanCrashes, ByteCrashes, OpCrashes int
	// DoubleCrashes counts recoveries that were themselves interrupted by
	// an injected fault and had to run again from the same image.
	DoubleCrashes int
	// Degraded counts cycles where the store latched read-only before the
	// simulated power failure (the expected outcome of a persistent
	// injected fault).
	Degraded int
	// Value-log activity (ValueLog mode only), summed across cycles from
	// each store lifetime's counters just before its crash: values that
	// went through the log, live entries GC re-committed, and segments
	// reclaimed.
	VlogAppends, VlogRelocations, VlogReclaimed int64
}

func (r *TortureReport) String() string {
	s := fmt.Sprintf(
		"torture: %d cycles, %d acked / %d uncertain ops (%d resurrected), "+
			"%d lookups verified, crashes clean/byte/op %d/%d/%d, %d double, %d degraded",
		r.Cycles, r.OpsAcked, r.OpsUncertain, r.Resurrected, r.KeysChecked,
		r.CleanCrashes, r.ByteCrashes, r.OpCrashes, r.DoubleCrashes, r.Degraded)
	if r.VlogAppends > 0 {
		s += fmt.Sprintf(", vlog %d appends / %d relocated / %d segs reclaimed",
			r.VlogAppends, r.VlogRelocations, r.VlogReclaimed)
	}
	return s
}

// tortureOpts is the default structural configuration: tiny memtables so
// a few hundred updates traverse the full flush/merge/lazy-copy pipeline
// inside one cycle.
func tortureOpts() Options {
	return Options{
		MemTableSize:   8 << 10,
		ChunkSize:      32 << 10,
		Levels:         4,
		FilterCapacity: 1 << 12,
	}
}

// pendingOp is the at-most-one update per cycle whose ack was cut off by
// an injected fault. Recovery may surface either its value or the
// previous state; the verifier accepts both and folds the observed
// outcome back into the model. For a range delete, key holds the start
// and end the exclusive bound; a range tombstone is a single WAL record,
// so across a crash it is atomic — either every covered key is gone or
// none is.
type pendingOp struct {
	valid    bool
	key      string
	val      string
	del      bool
	rangeDel bool
	end      string
}

// covers reports whether a pending range delete spans key k.
func (p pendingOp) covers(k string) bool {
	return p.valid && p.rangeDel && k >= p.key && k < p.end
}

// RunTorture executes a randomized crash-torture run and verifies, after
// every recovery, that:
//
//   - every acknowledged update is present (no acked write lost);
//   - every unacknowledged update resolved to all-or-nothing;
//   - deleted and range-deleted keys stay deleted (no resurrection);
//   - the sequence counter never regressed below the newest acked update;
//   - the store's structural invariants hold (CheckConsistency);
//   - every NVM/DRAM region is reachable from the recovered state
//     (CheckRegionAccounting — no leaks across crash/recover cycles).
//
// Crash points are randomized across three modes (clean power failure,
// byte-budget device crash with torn tails, op-count device crash), and a
// quarter of recoveries are themselves interrupted by a second injected
// crash and retried from the same image — exercising the recovery path's
// own crash consistency.
//
// With cfg.ValueLog set the same invariants additionally cover key-value
// separation: values straddle the threshold, GC runs against armed crash
// plans and right after recovery, and every post-recovery lookup goes
// through pointer resolution — so "no pointer ever resolves into a
// reclaimed or torn segment" is checked by the same sweep, and
// CheckRegionAccounting's leak audit extends to value-log segments.
func RunTorture(cfg TortureConfig) (*TortureReport, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 50
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	opts := tortureOpts()
	if cfg.Opts != nil {
		opts = *cfg.Opts
	}
	if cfg.ValueLog && opts.ValueLog == nil {
		// Low threshold so the padded workload splits between inline and
		// logged values; small segments so GC has many candidates.
		opts.ValueLog = &ValueLogOptions{Threshold: 128, SegmentSize: 8 << 10}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &TortureReport{}

	db, err := Open(opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		if db != nil {
			db.Close()
		}
	}()

	const keyspace = 512
	model := make(map[string]string) // acked live values
	ever := make(map[string]bool)    // every key ever written
	var pending pendingOp
	var seqFloor uint64 // seq of the newest acked update

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		_, dev := db.Devices()

		// Arm this cycle's crash mode.
		switch m := rng.Intn(10); {
		case m < 4:
			budget := 1 + rng.Int63n(int64(cfg.Ops)*300)
			dev.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).CrashAfterBytes(budget).TornWrites())
			rep.ByteCrashes++
		case m < 6:
			n := 1 + rng.Intn(cfg.Ops*2)
			dev.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).CrashAfterWrites(n).TornWrites())
			rep.OpCrashes++
		default:
			dev.SetFaultPlan(nil)
			rep.CleanCrashes++
		}

		// Write phase: sequential updates until the budget runs out or
		// the injected crash cuts the ack path.
		pending = pendingOp{}
		for op := 0; op < cfg.Ops; op++ {
			// Rarely, replace the point op with a range delete over a small
			// random span of the key space.
			if rng.Intn(40) == 0 {
				a := rng.Intn(keyspace)
				start := fmt.Sprintf("k%04d", a)
				end := fmt.Sprintf("k%04d", a+1+rng.Intn(24))
				if err := db.DeleteRange([]byte(start), []byte(end)); err != nil {
					if dev.Faults() == nil {
						return nil, fmt.Errorf("cycle %d op %d: range delete failed with no fault armed: %w", cycle, op, err)
					}
					pending = pendingOp{valid: true, key: start, end: end, rangeDel: true}
					rep.OpsUncertain++
					break
				}
				for k := range model {
					if k >= start && k < end {
						delete(model, k)
					}
				}
				rep.OpsAcked++
				rep.RangeDeletes++
				seqFloor = db.LastSeq()
				continue
			}
			k := fmt.Sprintf("k%04d", rng.Intn(keyspace))
			del := rng.Intn(10) == 0
			var v string
			var err error
			if del {
				err = db.Delete([]byte(k))
			} else {
				v = fmt.Sprintf("v-%s-c%d-o%d-%0*d", k, cycle, op, rng.Intn(90), 0)
				if cfg.ValueLog {
					// Pad to straddle the separation threshold: roughly half
					// the values route through the value log, half stay
					// inline, and the boundary sizes hit both sides of the
					// threshold comparison.
					v = fmt.Sprintf("%s%0*d", v, 1+rng.Intn(400), 0)
				}
				err = db.Put([]byte(k), []byte(v))
			}
			if err != nil {
				if dev.Faults() == nil {
					return nil, fmt.Errorf("cycle %d op %d: write failed with no fault armed: %w", cycle, op, err)
				}
				pending = pendingOp{valid: true, key: k, val: v, del: del}
				rep.OpsUncertain++
				break
			}
			ever[k] = true
			if del {
				delete(model, k)
			} else {
				model[k] = v
			}
			rep.OpsAcked++
			seqFloor = db.LastSeq()

			// Occasionally force a full GC pass mid-workload, racing the
			// cycle's armed crash plan: relocations go through the same
			// faulted device as client writes, so they may fail (or latch
			// the store degraded) — but never with no fault armed.
			if cfg.ValueLog && rng.Intn(60) == 0 {
				if _, gcErr := db.RunValueLogGC(); gcErr != nil && dev.Faults() == nil && db.Err() == nil {
					return nil, fmt.Errorf("cycle %d op %d: vlog GC failed with no fault armed: %w", cycle, op, gcErr)
				}
			}

			// Occasional live read-back: before any crash, acked state
			// must read back exactly.
			if rng.Intn(24) == 0 {
				probe := fmt.Sprintf("k%04d", rng.Intn(keyspace))
				if err := verifyKey(db, probe, model, pendingOp{}); err != nil {
					return nil, fmt.Errorf("cycle %d live probe: %w", cycle, err)
				}
			}
		}
		if db.Err() != nil {
			rep.Degraded++
		}

		// This store lifetime's value-log activity, summed before its
		// counters die with the crash.
		if cfg.ValueLog {
			c := db.ValueLogCounters()
			rep.VlogAppends += c.Appends
			rep.VlogRelocations += c.GCRelocations
			rep.VlogReclaimed += c.GCSegmentsReclaimed
		}

		// Power failure, then recovery — sometimes interrupted by a
		// second injected crash and retried from the same image.
		img := db.CrashForTest()
		db = nil
		injectRecover := rng.Intn(4) == 0
		for attempt := 0; ; attempt++ {
			if attempt == 0 && injectRecover {
				img.NVM.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).
					CrashAfterBytes(1 + rng.Int63n(16<<10)).TornWrites())
			} else {
				img.NVM.SetFaultPlan(nil)
			}
			db, err = Recover(img, opts)
			if err == nil {
				break
			}
			if img.NVM.Faults() == nil {
				return nil, fmt.Errorf("cycle %d: recover (attempt %d): %w", cycle, attempt, err)
			}
			rep.DoubleCrashes++
		}
		img.NVM.SetFaultPlan(nil)

		// A fault plan armed before Recover may survive recovery with
		// budget left and fire on post-recovery background work. If it
		// latched the store, crash once more and recover clean.
		db.WaitIdle()
		if db.Err() != nil {
			img = db.CrashForTest()
			img.NVM.SetFaultPlan(nil)
			db, err = Recover(img, opts)
			if err != nil {
				return nil, fmt.Errorf("cycle %d: clean re-recover: %w", cycle, err)
			}
			rep.DoubleCrashes++
			db.WaitIdle()
		}

		// GC immediately after recovery: reclamation must be safe against
		// the just-replayed state, and the verification sweep below then
		// re-reads every key through whatever relocations it performed.
		if cfg.ValueLog {
			if _, gcErr := db.RunValueLogGC(); gcErr != nil && db.Err() == nil {
				return nil, fmt.Errorf("cycle %d: post-recovery vlog GC: %w", cycle, gcErr)
			}
		}

		// Verify: sequence floor, every key's value, structure, regions.
		if got := db.LastSeq(); got < seqFloor {
			return nil, fmt.Errorf("cycle %d: seq regressed: recovered %d < acked floor %d", cycle, got, seqFloor)
		}
		for k := range ever {
			if err := verifyKey(db, k, model, pending); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", cycle, err)
			}
			rep.KeysChecked++
		}
		// Fold the pending op's observed outcome into the model.
		if pending.valid && pending.rangeDel {
			// A range tombstone is one WAL record, so it applied atomically
			// or not at all: probing any one covered model key decides for
			// the whole span.
			for k := range model {
				if !pending.covers(k) {
					continue
				}
				if _, err := db.Get([]byte(k)); err == ErrNotFound {
					for k2 := range model {
						if pending.covers(k2) {
							delete(model, k2)
						}
					}
					rep.Resurrected++ // the tombstone beat the crash
				}
				break
			}
			pending = pendingOp{}
		} else if pending.valid {
			got, err := db.Get([]byte(pending.key))
			switch {
			case pending.del && err == ErrNotFound:
				delete(model, pending.key)
				rep.Resurrected++ // the delete beat the crash
			case !pending.del && err == nil && string(got) == pending.val:
				model[pending.key] = pending.val
				ever[pending.key] = true
				rep.Resurrected++
			}
			pending = pendingOp{}
		}
		if err := db.CheckConsistency(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		if err := db.CheckRegionAccounting(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", cycle, err)
		}

		rep.Cycles++
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "torture cycle %3d: %d keys live, %d acked ops, seq %d\n",
				cycle, len(model), rep.OpsAcked, db.LastSeq())
		}
	}
	if cfg.ValueLog {
		c := db.ValueLogCounters()
		rep.VlogAppends += c.Appends
		rep.VlogRelocations += c.GCRelocations
		rep.VlogReclaimed += c.GCSegmentsReclaimed
	}
	err = db.Close()
	db = nil
	if err != nil {
		return nil, fmt.Errorf("final close: %w", err)
	}
	return rep, nil
}

// verifyKey checks one key against the model, honoring the at-most-one
// pending (unacknowledged) op whose outcome is legitimately either-or.
func verifyKey(db *DB, k string, model map[string]string, pending pendingOp) error {
	got, err := db.Get([]byte(k))
	if err != nil && err != ErrNotFound {
		return fmt.Errorf("get %q: %w", k, err)
	}
	want, inModel := model[k]

	if pending.covers(k) {
		// Inside an unacked range delete: accept the prior state or
		// not-found. (Atomicity across the span is enforced by the fold-in
		// probe, which resolves the whole range from one key.)
		if err == ErrNotFound || (inModel && err == nil && string(got) == want) {
			return nil
		}
		return fmt.Errorf("key %q inside unacked range delete [%q,%q): got %q, %v (want %q or not-found)",
			k, pending.key, pending.end, got, err, want)
	}

	if pending.valid && !pending.rangeDel && pending.key == k {
		// Unacked op on this key: accept old state or new state.
		if pending.del {
			if err == ErrNotFound || (inModel && err == nil && string(got) == want) {
				return nil
			}
			return fmt.Errorf("key %q after unacked delete: got %q, %v (want %q or not-found)", k, got, err, want)
		}
		if err == nil && string(got) == pending.val {
			return nil // new value won
		}
		if inModel && err == nil && string(got) == want {
			return nil // old value retained
		}
		if !inModel && err == ErrNotFound {
			return nil // never existed, write fully lost
		}
		return fmt.Errorf("key %q after unacked put: got %q, %v (want %q, %q, or prior state)",
			k, got, err, pending.val, want)
	}

	if inModel {
		if err != nil {
			return fmt.Errorf("acked key %q lost: %v (want %q)", k, err, want)
		}
		if string(got) != want {
			return fmt.Errorf("acked key %q: got %q, want %q", k, got, want)
		}
		return nil
	}
	if err != ErrNotFound {
		return fmt.Errorf("deleted key %q resurrected: got %q", k, got)
	}
	return nil
}
