package core

import (
	"fmt"
	"testing"
)

// TestEpochSweepDrainsChain verifies the core reclamation property: with
// no reader pinned, every structural edit's synchronous sweep keeps the
// version chain at length 1, and the retired versions are accounted as
// swept.
func TestEpochSweepDrainsChain(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	for i := 0; i < 20; i++ {
		db.mu.Lock()
		db.editVersionLocked(func(*version) {})
		db.mu.Unlock()
	}
	live, pending, epoch := db.versionChainGauge()
	if live != 1 {
		t.Fatalf("live versions = %d, want 1 (quiescent sweep should drain)", live)
	}
	if pending != 0 {
		t.Fatalf("pending releases = %d, want 0", pending)
	}
	if epoch < firstEpoch {
		t.Fatalf("epoch = %d, below firstEpoch", epoch)
	}
	if st := db.Stats(); st.VersionsSwept < 20 {
		t.Fatalf("VersionsSwept = %d, want >= 20", st.VersionsSwept)
	}
}

// TestEpochPinBlocksSweep verifies the grace period: a version pinned by
// a reader (an open iterator) must survive edits, and its deferred
// releases must not run until the pin exits.
func TestEpochPinBlocksSweep(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	if err := db.Put([]byte("pin-key"), []byte("pin-val")); err != nil {
		t.Fatal(err)
	}

	it := db.NewIterator() // pins the current version
	released := false
	db.mu.Lock()
	db.queueReleaseLocked(func() { released = true })
	// Retire the pinned version and churn several more edits: the sweep
	// must stop at the pinned snapshot every time.
	for i := 0; i < 5; i++ {
		db.editVersionLocked(func(*version) {})
	}
	db.mu.Unlock()

	if released {
		t.Fatal("releaseFn ran while a reader still pinned the version")
	}
	live, pending, _ := db.versionChainGauge()
	if live < 2 {
		t.Fatalf("live versions = %d, want >= 2 while pinned", live)
	}
	if pending < 1 {
		t.Fatalf("pending releases = %d, want >= 1 while pinned", pending)
	}

	it.Close() // exit the pin; the next sweep may reclaim everything
	db.mu.Lock()
	db.editVersionLocked(func(*version) {})
	db.mu.Unlock()
	if !released {
		t.Fatal("releaseFn did not run after the pin exited")
	}
	if live, _, _ := db.versionChainGauge(); live != 1 {
		t.Fatalf("live versions = %d after pin exit, want 1", live)
	}
}

// TestEpochAdvanceBlockedByOldBucket pins a reader and verifies the
// epoch can advance at most once (past the reader's entry epoch it may
// not go): advancing e→e+1 needs bucket (e-1)%3 empty, and the reader
// occupies its entry bucket until it exits.
func TestEpochAdvanceBlockedByOldBucket(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	pin := db.acquireVersion()
	e0 := db.epoch.Load()
	// One advance may succeed (the reader entered at e0, bucket (e0-1)%3
	// may be empty); the second must fail while the pin occupies e0%3.
	db.tryAdvanceEpoch()
	if db.tryAdvanceEpoch() {
		t.Fatalf("epoch advanced twice past a pinned reader (entry epoch %d, now %d)", e0, db.epoch.Load())
	}
	if got := db.epoch.Load(); got > e0+1 {
		t.Fatalf("epoch = %d, want <= %d while reader pinned at %d", got, e0+1, e0)
	}
	db.releaseVersion(pin)
	if !db.tryAdvanceEpoch() {
		t.Fatal("epoch failed to advance after the reader exited")
	}
}

// TestVersionChainGaugeUnderPins cross-checks the Stats() plumbing: the
// gauge must report the chain the pins actually hold.
func TestVersionChainGaugeUnderPins(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 8; i++ {
		if err := db.Put([]byte(fmt.Sprintf("g-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.LiveVersions < 1 {
		t.Fatalf("LiveVersions = %d, want >= 1", st.LiveVersions)
	}
	if st.ReadEpoch < firstEpoch {
		t.Fatalf("ReadEpoch = %d, want >= %d", st.ReadEpoch, firstEpoch)
	}
}

// TestBloomCountersMeasureReads verifies the per-level read counters:
// hits for present keys, skips for absent ones, and internal consistency
// (skips+fps never exceed probes), in both read-path modes.
func TestBloomCountersMeasureReads(t *testing.T) {
	for _, mode := range []struct {
		name  string
		epoch bool
	}{{"epoch", true}, {"mutexread", false}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := smallOpts()
			opts.EpochReads = Bool(mode.epoch)
			db := mustOpen(t, opts)
			defer db.Close()

			const n = 600
			for i := 0; i < n; i++ {
				if err := db.Put([]byte(fmt.Sprintf("bl-%05d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			db.WaitIdle()
			for i := 0; i < n; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("bl-%05d", i))); err != nil {
					t.Fatalf("Get(bl-%05d): %v", i, err)
				}
			}
			for i := 0; i < n; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("zz-%05d", i))); err != ErrNotFound {
					t.Fatalf("Get(zz-%05d) = %v, want ErrNotFound", i, err)
				}
			}
			st := db.Stats()
			if st.BloomProbes == 0 {
				t.Fatal("no bloom probes recorded despite buffered tables")
			}
			if st.BloomSkips == 0 {
				t.Fatal("no bloom skips recorded despite absent-key reads")
			}
			if st.BloomSkips+st.BloomFalsePositives > st.BloomProbes {
				t.Fatalf("skips %d + fps %d > probes %d",
					st.BloomSkips, st.BloomFalsePositives, st.BloomProbes)
			}
			var hits int64
			for _, bl := range st.BloomLevels {
				hits += bl.Hits
			}
			if hits == 0 {
				t.Fatal("no level hits recorded despite present-key reads")
			}
			if st.BloomFalsePositiveRate < 0 || st.BloomFalsePositiveRate > 1 {
				t.Fatalf("FP rate = %v out of range", st.BloomFalsePositiveRate)
			}
		})
	}
}

// TestRegionAccountingAfterReads ensures the epoch sweep leaks nothing:
// after a churny read/write workload quiesces, every region is reachable
// from the final version.
func TestRegionAccountingAfterReads(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("ra-%04d", i%500))
		if err := db.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if _, err := db.Get(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.WaitIdle()
	if err := db.CheckRegionAccounting(); err != nil {
		t.Fatal(err)
	}
}
