package core

import (
	"bytes"

	"miodb/internal/keys"
)

// Range deletion (DESIGN.md §13). A range tombstone logically deletes
// every key k with start ≤ k < end (end empty = unbounded) written at a
// sequence number below the tombstone's own. It commits through the
// normal write pipeline — a keys.KindRangeDelete WAL record (key = start,
// value = end) with its own sequence number — but never enters a skip
// list: the engine keeps the live tombstones in a small per-version side
// table (version.rangeDels), which every read path consults by pure
// sequence comparison:
//
//   - point reads: the first (newest-wins) hit is discarded if a
//     tombstone with a higher seq covers it — older hits have lower seqs
//     still, so the key is simply gone;
//   - scans/iterators: an iterx.Filtered layer beneath the visibility
//     filter drops covered entries;
//   - snapshots: a snapshot's pinned version carries exactly the
//     tombstones that existed at capture, all at seqs ≤ its bound, so a
//     snapshot sees through later range deletes for free.
//
// Physical reclamation is lazy: zero-copy merges and lazy-copy absorbs
// drop covered entries when no registered snapshot could still need them,
// and the repository compaction (a fresh object no reader references)
// applies every tombstone unconditionally. A tombstone itself is dropped
// from the side table — and from the manifest, via a recRangeDrop record
// — once the repository rebuild has applied it and every remaining entry
// in the store is newer than it.
type rangeTombstone struct {
	start []byte // inclusive
	end   []byte // exclusive; empty = unbounded
	seq   uint64
}

// covers reports whether the tombstone deletes (key, seq).
func (t rangeTombstone) covers(key []byte, seq uint64) bool {
	return seq < t.seq &&
		bytes.Compare(key, t.start) >= 0 &&
		(len(t.end) == 0 || bytes.Compare(key, t.end) < 0)
}

// coveredAt reports whether any tombstone in dels (sorted by seq
// ascending) with tombstone seq ≤ bound deletes (key, seq). Live reads
// pass bound = keys.MaxSeq; reclamation passes the snapshot horizon so a
// tombstone no registered snapshot has seen yet cannot trigger drops that
// a later-created snapshot would… never need — new snapshots always bound
// at or above every committed tombstone, so the horizon only matters for
// physical drops, not visibility.
func coveredAt(dels []rangeTombstone, key []byte, seq, bound uint64) bool {
	for i := len(dels) - 1; i >= 0; i-- {
		t := dels[i]
		if t.seq <= seq {
			return false // sorted ascending: no earlier tombstone is newer
		}
		if t.seq <= bound && t.covers(key, seq) {
			return true
		}
	}
	return false
}

// covered is coveredAt for live reads: any live tombstone counts.
func covered(dels []rangeTombstone, key []byte, seq uint64) bool {
	if len(dels) == 0 {
		return false // the hot-path short circuit
	}
	for i := len(dels) - 1; i >= 0; i-- {
		t := dels[i]
		if t.seq <= seq {
			return false
		}
		if t.covers(key, seq) {
			return true
		}
	}
	return false
}

// deadFn adapts a tombstone set to the key/seq predicate iterx.Filtered
// and the compaction hooks consume. A nil return stands for "no
// tombstones" and lets callers skip the filter layer entirely.
func deadFn(dels []rangeTombstone) func(key []byte, seq uint64) bool {
	if len(dels) == 0 {
		return nil
	}
	return func(key []byte, seq uint64) bool { return covered(dels, key, seq) }
}

// appendRangeDel returns dels plus t in a fresh slice (copy-on-write; the
// input may be shared with pinned versions). Registration happens in
// commit order, so the seq-ascending invariant is maintained by
// construction; duplicate seqs (recovery replays) are ignored.
func appendRangeDel(dels []rangeTombstone, t rangeTombstone) []rangeTombstone {
	for _, d := range dels {
		if d.seq == t.seq {
			return dels // already registered (recovery replays can repeat)
		}
	}
	out := make([]rangeTombstone, len(dels), len(dels)+1)
	copy(out, dels)
	return append(out, t)
}

// dropRangeDel returns dels without the tombstone at seq (copy-on-write).
func dropRangeDel(dels []rangeTombstone, seq uint64) []rangeTombstone {
	out := make([]rangeTombstone, 0, len(dels))
	for _, d := range dels {
		if d.seq != seq {
			out = append(out, d)
		}
	}
	return out
}

// minSeqAlive returns a lower bound on the sequence number of any entry
// still physically present outside the repository: memtables contribute
// their birth stamp (every entry in a handle outdates it by at least one;
// bornSeq is immutable after publication, so the read is race-free against
// the commit path), level tables their persisted MinSeq (an in-flight
// merge's result spans down to its Old side). The bound is conservative —
// an empty memtable still contributes — which only delays tombstone GC,
// never unblocks it early.
func minSeqAlive(v *version) uint64 {
	min := keys.MaxSeq
	consider := func(s uint64) {
		if s < min {
			min = s
		}
	}
	consider(v.mem.bornSeq + 1)
	for _, h := range v.imms {
		consider(h.bornSeq + 1)
	}
	for _, lvl := range v.levels {
		for _, e := range lvl {
			switch ent := e.(type) {
			case tableEntry:
				consider(ent.t.MinSeq)
			case mergeEntry:
				consider(ent.m.Old.MinSeq)
			}
		}
	}
	return min
}

// gcRangeTombstonesLocked drops every range tombstone that can no longer
// matter: the repository rebuild has applied it (seq ≤ repoAppliedSeq) and
// every entry still alive anywhere in the store is newer than it — so no
// read, from any present or future snapshot, could need it again. Each
// drop is logged (recRangeDrop) before the in-memory side table shrinks,
// keeping the manifest a superset of what correctness needs. Callers hold
// db.mu. Never reached in SSD mode (no repository, no rebuild).
func (db *DB) gcRangeTombstonesLocked() error {
	v := db.current.Load()
	if len(v.rangeDels) == 0 || db.repoAppliedSeq == 0 {
		return nil
	}
	minAlive := minSeqAlive(v)
	for _, t := range v.rangeDels {
		if t.seq > db.repoAppliedSeq || minAlive <= t.seq {
			continue
		}
		if err := db.logRangeDropLocked(t.seq); err != nil {
			return err
		}
		seq := t.seq
		db.editVersionLocked(func(nv *version) {
			nv.rangeDels = dropRangeDel(nv.rangeDels, seq)
		})
	}
	return nil
}
