package core

import (
	"miodb/internal/keys"
	"miodb/internal/vlog"
)

// Value-log garbage collection (DESIGN.md §14).
//
// A sealed segment whose advisory dead ratio crosses the configured
// threshold is reclaimed in three steps:
//
//  1. Pre-scan: walk the segment under a reader pin and collect entries
//     that are still live — the LSM's newest version of their key is a
//     pointer naming exactly this address and no range tombstone covers
//     it.
//  2. Relocate: for each collected entry, under commitMu, recheck
//     liveness (commits are serialized by commitMu, so the recheck
//     cannot be raced) and re-commit the value through the normal write
//     pipeline: value bytes appended to the active segment, then a WAL
//     pointer record at a fresh sequence number, then the memtable
//     insert. Live readers see the same value throughout; the old
//     address becomes dead.
//  3. Free: once no entry in the segment is live, log a manifest free
//     record (after a crash the segment stays gone — every surviving
//     pointer record for its keys is shadowed by the relocation's newer
//     one) and queue the in-memory free on the version chain. The free
//     runs only when the current version and every older one have
//     drained: any snapshot whose bound predates a relocation pinned an
//     older version, so it keeps resolving the old address against
//     intact segment data until it closes. That is the epoch protection
//     — a pointer can never resolve into a reclaimed segment.
//
// New pointers into a sealed segment cannot appear (appends and
// relocations only target the active segment), so the pre-scan's live
// set can only shrink before step 2's recheck.

// kickValueLogGC nudges the GC loop (non-blocking). Compaction drops and
// segment seals call it.
func (db *DB) kickValueLogGC() {
	if db.vlog == nil {
		return
	}
	select {
	case db.vlogKick <- struct{}{}:
	default:
	}
}

// stopValueLogGC latches the GC stop channel closed (idempotent across
// Close and CrashForTest).
func (db *DB) stopValueLogGC() {
	if db.vlog == nil {
		return
	}
	db.stopVlog.Do(func() { close(db.vlogStop) })
}

// vlogGCLoop runs in the background and reclaims eligible segments
// whenever compaction activity kicks it.
func (db *DB) vlogGCLoop() {
	defer db.wg.Done()
	for {
		select {
		case <-db.vlogStop:
			return
		case <-db.vlogKick:
		}
		// Errors are sticky elsewhere (degraded mode) or transient to this
		// round; either way the loop keeps serving later kicks.
		_, _ = db.RunValueLogGC()
	}
}

// RunValueLogGC reclaims value-log segments until none qualifies: every
// sealed segment whose dead-space ratio is at or above the configured
// GCDeadRatio has its live values relocated through the write path and
// its memory queued for epoch-deferred release. It returns the number of
// segments reclaimed. Tests and the torture harness call it directly for
// deterministic GC placement; the background loop calls it on compaction
// kicks. Safe to call concurrently with reads, writes, and snapshots.
func (db *DB) RunValueLogGC() (int, error) {
	if db.vlog == nil {
		return 0, nil
	}
	freed := 0
	for {
		select {
		case <-db.vlogStop:
			return freed, nil
		default:
		}
		id, ok := db.vlog.PickGC()
		if !ok {
			return freed, nil
		}
		if err := db.gcSegment(id); err != nil {
			return freed, err
		}
		freed++
	}
}

// gcSegment relocates the live entries of one segment and frees it.
func (db *DB) gcSegment(id uint32) error {
	// Pre-scan under a reader pin: collect copies of the still-live
	// entries. Slices yielded by Scan alias log storage, and relocation
	// appends could (for the active segment) never touch them — but the
	// entries outlive the pin, so copy.
	var entries []vlog.Entry
	pin := db.acquireVersion()
	err := db.vlog.Scan(id, func(e vlog.Entry) bool {
		if db.vlogEntryLive(pin.v, e) {
			entries = append(entries, vlog.Entry{
				Key:   append([]byte(nil), e.Key...),
				Value: append([]byte(nil), e.Value...),
				Seq:   e.Seq,
				Addr:  e.Addr,
			})
		}
		return true
	})
	db.releaseVersion(pin)
	if err != nil {
		return err
	}

	for _, e := range entries {
		select {
		case <-db.vlogStop:
			return nil
		default:
		}
		db.commitMu.Lock()
		rerr := db.relocateLocked(e)
		db.commitMu.Unlock()
		if rerr != nil {
			// Closed, degraded, or a device fault: leave the segment in
			// place — a half-relocated segment is fully consistent (the
			// moved entries are dead, the rest still referenced).
			return rerr
		}
	}

	// Every entry is now dead. Claim the segment — the free stays queued on
	// the version chain for a while, and PickGC must not re-offer it (nor
	// may a concurrent GC runner free it twice).
	if !db.vlog.Condemn(id) {
		return nil
	}
	// Make the free durable, then defer the in-memory reclamation onto the
	// version chain (see file comment).
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.abandon || db.bgErr != nil {
		return nil
	}
	if err := db.logVlogFreeLocked(id); err != nil {
		db.degradeLocked("vlog free", err)
		return err
	}
	segID := id
	db.queueReleaseLocked(func() { db.vlog.Free(segID) })
	return nil
}

// vlogEntryLive reports whether the LSM structure, as seen through v,
// still references the log entry e: the newest version of e.Key must be
// a pointer naming exactly e.Addr and not be covered by a range
// tombstone.
func (db *DB) vlogEntryLive(v *version, e vlog.Entry) bool {
	value, seq, kind, ok := db.rawNewest(v, e.Key)
	if !ok || kind != keys.KindValuePtr {
		return false
	}
	a, ok := vlog.DecodeAddr(value)
	if !ok || a != e.Addr {
		return false
	}
	return !covered(v.rangeDels, e.Key, seq)
}

// rawNewest is getFrom's probe order without resolution or tombstone
// filtering: the newest raw entry for key reachable through v.
func (db *DB) rawNewest(v *version, key []byte) ([]byte, uint64, keys.Kind, bool) {
	if value, seq, kind, ok := v.mem.mt.Get(key); ok {
		return value, seq, kind, true
	}
	for _, imm := range v.imms {
		if value, seq, kind, ok := imm.mt.Get(key); ok {
			return value, seq, kind, true
		}
	}
	for _, level := range v.levels {
		for _, e := range level {
			if !e.mayContain(key) {
				continue
			}
			if value, seq, kind, ok := e.get(key); ok {
				return value, seq, kind, true
			}
		}
	}
	if v.repo != nil {
		if value, seq, kind, ok := v.repo.Get(key); ok {
			return value, seq, kind, true
		}
	}
	if db.ssd != nil {
		if value, seq, kind, ok := db.ssd.Get(key); ok {
			return value, seq, kind, true
		}
	}
	return nil, 0, 0, false
}

// relocateLocked re-commits one live log entry under a fresh sequence
// number: value bytes into the active segment, WAL pointer record,
// memtable insert — the same durability order as a client write. Callers
// hold commitMu. Relocations charge the device meters (they are real
// write amplification) but not the user-byte or op counters.
func (db *DB) relocateLocked(e vlog.Entry) error {
	if err := db.writeGate(); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}
	v := db.current.Load()
	// Recheck under commitMu: a client commit may have superseded or
	// deleted the key since the pre-scan. Once live here, nothing can
	// supersede it before our own insert — commits hold commitMu.
	if !db.vlogEntryLive(v, e) {
		return nil
	}
	mem := v.mem
	seq := db.seq.Load() + 1
	addr, err := db.vlog.Append(e.Key, e.Value, seq)
	if err != nil {
		db.seq.Store(seq) // the seq is stamped in the log: burn it
		return err
	}
	ptr := addr.Encode(nil)
	if mem.log != nil {
		if err := mem.log.Append(e.Key, ptr, seq, keys.KindValuePtr); err != nil {
			db.seq.Store(seq)
			if mem.log.Poisoned() {
				db.degrade("wal append", err)
			}
			return err
		}
	}
	if err := mem.mt.Add(e.Key, ptr, seq, keys.KindValuePtr); err != nil {
		db.seq.Store(seq)
		return err
	}
	db.seq.Store(seq)
	if mem.minSeq == 0 {
		mem.minSeq = seq
	}
	mem.maxSeq = seq
	db.vlog.MarkDead(e.Addr)
	db.vlog.AddRelocation(int64(len(e.Value)))
	return nil
}

// onEntryDrop is the compaction drop hook: a merge, absorb, or rebuild
// physically dropped a superseded/covered entry. Pointer entries feed
// the advisory dead-byte accounting that steers GC candidate selection.
func (db *DB) onEntryDrop(value []byte, kind keys.Kind) {
	if kind != keys.KindValuePtr || db.vlog == nil {
		return
	}
	if a, ok := vlog.DecodeAddr(value); ok {
		db.vlog.MarkDead(a)
	}
}

// ValueLogEnabled reports whether key-value separation is active — the
// kvstore.ValueLogger capability probe.
func (db *DB) ValueLogEnabled() bool { return db.vlog != nil }

// ValueLogCounters returns the value log's accounting (zero when
// separation is off).
func (db *DB) ValueLogCounters() vlog.Counters {
	if db.vlog == nil {
		return vlog.Counters{}
	}
	return db.vlog.Counters()
}
