// Epoch-based reclamation for version snapshots — the lock-free read path.
//
// Before this layer existed, every Get/Scan funneled through db.mu twice
// (acquireVersion and releaseVersion), so concurrent readers serialized
// against writers, the flusher, and every per-level compaction thread.
// The group-commit pipeline (PR 1) showed the write side scales once the
// global lock stops being the bottleneck; this file does the same for
// reads.
//
// The scheme is a three-bucket variant of Fraser-style epoch-based
// reclamation, specialized to the store's version chain:
//
//   - The current version is published through an atomic pointer
//     (db.current); installing a new version is a single atomic store.
//   - Readers enter a striped epoch slot: a cache-line-padded per-slot
//     counter array, one slot chosen per acquire from a cheap per-core
//     random source so concurrent readers do not share a contended
//     cacheline. A reader announces the global epoch it observed by
//     incrementing its slot's bucket for that epoch (mod 3), re-validates
//     the epoch, loads the current version, and is pinned: nothing it can
//     reach through the snapshot will be released until it exits.
//   - editVersionLocked (still under db.mu) retires the outgoing version
//     by stamping it with the current epoch and leaving it on the chain —
//     the chain itself is the grace-period list, oldest first.
//   - The global epoch E may advance from e to e+1 only when no reader
//     remains announced in epoch e-1. Hence active readers always span at
//     most epochs {E-1, E}, three buckets suffice, and a version retired
//     at epoch r is unreachable once E ≥ r+2: every reader that could
//     have pinned it entered at some epoch ≤ r and must have exited
//     before E could reach r+2.
//   - The sweep walks the chain from the oldest end and runs each dead
//     version's releaseFns before advancing — exactly the oldest-first
//     ordering the deferred arena/WAL reclamation (lazy memory freeing,
//     §4.4) has always required. A version's garbage may still be
//     referenced through older snapshots, so the sweep stops at the first
//     version whose grace period has not elapsed.
//
// Why the epoch protocol is safe (the two races that matter):
//
// Pin vs retire: a reader validates E == e, then loads db.current. If the
// load returns v, the store that retires v (db.current.Store(nv)) has not
// yet executed, so v's retire stamp r is taken after the reader's
// validation; E is monotone, so r ≥ e. Freeing v requires E ≥ r+2 ≥ e+2,
// and advancing E to e+2 requires bucket e%3 to drain — which the reader
// still occupies. (All accesses are Go atomics, i.e. sequentially
// consistent, so "after" in real time implies visibility.)
//
// Stale announcements: a reader that read E == e, was descheduled, and
// increments bucket e%3 after the epoch moved on fails its re-validation
// and decrements again. The transient count can only delay an epoch
// advance (the check is conservative), never permit one: a bucket gains a
// validated occupant only while the global epoch equals that bucket's
// epoch.
//
// The mutex-refcount baseline (Options.EpochReads = false) keeps the
// seed's behavior — acquire/release under db.mu with per-version
// refcounts — as a measurable ablation arm (see the readscale experiment).
package core

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

const (
	// epochSlotCount stripes reader announcements. A modest power of two
	// comfortably above typical core counts keeps the birthday-collision
	// rate low without making the advance check's slot scan expensive.
	epochSlotCount = 64

	// notRetired marks a version still installed as current.
	notRetired = ^uint64(0)

	// firstEpoch leaves headroom below so the r+2 grace arithmetic never
	// wraps.
	firstEpoch = 2
)

// epochSlot is one stripe of reader announcements: counts[e%3] holds the
// number of readers currently pinned that entered at epoch e. The padding
// keeps each slot on its own cache line so concurrent readers hashed to
// different slots never bounce a line between cores.
type epochSlot struct {
	counts [3]atomic.Int64
	_      [128 - 3*8]byte
}

// initEpochs sets up the reader-reclamation machinery (Open and Recover).
func (db *DB) initEpochs() {
	db.epochReads = *db.opts.EpochReads
	db.epoch.Store(firstEpoch)
	db.epochSlots = make([]epochSlot, epochSlotCount)
}

// versionPin is a reader's hold on a version snapshot. In epoch mode it
// records the slot/bucket the reader announced in; in the mutex-refcount
// ablation the slot is nil and the pin is the version's refcount.
type versionPin struct {
	v      *version
	slot   *epochSlot
	bucket uint32
}

// acquireVersion pins the current version for reading. In epoch mode it
// touches only its striped slot and two atomic loads — never db.mu.
func (db *DB) acquireVersion() versionPin {
	if !db.epochReads {
		// Mutex-refcount ablation: the seed's read path.
		db.mu.Lock()
		v := db.current.Load()
		v.refs.Add(1)
		db.mu.Unlock()
		return versionPin{v: v}
	}
	// rand/v2's top-level generator is per-core (runtime cheaprand), so
	// picking the stripe costs a few nanoseconds and no shared state.
	s := &db.epochSlots[rand.Uint32()&(epochSlotCount-1)]
	for {
		e := db.epoch.Load()
		b := uint32(e % 3)
		s.counts[b].Add(1)
		if db.epoch.Load() == e {
			// Announcement validated: the epoch cannot advance past e+1
			// until this pin exits, so the version loaded next outlives
			// the pin (see the package comment for the full argument).
			return versionPin{v: db.current.Load(), slot: s, bucket: b}
		}
		// The epoch moved between the read and the announcement; undo and
		// re-announce in the new epoch.
		s.counts[b].Add(-1)
	}
}

// releaseVersion exits a reader pin. In epoch mode the exit is one atomic
// decrement plus an opportunistic (non-blocking) sweep when retired
// versions are waiting on their grace period.
func (db *DB) releaseVersion(p versionPin) {
	if p.slot == nil {
		db.mu.Lock()
		p.v.refs.Add(-1)
		db.sweepVersionsLocked()
		db.mu.Unlock()
		return
	}
	p.slot.counts[p.bucket].Add(-1)
	if db.gracePending.Load() > 0 {
		db.trySweep()
	}
}

// bucketEmpty reports whether no reader is announced in bucket b of any
// slot. Transient stale announcements may make this spuriously false —
// which only delays an epoch advance, never corrupts it.
func (db *DB) bucketEmpty(b uint64) bool {
	for i := range db.epochSlots {
		if db.epochSlots[i].counts[b].Load() != 0 {
			return false
		}
	}
	return true
}

// tryAdvanceEpoch advances the global epoch once if no reader remains
// announced in the previous epoch. Between the emptiness check and the
// CAS, no reader can validly enter the checked bucket: a validated entry
// requires the global epoch to equal the bucket's epoch, which it does
// not while the CAS target still holds.
func (db *DB) tryAdvanceEpoch() bool {
	e := db.epoch.Load()
	if !db.bucketEmpty((e + 2) % 3) { // (e-1) mod 3 without underflow
		return false
	}
	return db.epoch.CompareAndSwap(e, e+1)
}

// trySweep is the reader-exit sweep hook: strictly non-blocking, so a
// reader never waits on another sweeper (or on a writer holding sweepMu
// through editVersionLocked).
func (db *DB) trySweep() {
	if !db.sweepMu.TryLock() {
		return
	}
	db.advanceAndSweepLocked()
	db.sweepMu.Unlock()
}

// advanceAndSweepLocked ages the epoch up to twice (a freshly retired
// version needs E ≥ r+2, i.e. two advances when readers are quiescent)
// and frees every version whose grace period has elapsed. Caller holds
// sweepMu.
func (db *DB) advanceAndSweepLocked() {
	if db.gracePending.Load() > 0 {
		db.tryAdvanceEpoch()
		db.tryAdvanceEpoch()
	}
	db.sweepEpochLocked()
}

// sweepEpochLocked frees dead versions from the oldest end of the chain,
// stopping at the first version still inside its grace period (or at the
// current version). Ordering matters: a version's garbage may still be
// referenced through older snapshots, so releases run strictly
// oldest-first — the invariant the WAL/arena releaseFns rely on. Caller
// holds sweepMu; the current pointer is sampled once, which is merely
// conservative if an edit lands concurrently.
func (db *DB) sweepEpochLocked() {
	e := db.epoch.Load()
	cur := db.current.Load()
	for db.oldest != cur {
		r := db.oldest.retireEpoch.Load()
		if r == notRetired || e < r+2 {
			return
		}
		for _, fn := range db.oldest.releaseFns {
			fn()
		}
		db.oldest.releaseFns = nil
		db.oldest = db.oldest.next
		db.gracePending.Add(-1)
		db.st.CountVersionSwept()
	}
}

// retireVersionLocked stamps the outgoing version with the current epoch
// and accounts it pending. Callers hold db.mu and have already installed
// the successor (db.current.Store); the stamp is the release point the
// sweeper synchronizes with, so every earlier write to the version
// (releaseFns appends, the next link) is visible once the stamp is.
func (db *DB) retireVersionLocked(cur *version) {
	cur.retireEpoch.Store(db.epoch.Load())
	db.gracePending.Add(1)
}

// readersQuiescent reports whether no reader pin is live in any epoch
// bucket.
func (db *DB) readersQuiescent() bool {
	for b := uint64(0); b < 3; b++ {
		if !db.bucketEmpty(b) {
			return false
		}
	}
	return true
}

// waitReadersDrained blocks until every reader epoch has drained — Close
// calls it after latching the store closed, so teardown (and the SSD
// tier's Close) never races an in-flight Get/Scan/iterator. Readers
// re-validate the closed flag right after pinning, so in-flight
// operations exit promptly; a leaked open Iterator blocks Close by
// design (the caller owns its lifetime).
func (db *DB) waitReadersDrained() {
	if !db.epochReads {
		// Mutex-refcount ablation: wait for the chain to drain to the
		// current version with only the store's own reference left.
		for {
			db.mu.Lock()
			db.sweepVersionsLocked()
			done := db.oldest == db.current.Load() && db.current.Load().refs.Load() == 1
			db.mu.Unlock()
			if done {
				return
			}
			runtime.Gosched()
			time.Sleep(20 * time.Microsecond)
		}
	}
	for i := 0; !db.readersQuiescent(); i++ {
		runtime.Gosched()
		if i > 100 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	// With readers gone the grace period elapses immediately: run the
	// releases so a closed store holds only what the manifest references.
	db.sweepMu.Lock()
	db.advanceAndSweepLocked()
	db.sweepMu.Unlock()
}

// versionChainGauge samples the version chain: live versions (oldest
// through current, inclusive) and releaseFns queued on retired versions
// awaiting their grace period. The current version's own queue is
// excluded — its resources are not pending release, they are live.
func (db *DB) versionChainGauge() (liveVersions int64, pendingReleases int64, epoch uint64) {
	unlock := func() {}
	if db.epochReads {
		db.sweepMu.Lock()
		unlock = db.sweepMu.Unlock
	} else {
		db.mu.Lock()
		unlock = db.mu.Unlock
	}
	defer unlock()
	cur := db.current.Load()
	for v := db.oldest; v != nil; v = v.next {
		liveVersions++
		if v != cur {
			pendingReleases += int64(len(v.releaseFns))
		}
		if v == cur {
			break
		}
	}
	return liveVersions, pendingReleases, db.epoch.Load()
}
