package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/pmtable"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
	"miodb/internal/wal"
)

// ErrNotFound is returned by Get for keys with no live value. It is the
// shared sentinel every store in this repository returns, so harness code
// can compare directly.
var ErrNotFound = kvstore.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = kvstore.ErrClosed

// DB is a MioDB instance: DRAM MemTable + WAL in front of an elastic
// multi-level PMTable buffer in NVM, with a huge repository PMTable (or
// SSTable levels on SSD) at the bottom.
type DB struct {
	opts  Options
	space *vaddr.Space
	dram  *nvm.Device
	nvm   *nvm.Device
	ssd   *lsm.Levels // nil in pure in-memory mode
	repo  *pmtable.Repository
	st    *stats.Recorder
	fp    pmtable.FilterParams

	// writeMu serializes the client write path (WAL append + memtable
	// insert), LevelDB-style.
	writeMu sync.Mutex
	seq     atomic.Uint64
	tableID atomic.Uint64

	// mu guards the version chain and all structural state below.
	mu             sync.Mutex
	cond           *sync.Cond
	current        *version
	oldest         *version
	merges         []*activeMerge // at most one per level
	repoCompacting bool           // a repository garbage rebuild is running
	closed         bool
	abandon        bool // simulated crash: background loops exit without draining

	manifest      *manifestLog
	manifestEdits int          // delta records since the last snapshot
	markSlots     []vaddr.Addr // persisted insertion-mark slot per level
	levelStats    []levelWork  // per-level compaction counters (under mu)

	wg sync.WaitGroup
}

// levelWork accumulates one level's compaction counters.
type levelWork struct {
	merges       int64
	nodesMoved   int64
	garbageBytes int64
}

type activeMerge struct {
	level        int
	merge        *pmtable.Merge
	newID, oldID uint64
}

// Open creates a fresh DB.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	space := vaddr.NewSpace()
	db := &DB{
		opts:  opts,
		space: space,
		dram:  nvm.NewDevice(space, nvm.DRAMProfile()),
		nvm:   nvm.NewDevice(space, nvm.NVMProfile()),
		st:    &stats.Recorder{},
		fp: pmtable.FilterParams{
			ExpectedKeys: opts.FilterCapacity,
			BitsPerKey:   opts.BloomBitsPerKey,
		},
	}
	db.cond = sync.NewCond(&db.mu)
	db.levelStats = make([]levelWork, opts.Levels)
	db.applySimulation()

	// The superblock/manifest occupies the space's first region so that
	// recovery can find it without any external root.
	db.manifest = newManifestLog(db.nvm)
	db.markSlots = make([]vaddr.Addr, opts.Levels)
	for i := range db.markSlots {
		slot, err := db.manifest.allocSlot()
		if err != nil {
			return nil, err
		}
		db.markSlots[i] = slot
	}

	if opts.SSD != nil {
		disk := opts.SSD.Disk
		if disk == nil {
			disk = vfs.NewDisk(vfs.SSDProfile())
		}
		disk.SetSimulation(opts.Simulate)
		disk.SetTimeScale(opts.TimeScale)
		lo := opts.SSD.LSM
		lo.Disk = disk
		lo.Stats = db.st
		db.ssd = lsm.New(lo)
	} else {
		repo, err := pmtable.NewRepository(db.nvm, opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		db.repo = repo
	}

	mem, err := db.newMemHandle()
	if err != nil {
		return nil, err
	}
	root := &version{
		mem:    mem,
		levels: make([][]levelEntry, opts.Levels),
		repo:   db.repo,
	}
	root.refs.Store(1)
	db.current, db.oldest = root, root

	db.writeManifestLocked()
	db.startBackground()
	return db, nil
}

func (db *DB) applySimulation() {
	db.dram.SetSimulation(db.opts.Simulate)
	db.nvm.SetSimulation(db.opts.Simulate)
	db.dram.SetTimeScale(db.opts.TimeScale)
	db.nvm.SetTimeScale(db.opts.TimeScale)
}

func (db *DB) newMemHandle() (*memHandle, error) {
	mt, err := memtable.New(db.dram, db.opts.MemTableSize, db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	h := &memHandle{mt: mt}
	if !db.opts.DisableWAL {
		h.log = wal.New(db.nvm, db.opts.ChunkSize)
	}
	return h, nil
}

func (db *DB) startBackground() {
	db.wg.Add(1)
	go db.flushLoop()
	if *db.opts.ParallelCompaction {
		for level := 0; level < db.opts.Levels-1; level++ {
			db.wg.Add(1)
			go db.compactLoop(level)
		}
	} else {
		db.wg.Add(1)
		go db.singleCompactLoop()
	}
	db.wg.Add(1)
	go db.lazyLoop()
}

// Put writes a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(key, value, keys.KindSet)
}

// Delete writes a tombstone for key.
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, keys.KindDelete)
}

// write is the client write path: WAL append (sequential NVM write), then
// DRAM memtable insert. MioDB's elastic buffer means it never throttles or
// blocks here — the property behind the flat latency trace of Fig 8.
func (db *DB) write(key, value []byte, kind keys.Kind) error {
	if len(key) == 0 {
		return fmt.Errorf("miodb: empty key")
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.isClosed() {
		return ErrClosed
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}
	seq := db.seq.Add(1)

	db.mu.Lock()
	mem := db.current.mem
	db.mu.Unlock()

	if mem.log != nil {
		if err := mem.log.Append(key, value, seq, kind); err != nil {
			return err
		}
	}
	if err := mem.mt.Add(key, value, seq, kind); err != nil {
		return err
	}
	if mem.minSeq == 0 {
		mem.minSeq = seq
	}
	mem.maxSeq = seq

	db.st.AddUserBytes(int64(len(key) + len(value)))
	if kind == keys.KindDelete {
		db.st.CountDelete()
	} else {
		db.st.CountPut()
	}
	return nil
}

// makeRoomForWrite rotates a full memtable into the immutable queue.
// Because every level of the elastic buffer is unbounded, rotation never
// waits on flushing or compaction progress.
func (db *DB) makeRoomForWrite() error {
	db.mu.Lock()
	full := db.current.mem.mt.Full()
	db.mu.Unlock()
	if !full {
		return nil
	}
	fresh, err := db.newMemHandle()
	if err != nil {
		return err
	}
	db.mu.Lock()
	old := db.current.mem
	db.editVersionLocked(func(v *version) {
		v.imms = append([]*memHandle{old}, v.imms...)
		v.mem = fresh
	})
	db.logRotateLocked(fresh)
	db.mu.Unlock()
	return nil
}

// Get returns the newest live value for key. The search order follows the
// storage hierarchy: memtable → immutable memtables → elastic-buffer
// levels top-down (bloom-filtered) → repository (or SSD levels). Any
// table in level i holds strictly newer data than any table in level i+1,
// so the first hit wins.
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	db.st.CountGet()
	v := db.acquireVersion()
	defer db.releaseVersion(v)

	if value, _, kind, ok := v.mem.mt.Get(key); ok {
		return finishGet(value, kind)
	}
	for _, imm := range v.imms {
		if value, _, kind, ok := imm.mt.Get(key); ok {
			return finishGet(value, kind)
		}
	}
	for _, level := range v.levels {
		for _, e := range level {
			if !e.mayContain(key) {
				continue
			}
			if value, _, kind, ok := e.get(key); ok {
				return finishGet(value, kind)
			}
		}
	}
	if v.repo != nil {
		if value, _, kind, ok := v.repo.Get(key); ok {
			return finishGet(value, kind)
		}
	}
	if db.ssd != nil {
		if value, _, kind, ok := db.ssd.Get(key); ok {
			return finishGet(value, kind)
		}
	}
	return nil, ErrNotFound
}

func finishGet(value []byte, kind keys.Kind) ([]byte, error) {
	if kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	// Copy out of arena memory: the caller may hold the value past the
	// arena's lifetime.
	return append([]byte(nil), value...), nil
}

// Iterator walks the store's live keys in order (newest version of each
// key, tombstones hidden).
type Iterator struct {
	db  *DB
	v   *version
	it  iterx.Iterator
	err error
}

// NewIterator returns an iterator over a consistent-as-possible snapshot
// of the store. The iterator pins a version; Close releases it.
//
// Scans taken while a zero-copy merge is mid-flight may observe a key's
// version through either of the merging tables — the Visible wrapper
// collapses duplicates, and the merge's insertion mark is included so no
// key is skipped.
func (db *DB) NewIterator() *Iterator {
	db.st.CountScan()
	v := db.acquireVersion()
	sources := []iterx.Iterator{v.mem.mt.NewIterator()}
	for _, imm := range v.imms {
		sources = append(sources, imm.mt.NewIterator())
	}
	for _, level := range v.levels {
		for _, e := range level {
			sources = append(sources, e.iterators()...)
		}
	}
	if v.repo != nil {
		sources = append(sources, v.repo.NewIterator())
	}
	if db.ssd != nil {
		sources = append(sources, db.ssd.Iterators()...)
	}
	return &Iterator{
		db: db,
		v:  v,
		it: iterx.NewVisible(iterx.NewMerging(sources...)),
	}
}

// SeekToFirst positions at the first live key.
func (it *Iterator) SeekToFirst() { it.it.SeekToFirst() }

// Seek positions at the first live key ≥ key.
func (it *Iterator) Seek(key []byte) { it.it.Seek(key) }

// Next advances to the next live key.
func (it *Iterator) Next() { it.it.Next() }

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// Key returns the current key (valid until Next/Close).
func (it *Iterator) Key() []byte { return it.it.Key() }

// Value returns the current value (valid until Next/Close).
func (it *Iterator) Value() []byte { return it.it.Value() }

// Close releases the iterator's version pin.
func (it *Iterator) Close() {
	if it.v != nil {
		it.db.releaseVersion(it.v)
		it.v = nil
	}
}

// Scan invokes fn for up to limit live keys starting at start, stopping
// early if fn returns false. limit ≤ 0 means no limit. The slices passed
// to fn alias store memory and are only valid during the callback.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	if db.isClosed() {
		return ErrClosed
	}
	it := db.NewIterator()
	defer it.Close()
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

func (db *DB) isClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.closed
}

// WaitIdle blocks until all queued flushes, zero-copy merges, and
// lazy-copy compactions have drained (benchmarks call it between load and
// read phases).
func (db *DB) WaitIdle() {
	db.mu.Lock()
	for !db.idleLocked() && !db.closed {
		db.cond.Wait()
	}
	db.mu.Unlock()
	if db.ssd != nil {
		db.ssd.WaitIdle()
	}
}

func (db *DB) idleLocked() bool {
	v := db.current
	if len(v.imms) > 0 {
		return false
	}
	if len(db.merges) > 0 || db.repoCompacting {
		return false
	}
	for level := 0; level < len(v.levels)-1; level++ {
		if len(v.levels[level]) >= 2 {
			return false
		}
	}
	return len(v.levels[len(v.levels)-1]) == 0
}

// FlushAll forces the active memtable out and waits for the store to
// drain fully (benchmarks and orderly shutdown).
func (db *DB) FlushAll() error {
	db.writeMu.Lock()
	fresh, err := db.newMemHandle()
	if err != nil {
		db.writeMu.Unlock()
		return err
	}
	db.mu.Lock()
	if db.current.mem.mt.Empty() {
		db.mu.Unlock()
		db.writeMu.Unlock()
		fresh.mt.Release()
		if fresh.log != nil {
			fresh.log.Release()
		}
		db.WaitIdle()
		return nil
	}
	old := db.current.mem
	db.editVersionLocked(func(v *version) {
		v.imms = append([]*memHandle{old}, v.imms...)
		v.mem = fresh
	})
	db.logRotateLocked(fresh)
	db.mu.Unlock()
	db.writeMu.Unlock()
	db.WaitIdle()
	return nil
}

// Close drains background work and shuts the store down.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()

	// Let queued work drain before stopping the loops.
	db.WaitIdle()

	db.mu.Lock()
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.wg.Wait()
	if db.ssd != nil {
		db.ssd.Close()
	}
	return nil
}

// Stats returns the store's cost accounting with device traffic attached.
func (db *DB) Stats() stats.Snapshot {
	s := db.st.Snapshot()
	devs := []stats.DeviceCounters{
		{Name: "dram", BytesRead: db.dram.Counters().BytesRead, BytesWritten: db.dram.Counters().BytesWritten},
	}
	nc := db.nvm.Counters()
	persistent := []stats.DeviceCounters{
		{Name: nc.Name, BytesRead: nc.BytesRead, BytesWritten: nc.BytesWritten},
	}
	if db.ssd != nil {
		dc := db.ssd.Options().Disk.Counters()
		persistent = append(persistent, stats.DeviceCounters{Name: dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten})
	}
	s.AttachDevices(persistent...)
	s.Devices = append(devs, s.Devices...)
	return s
}

// ResetCounters clears device and cost counters (between bench phases).
func (db *DB) ResetCounters() {
	db.dram.ResetCounters()
	db.nvm.ResetCounters()
	if db.ssd != nil {
		db.ssd.Options().Disk.ResetCounters()
	}
	*db.st = stats.Recorder{}
}

// NVMUsage returns current and peak NVM footprint in bytes (the elastic
// buffer consumption discussion of §5.4).
func (db *DB) NVMUsage() int64 {
	var total int64
	for _, r := range db.space.Regions() {
		if r.Meter() == vaddr.Meter(db.nvm) {
			total += r.Footprint()
		}
	}
	return total
}

// LevelTableCounts returns the number of tables per elastic-buffer level
// (diagnostics and tests).
func (db *DB) LevelTableCounts() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, len(db.current.levels))
	for i, l := range db.current.levels {
		out[i] = len(l)
	}
	return out
}

// RepositoryCount returns the number of unique keys in the repository
// (in-memory mode only).
func (db *DB) RepositoryCount() int64 {
	db.mu.Lock()
	repo := db.repo
	db.mu.Unlock()
	if repo == nil {
		return 0
	}
	return repo.Count()
}

// Recorder exposes the stats recorder for harness integration.
func (db *DB) Recorder() *stats.Recorder { return db.st }
