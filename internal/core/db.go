package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/pmtable"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
	"miodb/internal/vlog"
	"miodb/internal/wal"
)

// ErrNotFound is returned by Get for keys with no live value. It is the
// shared sentinel every store in this repository returns, so harness code
// can compare directly.
var ErrNotFound = kvstore.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = kvstore.ErrClosed

// DB is a MioDB instance: DRAM MemTable + WAL in front of an elastic
// multi-level PMTable buffer in NVM, with a huge repository PMTable (or
// SSTable levels on SSD) at the bottom.
type DB struct {
	opts  Options
	space *vaddr.Space
	dram  *nvm.Device
	nvm   *nvm.Device
	ssd   *lsm.Levels // nil in pure in-memory mode
	repo  *pmtable.Repository
	st    *stats.Recorder
	fp    pmtable.FilterParams

	// vlog is the value log behind key-value separation (nil when
	// Options.ValueLog is nil — the byte-for-byte inline engine). The GC
	// loop wakes on vlogKick (non-blocking sends from compaction drops
	// and segment seals) and exits when vlogStop closes; stopVlog latches
	// the close exactly once across Close and CrashForTest.
	vlog     *vlog.Store
	vlogDisk *vfs.Disk // SSD-offload backing (OnSSD); nil otherwise
	vlogStop chan struct{}
	vlogKick chan struct{}
	stopVlog sync.Once

	// Group commit (LevelDB/RocksDB-style writer queue): concurrent
	// callers of Put/Delete/Write enqueue a groupWriter under writeMu and
	// park; the queue head becomes the leader, coalesces the pending
	// writers into one group, and commits it — one WAL append for the
	// whole group, one bulk memtable insert — under commitMu, then wakes
	// the followers with the shared result.
	//
	// Lock order: writeMu → commitMu → mu. writeMu guards only the queue
	// and is never held across device work, so writers keep enqueueing
	// (and the next group keeps growing) while the leader commits.
	// commitMu is held for the whole commit body and by every memtable
	// rotation (makeRoomForWrite, FlushAll, Checkpoint), so rotation and
	// a group insert can never interleave.
	writeMu  sync.Mutex
	writers  []*groupWriter
	commitMu sync.Mutex
	// inflight counts commit() calls currently in progress; leaders use it
	// to decide whether yielding to grow their group can possibly help.
	inflight atomic.Int64

	seq     atomic.Uint64
	tableID atomic.Uint64

	// memTarget is the dynamic capacity for the *next* memtable, read at
	// rotation time (newMemHandle) and adjusted by SetMemTableTarget —
	// the memory governor's knob. It never resizes the live arena: a
	// target change only takes effect at the next rotation boundary, so
	// an in-flight group insert always sees the capacity its memtable was
	// built with. Initialized to opts.MemTableSize; when nobody calls
	// SetMemTableTarget the write path is byte-identical to a static
	// configuration.
	memTarget atomic.Int64

	// current publishes the installed version snapshot to the lock-free
	// read path; it is written only under db.mu (editVersionLocked) but
	// read by anyone. See epoch.go for the reclamation protocol.
	current atomic.Pointer[version]

	// Epoch-based reader reclamation (epoch.go). epochReads selects the
	// lock-free read path; false restores the seed's mutex-refcount
	// acquire/release as a measurable ablation.
	epochReads   bool
	epoch        atomic.Uint64
	epochSlots   []epochSlot
	gracePending atomic.Int64 // retired versions awaiting their grace period
	// sweepMu serializes grace-period sweeps and guards db.oldest in
	// epoch mode. Lock order: db.mu → sweepMu (readers take sweepMu
	// alone, and only via TryLock).
	sweepMu sync.Mutex

	// closedFlag mirrors db.closed for the lock-free read path: readers
	// check it before and after pinning a version, so Close (which waits
	// for reader epochs to drain before tearing the store down) is never
	// raced by a late snapshot.
	closedFlag atomic.Bool

	// Snapshot registry (snapshot.go). snaps holds every open long-lived
	// Snapshot; snapMin caches the lowest registered bound — the "horizon"
	// compactions compare superseding sequence numbers against before
	// physically dropping an older version. The encoding reserves 0 for
	// "no snapshots registered" (= horizon keys.MaxSeq): a snapshot bound
	// of 0 can only belong to an empty store, where no entry is ever
	// visible to it and no drop can matter. A stale horizon read is always
	// safe — any snapshot registered later bounds at or above every
	// committed sequence number, so it can never need an entry that was
	// already superseded when it was created.
	snapMu  sync.Mutex
	snaps   map[*Snapshot]struct{}
	snapMin atomic.Uint64

	// readLevels holds the per-level read-path observability counters
	// (bloom probes/skips/false positives, hits); indexed like levels,
	// updated lock-free by readers.
	readLevels []readLevelWork

	// mu guards the version-chain edits and all structural state below.
	mu             sync.Mutex
	cond           *sync.Cond
	oldest         *version
	merges         []*activeMerge // at most one per level
	repoCompacting bool           // a repository garbage rebuild is running
	closed         bool
	abandon        bool // simulated crash: background loops exit without draining
	// bgErr is the sticky background error: once a background I/O path
	// fails persistently the store degrades to read-only (see degrade.go).
	bgErr error

	manifest      *manifestLog
	manifestEdits int          // delta records since the last snapshot
	markSlots     []vaddr.Addr // persisted insertion-mark slot per level
	levelStats    []levelWork  // per-level compaction counters (under mu)

	// repoAppliedSeq (under mu) is the highest range-tombstone sequence a
	// repository rebuild has fully applied; a tombstone at or below it —
	// with every remaining table/memtable entry newer than it — is spent
	// and can be dropped from the side table and the manifest.
	repoAppliedSeq uint64

	wg sync.WaitGroup
}

// levelWork accumulates one level's compaction counters.
type levelWork struct {
	merges       int64
	nodesMoved   int64
	garbageBytes int64
}

// readLevelWork accumulates one elastic-buffer level's read-path counters,
// updated lock-free by concurrent readers. Padded so the per-level hot
// counters of adjacent levels do not share a cache line.
type readLevelWork struct {
	// probes counts tables whose filter was consulted for a Get.
	probes atomic.Int64
	// skips counts probes the bloom filter answered "definitely absent"
	// for, saving a list search.
	skips atomic.Int64
	// falsePositives counts probes that passed the filter but found no
	// key in the table — the measured (not theoretical) FP cost.
	falsePositives atomic.Int64
	// hits counts Gets satisfied at this level.
	hits atomic.Int64
	_    [128 - 4*8]byte
}

type activeMerge struct {
	level        int
	merge        *pmtable.Merge
	newID, oldID uint64
}

// Open creates a fresh DB.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	space := vaddr.NewSpace()
	db := &DB{
		opts:  opts,
		space: space,
		dram:  nvm.NewDevice(space, nvm.DRAMProfile()),
		nvm:   nvm.NewDevice(space, nvm.NVMProfile()),
		st:    &stats.Recorder{},
		fp: pmtable.FilterParams{
			ExpectedKeys: opts.FilterCapacity,
			BitsPerKey:   opts.BloomBitsPerKey,
		},
	}
	db.cond = sync.NewCond(&db.mu)
	db.memTarget.Store(opts.MemTableSize)
	db.levelStats = make([]levelWork, opts.Levels)
	db.readLevels = make([]readLevelWork, opts.Levels)
	db.initEpochs()
	db.applySimulation()

	// The superblock/manifest occupies the space's first region so that
	// recovery can find it without any external root.
	db.manifest = newManifestLog(db.nvm)
	db.markSlots = make([]vaddr.Addr, opts.Levels)
	for i := range db.markSlots {
		slot, err := db.manifest.allocSlot()
		if err != nil {
			return nil, err
		}
		db.markSlots[i] = slot
	}

	if opts.SSD != nil {
		disk := opts.SSD.Disk
		if disk == nil {
			disk = vfs.NewDisk(vfs.SSDProfile())
		}
		disk.SetSimulation(opts.Simulate)
		disk.SetTimeScale(opts.TimeScale)
		lo := opts.SSD.LSM
		lo.Disk = disk
		lo.Stats = db.st
		db.ssd = lsm.New(lo)
	} else {
		repo, err := pmtable.NewRepository(db.nvm, opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		db.repo = repo
	}

	if opts.ValueLog != nil {
		db.initValueLog()
	}

	mem, err := db.newMemHandle()
	if err != nil {
		return nil, err
	}
	root := newRootVersion()
	root.mem = mem
	root.levels = make([][]levelEntry, opts.Levels)
	root.repo = db.repo
	db.current.Store(root)
	db.oldest = root

	if err := db.writeManifestLocked(); err != nil {
		return nil, err
	}
	db.startBackground()
	return db, nil
}

// Devices exposes the DRAM and NVM device models (fault-injection hooks
// for tests and the torture harness).
func (db *DB) Devices() (dram, nvmDev *nvm.Device) { return db.dram, db.nvm }

// LastSeq returns the newest assigned sequence number.
func (db *DB) LastSeq() uint64 { return db.seq.Load() }

func (db *DB) applySimulation() {
	db.dram.SetSimulation(db.opts.Simulate)
	db.nvm.SetSimulation(db.opts.Simulate)
	db.dram.SetTimeScale(db.opts.TimeScale)
	db.nvm.SetTimeScale(db.opts.TimeScale)
}

func (db *DB) newMemHandle() (*memHandle, error) {
	// The capacity comes from the dynamic target, not opts: this is the
	// rotation boundary where a SetMemTableTarget call takes effect.
	mt, err := memtable.New(db.dram, db.memTarget.Load(), db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	h := &memHandle{mt: mt, bornSeq: db.seq.Load()}
	if !db.opts.DisableWAL {
		h.log = wal.New(db.nvm, db.opts.ChunkSize)
	}
	return h, nil
}

func (db *DB) startBackground() {
	db.wg.Add(1)
	go db.flushLoop()
	if *db.opts.ParallelCompaction {
		for level := 0; level < db.opts.Levels-1; level++ {
			db.wg.Add(1)
			go db.compactLoop(level)
		}
	} else {
		db.wg.Add(1)
		go db.singleCompactLoop()
	}
	db.wg.Add(1)
	go db.lazyLoop()
	if db.vlog != nil {
		db.wg.Add(1)
		go db.vlogGCLoop()
	}
}

// initValueLog builds the value-log store and its GC plumbing. The
// manifest must already exist: every new segment is announced through a
// manifest record before the first pointer into it can commit.
func (db *DB) initValueLog() {
	vc := db.opts.ValueLog
	cfg := vlog.Config{SegmentSize: vc.SegmentSize, GCDeadRatio: vc.GCDeadRatio}
	if vc.OnSSD {
		disk := vfs.NewDisk(vfs.SSDProfile())
		disk.SetSimulation(db.opts.Simulate)
		disk.SetTimeScale(db.opts.TimeScale)
		db.vlogDisk = disk
		db.vlog = vlog.NewSSD(disk, cfg)
	} else {
		db.vlog = vlog.NewNVM(db.nvm, cfg)
	}
	db.vlog.OnNewSegment = db.logVlogSegment
	db.vlogStop = make(chan struct{})
	db.vlogKick = make(chan struct{}, 1)
}

// Put writes a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(key, value, keys.KindSet)
}

// Delete writes a tombstone for key.
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, keys.KindDelete)
}

// write is the client write path: the operation joins the group-commit
// queue and returns once a leader has logged and inserted it. MioDB's
// elastic buffer means it never throttles or blocks on compaction here —
// the property behind the flat latency trace of Fig 8 — unless
// Options.Admission bounds the backlog, in which case any wait is
// recorded as a measured stall (see admission.go).
func (db *DB) write(key, value []byte, kind keys.Kind) error {
	if len(key) == 0 {
		return fmt.Errorf("miodb: empty key")
	}
	var ops [1]batchOp
	ops[0] = batchOp{key: key, value: value, kind: kind}
	return db.commit(ops[:])
}

// groupWriter is one parked write request in the commit queue.
type groupWriter struct {
	ops  []batchOp
	cv   sync.Cond // on db.writeMu
	done bool
	err  error
}

// maxGroupBytes caps the payload one leader coalesces into a single
// commit, bounding both follower latency and the WAL encode buffer.
const maxGroupBytes = 1 << 20

func opsBytes(ops []batchOp) int {
	n := 0
	for _, op := range ops {
		n += len(op.key) + len(op.value)
	}
	return n
}

// commit times one client write request end to end — queue wait, any
// admission throttling, WAL append, memtable insert — and charges every
// record with the measured latency under its own op type. Recording per
// record (not per batch) keeps the put/delete distributions meaningful
// under group commit: each rider experienced the group's latency.
func (db *DB) commit(ops []batchOp) error {
	start := time.Now()
	err := db.commitOps(ops)
	if err == nil {
		d := time.Since(start)
		var puts, deletes int64
		for _, op := range ops {
			if op.kind == keys.KindSet {
				puts++
			} else {
				deletes++ // point and range tombstones both count as deletes
			}
		}
		db.st.RecordOpN(stats.OpPut, d, puts)
		db.st.RecordOpN(stats.OpDelete, d, deletes)
	}
	return err
}

// commitOps enqueues ops and parks until they are durable and visible.
// The queue head acts as leader: it snapshots a prefix of the queue (up
// to maxGroupBytes), commits the combined group under commitMu, then
// pops the group and hands leadership to the new head. Followers return
// the group's shared result without touching the WAL or memtable.
func (db *DB) commitOps(ops []batchOp) error {
	if !*db.opts.GroupCommit {
		return db.commitSerial(ops)
	}
	db.inflight.Add(1)
	defer db.inflight.Add(-1)

	// Uncontended fast path: a lone writer with a single record gains
	// nothing from the queue — it would elect itself leader, form a group
	// of one, and pay the groupWriter allocation, two extra writeMu
	// round-trips, and a condvar setup for nothing. Commit it directly.
	// Multi-op batches stay on the group path so they keep the single
	// AppendBatch framing even when alone. inflight was incremented above,
	// so a second writer arriving now sees Load() > 1 and queues normally;
	// commitSerial and commitGroup both serialize under commitMu, so the
	// two paths never interleave within a commit. The bypass still counts
	// as a group of one, keeping the invariant that every write in this
	// configuration is accounted to exactly one commit (GroupedWrites
	// equals total writes; mean group size ≈ 1 when writers are alone).
	if len(ops) == 1 && db.inflight.Load() == 1 {
		err := db.commitSerial(ops)
		if err == nil {
			db.st.AddWriteGroup(1)
		}
		return err
	}

	w := &groupWriter{ops: ops}
	w.cv.L = &db.writeMu

	db.writeMu.Lock()
	db.writers = append(db.writers, w)
	for !w.done && db.writers[0] != w {
		w.cv.Wait()
	}
	if w.done {
		// A previous leader carried this write in its group.
		db.writeMu.Unlock()
		return w.err
	}

	// Leader. If other writers are in flight but none has queued up yet,
	// yield once with the queue unlocked: concurrent writers that are
	// between operations (or runnable but not yet scheduled — the common
	// case when cores are scarce) get a chance to enqueue and ride this
	// group instead of paying a full commit each. Parked writers never
	// overtake the leader, so this is safe. The in-flight gate matters
	// twice over: a lone writer must never donate its scheduler slice to
	// unrelated CPU-bound goroutines (readers, scanners), and at two
	// writers the yield's context-switch cost roughly cancels the one
	// commit it saves — it only pays off once several writers can ride.
	if len(db.writers) == 1 && db.inflight.Load() > 2 {
		db.writeMu.Unlock()
		runtime.Gosched()
		db.writeMu.Lock()
	}

	// Leader: snapshot the group — self plus queued followers, capped.
	group := []*groupWriter{w}
	size := opsBytes(ops)
	for _, f := range db.writers[1:] {
		fb := opsBytes(f.ops)
		if size+fb > maxGroupBytes {
			break
		}
		size += fb
		group = append(group, f)
	}
	db.writeMu.Unlock()

	// Commit outside writeMu so new writers keep enqueueing behind the
	// group; they cannot become leader until this group is popped.
	db.commitMu.Lock()
	err := db.commitGroup(group)
	db.commitMu.Unlock()

	db.writeMu.Lock()
	// Pop the group with a copy so the queue's backing array is reused
	// instead of drifting forward and forcing append to reallocate.
	n := copy(db.writers, db.writers[len(group):])
	for i := n; i < len(db.writers); i++ {
		db.writers[i] = nil
	}
	db.writers = db.writers[:n]
	for _, f := range group[1:] {
		f.err = err
		f.done = true
		f.cv.Signal()
	}
	if len(db.writers) > 0 {
		db.writers[0].cv.Signal() // promote the next leader
	}
	db.writeMu.Unlock()
	return err
}

// commitGroup applies one coalesced group: consecutive sequence numbers,
// a single WAL append framing every record, then bulk memtable inserts.
// Callers hold commitMu, so rotation cannot interleave with the insert.
func (db *DB) commitGroup(group []*groupWriter) error {
	if err := db.writeGate(); err != nil {
		return err
	}
	if err := db.admitWrite(); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}

	// commitMu (held by every caller) also serializes rotation, so the
	// installed version's memtable is stable for the whole commit.
	mem := db.current.Load().mem

	nops := 0
	for _, f := range group {
		nops += len(f.ops)
	}
	firstSeq := db.seq.Load() + 1

	// Flatten the group once. With key-value separation on, large values
	// are appended to the value log here — value bytes before pointer, so
	// the WAL record that commits a pointer is durable strictly after the
	// bytes it references — and the flat ops carry 16-byte addresses.
	flat := make([]batchOp, 0, nops)
	for _, f := range group {
		flat = append(flat, f.ops...)
	}
	var sepBytes int64
	if db.vlog != nil {
		var err error
		flat, sepBytes, err = db.separateOps(flat, firstSeq)
		if err != nil {
			// Separated values may sit in the log unreferenced (dead space
			// GC reclaims later); burn the sequence range so the seqs
			// stamped into those entries are never reused by an acked
			// commit.
			db.seq.Store(firstSeq + uint64(nops) - 1)
			return err
		}
	}

	// Log the whole group first with one coalesced append: a crash during
	// insertion replays every record from the WAL (all-or-prefix per
	// group), and the NVM device is charged one sequential write instead
	// of one per record.
	if mem.log != nil {
		recs := make([]wal.Record, 0, nops)
		seq := firstSeq
		for _, op := range flat {
			recs = append(recs, wal.Record{Key: op.key, Value: op.value, Seq: seq, Kind: op.kind})
			seq++
		}
		if err := mem.log.AppendBatch(recs); err != nil {
			// A prefix of the group may be durably logged (all-or-prefix
			// per run). Burn the whole group's sequence range so no later
			// commit can reuse a sequence number a logged record already
			// carries — replay must never see two records with one seq.
			// The group is reported failed; its logged prefix may
			// resurface after a crash as unacknowledged writes, the
			// standard all-or-prefix contract.
			db.seq.Store(firstSeq + uint64(nops) - 1)
			if mem.log.Poisoned() {
				// A torn prefix is on the media: nothing appended behind
				// it could ever be replayed, so the store must stop
				// acknowledging writes.
				db.degrade("wal append", err)
			}
			return err
		}
	}

	seq := firstSeq
	var userBytes int64
	var puts, deletes int64
	for _, op := range flat {
		if op.kind == keys.KindRangeDelete {
			// Logged like any record, but never inserted into the skip
			// list: the tombstone lands in the version side table (and
			// on the handle, for the flush-time durability handoff).
			db.registerRangeTombstone(mem, rangeTombstone{
				start: append([]byte(nil), op.key...),
				end:   append([]byte(nil), op.value...),
				seq:   seq,
			})
			deletes++
			seq++
			continue
		}
		if err := mem.mt.Add(op.key, op.value, seq, op.kind); err != nil {
			// Every record is already durably logged: burn the whole
			// range and keep the memtable's seq window covering what
			// did land.
			db.seq.Store(firstSeq + uint64(nops) - 1)
			if seq > firstSeq {
				if mem.minSeq == 0 {
					mem.minSeq = firstSeq
				}
				if seq-1 > mem.maxSeq {
					mem.maxSeq = seq - 1
				}
			}
			return err
		}
		userBytes += int64(len(op.key) + len(op.value))
		if op.kind == keys.KindDelete {
			deletes++
		} else {
			puts++
		}
		seq++
	}
	lastSeq := firstSeq + uint64(nops) - 1
	db.seq.Store(lastSeq)
	if mem.minSeq == 0 {
		mem.minSeq = firstSeq
	}
	mem.maxSeq = lastSeq

	// sepBytes restores the user-byte count of separated values (the flat
	// ops only carry their 16-byte pointers) so write amplification keeps
	// dividing by what the client actually wrote.
	db.st.AddUserBytes(userBytes + sepBytes)
	db.st.CountPuts(puts)
	db.st.CountDeletes(deletes)
	db.st.AddWriteGroup(nops)
	return nil
}

// commitSerial is the GroupCommit=false ablation: every write commits
// individually under commitMu with one WAL append per record — the
// serialized write path the seed used and the concurrent-writer
// benchmarks compare against. No groups form, so group stats stay zero.
func (db *DB) commitSerial(ops []batchOp) error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()

	if err := db.writeGate(); err != nil {
		return err
	}
	if err := db.admitWrite(); err != nil {
		return err
	}
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}

	mem := db.current.Load().mem

	firstSeq := db.seq.Load() + 1
	nops := len(ops)
	var sepBytes int64
	if db.vlog != nil {
		var err error
		ops, sepBytes, err = db.separateOps(ops, firstSeq)
		if err != nil {
			// Burn the range: seqs stamped into orphaned log entries must
			// never be reused by an acked commit (see commitGroup).
			db.seq.Store(firstSeq + uint64(nops) - 1)
			return err
		}
	}
	seq := firstSeq
	var userBytes int64
	var puts, deletes int64
	// finishPartial seals the bookkeeping of a batch that failed after
	// part of it was logged/inserted: sequence numbers up to lastUsed are
	// consumed forever (reuse would let replay see duplicate seqs), and
	// the memtable's seq range must cover what was actually inserted.
	finishPartial := func(lastUsed, lastInserted uint64) {
		if lastUsed >= firstSeq {
			db.seq.Store(lastUsed)
		}
		if lastInserted >= firstSeq {
			if mem.minSeq == 0 {
				mem.minSeq = firstSeq
			}
			if lastInserted > mem.maxSeq {
				mem.maxSeq = lastInserted
			}
		}
	}
	for _, op := range ops {
		if mem.log != nil {
			if err := mem.log.Append(op.key, op.value, seq, op.kind); err != nil {
				finishPartial(seq-1, seq-1)
				if mem.log.Poisoned() {
					db.degrade("wal append", err)
				}
				return err
			}
		}
		if op.kind == keys.KindRangeDelete {
			db.registerRangeTombstone(mem, rangeTombstone{
				start: append([]byte(nil), op.key...),
				end:   append([]byte(nil), op.value...),
				seq:   seq,
			})
			deletes++
			seq++
			continue
		}
		if err := mem.mt.Add(op.key, op.value, seq, op.kind); err != nil {
			finishPartial(seq, seq-1)
			return err
		}
		userBytes += int64(len(op.key) + len(op.value))
		if op.kind == keys.KindDelete {
			deletes++
		} else {
			puts++
		}
		seq++
	}
	lastSeq := firstSeq + uint64(len(ops)) - 1
	db.seq.Store(lastSeq)
	if mem.minSeq == 0 {
		mem.minSeq = firstSeq
	}
	mem.maxSeq = lastSeq

	db.st.AddUserBytes(userBytes + sepBytes)
	db.st.CountPuts(puts)
	db.st.CountDeletes(deletes)
	return nil
}

// separateOps implements the key-value split on a committing op slice:
// every KindSet whose value is at or above the threshold has its bytes
// appended to the value log (stamped with the sequence number it will
// commit under) and is rewritten into a KindValuePtr op carrying the
// 16-byte address. The input slice is never mutated — a rewrite works on
// a fresh copy — so callers may share or reuse their slices. The second
// result is the separated user-byte delta (original value length minus
// pointer length, summed), which the caller folds back into the
// user-byte accounting.
func (db *DB) separateOps(ops []batchOp, firstSeq uint64) ([]batchOp, int64, error) {
	threshold := db.opts.ValueLog.Threshold
	out := ops
	copied := false
	var sepBytes int64
	seq := firstSeq
	for i := range ops {
		op := ops[i]
		if op.kind == keys.KindSet && len(op.value) >= threshold {
			addr, err := db.vlog.Append(op.key, op.value, seq)
			if err != nil {
				return nil, 0, err
			}
			if !copied {
				out = append([]batchOp(nil), ops...)
				copied = true
			}
			out[i] = batchOp{key: op.key, value: addr.Encode(nil), kind: keys.KindValuePtr}
			sepBytes += int64(len(op.value) - vlog.AddrSize)
		}
		seq++
	}
	return out, sepBytes, nil
}

// registerRangeTombstone publishes a committed range tombstone: into the
// current version's copy-on-write side table (read visibility) and onto
// the active memtable handle (durability handoff — the flush that retires
// the handle's WAL carries its tombstones into a manifest record first).
// Callers hold commitMu; the version edit takes db.mu, respecting the
// writeMu → commitMu → mu lock order.
func (db *DB) registerRangeTombstone(mem *memHandle, t rangeTombstone) {
	db.mu.Lock()
	db.editVersionLocked(func(v *version) {
		v.rangeDels = appendRangeDel(v.rangeDels, t)
	})
	mem.rangeDels = append(mem.rangeDels, t)
	db.mu.Unlock()
}

// DeleteRange deletes every key k with start ≤ k < end in one O(1)
// logical operation; an empty end deletes every key ≥ start. The range
// tombstone commits through the normal write pipeline (WAL record, its
// own sequence number, group-commit riders welcome) and is honored by
// every read path immediately; covered entries are physically dropped
// later by zero-copy merges, lazy-copy absorbs, and repository
// compaction (DESIGN.md §13). Snapshots taken before the DeleteRange
// keep reading the covered keys.
func (db *DB) DeleteRange(start, end []byte) error {
	if len(end) > 0 && bytes.Compare(start, end) >= 0 {
		return nil // empty range
	}
	var ops [1]batchOp
	ops[0] = batchOp{key: start, value: end, kind: keys.KindRangeDelete}
	return db.commit(ops[:])
}

// makeRoomForWrite rotates a full memtable into the immutable queue. It
// is leader-driven: only the committing leader (or FlushAll/Checkpoint,
// which take the same commitMu) rotates, so a rotation can never slide
// under a group insert. Because every level of the elastic buffer is
// unbounded, rotation never waits on flushing or compaction progress.
func (db *DB) makeRoomForWrite() error {
	if !db.current.Load().mem.mt.Full() {
		return nil
	}
	fresh, err := db.newMemHandle()
	if err != nil {
		return err
	}
	db.mu.Lock()
	old := db.current.Load().mem
	db.editVersionLocked(func(v *version) {
		v.imms = append([]*memHandle{old}, v.imms...)
		v.mem = fresh
	})
	err = db.logRotateLocked(fresh)
	db.mu.Unlock()
	db.st.CountRotation()
	// A failed rotate record has already latched the store degraded (the
	// fresh WAL region is unknown to the recoverable manifest, so writes
	// into it could never be replayed); surface the refusal to the writer.
	return err
}

// Get returns the newest live value for key. The search order follows the
// storage hierarchy: memtable → immutable memtables → elastic-buffer
// levels top-down (bloom-filtered) → repository (or SSD levels). Any
// table in level i holds strictly newer data than any table in level i+1,
// so the first hit wins.
//
// The whole lookup is lock-free with respect to db.mu: the version pin
// comes from the striped epoch machinery (epoch.go), so concurrent
// readers never serialize against writers, the flusher, or compaction
// threads. The closed flag is re-validated after pinning — Close latches
// it and then waits for reader epochs to drain, so a reader that slips
// past the first check either bails here or finishes against a snapshot
// Close has not torn down yet.
func (db *DB) Get(key []byte) ([]byte, error) {
	start := time.Now()
	value, err := db.get(key)
	if err != ErrClosed {
		// The striped recorder keeps this off the readers' shared locks —
		// the same trick as the epoch slots.
		db.st.RecordOp(stats.OpGet, time.Since(start))
	}
	return value, err
}

func (db *DB) get(key []byte) ([]byte, error) {
	if db.closedFlag.Load() {
		return nil, ErrClosed
	}
	db.st.CountGet()
	pin := db.acquireVersion()
	defer db.releaseVersion(pin)
	if db.closedFlag.Load() {
		return nil, ErrClosed
	}
	return db.getFrom(pin.v, key, keys.MaxSeq)
}

// getFrom is the single point-lookup engine behind DB.Get, Snapshot.Get,
// and GetMulti: search v's hierarchy for the newest version of key with
// sequence ≤ bound, then apply v's range tombstones to the hit. bound =
// keys.MaxSeq is the live path and keeps today's exact probe sequence —
// the only additions are one bound comparison per source and one
// len(rangeDels) check per hit. The caller must hold a pin on v (or
// otherwise guarantee it stays readable).
func (db *DB) getFrom(v *version, key []byte, bound uint64) ([]byte, error) {
	dels := v.rangeDels
	live := bound == keys.MaxSeq
	finish := func(value []byte, seq uint64, kind keys.Kind) ([]byte, error) {
		// The first hit is the newest visible version; if a tombstone
		// covers it, every older version has a lower seq and is covered
		// too — the key is gone.
		if len(dels) > 0 && covered(dels, key, seq) {
			return nil, ErrNotFound
		}
		return db.finishGet(value, kind)
	}
	memGet := func(mt *memtable.MemTable) ([]byte, uint64, keys.Kind, bool) {
		if live {
			return mt.Get(key)
		}
		return mt.GetBounded(key, bound)
	}

	if value, seq, kind, ok := memGet(v.mem.mt); ok {
		return finish(value, seq, kind)
	}
	for _, imm := range v.imms {
		if value, seq, kind, ok := memGet(imm.mt); ok {
			return finish(value, seq, kind)
		}
	}
	for li, level := range v.levels {
		// Accumulate this level's filter accounting locally and publish
		// once per touched level: one or two atomic adds per Get instead
		// of one per table probed.
		var probes, skips, fps int64
		var value []byte
		var seq uint64
		var kind keys.Kind
		hit := false
		for _, e := range level {
			probes++
			if !e.mayContain(key) {
				skips++
				continue
			}
			var ok bool
			if live {
				value, seq, kind, ok = e.get(key)
			} else {
				value, seq, kind, ok = e.getAt(key, bound)
			}
			if ok {
				hit = true
				break
			}
			fps++
		}
		if probes > 0 {
			rl := &db.readLevels[li]
			rl.probes.Add(probes)
			if skips > 0 {
				rl.skips.Add(skips)
			}
			if fps > 0 {
				rl.falsePositives.Add(fps)
			}
			if hit {
				rl.hits.Add(1)
			}
		}
		if hit {
			return finish(value, seq, kind)
		}
	}
	if v.repo != nil {
		var value []byte
		var seq uint64
		var kind keys.Kind
		var ok bool
		if live {
			value, seq, kind, ok = v.repo.Get(key)
		} else {
			value, seq, kind, ok = v.repo.GetBounded(key, bound)
		}
		if ok {
			return finish(value, seq, kind)
		}
	}
	if db.ssd != nil {
		// Snapshots are refused on SSD-mode stores (the on-SSD compactor
		// rewrites tables with no version pinning), so bound is always
		// MaxSeq here; range tombstones still filter by seq.
		if value, seq, kind, ok := db.ssd.Get(key); ok {
			return finish(value, seq, kind)
		}
	}
	return nil, ErrNotFound
}

// GetMulti reads several keys as one consistent cut: every lookup runs
// against a single pinned version at a single sequence bound, so a
// concurrent writer's updates are either entirely newer than the cut or
// entirely included — no torn multi-reads. Results are positional:
// values[i] / errs[i] answer keys[i] (ErrNotFound per missing key). No
// snapshot is registered — the pin is call-scoped, and a bound taken
// after pinning protects every entry the pinned version can reach.
func (db *DB) GetMulti(getKeys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(getKeys))
	errs := make([]error, len(getKeys))
	fail := func(err error) ([][]byte, []error) {
		for i := range errs {
			errs[i] = err
		}
		return values, errs
	}
	if len(getKeys) == 0 {
		return values, errs
	}
	if db.closedFlag.Load() {
		return fail(ErrClosed)
	}
	start := time.Now()
	pin := db.acquireVersion()
	defer db.releaseVersion(pin)
	if db.closedFlag.Load() {
		return fail(ErrClosed)
	}
	// Loaded after the pin: the sequence counter is ahead of every entry
	// reachable through the pinned version, so the bound forms a closed,
	// consistent prefix of history.
	bound := db.seq.Load()
	for i, key := range getKeys {
		db.st.CountGet()
		values[i], errs[i] = db.getFrom(pin.v, key, bound)
	}
	db.st.RecordOpN(stats.OpGet, time.Since(start), int64(len(getKeys)))
	return values, errs
}

func (db *DB) finishGet(value []byte, kind keys.Kind) ([]byte, error) {
	if kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	if kind == keys.KindValuePtr {
		return db.resolveValue(value)
	}
	// Copy out of arena memory: the caller may hold the value past the
	// arena's lifetime.
	return append([]byte(nil), value...), nil
}

// resolveValue dereferences a value-log pointer entry and returns a copy
// of the value bytes. The caller holds a version pin covering the entry,
// so the segment the pointer names cannot have been reclaimed (GC defers
// frees onto the version chain); a failure here is therefore corruption,
// surfaced as vlog.ErrCorrupt.
func (db *DB) resolveValue(ptr []byte) ([]byte, error) {
	a, ok := vlog.DecodeAddr(ptr)
	if !ok || db.vlog == nil {
		return nil, fmt.Errorf("%w: undecodable pointer entry", vlog.ErrCorrupt)
	}
	_, value, _, err := db.vlog.Read(a)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), value...), nil
}

// Iterator walks the store's live keys in order (newest version of each
// key, tombstones hidden).
type Iterator struct {
	db     *DB
	pin    versionPin
	pinned bool
	// onClose runs once on Close, after any pin release — snapshot-derived
	// iterators use it to drop their reference on the owning Snapshot
	// (they share its pin instead of holding their own).
	onClose func()
	it      iterx.Iterator
	err     error
}

// NewIterator returns an iterator over a consistent-as-possible snapshot
// of the store. The iterator pins a version (an epoch pin — an open
// iterator holds its reader epoch, delaying reclamation exactly like an
// RCU read-side critical section); Close releases it. Callers must Close
// every iterator before closing the store: DB.Close waits for reader
// epochs to drain.
//
// Scans taken while a zero-copy merge is mid-flight may observe a key's
// version through either of the merging tables — the Visible wrapper
// collapses duplicates, and the merge's insertion mark is included so no
// key is skipped.
func (db *DB) NewIterator() *Iterator {
	db.st.CountScan()
	if db.closedFlag.Load() {
		return &Iterator{db: db, it: iterx.NewMerging(), err: ErrClosed}
	}
	pin := db.acquireVersion()
	if db.closedFlag.Load() {
		// Close latched between the pre-check and the pin; back out so
		// the drain in Close is not held up by a doomed iterator.
		db.releaseVersion(pin)
		return &Iterator{db: db, it: iterx.NewMerging(), err: ErrClosed}
	}
	return &Iterator{
		db:     db,
		pin:    pin,
		pinned: true,
		it:     db.versionIterator(pin.v, keys.MaxSeq),
	}
}

// versionIterator assembles the merged, visibility-filtered iterator over
// one version, bounded at maxSeq. The bound/range-tombstone filter layer
// is inserted only when needed, so stores that never call DeleteRange or
// Snapshot keep today's iterator stack unchanged.
func (db *DB) versionIterator(v *version, maxSeq uint64) iterx.Iterator {
	sources := []iterx.Iterator{v.mem.mt.NewIterator()}
	for _, imm := range v.imms {
		sources = append(sources, imm.mt.NewIterator())
	}
	for _, level := range v.levels {
		for _, e := range level {
			sources = append(sources, e.iterators()...)
		}
	}
	if v.repo != nil {
		sources = append(sources, v.repo.NewIterator())
	}
	if db.ssd != nil {
		sources = append(sources, db.ssd.Iterators()...)
	}
	var inner iterx.Iterator = iterx.NewMerging(sources...)
	if dead := deadFn(v.rangeDels); dead != nil || maxSeq != keys.MaxSeq {
		inner = iterx.NewFiltered(inner, maxSeq, dead)
	}
	return iterx.NewVisible(inner)
}

// SeekToFirst positions at the first live key.
func (it *Iterator) SeekToFirst() { it.it.SeekToFirst() }

// Seek positions at the first live key ≥ key.
func (it *Iterator) Seek(key []byte) { it.it.Seek(key) }

// Next advances to the next live key.
func (it *Iterator) Next() { it.it.Next() }

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// Key returns the current key (valid until Next/Close).
func (it *Iterator) Key() []byte { return it.it.Key() }

// Value returns the current value (valid until Next/Close). A pointer
// entry is resolved through the value log transparently; a resolution
// failure (corruption) parks in Err and yields nil.
func (it *Iterator) Value() []byte {
	v := it.it.Value()
	if it.db != nil && it.db.vlog != nil && it.it.Kind() == keys.KindValuePtr {
		resolved, err := it.db.resolveValue(v)
		if err != nil {
			it.err = err
			return nil
		}
		return resolved
	}
	return v
}

// Err returns the iterator's sticky error (ErrClosed when the iterator
// was opened against a closed store).
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's version pin (or, for a snapshot-derived
// iterator, its reference on the owning Snapshot).
func (it *Iterator) Close() {
	if it.pinned {
		it.db.releaseVersion(it.pin)
		it.pinned = false
	}
	if it.onClose != nil {
		fn := it.onClose
		it.onClose = nil
		fn()
	}
}

// Scan invokes fn for up to limit live keys starting at start, stopping
// early if fn returns false. limit ≤ 0 means no limit. The slices passed
// to fn alias store memory and are only valid during the callback.
// Like Get, the scan never touches db.mu.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	t0 := time.Now()
	it := db.NewIterator()
	defer it.Close()
	if it.err != nil {
		return it.err
	}
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	// One sample per scan, covering the whole range (snapshot pin through
	// last key) — the latency a server-side SCAN request experiences.
	db.st.RecordOp(stats.OpScan, time.Since(t0))
	// A mid-scan failure (a pointer entry that would not resolve) parks
	// itself on the iterator; surface it.
	return it.err
}

// WaitIdle blocks until all queued flushes, zero-copy merges, and
// lazy-copy compactions have drained (benchmarks call it between load and
// read phases).
func (db *DB) WaitIdle() {
	db.mu.Lock()
	// A degraded store's background loops have stopped: queued work will
	// never drain, so waiting on it would hang forever.
	for !db.idleLocked() && !db.closed && db.bgErr == nil {
		db.cond.Wait()
	}
	db.mu.Unlock()
	if db.ssd != nil {
		db.ssd.WaitIdle()
	}
}

func (db *DB) idleLocked() bool {
	v := db.current.Load()
	if len(v.imms) > 0 {
		return false
	}
	if len(db.merges) > 0 || db.repoCompacting {
		return false
	}
	for level := 0; level < len(v.levels)-1; level++ {
		if len(v.levels[level]) >= 2 {
			return false
		}
	}
	return len(v.levels[len(v.levels)-1]) == 0
}

// FlushAll forces the active memtable out and waits for the store to
// drain fully (benchmarks and orderly shutdown). It takes commitMu, the
// group-commit leader lock, so the rotation cannot interleave with an
// in-flight group insert.
func (db *DB) FlushAll() error {
	db.commitMu.Lock()
	if err := db.writeGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	fresh, err := db.newMemHandle()
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.Lock()
	if db.current.Load().mem.mt.Empty() {
		db.mu.Unlock()
		db.commitMu.Unlock()
		fresh.mt.Release()
		if fresh.log != nil {
			fresh.log.Release()
		}
		db.WaitIdle()
		return nil
	}
	old := db.current.Load().mem
	db.editVersionLocked(func(v *version) {
		v.imms = append([]*memHandle{old}, v.imms...)
		v.mem = fresh
	})
	err = db.logRotateLocked(fresh)
	db.mu.Unlock()
	db.commitMu.Unlock()
	db.st.CountRotation()
	if err != nil {
		return err
	}
	db.WaitIdle()
	return db.Err()
}

// Close drains background work and shuts the store down. After the
// closed flag latches, Close waits for every reader epoch to drain —
// readers re-validate the flag right after pinning, so in-flight
// Get/Scan calls exit promptly and no snapshot outlives the teardown of
// the SSD tier. An Iterator the caller forgot to Close holds its epoch
// pin and therefore blocks Close by design.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()

	// Let queued work drain before stopping the loops.
	db.WaitIdle()

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.closedFlag.Store(true)
	db.cond.Broadcast()
	db.mu.Unlock()
	db.stopValueLogGC()
	db.wg.Wait()
	db.waitReadersDrained()
	if db.ssd != nil {
		db.ssd.Close()
	}
	return nil
}

// Stats returns the store's cost accounting with device traffic attached.
func (db *DB) Stats() stats.Snapshot {
	s := db.st.Snapshot()
	devs := []stats.DeviceCounters{
		{Name: "dram", BytesRead: db.dram.Counters().BytesRead, BytesWritten: db.dram.Counters().BytesWritten},
	}
	nc := db.nvm.Counters()
	persistent := []stats.DeviceCounters{
		{Name: nc.Name, BytesRead: nc.BytesRead, BytesWritten: nc.BytesWritten},
	}
	if db.ssd != nil {
		dc := db.ssd.Options().Disk.Counters()
		persistent = append(persistent, stats.DeviceCounters{Name: dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten})
	}
	if db.vlogDisk != nil {
		dc := db.vlogDisk.Counters()
		persistent = append(persistent, stats.DeviceCounters{Name: "vlog-" + dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten})
	}
	s.AttachDevices(persistent...)
	s.Devices = append(devs, s.Devices...)
	levels := make([]stats.BloomLevelCounters, len(db.readLevels))
	for i := range db.readLevels {
		rl := &db.readLevels[i]
		levels[i] = stats.BloomLevelCounters{
			Level:          i,
			Probes:         rl.probes.Load(),
			Skips:          rl.skips.Load(),
			FalsePositives: rl.falsePositives.Load(),
			Hits:           rl.hits.Load(),
		}
	}
	live, pending, epoch := db.versionChainGauge()
	s.AttachReadPath(levels, live, pending, epoch)
	db.attachBacklog(&s)
	s.AttachMemory(db.memTarget.Load(), db.current.Load().mem.mt.ApproximateBytes())
	if db.vlog != nil {
		c := db.vlog.Counters()
		s.AttachValueLog(stats.ValueLogCounters{
			Enabled:             true,
			Segments:            c.Segments,
			SegmentBytes:        c.SegmentBytes,
			LiveBytes:           c.LiveBytes,
			Appends:             c.Appends,
			AppendedBytes:       c.AppendedBytes,
			GCRelocations:       c.GCRelocations,
			GCRelocatedBytes:    c.GCRelocatedBytes,
			GCSegmentsReclaimed: c.GCSegmentsReclaimed,
			GCReclaimedBytes:    c.GCReclaimedBytes,
		})
	}
	return s
}

// ResetCounters clears device and cost counters (between bench phases).
func (db *DB) ResetCounters() {
	db.dram.ResetCounters()
	db.nvm.ResetCounters()
	if db.ssd != nil {
		db.ssd.Options().Disk.ResetCounters()
	}
	if db.vlogDisk != nil {
		db.vlogDisk.ResetCounters()
	}
	// Atomic field-wise reset: background flush/compaction goroutines may
	// be updating the recorder concurrently, so a struct copy would race.
	db.st.Reset()
	for i := range db.readLevels {
		rl := &db.readLevels[i]
		rl.probes.Store(0)
		rl.skips.Store(0)
		rl.falsePositives.Store(0)
		rl.hits.Store(0)
	}
}

// NVMUsage returns current and peak NVM footprint in bytes (the elastic
// buffer consumption discussion of §5.4).
func (db *DB) NVMUsage() int64 {
	var total int64
	for _, r := range db.space.Regions() {
		if r.Meter() == vaddr.Meter(db.nvm) {
			total += r.Footprint()
		}
	}
	return total
}

// LevelTableCounts returns the number of tables per elastic-buffer level
// (diagnostics and tests).
func (db *DB) LevelTableCounts() []int {
	v := db.current.Load()
	out := make([]int, len(v.levels))
	for i, l := range v.levels {
		out[i] = len(l)
	}
	return out
}

// RepositoryCount returns the number of unique keys in the repository
// (in-memory mode only).
func (db *DB) RepositoryCount() int64 {
	db.mu.Lock()
	repo := db.repo
	db.mu.Unlock()
	if repo == nil {
		return 0
	}
	return repo.Count()
}

// Recorder exposes the stats recorder for harness integration.
func (db *DB) Recorder() *stats.Recorder { return db.st }
