package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointAndOpenImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")

	opts := smallOpts()
	db := mustOpen(t, opts)
	golden := map[string]string{}
	for i := 0; i < 2500; i++ {
		k := fmt.Sprintf("key-%05d", i%700)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	// The store keeps working after a checkpoint.
	db.Put([]byte("post-checkpoint"), []byte("yes"))
	if v, err := db.Get([]byte("post-checkpoint")); err != nil || string(v) != "yes" {
		t.Fatal("store broken after checkpoint")
	}
	db.Close()

	// A brand-new "process": load the image and verify everything up to
	// the checkpoint.
	re, err := OpenImage(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("restored Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	// post-checkpoint data must NOT be there (written after the image).
	if _, err := re.Get([]byte("post-checkpoint")); err != ErrNotFound {
		t.Errorf("post-checkpoint key visible in image: %v", err)
	}
	// The restored store accepts new writes and checkpoints again.
	re.Put([]byte("second-life"), []byte("ok"))
	path2 := filepath.Join(dir, "store2.img")
	if err := re.Checkpoint(path2); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenImage(path2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if v, err := re2.Get([]byte("second-life")); err != nil || string(v) != "ok" {
		t.Fatal("second-generation image broken")
	}
}

func TestOpenImageRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	os.WriteFile(path, []byte("definitely not an image"), 0o644)
	if _, err := OpenImage(path, smallOpts()); err == nil {
		t.Error("garbage image accepted")
	}
	if _, err := OpenImage(filepath.Join(dir, "missing.img"), smallOpts()); err == nil {
		t.Error("missing image accepted")
	}
}

func TestOpenImageDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte("v"), 64))
	}
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Flip a byte deep inside the image.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := OpenImage(path, opts); err == nil {
		t.Error("corrupted image accepted (checksum miss)")
	}
}

func TestCheckpointWithConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 1500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i%500)), []byte(fmt.Sprintf("v%d", i)))
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if _, err := db.Get([]byte(fmt.Sprintf("key-%04d", 123))); err != nil {
				done <- err
				return
			}
		}
	}()
	path := filepath.Join(dir, "live.img")
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("reader failed during checkpoint: %v", err)
	}
	re, err := OpenImage(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
