package core

import (
	"errors"
	"sync"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/stats"
)

// ErrSnapshotClosed is returned by reads on a closed Snapshot.
var ErrSnapshotClosed = errors.New("miodb: snapshot closed")

// ErrSnapshotUnsupported is returned by Snapshot on SSD-mode stores: the
// on-SSD compactor rewrites tables in place with no version pinning, so a
// long-lived consistent view cannot be guaranteed there. The sentinel
// lives in kvstore so the network client can map wire errors back onto
// the same identity.
var ErrSnapshotUnsupported = kvstore.ErrSnapshotUnsupported

// Snapshot is a long-lived consistent read-only view of the store: every
// read sees exactly the entries committed at capture time, forever, no
// matter how many writes, flushes, zero-copy merges, lazy-copy absorbs,
// or repository compactions happen afterwards.
//
// The mechanism is the store's existing epoch substrate (epoch.go): a
// snapshot holds a version pin, which freezes epoch reclamation — every
// arena, table, and memtable the pinned version references stays mapped
// until the pin is released. On top of the pin, the snapshot carries a
// sequence bound captured under commitMu, so entries newer than the bound
// (which may share skip lists with pinned structures — zero-copy merges
// move nodes, they do not copy them) are filtered out by pure sequence
// comparison on every read path.
//
// Registration feeds the reclamation horizon: while a snapshot with bound
// S is open, no compaction physically drops an entry superseded at a
// sequence number above S (see DB.snapshotHorizon). Close the snapshot —
// and every iterator derived from it — to let reclamation resume. A
// leaked Snapshot blocks DB.Close by design, exactly like a leaked
// Iterator: the caller owns its lifetime.
type Snapshot struct {
	db  *DB
	v   *version
	pin versionPin
	seq uint64 // visibility bound: entries with seq ≤ seq are in the cut

	mu     sync.Mutex
	refs   int // 1 for the handle + 1 per open derived iterator
	closed bool
}

// Snapshot captures a consistent view of the store. The capture runs
// under commitMu — the group-commit leader lock — so the bound is exact:
// every commit is either entirely at or below it, or entirely above.
// O(1): no data is copied, no flush is forced.
func (db *DB) Snapshot() (*Snapshot, error) {
	if db.ssd != nil {
		return nil, ErrSnapshotUnsupported
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	return db.snapshotLocked()
}

// snapshotLocked captures a snapshot with commitMu held (Snapshot and the
// cross-shard SnapshotAll).
func (db *DB) snapshotLocked() (*Snapshot, error) {
	if db.closedFlag.Load() {
		return nil, ErrClosed
	}
	pin := db.acquireVersion()
	if db.closedFlag.Load() {
		// Close latched between the check and the pin; back out so the
		// reader drain in Close is not held up.
		db.releaseVersion(pin)
		return nil, ErrClosed
	}
	s := &Snapshot{db: db, v: pin.v, pin: pin, seq: db.seq.Load(), refs: 1}
	db.registerSnapshot(s)
	return s, nil
}

// SnapshotView adapts Snapshot to the kvstore capability interface the
// network server probes for.
func (db *DB) SnapshotView() (kvstore.SnapshotView, error) {
	s, err := db.Snapshot()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SnapshotAll captures one snapshot per store as a single consistent
// cross-store cut: all commit locks are taken (in slice order — callers
// must use a fixed order, e.g. shard index) before any bound is read, so
// a multi-shard write batch is either entirely inside the cut or entirely
// outside, regardless of which shards it touched. Used by the shard
// router; single-store callers want DB.Snapshot.
func SnapshotAll(dbs []*DB) ([]*Snapshot, error) {
	for _, db := range dbs {
		if db.ssd != nil {
			return nil, ErrSnapshotUnsupported
		}
	}
	for _, db := range dbs {
		db.commitMu.Lock()
	}
	defer func() {
		for _, db := range dbs {
			db.commitMu.Unlock()
		}
	}()
	snaps := make([]*Snapshot, len(dbs))
	for i, db := range dbs {
		s, err := db.snapshotLocked()
		if err != nil {
			for _, prev := range snaps[:i] {
				prev.Close()
			}
			return nil, err
		}
		snaps[i] = s
	}
	return snaps, nil
}

// registerSnapshot adds s to the registry and refreshes the horizon.
func (db *DB) registerSnapshot(s *Snapshot) {
	db.snapMu.Lock()
	if db.snaps == nil {
		db.snaps = make(map[*Snapshot]struct{})
	}
	db.snaps[s] = struct{}{}
	db.recomputeHorizonLocked()
	db.snapMu.Unlock()
}

// unregisterSnapshot removes s and refreshes the horizon.
func (db *DB) unregisterSnapshot(s *Snapshot) {
	db.snapMu.Lock()
	delete(db.snaps, s)
	db.recomputeHorizonLocked()
	db.snapMu.Unlock()
}

func (db *DB) recomputeHorizonLocked() {
	if len(db.snaps) == 0 {
		db.snapMin.Store(0) // sentinel: no snapshots, horizon = MaxSeq
		return
	}
	min := keys.MaxSeq
	for s := range db.snaps {
		if s.seq < min {
			min = s.seq
		}
	}
	// A bound of 0 collides with the sentinel, but it can only belong to a
	// snapshot of an empty store — no entry is ever visible to it, so no
	// physical drop can take anything from it.
	db.snapMin.Store(min)
}

// snapshotHorizon returns the lowest bound of any registered snapshot, or
// keys.MaxSeq when none is open. Compactions may physically drop an entry
// superseded at sequence n only when n ≤ horizon: then every registered
// snapshot also sees the superseding entry (n ≤ its bound), and any
// snapshot registered later bounds at or above every committed sequence
// number — a stale (low) read here is always safe, merely conservative.
func (db *DB) snapshotHorizon() uint64 {
	if h := db.snapMin.Load(); h != 0 {
		return h
	}
	return keys.MaxSeq
}

// Seq returns the snapshot's sequence bound (diagnostics and tests).
func (s *Snapshot) Seq() uint64 { return s.seq }

// acquire takes a reference for the duration of one read (or the lifetime
// of one derived iterator), failing once the snapshot is closed.
func (s *Snapshot) acquire() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSnapshotClosed
	}
	s.refs++
	return nil
}

// release drops a reference; the last one out unregisters the snapshot
// and releases the version pin, letting reclamation resume.
func (s *Snapshot) release() {
	s.mu.Lock()
	s.refs--
	last := s.refs == 0
	s.mu.Unlock()
	if last {
		s.db.unregisterSnapshot(s)
		s.db.releaseVersion(s.pin)
	}
}

// Close releases the snapshot. Reads in flight finish safely; iterators
// already derived stay valid until their own Close (they hold their own
// reference). Idempotent.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.release() // the handle's own reference
	return nil
}

// Get returns the value key had when the snapshot was captured.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if err := s.acquire(); err != nil {
		return nil, err
	}
	defer s.release()
	start := time.Now()
	s.db.st.CountGet()
	value, err := s.db.getFrom(s.v, key, s.seq)
	s.db.st.RecordOp(stats.OpGet, time.Since(start))
	return value, err
}

// GetMulti reads several keys from the snapshot's cut. Results are
// positional: values[i] / errs[i] answer keys[i] (ErrNotFound per missing
// key). All lookups run against the same pinned version and bound, so the
// reads are mutually consistent by construction.
func (s *Snapshot) GetMulti(getKeys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(getKeys))
	errs := make([]error, len(getKeys))
	if len(getKeys) == 0 {
		return values, errs
	}
	if err := s.acquire(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return values, errs
	}
	defer s.release()
	start := time.Now()
	for i, key := range getKeys {
		s.db.st.CountGet()
		values[i], errs[i] = s.db.getFrom(s.v, key, s.seq)
	}
	s.db.st.RecordOpN(stats.OpGet, time.Since(start), int64(len(getKeys)))
	return values, errs
}

// NewIterator returns an iterator over the snapshot's cut. The iterator
// shares the snapshot's version pin through a reference instead of
// holding its own, so it stays valid even if the Snapshot is closed
// first; it must itself be Closed before the store shuts down.
func (s *Snapshot) NewIterator() *Iterator {
	s.db.st.CountScan()
	if err := s.acquire(); err != nil {
		return &Iterator{db: s.db, it: iterx.NewMerging(), err: err}
	}
	return &Iterator{
		db:      s.db,
		onClose: s.release,
		it:      s.db.versionIterator(s.v, s.seq),
	}
}

// Scan invokes fn for up to limit keys ≥ start as they existed at
// capture, stopping early if fn returns false. limit ≤ 0 means no limit.
// The slices passed to fn alias store memory and are only valid during
// the callback.
func (s *Snapshot) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	t0 := time.Now()
	it := s.NewIterator()
	defer it.Close()
	if it.err != nil {
		return it.err
	}
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	s.db.st.RecordOp(stats.OpScan, time.Since(t0))
	return it.err
}
