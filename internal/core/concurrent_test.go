package core

import (
	"fmt"
	"sync"
	"testing"
)

// runConcurrentWriters hammers one DB from `writers` goroutines with a mix
// of single Puts, Deletes, and multi-op batches over disjoint key ranges,
// and returns the expected surviving key→value map plus the total record
// count (every Put/Delete/batch op consumes exactly one sequence number).
func runConcurrentWriters(t *testing.T, db *DB, writers, opsPer int) (map[string]string, int64) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	wants := make([]map[string]string, writers)
	var records int64
	var recordsMu sync.Mutex

	for g := 0; g < writers; g++ {
		wants[g] = make(map[string]string)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := wants[g]
			var n int64
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("w%d-k%04d", g, i%64) // overwrite within the range
				switch i % 8 {
				case 5: // delete an earlier key
					if err := db.Delete([]byte(k)); err != nil {
						errCh <- fmt.Errorf("writer %d delete: %w", g, err)
						return
					}
					delete(want, k)
					n++
				case 7: // batch of 4 consecutive keys
					var b Batch
					for j := 0; j < 4; j++ {
						bk := fmt.Sprintf("w%d-b%04d", g, (i+j)%64)
						bv := fmt.Sprintf("bv%d.%d.%d", g, i, j)
						b.Put([]byte(bk), []byte(bv))
						want[bk] = bv
					}
					if err := db.Write(&b); err != nil {
						errCh <- fmt.Errorf("writer %d batch: %w", g, err)
						return
					}
					n += 4
				default:
					v := fmt.Sprintf("v%d.%d", g, i)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						errCh <- fmt.Errorf("writer %d put: %w", g, err)
						return
					}
					want[k] = v
					n++
				}
			}
			recordsMu.Lock()
			records += n
			recordsMu.Unlock()
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	merged := make(map[string]string)
	for _, w := range wants {
		for k, v := range w {
			merged[k] = v
		}
	}
	return merged, records
}

func checkContents(t *testing.T, db *DB, want map[string]string, label string) {
	t.Helper()
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("%s: Get(%s) = %q, %v (want %q)", label, k, got, err, v)
		}
	}
}

// TestConcurrentWritersGroupCommit is the pipeline's core correctness
// test: 8 writers share one commit queue; afterwards the sequence space is
// dense (every record got exactly one number, none lost or duplicated),
// every acknowledged write is readable, group stats add up, and after a
// simulated crash the WAL replays every acknowledged write.
//
// Run under -race: the writer queue, the leader's bulk insert, and the
// background flusher all touch shared state.
func TestConcurrentWritersGroupCommit(t *testing.T) {
	db := mustOpen(t, smallOpts())

	const writers, opsPer = 8, 300
	want, records := runConcurrentWriters(t, db, writers, opsPer)

	if got := db.seq.Load(); int64(got) != records {
		t.Fatalf("sequence space not dense: last seq %d, %d records committed", got, records)
	}
	st := db.Stats()
	if st.Puts+st.Deletes != records {
		t.Fatalf("op counts %d+%d != %d records", st.Puts, st.Deletes, records)
	}
	if st.GroupedWrites != records {
		t.Fatalf("GroupedWrites = %d, want %d", st.GroupedWrites, records)
	}
	if st.WriteGroups <= 0 || st.WriteGroups > st.GroupedWrites {
		t.Fatalf("WriteGroups = %d (GroupedWrites = %d)", st.WriteGroups, st.GroupedWrites)
	}
	checkContents(t, db, want, "pre-crash")

	// Let flushing/compaction settle, then crash and recover: nothing that
	// was acknowledged may be lost.
	db.WaitIdle()
	img := db.CrashForTest()
	re, err := Recover(img, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.seq.Load(); int64(got) < records {
		t.Fatalf("recovered seq %d < %d committed records", got, records)
	}
	checkContents(t, re, want, "post-recovery")
}

// TestConcurrentWritersSerialAblation runs the same workload with
// GroupCommit disabled: the serialized path must be just as correct, and
// must report no write groups.
func TestConcurrentWritersSerialAblation(t *testing.T) {
	opts := smallOpts()
	opts.GroupCommit = Bool(false)
	db := mustOpen(t, opts)
	defer db.Close()

	want, records := runConcurrentWriters(t, db, 4, 150)
	if got := db.seq.Load(); int64(got) != records {
		t.Fatalf("sequence space not dense: last seq %d, %d records", got, records)
	}
	if st := db.Stats(); st.WriteGroups != 0 || st.GroupedWrites != 0 {
		t.Fatalf("serialized path reported groups: %d/%d", st.WriteGroups, st.GroupedWrites)
	}
	checkContents(t, db, want, "serial")
}
