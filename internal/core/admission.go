package core

import (
	"time"

	"miodb/internal/stats"
)

// defaultSlowdownDelay is the per-commit throttling delay injected in the
// soft admission band when Options.Admission leaves SlowdownDelay unset.
// It is deliberately ≥100µs so the wait is a real sleep that yields the
// CPU to the flusher (nvm.Spin busy-loops below that threshold, which
// would starve the background work the writer is waiting for on a
// single-core host).
const defaultSlowdownDelay = 200 * time.Microsecond

// AdmissionOptions bounds the write path's elastic-buffer backlog. A
// threshold of zero disables that trigger; with both hard triggers off
// the controller only ever throttles, never blocks.
//
// The semantics follow the classic LSM slowdown/stop split, but measured
// honestly: every soft delay is charged to the cumulative-stall counter
// and every hard block to the interval-stall counter, so Table 1 reports
// what writers actually experienced rather than structural zeros.
type AdmissionOptions struct {
	// SoftImms is the immutable-memtable queue depth at or above which
	// each commit pays one SlowdownDelay before proceeding.
	SoftImms int
	// HardImms is the queue depth at or above which the committing leader
	// blocks until flushing retires a memtable (or the store closes or
	// degrades). It bounds DRAM held by rotated memtables to roughly
	// HardImms+1 arenas.
	HardImms int
	// SoftL0Bytes / HardL0Bytes are the same two bands measured on level
	// 0's user bytes — flush output the compactor has not merged down.
	SoftL0Bytes int64
	HardL0Bytes int64
	// SlowdownDelay is the injected soft-band delay per commit
	// (default 200µs).
	SlowdownDelay time.Duration
}

// backlogOf measures a version's write-path debt: the rotated memtables
// awaiting flush and the level-0 tables awaiting merge. Tables currently
// being merged count both sides (the bytes exist until the merge retires
// the sources).
func backlogOf(v *version) (imms int, immBytes int64, l0Tables int, l0Bytes int64) {
	imms = len(v.imms)
	for _, h := range v.imms {
		immBytes += h.mt.ApproximateBytes()
	}
	if len(v.levels) > 0 {
		for _, e := range v.levels[0] {
			l0Tables++
			switch t := e.(type) {
			case tableEntry:
				l0Bytes += t.t.UserBytes()
			case mergeEntry:
				l0Bytes += t.m.New.UserBytes() + t.m.Old.UserBytes()
			}
		}
	}
	return imms, immBytes, l0Tables, l0Bytes
}

func (ac *AdmissionOptions) overHard(imms int, l0Bytes int64) bool {
	return (ac.HardImms > 0 && imms >= ac.HardImms) ||
		(ac.HardL0Bytes > 0 && l0Bytes >= ac.HardL0Bytes)
}

func (ac *AdmissionOptions) overSoft(imms int, l0Bytes int64) bool {
	return (ac.SoftImms > 0 && imms >= ac.SoftImms) ||
		(ac.SoftL0Bytes > 0 && l0Bytes >= ac.SoftL0Bytes)
}

// admitWrite applies admission control ahead of a commit. It runs on the
// committing leader (commitMu held, writeGate already passed) so one
// check covers the whole group and followers never wait twice.
//
// In the hard band the leader sleeps on db.cond, which every
// editVersionLocked broadcast wakes — flush retiring an imm or a merge
// shrinking L0 re-opens admission. Holding commitMu here is safe: the
// flusher and compactors only need db.mu to publish progress, and the
// only rotation that could want commitMu is the blocked leader's own.
// The wait also ends if the store closes or degrades mid-stall, returning
// the gate error so the writer fails the same way writeGate would.
func (db *DB) admitWrite() error {
	ac := db.opts.Admission
	if ac == nil {
		return nil
	}
	imms, _, _, l0Bytes := backlogOf(db.current.Load())
	if ac.overHard(imms, l0Bytes) {
		start := time.Now()
		db.mu.Lock()
		for {
			if err := db.writeGateLocked(); err != nil {
				db.mu.Unlock()
				db.st.AddIntervalStall(time.Since(start))
				return err
			}
			imms, _, _, l0Bytes = backlogOf(db.current.Load())
			if !ac.overHard(imms, l0Bytes) {
				break
			}
			db.cond.Wait()
		}
		db.mu.Unlock()
		db.st.AddIntervalStall(time.Since(start))
		return nil
	}
	if ac.overSoft(imms, l0Bytes) {
		// A real sleep, not a spin: the flusher needs the CPU. Charge the
		// measured elapsed time, not the nominal delay — on a loaded
		// single-core host the timer oversleeps severalfold, and that
		// extra wait is exactly the stall the writer experienced.
		start := time.Now()
		time.Sleep(ac.SlowdownDelay)
		db.st.AddCumulativeStall(time.Since(start))
	}
	return nil
}

// attachBacklog publishes the current version's backlog gauges into a
// stats snapshot.
func (db *DB) attachBacklog(s *stats.Snapshot) {
	imms, immBytes, l0Tables, l0Bytes := backlogOf(db.current.Load())
	s.AttachBacklog(int64(imms), immBytes, int64(l0Tables), l0Bytes)
}
