package core

import (
	"fmt"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/pmtable"
	"miodb/internal/vaddr"
)

// compactLoop is the per-level zero-copy compaction thread (§4.5): as soon
// as its level holds two PMTables, it merges the two oldest and pushes the
// result into the level below. Levels are unbounded, so a slow merge below
// never blocks a merge above — the non-blocking parallel compaction that
// distinguishes MioDB from RocksDB-style parallel compaction.
//
// A persistent device or manifest failure latches the store degraded and
// stops the loop (reads keep being served through the version chain).
func (db *DB) compactLoop(level int) {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for !db.levelNeedsMergeLocked(level) && !db.closed && db.bgErr == nil {
			db.cond.Wait()
		}
		if db.abandon || db.bgErr != nil || (db.closed && !db.levelNeedsMergeLocked(level)) {
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()
		if err := db.mergeOnce(level); err != nil {
			db.degrade(fmt.Sprintf("compaction L%d", level), err)
			return
		}
	}
}

// singleCompactLoop is the ablation counterpart: one goroutine serves
// every level round-robin, plus the lazy-copy duty.
func (db *DB) singleCompactLoop() {
	defer db.wg.Done()
	for {
		worked := false
		for level := 0; level < db.opts.Levels-1; level++ {
			db.mu.Lock()
			need := db.levelNeedsMergeLocked(level) && db.bgErr == nil
			db.mu.Unlock()
			if need {
				if err := db.mergeOnce(level); err != nil {
					db.degrade(fmt.Sprintf("compaction L%d", level), err)
					return
				}
				worked = true
			}
		}
		if worked {
			continue
		}
		db.mu.Lock()
		if db.closed || db.abandon || db.bgErr != nil {
			db.mu.Unlock()
			return
		}
		if !db.anyMergeNeededLocked() {
			db.cond.Wait()
		}
		stop := db.closed || db.abandon || db.bgErr != nil
		db.mu.Unlock()
		if stop {
			return
		}
	}
}

func (db *DB) anyMergeNeededLocked() bool {
	for level := 0; level < db.opts.Levels-1; level++ {
		if db.levelNeedsMergeLocked(level) {
			return true
		}
	}
	return false
}

// levelNeedsMergeLocked reports whether the level has two settled tables
// ready to merge (an in-flight merge in the level defers further picks).
func (db *DB) levelNeedsMergeLocked(level int) bool {
	if db.mergeActiveLocked(level) {
		return false
	}
	n := 0
	for _, e := range db.current.Load().levels[level] {
		if _, ok := e.(tableEntry); ok {
			n++
		}
	}
	return n >= 2
}

func (db *DB) mergeActiveLocked(level int) bool {
	for _, am := range db.merges {
		if am.level == level {
			return true
		}
	}
	return false
}

// mergeOnce zero-copy-merges the two oldest tables of the level and
// installs the result in the level below.
func (db *DB) mergeOnce(level int) error {
	start := time.Now()

	// Pre-gate on the device: the zero-copy merge body is raw pointer
	// migration with no failure seam of its own, so the modeled device
	// either admits the operation here or refuses it before any node
	// has moved.
	if err := db.gateNVMWrite(64); err != nil {
		return fmt.Errorf("device: %w", err)
	}

	// Pick the two oldest settled tables (the tail of the newest-first
	// list) and replace them by a merge entry readers know how to probe.
	db.mu.Lock()
	entries := db.current.Load().levels[level]
	if db.mergeActiveLocked(level) || len(entries) < 2 {
		db.mu.Unlock()
		return nil
	}
	oldE, ok1 := entries[len(entries)-1].(tableEntry)
	newE, ok2 := entries[len(entries)-2].(tableEntry)
	if !ok1 || !ok2 {
		db.mu.Unlock()
		return nil
	}
	m := pmtable.NewMerge(newE.t, oldE.t)
	// Reclamation gates (evaluated by the merge goroutine against live
	// atomics): a superseded version is physically dropped only when every
	// registered snapshot already sees the superseding write, and an entry
	// is dead only when a range tombstone no snapshot can predate covers
	// it. Both default open (horizon = MaxSeq) when no snapshot is live.
	m.Drop = func(newerSeq uint64) bool { return newerSeq <= db.snapshotHorizon() }
	m.Dead = func(key []byte, seq uint64, kind keys.Kind) bool {
		v := db.current.Load()
		if len(v.rangeDels) == 0 {
			return false
		}
		return coveredAt(v.rangeDels, key, seq, db.snapshotHorizon())
	}
	if db.vlog != nil {
		m.OnDrop = db.onEntryDrop
	}
	m.SetPersistSlot(db.manifest.region(), db.markSlots[level])
	// Clear any mark a previous merge of this level left behind before
	// the pairing becomes durable: a crash between the mergeStart record
	// and the merge's first own mark write must not resume from a stale
	// address.
	db.manifest.region().Store64(db.markSlots[level], uint64(vaddr.NilAddr))
	am := &activeMerge{level: level, merge: m, newID: newE.t.ID, oldID: oldE.t.ID}
	db.merges = append(db.merges, am)
	// Publish the merge on both tables before any node migrates, so
	// readers holding pre-merge version snapshots switch to the
	// mark-aware read protocol (see pmtable.Table.GetSafe).
	newE.t.SetActiveMerge(m)
	oldE.t.SetActiveMerge(m)
	db.editVersionLocked(func(v *version) {
		lv := v.levels[level]
		v.levels[level] = append(lv[:len(lv)-2:len(lv)-2], mergeEntry{m})
	})
	if err := db.logMergeStartLocked(level, am.newID, am.oldID); err != nil {
		// Unwind under the same mu hold: acquireVersion needs mu, so no
		// reader has observed the merge version, and no node migrated.
		for i, a := range db.merges {
			if a == am {
				db.merges = append(db.merges[:i], db.merges[i+1:]...)
				break
			}
		}
		db.editVersionLocked(func(v *version) {
			lv := v.levels[level]
			for i, e := range lv {
				if me, ok := e.(mergeEntry); ok && me.m == m {
					rest := append([]levelEntry(nil), lv[:i]...)
					rest = append(rest, newE, oldE)
					rest = append(rest, lv[i+1:]...)
					v.levels[level] = rest
					break
				}
			}
		})
		newE.t.SetActiveMerge(nil)
		oldE.t.SetActiveMerge(nil)
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	db.mu.Unlock()

	var result *pmtable.Table
	var release func()
	if *db.opts.ZeroCopyMerge {
		result = m.Run()
	} else {
		var err error
		result, release, err = db.copyMerge(m)
		if err != nil {
			// The pair stays as a (never-started) merge entry: readers
			// probe it correctly through the merge protocol, and the
			// logged mergeStart lets recovery resume it from the cleared
			// mark. The store is about to degrade anyway.
			return fmt.Errorf("copy merge: %w", err)
		}
	}

	// Install: drop the merge entry from this level, publish the result
	// as the newest table of the next level (everything arriving from
	// above is newer than the level's current content).
	db.mu.Lock()
	for i, a := range db.merges {
		if a == am {
			db.merges = append(db.merges[:i], db.merges[i+1:]...)
			break
		}
	}
	db.editVersionLocked(func(v *version) {
		lv := v.levels[level]
		for i, e := range lv {
			if me, ok := e.(mergeEntry); ok && me.m == m {
				v.levels[level] = append(lv[:i:i], lv[i+1:]...)
				break
			}
		}
		v.levels[level+1] = append([]levelEntry{tableEntry{result}}, v.levels[level+1]...)
	})
	// The merge is over: redirect stale readers (version snapshots that
	// still hold the drained pair) to the result. Raw reads on the pair
	// would be wrong twice over — the Old skeleton's bloom filter does
	// not cover nodes migrated in from the New side (false negatives for
	// keys its list does hold), and the shared list may soon be migrating
	// again under the result's own next merge. The activeMerge pointers
	// stay set so no reader can ever observe a drained table as a plain
	// one; Merge.Get and the forward chain both land on the live result.
	m.New.SetForward(result)
	m.Old.SetForward(result)
	// The result now owns every arena; sever the drained skeletons'
	// ownership under the structural lock (manifest snapshots read
	// Regions() under the same lock).
	m.New.DropRegions()
	m.Old.DropRegions()
	db.levelStats[level].merges++
	db.levelStats[level].nodesMoved += m.Moved()
	db.levelStats[level].garbageBytes += m.Garbage()
	if err := db.logMergeDoneLocked(level, am.newID, am.oldID, tableToState(result)); err != nil {
		// In-memory state is already final and consistent for readers;
		// recovery replays the durable mergeStart and resumes the merge
		// from its persisted mark (an already-drained merge resumes as a
		// no-op). Source arenas were never released, so nothing the
		// recoverable image references is lost.
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	if release != nil {
		// Copy-merge ablation: the source arenas are now unreferenced by
		// the durable manifest; queue them for release once every reader
		// version referencing the pair drains.
		db.queueReleaseLocked(release)
	}
	db.mu.Unlock()

	db.st.AddCompaction(time.Since(start))
	// Dropped pointer entries may have pushed a segment past the GC
	// threshold.
	db.kickValueLogGC()
	return nil
}

// copyMerge is the non-zero-copy ablation: physically rebuild the pair
// into a fresh arena. The returned release func frees the source arenas;
// the caller must only queue it after the merge is durably logged.
func (db *DB) copyMerge(m *pmtable.Merge) (*pmtable.Table, func(), error) {
	// Gate before building: the merging iterator is stateful, so the
	// build itself must run at most once.
	if err := db.gateNVMWrite(64); err != nil {
		return nil, nil, err
	}
	var merged iterx.Iterator = iterx.NewMerging(m.New.NewIterator(), m.Old.NewIterator())
	// Parity with the zero-copy path's Dead hook: omit range-tombstone
	//-covered entries from the rebuilt table when no registered snapshot
	// could still read them. Pinned versions keep reading the source pair.
	if dels := db.current.Load().rangeDels; len(dels) > 0 {
		horizon := db.snapshotHorizon()
		merged = iterx.NewFiltered(merged, keys.MaxSeq, func(key []byte, seq uint64) bool {
			return coveredAt(dels, key, seq, horizon)
		})
	}
	result, err := pmtable.Build(db.nvm, db.opts.ChunkSize, merged, m.New.ID, db.fp)
	if err != nil {
		return nil, nil, err
	}
	result.MinSeq, result.MaxSeq = m.Old.MinSeq, m.New.MaxSeq
	newT, oldT := m.New, m.Old
	return result, func() {
		newT.ReleaseRegions(db.nvm)
		oldT.ReleaseRegions(db.nvm)
	}, nil
}

// lazyLoop drains the last buffer level into the repository (in-memory
// mode) or into L0 SSTables on the SSD (hierarchy mode), oldest table
// first — the lazy-copy compaction of §4.4. Afterwards it releases every
// arena the absorbed table owned, once no reader version references them.
func (db *DB) lazyLoop() {
	defer db.wg.Done()
	last := db.opts.Levels - 1
	for {
		db.mu.Lock()
		for !db.lazyWorkLocked(last) && !db.closed && db.bgErr == nil {
			db.cond.Wait()
		}
		if db.abandon || db.bgErr != nil || (db.closed && !db.lazyWorkLocked(last)) {
			db.mu.Unlock()
			return
		}
		entries := db.current.Load().levels[last]
		e := entries[len(entries)-1].(tableEntry) // oldest
		db.mu.Unlock()

		if err := db.lazyOne(last, e.t); err != nil {
			db.degrade("lazy compaction", err)
			return
		}
	}
}

// lazyWorkLocked reports whether the bottom buffer level has a settled
// table to absorb.
func (db *DB) lazyWorkLocked(last int) bool {
	entries := db.current.Load().levels[last]
	if len(entries) == 0 {
		return false
	}
	_, ok := entries[len(entries)-1].(tableEntry)
	return ok
}

func (db *DB) lazyOne(last int, t *pmtable.Table) error {
	start := time.Now()
	db.mu.Lock()
	repo := db.repo
	db.mu.Unlock()
	if repo != nil {
		// Absorb is retry-safe: a re-absorbed node whose (key, seq) is
		// already present is skipped, so a transient mid-absorb failure
		// re-runs without duplicating entries.
		// Skip entries a live range tombstone covers (pinned versions keep
		// reading them through the still-referenced source table), and
		// unlink superseded repository nodes only below the snapshot
		// horizon. Both predicates read live atomics at call time.
		policy := pmtable.AbsorbPolicy{
			Skip: func(key []byte, seq uint64, kind keys.Kind) bool {
				return covered(db.current.Load().rangeDels, key, seq)
			},
			Drop: func(newerSeq uint64) bool { return newerSeq <= db.snapshotHorizon() },
		}
		if db.vlog != nil {
			policy.OnDrop = db.onEntryDrop
		}
		if err := db.runDeviceOp(func() error {
			if out := db.nvm.CheckWrite(64); out.Err != nil {
				return out.Err
			}
			return repo.AbsorbWith(t, policy)
		}); err != nil {
			return fmt.Errorf("absorb: %w", err)
		}
	} else {
		// DRAM-NVM-SSD mode: serialize the PMTable into an L0 SSTable.
		// A fresh iterator per attempt keeps the retry self-contained.
		// Range-tombstone-covered entries never reach the SSD (snapshots
		// are unsupported in this mode, so no horizon gate applies —
		// tombstones themselves stay registered forever for the entries
		// already below).
		if err := db.runDeviceOp(func() error {
			var src iterx.Iterator = t.NewIterator()
			if dead := deadFn(db.current.Load().rangeDels); dead != nil {
				src = iterx.NewFiltered(src, keys.MaxSeq, dead)
			}
			return db.ssd.FlushToL0(src)
		}); err != nil {
			return fmt.Errorf("flush to L0: %w", err)
		}
		t.MarkReclaimable()
	}

	db.mu.Lock()
	db.editVersionLocked(func(v *version) {
		lv := v.levels[last]
		for i, e := range lv {
			if te, ok := e.(tableEntry); ok && te.t == t {
				v.levels[last] = append(lv[:i:i], lv[i+1:]...)
				break
			}
		}
	})
	db.levelStats[last].merges++
	db.levelStats[last].nodesMoved += t.Count()
	db.levelStats[last].garbageBytes += t.Garbage()
	if err := db.logLazyDoneLocked(last, t.ID); err != nil {
		// The durable manifest still lists the table in its level; its
		// arenas must survive for recovery (re-absorbing on recovery is
		// harmless — see Absorb's idempotence). Leak rather than lose.
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	// The paper's lazy memory freeing: every arena the absorbed table
	// accumulated across its zero-copy merges is returned at once, after
	// the last reader drains — and only now that the absorption is
	// durably logged.
	db.queueReleaseLocked(func() {
		t.ReleaseRegions(db.nvm)
	})
	db.mu.Unlock()

	if err := db.maybeCompactRepo(); err != nil {
		return err
	}
	db.st.AddCompaction(time.Since(start))
	db.kickValueLogGC()
	return nil
}

// maybeCompactRepo rebuilds the repository when superseded nodes dominate
// it, bounding the NVM footprint of update-heavy workloads. Triggering
// only when garbage exceeds 2× live data keeps the amortized extra write
// traffic below 0.5× of the updates that created the garbage.
func (db *DB) maybeCompactRepo() error {
	db.mu.Lock()
	repo := db.repo
	compacting := db.repoCompacting
	db.mu.Unlock()
	if repo == nil || compacting {
		return nil
	}
	garbage, live := repo.GarbageBytes(), repo.UserBytes()
	if garbage < 4*db.opts.MemTableSize || garbage < 2*live {
		return nil
	}
	db.mu.Lock()
	db.repoCompacting = true
	db.mu.Unlock()

	// Capture the tombstone set before rebuilding: the fresh repository
	// applies exactly these (registration is seq-ordered, so the captured
	// slice is the complete prefix up to its last seq — the basis for the
	// repoAppliedSeq bound below). The fresh object has no readers yet, so
	// coverage applies unconditionally — no horizon gate: pinned snapshots
	// keep the old repository object, and later snapshots bound at or
	// above every captured tombstone.
	dels := db.current.Load().rangeDels
	var dead func(key []byte, seq uint64, kind keys.Kind) bool
	if len(dels) > 0 {
		dead = func(key []byte, seq uint64, kind keys.Kind) bool {
			return covered(dels, key, seq)
		}
	}

	// Gate before rebuilding (retry-safe); the rebuild itself runs at
	// most once so a transient fault cannot leak half-built arenas.
	var fresh *pmtable.Repository
	var onDrop func(value []byte, kind keys.Kind)
	if db.vlog != nil {
		onDrop = db.onEntryDrop
	}
	err := db.gateNVMWrite(64)
	if err == nil {
		fresh, err = repo.CompactedWith(db.opts.ChunkSize, dead, onDrop)
	}
	if err != nil {
		// Clear the latch on the failure path too: leaving it set would
		// wedge WaitIdle and block any future rebuild for good.
		db.mu.Lock()
		db.repoCompacting = false
		db.cond.Broadcast()
		db.mu.Unlock()
		return fmt.Errorf("repo compact: %w", err)
	}

	db.mu.Lock()
	db.repoCompacting = false
	old := db.repo
	db.repo = fresh
	db.editVersionLocked(func(v *version) {
		v.repo = fresh
	})
	if err := db.logRepoSwapLocked(fresh.Region().Index(), uint64(fresh.Head())); err != nil {
		// The durable manifest still points at the old repository; it
		// must never be released (reads go through the fresh one, which
		// holds the same live content).
		db.cond.Broadcast()
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	db.queueReleaseLocked(func() {
		old.Release()
	})
	if len(dels) > 0 && dels[len(dels)-1].seq > db.repoAppliedSeq {
		db.repoAppliedSeq = dels[len(dels)-1].seq
	}
	if err := db.gcRangeTombstonesLocked(); err != nil {
		db.cond.Broadcast()
		db.mu.Unlock()
		return fmt.Errorf("manifest: %w", err)
	}
	db.cond.Broadcast()
	db.mu.Unlock()
	return nil
}
