package core

import (
	"time"

	"miodb/internal/iterx"
	"miodb/internal/pmtable"
)

// compactLoop is the per-level zero-copy compaction thread (§4.5): as soon
// as its level holds two PMTables, it merges the two oldest and pushes the
// result into the level below. Levels are unbounded, so a slow merge below
// never blocks a merge above — the non-blocking parallel compaction that
// distinguishes MioDB from RocksDB-style parallel compaction.
func (db *DB) compactLoop(level int) {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for !db.levelNeedsMergeLocked(level) && !db.closed {
			db.cond.Wait()
		}
		if db.abandon || (db.closed && !db.levelNeedsMergeLocked(level)) {
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()
		db.mergeOnce(level)
	}
}

// singleCompactLoop is the ablation counterpart: one goroutine serves
// every level round-robin, plus the lazy-copy duty.
func (db *DB) singleCompactLoop() {
	defer db.wg.Done()
	for {
		worked := false
		for level := 0; level < db.opts.Levels-1; level++ {
			db.mu.Lock()
			need := db.levelNeedsMergeLocked(level)
			db.mu.Unlock()
			if need {
				db.mergeOnce(level)
				worked = true
			}
		}
		if worked {
			continue
		}
		db.mu.Lock()
		if db.closed || db.abandon {
			db.mu.Unlock()
			return
		}
		if !db.anyMergeNeededLocked() {
			db.cond.Wait()
		}
		stop := db.closed || db.abandon
		db.mu.Unlock()
		if stop {
			return
		}
	}
}

func (db *DB) anyMergeNeededLocked() bool {
	for level := 0; level < db.opts.Levels-1; level++ {
		if db.levelNeedsMergeLocked(level) {
			return true
		}
	}
	return false
}

// levelNeedsMergeLocked reports whether the level has two settled tables
// ready to merge (an in-flight merge in the level defers further picks).
func (db *DB) levelNeedsMergeLocked(level int) bool {
	if db.mergeActiveLocked(level) {
		return false
	}
	n := 0
	for _, e := range db.current.levels[level] {
		if _, ok := e.(tableEntry); ok {
			n++
		}
	}
	return n >= 2
}

func (db *DB) mergeActiveLocked(level int) bool {
	for _, am := range db.merges {
		if am.level == level {
			return true
		}
	}
	return false
}

// mergeOnce zero-copy-merges the two oldest tables of the level and
// installs the result in the level below.
func (db *DB) mergeOnce(level int) {
	start := time.Now()

	// Pick the two oldest settled tables (the tail of the newest-first
	// list) and replace them by a merge entry readers know how to probe.
	db.mu.Lock()
	entries := db.current.levels[level]
	if db.mergeActiveLocked(level) || len(entries) < 2 {
		db.mu.Unlock()
		return
	}
	oldE, ok1 := entries[len(entries)-1].(tableEntry)
	newE, ok2 := entries[len(entries)-2].(tableEntry)
	if !ok1 || !ok2 {
		db.mu.Unlock()
		return
	}
	m := pmtable.NewMerge(newE.t, oldE.t)
	m.SetPersistSlot(db.manifest.region(), db.markSlots[level])
	am := &activeMerge{level: level, merge: m, newID: newE.t.ID, oldID: oldE.t.ID}
	db.merges = append(db.merges, am)
	// Publish the merge on both tables before any node migrates, so
	// readers holding pre-merge version snapshots switch to the
	// mark-aware read protocol (see pmtable.Table.GetSafe).
	newE.t.SetActiveMerge(m)
	oldE.t.SetActiveMerge(m)
	db.editVersionLocked(func(v *version) {
		lv := v.levels[level]
		v.levels[level] = append(lv[:len(lv)-2:len(lv)-2], mergeEntry{m})
	})
	db.logMergeStartLocked(level, am.newID, am.oldID)
	db.mu.Unlock()

	var result *pmtable.Table
	if *db.opts.ZeroCopyMerge {
		result = m.Run()
	} else {
		result = db.copyMerge(m)
	}

	// Install: drop the merge entry from this level, publish the result
	// as the newest table of the next level (everything arriving from
	// above is newer than the level's current content).
	db.mu.Lock()
	for i, a := range db.merges {
		if a == am {
			db.merges = append(db.merges[:i], db.merges[i+1:]...)
			break
		}
	}
	db.editVersionLocked(func(v *version) {
		lv := v.levels[level]
		for i, e := range lv {
			if me, ok := e.(mergeEntry); ok && me.m == m {
				v.levels[level] = append(lv[:i:i], lv[i+1:]...)
				break
			}
		}
		v.levels[level+1] = append([]levelEntry{tableEntry{result}}, v.levels[level+1]...)
	})
	// The merge is over: redirect stale readers (version snapshots that
	// still hold the drained pair) to the result. Raw reads on the pair
	// would be wrong twice over — the Old skeleton's bloom filter does
	// not cover nodes migrated in from the New side (false negatives for
	// keys its list does hold), and the shared list may soon be migrating
	// again under the result's own next merge. The activeMerge pointers
	// stay set so no reader can ever observe a drained table as a plain
	// one; Merge.Get and the forward chain both land on the live result.
	m.New.SetForward(result)
	m.Old.SetForward(result)
	// The result now owns every arena; sever the drained skeletons'
	// ownership under the structural lock (manifest snapshots read
	// Regions() under the same lock).
	m.New.DropRegions()
	m.Old.DropRegions()
	db.levelStats[level].merges++
	db.levelStats[level].nodesMoved += m.Moved()
	db.levelStats[level].garbageBytes += m.Garbage()
	db.logMergeDoneLocked(level, am.newID, am.oldID, tableToState(result))
	db.mu.Unlock()

	db.st.AddCompaction(time.Since(start))
}

// copyMerge is the non-zero-copy ablation: physically rebuild the pair
// into a fresh arena, then release the source arenas (deferred).
func (db *DB) copyMerge(m *pmtable.Merge) *pmtable.Table {
	merged := iterx.NewMerging(m.New.NewIterator(), m.Old.NewIterator())
	result, err := pmtable.Build(db.nvm, db.opts.ChunkSize, merged, m.New.ID, db.fp)
	if err != nil {
		panic(err)
	}
	result.MinSeq, result.MaxSeq = m.Old.MinSeq, m.New.MaxSeq
	newT, oldT := m.New, m.Old
	db.mu.Lock()
	db.current.releaseFns = append(db.current.releaseFns, func() {
		newT.ReleaseRegions(db.nvm)
		oldT.ReleaseRegions(db.nvm)
	})
	db.mu.Unlock()
	return result
}

// lazyLoop drains the last buffer level into the repository (in-memory
// mode) or into L0 SSTables on the SSD (hierarchy mode), oldest table
// first — the lazy-copy compaction of §4.4. Afterwards it releases every
// arena the absorbed table owned, once no reader version references them.
func (db *DB) lazyLoop() {
	defer db.wg.Done()
	last := db.opts.Levels - 1
	for {
		db.mu.Lock()
		for !db.lazyWorkLocked(last) && !db.closed {
			db.cond.Wait()
		}
		if db.abandon || (db.closed && !db.lazyWorkLocked(last)) {
			db.mu.Unlock()
			return
		}
		entries := db.current.levels[last]
		e := entries[len(entries)-1].(tableEntry) // oldest
		db.mu.Unlock()

		db.lazyOne(last, e.t)
	}
}

// lazyWorkLocked reports whether the bottom buffer level has a settled
// table to absorb.
func (db *DB) lazyWorkLocked(last int) bool {
	entries := db.current.levels[last]
	if len(entries) == 0 {
		return false
	}
	_, ok := entries[len(entries)-1].(tableEntry)
	return ok
}

func (db *DB) lazyOne(last int, t *pmtable.Table) {
	start := time.Now()
	db.mu.Lock()
	repo := db.repo
	db.mu.Unlock()
	if repo != nil {
		if err := repo.Absorb(t); err != nil {
			panic(err)
		}
	} else {
		// DRAM-NVM-SSD mode: serialize the PMTable into an L0 SSTable.
		if err := db.ssd.FlushToL0(t.NewIterator()); err != nil {
			panic(err)
		}
		t.MarkReclaimable()
	}

	db.mu.Lock()
	db.editVersionLocked(func(v *version) {
		lv := v.levels[last]
		for i, e := range lv {
			if te, ok := e.(tableEntry); ok && te.t == t {
				v.levels[last] = append(lv[:i:i], lv[i+1:]...)
				break
			}
		}
	}, func() {
		// The paper's lazy memory freeing: every arena the absorbed
		// table accumulated across its zero-copy merges is returned at
		// once, after the last reader drains.
		t.ReleaseRegions(db.nvm)
	})
	db.levelStats[last].merges++
	db.levelStats[last].nodesMoved += t.Count()
	db.levelStats[last].garbageBytes += t.Garbage()
	db.logLazyDoneLocked(last, t.ID)
	db.mu.Unlock()

	db.maybeCompactRepo()
	db.st.AddCompaction(time.Since(start))
}

// maybeCompactRepo rebuilds the repository when superseded nodes dominate
// it, bounding the NVM footprint of update-heavy workloads. Triggering
// only when garbage exceeds 2× live data keeps the amortized extra write
// traffic below 0.5× of the updates that created the garbage.
func (db *DB) maybeCompactRepo() {
	db.mu.Lock()
	repo := db.repo
	db.mu.Unlock()
	if repo == nil {
		return
	}
	garbage, live := repo.GarbageBytes(), repo.UserBytes()
	if garbage < 4*db.opts.MemTableSize || garbage < 2*live {
		return
	}
	db.mu.Lock()
	db.repoCompacting = true
	db.mu.Unlock()
	fresh, err := repo.Compacted(db.opts.ChunkSize)
	if err != nil {
		panic(err)
	}
	db.mu.Lock()
	db.repoCompacting = false
	old := db.repo
	db.repo = fresh
	db.editVersionLocked(func(v *version) {
		v.repo = fresh
	}, func() {
		old.Release()
	})
	db.logRepoSwapLocked(fresh.Region().Index(), uint64(fresh.Head()))
	db.mu.Unlock()
}
