package core

import "miodb/internal/stats"

// Dynamic memtable sizing: the memory governor's per-engine knob.
//
// A DB's active memtable always keeps the capacity it was created with;
// SetMemTableTarget only changes what the *next* memtable is built with
// at the next rotation boundary (makeRoomForWrite, FlushAll, Checkpoint).
// This keeps the resize protocol trivially safe — no arena ever grows or
// shrinks under a concurrent group insert — at the cost of one memtable
// of lag between a governor decision and its effect, which is exactly
// the granularity the governor's heat signal (rotations, flushes) moves
// at anyway.

const (
	// minMemTableTarget floors SetMemTableTarget: below one 4 KB page a
	// memtable cannot hold a single typical entry and the store would
	// rotate on every write.
	minMemTableTarget = 4 << 10

	// maxArenaChunks caps the dynamic target at this many arena chunks.
	// ChunkSize is fixed at Open (the WAL, repository, and every arena
	// share it), so a growing target must respect what the fixed chunk
	// size can serve: withDefaults guarantees ChunkSize ≥ MemTableSize/4
	// (see options.go), which makes maxArenaChunks × ChunkSize ≥ the
	// configured MemTableSize for every legal configuration — the
	// governor can always restore at least the static size — while
	// keeping one-piece flushing a handful-of-chunks bulk copy.
	maxArenaChunks = 4
)

// MemTableTargetBounds returns the [min, max] range SetMemTableTarget
// clamps to for this DB's fixed ChunkSize.
func (db *DB) MemTableTargetBounds() (min, max int64) {
	return minMemTableTarget, maxArenaChunks * int64(db.opts.ChunkSize)
}

// SetMemTableTarget sets the capacity of the next memtable, clamped to
// MemTableTargetBounds, and returns the applied value. The change takes
// effect at the next rotation, never mid-arena. Safe for concurrent use;
// a DB that never sees this call behaves byte-for-byte like a static
// MemTableSize configuration.
func (db *DB) SetMemTableTarget(bytes int64) int64 {
	lo, hi := db.MemTableTargetBounds()
	if bytes < lo {
		bytes = lo
	}
	if bytes > hi {
		bytes = hi
	}
	db.memTarget.Store(bytes)
	return bytes
}

// MemTableTarget returns the capacity the next memtable will be built
// with.
func (db *DB) MemTableTarget() int64 { return db.memTarget.Load() }

// Heat samples the write-pressure counters the memory governor polls
// every tick: cumulative user bytes, flush count/bytes, and memtable
// rotations. It is a handful of atomic loads — cheap enough for
// millisecond-scale polling, unlike a full Stats snapshot.
func (db *DB) Heat() stats.Heat { return db.st.Heat() }
