package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// smallOpts forces frequent flushes and merges so short tests exercise the
// whole pipeline.
func smallOpts() Options {
	return Options{
		MemTableSize:   8 << 10,
		ChunkSize:      32 << 10,
		Levels:         4,
		FilterCapacity: 1 << 12,
	}
}

func mustOpen(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBasicPutGetDelete(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("Get(absent) err = %v", err)
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("hello")); err != ErrNotFound {
		t.Fatalf("Get after Delete err = %v", err)
	}
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	k := []byte("key")
	for i := 0; i < 50; i++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get(k)
	if err != nil || string(v) != "v49" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestDataSurvivesFullPipeline(t *testing.T) {
	// Write enough to force many flushes, zero-copy merges through every
	// level, and lazy copies into the repository; verify everything.
	db := mustOpen(t, smallOpts())
	defer db.Close()

	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(1))
	val := make([]byte, 100)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(2000))
		rnd.Read(val)
		v := fmt.Sprintf("%x", val[:8]) + fmt.Sprintf("-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
		if i%13 == 0 {
			dk := fmt.Sprintf("key-%05d", rnd.Intn(2000))
			if err := db.Delete([]byte(dk)); err != nil {
				t.Fatal(err)
			}
			delete(golden, dk)
		}
	}
	db.WaitIdle()

	// Much of the data must have reached the repository by now.
	if db.RepositoryCount() == 0 {
		t.Error("nothing reached the repository")
	}
	for k, v := range golden {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	// Deleted keys stay dead.
	for k := range golden {
		_ = k
		break
	}
}

func TestScanMatchesModel(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(1000))
		v := fmt.Sprintf("val-%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
		if i%17 == 0 {
			dk := fmt.Sprintf("key-%05d", rnd.Intn(1000))
			db.Delete([]byte(dk))
			delete(golden, dk)
		}
	}
	db.WaitIdle()

	seen := map[string]string{}
	var prev []byte
	it := db.NewIterator()
	defer it.Close()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := it.Key()
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		seen[string(k)] = string(it.Value())
	}
	if len(seen) != len(golden) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(golden))
	}
	for k, v := range golden {
		if seen[k] != v {
			t.Fatalf("scan[%s] = %q, want %q", k, seen[k], v)
		}
	}

	// Bounded scan from a midpoint.
	n := 0
	err := db.Scan([]byte("key-00500"), 10, func(k, v []byte) bool {
		if bytes.Compare(k, []byte("key-00500")) < 0 {
			t.Errorf("Scan yielded %q before start", k)
		}
		n++
		return true
	})
	if err != nil || n > 10 {
		t.Fatalf("bounded scan: n=%d err=%v", n, err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()

	const nKeys = 500
	// Seed all keys so readers always find them.
	for i := 0; i < nKeys; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v-init"))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", rnd.Intn(nKeys))
				v, err := db.Get([]byte(k))
				if err != nil {
					select {
					case errCh <- fmt.Errorf("Get(%s): %v", k, err):
					default:
					}
					return
				}
				if !bytes.HasPrefix(v, []byte("v-")) {
					select {
					case errCh <- fmt.Errorf("Get(%s) = %q", k, v):
					default:
					}
					return
				}
			}
		}(g)
	}
	// Scanner goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it := db.NewIterator()
			var prev []byte
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
					select {
					case errCh <- fmt.Errorf("scan disorder at %q", it.Key()):
					default:
					}
					it.Close()
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
			it.Close()
		}
	}()

	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%04d", rnd.Intn(nKeys))
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	db.WaitIdle()
}

func TestLevelSeqOrderingInvariant(t *testing.T) {
	// Any table in level i must hold strictly newer sequences than any
	// table in level i+1 — the invariant the first-hit-wins read path
	// depends on.
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 4000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i%1500)), bytes.Repeat([]byte("v"), 50))
	}
	db.WaitIdle()

	db.mu.Lock()
	defer db.mu.Unlock()
	prevMin := uint64(1 << 62)
	for level, entries := range db.current.Load().levels {
		for _, e := range entries {
			te, ok := e.(tableEntry)
			if !ok {
				continue
			}
			if te.t.MaxSeq >= prevMin {
				t.Fatalf("level %d table [%d,%d] overlaps newer level (prevMin=%d)",
					level, te.t.MinSeq, te.t.MaxSeq, prevMin)
			}
		}
		// Entries within a level are newest-first.
		for i := 1; i < len(entries); i++ {
			if entries[i].newestSeq() >= entries[i-1].newestSeq() {
				t.Fatalf("level %d entries not newest-first", level)
			}
		}
		if len(entries) > 0 {
			if ms := entries[len(entries)-1]; true {
				_ = ms
			}
			// Update prevMin to the oldest minSeq in this level.
			for _, e := range entries {
				if te, ok := e.(tableEntry); ok && te.t.MinSeq < prevMin {
					prevMin = te.t.MinSeq
				}
			}
		}
	}
}

func TestWriteAmplificationBoundedInMemory(t *testing.T) {
	// The paper's headline WA result: WAL(1×) + one-piece flush(~1×) +
	// lazy copy(≤1×) + pointer traffic ⇒ ≈3, far below classic LSM.
	opts := smallOpts()
	db := mustOpen(t, opts)
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 4000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i%1600)), val)
	}
	db.FlushAll()
	s := db.Stats()
	if s.WriteAmplification <= 0 {
		t.Fatal("no WA computed")
	}
	if s.WriteAmplification > 4.0 {
		t.Errorf("in-memory WA = %.2f, expected ≈3 or less", s.WriteAmplification)
	}
	t.Logf("WA = %.2f, flushes = %d, stalls = %v", s.WriteAmplification, s.Flushes, s.IntervalStall)
	// MioDB's design goal: zero write stalls.
	if s.IntervalStall != 0 || s.CumulativeStall != 0 {
		t.Errorf("MioDB stalled: interval=%v cumulative=%v", s.IntervalStall, s.CumulativeStall)
	}
}

func TestCrashRecoveryMemtableOnly(t *testing.T) {
	opts := smallOpts()
	opts.MemTableSize = 1 << 20 // nothing flushes: all data lives in WAL
	db := mustOpen(t, opts)
	golden := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	db.Delete([]byte("key-005"))
	delete(golden, "key-005")

	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("after recovery Get(%s) = %q, %v", k, got, err)
		}
	}
	if _, err := re.Get([]byte("key-005")); err != ErrNotFound {
		t.Error("deleted key resurrected by recovery")
	}
	// Recovered store must accept new writes with fresh sequences.
	if err := re.Put([]byte("post-crash"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, err := re.Get([]byte("post-crash")); err != nil || string(v) != "ok" {
		t.Fatal("post-recovery write broken")
	}
}

func TestCrashRecoveryFullPipeline(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(1200))
		v := fmt.Sprintf("val-%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	// Crash with data spread across memtable, elastic buffer, and repo.
	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	missing, wrong := 0, 0
	for k, v := range golden {
		got, err := re.Get([]byte(k))
		if err != nil {
			missing++
			continue
		}
		if string(got) != v {
			wrong++
		}
	}
	if missing > 0 || wrong > 0 {
		t.Fatalf("after recovery: %d missing, %d wrong of %d", missing, wrong, len(golden))
	}
	re.WaitIdle()
	// Scans over recovered state stay ordered and complete.
	n := 0
	it := re.NewIterator()
	defer it.Close()
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatal("recovered scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != len(golden) {
		t.Fatalf("recovered scan saw %d keys, want %d", n, len(golden))
	}
}

func TestCrashRecoveryDoubleCrash(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	img := db.CrashForTest()
	re1, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1500; i++ {
		re1.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	img2 := re1.CrashForTest()
	re2, err := Recover(img2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := re2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after double crash Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestSSDModeEndToEnd(t *testing.T) {
	opts := smallOpts()
	opts.SSD = &SSDOptions{}
	db := mustOpen(t, opts)
	defer db.Close()
	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(1500))
		v := fmt.Sprintf("val-%d", i)
		db.Put([]byte(k), []byte(v))
		golden[k] = v
	}
	db.WaitIdle()
	for k, v := range golden {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("SSD mode Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	// Data must actually have reached the SSD tier.
	s := db.Stats()
	var ssdWritten int64
	for _, d := range s.Devices {
		if d.Name == "ssd" {
			ssdWritten = d.BytesWritten
		}
	}
	if ssdWritten == 0 {
		t.Error("nothing was written to the SSD tier")
	}
	// Scans cross the NVM/SSD boundary.
	seen := 0
	it := db.NewIterator()
	defer it.Close()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		seen++
	}
	if seen != len(golden) {
		t.Fatalf("SSD-mode scan saw %d keys, want %d", seen, len(golden))
	}
}

func TestAblationModesProduceSameData(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"no-parallel-compaction", func(o *Options) { o.ParallelCompaction = Bool(false) }},
		{"no-zero-copy", func(o *Options) { o.ZeroCopyMerge = Bool(false) }},
		{"no-one-piece-flush", func(o *Options) { o.OnePieceFlush = Bool(false) }},
		{"no-wal", func(o *Options) { o.DisableWAL = true }},
		{"two-levels", func(o *Options) { o.Levels = 2 }},
		{"ten-levels", func(o *Options) { o.Levels = 10 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts()
			tc.mod(&opts)
			db := mustOpen(t, opts)
			defer db.Close()
			golden := map[string]string{}
			rnd := rand.New(rand.NewSource(21))
			for i := 0; i < 2500; i++ {
				k := fmt.Sprintf("key-%05d", rnd.Intn(900))
				v := fmt.Sprintf("val-%d", i)
				db.Put([]byte(k), []byte(v))
				golden[k] = v
			}
			db.WaitIdle()
			for k, v := range golden {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
				}
			}
		})
	}
}

func TestCloseIsIdempotentAndRejectsOps(t *testing.T) {
	db := mustOpen(t, smallOpts())
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	if err := db.Put([]byte("k2"), []byte("v")); err != ErrClosed {
		t.Errorf("Put after Close = %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Errorf("Get after Close = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte("v"), 64))
	}
	db.Get([]byte("key-0000"))
	db.Delete([]byte("key-0000"))
	db.FlushAll()
	s := db.Stats()
	if s.Puts != 1000 || s.Gets != 1 || s.Deletes != 1 {
		t.Errorf("op counts: %d/%d/%d", s.Puts, s.Gets, s.Deletes)
	}
	if s.Flushes == 0 || s.FlushTime == 0 {
		t.Error("flush accounting empty")
	}
	if s.UserBytesWritten == 0 {
		t.Error("user bytes empty")
	}
	if len(s.Devices) == 0 {
		t.Error("no devices attached")
	}
}

func TestNVMFootprintReclaimed(t *testing.T) {
	// The elastic buffer must shrink back: after the store drains,
	// consumed arenas are released (lazy freeing), so footprint is far
	// below the total volume ever flushed.
	opts := smallOpts()
	db := mustOpen(t, opts)
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 8000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i%500)), val)
	}
	db.FlushAll()
	live := db.RepositoryCount()
	if live != 500 {
		t.Fatalf("repository holds %d keys, want 500", live)
	}
	foot := db.NVMUsage()
	s := db.Stats()
	var nvmWritten int64
	for _, d := range s.Devices {
		if d.Name == "nvm" {
			nvmWritten = d.BytesWritten
		}
	}
	if foot >= nvmWritten/2 {
		t.Errorf("NVM footprint %d not reclaimed (total written %d)", foot, nvmWritten)
	}
}

func TestCheckConsistencyAfterChurn(t *testing.T) {
	db := mustOpen(t, smallOpts())
	defer db.Close()
	rnd := rand.New(rand.NewSource(77))
	for i := 0; i < 6000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", rnd.Intn(1500))), bytes.Repeat([]byte("v"), 64))
		if i%11 == 0 {
			db.Delete([]byte(fmt.Sprintf("key-%05d", rnd.Intn(1500))))
		}
	}
	db.WaitIdle()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistencyAfterRecovery(t *testing.T) {
	opts := smallOpts()
	db := mustOpen(t, opts)
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i%800)), []byte(fmt.Sprintf("v%d", i)))
	}
	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.WaitIdle()
	if err := re.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
