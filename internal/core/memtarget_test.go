package core

import (
	"fmt"
	"testing"
)

// TestChunkSizeInvariant pins the withDefaults interaction dynamic
// memtable sizing depends on: after defaulting, ChunkSize ≥
// MemTableSize/4 always holds, so SetMemTableTarget's cap of
// maxArenaChunks × ChunkSize can restore at least the configured
// MemTableSize in every legal configuration (see options.go and
// memtarget.go).
func TestChunkSizeInvariant(t *testing.T) {
	cases := []struct {
		name      string
		mem       int64
		chunk     int
		wantChunk int // 0 = don't check the exact value
	}{
		{"zero values take paper defaults", 0, 0, 256 << 10},
		{"explicit chunk above quarter kept", 64 << 10, 32 << 10, 32 << 10},
		{"chunk exactly a quarter kept", 64 << 10, 16 << 10, 16 << 10},
		{"chunk under a quarter snaps to memtable", 64 << 10, 8 << 10, 64 << 10},
		{"chunk one byte under a quarter snaps", 64 << 10, 16<<10 - 1, 64 << 10},
		{"big memtable with default chunk snaps", 4 << 20, 0, 0},
		{"tiny memtable keeps default chunk", 4 << 10, 0, 256 << 10},
		{"chunk much larger than memtable kept", 8 << 10, 1 << 20, 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{MemTableSize: tc.mem, ChunkSize: tc.chunk}.withDefaults()
			if tc.wantChunk != 0 && o.ChunkSize != tc.wantChunk {
				t.Errorf("ChunkSize = %d, want %d", o.ChunkSize, tc.wantChunk)
			}
			if int64(o.ChunkSize) < o.MemTableSize/4 {
				t.Errorf("invariant broken: ChunkSize %d < MemTableSize/4 (%d)",
					o.ChunkSize, o.MemTableSize/4)
			}
			if cap := maxArenaChunks * int64(o.ChunkSize); cap < o.MemTableSize {
				t.Errorf("dynamic cap %d cannot restore static size %d", cap, o.MemTableSize)
			}
		})
	}
}

func TestSetMemTableTargetClamp(t *testing.T) {
	db := mustOpen(t, smallOpts()) // ChunkSize 32 KB → bounds [4 KB, 128 KB]
	defer db.Close()

	lo, hi := db.MemTableTargetBounds()
	if lo != 4<<10 || hi != 128<<10 {
		t.Fatalf("bounds = [%d, %d], want [4096, 131072]", lo, hi)
	}
	if got := db.MemTableTarget(); got != 8<<10 {
		t.Fatalf("initial target = %d, want the configured MemTableSize", got)
	}
	cases := []struct{ set, want int64 }{
		{16 << 10, 16 << 10}, // in range: applied as-is
		{1, lo},              // below floor: clamped up
		{-5, lo},             // negative: clamped up
		{1 << 30, hi},        // above the arena cap: clamped down
		{hi, hi},             // exactly the cap: kept
	}
	for _, tc := range cases {
		if got := db.SetMemTableTarget(tc.set); got != tc.want {
			t.Errorf("SetMemTableTarget(%d) = %d, want %d", tc.set, got, tc.want)
		}
		if got := db.MemTableTarget(); got != tc.want {
			t.Errorf("MemTableTarget after Set(%d) = %d, want %d", tc.set, got, tc.want)
		}
	}
	if got := db.Stats().MemTableTargetBytes; got != hi {
		t.Errorf("Stats().MemTableTargetBytes = %d, want %d", got, hi)
	}
}

// TestResizeTakesEffectAtRotation drives the same write volume through a
// small memtable and then through a 4×-grown target: the grown phase must
// rotate far fewer times, proving SetMemTableTarget reaches the write
// path. It also checks the boundary rule: the target is visible
// immediately, but the active arena only adopts it at the next rotation.
func TestResizeTakesEffectAtRotation(t *testing.T) {
	db := mustOpen(t, smallOpts()) // 8 KB memtable, 32 KB chunks
	defer db.Close()

	val := make([]byte, 512)
	write := func(phase string, n int) {
		for i := 0; i < n; i++ {
			if err := db.Put([]byte(fmt.Sprintf("%s-%06d", phase, i)), val); err != nil {
				t.Fatal(err)
			}
		}
	}

	write("a", 200) // ~100 KB through an 8 KB memtable
	small := db.Stats().Rotations
	if small == 0 {
		t.Fatal("no rotations through the small memtable; workload too light")
	}

	db.SetMemTableTarget(32 << 10)
	if got := db.MemTableTarget(); got != 32<<10 {
		t.Fatalf("target not visible immediately: %d", got)
	}
	if err := db.FlushAll(); err != nil { // rotation boundary: next arena adopts it
		t.Fatal(err)
	}
	write("b", 200)
	grown := db.Stats().Rotations - small - 1 // minus the FlushAll rotation
	if grown <= 0 || grown*2 >= small {
		t.Errorf("rotations: small=%d grown=%d; want the grown phase well under half", small, grown)
	}
}
