package core

import (
	"fmt"
	"sort"
	"sync"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/pmtable"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/wal"
)

// CrashImage is the persistent state that survives a simulated power
// failure: the virtual address space (whose NVM regions are "persistent")
// and the NVM device bound to it. DRAM regions also physically survive in
// the image — memory is memory — but recovery never touches them,
// modeling their loss; the WAL rebuilds their content (§4.7).
type CrashImage struct {
	Space *vaddr.Space
	NVM   *nvm.Device
}

// CrashForTest simulates a power failure: background goroutines are
// abandoned at their next checkpoint (queued flushes and lazy copies are
// dropped on the floor, exactly as a crash would), and the NVM state is
// handed back for recovery. The DB is unusable afterwards.
//
// An in-flight zero-copy merge completes its current Run before the
// goroutine observes the abandon flag — goroutines cannot be killed
// mid-instruction in-process. Mid-merge crash recovery is exercised
// directly at the pmtable level (Merge.Resume) and through manifest-driven
// recovery tests that construct interrupted states.
func (db *DB) CrashForTest() *CrashImage {
	db.mu.Lock()
	db.closed = true
	db.closedFlag.Store(true)
	db.abandon = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.stopValueLogGC()
	db.wg.Wait()
	if db.ssd != nil {
		db.ssd.Close()
	}
	return &CrashImage{Space: db.space, NVM: db.nvm}
}

// Recover rebuilds a DB from a crash image: it locates the superblock in
// the space's first region, decodes the latest intact manifest state,
// re-attaches every PMTable and the repository, resumes any interrupted
// zero-copy merge via its persisted insertion mark, and replays the
// write-ahead logs (oldest first) into a fresh memtable.
//
// opts must match the crashed store's structural options (Levels). The
// DRAM-NVM-SSD mode is not recoverable (the simulated SSD carries no
// manifest); the paper's recovery discussion (§4.7) likewise covers the
// NVM-resident state.
func Recover(img *CrashImage, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.SSD != nil {
		return nil, fmt.Errorf("miodb: SSD-mode crash recovery is not supported")
	}
	if opts.ValueLog != nil && opts.ValueLog.OnSSD {
		return nil, fmt.Errorf("miodb: SSD-resident value log is not crash-recoverable")
	}
	superRegion := img.Space.Region(0)
	if superRegion == nil {
		return nil, fmt.Errorf("miodb: crash image has no superblock region")
	}

	db := &DB{
		opts:  opts,
		space: img.Space,
		dram:  nvm.NewDevice(img.Space, nvm.DRAMProfile()),
		nvm:   img.NVM,
		st:    &stats.Recorder{},
		fp: pmtable.FilterParams{
			ExpectedKeys: opts.FilterCapacity,
			BitsPerKey:   opts.BloomBitsPerKey,
		},
	}
	db.cond = sync.NewCond(&db.mu)
	db.memTarget.Store(opts.MemTableSize)
	db.levelStats = make([]levelWork, opts.Levels)
	db.readLevels = make([]readLevelWork, opts.Levels)
	db.initEpochs()
	db.applySimulation()
	db.manifest = attachManifestLog(db.nvm, superRegion)

	// Records start after the nil-address word and the mark slots laid
	// down at original Open time.
	scanFrom := int64(8 + 8*opts.Levels)
	state, tornAt, torn, err := db.manifest.replayManifest(scanFrom)
	if err != nil {
		return nil, fmt.Errorf("miodb: manifest replay: %w", err)
	}
	if torn {
		// A crashed (or fault-injected) append left a partial record on
		// the superblock. Appending behind it would write state no future
		// scan could see; repair the tail before this recovery logs
		// anything. The repair is idempotent, so a crash inside it leaves
		// the image exactly as recoverable.
		if err := db.manifest.repairTornTail(tornAt); err != nil {
			return nil, fmt.Errorf("miodb: manifest repair: %w", err)
		}
	}
	if len(state.levels) != opts.Levels {
		return nil, fmt.Errorf("miodb: crash image has %d levels, options say %d",
			len(state.levels), opts.Levels)
	}
	db.seq.Store(state.lastSeq)
	db.tableID.Store(state.nextTableID)
	db.markSlots = make([]vaddr.Addr, len(state.markSlots))
	for i, s := range state.markSlots {
		db.markSlots[i] = vaddr.Addr(s)
	}

	// Value log: re-attach every recorded segment BEFORE WAL replay — the
	// logs hold pointer records (replay never re-separates values), and a
	// read served right after recovery must be able to resolve them.
	// Attached segments are sealed; fresh appends open new segments with
	// ids at or above the persisted counter, so reclaimed ids never recur.
	if opts.ValueLog == nil && len(state.vlogSegs) > 0 {
		return nil, fmt.Errorf("miodb: crash image has %d value-log segments, options disable the value log",
			len(state.vlogSegs))
	}
	if opts.ValueLog != nil {
		db.initValueLog()
		for _, g := range state.vlogSegs {
			r := img.Space.Region(g.region)
			if r == nil {
				return nil, fmt.Errorf("miodb: value-log segment %d region %d missing", g.id, g.region)
			}
			db.vlog.Attach(g.id, r)
		}
		db.vlog.SetNextID(state.vlogNext)
	}

	// Every NVM resource this attempt allocates is tracked so a failed
	// (or crashed-again) recovery releases it: the crash image must stay
	// exactly as recoverable for the next attempt, with no fresh regions
	// leaked into the space.
	var freshHandles []*memHandle
	var freshRepo *pmtable.Repository
	fail := func(err error) (*DB, error) {
		for _, h := range freshHandles {
			h.mt.Release()
			if h.log != nil {
				h.log.Release()
			}
		}
		if freshRepo != nil {
			freshRepo.Release()
		}
		return nil, err
	}

	// Repository.
	if state.hasRepo {
		repoRegion := img.Space.Region(state.repoRegion)
		if repoRegion == nil {
			return nil, fmt.Errorf("miodb: repository region %d missing", state.repoRegion)
		}
		db.repo = pmtable.AttachRepository(db.nvm, repoRegion, vaddr.Addr(state.repoHead))
	} else {
		repo, err := pmtable.NewRepository(db.nvm, opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		freshRepo = repo
		db.repo = repo
	}

	attachTable := func(ts tableState) (*pmtable.Table, error) {
		regions := make([]*vaddr.Region, 0, len(ts.regions))
		for _, ri := range ts.regions {
			r := img.Space.Region(ri)
			if r == nil {
				return nil, fmt.Errorf("miodb: table %d region %d missing", ts.id, ri)
			}
			regions = append(regions, r)
		}
		t := pmtable.Attach(img.Space, vaddr.Addr(ts.head), ts.id, regions, db.fp)
		t.MinSeq, t.MaxSeq = ts.minSeq, ts.maxSeq
		return t, nil
	}

	// Levels: re-attach tables; interrupted merges resume synchronously
	// so recovery hands back a consistent buffer.
	root := newRootVersion()
	root.levels = make([][]levelEntry, opts.Levels)
	root.rangeDels = append([]rangeTombstone(nil), state.rangeDels...)
	// The side-table invariant is seq-ascending; the manifest writes it in
	// that order, but sort defensively — replay merges delta sections.
	sort.Slice(root.rangeDels, func(i, j int) bool {
		return root.rangeDels[i].seq < root.rangeDels[j].seq
	})
	type pendingMerge struct {
		level int
		merge *pmtable.Merge
		mark  vaddr.Addr
	}
	var pending []pendingMerge
	for level, lvl := range state.levels {
		for _, ent := range lvl {
			if !ent.isMerge {
				t, err := attachTable(ent.table)
				if err != nil {
					return fail(err)
				}
				root.levels[level] = append(root.levels[level], tableEntry{t})
				continue
			}
			newT, err := attachTable(ent.merge.newT)
			if err != nil {
				return fail(err)
			}
			oldT, err := attachTable(ent.merge.oldT)
			if err != nil {
				return fail(err)
			}
			m := pmtable.NewMerge(newT, oldT)
			slot := vaddr.Addr(ent.merge.markSlot)
			m.SetPersistSlot(superRegion, slot)
			mark := vaddr.Addr(superRegion.Load64(slot))
			pending = append(pending, pendingMerge{level: level, merge: m, mark: mark})
			// Placeholder entry; replaced by the resumed result below.
			root.levels[level] = append(root.levels[level], mergeEntry{m})
		}
	}

	// Fresh memtable + WAL, then replay the crashed logs oldest-first,
	// re-logging every entry so a second crash is equally recoverable.
	//
	// Replay rotates the memtable exactly like the foreground write path:
	// when the live memtable fills, it is sealed into the immutable queue
	// and a fresh handle takes over, so a crashed store whose logs hold
	// more than one memtable's worth of updates recovers without
	// overflowing the DRAM arena. Rotation during replay does NOT append
	// rotate records to the manifest — the fresh WAL regions become known
	// only through the full snapshot written below. Until that snapshot
	// lands, a second crash replays the *old* WAL regions again (they are
	// only released after the snapshot), so no update is duplicated or
	// lost either way.
	mem, err := db.newMemHandle()
	if err != nil {
		return fail(err)
	}
	freshHandles = append(freshHandles, mem)
	root.mem = mem
	root.repo = db.repo
	db.current.Store(root)
	db.oldest = root

	for _, ri := range state.walRegions {
		r := img.Space.Region(ri)
		if r == nil {
			continue // already released before the crash
		}
		log := wal.Attach(db.nvm, r)
		_, err := log.Replay(func(key, value []byte, seq uint64, kind keys.Kind) error {
			if mem.mt.Full() {
				fresh, err := db.newMemHandle()
				if err != nil {
					return err
				}
				freshHandles = append(freshHandles, fresh)
				sealed := mem
				db.mu.Lock()
				db.editVersionLocked(func(v *version) {
					v.imms = append([]*memHandle{sealed}, v.imms...)
					v.mem = fresh
				})
				db.mu.Unlock()
				mem = fresh
			}
			if mem.log != nil {
				if err := mem.log.Append(key, value, seq, kind); err != nil {
					return err
				}
			}
			if kind == keys.KindRangeDelete {
				// Range tombstones never enter the skip list: re-log (above)
				// and re-register into the side table and the handle's
				// durability handoff. appendRangeDel deduplicates by seq —
				// the manifest snapshot may already carry this tombstone.
				db.registerRangeTombstone(mem, rangeTombstone{
					start: append([]byte(nil), key...),
					end:   append([]byte(nil), value...),
					seq:   seq,
				})
				if seq > db.seq.Load() {
					db.seq.Store(seq)
				}
				return nil
			}
			if err := mem.mt.Add(key, value, seq, kind); err != nil {
				return err
			}
			if mem.minSeq == 0 {
				mem.minSeq = seq
			}
			if seq > mem.maxSeq {
				mem.maxSeq = seq
			}
			if seq > db.seq.Load() {
				db.seq.Store(seq)
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
	}

	// Resume interrupted merges to completion.
	for _, pm := range pending {
		result := pm.merge.Resume(pm.mark)
		level := pm.level
		m := pm.merge
		db.mu.Lock()
		db.editVersionLocked(func(v *version) {
			lv := v.levels[level]
			for i, e := range lv {
				if me, ok := e.(mergeEntry); ok && me.m == m {
					v.levels[level] = append(lv[:i:i], lv[i+1:]...)
					break
				}
			}
			v.levels[level+1] = append([]levelEntry{tableEntry{result}}, v.levels[level+1]...)
		})
		m.New.DropRegions()
		m.Old.DropRegions()
		db.mu.Unlock()
	}

	// Publish the recovered state as one full snapshot. Until this
	// append lands, the manifest still describes the pre-crash state and
	// the old WAL regions are still live — a failure here (or a crash
	// during it) leaves the image recoverable by a fresh attempt.
	db.mu.Lock()
	err = db.writeManifestLocked()
	db.mu.Unlock()
	if err != nil {
		return fail(err)
	}

	// Old WAL regions are now redundant (content re-logged).
	for _, ri := range state.walRegions {
		if r := img.Space.Region(ri); r != nil {
			db.nvm.Release(r)
		}
	}

	// Orphan collection: the crashed run may have allocated regions it
	// never published to the manifest — a table flushed just before the
	// crash whose flush-done record didn't land, a half-built merge
	// result, the crashed memtable arenas themselves. None of them are
	// reachable from the recovered state, and on real NVM they would
	// leak forever; release everything the recovered version does not
	// reference (the analogue of LevelDB's stale-file deletion on open).
	db.mu.Lock()
	live, lerr := db.liveRegionsLocked()
	db.mu.Unlock()
	if lerr != nil {
		return fail(lerr)
	}
	for _, r := range img.Space.Regions() {
		if !live[r.Index()] {
			img.Space.Release(r)
		}
	}

	db.startBackground()
	return db, nil
}
