package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"miodb/internal/vlog"
)

// vlogOpts is smallOpts with key-value separation on: a low threshold and
// tiny segments so short tests create, fill, and reclaim many segments.
func vlogOpts() Options {
	o := smallOpts()
	o.ValueLog = &ValueLogOptions{Threshold: 256, SegmentSize: 8 << 10}
	return o
}

// bigVal builds a deterministic value of n bytes, tagged so misdirected
// reads fail loudly.
func bigVal(tag string, n int) []byte {
	v := make([]byte, n)
	copy(v, tag)
	for i := len(tag); i < n; i++ {
		v[i] = byte('a' + (i+len(tag))%23)
	}
	return v
}

func TestValueLogSeparatesLargeValues(t *testing.T) {
	db := mustOpen(t, vlogOpts())
	defer db.Close()

	small := []byte("tiny")
	large := bigVal("large-0", 4<<10)
	if err := db.Put([]byte("small"), small); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("large"), large); err != nil {
		t.Fatal(err)
	}

	c := db.ValueLogCounters()
	if c.Appends != 1 {
		t.Fatalf("vlog appends = %d, want exactly the one above-threshold value", c.Appends)
	}
	if v, err := db.Get([]byte("small")); err != nil || !bytes.Equal(v, small) {
		t.Fatalf("Get(small) = %q, %v", v, err)
	}
	if v, err := db.Get([]byte("large")); err != nil || !bytes.Equal(v, large) {
		t.Fatalf("Get(large) mismatch (err %v)", err)
	}

	// The resolved value must be a private copy, not an alias of NVM.
	v, _ := db.Get([]byte("large"))
	v[0] = 'X'
	if v2, _ := db.Get([]byte("large")); !bytes.Equal(v2, large) {
		t.Fatal("resolved value aliases log storage")
	}
}

func TestValueLogFullPipeline(t *testing.T) {
	// Enough separated values to force flushes, merges through every
	// level, and lazy copies — pointers must survive the whole pipeline
	// and resolve at every read surface.
	db := mustOpen(t, vlogOpts())
	defer db.Close()

	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("key%04d", rnd.Intn(300))
		v := bigVal(k, 300+rnd.Intn(700))
		if err := db.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		golden[k] = string(v)
	}
	db.WaitIdle()

	for k, want := range golden {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) err=%v len=%d want len=%d", k, err, len(v), len(want))
		}
	}

	// Iterator surface resolves too.
	seen := 0
	it := db.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if want, ok := golden[string(it.Key())]; !ok || string(it.Value()) != want {
			t.Fatalf("iterator mismatch at %q", it.Key())
		}
		seen++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if seen != len(golden) {
		t.Fatalf("iterator saw %d keys, want %d", seen, len(golden))
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestValueLogGCReclaimsAndPreservesLiveValues(t *testing.T) {
	db := mustOpen(t, vlogOpts())
	defer db.Close()

	// Overwrite a small key set many times: every superseded pointer is
	// dead in the log, so segments cross the GC threshold as compaction
	// reports the drops.
	const keys = 20
	golden := map[string]string{}
	for round := 0; round < 30; round++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("gc%03d", i)
			v := bigVal(fmt.Sprintf("%s-r%d", k, round), 1<<10)
			if err := db.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			golden[k] = string(v)
		}
	}
	db.WaitIdle()

	// The background loop may already have reclaimed on compaction kicks;
	// the explicit run picks up any remaining candidates. Either way the
	// counters must show reclamation happened.
	if _, err := db.RunValueLogGC(); err != nil {
		t.Fatal(err)
	}
	c := db.ValueLogCounters()
	if c.GCSegmentsReclaimed == 0 {
		t.Fatalf("GC reclaimed nothing from a 30x-overwritten working set: %+v", c)
	}

	for k, want := range golden {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) after GC: err=%v", k, err)
		}
	}
	db.WaitIdle()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckRegionAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestValueLogGCRespectsSnapshots(t *testing.T) {
	db := mustOpen(t, vlogOpts())
	defer db.Close()

	k := []byte("pinned")
	v1 := bigVal("v1", 2<<10)
	if err := db.Put(k, v1); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Supersede v1 repeatedly so its segment becomes a GC candidate, then
	// force GC. The snapshot must keep reading v1 throughout: the segment
	// free is epoch-deferred past the pinned version.
	for i := 0; i < 40; i++ {
		if err := db.Put(k, bigVal(fmt.Sprintf("v%d", i+2), 2<<10)); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()
	if _, err := db.RunValueLogGC(); err != nil {
		t.Fatal(err)
	}
	got, err := snap.Get(k)
	if err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("snapshot read after GC: err=%v (len %d, want %d)", err, len(got), len(v1))
	}
}

func TestValueLogCrashRecovery(t *testing.T) {
	opts := vlogOpts()
	db := mustOpen(t, opts)

	golden := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("rec%03d", i%40)
		v := bigVal(fmt.Sprintf("%s-i%d", k, i), 600)
		if err := db.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		golden[k] = string(v)
	}
	// Exercise GC before the crash so freed segments are part of the
	// recovered state.
	db.WaitIdle()
	if _, err := db.RunValueLogGC(); err != nil {
		t.Fatal(err)
	}

	img := db.CrashForTest()
	re, err := Recover(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, want := range golden {
		v, err := re.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) after recovery: err=%v", k, err)
		}
	}
	// And the recovered store keeps working: new separated writes, GC.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("rec%03d", i%40)
		v := bigVal(fmt.Sprintf("%s-post%d", k, i), 600)
		if err := re.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		golden[k] = string(v)
	}
	re.WaitIdle()
	if _, err := re.RunValueLogGC(); err != nil {
		t.Fatal(err)
	}
	for k, want := range golden {
		v, err := re.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) after post-recovery writes: err=%v", k, err)
		}
	}
}

func TestValueLogRecoveryOptionMismatch(t *testing.T) {
	opts := vlogOpts()
	db := mustOpen(t, opts)
	if err := db.Put([]byte("k"), bigVal("k", 2<<10)); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	img := db.CrashForTest()

	// Disabling separation over an image holding segments must refuse, not
	// serve dangling pointers.
	noVlog := opts
	noVlog.ValueLog = nil
	if _, err := Recover(img, noVlog); err == nil {
		t.Fatal("recovery with ValueLog disabled accepted an image holding segments")
	}
	if re, err := Recover(img, opts); err != nil {
		t.Fatal(err)
	} else {
		re.Close()
	}
}

func TestValueLogOnSSDRefusals(t *testing.T) {
	opts := vlogOpts()
	opts.ValueLog.OnSSD = true
	db := mustOpen(t, opts)
	defer db.Close()
	large := bigVal("ssd", 4 << 10)
	if err := db.Put([]byte("k"), large); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("k")); err != nil || !bytes.Equal(v, large) {
		t.Fatalf("Get over SSD vlog: %v", err)
	}
	if c := db.ValueLogCounters(); c.Appends != 1 {
		t.Fatalf("appends = %d", c.Appends)
	}
	if err := db.Checkpoint(t.TempDir() + "/img"); err == nil {
		t.Fatal("checkpoint of SSD-resident value log accepted")
	}
	if _, err := Recover(&CrashImage{}, opts); err == nil {
		t.Fatal("recovery of SSD-resident value log accepted")
	}
}

func TestValueLogNilMatchesInline(t *testing.T) {
	// The nil-options arm must be byte-for-byte the inline engine. A store
	// with separation enabled but an unreachable threshold performs the
	// identical write-path work (no segment is ever created), so the NVM
	// write traffic must match exactly; and the nil arm must report no
	// value-log activity at all. The memtable is sized so nothing flushes:
	// background merge scheduling is timing-dependent, but the WAL and
	// manifest traffic the write path itself emits is deterministic.
	inert := func(o Options) Options {
		o.MemTableSize = 4 << 20
		return o
	}
	workload := func(db *DB) int64 {
		rnd := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("k%04d", rnd.Intn(200))
			if err := db.Put([]byte(k), bigVal(k, 512)); err != nil {
				panic(err)
			}
		}
		db.WaitIdle()
		s := db.Stats()
		for _, d := range s.Devices {
			if d.Name == "nvm" {
				return d.BytesWritten
			}
		}
		return -1
	}

	base := mustOpen(t, inert(smallOpts()))
	baseWritten := workload(base)
	if s := base.Stats(); s.ValueLog.Enabled || s.ValueLog.Appends != 0 {
		t.Fatalf("nil ValueLog reports activity: %+v", s.ValueLog)
	}
	if c := base.ValueLogCounters(); c != (vlog.Counters{}) {
		t.Fatalf("nil ValueLog counters non-zero: %+v", c)
	}
	base.Close()

	hi := inert(smallOpts())
	hi.ValueLog = &ValueLogOptions{Threshold: 1 << 30}
	sep := mustOpen(t, hi)
	sepWritten := workload(sep)
	if c := sep.ValueLogCounters(); c.Appends != 0 || c.Segments != 0 {
		t.Fatalf("unreachable threshold created segments: %+v", c)
	}
	sep.Close()

	if baseWritten != sepWritten {
		t.Fatalf("inline arm wrote %d NVM bytes, unreachable-threshold arm %d — separation is not inert",
			baseWritten, sepWritten)
	}
}
