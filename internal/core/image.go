package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

// Checkpoint images give the simulation process-level durability: the
// entire simulated NVM — superblock, WALs, PMTable arenas, repository —
// is serialized to a real file, and LoadImage rebuilds a store from it
// through the same code path as crash recovery. Semantically a checkpoint
// is a consistent point-in-time copy of the NVM; on real hardware the NVM
// itself would be the durable medium and no image would be needed.
//
// Image format (little-endian):
//
//	magic(8) | regionCount(4)
//	per region: index(4) | chunkSize(4) | extent(8) | crc32(4) | data
//
// The data of each region is its allocated extent, written chunk by chunk.
const imageMagic = 0x4d696f4442696d67 // "MioDBimg"

// WriteImage serializes the store's persistent (NVM) state. The store
// must be quiesced first — Checkpoint handles that; callers using
// WriteImage directly must guarantee no concurrent mutation.
func (db *DB) WriteImage(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)

	// Collect live NVM regions (meter == the NVM device).
	var regions []*vaddr.Region
	for _, r := range db.space.Regions() {
		if r.Meter() == vaddr.Meter(db.nvm) {
			regions = append(regions, r)
		}
	}

	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], imageMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(regions)))
	if _, err := bw.Write(hdr[:12]); err != nil {
		return err
	}
	for _, r := range regions {
		extent := r.Size()
		crc := crc32.NewIEEE()
		// First pass: checksum the content.
		if err := writeRegionData(io.MultiWriter(crc), r, extent); err != nil {
			return err
		}
		var rh [20]byte
		binary.LittleEndian.PutUint32(rh[0:4], r.Index())
		binary.LittleEndian.PutUint32(rh[4:8], uint32(r.ChunkSize()))
		binary.LittleEndian.PutUint64(rh[8:16], uint64(extent))
		binary.LittleEndian.PutUint32(rh[16:20], crc.Sum32())
		if _, err := bw.Write(rh[:]); err != nil {
			return err
		}
		if err := writeRegionData(bw, r, extent); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRegionData(w io.Writer, r *vaddr.Region, extent int64) error {
	chunk := int64(r.ChunkSize())
	for off := int64(0); off < extent; off += chunk {
		n := chunk
		if off+n > extent {
			n = extent - off
		}
		if _, err := w.Write(r.Bytes(r.Base().Add(off), int(n))); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint quiesces the store and writes a checkpoint image to path
// (atomically, via a temporary file). The store keeps running afterwards.
func (db *DB) Checkpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = db.CheckpointTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// CheckpointTo quiesces the store and streams a checkpoint image to w.
// Unlike Checkpoint it does not provide atomic file replacement — callers
// embedding the image in a larger file (the shard router's multi-shard
// images) own that. The store keeps running afterwards.
func (db *DB) CheckpointTo(w io.Writer) error {
	if db.vlog != nil && db.vlog.OnSSD() {
		// SSD segment files are outside the NVM image; a restored store
		// could not resolve their pointers.
		return fmt.Errorf("miodb: checkpoint does not cover an SSD-resident value log")
	}
	// Force the volatile buffer out so the image is self-contained even
	// without WAL replay, then drain background work so no compaction is
	// mid-flight (the image would still recover via the insertion marks,
	// but a quiesced image is simpler to reason about).
	if err := db.FlushAll(); err != nil {
		return err
	}
	// Hold the commit lock (WAL appends + group inserts happen under it)
	// and the structural lock so nothing mutates the NVM during the copy;
	// reads keep flowing.
	db.commitMu.Lock()
	db.mu.Lock()
	err := db.WriteImage(w)
	db.mu.Unlock()
	db.commitMu.Unlock()
	return err
}

// ReadImage reconstructs a crash image from a serialized checkpoint.
func ReadImage(r io.Reader) (*CrashImage, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("miodb: image header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != imageMagic {
		return nil, fmt.Errorf("miodb: not a checkpoint image")
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	if count > 1<<22 {
		return nil, fmt.Errorf("miodb: absurd region count %d", count)
	}

	space := vaddr.NewSpace()
	dev := nvm.NewDevice(space, nvm.NVMProfile())
	buf := make([]byte, 1<<20)
	for i := uint32(0); i < count; i++ {
		var rh [20]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			return nil, fmt.Errorf("miodb: image region header: %w", err)
		}
		index := binary.LittleEndian.Uint32(rh[0:4])
		chunkSize := int(binary.LittleEndian.Uint32(rh[4:8]))
		extent := int64(binary.LittleEndian.Uint64(rh[8:16]))
		wantCRC := binary.LittleEndian.Uint32(rh[16:20])

		region, err := space.Restore(index, chunkSize, dev)
		if err != nil {
			return nil, err
		}
		if err := region.RestoreExtent(extent); err != nil {
			return nil, err
		}
		crc := crc32.NewIEEE()
		chunk := int64(region.ChunkSize())
		for off := int64(0); off < extent; off += chunk {
			n := chunk
			if off+n > extent {
				n = extent - off
			}
			if int64(len(buf)) < n {
				buf = make([]byte, n)
			}
			if _, err := io.ReadFull(br, buf[:n]); err != nil {
				return nil, fmt.Errorf("miodb: image region %d data: %w", index, err)
			}
			crc.Write(buf[:n])
			copy(region.Bytes(region.Base().Add(off), int(n)), buf[:n])
		}
		if crc.Sum32() != wantCRC {
			return nil, fmt.Errorf("miodb: image region %d checksum mismatch", index)
		}
	}
	return &CrashImage{Space: space, NVM: dev}, nil
}

// OpenImage loads a checkpoint file and recovers a running store from it.
// opts must match the checkpointed store's structural options.
func OpenImage(path string, opts Options) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := ReadImage(f)
	if err != nil {
		return nil, err
	}
	return Recover(img, opts)
}
