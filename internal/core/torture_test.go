package core

import "testing"

// TestCrashTorture is the randomized crash-recovery harness: dozens of
// write / crash / recover / verify cycles with injected device crashes,
// torn tails, and interrupted recoveries. See RunTorture for the checked
// invariants. Deterministic per seed — a failure reproduces exactly.
func TestCrashTorture(t *testing.T) {
	cycles := 50
	if testing.Short() {
		cycles = 12
	}
	rep, err := RunTorture(TortureConfig{Seed: 1, Cycles: cycles, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsAcked == 0 || rep.KeysChecked == 0 {
		t.Fatalf("torture run did no work: %+v", rep)
	}
	if rep.RangeDeletes == 0 {
		t.Fatalf("torture run mixed in no range deletes: %+v", rep)
	}
	t.Log(rep.String())
}

// TestCrashTortureSeeds runs shorter bursts across several seeds so the
// crash points land in different phases of the pipeline.
func TestCrashTortureSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestCrashTorture")
	}
	for seed := int64(2); seed <= 6; seed++ {
		rep, err := RunTorture(TortureConfig{Seed: seed, Cycles: 10, Ops: 250})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: %s", seed, rep)
	}
}

// TestCrashTortureValueLog runs the harness with key-value separation
// active: padded values straddle the threshold, value-log GC races the
// armed crash plans and runs again right after every recovery, and the
// usual sweep verifies every key — which now exercises pointer
// resolution against relocated and reclaimed segments.
func TestCrashTortureValueLog(t *testing.T) {
	cycles := 30
	if testing.Short() {
		cycles = 8
	}
	rep, err := RunTorture(TortureConfig{Seed: 7, Cycles: cycles, Ops: 300, ValueLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsAcked == 0 || rep.KeysChecked == 0 {
		t.Fatalf("torture run did no work: %+v", rep)
	}
	if rep.VlogAppends == 0 {
		t.Fatalf("no values routed through the value log: %+v", rep)
	}
	if rep.VlogReclaimed == 0 {
		t.Fatalf("value-log GC reclaimed nothing across %d cycles: %+v", rep.Cycles, rep)
	}
	t.Log(rep.String())
}

// TestCrashTortureNoWAL exercises the DisableWAL configuration: acked
// updates in the DRAM buffer are legitimately lost on crash, but flushed
// state must still recover consistently and leak no regions.
func TestCrashTortureNoWAL(t *testing.T) {
	opts := tortureOpts()
	opts.DisableWAL = true
	// With no WAL, an acked write is only crash-durable once flushed;
	// the generic verifier would call every lost tail a failure. Run the
	// structural half only: write, crash, recover, check invariants.
	for seed := int64(0); seed < 3; seed++ {
		db := mustOpen(t, opts)
		for i := 0; i < 600; i++ {
			k := []byte{byte(i), byte(i >> 8), byte(seed)}
			if err := db.Put(k, k); err != nil {
				t.Fatal(err)
			}
		}
		img := db.CrashForTest()
		db2, err := Recover(img, opts)
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		db2.WaitIdle()
		if err := db2.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := db2.CheckRegionAccounting(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db2.Close()
	}
}
