// External test package: internal/client imports internal/server, so a
// test that drives the pipelined client must live outside package server
// to avoid an import cycle.
package server_test

import (
	"fmt"
	"testing"
	"time"

	"miodb/internal/client"
	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/server"
	"miodb/internal/shard"
	"miodb/internal/stats"
)

// coreStore adapts *core.DB to the harness store contract (FlushAll
// drains background compaction too).
type coreStore struct{ *core.DB }

func (s coreStore) Flush() error { return s.DB.FlushAll() }

// serveCore starts a server over a fresh single-engine store and
// returns it with a legacy client; both are cleaned up with the test.
func serveCore(t *testing.T) (*server.Server, *server.Client) {
	t.Helper()
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(coreStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestVersionedOpsLegacy drives the SNAP family and DELRANGE over the
// legacy (v1) protocol: snapshot isolation across later writes,
// consistent snapshot multi-get, live multi-get, range deletes, and
// release semantics.
func TestVersionedOpsLegacy(t *testing.T) {
	_, c := serveCore(t)

	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}

	// The snapshot answers as of capture; the live store sees the update.
	if v, err := snap.Get([]byte("k07")); err != nil || string(v) != "old" {
		t.Fatalf("snap.Get = %q, %v", v, err)
	}
	if v, err := c.Get([]byte("k07")); err != nil || string(v) != "new" {
		t.Fatalf("live Get = %q, %v", v, err)
	}

	// Multi-get: positional, ErrNotFound per missing key, and the
	// snapshot variant answers from the cut.
	mkeys := [][]byte{[]byte("k01"), []byte("absent"), []byte("k19")}
	values, errs := c.GetMulti(mkeys)
	if string(values[0]) != "new" || errs[0] != nil {
		t.Fatalf("live mget[0] = %q, %v", values[0], errs[0])
	}
	if errs[1] != kvstore.ErrNotFound {
		t.Fatalf("live mget[1] err = %v", errs[1])
	}
	values, errs = snap.GetMulti(mkeys)
	if string(values[0]) != "old" || errs[0] != nil || errs[1] != kvstore.ErrNotFound || string(values[2]) != "old" {
		t.Fatalf("snap mget = %q %v / %v / %q %v", values[0], errs[0], errs[1], values[2], errs[2])
	}

	// Range delete over the wire removes [k05, k10) from the live view
	// but not from the snapshot.
	if err := c.DeleteRange([]byte("k05"), []byte("k10")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("k07")); err != kvstore.ErrNotFound {
		t.Fatalf("live Get after DeleteRange = %v", err)
	}
	if v, err := snap.Get([]byte("k07")); err != nil || string(v) != "old" {
		t.Fatalf("snap.Get after DeleteRange = %q, %v", v, err)
	}

	// Release; further snapshot reads are refused.
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Get([]byte("k07")); err == nil {
		t.Fatal("Get on released snapshot succeeded")
	}
	if err := snap.Close(); err == nil {
		t.Fatal("double release succeeded")
	}
}

// TestVersionedOpsPipelined drives the same family through the
// pipelined (v2) client against a sharded store, including an MPUT
// batch that carries a range delete.
func TestVersionedOpsPipelined(t *testing.T) {
	r, err := shard.Open(4, core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	c, err := client.Dial(addr.String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	for i := 0; i < 100; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// A batch that overwrites some keys and range-deletes others, in one
	// MPUT round trip.
	if err := c.Batch([]kvstore.BatchOp{
		{Key: []byte("k010"), Value: []byte("new")},
		{Key: []byte("k050"), Value: []byte("k060"), RangeDelete: true},
	}); err != nil {
		t.Fatal(err)
	}

	if v, err := c.Get([]byte("k010")); err != nil || string(v) != "new" {
		t.Fatalf("live Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("k055")); err != kvstore.ErrNotFound {
		t.Fatalf("range-deleted Get = %v", err)
	}
	// The snapshot still reads the pre-batch world, consistently across
	// shards.
	values, errs := snap.GetMulti([][]byte{[]byte("k010"), []byte("k055"), []byte("k099")})
	for i, v := range values {
		if errs[i] != nil || string(v) != "old" {
			t.Fatalf("snap mget[%d] = %q, %v", i, v, errs[i])
		}
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}

	// DELRANGE op form, with an unbounded end.
	if err := c.DeleteRange([]byte("k090"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("k099")); err != kvstore.ErrNotFound {
		t.Fatalf("Get after unbounded DeleteRange = %v", err)
	}
}

// TestSnapshotReleasedOnDisconnect pins the leak guard: a client that
// captures a snapshot and drops the connection without releasing it
// must not block store shutdown — the server releases the connection's
// snapshots once its in-flight requests drain.
func TestSnapshotReleasedOnDisconnect(t *testing.T) {
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(coreStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr.String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	c.Close() // snapshot deliberately leaked client-side

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// db.Close blocks until every reader pin is released; if the server
	// leaked the snapshot this never returns.
	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("db.Close blocked: snapshot leaked by server")
	}
}

// plainStore is a deliberately minimal kvstore.Store: no batches, no
// snapshots, no range deletes, no multi-get.
type plainStore struct{ m map[string]string }

func (p plainStore) Put(key, value []byte) error { p.m[string(key)] = string(value); return nil }
func (p plainStore) Get(key []byte) ([]byte, error) {
	v, ok := p.m[string(key)]
	if !ok {
		return nil, kvstore.ErrNotFound
	}
	return []byte(v), nil
}
func (p plainStore) Delete(key []byte) error { delete(p.m, string(key)); return nil }
func (p plainStore) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	return nil
}
func (p plainStore) Flush() error          { return nil }
func (p plainStore) Stats() stats.Snapshot { return stats.Snapshot{} }
func (p plainStore) Close() error          { return nil }

// TestVersionedOpsCapabilityGates: a store without snapshot / range
// delete / multi-get support is refused descriptively, not crashed.
func TestVersionedOpsCapabilityGates(t *testing.T) {
	srv := server.New(plainStore{m: map[string]string{}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if _, err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot on plain store succeeded")
	}
	if err := c.DeleteRange([]byte("a"), []byte("z")); err == nil {
		t.Fatal("DeleteRange on plain store succeeded")
	}
	if _, errs := c.GetMulti([][]byte{[]byte("a")}); errs[0] == nil {
		t.Fatal("GetMulti on plain store succeeded")
	}
	// The plain ops still work on the same connection afterwards.
	if err := c.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}
