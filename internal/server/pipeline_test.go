package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"miodb/internal/core"
	"miodb/internal/kvstore"
)

// startPipelinedServer brings up a server over a fresh MioDB store and
// returns it with its address.
func startPipelinedServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	db, err := core.Open(core.Options{MemTableSize: 32 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(miodbStore{db}, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, addr.String()
}

// rawV2Conn is a test harness speaking protocol v2 by hand.
type rawV2Conn struct {
	nc net.Conn
	br *bufio.Reader
}

func dialV2(t *testing.T, addr string) *rawV2Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(MagicV2[:]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawV2Conn{nc: nc, br: bufio.NewReader(nc)}
}

func (c *rawV2Conn) send(t *testing.T, tag uint64, op byte, key, val []byte) {
	t.Helper()
	if _, err := c.nc.Write(AppendTaggedRequest(nil, tag, op, key, val)); err != nil {
		t.Fatal(err)
	}
}

func (c *rawV2Conn) recv(t *testing.T) (uint64, byte, []byte) {
	t.Helper()
	tag, status, payload, err := ReadTaggedResponse(c.br)
	if err != nil {
		t.Fatal(err)
	}
	return tag, status, payload
}

// TestTaggedInterleavedResponses sends a burst of tagged puts and gets
// in one shot and verifies every tag is answered exactly once with the
// payload belonging to that tag, regardless of the order responses come
// back in.
func TestTaggedInterleavedResponses(t *testing.T) {
	_, addr := startPipelinedServer(t, Options{Window: 64})
	c := dialV2(t, addr)

	const n = 32
	// Phase 1: n tagged puts, distinct keys/values, written back to back.
	var burst []byte
	for i := 0; i < n; i++ {
		burst = AppendTaggedRequest(burst, uint64(100+i), OpPut,
			[]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("val-%02d", i)))
	}
	if _, err := c.nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		tag, status, payload := c.recv(t)
		if tag < 100 || tag >= 100+n {
			t.Fatalf("unknown tag %d", tag)
		}
		if seen[tag] {
			t.Fatalf("tag %d answered twice", tag)
		}
		seen[tag] = true
		if status != StatusOK {
			t.Fatalf("put tag %d: status %d (%s)", tag, status, payload)
		}
	}

	// Phase 2: n tagged gets in one burst; each response's payload must
	// match the key its tag asked for, however the responses interleave.
	burst = burst[:0]
	for i := 0; i < n; i++ {
		burst = AppendTaggedRequest(burst, uint64(500+i), OpGet,
			[]byte(fmt.Sprintf("key-%02d", i)), nil)
	}
	if _, err := c.nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tag, status, payload := c.recv(t)
		idx := int(tag - 500)
		if idx < 0 || idx >= n {
			t.Fatalf("unknown tag %d", tag)
		}
		if status != StatusOK {
			t.Fatalf("get tag %d: status %d", tag, status)
		}
		want := fmt.Sprintf("val-%02d", idx)
		if string(payload) != want {
			t.Fatalf("tag %d: payload %q, want %q (responses mismatched)", tag, payload, want)
		}
	}
}

// TestTaggedMixedOps exercises delete, scan, mput, and stats through the
// tagged framing on one connection.
func TestTaggedMixedOps(t *testing.T) {
	_, addr := startPipelinedServer(t, Options{})
	c := dialV2(t, addr)

	ops := []kvstore.BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("c"), Value: []byte("3")},
	}
	c.send(t, 1, OpMPut, nil, EncodeBatchPayload(ops))
	if tag, status, payload := c.recv(t); tag != 1 || status != StatusOK {
		t.Fatalf("mput: tag=%d status=%d %s", tag, status, payload)
	}
	c.send(t, 2, OpDelete, []byte("b"), nil)
	if tag, status, _ := c.recv(t); tag != 2 || status != StatusOK {
		t.Fatalf("delete: tag=%d status=%d", tag, status)
	}
	c.send(t, 3, OpGet, []byte("b"), nil)
	if tag, status, _ := c.recv(t); tag != 3 || status != StatusNotFound {
		t.Fatalf("get deleted: tag=%d status=%d", tag, status)
	}
	var lim [4]byte
	lim[0] = 10
	c.send(t, 4, OpScan, []byte("a"), lim[:])
	tag, status, payload := c.recv(t)
	if tag != 4 || status != StatusOK {
		t.Fatalf("scan: tag=%d status=%d", tag, status)
	}
	pairs, err := DecodeScanPayload(payload)
	if err != nil || len(pairs) != 2 {
		t.Fatalf("scan pairs = %d, %v", len(pairs), err)
	}
	c.send(t, 5, OpStats, nil, nil)
	tag, status, payload = c.recv(t)
	if tag != 5 || status != StatusOK {
		t.Fatalf("stats: tag=%d status=%d", tag, status)
	}
	if !bytes.Contains(payload, []byte("puts=")) {
		t.Fatalf("stats payload: %q", payload)
	}
	// The server's per-op service histograms cover the ops just issued.
	for _, want := range []string{"lat_mput_p50_us=", "lat_delete_p99_us=", "lat_get_p999_us="} {
		if !strings.Contains(string(payload), want) {
			t.Errorf("stats payload missing %s: %q", want, payload)
		}
	}
	// Malformed: empty key put is rejected per-request, connection lives.
	c.send(t, 6, OpPut, nil, []byte("v"))
	if tag, status, _ := c.recv(t); tag != 6 || status != StatusError {
		t.Fatalf("empty-key put: tag=%d status=%d", tag, status)
	}
	c.send(t, 7, OpGet, []byte("a"), nil)
	if tag, status, payload := c.recv(t); tag != 7 || status != StatusOK || string(payload) != "1" {
		t.Fatalf("conn dead after per-request error: tag=%d status=%d %q", tag, status, payload)
	}
}

// TestBackpressureSlowConsumer verifies the backpressure contract: a
// client that stops reading responses fills its window and stops being
// served, while other connections keep full service.
func TestBackpressureSlowConsumer(t *testing.T) {
	const window = 8
	_, addr := startPipelinedServer(t, Options{Window: window})

	// The slow consumer: sends far more requests than the window, never
	// reads a response.
	slow := dialV2(t, addr)
	var burst []byte
	for i := 0; i < window*20; i++ {
		burst = AppendTaggedRequest(burst, uint64(i), OpPut,
			[]byte(fmt.Sprintf("slow-%04d", i)), bytes.Repeat([]byte("x"), 1024))
	}
	// The burst may not even fully enter the socket once the server
	// stops reading; write what fits without blocking the test.
	slow.nc.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	slow.nc.Write(burst)

	// A healthy connection must see normal service while the slow one
	// is wedged.
	healthy := dialV2(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 200; i++ {
		if time.Now().After(deadline) {
			t.Fatal("healthy connection starved by slow consumer")
		}
		tag := uint64(1000 + i)
		healthy.send(t, tag, OpPut, []byte(fmt.Sprintf("ok-%04d", i)), []byte("v"))
		gotTag, status, payload := healthy.recv(t)
		if gotTag != tag || status != StatusOK {
			t.Fatalf("healthy op %d: tag=%d status=%d %s", i, gotTag, status, payload)
		}
	}
}

// slowStore delays every commit so Close always races with in-flight
// writes deterministically.
type slowStore struct {
	kvstore.Store
	delay time.Duration
}

func (s slowStore) WriteBatch(ops []kvstore.BatchOp) error {
	time.Sleep(s.delay)
	if bw, ok := s.Store.(kvstore.BatchWriter); ok {
		return bw.WriteBatch(ops)
	}
	for _, op := range ops {
		if op.Delete {
			if err := s.Store.Delete(op.Key); err != nil {
				return err
			}
		} else if err := s.Store.Put(op.Key, op.Value); err != nil {
			return err
		}
	}
	return nil
}

// TestGracefulCloseDrainsInFlight issues requests whose commits are
// artificially slow, closes the server while they are in flight, and
// checks every already-admitted request still gets its tagged response
// before the connection dies.
func TestGracefulCloseDrainsInFlight(t *testing.T) {
	db, err := core.Open(core.Options{MemTableSize: 32 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := NewWithOptions(slowStore{Store: miodbStore{db}, delay: 50 * time.Millisecond},
		Options{Window: 16, DrainTimeout: 5 * time.Second})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dialV2(t, addr.String())
	const n = 8
	var burst []byte
	for i := 0; i < n; i++ {
		burst = AppendTaggedRequest(burst, uint64(i), OpPut,
			[]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if _, err := c.nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	// Give the reader a moment to admit the burst, then close while the
	// slow commits are still running.
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Every admitted request must complete with a real response.
	got := 0
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for got < n {
		_, status, payload, err := ReadTaggedResponse(c.br)
		if err != nil {
			t.Fatalf("after %d/%d responses: %v", got, n, err)
		}
		if status != StatusOK {
			t.Fatalf("response %d: status=%d %s", got, status, payload)
		}
		got++
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	// All acknowledged writes are in the store.
	for i := 0; i < n; i++ {
		if v, err := db.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || string(v) != "v" {
			t.Fatalf("acked k%d lost: %q %v", i, v, err)
		}
	}
	// And the listener is gone.
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Error("listener still accepting after Close")
	}
}

// TestCrossConnectionCoalescing drives concurrent single-Put traffic
// from many pipelined connections and checks the shared batcher merged
// them: the store's group-commit accounting must show multi-record
// commits even though every client request carried exactly one record.
func TestCrossConnectionCoalescing(t *testing.T) {
	db, err := core.Open(core.Options{MemTableSize: 256 << 10, Levels: 3, Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(miodbStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const conns = 8
	const depth = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errCh := make(chan error, conns*depth)
	for g := 0; g < conns; g++ {
		c := dialV2(t, addr.String())
		var tags sync.Mutex
		next := uint64(0)
		// depth workers share the connection; a private reader fan-in
		// distributes responses (tags are per-connection here).
		respCh := make(chan tresp, depth*perWorker)
		go func() {
			for {
				_, status, payload, err := ReadTaggedResponse(c.br)
				if err != nil {
					return
				}
				respCh <- tresp{status: status, payload: payload}
			}
		}()
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(g, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					tags.Lock()
					next++
					tag := next
					frame := AppendTaggedRequest(nil, tag, OpPut,
						[]byte(fmt.Sprintf("c%dw%d-%04d", g, w, i)), []byte("v"))
					_, err := c.nc.Write(frame)
					tags.Unlock()
					if err != nil {
						errCh <- err
						return
					}
					r := <-respCh
					if r.status != StatusOK {
						errCh <- fmt.Errorf("status %d: %s", r.status, r.payload)
						return
					}
				}
			}(g, w)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := db.Stats()
	if st.WriteGroups == 0 {
		t.Fatal("no write groups recorded")
	}
	mean := float64(st.GroupedWrites) / float64(st.WriteGroups)
	t.Logf("server-fed group commit: %d records in %d groups (mean %.2f)",
		st.GroupedWrites, st.WriteGroups, mean)
	if mean < 1.5 {
		t.Errorf("mean group size %.2f: cross-connection batcher produced no coalescing", mean)
	}
}

// TestLegacyAndPipelinedShareServer runs both protocol versions against
// one server instance and checks both see each other's writes.
func TestLegacyAndPipelinedShareServer(t *testing.T) {
	_, addr := startPipelinedServer(t, Options{})
	legacy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	v2 := dialV2(t, addr)

	if err := legacy.Put([]byte("from-v1"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v2.send(t, 9, OpPut, []byte("from-v2"), []byte("2"))
	if tag, status, _ := v2.recv(t); tag != 9 || status != StatusOK {
		t.Fatalf("v2 put: tag=%d status=%d", tag, status)
	}
	v2.send(t, 10, OpGet, []byte("from-v1"), nil)
	if _, status, payload := v2.recv(t); status != StatusOK || string(payload) != "1" {
		t.Fatalf("v2 get of v1 write: status=%d %q", status, payload)
	}
	if v, err := legacy.Get([]byte("from-v2")); err != nil || string(v) != "2" {
		t.Fatalf("v1 get of v2 write: %q %v", v, err)
	}
	// Legacy stats line carries the per-op latency section too.
	line, err := legacy.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "lat_put_p50_us=") {
		t.Errorf("stats missing latency section: %q", line)
	}
}

// TestBadMagicRejected checks a connection leading with a corrupt magic
// is dropped without wedging the server.
func TestBadMagicRejected(t *testing.T) {
	_, addr := startPipelinedServer(t, Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{'M', 'I', 'O', 'X'})
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Error("server kept a bad-magic connection open")
	}
	nc.Close()
	// The server still serves new connections.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
