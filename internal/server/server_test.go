package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"miodb/internal/core"
	"miodb/internal/kvstore"
)

type miodbStore struct{ *core.DB }

func (s miodbStore) Flush() error { return s.DB.FlushAll() }

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(miodbStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestClientServerRoundTrip(t *testing.T) {
	_, c := startServer(t)

	if err := c.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("absent")); err != kvstore.ErrNotFound {
		t.Fatalf("Get(absent) = %v", err)
	}
	if err := c.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("hello")); err != kvstore.ErrNotFound {
		t.Fatalf("Get after Delete = %v", err)
	}
}

func TestServerScan(t *testing.T) {
	_, c := startServer(t)
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := c.Scan([]byte("k010"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("Scan returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		wantK := fmt.Sprintf("k%03d", 10+i)
		if string(p[0]) != wantK || string(p[1]) != fmt.Sprintf("v%d", 10+i) {
			t.Fatalf("pair %d = %s=%s", i, p[0], p[1])
		}
	}
	// Empty scan result.
	pairs, err = c.Scan([]byte("z"), 10)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty scan: %d pairs, %v", len(pairs), err)
	}
}

func TestServerStats(t *testing.T) {
	_, c := startServer(t)
	c.Put([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	line, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(line), []byte("puts=1")) || !bytes.Contains([]byte(line), []byte("gets=1")) {
		t.Errorf("stats line = %q", line)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.ln.Addr().String()

	const clients = 4
	const perClient = 200
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				k := []byte(fmt.Sprintf("c%d-k%04d", g, i))
				if err := c.Put(k, []byte("v")); err != nil {
					errCh <- err
					return
				}
				if v, err := c.Get(k); err != nil || string(v) != "v" {
					errCh <- fmt.Errorf("get %s: %q %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestScanPayloadRoundTrip(t *testing.T) {
	in := [][2][]byte{
		{[]byte("a"), []byte("1")},
		{[]byte(""), []byte("")},
		{[]byte("key"), bytes.Repeat([]byte("v"), 1000)},
	}
	out, err := decodeScanPayload(encodeScanPayload(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d pairs", len(out))
	}
	for i := range in {
		if !bytes.Equal(in[i][0], out[i][0]) || !bytes.Equal(in[i][1], out[i][1]) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if _, err := decodeScanPayload([]byte{1, 2}); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestServerCloseIsClean(t *testing.T) {
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(miodbStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	c.Put([]byte("k"), []byte("v"))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored")
	}
	// Requests after close fail at the transport level.
	if err := c.Put([]byte("k2"), []byte("v")); err == nil {
		t.Error("Put after server close succeeded")
	}
}
