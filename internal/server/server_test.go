package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/shard"
)

type miodbStore struct{ *core.DB }

func (s miodbStore) Flush() error { return s.DB.FlushAll() }

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(miodbStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestClientServerRoundTrip(t *testing.T) {
	_, c := startServer(t)

	if err := c.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("absent")); err != kvstore.ErrNotFound {
		t.Fatalf("Get(absent) = %v", err)
	}
	if err := c.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("hello")); err != kvstore.ErrNotFound {
		t.Fatalf("Get after Delete = %v", err)
	}
}

func TestServerScan(t *testing.T) {
	_, c := startServer(t)
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := c.Scan([]byte("k010"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("Scan returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		wantK := fmt.Sprintf("k%03d", 10+i)
		if string(p[0]) != wantK || string(p[1]) != fmt.Sprintf("v%d", 10+i) {
			t.Fatalf("pair %d = %s=%s", i, p[0], p[1])
		}
	}
	// Empty scan result.
	pairs, err = c.Scan([]byte("z"), 10)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty scan: %d pairs, %v", len(pairs), err)
	}
}

func TestServerStats(t *testing.T) {
	_, c := startServer(t)
	c.Put([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	line, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(line), []byte("puts=1")) || !bytes.Contains([]byte(line), []byte("gets=1")) {
		t.Errorf("stats line = %q", line)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.ln.Addr().String()

	const clients = 4
	const perClient = 200
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				k := []byte(fmt.Sprintf("c%d-k%04d", g, i))
				if err := c.Put(k, []byte("v")); err != nil {
					errCh <- err
					return
				}
				if v, err := c.Get(k); err != nil || string(v) != "v" {
					errCh <- fmt.Errorf("get %s: %q %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestClientMPut(t *testing.T) {
	_, c := startServer(t)

	ops := []kvstore.BatchOp{
		{Key: []byte("m1"), Value: []byte("v1")},
		{Key: []byte("m2"), Value: []byte("v2")},
		{Key: []byte("m3"), Value: []byte("v3")},
	}
	if err := c.MPut(ops); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		v, err := c.Get(op.Key)
		if err != nil || !bytes.Equal(v, op.Value) {
			t.Fatalf("Get(%s) = %q, %v", op.Key, v, err)
		}
	}
	// A batch mixing writes and deletes applies in order.
	if err := c.MPut([]kvstore.BatchOp{
		{Key: []byte("m1"), Value: []byte("v1b")},
		{Key: []byte("m2"), Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("m1")); err != nil || string(v) != "v1b" {
		t.Fatalf("Get(m1) = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("m2")); err != kvstore.ErrNotFound {
		t.Fatalf("Get(m2) after batched delete = %v", err)
	}
	// Empty batch is a no-op.
	if err := c.MPut(nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMPutClients(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.ln.Addr().String()

	const clients = 4
	const batches = 40
	const batchSize = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for b := 0; b < batches; b++ {
				ops := make([]kvstore.BatchOp, batchSize)
				for i := range ops {
					ops[i] = kvstore.BatchOp{
						Key:   []byte(fmt.Sprintf("c%d-b%03d-k%d", g, b, i)),
						Value: []byte(fmt.Sprintf("v%d.%d.%d", g, b, i)),
					}
				}
				if err := c.MPut(ops); err != nil {
					errCh <- fmt.Errorf("client %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Every batched write from every client is visible.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for g := 0; g < clients; g++ {
		for b := 0; b < batches; b++ {
			for i := 0; i < batchSize; i++ {
				k := fmt.Sprintf("c%d-b%03d-k%d", g, b, i)
				want := fmt.Sprintf("v%d.%d.%d", g, b, i)
				v, err := c.Get([]byte(k))
				if err != nil || string(v) != want {
					t.Fatalf("Get(%s) = %q, %v (want %q)", k, v, err, want)
				}
			}
		}
	}
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	in := []kvstore.BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("del"), Delete: true},
		{Key: []byte("big"), Value: bytes.Repeat([]byte("v"), 4096)},
		{Key: []byte("empty"), Value: nil},
	}
	out, err := DecodeBatchPayload(EncodeBatchPayload(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ops", len(out))
	}
	for i := range in {
		if !bytes.Equal(in[i].Key, out[i].Key) || !bytes.Equal(in[i].Value, out[i].Value) || in[i].Delete != out[i].Delete {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, in[i], out[i])
		}
	}
	for _, bad := range [][]byte{{1}, {1, 0, 0, 0}, {1, 0, 0, 0, 0, 5, 0, 0, 0}} {
		if _, err := DecodeBatchPayload(bad); err == nil {
			t.Errorf("truncated batch payload %v accepted", bad)
		}
	}
}

func TestScanPayloadRoundTrip(t *testing.T) {
	in := [][2][]byte{
		{[]byte("a"), []byte("1")},
		{[]byte(""), []byte("")},
		{[]byte("key"), bytes.Repeat([]byte("v"), 1000)},
	}
	out, err := DecodeScanPayload(EncodeScanPayload(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d pairs", len(out))
	}
	for i := range in {
		if !bytes.Equal(in[i][0], out[i][0]) || !bytes.Equal(in[i][1], out[i][1]) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if _, err := DecodeScanPayload([]byte{1, 2}); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestServerCloseIsClean(t *testing.T) {
	db, err := core.Open(core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(miodbStore{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	c.Put([]byte("k"), []byte("v"))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored")
	}
	// Requests after close fail at the transport level.
	if err := c.Put([]byte("k2"), []byte("v")); err == nil {
		t.Error("Put after server close succeeded")
	}
}

// TestServerOverShardedStore serves a shard router instead of a single
// engine — the Store interface is the seam, so the server needs no
// changes — and checks the whole client surface plus the sharded stats
// extension (partition count and per-shard op tallies).
func TestServerOverShardedStore(t *testing.T) {
	r, err := shard.Open(4, core.Options{MemTableSize: 16 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(r)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	for i := 0; i < 100; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := c.Get([]byte("k042")); err != nil || string(v) != "v42" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// MPUT routes through the router's batch splitter.
	batch := make([]kvstore.BatchOp, 0, 20)
	for i := 100; i < 120; i++ {
		batch = append(batch, kvstore.BatchOp{Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte("b")})
	}
	if err := c.MPut(batch); err != nil {
		t.Fatal(err)
	}
	// The scan is served by the merged cross-shard iterator: globally
	// ordered despite keys living on four engines.
	pairs, err := c.Scan([]byte("k"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 120 {
		t.Fatalf("scan returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if want := fmt.Sprintf("k%03d", i); string(p[0]) != want {
			t.Fatalf("pair %d = %q, want %q", i, p[0], want)
		}
	}
	line, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(line), []byte("shards=4")) {
		t.Errorf("stats line missing shards=4: %q", line)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Contains([]byte(line), []byte(fmt.Sprintf("shard%d_ops=", i))) {
			t.Errorf("stats line missing shard%d_ops: %q", i, line)
		}
	}
}
