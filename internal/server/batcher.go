package server

import (
	"sync"

	"miodb/internal/kvstore"
)

// submission is one write request (a single Put/Delete or a whole MPUT
// batch) queued for the shared commit path. respond is invoked exactly
// once with the outcome; it must not block (connection response queues
// are sized so an in-flight request can always enqueue its response).
type submission struct {
	ops     []kvstore.BatchOp
	respond func(status byte, payload []byte)
}

// batcher is the server's cross-connection group-former: every write
// from every connection funnels through one submission queue, and a
// single leader goroutine drains whatever has accumulated into one
// merged WriteBatch. With a group-commit store behind it, the merged
// batch reaches the commit queue as a single writer, so the engine's
// leader sees one large group instead of hundreds of single-record
// commits — the coalescing a fleet of independent connections can never
// produce on their own.
//
// Each submission keeps its own atomicity (its ops are contiguous in the
// merged batch and the store applies the whole merged batch as one
// commit); a store-level failure fails every submission in the merge,
// which is the right call — the only errors left after decode-time
// validation are whole-store conditions (degraded mode, closed).
type batcher struct {
	store  kvstore.Store
	ch     chan submission
	maxOps int

	wg sync.WaitGroup
}

// newBatcher sizes the queue to the server's global pending limit so a
// token-holding submitter never blocks on the channel send.
func newBatcher(store kvstore.Store, queueCap, maxOps int) *batcher {
	b := &batcher{
		store:  store,
		ch:     make(chan submission, queueCap),
		maxOps: maxOps,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// submit queues one write. The caller must hold a global pending token,
// which guarantees channel capacity.
func (b *batcher) submit(sub submission) {
	b.ch <- sub
}

func (b *batcher) run() {
	defer b.wg.Done()
	subs := make([]submission, 0, 64)
	for first := range b.ch {
		subs = append(subs[:0], first)
		nops := len(first.ops)
		// Opportunistic merge: take everything already queued, up to
		// maxOps. No timer — waiting would add latency without adding
		// coalescing, because while the store commits this merge the
		// next one accumulates behind it (the same leader/follower
		// dynamic as the engine's own group commit, one level up).
		for nops < b.maxOps {
			select {
			case sub, ok := <-b.ch:
				if !ok {
					nops = b.maxOps // queue closed: commit what we have
					continue
				}
				subs = append(subs, sub)
				nops += len(sub.ops)
			default:
				nops = b.maxOps
			}
		}
		var merged []kvstore.BatchOp
		if len(subs) == 1 {
			merged = subs[0].ops
		} else {
			merged = make([]kvstore.BatchOp, 0, nops)
			for _, s := range subs {
				merged = append(merged, s.ops...)
			}
		}
		err := applyBatch(b.store, merged)
		for _, s := range subs {
			if err != nil {
				s.respond(StatusError, []byte(err.Error()))
			} else {
				s.respond(StatusOK, nil)
			}
		}
	}
	// Channel closed: the server has drained every connection, so no
	// submissions can be in flight.
}

// stop closes the queue after all submitters are done and waits for the
// leader to finish the tail.
func (b *batcher) stop() {
	close(b.ch)
	b.wg.Wait()
}
