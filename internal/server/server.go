package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"miodb/internal/kvstore"
	"miodb/internal/stats"
)

// Options tunes the pipelined front end. The zero value takes defaults.
type Options struct {
	// Window caps in-flight requests per pipelined connection. A
	// connection whose client stops consuming responses fills its
	// window and stops being read — backpressure lands on the slow
	// consumer, never on the server or its neighbors. Default 128.
	Window int
	// MaxPending caps requests being processed at once across all
	// connections (the global admission limit in front of the store).
	// Default 4096.
	MaxPending int
	// MaxBatchOps caps how many operations the cross-connection
	// batcher merges into one store commit. Default 4096.
	MaxBatchOps int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// to complete before force-closing connections. Default 5s.
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.MaxBatchOps <= 0 {
		o.MaxBatchOps = 4096
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Server serves a kvstore.Store over TCP. Legacy (v1) connections run
// one request per round trip; pipelined (v2) connections are split into
// a reader goroutine (decodes and dispatches) and a writer goroutine
// (serializes tagged responses), so handling never blocks the socket.
// Writes from every connection funnel through one shared batcher that
// feeds the store's group-commit pipeline (see batcher.go).
type Server struct {
	store kvstore.Store
	opts  Options
	ln    net.Listener
	batch *batcher

	// pendingSem holds one token per request currently being processed
	// (global admission control); inflight tracks the same population
	// for Close's drain phase.
	pendingSem chan struct{}
	inflight   sync.WaitGroup

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup // accept loop + per-connection reader/writer goroutines
}

// New wraps a store with default options.
func New(store kvstore.Store) *Server { return NewWithOptions(store, Options{}) }

// NewWithOptions wraps a store with explicit front-end tuning.
func NewWithOptions(store kvstore.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		store:      store,
		opts:       opts,
		conns:      map[*conn]struct{}{},
		pendingSem: make(chan struct{}, opts.MaxPending),
	}
	s.batch = newBatcher(store, opts.MaxPending, opts.MaxBatchOps)
	return s
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{
			srv:    s,
			nc:     nc,
			br:     bufio.NewReaderSize(nc, 64<<10),
			closed: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(c)
	}
}

// conn is one client connection in either protocol mode.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// Pipelined mode only:
	writeCh chan tresp    // responses awaiting serialization (cap Window)
	window  chan struct{} // in-flight slots (cap Window)
	ops     sync.WaitGroup

	// Snapshots captured on this connection (OpSnap), keyed by the id
	// returned to the client. Connection-owned state: released by
	// OpSnapRel or en masse on disconnect, after in-flight requests
	// drain, so a dropped client can never leak a snapshot (which would
	// block store reclamation — and Close — forever).
	snapMu  sync.Mutex
	snaps   map[uint64]kvstore.SnapshotView
	snapSeq uint64

	closed    chan struct{}
	closeOnce sync.Once
}

// registerSnapshot stores a captured view and returns its id (never 0 —
// 0 means "the live store" in MGET requests).
func (c *conn) registerSnapshot(sv kvstore.SnapshotView) uint64 {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if c.snaps == nil {
		c.snaps = make(map[uint64]kvstore.SnapshotView)
	}
	c.snapSeq++
	c.snaps[c.snapSeq] = sv
	return c.snapSeq
}

// lookupSnapshot resolves an id to its view (nil if unknown/released).
func (c *conn) lookupSnapshot(id uint64) kvstore.SnapshotView {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.snaps[id]
}

// takeSnapshot removes an id from the registry, returning the view so
// the caller can Close it outside the lock.
func (c *conn) takeSnapshot(id uint64) kvstore.SnapshotView {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	sv := c.snaps[id]
	delete(c.snaps, id)
	return sv
}

// releaseSnapshots closes every snapshot still registered. Called once
// all in-flight requests for the connection have drained.
func (c *conn) releaseSnapshots() {
	c.snapMu.Lock()
	snaps := c.snaps
	c.snaps = nil
	c.snapMu.Unlock()
	for _, sv := range snaps {
		sv.Close()
	}
}

// tresp is one tagged response queued for the write loop.
type tresp struct {
	tag     uint64
	status  byte
	payload []byte
}

// shutdown force-closes the connection (idempotent). Blocked reads and
// writes error out; goroutines selecting on c.closed exit.
func (c *conn) shutdown() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
	})
}

// enqueue hands a response to the write loop. Capacity Window and the
// one-response-per-in-flight-request invariant make the send
// non-blocking on a live connection; on a dead one the response drops.
func (c *conn) enqueue(r tresp) {
	select {
	case c.writeCh <- r:
	case <-c.closed:
	}
}

// serve sniffs the protocol version from the first byte: a v2 client
// leads with the "MIO2" magic, whose first byte is outside the op-code
// range; anything else is a legacy request stream.
func (s *Server) serve(c *conn) {
	defer s.wg.Done()
	first, err := c.br.ReadByte()
	if err != nil {
		c.shutdown()
		s.forget(c)
		return
	}
	if first == MagicV2[0] {
		var rest [3]byte
		if _, err := io.ReadFull(c.br, rest[:]); err != nil ||
			rest != [3]byte{MagicV2[1], MagicV2[2], MagicV2[3]} {
			c.shutdown()
			s.forget(c)
			return
		}
		s.servePipelined(c)
		return
	}
	c.br.UnreadByte()
	s.serveLegacy(c)
}

func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// servePipelined is the v2 read loop: decode, admit (per-connection
// window, then global pending limit), dispatch. It never writes to the
// socket; the write loop owns that side.
func (s *Server) servePipelined(c *conn) {
	c.writeCh = make(chan tresp, s.opts.Window)
	c.window = make(chan struct{}, s.opts.Window)
	s.wg.Add(1)
	go c.writeLoop()

	for {
		req, err := readTaggedRequest(c.br)
		if err != nil {
			break // disconnect, malformed stream, or drain deadline
		}
		select {
		case c.window <- struct{}{}:
		case <-c.closed:
			goto out
		}
		select {
		case s.pendingSem <- struct{}{}:
		case <-c.closed:
			goto out
		}
		s.inflight.Add(1)
		c.ops.Add(1)
		s.dispatch(c, req)
	}
out:
	// Let every dispatched request finish and enqueue its response,
	// release the connection's snapshots (nothing can reach them
	// anymore), then close the queue so the write loop flushes the tail
	// and tears the socket down.
	go func() {
		c.ops.Wait()
		c.releaseSnapshots()
		close(c.writeCh)
	}()
	s.forget(c)
}

// writeLoop is the single writer for a pipelined connection: it drains
// queued responses, coalescing everything ready into one socket write,
// and releases window slots once responses are on the wire.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	buf := make([]byte, 0, 16<<10)
	for {
		var r tresp
		var ok bool
		select {
		case r, ok = <-c.writeCh:
			if !ok {
				c.shutdown()
				return
			}
		case <-c.closed:
			return
		}
		buf = appendTaggedResponse(buf[:0], r.tag, r.status, r.payload)
		n := 1
	coalesce:
		for len(buf) < 256<<10 {
			select {
			case r2, ok2 := <-c.writeCh:
				if !ok2 {
					break coalesce
				}
				buf = appendTaggedResponse(buf, r2.tag, r2.status, r2.payload)
				n++
			default:
				break coalesce
			}
		}
		if _, err := c.nc.Write(buf); err != nil {
			c.shutdown()
			return
		}
		for i := 0; i < n; i++ {
			<-c.window
		}
	}
}

// dispatch routes one admitted request. Writes go to the shared batcher
// (the reader blocks only on admission, never on the commit); reads run
// in their own goroutine so a device-bound Get cannot stall decoding.
// done fires exactly once per request and releases everything the
// request holds.
func (s *Server) dispatch(c *conn, req taggedRequest) {
	op := req.op
	done := func(status byte, payload []byte) {
		c.enqueue(tresp{tag: req.tag, status: status, payload: payload})
		<-s.pendingSem
		s.inflight.Done()
		c.ops.Done()
	}
	switch op {
	case OpPut:
		if len(req.key) == 0 {
			done(StatusError, []byte("put: empty key"))
			return
		}
		s.batch.submit(submission{
			ops:     []kvstore.BatchOp{{Key: req.key, Value: req.val}},
			respond: done,
		})
	case OpDelete:
		if len(req.key) == 0 {
			done(StatusError, []byte("delete: empty key"))
			return
		}
		s.batch.submit(submission{
			ops:     []kvstore.BatchOp{{Key: req.key, Delete: true}},
			respond: done,
		})
	case OpMPut:
		ops, err := DecodeBatchPayload(req.val)
		if err != nil {
			done(StatusError, []byte(err.Error()))
			return
		}
		if msg := s.validateBatch(ops); msg != "" {
			done(StatusError, []byte(msg))
			return
		}
		if len(ops) == 0 {
			done(StatusOK, nil)
			return
		}
		s.batch.submit(submission{ops: ops, respond: done})
	case OpDelRange:
		ops, msg := s.delRangeOps(req.request)
		if msg != "" {
			done(StatusError, []byte(msg))
			return
		}
		if len(ops) == 0 {
			done(StatusOK, nil) // empty range — a no-op, like the store's
			return
		}
		s.batch.submit(submission{ops: ops, respond: done})
	default:
		go func() {
			status, payload := s.handleRead(c, req.request)
			done(status, payload)
		}()
	}
}

// validateBatch screens a decoded MPUT batch: empty keys are refused
// (range deletes excepted — an empty start means "from the first key"),
// and range deletes require a store that can honor them.
func (s *Server) validateBatch(ops []kvstore.BatchOp) string {
	for _, o := range ops {
		if o.RangeDelete {
			if _, ok := s.store.(kvstore.RangeDeleter); !ok {
				return "mput: store does not support range deletes"
			}
			continue
		}
		if len(o.Key) == 0 {
			return "mput: empty key"
		}
	}
	return ""
}

// delRangeOps turns a DELRANGE request into its batch form after the
// capability check. An empty range returns no ops (a no-op, matching the
// store's own DeleteRange contract).
func (s *Server) delRangeOps(req request) ([]kvstore.BatchOp, string) {
	if _, ok := s.store.(kvstore.RangeDeleter); !ok {
		return nil, "delrange: store does not support range deletes"
	}
	if len(req.val) > 0 && string(req.key) >= string(req.val) {
		return nil, ""
	}
	return []kvstore.BatchOp{{Key: req.key, Value: req.val, RangeDelete: true}}, ""
}

// serveLegacy is the v1 loop: one request, one synchronous response.
// Writes still route through the shared batcher, so even legacy
// connections contribute to (and benefit from) cross-connection
// group commit.
func (s *Server) serveLegacy(c *conn) {
	defer func() {
		c.releaseSnapshots()
		c.shutdown()
		s.forget(c)
	}()
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	for {
		req, err := readRequest(c.br)
		if err != nil {
			return
		}
		select {
		case s.pendingSem <- struct{}{}:
		case <-c.closed:
			return
		}
		s.inflight.Add(1)
		status, payload := s.process(c, req)
		<-s.pendingSem
		s.inflight.Done()
		if err := writeResponse(bw, status, payload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// process executes one request synchronously (the legacy path).
func (s *Server) process(c *conn, req request) (byte, []byte) {
	switch req.op {
	case OpPut, OpDelete, OpMPut, OpDelRange:
		var ops []kvstore.BatchOp
		switch req.op {
		case OpPut:
			if len(req.key) == 0 {
				return StatusError, []byte("put: empty key")
			}
			ops = []kvstore.BatchOp{{Key: req.key, Value: req.val}}
		case OpDelete:
			if len(req.key) == 0 {
				return StatusError, []byte("delete: empty key")
			}
			ops = []kvstore.BatchOp{{Key: req.key, Delete: true}}
		case OpMPut:
			var err error
			ops, err = DecodeBatchPayload(req.val)
			if err != nil {
				return StatusError, []byte(err.Error())
			}
			if msg := s.validateBatch(ops); msg != "" {
				return StatusError, []byte(msg)
			}
			if len(ops) == 0 {
				return StatusOK, nil
			}
		case OpDelRange:
			var msg string
			ops, msg = s.delRangeOps(req)
			if msg != "" {
				return StatusError, []byte(msg)
			}
			if len(ops) == 0 {
				return StatusOK, nil
			}
		}
		ch := make(chan tresp, 1)
		s.batch.submit(submission{ops: ops, respond: func(status byte, payload []byte) {
			ch <- tresp{status: status, payload: payload}
		}})
		r := <-ch
		return r.status, r.payload
	default:
		return s.handleRead(c, req)
	}
}

// handleRead serves the non-mutating ops (and rejects unknown ones).
// The conn carries the connection's snapshot registry for the SNAP
// family.
func (s *Server) handleRead(c *conn, req request) (byte, []byte) {
	switch req.op {
	case OpGet:
		v, err := s.store.Get(req.key)
		switch {
		case err == nil:
			return StatusOK, v
		case errors.Is(err, kvstore.ErrNotFound):
			return StatusNotFound, nil
		default:
			return StatusError, []byte(err.Error())
		}
	case OpSnap:
		sn, ok := s.store.(kvstore.Snapshotter)
		if !ok {
			return StatusError, []byte("snap: store does not support snapshots")
		}
		sv, err := sn.SnapshotView()
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		var id [8]byte
		binary.LittleEndian.PutUint64(id[:], c.registerSnapshot(sv))
		return StatusOK, id[:]
	case OpSnapGet:
		if len(req.val) != 8 {
			return StatusError, []byte("snapget: missing snapshot id")
		}
		sv := c.lookupSnapshot(binary.LittleEndian.Uint64(req.val))
		if sv == nil {
			return StatusError, []byte("snapget: unknown snapshot id")
		}
		v, err := sv.Get(req.key)
		switch {
		case err == nil:
			return StatusOK, v
		case errors.Is(err, kvstore.ErrNotFound):
			return StatusNotFound, nil
		default:
			return StatusError, []byte(err.Error())
		}
	case OpSnapRel:
		if len(req.val) != 8 {
			return StatusError, []byte("snaprel: missing snapshot id")
		}
		sv := c.takeSnapshot(binary.LittleEndian.Uint64(req.val))
		if sv == nil {
			return StatusError, []byte("snaprel: unknown snapshot id")
		}
		if err := sv.Close(); err != nil {
			return StatusError, []byte(err.Error())
		}
		return StatusOK, nil
	case OpMGet:
		snapID, mkeys, err := DecodeMGetRequest(req.val)
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		var values [][]byte
		var errs []error
		if snapID == 0 {
			mg, ok := s.store.(kvstore.MultiGetter)
			if !ok {
				return StatusError, []byte("mget: store does not support multi-get")
			}
			values, errs = mg.GetMulti(mkeys)
		} else {
			sv := c.lookupSnapshot(snapID)
			if sv == nil {
				return StatusError, []byte("mget: unknown snapshot id")
			}
			values, errs = sv.GetMulti(mkeys)
		}
		for _, err := range errs {
			if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
				return StatusError, []byte(err.Error())
			}
		}
		return StatusOK, EncodeMGetResponse(values, errs)
	case OpScan:
		if len(req.val) != 4 {
			return StatusError, []byte("scan: missing limit")
		}
		limit := int(binary.LittleEndian.Uint32(req.val))
		var pairs [][2][]byte
		err := s.store.Scan(req.key, limit, func(k, v []byte) bool {
			pairs = append(pairs, [2][]byte{
				append([]byte(nil), k...),
				append([]byte(nil), v...),
			})
			return true
		})
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		return StatusOK, EncodeScanPayload(pairs)
	case OpStats:
		return StatusOK, []byte(s.statsLine())
	default:
		return StatusError, []byte("unknown op")
	}
}

// statsLine renders the store's cost accounting plus the store's per-op
// latency percentiles, so a plain client sees the same numbers the
// netscale benchmark and miodb-bench report. The server used to keep
// its own service-time histograms here; they double-counted what the
// core already measures and are replaced by the core distributions.
func (s *Server) statsLine() string {
	st := s.store.Stats()
	payload := fmt.Sprintf("puts=%d gets=%d deletes=%d scans=%d wa=%.3f interval_stall_ns=%d cumulative_stall_ns=%d"+
		" bloom_probes=%d bloom_skips=%d bloom_fps=%d bloom_fp_rate=%.4f"+
		" live_versions=%d pending_releases=%d read_epoch=%d versions_swept=%d",
		st.Puts, st.Gets, st.Deletes, st.Scans, st.WriteAmplification,
		int64(st.IntervalStall), int64(st.CumulativeStall),
		st.BloomProbes, st.BloomSkips, st.BloomFalsePositives, st.BloomFalsePositiveRate,
		st.LiveVersions, st.PendingReleases, st.ReadEpoch, st.VersionsSwept)
	if st.WriteGroups > 0 {
		payload += fmt.Sprintf(" write_groups=%d grouped_writes=%d mean_group_size=%.2f",
			st.WriteGroups, st.GroupedWrites, st.MeanGroupSize)
	}
	// A sharded store reports its partition count and per-shard op
	// tallies so a client can see the routing balance.
	if len(st.Shards) > 0 {
		payload += fmt.Sprintf(" shards=%d", len(st.Shards))
		for i, sh := range st.Shards {
			payload += fmt.Sprintf(" shard%d_ops=%d", i, sh.Puts+sh.Gets+sh.Deletes+sh.Scans)
		}
	}
	// Per-op latency from the core histograms. The protocol's mput maps
	// to the store's commit distribution (one sample per applied batch);
	// put/delete report per-record commit latency.
	for _, m := range []struct {
		name string
		op   stats.Op
	}{
		{"get", stats.OpGet},
		{"put", stats.OpPut},
		{"delete", stats.OpDelete},
		{"scan", stats.OpScan},
		{"mput", stats.OpCommit},
	} {
		snap := st.OpLatencies[m.op]
		if snap.Count == 0 {
			continue
		}
		payload += fmt.Sprintf(" lat_%s_count=%d lat_%s_p50_us=%.1f lat_%s_p99_us=%.1f lat_%s_p999_us=%.1f",
			m.name, snap.Count,
			m.name, snap.P50.Seconds()*1e6,
			m.name, snap.P99.Seconds()*1e6,
			m.name, snap.P999.Seconds()*1e6)
	}
	// Backlog gauges: the elastic-buffer debt behind the write path.
	if st.PendingImms > 0 || st.L0Tables > 0 {
		payload += fmt.Sprintf(" pending_imms=%d pending_imm_bytes=%d l0_tables=%d l0_bytes=%d",
			st.PendingImms, st.PendingImmBytes, st.L0Tables, st.L0Bytes)
	}
	return payload
}

// applyBatch hands a merged batch to the store. Stores with a batch
// write path (MioDB's group-commit pipeline) get the whole batch in one
// commit — one WAL append, consecutive sequence numbers; others fall
// back to per-operation writes, which keeps every kvstore.Store
// servable.
func applyBatch(store kvstore.Store, ops []kvstore.BatchOp) error {
	if bw, ok := store.(kvstore.BatchWriter); ok {
		return bw.WriteBatch(ops)
	}
	for _, op := range ops {
		var err error
		switch {
		case op.RangeDelete:
			// Decode-time validation guarantees the store implements
			// RangeDeleter before a range op reaches a batch.
			rd, ok := store.(kvstore.RangeDeleter)
			if !ok {
				return fmt.Errorf("server: store does not support range deletes")
			}
			err = rd.DeleteRange(op.Key, op.Value)
		case op.Delete:
			err = store.Delete(op.Key)
		default:
			err = store.Put(op.Key, op.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Close drains gracefully: stop accepting, stop reading new requests,
// let in-flight requests complete (bounded by DrainTimeout), flush
// their responses, then tear connections down. The underlying store is
// not closed (the caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	// Phase 1: wake every blocked read so the readers stop admitting
	// new requests. Requests already admitted keep running.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	// Phase 2: bounded wait for in-flight requests to finish.
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	timeout := time.NewTimer(s.opts.DrainTimeout)
	defer timeout.Stop()
	select {
	case <-drained:
	case <-timeout.C:
	}
	// Phase 3: wait for the write loops to flush the drained responses
	// and exit; force-close stragglers after a second bounded wait.
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	force := time.NewTimer(s.opts.DrainTimeout)
	defer force.Stop()
	select {
	case <-finished:
	case <-force.C:
		for _, c := range conns {
			c.shutdown()
		}
		<-finished
	}
	// No connection goroutine is left, so nothing can submit: stop the
	// batcher after it finishes the queued tail.
	s.batch.stop()
	return nil
}

// Client is a synchronous protocol-v1 client for one connection: one
// request in flight per round trip. It is kept for backward
// compatibility and as the non-pipelined reference point; use
// internal/client for the pipelined client. It is safe for serialized
// use; open one client per goroutine for concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server with the legacy protocol.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key, val []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.conn, op, key, val); err != nil {
		return 0, nil, err
	}
	return readResponse(c.conn)
}

// Get fetches the newest value for key; kvstore.ErrNotFound if absent.
func (c *Client) Get(key []byte) ([]byte, error) {
	status, payload, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case StatusOK:
		return payload, nil
	case StatusNotFound:
		return nil, kvstore.ErrNotFound
	default:
		return nil, fmt.Errorf("server: %s", payload)
	}
}

// Put stores a key-value pair.
func (c *Client) Put(key, value []byte) error {
	status, payload, err := c.roundTrip(OpPut, key, value)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// Delete removes a key.
func (c *Client) Delete(key []byte) error {
	status, payload, err := c.roundTrip(OpDelete, key, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// MPut applies a batch of writes in one round trip. With a batch-capable
// store behind the server the whole batch commits atomically (one WAL
// append, consecutive sequence numbers); otherwise it is applied as
// individual writes in order.
func (c *Client) MPut(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	status, payload, err := c.roundTrip(OpMPut, nil, EncodeBatchPayload(ops))
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// DeleteRange deletes every key k with start ≤ k < end (empty end =
// unbounded) in one round trip. The server refuses if its store has no
// range-delete support.
func (c *Client) DeleteRange(start, end []byte) error {
	status, payload, err := c.roundTrip(OpDelRange, start, end)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// GetMulti reads several keys in one round trip. Results are
// positional: values[i] and errs[i] answer keys[i], with
// kvstore.ErrNotFound per missing key; a transport or server failure is
// reported in every errs[i].
func (c *Client) GetMulti(keys [][]byte) ([][]byte, []error) {
	return c.mget(0, keys)
}

func (c *Client) mget(snapID uint64, keys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return values, errs
	}
	fail := func(err error) ([][]byte, []error) {
		for i := range errs {
			errs[i] = err
		}
		return values, errs
	}
	status, payload, err := c.roundTrip(OpMGet, nil, EncodeMGetRequest(snapID, keys))
	if err != nil {
		return fail(err)
	}
	if status != StatusOK {
		return fail(fmt.Errorf("server: %s", payload))
	}
	vs, es, err := DecodeMGetResponse(payload)
	if err != nil {
		return fail(err)
	}
	if len(vs) != len(keys) {
		return fail(fmt.Errorf("server: mget answered %d of %d keys", len(vs), len(keys)))
	}
	return vs, es
}

// ClientSnap is a server-side snapshot captured over a legacy
// connection; see the pipelined client's Snap for the full story.
type ClientSnap struct {
	c  *Client
	id uint64
}

// Snapshot captures a consistent snapshot on the server.
func (c *Client) Snapshot() (*ClientSnap, error) {
	status, payload, err := c.roundTrip(OpSnap, nil, nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: %s", payload)
	}
	if len(payload) != 8 {
		return nil, fmt.Errorf("server: malformed snapshot id")
	}
	return &ClientSnap{c: c, id: binary.LittleEndian.Uint64(payload)}, nil
}

// Get returns the value key had when the snapshot was captured.
func (s *ClientSnap) Get(key []byte) ([]byte, error) {
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], s.id)
	status, payload, err := s.c.roundTrip(OpSnapGet, key, id[:])
	if err != nil {
		return nil, err
	}
	switch status {
	case StatusOK:
		return payload, nil
	case StatusNotFound:
		return nil, kvstore.ErrNotFound
	default:
		return nil, fmt.Errorf("server: %s", payload)
	}
}

// GetMulti reads several keys from the snapshot's cut; all answers are
// mutually consistent.
func (s *ClientSnap) GetMulti(keys [][]byte) ([][]byte, []error) {
	return s.c.mget(s.id, keys)
}

// Close releases the snapshot on the server.
func (s *ClientSnap) Close() error {
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], s.id)
	status, payload, err := s.c.roundTrip(OpSnapRel, nil, id[:])
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// Scan returns up to limit ordered key-value pairs starting at start.
func (c *Client) Scan(start []byte, limit int) ([][2][]byte, error) {
	var lim [4]byte
	binary.LittleEndian.PutUint32(lim[:], uint32(limit))
	status, payload, err := c.roundTrip(OpScan, start, lim[:])
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: %s", payload)
	}
	return DecodeScanPayload(payload)
}

// Stats returns the server's cost-accounting line.
func (c *Client) Stats() (string, error) {
	status, payload, err := c.roundTrip(OpStats, nil, nil)
	if err != nil {
		return "", err
	}
	if status != StatusOK {
		return "", fmt.Errorf("server: %s", payload)
	}
	return string(payload), nil
}
