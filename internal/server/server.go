package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"miodb/internal/kvstore"
)

// Server serves a kvstore.Store over TCP, one goroutine per connection.
type Server struct {
	store kvstore.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New wraps a store.
func New(store kvstore.Store) *Server {
	return &Server{store: store, conns: map[net.Conn]struct{}{}}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readRequest(conn)
		if err != nil {
			return // disconnect or malformed stream
		}
		if err := s.handle(conn, req); err != nil {
			return
		}
	}
}

func (s *Server) handle(conn net.Conn, req request) error {
	switch req.op {
	case OpGet:
		v, err := s.store.Get(req.key)
		switch {
		case err == nil:
			return writeResponse(conn, StatusOK, v)
		case errors.Is(err, kvstore.ErrNotFound):
			return writeResponse(conn, StatusNotFound, nil)
		default:
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
	case OpPut:
		if err := s.store.Put(req.key, req.val); err != nil {
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
		return writeResponse(conn, StatusOK, nil)
	case OpDelete:
		if err := s.store.Delete(req.key); err != nil {
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
		return writeResponse(conn, StatusOK, nil)
	case OpMPut:
		ops, err := decodeBatchPayload(req.val)
		if err != nil {
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
		if err := applyBatch(s.store, ops); err != nil {
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
		return writeResponse(conn, StatusOK, nil)
	case OpScan:
		if len(req.val) != 4 {
			return writeResponse(conn, StatusError, []byte("scan: missing limit"))
		}
		limit := int(binary.LittleEndian.Uint32(req.val))
		var pairs [][2][]byte
		err := s.store.Scan(req.key, limit, func(k, v []byte) bool {
			pairs = append(pairs, [2][]byte{
				append([]byte(nil), k...),
				append([]byte(nil), v...),
			})
			return true
		})
		if err != nil {
			return writeResponse(conn, StatusError, []byte(err.Error()))
		}
		return writeResponse(conn, StatusOK, encodeScanPayload(pairs))
	case OpStats:
		st := s.store.Stats()
		payload := fmt.Sprintf("puts=%d gets=%d deletes=%d scans=%d wa=%.3f interval_stall_ns=%d cumulative_stall_ns=%d"+
			" bloom_probes=%d bloom_skips=%d bloom_fps=%d bloom_fp_rate=%.4f"+
			" live_versions=%d pending_releases=%d read_epoch=%d versions_swept=%d",
			st.Puts, st.Gets, st.Deletes, st.Scans, st.WriteAmplification,
			int64(st.IntervalStall), int64(st.CumulativeStall),
			st.BloomProbes, st.BloomSkips, st.BloomFalsePositives, st.BloomFalsePositiveRate,
			st.LiveVersions, st.PendingReleases, st.ReadEpoch, st.VersionsSwept)
		// A sharded store reports its partition count and per-shard op
		// tallies so a client can see the routing balance.
		if len(st.Shards) > 0 {
			payload += fmt.Sprintf(" shards=%d", len(st.Shards))
			for i, sh := range st.Shards {
				payload += fmt.Sprintf(" shard%d_ops=%d", i, sh.Puts+sh.Gets+sh.Deletes+sh.Scans)
			}
		}
		return writeResponse(conn, StatusOK, []byte(payload))
	default:
		return writeResponse(conn, StatusError, []byte("unknown op"))
	}
}

// applyBatch hands a decoded MPUT to the store. Stores with a batch write
// path (MioDB's group-commit pipeline) get the whole batch in one commit —
// one WAL append, consecutive sequence numbers; others fall back to
// per-operation writes, which keeps every kvstore.Store servable.
func applyBatch(store kvstore.Store, ops []kvstore.BatchOp) error {
	if bw, ok := store.(kvstore.BatchWriter); ok {
		return bw.WriteBatch(ops)
	}
	for _, op := range ops {
		var err error
		if op.Delete {
			err = store.Delete(op.Key)
		} else {
			err = store.Put(op.Key, op.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops accepting, closes every connection, and waits for handlers.
// The underlying store is not closed (the caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Client is a synchronous client for one connection. It is safe for
// serialized use; open one client per goroutine for concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key, val []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.conn, op, key, val); err != nil {
		return 0, nil, err
	}
	return readResponse(c.conn)
}

// Get fetches the newest value for key; kvstore.ErrNotFound if absent.
func (c *Client) Get(key []byte) ([]byte, error) {
	status, payload, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case StatusOK:
		return payload, nil
	case StatusNotFound:
		return nil, kvstore.ErrNotFound
	default:
		return nil, fmt.Errorf("server: %s", payload)
	}
}

// Put stores a key-value pair.
func (c *Client) Put(key, value []byte) error {
	status, payload, err := c.roundTrip(OpPut, key, value)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// Delete removes a key.
func (c *Client) Delete(key []byte) error {
	status, payload, err := c.roundTrip(OpDelete, key, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// MPut applies a batch of writes in one round trip. With a batch-capable
// store behind the server the whole batch commits atomically (one WAL
// append, consecutive sequence numbers); otherwise it is applied as
// individual writes in order.
func (c *Client) MPut(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	status, payload, err := c.roundTrip(OpMPut, nil, encodeBatchPayload(ops))
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("server: %s", payload)
	}
	return nil
}

// Scan returns up to limit ordered key-value pairs starting at start.
func (c *Client) Scan(start []byte, limit int) ([][2][]byte, error) {
	var lim [4]byte
	binary.LittleEndian.PutUint32(lim[:], uint32(limit))
	status, payload, err := c.roundTrip(OpScan, start, lim[:])
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: %s", payload)
	}
	return decodeScanPayload(payload)
}

// Stats returns the server's cost-accounting line.
func (c *Client) Stats() (string, error) {
	status, payload, err := c.roundTrip(OpStats, nil, nil)
	if err != nil {
		return "", err
	}
	if status != StatusOK {
		return "", fmt.Errorf("server: %s", payload)
	}
	return string(payload), nil
}
