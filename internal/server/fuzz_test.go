package server

import (
	"bytes"
	"io"
	"testing"

	"miodb/internal/kvstore"
)

// FuzzTaggedRequest feeds arbitrary bytes to the v2 request decoder: it
// must never panic, and whatever it accepts must re-encode to the bytes
// it consumed (the codec is canonical).
func FuzzTaggedRequest(f *testing.F) {
	f.Add(AppendTaggedRequest(nil, 1, OpPut, []byte("key"), []byte("val")))
	f.Add(AppendTaggedRequest(nil, 0xFFFFFFFFFFFFFFFF, OpGet, []byte("k"), nil))
	f.Add(AppendTaggedRequest(nil, 42, OpMPut, nil,
		EncodeBatchPayload([]kvstore.BatchOp{{Key: []byte("a"), Value: []byte("b")}})))
	// Truncated frames and malformed tags.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 99, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		req, err := readTaggedRequest(r)
		if err != nil {
			return
		}
		if !validOp(req.op) {
			t.Fatalf("decoder accepted invalid op %d", req.op)
		}
		consumed := len(data) - r.Len()
		re := AppendTaggedRequest(nil, req.tag, req.op, req.key, req.val)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:consumed])
		}
	})
}

// FuzzTaggedResponse does the same for the response side of the framing.
func FuzzTaggedResponse(f *testing.F) {
	f.Add(appendTaggedResponse(nil, 7, StatusOK, []byte("payload")))
	f.Add(appendTaggedResponse(nil, 0, StatusNotFound, nil))
	f.Add(appendTaggedResponse(nil, 1<<63, StatusError, bytes.Repeat([]byte("e"), 100)))
	f.Add([]byte{9})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		tag, status, payload, err := ReadTaggedResponse(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		re := appendTaggedResponse(nil, tag, status, payload)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:consumed])
		}
	})
}

// FuzzBatchPayload hammers the MPUT payload decoder with arbitrary
// bytes: no panics, and accepted payloads survive a round trip.
func FuzzBatchPayload(f *testing.F) {
	f.Add(EncodeBatchPayload([]kvstore.BatchOp{
		{Key: []byte("k"), Value: []byte("v")},
		{Key: []byte("d"), Delete: true},
	}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{1, 0, 0, 0, 0, 0xFE, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeBatchPayload(data)
		if err != nil {
			return
		}
		re := EncodeBatchPayload(ops)
		ops2, err := DecodeBatchPayload(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if len(ops2) != len(ops) {
			t.Fatalf("round trip changed op count: %d vs %d", len(ops2), len(ops))
		}
		for i := range ops {
			if !bytes.Equal(ops[i].Key, ops2[i].Key) ||
				!bytes.Equal(ops[i].Value, ops2[i].Value) ||
				ops[i].Delete != ops2[i].Delete {
				t.Fatalf("op %d changed across round trip", i)
			}
		}
	})
}

// FuzzScanPayload does the same for the scan result codec.
func FuzzScanPayload(f *testing.F) {
	f.Add(EncodeScanPayload([][2][]byte{{[]byte("k"), []byte("v")}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs, err := DecodeScanPayload(data)
		if err != nil {
			return
		}
		re := EncodeScanPayload(pairs)
		pairs2, err := DecodeScanPayload(re)
		if err != nil || len(pairs2) != len(pairs) {
			t.Fatalf("round trip: %d pairs, %v", len(pairs2), err)
		}
	})
}

// TestTaggedRequestTruncations table-drives the malformed-stream cases
// the fuzzer seeds cover, so they are exercised in every plain test run.
func TestTaggedRequestTruncations(t *testing.T) {
	good := AppendTaggedRequest(nil, 3, OpPut, []byte("key"), []byte("value"))
	for cut := 0; cut < len(good); cut++ {
		if _, err := readTaggedRequest(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Unknown op after a valid tag.
	bad := append([]byte{1, 0, 0, 0, 0, 0, 0, 0}, 0x77)
	bad = append(bad, make([]byte, 8)...)
	if _, err := readTaggedRequest(bytes.NewReader(bad)); err == nil {
		t.Error("unknown op accepted")
	}
	// Oversized frame length.
	huge := append([]byte{1, 0, 0, 0, 0, 0, 0, 0}, OpPut)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := readTaggedRequest(bytes.NewReader(huge)); err == nil {
		t.Error("oversized key frame accepted")
	}
	// EOF mid-payload on the response side.
	resp := appendTaggedResponse(nil, 9, StatusOK, []byte("0123456789"))
	if _, _, _, err := ReadTaggedResponse(bytes.NewReader(resp[:len(resp)-3])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-payload truncation: %v", err)
	}
}
