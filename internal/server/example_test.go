package server_test

import (
	"fmt"

	"miodb/internal/core"
	"miodb/internal/server"
)

type store struct{ *core.DB }

func (s store) Flush() error { return s.DB.FlushAll() }

// Example demonstrates serving a MioDB store over TCP and talking to it
// with the bundled client.
func Example() {
	db, err := core.Open(core.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	srv := server.New(store{db})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	c, err := server.Dial(addr.String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	c.Put([]byte("sensor/42"), []byte("21.5C"))
	v, _ := c.Get([]byte("sensor/42"))
	fmt.Println(string(v))

	pairs, _ := c.Scan([]byte("sensor/"), 10)
	fmt.Println(len(pairs), "pairs")
	// Output:
	// 21.5C
	// 1 pairs
}
