// Package server provides the TCP key-value service over any store in the
// repository (MioDB or a baseline), plus the matching clients. It turns
// the single-process reproduction into something a downstream user can
// actually deploy and benchmark over a network.
//
// Two wire formats share the port (all integers little-endian):
//
// Legacy (protocol v1), one request in flight per round trip:
//
//	request  := op(1) | keyLen(4) | key | valLen(4) | val
//	response := status(1) | payloadLen(4) | payload
//
// Pipelined (protocol v2), negotiated by the client sending the 4-byte
// magic "MIO2" immediately after connect. Every request carries a
// client-chosen 8-byte tag; many requests may be in flight per
// connection and responses return in completion order, each echoing the
// tag of the request it answers:
//
//	request  := tag(8) | op(1) | keyLen(4) | key | valLen(4) | val
//	response := tag(8) | status(1) | payloadLen(4) | payload
//
// The magic's first byte (0x4D, 'M') is outside the op-code range, so a
// server can sniff the version from the first byte of a connection.
// internal/client speaks v2; the Client in this package speaks v1.
//
// For SCAN, key is the start key and val carries the 4-byte limit; the
// response payload is a sequence of keyLen|key|valLen|val pairs.
//
// The versioned read ops (SNAP, SNAPGET, MGET, SNAPREL) and DELRANGE ride
// the same frames; see the op-code constants for their key/val layouts.
// Snapshots are per-connection state: ids are only meaningful on the
// connection that created them and are released on disconnect.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"miodb/internal/kvstore"
)

// Op codes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
	OpStats
	// OpMPut applies a batch of writes atomically in one round trip. The
	// request key frame is empty; the value frame carries the batch payload
	// (see EncodeBatchPayload). Batches feed the store's group-commit
	// pipeline directly when it implements kvstore.BatchWriter.
	OpMPut

	// OpSnap captures a consistent snapshot on the server and returns its
	// 8-byte id in the response payload. The snapshot is owned by the
	// connection: it is released by OpSnapRel or automatically when the
	// connection closes. Requires a kvstore.Snapshotter store.
	OpSnap
	// OpSnapGet reads one key from a snapshot: key is the key, val the
	// 8-byte snapshot id. Status/payload behave exactly like OpGet.
	OpSnapGet
	// OpMGet answers several point lookups in one round trip. The key
	// frame is empty; the value frame carries the request payload (see
	// EncodeMGetRequest): an 8-byte snapshot id (0 = the live store) and
	// the keys. The response payload is EncodeMGetResponse.
	OpMGet
	// OpDelRange deletes every key k with start ≤ k < end in one
	// operation: key is the inclusive start, val the exclusive end (empty
	// = unbounded). Requires a kvstore.RangeDeleter store.
	OpDelRange
	// OpSnapRel releases a snapshot: val is the 8-byte snapshot id.
	OpSnapRel

	// opCount bounds the op-code space for per-op accounting tables.
	opCount = OpSnapRel + 1
)

// Status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusError
)

// MagicV2 is the preamble a pipelined (protocol v2) client sends right
// after connect. Its first byte is distinct from every op code.
var MagicV2 = [4]byte{'M', 'I', 'O', '2'}

// maxFrame bounds any key/value/payload length on the wire.
const maxFrame = 64 << 20

// validOp reports whether b is a defined op code.
func validOp(b byte) bool { return b >= OpGet && b <= OpSnapRel }

// opName names an op code for stats lines.
func opName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpStats:
		return "stats"
	case OpMPut:
		return "mput"
	case OpSnap:
		return "snap"
	case OpSnapGet:
		return "snapget"
	case OpMGet:
		return "mget"
	case OpDelRange:
		return "delrange"
	case OpSnapRel:
		return "snaprel"
	}
	return fmt.Sprintf("op%d", op)
}

// writeFrame writes one length-prefixed byte string.
func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed byte string.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// appendFrame appends one length-prefixed byte string to dst.
func appendFrame(dst, b []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	dst = append(dst, hdr[:]...)
	return append(dst, b...)
}

// request is one decoded client request.
type request struct {
	op       byte
	key, val []byte
}

// readRequestBody reads the key/value frames that follow an already-read
// op byte — shared by the legacy reader (which reads the op itself) and
// the v2 reader (which reads tag+op first).
func readRequestBody(op byte, r io.Reader) (request, error) {
	key, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	val, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	return request{op: op, key: key, val: val}, nil
}

func readRequest(r io.Reader) (request, error) {
	var op [1]byte
	if _, err := io.ReadFull(r, op[:]); err != nil {
		return request{}, err
	}
	return readRequestBody(op[0], r)
}

func writeRequest(w io.Writer, op byte, key, val []byte) error {
	if _, err := w.Write([]byte{op}); err != nil {
		return err
	}
	if err := writeFrame(w, key); err != nil {
		return err
	}
	return writeFrame(w, val)
}

func writeResponse(w io.Writer, status byte, payload []byte) error {
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	return writeFrame(w, payload)
}

func readResponse(r io.Reader) (byte, []byte, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return 0, nil, err
	}
	payload, err := readFrame(r)
	return status[0], payload, err
}

// AppendTaggedRequest appends one protocol-v2 request frame to dst and
// returns the extended slice. Encoding into a single buffer lets callers
// hand the whole frame to the transport in one write.
func AppendTaggedRequest(dst []byte, tag uint64, op byte, key, val []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], tag)
	dst = append(dst, hdr[:]...)
	dst = append(dst, op)
	dst = appendFrame(dst, key)
	return appendFrame(dst, val)
}

// taggedRequest is one decoded v2 request.
type taggedRequest struct {
	tag uint64
	request
}

// readTaggedRequest decodes one v2 request frame.
func readTaggedRequest(r io.Reader) (taggedRequest, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return taggedRequest{}, err
	}
	tag := binary.LittleEndian.Uint64(hdr[:8])
	op := hdr[8]
	if !validOp(op) {
		return taggedRequest{}, fmt.Errorf("server: unknown op 0x%02x in tagged request", op)
	}
	req, err := readRequestBody(op, r)
	if err != nil {
		return taggedRequest{}, err
	}
	return taggedRequest{tag: tag, request: req}, nil
}

// appendTaggedResponse appends one v2 response frame to dst.
func appendTaggedResponse(dst []byte, tag uint64, status byte, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], tag)
	dst = append(dst, hdr[:]...)
	dst = append(dst, status)
	return appendFrame(dst, payload)
}

// ReadTaggedResponse decodes one v2 response frame: the tag of the
// request it answers, the status, and the payload.
func ReadTaggedResponse(r io.Reader) (tag uint64, status byte, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	tag = binary.LittleEndian.Uint64(hdr[:8])
	status = hdr[8]
	payload, err = readFrame(r)
	return tag, status, payload, err
}

// EncodeBatchPayload packs an MPUT batch:
//
//	count(4) | per op: flags(1) | keyLen(4) | key | valLen(4) | val
//
// flags bit 0 marks a delete (the value frame is then empty); bit 1 marks
// a range delete (key carries the inclusive start, val the exclusive
// end — empty = unbounded).
func EncodeBatchPayload(ops []kvstore.BatchOp) []byte {
	size := 4
	for _, op := range ops {
		size += 9 + len(op.Key) + len(op.Value)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ops)))
	out = append(out, hdr[:]...)
	for _, op := range ops {
		flags := byte(0)
		if op.Delete {
			flags = 1
		}
		if op.RangeDelete {
			flags = 2
		}
		out = append(out, flags)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(op.Key)))
		out = append(out, hdr[:]...)
		out = append(out, op.Key...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(op.Value)))
		out = append(out, hdr[:]...)
		out = append(out, op.Value...)
	}
	return out
}

// DecodeBatchPayload unpacks an MPUT batch.
func DecodeBatchPayload(b []byte) ([]kvstore.BatchOp, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("server: truncated batch payload")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if count > maxFrame/9 {
		return nil, fmt.Errorf("server: absurd batch count %d", count)
	}
	ops := make([]kvstore.BatchOp, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("server: truncated batch op")
		}
		flags := b[0]
		kl := binary.LittleEndian.Uint32(b[1:5])
		b = b[5:]
		if uint32(len(b)) < kl+4 || kl > maxFrame {
			return nil, fmt.Errorf("server: truncated batch key")
		}
		k := b[:kl]
		b = b[kl:]
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, fmt.Errorf("server: truncated batch value")
		}
		v := b[:vl]
		b = b[vl:]
		ops = append(ops, kvstore.BatchOp{Key: k, Value: v, Delete: flags&1 != 0, RangeDelete: flags&2 != 0})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in batch payload", len(b))
	}
	return ops, nil
}

// EncodeMGetRequest packs an MGET request:
//
//	snapID(8) | count(4) | per key: keyLen(4) | key
//
// snapID 0 targets the live store; any other id must name a snapshot
// previously captured on the same connection with OpSnap.
func EncodeMGetRequest(snapID uint64, keys [][]byte) []byte {
	size := 12
	for _, k := range keys {
		size += 4 + len(k)
	}
	out := make([]byte, 0, size)
	var hdr8 [8]byte
	binary.LittleEndian.PutUint64(hdr8[:], snapID)
	out = append(out, hdr8[:]...)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(keys)))
	out = append(out, hdr[:]...)
	for _, k := range keys {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(k)))
		out = append(out, hdr[:]...)
		out = append(out, k...)
	}
	return out
}

// DecodeMGetRequest unpacks an MGET request.
func DecodeMGetRequest(b []byte) (snapID uint64, mkeys [][]byte, err error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("server: truncated mget request")
	}
	snapID = binary.LittleEndian.Uint64(b)
	count := binary.LittleEndian.Uint32(b[8:])
	b = b[12:]
	if count > maxFrame/4 {
		return 0, nil, fmt.Errorf("server: absurd mget count %d", count)
	}
	mkeys = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return 0, nil, fmt.Errorf("server: truncated mget key")
		}
		kl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < kl || kl > maxFrame {
			return 0, nil, fmt.Errorf("server: truncated mget key")
		}
		mkeys = append(mkeys, b[:kl])
		b = b[kl:]
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("server: %d trailing bytes in mget request", len(b))
	}
	return snapID, mkeys, nil
}

// EncodeMGetResponse packs positional MGET results:
//
//	count(4) | per key: flag(1) | valLen(4) | val
//
// flag 0 = found (val is the value), 1 = not found (val is empty). The
// caller must have screened errs down to nil / kvstore.ErrNotFound —
// any other per-key error fails the whole request with StatusError.
func EncodeMGetResponse(values [][]byte, errs []error) []byte {
	size := 4
	for _, v := range values {
		size += 5 + len(v)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(values)))
	out = append(out, hdr[:]...)
	for i, v := range values {
		flag := byte(0)
		if errs[i] != nil {
			flag = 1
			v = nil
		}
		out = append(out, flag)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(v)))
		out = append(out, hdr[:]...)
		out = append(out, v...)
	}
	return out
}

// DecodeMGetResponse unpacks positional MGET results: values[i] is the
// value for the i-th requested key and errs[i] is nil or
// kvstore.ErrNotFound.
func DecodeMGetResponse(b []byte) (values [][]byte, errs []error, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("server: truncated mget response")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if count > maxFrame/5 {
		return nil, nil, fmt.Errorf("server: absurd mget count %d", count)
	}
	values = make([][]byte, 0, count)
	errs = make([]error, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 5 {
			return nil, nil, fmt.Errorf("server: truncated mget entry")
		}
		flag := b[0]
		vl := binary.LittleEndian.Uint32(b[1:5])
		b = b[5:]
		if uint32(len(b)) < vl {
			return nil, nil, fmt.Errorf("server: truncated mget value")
		}
		if flag != 0 {
			values = append(values, nil)
			errs = append(errs, kvstore.ErrNotFound)
		} else {
			values = append(values, b[:vl])
			errs = append(errs, nil)
		}
		b = b[vl:]
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("server: %d trailing bytes in mget response", len(b))
	}
	return values, errs, nil
}

// EncodeScanPayload packs scan results as keyLen|key|valLen|val pairs.
func EncodeScanPayload(pairs [][2][]byte) []byte {
	size := 0
	for _, p := range pairs {
		size += 8 + len(p[0]) + len(p[1])
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[0])))
		out = append(out, hdr[:]...)
		out = append(out, p[0]...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[1])))
		out = append(out, hdr[:]...)
		out = append(out, p[1]...)
	}
	return out
}

// DecodeScanPayload unpacks scan results.
func DecodeScanPayload(b []byte) ([][2][]byte, error) {
	var out [][2][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("server: truncated scan payload")
		}
		kl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < kl+4 || kl > maxFrame {
			return nil, fmt.Errorf("server: truncated scan key")
		}
		k := b[:kl]
		b = b[kl:]
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, fmt.Errorf("server: truncated scan value")
		}
		v := b[:vl]
		b = b[vl:]
		out = append(out, [2][]byte{k, v})
	}
	return out, nil
}
