// Package server provides a minimal TCP key-value service over any store
// in the repository (MioDB or a baseline), plus the matching client. It
// turns the single-process reproduction into something a downstream user
// can actually deploy and benchmark over a network.
//
// Wire protocol (all integers little-endian):
//
//	request  := op(1) | keyLen(4) | key | valLen(4) | val
//	response := status(1) | payloadLen(4) | payload
//
// For SCAN, key is the start key and val carries the 4-byte limit; the
// response payload is a sequence of keyLen|key|valLen|val pairs.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op codes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
	OpStats
)

// Status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusError
)

// maxFrame bounds any key/value/payload length on the wire.
const maxFrame = 64 << 20

// writeFrame writes one length-prefixed byte string.
func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed byte string.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// request is one decoded client request.
type request struct {
	op       byte
	key, val []byte
}

func readRequest(r io.Reader) (request, error) {
	var op [1]byte
	if _, err := io.ReadFull(r, op[:]); err != nil {
		return request{}, err
	}
	key, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	val, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	return request{op: op[0], key: key, val: val}, nil
}

func writeRequest(w io.Writer, op byte, key, val []byte) error {
	if _, err := w.Write([]byte{op}); err != nil {
		return err
	}
	if err := writeFrame(w, key); err != nil {
		return err
	}
	return writeFrame(w, val)
}

func writeResponse(w io.Writer, status byte, payload []byte) error {
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	return writeFrame(w, payload)
}

func readResponse(r io.Reader) (byte, []byte, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return 0, nil, err
	}
	payload, err := readFrame(r)
	return status[0], payload, err
}

// encodeScanPayload packs scan results as keyLen|key|valLen|val pairs.
func encodeScanPayload(pairs [][2][]byte) []byte {
	size := 0
	for _, p := range pairs {
		size += 8 + len(p[0]) + len(p[1])
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[0])))
		out = append(out, hdr[:]...)
		out = append(out, p[0]...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[1])))
		out = append(out, hdr[:]...)
		out = append(out, p[1]...)
	}
	return out
}

// decodeScanPayload unpacks scan results.
func decodeScanPayload(b []byte) ([][2][]byte, error) {
	var out [][2][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("server: truncated scan payload")
		}
		kl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < kl+4 {
			return nil, fmt.Errorf("server: truncated scan key")
		}
		k := b[:kl]
		b = b[kl:]
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, fmt.Errorf("server: truncated scan value")
		}
		v := b[:vl]
		b = b[vl:]
		out = append(out, [2][]byte{k, v})
	}
	return out, nil
}
