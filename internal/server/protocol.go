// Package server provides a minimal TCP key-value service over any store
// in the repository (MioDB or a baseline), plus the matching client. It
// turns the single-process reproduction into something a downstream user
// can actually deploy and benchmark over a network.
//
// Wire protocol (all integers little-endian):
//
//	request  := op(1) | keyLen(4) | key | valLen(4) | val
//	response := status(1) | payloadLen(4) | payload
//
// For SCAN, key is the start key and val carries the 4-byte limit; the
// response payload is a sequence of keyLen|key|valLen|val pairs.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"miodb/internal/kvstore"
)

// Op codes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
	OpStats
	// OpMPut applies a batch of writes atomically in one round trip. The
	// request key frame is empty; the value frame carries the batch payload
	// (see encodeBatchPayload). Batches feed the store's group-commit
	// pipeline directly when it implements kvstore.BatchWriter.
	OpMPut
)

// Status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusError
)

// maxFrame bounds any key/value/payload length on the wire.
const maxFrame = 64 << 20

// writeFrame writes one length-prefixed byte string.
func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed byte string.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// request is one decoded client request.
type request struct {
	op       byte
	key, val []byte
}

func readRequest(r io.Reader) (request, error) {
	var op [1]byte
	if _, err := io.ReadFull(r, op[:]); err != nil {
		return request{}, err
	}
	key, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	val, err := readFrame(r)
	if err != nil {
		return request{}, err
	}
	return request{op: op[0], key: key, val: val}, nil
}

func writeRequest(w io.Writer, op byte, key, val []byte) error {
	if _, err := w.Write([]byte{op}); err != nil {
		return err
	}
	if err := writeFrame(w, key); err != nil {
		return err
	}
	return writeFrame(w, val)
}

func writeResponse(w io.Writer, status byte, payload []byte) error {
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	return writeFrame(w, payload)
}

func readResponse(r io.Reader) (byte, []byte, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return 0, nil, err
	}
	payload, err := readFrame(r)
	return status[0], payload, err
}

// encodeBatchPayload packs an MPUT batch:
//
//	count(4) | per op: flags(1) | keyLen(4) | key | valLen(4) | val
//
// flags bit 0 marks a delete (the value frame is then empty).
func encodeBatchPayload(ops []kvstore.BatchOp) []byte {
	size := 4
	for _, op := range ops {
		size += 9 + len(op.Key) + len(op.Value)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ops)))
	out = append(out, hdr[:]...)
	for _, op := range ops {
		flags := byte(0)
		if op.Delete {
			flags = 1
		}
		out = append(out, flags)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(op.Key)))
		out = append(out, hdr[:]...)
		out = append(out, op.Key...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(op.Value)))
		out = append(out, hdr[:]...)
		out = append(out, op.Value...)
	}
	return out
}

// decodeBatchPayload unpacks an MPUT batch.
func decodeBatchPayload(b []byte) ([]kvstore.BatchOp, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("server: truncated batch payload")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if count > maxFrame/9 {
		return nil, fmt.Errorf("server: absurd batch count %d", count)
	}
	ops := make([]kvstore.BatchOp, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("server: truncated batch op")
		}
		flags := b[0]
		kl := binary.LittleEndian.Uint32(b[1:5])
		b = b[5:]
		if uint32(len(b)) < kl+4 {
			return nil, fmt.Errorf("server: truncated batch key")
		}
		k := b[:kl]
		b = b[kl:]
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, fmt.Errorf("server: truncated batch value")
		}
		v := b[:vl]
		b = b[vl:]
		ops = append(ops, kvstore.BatchOp{Key: k, Value: v, Delete: flags&1 != 0})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in batch payload", len(b))
	}
	return ops, nil
}

// encodeScanPayload packs scan results as keyLen|key|valLen|val pairs.
func encodeScanPayload(pairs [][2][]byte) []byte {
	size := 0
	for _, p := range pairs {
		size += 8 + len(p[0]) + len(p[1])
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[0])))
		out = append(out, hdr[:]...)
		out = append(out, p[0]...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p[1])))
		out = append(out, hdr[:]...)
		out = append(out, p[1]...)
	}
	return out
}

// decodeScanPayload unpacks scan results.
func decodeScanPayload(b []byte) ([][2][]byte, error) {
	var out [][2][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("server: truncated scan payload")
		}
		kl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < kl+4 {
			return nil, fmt.Errorf("server: truncated scan key")
		}
		k := b[:kl]
		b = b[kl:]
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, fmt.Errorf("server: truncated scan value")
		}
		v := b[:vl]
		b = b[vl:]
		out = append(out, [2][]byte{k, v})
	}
	return out, nil
}
