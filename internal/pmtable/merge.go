package pmtable

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"

	"miodb/internal/bloom"

	"miodb/internal/keys"
	"miodb/internal/skiplist"
	"miodb/internal/vaddr"
)

// Merge is one in-flight zero-copy compaction of two PMTables (§4.3): the
// newer table ("newtable") is drained node by node into the older table
// ("oldtable") purely by rewriting skip-list pointers with 8-byte atomic
// stores. No key or value bytes move, so the only write traffic — and the
// only write amplification — is pointer words.
//
// Concurrent reads. While a merge runs, the level exposes the Merge itself
// as the read source for the pair. A point lookup must observe every node
// no matter where it currently lives, including the single node in flight
// between the two lists. The paper's protocol (query newtable → insertion
// mark → oldtable) closes the two races it describes in §4.3, but a third
// interleaving remains: a reader that entered the newtable through a stale
// head pointer can be carried into the oldtable when the in-flight node's
// towers are rewritten, silently skipping the newtable's remaining nodes.
// We therefore strengthen the protocol with a seqlock: the merger brackets
// each node migration with an odd/even position counter, and a reader
// retries its (newtable, mark, oldtable) probe until it completes within a
// stable window, falling back to the merge mutex under persistent
// contention. The common case is uncontended and lock-free, preserving the
// paper's design intent; the difference is documented here for fidelity.
//
// Crash consistency (§4.7). The insertion mark is persisted to an NVM slot
// before the in-flight node is unlinked; Resume repairs a half-migrated
// node and continues the drain after a crash.
type Merge struct {
	// New is the newer table being drained; Old receives its nodes and
	// becomes the merged result. Every sequence number in New exceeds
	// every one in Old (tables within a level hold disjoint, time-ordered
	// sequence ranges).
	New, Old *Table

	// Drop gates physical deletion of a version superseded by a newer one
	// committed at newerSeq. The engine returns false while a registered
	// snapshot's bound is below newerSeq — that snapshot still reads the
	// older version — and the merge then retains the duplicate (the skip
	// list is multi-version: point reads take the newest, scans dedup).
	// nil means always drop, the pre-snapshot behavior. Set before Run.
	Drop func(newerSeq uint64) bool

	// Dead reports that an entry is covered by a range tombstone no live
	// snapshot can see past, so the merge drops it instead of migrating
	// it. nil means migrate everything. Set before Run.
	Dead func(key []byte, seq uint64, kind keys.Kind) bool

	// OnDrop, when non-nil, observes every entry the merge physically
	// drops (its value bytes and kind). The engine feeds value-log
	// dead-space accounting with it. Invoked outside the locked migration
	// windows; dropped nodes stay readable until their arena is released,
	// so the slice is valid for the call. Set before Run.
	OnDrop func(value []byte, kind keys.Kind)

	pos  atomic.Uint64 // seqlock; odd while a node migrates
	mu   sync.Mutex    // merger holds per migration; reader fallback path
	mark atomic.Uint64 // vaddr.Addr of the in-flight node (0 = none)

	// Optional persistence of the mark for crash recovery.
	markRegion *vaddr.Region
	markSlot   vaddr.Addr

	garbage int64 // bytes of duplicate nodes logically deleted
	moved   int64 // nodes migrated
	done    atomic.Bool
	result  *Table
}

// NewMerge pairs two tables of one level for zero-copy compaction.
// newT must be the newer table (larger ID).
func NewMerge(newT, oldT *Table) *Merge {
	if newT.ID < oldT.ID {
		panic("pmtable: merge pair ordered backwards")
	}
	return &Merge{New: newT, Old: oldT}
}

// SetPersistSlot directs the merge to persist its insertion mark into the
// given 8-byte NVM slot, enabling crash recovery of an interrupted merge.
func (m *Merge) SetPersistSlot(region *vaddr.Region, slot vaddr.Addr) {
	m.markRegion = region
	m.markSlot = slot
}

func (m *Merge) setMark(a vaddr.Addr) {
	m.mark.Store(uint64(a))
	if m.markRegion != nil {
		m.markRegion.Store64(m.markSlot, uint64(a))
	}
}

// Run drains the newtable into the oldtable and returns the merged table.
// It must be called exactly once, from the level's compaction goroutine.
func (m *Merge) Run() *Table {
	var lastKey []byte
	var lastSeq uint64
	lastValid := false
	for {
		if !m.step(&lastKey, &lastSeq, &lastValid) {
			break
		}
	}
	return m.finish()
}

// canDrop applies the snapshot gate to a superseded-version deletion.
func (m *Merge) canDrop(newerSeq uint64) bool {
	return m.Drop == nil || m.Drop(newerSeq)
}

// step migrates one node; it reports false when the newtable is empty.
//
// The expensive parts of a migration — the oldtable splice searches, each
// O(log n) metered NVM reads — run *outside* the locked, seqlock-odd
// windows: only this merger mutates the two lists, so a splice computed
// between windows stays valid. The locked windows contain nothing but
// pointer stores, keeping reader fallback waits to a microsecond — the
// paper's lock-free spirit with the seqlock safety net.
func (m *Merge) step(lastKey *[]byte, lastSeq *uint64, lastValid *bool) bool {
	n := m.New.list.First()
	if n.IsNil() {
		return false
	}
	key := n.Key()
	// An older version of the key just migrated is droppable (the paper's
	// N_d5 case) unless a snapshot still pins it; an entry covered by a
	// settled range tombstone is droppable outright. A dup the snapshot
	// gate refuses to drop is migrated as a retained duplicate instead.
	dup := *lastValid && bytes.Equal(key, *lastKey)
	drop := (dup && m.canDrop(*lastSeq)) ||
		(m.Dead != nil && m.Dead(key, n.Seq(), n.Kind()))

	// Phase 0 (unlocked): compute the oldtable insertion splice.
	var prev [skiplist.MaxHeight]skiplist.Node
	if !drop {
		m.Old.list.FindSplice(key, n.Seq(), &prev)
	}

	// Phase 1 (locked, pos odd): the migration itself — mark, unlink
	// from the newtable, relink into the oldtable. Pointer stores only.
	m.mu.Lock()
	m.pos.Add(1)
	// 1. Record the node in the insertion mark (persisted first, §4.3),
	//    so it stays visible while belonging to neither list.
	m.setMark(n.Addr())
	// 2. Remove it from the newtable: atomic head-pointer stores.
	m.New.list.RemoveFirst()
	if drop {
		// Logically delete the node. Its bytes are reclaimed with the
		// arena after lazy-copy compaction.
		m.garbage += n.Size()
	} else {
		// 3. Insert into the oldtable at its (key, seq) position.
		m.Old.list.InsertNodeWithSplice(n, &prev)
		m.moved++
	}
	m.setMark(vaddr.NilAddr)
	m.pos.Add(1)
	m.mu.Unlock()

	if drop {
		if m.OnDrop != nil {
			m.OnDrop(n.Value(), n.Kind())
		}
		// lastKey/lastSeq deliberately unchanged: a dropped node was not
		// migrated, so it cannot be the superseding version for the next
		// node's dup decision.
		return true
	}

	// Phase 2: unlink superseded versions now directly behind n (the
	// N_d4/N_d3 case) — search unlocked, unlink in a short locked window.
	// The snapshot gate applies: successors superseded at n.Seq() stay
	// put while a snapshot's bound is below it.
	for m.canDrop(n.Seq()) {
		succAddr := n.NextAddr0()
		if succAddr.IsNil() {
			break
		}
		succ := m.Old.list.Node(succAddr)
		if !bytes.Equal(succ.Key(), key) {
			break
		}
		var dprev [skiplist.MaxHeight]skiplist.Node
		m.Old.list.FindSplice(key, succ.Seq(), &dprev)
		m.mu.Lock()
		m.pos.Add(1)
		m.Old.list.RemoveWithSplice(succ, &dprev)
		m.garbage += succ.Size()
		m.pos.Add(1)
		m.mu.Unlock()
		if m.OnDrop != nil {
			m.OnDrop(succ.Value(), succ.Kind())
		}
	}
	*lastKey = append((*lastKey)[:0], key...)
	*lastSeq = n.Seq()
	*lastValid = true
	return true
}

// finish publishes the merged table.
func (m *Merge) finish() *Table {
	var filter *bloom.Filter
	if m.Old.filter != nil {
		filter = m.Old.filter.Clone()
		// Same-parameter filters by construction; Merge cannot fail.
		if err := filter.Merge(m.New.filter); err != nil {
			panic(err)
		}
	}
	regions := make([]*vaddr.Region, 0, len(m.Old.regions)+len(m.New.regions))
	regions = append(regions, m.Old.regions...)
	regions = append(regions, m.New.regions...)

	result := &Table{
		ID:      m.New.ID,
		list:    m.Old.list,
		filter:  filter,
		regions: regions,
		MinSeq:  m.Old.MinSeq,
		MaxSeq:  m.New.MaxSeq,
	}
	result.garbage.Store(m.Old.garbage.Load() + m.New.garbage.Load() + m.garbage)
	// Ownership of every arena moves to the result. The drained source
	// skeletons keep their region slices until the engine drops them
	// under its structural lock (DropRegions) — clearing them here would
	// race with a concurrent manifest snapshot reading Regions().
	m.New.MarkReclaimable()
	m.Old.MarkReclaimable()
	m.result = result
	m.done.Store(true)
	return result
}

// Result returns the merged table once Run has completed, else nil.
func (m *Merge) Result() *Table {
	if !m.done.Load() {
		return nil
	}
	return m.result
}

// Done reports whether the merge has completed.
func (m *Merge) Done() bool { return m.done.Load() }

// Get performs a linearizable point lookup across the merging pair. It
// probes newtable → insertion mark → oldtable (the §4.3 read protocol)
// inside a seqlock window, retrying if a node migrated mid-probe.
func (m *Merge) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	// A probe costs three list searches, a migration only a little more;
	// when the merger is hot, optimistic retries lose the race over and
	// over, so cut over to the mutex quickly.
	for tries := 0; tries < 4; tries++ {
		// A completed merge hands off to the result: the shared list may
		// already be migrating again under a *later* merge, whose steps do
		// not bump this merge's seqlock — only the result's own protocol
		// (its activeMerge / forward chain) covers that.
		if m.done.Load() {
			return m.result.GetSafe(key)
		}
		v1 := m.pos.Load()
		if v1&1 == 1 {
			runtime.Gosched()
			continue
		}
		value, seq, kind, ok = m.getOnce(key)
		// Probe valid only if no migration step of this merge overlapped
		// (pos unchanged) and no later merge could have started (done
		// still false — later merges begin strictly after done is set).
		if m.pos.Load() == v1 && !m.done.Load() {
			return value, seq, kind, ok
		}
	}
	// Persistent contention with the merger: serialize behind one step.
	m.mu.Lock()
	value, seq, kind, ok = m.getOnce(key)
	done := m.done.Load()
	m.mu.Unlock()
	if done {
		return m.result.GetSafe(key)
	}
	return value, seq, kind, ok
}

func (m *Merge) getOnce(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return m.getOnceBounded(key, keys.MaxSeq)
}

func (m *Merge) getOnceBounded(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	consider := func(v []byte, s uint64, k keys.Kind) {
		if s > maxSeq {
			return
		}
		if !ok || s > seq {
			value, seq, kind, ok = v, s, k, true
		}
	}
	if v, s, k, found := m.New.list.GetBounded(key, maxSeq); found {
		consider(v, s, k)
	}
	if a := vaddr.Addr(m.mark.Load()); !a.IsNil() {
		n := m.New.list.Node(a)
		if bytes.Equal(n.Key(), key) {
			consider(n.Value(), n.Seq(), n.Kind())
		}
	}
	if v, s, k, found := m.Old.list.GetBounded(key, maxSeq); found {
		consider(v, s, k)
	}
	return value, seq, kind, ok
}

// GetBounded is Get restricted to versions with sequence ≤ maxSeq — the
// snapshot-read variant of the §4.3 probe, under the same seqlock
// protocol.
func (m *Merge) GetBounded(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	for tries := 0; tries < 4; tries++ {
		if m.done.Load() {
			return m.result.GetBoundedSafe(key, maxSeq)
		}
		v1 := m.pos.Load()
		if v1&1 == 1 {
			runtime.Gosched()
			continue
		}
		value, seq, kind, ok = m.getOnceBounded(key, maxSeq)
		if m.pos.Load() == v1 && !m.done.Load() {
			return value, seq, kind, ok
		}
	}
	m.mu.Lock()
	value, seq, kind, ok = m.getOnceBounded(key, maxSeq)
	done := m.done.Load()
	m.mu.Unlock()
	if done {
		return m.result.GetBoundedSafe(key, maxSeq)
	}
	return value, seq, kind, ok
}

// MayContain consults both tables' filters.
func (m *Merge) MayContain(key []byte) bool {
	return m.New.MayContain(key) || m.Old.MayContain(key)
}

// MarkNode returns the in-flight node, if any, for scan paths that must
// not miss it.
func (m *Merge) MarkNode() (skiplist.Node, bool) {
	a := vaddr.Addr(m.mark.Load())
	if a.IsNil() {
		return skiplist.Node{}, false
	}
	return m.New.list.Node(a), true
}

// Moved returns the number of nodes migrated into the oldtable.
func (m *Merge) Moved() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.moved
}

// Garbage returns bytes of duplicates logically deleted so far.
func (m *Merge) Garbage() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.garbage
}

// Resume repairs the state of a merge interrupted by a crash — the mark
// slot still names an in-flight node — and then drains the remainder.
// The repair makes the interrupted migration idempotent: the node is
// unlinked from whichever list(s) partially reference it and re-migrated
// from scratch, using the oldtable's content to re-decide the
// duplicate-drop case (§4.7's corner cases 1–3 all reduce to this).
func (m *Merge) Resume(markAddr vaddr.Addr) *Table {
	if !markAddr.IsNil() {
		n := m.New.list.Node(markAddr)
		key := append([]byte(nil), n.Key()...)
		seq := n.Seq()

		// The in-flight node belonged to neither list at crash time, so
		// the filters rebuilt from list scans at attach time are missing
		// its key; restore it before the merged filter is derived.
		// Recovery is single-threaded here, so mutating the filter is
		// safe.
		if m.Old.filter != nil {
			m.Old.filter.Add(key)
		}

		// If the node is still (fully or partially) linked in the
		// newtable, its only predecessor is the head: redo the removal.
		if first := m.New.list.First(); !first.IsNil() && first.Addr() == markAddr {
			m.New.list.RemoveFirst()
		}
		// If level-0 linkage into the oldtable happened, unlink whatever
		// levels were completed so we can re-insert cleanly.
		if !m.Old.list.Remove(key, seq).IsNil() {
			// removed; will re-insert below
		}
		// Re-decide: does the oldtable already hold a newer version?
		if ex := m.Old.list.FindGE(key); !ex.IsNil() && bytes.Equal(ex.Key(), key) && ex.Seq() > seq {
			m.garbage += n.Size() // duplicate: drop for good
			if m.OnDrop != nil {
				m.OnDrop(n.Value(), n.Kind())
			}
		} else {
			m.Old.list.InsertNode(n)
			for {
				d := m.Old.list.RemoveAfter(n)
				if d.IsNil() {
					break
				}
				m.garbage += d.Size()
				if m.OnDrop != nil {
					m.OnDrop(d.Value(), d.Kind())
				}
			}
			m.moved++
		}
		m.setMark(vaddr.NilAddr)
	}
	return m.Run()
}
