package pmtable

import (
	"runtime"

	"miodb/internal/keys"
	"miodb/internal/skiplist"
)

// Scans over PMTables must survive zero-copy compaction: a merge migrates
// nodes between the pair's skip lists by rewriting their tower pointers,
// so an iterator that chases cached node pointers can be teleported from
// the new table's list into the old one mid-walk — silently skipping
// every not-yet-migrated entry behind it. Point reads solve this with the
// insertion mark + seqlock protocol (Table.GetSafe); SafeIterator is the
// scan-side counterpart: it never holds a node across steps. Each
// positioning operation re-seeks the strict successor of the current
// (key, seq) position from the live list heads, under the same seqlock
// validation, following forward/activeMerge indirection at call time —
// so the iterator stays correct across a merge starting, progressing, or
// completing mid-scan, at O(log n) per step.
//
// Node memory itself is stable ground: migrations rewrite tower pointers
// only, never key/value bytes, and arenas are freed strictly after the
// reader's pinned version drains. Holding the current node within a step
// is therefore safe; holding it across steps is not.

// succSource yields strict-successor probes: the first entry ≥ (key, seq)
// in internal order, from live state.
type succSource interface {
	SuccSafe(key []byte, seq uint64) skiplist.Node
}

// SuccSafe returns the first entry ≥ (key, seq) in the table, reading
// through forward pointers and any active merge exactly like GetSafe.
func (t *Table) SuccSafe(key []byte, seq uint64) skiplist.Node {
	if f := t.Forward(); f != nil {
		return f.SuccSafe(key, seq)
	}
	if m := t.ActiveMerge(); m != nil {
		return m.SuccSafe(key, seq)
	}
	n := t.list.SeekGE(key, seq)
	// A merge may have started during the raw seek; its migrations could
	// have slid nodes under the search. Redo through the merge protocol.
	if m := t.ActiveMerge(); m != nil {
		return m.SuccSafe(key, seq)
	}
	return n
}

// SuccSafe returns the first entry ≥ (key, seq) across the merging pair —
// both lists plus the in-flight insertion-mark node — under the merge's
// seqlock; after completion it reads through the result table.
func (m *Merge) SuccSafe(key []byte, seq uint64) skiplist.Node {
	for tries := 0; tries < 4; tries++ {
		if m.done.Load() {
			return m.result.SuccSafe(key, seq)
		}
		v1 := m.pos.Load()
		if v1&1 == 1 {
			runtime.Gosched()
			continue
		}
		n := m.succOnce(key, seq)
		if m.pos.Load() == v1 && !m.done.Load() {
			return n
		}
	}
	m.mu.Lock()
	n := m.succOnce(key, seq)
	done := m.done.Load()
	m.mu.Unlock()
	if done {
		return m.result.SuccSafe(key, seq)
	}
	return n
}

func (m *Merge) succOnce(key []byte, seq uint64) skiplist.Node {
	best := m.New.list.SeekGE(key, seq)
	consider := func(n skiplist.Node) {
		if n.IsNil() {
			return
		}
		if best.IsNil() || keys.Compare(n.Key(), n.Seq(), best.Key(), best.Seq()) < 0 {
			best = n
		}
	}
	consider(m.Old.list.SeekGE(key, seq))
	if n, ok := m.MarkNode(); ok && keys.Compare(n.Key(), n.Seq(), key, seq) >= 0 {
		consider(n)
	}
	return best
}

// SafeIterator walks a table (or an in-flight merge) in internal order by
// strict-successor re-seeks. It satisfies the iterx.Iterator contract
// structurally.
type SafeIterator struct {
	src   succSource
	key   []byte // copy: the position must survive the node migrating
	node  skiplist.Node
	valid bool
}

// NewSafeIterator returns a migration-safe iterator over the table.
func (t *Table) NewSafeIterator() *SafeIterator { return &SafeIterator{src: t} }

// NewSafeIterator returns a migration-safe iterator over the merging pair.
func (m *Merge) NewSafeIterator() *SafeIterator { return &SafeIterator{src: m} }

func (it *SafeIterator) set(n skiplist.Node) {
	if n.IsNil() {
		it.valid = false
		return
	}
	it.node = n
	it.key = append(it.key[:0], n.Key()...)
	it.valid = true
}

// SeekToFirst positions at the first entry.
func (it *SafeIterator) SeekToFirst() { it.set(it.src.SuccSafe(nil, keys.MaxSeq)) }

// Seek positions at the first entry with user key ≥ key.
func (it *SafeIterator) Seek(key []byte) { it.set(it.src.SuccSafe(key, keys.MaxSeq)) }

// Next advances to the strict successor of the current position. Sequence
// numbers start at 1, so seq-1 never underflows below the head's 0.
func (it *SafeIterator) Next() {
	if !it.valid {
		return
	}
	it.set(it.src.SuccSafe(it.key, it.node.Seq()-1))
}

// Valid reports whether positioned on an entry.
func (it *SafeIterator) Valid() bool { return it.valid }

// Key returns the current user key (stable node bytes).
func (it *SafeIterator) Key() []byte { return it.key }

// Value returns the current value (stable node bytes).
func (it *SafeIterator) Value() []byte { return it.node.Value() }

// Seq returns the current sequence number.
func (it *SafeIterator) Seq() uint64 { return it.node.Seq() }

// Kind returns the current entry kind.
func (it *SafeIterator) Kind() keys.Kind { return it.node.Kind() }
