package pmtable

import (
	"fmt"
	"testing"
)

// TestDrainedTableForwarding is the regression test for a reader
// visibility bug: after a zero-copy merge, the Old table's skip list
// holds every node (the New side's nodes were migrated in), but its
// bloom filter still only covers its original keys. A stale version
// snapshot probing the drained Old table through the raw filter would
// get a false negative for migrated keys — Get returned NotFound for a
// key the store holds. The fix forwards every safe read on a drained
// table to the merge result, whose OR-merged filter is authoritative.
func TestDrainedTableForwarding(t *testing.T) {
	dram, nv := devices()

	oldKVs := map[string]string{}
	newKVs := map[string]string{}
	for i := 0; i < 64; i++ {
		oldKVs[fmt.Sprintf("old-%03d", i)] = fmt.Sprintf("ov%d", i)
		newKVs[fmt.Sprintf("new-%03d", i)] = fmt.Sprintf("nv%d", i)
	}
	old := buildTable(t, dram, nv, 1, 1, oldKVs)
	newer := buildTable(t, dram, nv, 2, 1000, newKVs)

	m := NewMerge(newer, old)
	// As the engine does: publish the merge before it runs.
	newer.SetActiveMerge(m)
	old.SetActiveMerge(m)
	result := m.Run()
	// As the engine does on completion: forward the drained pair.
	newer.SetForward(result)
	old.SetForward(result)

	for k, want := range newKVs {
		// The heart of the bug: Old's raw filter does not cover keys
		// migrated in from New, yet Old's list now holds them.
		if !old.MayContainSafe([]byte(k)) {
			t.Fatalf("MayContainSafe(%s) = false on drained old table", k)
		}
		v, _, _, ok := old.GetSafe([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("GetSafe(%s) on drained old table = %q, %v; want %q", k, v, ok, want)
		}
		// The drained New side must forward too (its list is empty).
		v, _, _, ok = newer.GetSafe([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("GetSafe(%s) on drained new table = %q, %v; want %q", k, v, ok, want)
		}
	}
	for k, want := range oldKVs {
		if !old.MayContainSafe([]byte(k)) {
			t.Fatalf("MayContainSafe(%s) = false for original key", k)
		}
		v, _, _, ok := newer.GetSafe([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("GetSafe(%s) through forwarding = %q, %v; want %q", k, v, ok, want)
		}
	}

	// A completed Merge handle (held by stale mergeEntry snapshots) must
	// delegate to the result as well.
	for k, want := range newKVs {
		v, _, _, ok := m.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Merge.Get(%s) after completion = %q, %v; want %q", k, v, ok, want)
		}
	}

	// Forwarding must chain: merge the result with a third table and
	// check that reads through the original skeletons still land.
	thirdKVs := map[string]string{}
	for i := 0; i < 32; i++ {
		thirdKVs[fmt.Sprintf("tri-%03d", i)] = fmt.Sprintf("tv%d", i)
	}
	third := buildTable(t, dram, nv, 3, 2000, thirdKVs)
	m2 := NewMerge(third, result)
	third.SetActiveMerge(m2)
	result.SetActiveMerge(m2)
	result2 := m2.Run()
	third.SetForward(result2)
	result.SetForward(result2)

	for k, want := range thirdKVs {
		if !old.MayContainSafe([]byte(k)) {
			t.Fatalf("chained MayContainSafe(%s) = false", k)
		}
		v, _, _, ok := old.GetSafe([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("chained GetSafe(%s) = %q, %v; want %q", k, v, ok, want)
		}
	}
}
