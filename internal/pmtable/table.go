// Package pmtable implements PMTables — the byte-addressable persistent
// skip lists that replace on-disk SSTables in MioDB (§4.1) — together with
// the paper's three compaction mechanisms:
//
//   - One-piece flushing (§4.2): a DRAM MemTable's whole arena is copied to
//     NVM in one bulk transfer, then its pointers are swizzled in the
//     background (Flush).
//   - Zero-copy compaction (§4.3): two PMTables merge by re-linking nodes
//     with 8-byte atomic pointer stores — no key or value bytes move — while
//     readers stay lock-free via an insertion mark plus a seqlock
//     validation (Merge).
//   - Lazy-copy compaction (§4.4): the bottom level physically copies the
//     newest version of each key into a huge repository PMTable and then
//     releases the consumed arenas wholesale (Repository.Absorb).
package pmtable

import (
	"sync/atomic"

	"miodb/internal/bloom"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/skiplist"
	"miodb/internal/vaddr"
)

// Table is one PMTable: a persistent skip list in NVM plus its mergeable
// bloom filter. After zero-copy merges a table's nodes span several arenas;
// Regions tracks them all so that lazy-copy compaction can release every
// consumed arena at once.
type Table struct {
	// ID is unique per store and monotonically increasing: larger IDs hold
	// strictly newer data, the invariant level merge order relies on.
	ID uint64

	list    *skiplist.List
	filter  *bloom.Filter
	regions []*vaddr.Region

	// MinSeq and MaxSeq bound the sequence numbers inside the table.
	MinSeq, MaxSeq uint64

	// garbage counts bytes of logically deleted nodes awaiting arena
	// reclamation (the cost lazy freeing defers).
	garbage atomic.Int64

	// reclaimable marks a table whose content has been fully merged away.
	reclaimable atomic.Bool

	// activeMerge points at the zero-copy merge currently draining or
	// filling this table, if any. Readers that reached the table through
	// a snapshot taken before the merge began must detect it and re-read
	// through the merge's mark-aware protocol; see Table.GetSafe.
	activeMerge atomic.Pointer[Merge]

	// forward, once set, redirects every safe read to the merge result
	// that superseded this table. It is set exactly once, when the
	// table's zero-copy merge completes, and never cleared: a drained
	// table is a permanent skeleton that only stale version snapshots
	// still reference. Forwarding matters twice over. First, the Old
	// side of a merge shares its skip list with the result, but keeps
	// its original bloom filter — nodes migrated in from the New side
	// are not covered, so a raw MayContain on the skeleton yields false
	// negatives for keys the list does hold. Second, once the result
	// enters a later merge of its own, the shared list is being
	// migrated again; raw probes through the skeleton would race that
	// migration with no mark protection. Following forward (transitively)
	// always lands on the live table, whose own filter and activeMerge
	// state are authoritative.
	forward atomic.Pointer[Table]
}

// FilterParams sizes the per-table bloom filters; all tables in one store
// share identical parameters so filters stay OR-mergeable.
type FilterParams struct {
	// ExpectedKeys sizes the bit array (fixed for every table).
	ExpectedKeys int
	// BitsPerKey is the paper's 16 bits/key default.
	BitsPerKey int
}

// DefaultFilterParams mirrors the paper's configuration.
func DefaultFilterParams() FilterParams {
	return FilterParams{ExpectedKeys: 1 << 16, BitsPerKey: 16}
}

// Disabled reports whether bloom filtering is turned off (the paper's
// read-optimization ablation).
func (p FilterParams) Disabled() bool { return p.BitsPerKey < 0 }

func (p FilterParams) newFilter() *bloom.Filter {
	if p.Disabled() {
		return nil
	}
	return bloom.New(p.ExpectedKeys, p.BitsPerKey)
}

// Flush performs a one-piece flush of an immutable MemTable to the NVM
// device and returns the resulting L0 PMTable:
//
//  1. the memtable's DRAM arena is cloned to NVM as a single bulk copy,
//  2. every pointer in the copy is swizzled to the new arena's addresses
//     (offsets are identical, only the region base changes — §4.2's
//     "relative address" observation),
//  3. the table's bloom filter is built from one list walk.
//
// All three steps run on the caller (a background flusher goroutine); the
// original memtable keeps serving reads until the caller retires it.
func Flush(dev *nvm.Device, mt *memtable.MemTable, id uint64, minSeq, maxSeq uint64, fp FilterParams) *Table {
	src := mt.Region()
	dst := dev.Clone(src)
	head := skiplist.Swizzle(dst, src, mt.List().Head())
	list := skiplist.Attach(dev.Space(), head, nil)
	list.SetCount(mt.Count())
	list.AddUserBytes(mt.UserBytes())

	filter := fp.newFilter()
	it := list.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if filter != nil {
			filter.Add(it.Key())
		}
	}
	return &Table{
		ID:      id,
		list:    list,
		filter:  filter,
		regions: []*vaddr.Region{dst},
		MinSeq:  minSeq,
		MaxSeq:  maxSeq,
	}
}

// Attach reconstructs a Table over an existing list head (recovery path).
func Attach(space *vaddr.Space, head vaddr.Addr, id uint64, regions []*vaddr.Region, fp FilterParams) *Table {
	list := skiplist.Attach(space, head, nil)
	filter := fp.newFilter()
	count := int64(0)
	var minSeq, maxSeq uint64 = keys.MaxSeq, 0
	it := list.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if filter != nil {
			filter.Add(it.Key())
		}
		count++
		if s := it.Seq(); s < minSeq {
			minSeq = s
		}
		if s := it.Seq(); s > maxSeq {
			maxSeq = s
		}
	}
	list.SetCount(count)
	return &Table{
		ID:      id,
		list:    list,
		filter:  filter,
		regions: regions,
		MinSeq:  minSeq,
		MaxSeq:  maxSeq,
	}
}

// Get returns the newest version of key in the table.
func (t *Table) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return t.list.Get(key)
}

// SetActiveMerge publishes the merge this table is participating in. The
// engine calls it under its structural lock before the first node
// migrates. It is never cleared: completion is published by SetForward
// instead, so stale readers can never observe a drained table that looks
// like a plain one (raw list reads would be fine, but the Old side's
// original bloom filter does not cover nodes the merge migrated in).
func (t *Table) SetActiveMerge(m *Merge) { t.activeMerge.Store(m) }

// ActiveMerge returns the in-flight merge touching this table, if any.
func (t *Table) ActiveMerge() *Merge { return t.activeMerge.Load() }

// SetForward publishes the merge result that supersedes this table. The
// engine calls it under its structural lock after installing the result;
// from then on every safe read through this table delegates to the
// result. Set exactly once, never cleared.
func (t *Table) SetForward(result *Table) { t.forward.Store(result) }

// Forward returns the superseding merge result, if this table has been
// drained by a completed merge.
func (t *Table) Forward() *Table { return t.forward.Load() }

// GetSafe is Get hardened against a concurrently starting zero-copy
// merge. A reader whose structural snapshot predates the merge sees this
// table as a plain table; probing it raw could miss the single node in
// flight between the pair. The protocol:
//
//  1. if a completed merge has superseded this table, delegate to the
//     result (whose filter and merge state are authoritative — see the
//     forward field);
//  2. if a merge is already published, delegate to its mark-aware Get;
//  3. otherwise probe raw, then re-check: the merger publishes the merge
//     (an atomic store) strictly before the first migration's atomic
//     pointer stores, so a raw probe that could have observed any
//     migration effect will observe the published merge on the re-check
//     (Go's atomics give acquire/release ordering) — and retries through
//     the protocol. A probe that sees no merge on the re-check ran
//     entirely against pre-merge state and is correct as is.
func (t *Table) GetSafe(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	if f := t.Forward(); f != nil {
		return f.GetSafe(key)
	}
	if m := t.ActiveMerge(); m != nil {
		return m.Get(key)
	}
	value, seq, kind, ok = t.list.Get(key)
	if m := t.ActiveMerge(); m != nil {
		return m.Get(key)
	}
	return value, seq, kind, ok
}

// GetBoundedSafe is GetSafe restricted to versions with sequence ≤
// maxSeq — the snapshot-read probe. It follows the same
// forward/activeMerge/raw-recheck protocol; only the list lookups are
// bounded.
func (t *Table) GetBoundedSafe(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	if f := t.Forward(); f != nil {
		return f.GetBoundedSafe(key, maxSeq)
	}
	if m := t.ActiveMerge(); m != nil {
		return m.GetBounded(key, maxSeq)
	}
	value, seq, kind, ok = t.list.GetBounded(key, maxSeq)
	if m := t.ActiveMerge(); m != nil {
		return m.GetBounded(key, maxSeq)
	}
	return value, seq, kind, ok
}

// MayContain consults the table's bloom filter; with filtering disabled
// every probe must fall through to the list search.
func (t *Table) MayContain(key []byte) bool {
	if t.filter == nil {
		return true
	}
	return t.filter.MayContain(key)
}

// MayContainSafe is the filter probe matching GetSafe's protocol: a
// drained table answers with its successor's (merged) filter, a merging
// table with the union of the pair's filters. Using the raw filter on a
// drained Old table would yield false negatives for keys its list
// received from the New side.
func (t *Table) MayContainSafe(key []byte) bool {
	if f := t.Forward(); f != nil {
		return f.MayContainSafe(key)
	}
	if m := t.ActiveMerge(); m != nil {
		return m.MayContain(key)
	}
	return t.MayContain(key)
}

// Count returns the number of live entries.
func (t *Table) Count() int64 { return t.list.Count() }

// UserBytes returns key+value payload bytes held.
func (t *Table) UserBytes() int64 { return t.list.UserBytes() }

// Garbage returns bytes of logically deleted nodes pending reclamation.
func (t *Table) Garbage() int64 { return t.garbage.Load() }

// List exposes the underlying skip list.
func (t *Table) List() *skiplist.List { return t.list }

// Filter exposes the bloom filter (read-only for callers).
func (t *Table) Filter() *bloom.Filter { return t.filter }

// Regions returns the arenas whose nodes this table references.
func (t *Table) Regions() []*vaddr.Region { return t.regions }

// NewIterator iterates the table in internal-key order.
func (t *Table) NewIterator() *skiplist.Iterator { return t.list.NewIterator() }

// Reclaimable reports whether the table's content has been merged away and
// its arenas may be released once no readers remain.
func (t *Table) Reclaimable() bool { return t.reclaimable.Load() }

// MarkReclaimable flags the table for deferred arena release.
func (t *Table) MarkReclaimable() { t.reclaimable.Store(true) }

// ReleaseRegions returns every arena to the device. The caller must
// guarantee quiescence (the store's version reference counting does).
func (t *Table) ReleaseRegions(dev *nvm.Device) {
	for _, r := range t.regions {
		dev.Release(r)
	}
	t.regions = nil
}

// DropRegions severs the table's region ownership without releasing the
// arenas — used after a zero-copy merge transfers ownership to the merged
// result. Callers serialize it against Regions() readers (the engine's
// structural lock).
func (t *Table) DropRegions() { t.regions = nil }
