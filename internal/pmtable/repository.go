package pmtable

import (
	"bytes"
	"sync"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/skiplist"
	"miodb/internal/vaddr"
)

// Repository is the data repository at the bottom of MioDB (Ln): one huge
// persistent skip list holding all unique, sorted KV pairs. Tables from
// L(n-1) are folded in by lazy-copy compaction (§4.4): unlike zero-copy
// merges, the newest version of each key is physically copied into the
// repository's own arena — the only data movement in the whole in-memory
// LSM pipeline, bounding write amplification at WAL + flush + lazy copy
// ≈ 3×.
//
// After an Absorb, every arena of the consumed table is garbage: the
// engine releases them wholesale once no reader version references them
// (the paper's lazy memory freeing).
type Repository struct {
	dev    *nvm.Device
	region *vaddr.Region

	mu   sync.Mutex // serializes absorbs (single writer)
	list *skiplist.List

	garbage int64 // bytes of unlinked (superseded) repository nodes
	copied  int64 // user bytes physically copied in (lazy-copy traffic)
}

// NewRepository creates an empty repository on the NVM device.
func NewRepository(dev *nvm.Device, chunkSize int) (*Repository, error) {
	region := dev.NewRegion(chunkSize)
	list, err := skiplist.New(region)
	if err != nil {
		return nil, err
	}
	return &Repository{dev: dev, region: region, list: list}, nil
}

// AttachRepository rebuilds a repository view over an existing arena and
// list head (recovery path).
func AttachRepository(dev *nvm.Device, region *vaddr.Region, head vaddr.Addr) *Repository {
	list := skiplist.Attach(dev.Space(), head, region)
	count := int64(0)
	bytesIn := int64(0)
	it := list.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
		bytesIn += int64(len(it.Key()) + len(it.Value()))
	}
	list.SetCount(count)
	list.AddUserBytes(bytesIn)
	return &Repository{dev: dev, region: region, list: list}
}

// Head returns the repository list's head address (persisted in the
// superblock).
func (r *Repository) Head() vaddr.Addr { return r.list.Head() }

// Region returns the repository's arena.
func (r *Repository) Region() *vaddr.Region { return r.region }

// Get returns the value for key, if present.
func (r *Repository) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return r.list.Get(key)
}

// GetBounded returns the newest version of key with sequence ≤ maxSeq.
// The repository is normally single-version per key, but snapshot-gated
// absorbs retain superseded versions (and land tombstone nodes), so a
// bounded probe may legitimately see past the newest entry.
func (r *Repository) GetBounded(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return r.list.GetBounded(key, maxSeq)
}

// Count returns the number of unique keys stored.
func (r *Repository) Count() int64 { return r.list.Count() }

// UserBytes returns live key+value payload bytes.
func (r *Repository) UserBytes() int64 { return r.list.UserBytes() }

// GarbageBytes returns bytes of superseded nodes awaiting compaction.
func (r *Repository) GarbageBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.garbage
}

// CopiedBytes returns the cumulative user bytes physically copied by
// lazy-copy compactions (the ≤1× component of write amplification).
func (r *Repository) CopiedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.copied
}

// NewIterator iterates the repository in key order.
func (r *Repository) NewIterator() *skiplist.Iterator { return r.list.NewIterator() }

// List exposes the underlying skip list (diagnostics and invariant checks).
func (r *Repository) List() *skiplist.List { return r.list }

// Absorb lazy-copy-compacts one L(n-1) table into the repository:
//
//  1. walk the table in (key asc, seq desc) order; only the first — i.e.
//     newest — version of each key is considered, the rest are garbage;
//  2. a tombstone deletes the repository's version outright (the bottom
//     level retains no tombstones);
//  3. a value is physically copied into the repository arena, inserted at
//     its key position, and any superseded repository node is unlinked in
//     place ("we traverse the data repository from the insertion position
//     and delete older nodes directly").
//
// Readers stay lock-free throughout: inserts publish bottom-up, unlinks
// never touch the removed node's own towers.
//
// The caller must absorb tables oldest-first (ascending ID); a defensive
// sequence check makes a misordered absorb a no-op per key rather than a
// corruption.
func (r *Repository) Absorb(t *Table) error {
	return r.AbsorbWith(t, AbsorbPolicy{})
}

// AbsorbPolicy parameterizes an absorb for snapshots and range deletes.
// The zero value reproduces Absorb's unconditional behavior.
type AbsorbPolicy struct {
	// Skip reports that a table entry is covered by a range tombstone and
	// must not be copied in. Skipped entries stay readable to pinned
	// version snapshots through the (still-referenced) source table;
	// repository entries they would have superseded are hidden by the
	// read path's tombstone filter until a repository compaction drops
	// them physically.
	Skip func(key []byte, seq uint64, kind keys.Kind) bool
	// Drop gates in-place unlinking of a repository node superseded at
	// newerSeq, exactly like Merge.Drop: false retains the old node for
	// snapshot readers (and lands point tombstones as repository nodes
	// instead of applying them). nil = always drop.
	Drop func(newerSeq uint64) bool
	// OnDrop, when non-nil, observes every entry the absorb physically
	// drops — table entries not copied in (superseded, skipped, shadowed)
	// and repository nodes unlinked in place. Feeds value-log dead-space
	// accounting.
	OnDrop func(value []byte, kind keys.Kind)
}

func (p AbsorbPolicy) onDrop(value []byte, kind keys.Kind) {
	if p.OnDrop != nil {
		p.OnDrop(value, kind)
	}
}

func (p AbsorbPolicy) canDrop(newerSeq uint64) bool {
	return p.Drop == nil || p.Drop(newerSeq)
}

// AbsorbWith is Absorb under a policy: dead entries are skipped, and
// in-place deletions of superseded repository nodes are gated so pinned
// snapshots keep their versions reachable. When a deletion is blocked the
// repository temporarily holds several versions of a key (newest first,
// like any other list here); point reads take the newest, bounded reads
// seek their version, and the next repository compaction squeezes the
// retained garbage out.
func (r *Repository) AbsorbWith(t *Table, p AbsorbPolicy) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var lastKey []byte
	lastValid := false
	it := t.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		key := it.Key()
		if lastValid && bytes.Equal(key, lastKey) {
			p.onDrop(it.Value(), it.Kind())
			continue // older version within the same table
		}
		lastKey = append(lastKey[:0], key...)
		lastValid = true
		if p.Skip != nil && p.Skip(key, it.Seq(), it.Kind()) {
			p.onDrop(it.Value(), it.Kind())
			continue // covered by a range tombstone
		}

		existing := r.list.FindGE(key)
		hasExisting := !existing.IsNil() && bytes.Equal(existing.Key(), key)
		if hasExisting && existing.Seq() >= it.Seq() {
			p.onDrop(it.Value(), it.Kind())
			continue // repository already newer (defensive)
		}
		if it.Kind() == keys.KindDelete {
			if !hasExisting {
				continue // nothing below to shadow: tombstone is spent
			}
			if p.canDrop(it.Seq()) {
				for {
					ex := r.list.FindGE(key)
					if ex.IsNil() || !bytes.Equal(ex.Key(), key) {
						break
					}
					if removed := r.list.Remove(key, ex.Seq()); !removed.IsNil() {
						r.garbage += removed.Size()
						p.onDrop(removed.Value(), removed.Kind())
					}
				}
				continue
			}
			// A snapshot still reads the shadowed version: retain it and
			// land the tombstone as a repository node above it. finishGet
			// hides it from point reads; compaction clears both later.
			if _, err := r.list.InsertEntry(key, nil, it.Seq(), keys.KindDelete); err != nil {
				return err
			}
			r.copied += int64(len(key))
			continue
		}
		value := it.Value()
		n, err := r.list.InsertEntry(key, value, it.Seq(), it.Kind())
		if err != nil {
			return err
		}
		r.copied += int64(len(key) + len(value))
		for p.canDrop(it.Seq()) {
			d := r.list.RemoveAfter(n)
			if d.IsNil() {
				break
			}
			r.garbage += d.Size()
			p.onDrop(d.Value(), d.Kind())
		}
	}
	t.MarkReclaimable()
	return nil
}

// Release frees the repository arena (store shutdown).
func (r *Repository) Release() { r.dev.Release(r.region) }

// Compacted builds a fresh repository holding only the live nodes,
// dropping the garbage left by superseded insert/unlink updates. The
// engine swaps it in for the old repository and releases the old arena
// wholesale once readers drain — the repository-level counterpart of the
// paper's lazy memory freeing, bounding NVM footprint under update-heavy
// workloads. The copy traffic is charged to the device like any other
// write (it is real write amplification, amortized by triggering only
// when garbage exceeds a multiple of live data).
func (r *Repository) Compacted(chunkSize int) (*Repository, error) {
	return r.CompactedWith(chunkSize, nil, nil)
}

// CompactedWith is Compacted with a deadness predicate and a drop
// observer (both optional). The fresh repository is a brand-new object no
// existing reader references, so it can clean unconditionally: only the
// newest version of each key is copied, point tombstones are dropped
// (nothing below the bottom level to shadow), and keys whose newest
// version dead reports (range-tombstone covered) are omitted entirely —
// along with their older versions, which any covering tombstone
// necessarily also covers. Pinned snapshots keep reading the old
// repository object until their versions retire. onDrop observes every
// entry not carried into the fresh repository (value-log dead-space
// accounting).
func (r *Repository) CompactedWith(chunkSize int, dead func(key []byte, seq uint64, kind keys.Kind) bool, onDrop func(value []byte, kind keys.Kind)) (*Repository, error) {
	nr, err := NewRepository(r.dev, chunkSize)
	if err != nil {
		return nil, err
	}
	drop := func(value []byte, kind keys.Kind) {
		if onDrop != nil {
			onDrop(value, kind)
		}
	}
	var lastKey []byte
	lastValid := false
	it := r.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		key := it.Key()
		if lastValid && bytes.Equal(key, lastKey) {
			drop(it.Value(), it.Kind())
			continue // superseded version retained for a snapshot
		}
		lastKey = append(lastKey[:0], key...)
		lastValid = true
		if it.Kind() == keys.KindDelete {
			continue
		}
		if dead != nil && dead(key, it.Seq(), it.Kind()) {
			drop(it.Value(), it.Kind())
			continue
		}
		if err := nr.list.Insert(key, it.Value(), it.Seq(), it.Kind()); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	nr.copied = r.copied // carry the cumulative lazy-copy accounting
	r.mu.Unlock()
	return nr, nil
}
