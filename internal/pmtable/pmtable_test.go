package pmtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

func devices() (dram, nv *nvm.Device) {
	space := vaddr.NewSpace()
	return nvm.NewDevice(space, nvm.DRAMProfile()), nvm.NewDevice(space, nvm.NVMProfile())
}

func fp() FilterParams { return FilterParams{ExpectedKeys: 4096, BitsPerKey: 16} }

// buildTable creates a PMTable via the real path: memtable → one-piece
// flush. Sequence numbers are [seqBase, seqBase+n).
func buildTable(t testing.TB, dram, nv *nvm.Device, id uint64, seqBase uint64, kvs map[string]string) *Table {
	t.Helper()
	mt, err := memtable.New(dram, 1<<30, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ks := make([]string, 0, len(kvs))
	for k := range kvs {
		ks = append(ks, k)
	}
	// Insert in random-ish deterministic order.
	rnd := rand.New(rand.NewSource(int64(id)))
	rnd.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	seq := seqBase
	var minSeq, maxSeq uint64
	minSeq = seq
	for _, k := range ks {
		kind := keys.KindSet
		v := kvs[k]
		if v == "<del>" {
			kind = keys.KindDelete
			v = ""
		}
		if err := mt.Add([]byte(k), []byte(v), seq, kind); err != nil {
			t.Fatal(err)
		}
		maxSeq = seq
		seq++
	}
	tbl := Flush(nv, mt, id, minSeq, maxSeq, fp())
	mt.Release()
	return tbl
}

func TestFlushProducesEquivalentTable(t *testing.T) {
	dram, nv := devices()
	kvs := map[string]string{}
	for i := 0; i < 300; i++ {
		kvs[fmt.Sprintf("key-%04d", i)] = fmt.Sprintf("val-%04d", i)
	}
	tbl := buildTable(t, dram, nv, 1, 1, kvs)
	if tbl.Count() != int64(len(kvs)) {
		t.Fatalf("Count = %d, want %d", tbl.Count(), len(kvs))
	}
	for k, v := range kvs {
		got, _, kind, ok := tbl.Get([]byte(k))
		if !ok || string(got) != v || kind != keys.KindSet {
			t.Fatalf("Get(%s) = %q ok=%v", k, got, ok)
		}
		if !tbl.MayContain([]byte(k)) {
			t.Fatalf("bloom false negative for %s", k)
		}
	}
	if _, _, _, ok := tbl.Get([]byte("absent")); ok {
		t.Error("Get(absent) found something")
	}
	if n, err := tbl.List().CheckInvariants(); err != nil || n != len(kvs) {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
	// The flushed table must live entirely on the NVM device's region.
	if len(tbl.Regions()) != 1 {
		t.Fatalf("regions = %d", len(tbl.Regions()))
	}
}

func TestFlushChargesOneBulkWrite(t *testing.T) {
	dram, nv := devices()
	kvs := map[string]string{}
	for i := 0; i < 100; i++ {
		kvs[fmt.Sprintf("key-%04d", i)] = "0123456789"
	}
	before := nv.Counters()
	tbl := buildTable(t, dram, nv, 1, 1, kvs)
	after := nv.Counters()
	written := after.BytesWritten - before.BytesWritten
	// One-piece flush ≈ arena extent + pointer swizzling; far below the
	// 2× that per-entry copy + re-insert would cost, and at least the
	// user payload.
	if written < tbl.UserBytes() {
		t.Errorf("flush wrote %d bytes < user bytes %d", written, tbl.UserBytes())
	}
	if written > 4*tbl.UserBytes()+1<<16 {
		t.Errorf("flush wrote %d bytes, suspiciously more than arena size (user=%d)", written, tbl.UserBytes())
	}
}

func TestZeroCopyMergeDistinctKeys(t *testing.T) {
	dram, nv := devices()
	// 1 KiB values: the zero-copy property (pointer-only traffic ≪
	// payload) is only observable with non-trivial values.
	pad := string(bytes.Repeat([]byte("x"), 1024))
	old := buildTable(t, dram, nv, 1, 1, map[string]string{"a": "1" + pad, "c": "3" + pad, "e": "5" + pad})
	newer := buildTable(t, dram, nv, 2, 100, map[string]string{"b": "2" + pad, "d": "4" + pad, "f": "6" + pad})

	written := nv.Counters().BytesWritten
	merged := NewMerge(newer, old).Run()
	mergeTraffic := nv.Counters().BytesWritten - written

	if merged.Count() != 6 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	for _, kv := range []struct{ k, v string }{
		{"a", "1" + pad}, {"b", "2" + pad}, {"c", "3" + pad},
		{"d", "4" + pad}, {"e", "5" + pad}, {"f", "6" + pad},
	} {
		got, _, _, ok := merged.Get([]byte(kv.k))
		if !ok || string(got) != kv.v {
			t.Fatalf("merged.Get(%s) = %q ok=%v", kv.k, got, ok)
		}
		if !merged.MayContain([]byte(kv.k)) {
			t.Fatalf("merged bloom lost %s", kv.k)
		}
	}
	if _, err := merged.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Zero copy: traffic is pointers only — strictly less than the
	// payload that a copying merge would have moved.
	if user := merged.UserBytes(); mergeTraffic >= user {
		t.Errorf("zero-copy merge wrote %d bytes ≥ user payload %d", mergeTraffic, user)
	}
	if len(merged.Regions()) != 2 {
		t.Errorf("merged table should own both arenas, has %d", len(merged.Regions()))
	}
	if !old.Reclaimable() || !newer.Reclaimable() {
		t.Error("source tables not marked reclaimable")
	}
}

func TestZeroCopyMergeDeduplicates(t *testing.T) {
	dram, nv := devices()
	old := buildTable(t, dram, nv, 1, 1, map[string]string{
		"a": "old-a", "b": "old-b", "c": "old-c", "z": "old-z",
	})
	newer := buildTable(t, dram, nv, 2, 100, map[string]string{
		"a": "new-a", "c": "new-c", "m": "new-m",
	})
	merged := NewMerge(newer, old).Run()
	want := map[string]string{
		"a": "new-a", "b": "old-b", "c": "new-c", "m": "new-m", "z": "old-z",
	}
	if merged.Count() != int64(len(want)) {
		t.Fatalf("merged count = %d, want %d", merged.Count(), len(want))
	}
	for k, v := range want {
		got, _, _, ok := merged.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("merged.Get(%s) = %q ok=%v, want %q", k, got, ok, v)
		}
	}
	if merged.Garbage() == 0 {
		t.Error("dedup produced no garbage accounting")
	}
	if _, err := merged.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCopyMergeMultiVersionNewtable(t *testing.T) {
	// A newtable that itself carries several versions of one key (an L0
	// table flushed from a memtable with repeated updates).
	dram, nv := devices()
	mt, _ := memtable.New(dram, 1<<30, 1<<20)
	for i := 1; i <= 5; i++ {
		mt.Add([]byte("k"), []byte(fmt.Sprintf("v%d", i)), uint64(100+i), keys.KindSet)
	}
	mt.Add([]byte("q"), []byte("qv"), 110, keys.KindSet)
	newer := Flush(nv, mt, 2, 101, 110, fp())
	old := buildTable(t, dram, nv, 1, 1, map[string]string{"k": "v0", "x": "xv"})

	merged := NewMerge(newer, old).Run()
	got, seq, _, ok := merged.Get([]byte("k"))
	if !ok || string(got) != "v5" || seq != 105 {
		t.Fatalf("merged.Get(k) = %q seq=%d", got, seq)
	}
	// All older versions must be logically gone.
	if merged.Count() != 3 { // k, q, x
		t.Fatalf("merged count = %d, want 3", merged.Count())
	}
	if _, err := merged.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeChainAcrossLevels(t *testing.T) {
	// Simulate the elastic buffer: repeatedly merge pairs as the level
	// compactors would, and verify the final huge table.
	dram, nv := devices()
	golden := map[string]string{}
	var tables []*Table
	seq := uint64(1)
	for ti := 0; ti < 8; ti++ {
		kvs := map[string]string{}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%04d", (ti*37+i*13)%400)
			v := fmt.Sprintf("val-%d-%d", ti, i)
			kvs[k] = v
		}
		tbl := buildTable(t, dram, nv, uint64(ti+1), seq, kvs)
		seq += uint64(len(kvs)) + 10
		for k, v := range kvs {
			golden[k] = v // later tables win
		}
		tables = append(tables, tbl)
	}
	// Binary-tree merge, always newer into older.
	for len(tables) > 1 {
		var next []*Table
		for i := 0; i+1 < len(tables); i += 2 {
			next = append(next, NewMerge(tables[i+1], tables[i]).Run())
		}
		if len(tables)%2 == 1 {
			next = append(next, tables[len(tables)-1])
		}
		tables = next
	}
	final := tables[0]
	if final.Count() != int64(len(golden)) {
		t.Fatalf("final count = %d, want %d", final.Count(), len(golden))
	}
	for k, v := range golden {
		got, _, _, ok := final.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final.Get(%s) = %q ok=%v, want %q", k, got, ok, v)
		}
	}
	if _, err := final.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(final.Regions()) != 8 {
		t.Errorf("final table should own 8 arenas, has %d", len(final.Regions()))
	}
}

func TestConcurrentReadsDuringMerge(t *testing.T) {
	dram, nv := devices()
	oldKVs := map[string]string{}
	newKVs := map[string]string{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key-%05d", i)
		oldKVs[k] = "old-" + k
		if i%2 == 0 {
			newKVs[k] = "new-" + k
		}
	}
	for i := 400; i < 600; i++ {
		newKVs[fmt.Sprintf("key-%05d", i)] = "fresh"
	}
	old := buildTable(t, dram, nv, 1, 1, oldKVs)
	newer := buildTable(t, dram, nv, 2, 10000, newKVs)
	m := NewMerge(newer, old)

	expect := map[string]string{}
	for k, v := range oldKVs {
		expect[k] = v
	}
	for k, v := range newKVs {
		expect[k] = v
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rnd.Intn(600)
				k := fmt.Sprintf("key-%05d", i)
				v, _, _, ok := m.Get([]byte(k))
				if !ok {
					select {
					case errCh <- fmt.Errorf("reader missed %s during merge", k):
					default:
					}
					return
				}
				if string(v) != expect[k] {
					select {
					case errCh <- fmt.Errorf("reader got %q for %s, want %q", v, k, expect[k]):
					default:
					}
					return
				}
			}
		}(g)
	}
	merged := m.Run()
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if merged.Count() != int64(len(expect)) {
		t.Fatalf("merged count = %d, want %d", merged.Count(), len(expect))
	}
	if _, err := merged.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeResumeAfterCrash(t *testing.T) {
	// Interrupt a merge at every partial-migration state Resume must
	// repair, then verify the resumed merge converges to the right table.
	type crashPoint int
	const (
		afterMark crashPoint = iota
		afterRemove
		afterInsert
	)
	for _, cp := range []crashPoint{afterMark, afterRemove, afterInsert} {
		dram, nv := devices()
		old := buildTable(t, dram, nv, 1, 1, map[string]string{
			"a": "old-a", "b": "old-b", "d": "old-d",
		})
		newer := buildTable(t, dram, nv, 2, 100, map[string]string{
			"b": "new-b", "c": "new-c",
		})

		// Manually perform the first migration up to the crash point,
		// mimicking Merge.step on the first node of the newtable ("b").
		n := newer.List().First()
		markAddr := n.Addr()
		if cp >= afterRemove {
			newer.List().RemoveFirst()
		}
		if cp >= afterInsert {
			old.List().InsertNode(n)
			// crash before duplicate unlink and mark clear
		}

		m := NewMerge(newer, old)
		merged := m.Resume(markAddr)

		want := map[string]string{"a": "old-a", "b": "new-b", "c": "new-c", "d": "old-d"}
		if merged.Count() != int64(len(want)) {
			t.Fatalf("cp=%d: merged count = %d, want %d", cp, merged.Count(), len(want))
		}
		for k, v := range want {
			got, _, _, ok := merged.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("cp=%d: Get(%s) = %q ok=%v, want %q", cp, k, got, ok, v)
			}
		}
		if _, err := merged.List().CheckInvariants(); err != nil {
			t.Fatalf("cp=%d: %v", cp, err)
		}
	}
}

func TestMergePersistedMarkSlot(t *testing.T) {
	dram, nv := devices()
	old := buildTable(t, dram, nv, 1, 1, map[string]string{"a": "1"})
	newer := buildTable(t, dram, nv, 2, 100, map[string]string{"b": "2"})
	slotRegion := nv.NewRegion(4096)
	slot, _ := slotRegion.Alloc(8)
	m := NewMerge(newer, old)
	m.SetPersistSlot(slotRegion, slot)
	m.Run()
	// After a clean merge the persisted mark must be nil.
	if a := vaddr.Addr(slotRegion.Load64(slot)); !a.IsNil() {
		t.Errorf("persisted mark = %v after clean merge", a)
	}
}

func TestRepositoryAbsorb(t *testing.T) {
	dram, nv := devices()
	repo, err := NewRepository(nv, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{}
	seq := uint64(1)
	for round := 0; round < 5; round++ {
		kvs := map[string]string{}
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("key-%04d", (round*29+i*7)%300)
			v := fmt.Sprintf("val-%d-%d", round, i)
			if (round+i)%11 == 0 {
				v = "<del>"
			}
			kvs[k] = v
		}
		tbl := buildTable(t, dram, nv, uint64(round+1), seq, kvs)
		seq += 1000
		if err := repo.Absorb(tbl); err != nil {
			t.Fatal(err)
		}
		if !tbl.Reclaimable() {
			t.Fatal("absorbed table not reclaimable")
		}
		for k, v := range kvs {
			if v == "<del>" {
				delete(golden, k)
			} else {
				golden[k] = v
			}
		}
	}
	if repo.Count() != int64(len(golden)) {
		t.Fatalf("repo count = %d, want %d", repo.Count(), len(golden))
	}
	for k, v := range golden {
		got, _, _, ok := repo.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("repo.Get(%s) = %q ok=%v, want %q", k, got, ok, v)
		}
	}
	// Deleted keys are truly gone — no tombstones at the bottom.
	it := repo.NewIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if it.Kind() == keys.KindDelete {
			t.Fatalf("tombstone %q survived in repository", it.Key())
		}
		n++
	}
	if n != len(golden) {
		t.Fatalf("repo iteration found %d entries, want %d", n, len(golden))
	}
	if repo.GarbageBytes() == 0 {
		t.Error("overwrites produced no repository garbage accounting")
	}
	if repo.CopiedBytes() == 0 {
		t.Error("lazy copy accounted no copied bytes")
	}
	if _, err := repo.List().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepositoryConcurrentReadsDuringAbsorb(t *testing.T) {
	dram, nv := devices()
	repo, _ := NewRepository(nv, 1<<20)
	base := map[string]string{}
	for i := 0; i < 300; i++ {
		base[fmt.Sprintf("key-%04d", i)] = "base"
	}
	t0 := buildTable(t, dram, nv, 1, 1, base)
	if err := repo.Absorb(t0); err != nil {
		t.Fatal(err)
	}

	update := map[string]string{}
	for i := 0; i < 300; i += 2 {
		update[fmt.Sprintf("key-%04d", i)] = "updated"
	}
	t1 := buildTable(t, dram, nv, 2, 1000, update)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", rnd.Intn(300))
				v, _, _, ok := repo.Get([]byte(k))
				if !ok || (string(v) != "base" && string(v) != "updated") {
					select {
					case errCh <- fmt.Errorf("repo.Get(%s) = %q ok=%v", k, v, ok):
					default:
					}
					return
				}
			}
		}(g)
	}
	if err := repo.Absorb(t1); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		want := "base"
		if i%2 == 0 {
			want = "updated"
		}
		v, _, _, ok := repo.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("after absorb, Get(%s) = %q, want %q", k, v, want)
		}
	}
}

func TestArenaReleaseAfterLazyCopy(t *testing.T) {
	dram, nv := devices()
	repo, _ := NewRepository(nv, 1<<20)
	old := buildTable(t, dram, nv, 1, 1, map[string]string{"a": "1", "b": "2"})
	newer := buildTable(t, dram, nv, 2, 100, map[string]string{"b": "3", "c": "4"})
	merged := NewMerge(newer, old).Run()
	if err := repo.Absorb(merged); err != nil {
		t.Fatal(err)
	}
	// The paper's lazy freeing: after lazy-copy, every consumed arena is
	// released wholesale, and the repository still serves everything.
	merged.ReleaseRegions(nv)
	for k, v := range map[string]string{"a": "1", "b": "3", "c": "4"} {
		got, _, _, ok := repo.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("after arena release, repo.Get(%s) = %q ok=%v", k, got, ok)
		}
	}
}

func TestAttachRebuildsTable(t *testing.T) {
	dram, nv := devices()
	kvs := map[string]string{"x": "1", "y": "2", "z": "3"}
	tbl := buildTable(t, dram, nv, 7, 50, kvs)
	re := Attach(nv.Space(), tbl.List().Head(), 7, tbl.Regions(), fp())
	if re.Count() != 3 || re.MinSeq != 50 || re.MaxSeq != 52 {
		t.Fatalf("reattached: count=%d seq=[%d,%d]", re.Count(), re.MinSeq, re.MaxSeq)
	}
	for k, v := range kvs {
		got, _, _, ok := re.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("reattached Get(%s) = %q", k, got)
		}
		if !re.MayContain([]byte(k)) {
			t.Fatalf("reattached bloom lost %s", k)
		}
	}
}

func TestMergeOrderValidation(t *testing.T) {
	dram, nv := devices()
	old := buildTable(t, dram, nv, 1, 1, map[string]string{"a": "1"})
	newer := buildTable(t, dram, nv, 2, 100, map[string]string{"b": "2"})
	defer func() {
		if recover() == nil {
			t.Error("NewMerge with reversed pair did not panic")
		}
	}()
	NewMerge(old, newer)
}

func TestMergeEmptyTables(t *testing.T) {
	dram, nv := devices()
	empty1 := buildTable(t, dram, nv, 1, 1, map[string]string{})
	empty2 := buildTable(t, dram, nv, 2, 2, map[string]string{})
	merged := NewMerge(empty2, empty1).Run()
	if merged.Count() != 0 {
		t.Fatalf("merged empty count = %d", merged.Count())
	}
	full := buildTable(t, dram, nv, 3, 10, map[string]string{"k": "v"})
	merged2 := NewMerge(full, merged).Run()
	if v, _, _, ok := merged2.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("merge with empty old table lost data")
	}
}
