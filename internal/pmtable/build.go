package pmtable

import (
	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/skiplist"
	"miodb/internal/vaddr"
)

// Build physically constructs a PMTable by copying every entry from the
// iterator into a fresh NVM arena, node by node. The engine uses it for
// the ablation modes the paper argues against:
//
//   - flush without one-piece copying (each KV located and copied
//     individually — the hierarchical-NoveLSM flush of §4.2), and
//   - merging without zero-copy (a compaction that moves data, paying the
//     write amplification §4.3 eliminates).
//
// Entries must arrive in (key asc, seq desc) order; older duplicates are
// dropped so the built table holds at most one version per key, matching
// what a zero-copy merge would leave live.
func Build(dev *nvm.Device, chunkSize int, it iterx.Iterator, id uint64, fp FilterParams) (*Table, error) {
	region := dev.NewRegion(chunkSize)
	list, err := skiplist.New(region)
	if err != nil {
		return nil, err
	}
	filter := fp.newFilter()
	var minSeq, maxSeq uint64 = keys.MaxSeq, 0
	var lastKey []byte
	lastValid := false
	for it.SeekToFirst(); it.Valid(); it.Next() {
		key := it.Key()
		if lastValid && string(key) == string(lastKey) {
			continue // older version
		}
		lastKey = append(lastKey[:0], key...)
		lastValid = true
		if err := list.Insert(key, it.Value(), it.Seq(), it.Kind()); err != nil {
			return nil, err
		}
		if filter != nil {
			filter.Add(key)
		}
		if s := it.Seq(); s < minSeq {
			minSeq = s
		}
		if s := it.Seq(); s > maxSeq {
			maxSeq = s
		}
	}
	return &Table{
		ID:      id,
		list:    list,
		filter:  filter,
		regions: []*vaddr.Region{region},
		MinSeq:  minSeq,
		MaxSeq:  maxSeq,
	}, nil
}
