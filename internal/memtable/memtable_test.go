package memtable

import (
	"fmt"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

func newMT(t testing.TB, capacity int64) *MemTable {
	t.Helper()
	dev := nvm.NewDevice(vaddr.NewSpace(), nvm.DRAMProfile())
	mt, err := New(dev, capacity, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

func TestAddGetCount(t *testing.T) {
	mt := newMT(t, 1<<20)
	if !mt.Empty() {
		t.Error("fresh memtable not empty")
	}
	for i := 0; i < 100; i++ {
		if err := mt.Add([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Count() != 100 || mt.Empty() {
		t.Errorf("Count = %d", mt.Count())
	}
	v, seq, kind, ok := mt.Get([]byte("k042"))
	if !ok || string(v) != "v42" || seq != 43 || kind != keys.KindSet {
		t.Fatalf("Get = %q seq=%d", v, seq)
	}
	if mt.UserBytes() == 0 {
		t.Error("UserBytes = 0")
	}
}

func TestFullTriggersAtCapacity(t *testing.T) {
	mt := newMT(t, 4<<10)
	if mt.Full() {
		t.Error("empty memtable full")
	}
	i := 0
	for !mt.Full() {
		if err := mt.Add([]byte(fmt.Sprintf("key-%06d", i)), make([]byte, 100), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
		i++
		if i > 10000 {
			t.Fatal("memtable never filled")
		}
	}
	if mt.ApproximateBytes() < 4<<10 {
		t.Errorf("ApproximateBytes = %d below capacity at Full", mt.ApproximateBytes())
	}
}

func TestIteratorOrder(t *testing.T) {
	mt := newMT(t, 1<<20)
	for _, k := range []string{"m", "c", "x", "a"} {
		mt.Add([]byte(k), []byte("v"), 1+uint64(len(k)), keys.KindSet)
	}
	it := mt.NewIterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != "[a c m x]" {
		t.Errorf("order = %v", got)
	}
}

func TestReleaseKeepsReaders(t *testing.T) {
	mt := newMT(t, 1<<20)
	mt.Add([]byte("k"), []byte("v"), 1, keys.KindSet)
	mt.Release()
	// A reader holding the memtable keeps a valid view (GC-deferred).
	if v, _, _, ok := mt.Get([]byte("k")); !ok || string(v) != "v" {
		t.Error("reader broken after Release")
	}
	// But the region is detached from the space.
	if !mt.Region().Released() {
		t.Error("region not detached")
	}
}
