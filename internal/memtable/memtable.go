// Package memtable implements the DRAM write buffer: a skip list inside a
// DRAM arena, sized so the whole arena can be flushed to NVM with a single
// bulk copy (one-piece flushing, §4.2). All stores in this repository —
// MioDB and the baselines — stage writes through this type.
package memtable

import (
	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/skiplist"
	"miodb/internal/vaddr"
)

// MemTable is a DRAM-resident sorted write buffer. Writers must be
// externally serialized; readers are lock-free.
type MemTable struct {
	dev    *nvm.Device
	region *vaddr.Region
	list   *skiplist.List
	limit  int64
}

// New creates a memtable with the given soft capacity. chunkSize is the
// arena chunk size and bounds the largest single entry; it should comfortably
// exceed the largest value the store accepts.
func New(dev *nvm.Device, capacity int64, chunkSize int) (*MemTable, error) {
	region := dev.NewRegion(chunkSize)
	list, err := skiplist.New(region)
	if err != nil {
		return nil, err
	}
	return &MemTable{dev: dev, region: region, list: list, limit: capacity}, nil
}

// Add inserts one entry.
func (m *MemTable) Add(key, value []byte, seq uint64, kind keys.Kind) error {
	return m.list.Insert(key, value, seq, kind)
}

// Get returns the newest version of key in this memtable.
func (m *MemTable) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return m.list.Get(key)
}

// GetBounded returns the newest version of key with sequence ≤ maxSeq
// (snapshot reads).
func (m *MemTable) GetBounded(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	return m.list.GetBounded(key, maxSeq)
}

// Full reports whether the arena has reached its soft capacity and the
// memtable should be rotated.
func (m *MemTable) Full() bool { return m.region.Size() >= m.limit }

// ApproximateBytes returns the arena bytes consumed.
func (m *MemTable) ApproximateBytes() int64 { return m.region.Size() }

// UserBytes returns the key+value payload bytes inserted.
func (m *MemTable) UserBytes() int64 { return m.list.UserBytes() }

// Count returns the number of entries.
func (m *MemTable) Count() int64 { return m.list.Count() }

// Empty reports whether no entries have been inserted.
func (m *MemTable) Empty() bool { return m.list.Empty() }

// List exposes the underlying skip list (for flushing and iteration).
func (m *MemTable) List() *skiplist.List { return m.list }

// Region exposes the DRAM arena (the unit of one-piece flushing).
func (m *MemTable) Region() *vaddr.Region { return m.region }

// NewIterator returns an iterator over the memtable in internal-key order.
func (m *MemTable) NewIterator() *skiplist.Iterator { return m.list.NewIterator() }

// Release frees the DRAM arena. Callers must guarantee no readers remain
// (the store's version machinery does).
func (m *MemTable) Release() { m.dev.Release(m.region) }
