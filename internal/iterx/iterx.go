// Package iterx defines the iterator contract shared by every data source
// in the repository (memtables, PMTables, the repository, SSTables, matrix
// rows) and combinators over it: a heap-based k-way merging iterator and a
// visibility filter that collapses versions and drops tombstones for
// user-facing scans.
package iterx

import (
	"bytes"
	"container/heap"

	"miodb/internal/keys"
)

// Iterator walks entries in (user key asc, seq desc) order.
// skiplist.Iterator satisfies it structurally; block-format sources
// implement it over their decoded entries.
type Iterator interface {
	// SeekToFirst positions at the first entry.
	SeekToFirst()
	// Seek positions at the first entry with user key ≥ key.
	Seek(key []byte)
	// Next advances one entry.
	Next()
	// Valid reports whether the iterator is positioned on an entry.
	Valid() bool
	// Key returns the current user key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Seq returns the current sequence number.
	Seq() uint64
	// Kind returns the current entry kind.
	Kind() keys.Kind
}

// Merging merges several iterators into one global (key asc, seq desc)
// stream. Sources may contain duplicate keys; the stream interleaves all
// versions in order, newest first per key.
type Merging struct {
	h mergeHeap
}

// NewMerging builds a merging iterator over the given sources.
func NewMerging(sources ...Iterator) *Merging {
	m := &Merging{}
	m.h = make(mergeHeap, 0, len(sources))
	for _, s := range sources {
		if s != nil {
			m.h = append(m.h, s)
		}
	}
	return m
}

type mergeHeap []Iterator

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return keys.Compare(h[i].Key(), h[i].Seq(), h[j].Key(), h[j].Seq()) < 0
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(Iterator)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (m *Merging) rebuild(position func(Iterator)) {
	live := m.h[:0]
	for _, it := range m.h {
		position(it)
		if it.Valid() {
			live = append(live, it)
		}
	}
	m.h = live
	heap.Init(&m.h)
}

// SeekToFirst positions every source at its start.
func (m *Merging) SeekToFirst() { m.rebuild(func(it Iterator) { it.SeekToFirst() }) }

// Seek positions at the first entry with user key ≥ key.
func (m *Merging) Seek(key []byte) { m.rebuild(func(it Iterator) { it.Seek(key) }) }

// Valid reports whether any source still has entries.
func (m *Merging) Valid() bool { return len(m.h) > 0 }

// Next advances the globally smallest source.
func (m *Merging) Next() {
	if len(m.h) == 0 {
		return
	}
	top := m.h[0]
	top.Next()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Key returns the current user key.
func (m *Merging) Key() []byte { return m.h[0].Key() }

// Value returns the current value.
func (m *Merging) Value() []byte { return m.h[0].Value() }

// Seq returns the current sequence number.
func (m *Merging) Seq() uint64 { return m.h[0].Seq() }

// Kind returns the current entry kind.
func (m *Merging) Kind() keys.Kind { return m.h[0].Kind() }

var _ Iterator = (*Merging)(nil)

// Visible wraps an iterator in user-visible semantics: only the newest
// version of each key is yielded, and keys whose newest version is a
// tombstone are skipped entirely. It is the scan-path contract of every
// store here.
type Visible struct {
	in      Iterator
	lastKey []byte
	valid   bool
}

// NewVisible wraps in. The wrapped iterator must produce (key asc, seq
// desc) order, as Merging does.
func NewVisible(in Iterator) *Visible { return &Visible{in: in} }

// advance finds the next visible entry, assuming in is positioned at a
// candidate (the newest version of some key not yet yielded).
func (v *Visible) advance() {
	for v.in.Valid() {
		k := v.in.Key()
		if v.lastKey != nil && bytes.Equal(k, v.lastKey) {
			v.in.Next() // older version of a yielded/skipped key
			continue
		}
		v.lastKey = append(v.lastKey[:0], k...)
		if v.in.Kind() == keys.KindDelete {
			v.in.Next() // tombstone: hide the key entirely
			continue
		}
		v.valid = true
		return
	}
	v.valid = false
}

// SeekToFirst positions at the first visible entry.
func (v *Visible) SeekToFirst() {
	v.in.SeekToFirst()
	v.lastKey = nil
	v.advance()
}

// Seek positions at the first visible entry with key ≥ key.
func (v *Visible) Seek(key []byte) {
	v.in.Seek(key)
	v.lastKey = nil
	v.advance()
}

// Next advances to the next visible key.
func (v *Visible) Next() {
	if !v.valid {
		return
	}
	v.in.Next()
	v.advance()
}

// Valid reports whether positioned on a visible entry.
func (v *Visible) Valid() bool { return v.valid }

// Key returns the current user key.
func (v *Visible) Key() []byte { return v.in.Key() }

// Value returns the current value.
func (v *Visible) Value() []byte { return v.in.Value() }

// Seq returns the current sequence number.
func (v *Visible) Seq() uint64 { return v.in.Seq() }

// Kind returns keys.KindSet (tombstones are filtered).
func (v *Visible) Kind() keys.Kind { return v.in.Kind() }

var _ Iterator = (*Visible)(nil)

// Filtered hides entries a snapshot read must not see: entries with
// sequence numbers above the snapshot bound, and entries covered by a
// range tombstone (reported by the dead callback). It sits beneath
// Visible, which then applies the usual newest-version/point-tombstone
// semantics to the filtered stream. A nil dead callback filters by bound
// only; maxSeq = keys.MaxSeq filters by tombstones only.
type Filtered struct {
	in     Iterator
	maxSeq uint64
	dead   func(key []byte, seq uint64) bool
}

// NewFiltered wraps in with a sequence bound and a range-tombstone
// predicate.
func NewFiltered(in Iterator, maxSeq uint64, dead func(key []byte, seq uint64) bool) *Filtered {
	return &Filtered{in: in, maxSeq: maxSeq, dead: dead}
}

func (f *Filtered) skip() {
	for f.in.Valid() {
		if f.in.Seq() > f.maxSeq || (f.dead != nil && f.dead(f.in.Key(), f.in.Seq())) {
			f.in.Next()
			continue
		}
		return
	}
}

// SeekToFirst positions at the first passing entry.
func (f *Filtered) SeekToFirst() { f.in.SeekToFirst(); f.skip() }

// Seek positions at the first passing entry with user key ≥ key.
func (f *Filtered) Seek(key []byte) { f.in.Seek(key); f.skip() }

// Next advances to the next passing entry.
func (f *Filtered) Next() { f.in.Next(); f.skip() }

// Valid reports whether positioned on a passing entry.
func (f *Filtered) Valid() bool { return f.in.Valid() }

// Key returns the current user key.
func (f *Filtered) Key() []byte { return f.in.Key() }

// Value returns the current value.
func (f *Filtered) Value() []byte { return f.in.Value() }

// Seq returns the current sequence number.
func (f *Filtered) Seq() uint64 { return f.in.Seq() }

// Kind returns the current entry kind.
func (f *Filtered) Kind() keys.Kind { return f.in.Kind() }

var _ Iterator = (*Filtered)(nil)

// Single is a one-entry iterator, used to expose a zero-copy merge's
// in-flight insertion-mark node to scans.
type Single struct {
	K     []byte
	V     []byte
	S     uint64
	Kd    keys.Kind
	valid bool
}

// NewSingle returns an iterator over exactly one entry.
func NewSingle(key, value []byte, seq uint64, kind keys.Kind) *Single {
	return &Single{K: key, V: value, S: seq, Kd: kind}
}

// SeekToFirst positions on the entry.
func (s *Single) SeekToFirst() { s.valid = true }

// Seek positions on the entry if its key is ≥ key.
func (s *Single) Seek(key []byte) { s.valid = bytes.Compare(s.K, key) >= 0 }

// Next exhausts the iterator.
func (s *Single) Next() { s.valid = false }

// Valid reports whether positioned.
func (s *Single) Valid() bool { return s.valid }

// Key returns the entry key.
func (s *Single) Key() []byte { return s.K }

// Value returns the entry value.
func (s *Single) Value() []byte { return s.V }

// Seq returns the entry sequence.
func (s *Single) Seq() uint64 { return s.S }

// Kind returns the entry kind.
func (s *Single) Kind() keys.Kind { return s.Kd }

var _ Iterator = (*Single)(nil)
