package iterx

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"miodb/internal/keys"
)

// sliceIter drives the combinators from plain entry slices.
type sliceIter struct {
	entries []Single
	pos     int
}

func newSliceIter(entries ...Single) *sliceIter {
	// Entries must be in (key asc, seq desc) order.
	sort.Slice(entries, func(i, j int) bool {
		return keys.Compare(entries[i].K, entries[i].S, entries[j].K, entries[j].S) < 0
	})
	return &sliceIter{entries: entries}
}

func (s *sliceIter) SeekToFirst() { s.pos = 0 }
func (s *sliceIter) Seek(key []byte) {
	s.pos = sort.Search(len(s.entries), func(i int) bool {
		return bytes.Compare(s.entries[i].K, key) >= 0
	})
}
func (s *sliceIter) Next()           { s.pos++ }
func (s *sliceIter) Valid() bool     { return s.pos < len(s.entries) }
func (s *sliceIter) Key() []byte     { return s.entries[s.pos].K }
func (s *sliceIter) Value() []byte   { return s.entries[s.pos].V }
func (s *sliceIter) Seq() uint64     { return s.entries[s.pos].S }
func (s *sliceIter) Kind() keys.Kind { return s.entries[s.pos].Kd }

func e(k string, seq uint64, v string) Single {
	return Single{K: []byte(k), V: []byte(v), S: seq, Kd: keys.KindSet}
}

func del(k string, seq uint64) Single {
	return Single{K: []byte(k), S: seq, Kd: keys.KindDelete}
}

func TestMergingInterleavesInOrder(t *testing.T) {
	a := newSliceIter(e("a", 1, "av"), e("c", 3, "cv"), e("e", 5, "ev"))
	b := newSliceIter(e("b", 2, "bv"), e("d", 4, "dv"))
	m := NewMerging(a, b)
	var got []string
	for m.SeekToFirst(); m.Valid(); m.Next() {
		got = append(got, string(m.Key()))
	}
	want := []string{"a", "b", "c", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("merged order %v, want %v", got, want)
	}
}

func TestMergingVersionsNewestFirst(t *testing.T) {
	a := newSliceIter(e("k", 5, "v5"), e("k", 1, "v1"))
	b := newSliceIter(e("k", 3, "v3"))
	m := NewMerging(a, b)
	var seqs []uint64
	for m.SeekToFirst(); m.Valid(); m.Next() {
		seqs = append(seqs, m.Seq())
	}
	if fmt.Sprint(seqs) != fmt.Sprint([]uint64{5, 3, 1}) {
		t.Errorf("version order %v", seqs)
	}
}

func TestMergingSeekAndEmptySources(t *testing.T) {
	a := newSliceIter(e("b", 1, "bv"), e("d", 2, "dv"))
	empty := newSliceIter()
	m := NewMerging(a, empty, nil)
	m.Seek([]byte("c"))
	if !m.Valid() || string(m.Key()) != "d" {
		t.Fatalf("Seek landed on %q", m.Key())
	}
	m.Seek([]byte("z"))
	if m.Valid() {
		t.Error("Seek past end still valid")
	}
	m2 := NewMerging()
	m2.SeekToFirst()
	if m2.Valid() {
		t.Error("empty merge valid")
	}
}

func TestVisibleCollapsesVersionsAndTombstones(t *testing.T) {
	a := newSliceIter(
		e("a", 5, "a-new"), e("a", 1, "a-old"),
		del("b", 6), e("b", 2, "b-old"),
		e("c", 3, "c"),
	)
	v := NewVisible(a)
	var got []string
	for v.SeekToFirst(); v.Valid(); v.Next() {
		got = append(got, fmt.Sprintf("%s=%s", v.Key(), v.Value()))
	}
	want := "[a=a-new c=c]"
	if fmt.Sprint(got) != want {
		t.Errorf("visible = %v, want %s", got, want)
	}
}

func TestVisibleSeekSkipsHiddenKeys(t *testing.T) {
	a := newSliceIter(del("b", 9), e("b", 2, "b"), e("c", 3, "c"))
	v := NewVisible(a)
	v.Seek([]byte("b"))
	if !v.Valid() || string(v.Key()) != "c" {
		t.Fatalf("Seek(b) landed on %q", v.Key())
	}
}

func TestSingleIterator(t *testing.T) {
	s := NewSingle([]byte("m"), []byte("v"), 7, keys.KindSet)
	s.SeekToFirst()
	if !s.Valid() || string(s.Key()) != "m" || s.Seq() != 7 {
		t.Fatal("SeekToFirst broken")
	}
	s.Next()
	if s.Valid() {
		t.Error("Next did not exhaust")
	}
	s.Seek([]byte("a"))
	if !s.Valid() {
		t.Error("Seek before key should position")
	}
	s.Seek([]byte("z"))
	if s.Valid() {
		t.Error("Seek past key should invalidate")
	}
}

// Property: merging + visible over random shards == sorted dedup of a map.
func TestQuickMergeVisibleEqualsModel(t *testing.T) {
	f := func(raw []uint16) bool {
		// Build 3 shards of versioned writes; model keeps newest per key.
		shards := make([][]Single, 3)
		model := map[string]string{}
		for i, r := range raw {
			k := fmt.Sprintf("k%02d", r%50)
			v := fmt.Sprintf("v%d", i)
			seq := uint64(i + 1)
			kind := keys.KindSet
			if r%7 == 0 {
				kind = keys.KindDelete
			}
			shards[int(r)%3] = append(shards[int(r)%3], Single{K: []byte(k), V: []byte(v), S: seq, Kd: kind})
			if kind == keys.KindDelete {
				delete(model, k)
			} else {
				model[k] = v
			}
		}
		its := make([]Iterator, 3)
		for i := range shards {
			its[i] = newSliceIter(shards[i]...)
		}
		vis := NewVisible(NewMerging(its...))
		got := map[string]string{}
		var prev []byte
		for vis.SeekToFirst(); vis.Valid(); vis.Next() {
			if prev != nil && bytes.Compare(vis.Key(), prev) <= 0 {
				return false
			}
			prev = append(prev[:0], vis.Key()...)
			got[string(vis.Key())] = string(vis.Value())
		}
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
