package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"miodb/internal/core"
	"miodb/internal/nvm"
)

// testOpts forces frequent flushes and merges so short tests push data
// through every shard's full pipeline, matching the core suite's idiom.
func testOpts() core.Options {
	return core.Options{
		MemTableSize:   8 << 10,
		ChunkSize:      32 << 10,
		Levels:         4,
		FilterCapacity: 1 << 12,
	}
}

func mustRouter(t testing.TB, n int, opts core.Options) *Router {
	t.Helper()
	r, err := Open(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOpenRejectsBadCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := Open(n, testOpts()); err == nil {
			t.Errorf("Open(%d) accepted", n)
		}
	}
}

// TestOracleAgainstSingleEngine drives one randomized workload — puts,
// deletes, and cross-shard batches — into a 4-shard router and a
// single engine, then requires the two to be observationally identical:
// the merged iterator must yield the exact key/value stream the single
// engine does, point lookups must agree, and Seek must land both on the
// same key. The single engine is the oracle: sharding is pure routing
// and must never change what the store contains.
func TestOracleAgainstSingleEngine(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()
	oracle, err := core.Open(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	rng := rand.New(rand.NewSource(7))
	const keyspace = 600
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("k%04d", rng.Intn(keyspace)))
		switch rng.Intn(10) {
		case 0: // delete
			if err := r.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Delete(k); err != nil {
				t.Fatal(err)
			}
		case 1, 2: // cross-shard batch
			rb, ob := &core.Batch{}, &core.Batch{}
			for j := 0; j < 1+rng.Intn(6); j++ {
				bk := []byte(fmt.Sprintf("k%04d", rng.Intn(keyspace)))
				bv := []byte(fmt.Sprintf("b%d-%d", i, j))
				rb.Put(bk, bv)
				ob.Put(bk, bv)
			}
			if err := r.Write(rb); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Write(ob); err != nil {
				t.Fatal(err)
			}
		default:
			v := []byte(fmt.Sprintf("v%d", i))
			if err := r.Put(k, v); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Full-stream comparison through the merged iterator.
	ri, oi := r.NewIterator(), oracle.NewIterator()
	defer ri.Close()
	defer oi.Close()
	n := 0
	ri.SeekToFirst()
	for oi.SeekToFirst(); oi.Valid(); oi.Next() {
		if !ri.Valid() {
			t.Fatalf("merged iterator ended at %d keys; oracle still at %q", n, oi.Key())
		}
		if string(ri.Key()) != string(oi.Key()) || string(ri.Value()) != string(oi.Value()) {
			t.Fatalf("key %d: merged %q=%q, oracle %q=%q", n, ri.Key(), ri.Value(), oi.Key(), oi.Value())
		}
		ri.Next()
		n++
	}
	if ri.Valid() {
		t.Fatalf("merged iterator has extra key %q past oracle's %d", ri.Key(), n)
	}
	if n == 0 {
		t.Fatal("oracle stream empty")
	}

	// Seek and point-lookup agreement on random probes.
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%04d", rng.Intn(keyspace+50)))
		ri.Seek(k)
		oi.Seek(k)
		if ri.Valid() != oi.Valid() {
			t.Fatalf("Seek(%q): merged valid=%v, oracle valid=%v", k, ri.Valid(), oi.Valid())
		}
		if ri.Valid() && string(ri.Key()) != string(oi.Key()) {
			t.Fatalf("Seek(%q): merged at %q, oracle at %q", k, ri.Key(), oi.Key())
		}
		rv, rerr := r.Get(k)
		ov, oerr := oracle.Get(k)
		if !errors.Is(rerr, oerr) && rerr != oerr {
			t.Fatalf("Get(%q): merged err %v, oracle err %v", k, rerr, oerr)
		}
		if string(rv) != string(ov) {
			t.Fatalf("Get(%q): merged %q, oracle %q", k, rv, ov)
		}
	}
}

// TestRoutingStable pins the routing contract: the shard a key maps to
// is a pure function of its bytes, the key actually lives on that shard
// and no other, and every shard receives some of a uniform workload.
func TestRoutingStable(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("route%04d", i))
		if err := r.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		home := r.ShardFor(k)
		if again := r.ShardFor(k); again != home {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", k, home, again)
		}
		for s := 0; s < r.NumShards(); s++ {
			_, err := r.Shard(s).Get(k)
			if s == home && err != nil {
				t.Fatalf("key %q missing from its home shard %d: %v", k, home, err)
			}
			if s != home && err != core.ErrNotFound {
				t.Fatalf("key %q leaked onto shard %d (home %d): %v", k, s, home, err)
			}
		}
	}
	st := r.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("Stats().Shards len = %d", len(st.Shards))
	}
	var sum int64
	for i, s := range st.Shards {
		if s.Puts == 0 {
			t.Errorf("shard %d received no puts from a uniform workload", i)
		}
		sum += s.Puts
	}
	if sum != st.Puts || st.Puts != 400 {
		t.Errorf("aggregated puts %d, per-shard sum %d, want 400", st.Puts, sum)
	}
}

// TestBatchRejectedBeforeAnyShard: an invalid batch (empty key) must
// apply nowhere — not even the valid operations that precede it.
func TestBatchRejectedBeforeAnyShard(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()
	b := &core.Batch{}
	b.Put([]byte("good-1"), []byte("v"))
	b.Put([]byte("good-2"), []byte("v"))
	b.Put(nil, []byte("v"))
	if err := r.Write(b); err == nil {
		t.Fatal("batch with empty key accepted")
	}
	for _, k := range []string{"good-1", "good-2"} {
		if _, err := r.Get([]byte(k)); err != core.ErrNotFound {
			t.Errorf("key %q applied from a rejected batch: %v", k, err)
		}
	}
}

// TestCheckpointRestore round-trips a sharded store through its image
// file and pins the format's validation: the recorded shard count is
// adopted when the caller passes 0, enforced when the caller passes a
// count, and a single-engine image is refused with a pointer to the
// right entry point.
func TestCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.img")
	r := mustRouter(t, 3, testOpts())
	want := map[string]string{}
	for i := 0; i < 700; i++ {
		k, v := fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i)
		if err := r.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 700; i += 7 {
		k := fmt.Sprintf("k%04d", i)
		if err := r.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	if err := r.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	count, sharded, err := ImageInfo(path)
	if err != nil || !sharded || count != 3 {
		t.Fatalf("ImageInfo = %d, %v, %v; want 3, true, nil", count, sharded, err)
	}

	// Mismatched count refused; 0 adopts the recorded count.
	if _, err := OpenImage(path, 2, testOpts()); err == nil || !strings.Contains(err.Error(), "shard-count mismatch") {
		t.Fatalf("mismatched count: err = %v", err)
	}
	re, err := OpenImage(path, 0, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 3 {
		t.Fatalf("restored NumShards = %d", re.NumShards())
	}
	got := 0
	var last string
	err = re.Scan(nil, 0, func(k, v []byte) bool {
		if w, ok := want[string(k)]; !ok || w != string(v) {
			t.Fatalf("restored %q=%q, want %q", k, v, w)
		}
		if string(k) <= last && last != "" {
			t.Fatalf("restored scan out of order: %q after %q", k, last)
		}
		last = string(k)
		got++
		return true
	})
	if err != nil || got != len(want) {
		t.Fatalf("restored scan: %d keys, err %v; want %d", got, err, len(want))
	}

	// A single-engine core image must be sniffed as unsharded and
	// refused by the sharded opener.
	single := filepath.Join(dir, "single.img")
	db, err := core.Open(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Checkpoint(single); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, sharded, err := ImageInfo(single); err != nil || sharded {
		t.Fatalf("ImageInfo(single) = sharded=%v, %v", sharded, err)
	}
	if _, err := OpenImage(single, 0, testOpts()); err == nil {
		t.Fatal("sharded OpenImage accepted a single-engine image")
	}

	// Truncated files sniff clean (not sharded) rather than erroring.
	short := filepath.Join(dir, "short.img")
	if err := os.WriteFile(short, []byte("Mio"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, sharded, err := ImageInfo(short); err != nil || sharded {
		t.Fatalf("ImageInfo(short) = sharded=%v, %v", sharded, err)
	}
}

// TestErrLatchesFirstShardFailure degrades one shard with persistent
// device faults and requires: Err wraps ErrDegraded and stays stable,
// writes routed to the degraded shard are refused, and healthy shards
// keep accepting writes for their slice of the keyspace.
func TestErrLatchesFirstShardFailure(t *testing.T) {
	r := mustRouter(t, 2, testOpts())
	defer r.Close()
	for i := 0; i < 200; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	const victim = 0
	_, dev := r.Shard(victim).Devices()
	dev.SetFaultPlan(nvm.NewFaultPlan(3).FailWritesEvery(1))
	if err := r.Shard(victim).FlushAll(); err == nil {
		t.Fatal("FlushAll succeeded with every device write failing")
	}
	r.WaitIdle()

	err := r.Err()
	if err == nil || !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("Err() = %v, want ErrDegraded wrap", err)
	}
	if again := r.Err(); again != err {
		t.Fatalf("Err() unstable: %v then %v", err, again)
	}
	dev.SetFaultPlan(nil)

	// Route fresh keys to each shard: the victim refuses, the healthy
	// shard keeps serving its slice.
	victimOK, healthyOK := false, false
	for i := 0; i < 64 && !(victimOK && healthyOK); i++ {
		k := []byte(fmt.Sprintf("post%04d", i))
		werr := r.Put(k, []byte("v"))
		if r.ShardFor(k) == victim {
			if !errors.Is(werr, core.ErrDegraded) {
				t.Fatalf("Put on degraded shard: %v, want ErrDegraded", werr)
			}
			victimOK = true
		} else {
			if werr != nil {
				t.Fatalf("Put on healthy shard failed: %v", werr)
			}
			healthyOK = true
		}
	}
	if !victimOK || !healthyOK {
		t.Fatal("probe keys never covered both shards")
	}
}

// TestIteratorAfterShardClose: an iterator opened once any shard is
// closed must surface ErrClosed rather than a partial merge.
func TestIteratorAfterShardClose(t *testing.T) {
	r := mustRouter(t, 2, testOpts())
	r.Put([]byte("a"), []byte("1"))
	r.Shard(0).Close()
	it := r.NewIterator()
	if it.Err() == nil {
		t.Error("iterator over a half-closed router reports no error")
	}
	it.Close()
	r.Shard(1).Close()
}
