package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// keysFor returns count distinct keys that the router hashes onto the
// given shard (routing is a pure key hash, so this is stable).
func keysFor(r *Router, shard, count int) [][]byte {
	var out [][]byte
	for i := 0; len(out) < count; i++ {
		k := []byte(fmt.Sprintf("gk%07d", i))
		if r.ShardFor(k) == shard {
			out = append(out, k)
		}
	}
	return out
}

// TestOpenGovernedNilIsStatic proves the nil-governor path is the static
// configuration, byte for byte: no governor state, no moved targets, and
// an identical workload leaves identical per-shard counters as a plain
// Open router.
func TestOpenGovernedNilIsStatic(t *testing.T) {
	governed, err := OpenGoverned(4, testOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer governed.Close()
	plain := mustRouter(t, 4, testOpts())
	defer plain.Close()

	if governed.gov != nil {
		t.Fatal("nil governor spawned a governor loop")
	}
	if got := governed.GovernorBudget(); got != 0 {
		t.Errorf("GovernorBudget = %d on static router", got)
	}

	val := make([]byte, 256)
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("k%05d", i))
		if err := governed.Put(k, val); err != nil {
			t.Fatal(err)
		}
		if err := plain.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	governed.WaitIdle()
	plain.WaitIdle()

	if got := governed.GovernorMoves(); got != 0 {
		t.Errorf("GovernorMoves = %d on static router", got)
	}
	gt, pt := governed.MemTableTargets(), plain.MemTableTargets()
	for i := range gt {
		if gt[i] != pt[i] || gt[i] != testOpts().MemTableSize {
			t.Errorf("shard %d targets: governed=%d plain=%d want %d",
				i, gt[i], pt[i], testOpts().MemTableSize)
		}
	}
	gs, ps := governed.Stats(), plain.Stats()
	for i := range gs.Shards {
		g, p := gs.Shards[i], ps.Shards[i]
		if g.Puts != p.Puts || g.Flushes != p.Flushes ||
			g.Rotations != p.Rotations || g.UserBytesWritten != p.UserBytesWritten {
			t.Errorf("shard %d diverged: governed{puts=%d flushes=%d rot=%d bytes=%d} plain{puts=%d flushes=%d rot=%d bytes=%d}",
				i, g.Puts, g.Flushes, g.Rotations, g.UserBytesWritten,
				p.Puts, p.Flushes, p.Rotations, p.UserBytesWritten)
		}
	}
}

func TestOpenGovernedRejectsTinyBudget(t *testing.T) {
	// 8 KB over 4 shards = 2 KB per shard, below the 4 KB floor.
	if _, err := OpenGoverned(4, testOpts(), &GovernorOptions{Budget: 8 << 10}); err == nil {
		t.Fatal("tiny budget accepted")
	}
}

// TestGovernorRebalanceShiftsBudget drives rebalance() by hand — no
// ticker, fully deterministic: heat on one shard must grow its target at
// the cold shards' expense, the applied targets must never sum past the
// budget, a steady state must not thrash (hysteresis), and a heat
// reversal must move the budget again.
func TestGovernorRebalanceShiftsBudget(t *testing.T) {
	opts := testOpts() // 8 KB memtables, 32 KB chunks (target cap 128 KB)
	r := mustRouter(t, 4, opts)
	defer r.Close()
	budget := 4 * opts.MemTableSize // 32 KB: exactly the static total
	g := newGovernor(r.shards, GovernorOptions{Budget: budget}.withDefaults(4))
	// Defaults: floor = max(budget/16, 4 KB) = 4 KB, spare = 16 KB.

	hot := 0
	val := make([]byte, 512)
	writeTo := func(shard int) {
		for _, k := range keysFor(r, shard, 40) {
			if err := r.Put(k, val); err != nil {
				t.Fatal(err)
			}
		}
	}

	writeTo(hot)
	g.rebalance()
	targets := r.MemTableTargets()
	var sum int64
	for i, tgt := range targets {
		sum += tgt
		if i == hot {
			continue
		}
		if tgt != g.opts.FloorBytes {
			t.Errorf("cold shard %d target = %d, want the %d floor", i, tgt, g.opts.FloorBytes)
		}
	}
	if targets[hot] <= opts.MemTableSize {
		t.Errorf("hot shard target = %d, did not grow past %d", targets[hot], opts.MemTableSize)
	}
	if sum > budget {
		t.Errorf("targets sum %d exceeds budget %d", sum, budget)
	}
	if g.moves.Load() == 0 {
		t.Error("no retargets applied")
	}

	// Steady state: no new heat, scores decay uniformly, shares hold —
	// hysteresis must keep every target still.
	moves := g.moves.Load()
	for i := 0; i < 5; i++ {
		g.rebalance()
	}
	if got := g.moves.Load(); got != moves {
		t.Errorf("idle rebalances thrashed: moves %d → %d", moves, got)
	}

	// Reversal: heat a cold shard; within a few EWMA ticks its target
	// must overtake the old hot shard's.
	next := 2
	for i := 0; i < 3; i++ {
		writeTo(next)
		g.rebalance()
	}
	targets = r.MemTableTargets()
	sum = 0
	for _, tgt := range targets {
		sum += tgt
	}
	if targets[next] <= targets[hot] {
		t.Errorf("after reversal: new-hot target %d ≤ old-hot target %d", targets[next], targets[hot])
	}
	if sum > budget {
		t.Errorf("after reversal: targets sum %d exceeds budget %d", sum, budget)
	}
}

// TestGovernedRouterLifecycle runs a real ticking governor under
// concurrent writers and closes mid-flight — the shutdown path
// (stopGovernor before shard close) and the heat/target atomics must be
// race-clean.
func TestGovernedRouterLifecycle(t *testing.T) {
	r, err := OpenGoverned(4, testOpts(), &GovernorOptions{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.GovernorBudget(), 4*testOpts().MemTableSize; got != want {
		t.Errorf("governor adopted budget %d, want the static total %d", got, want)
	}

	var wg sync.WaitGroup
	val := make([]byte, 512)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := r.Put([]byte(fmt.Sprintf("w%d-%05d", w, i)), val); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	r.Close()
	// Close stops the loop; a second stop must be a no-op.
	r.stopGovernor()
}
