package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"miodb/internal/core"
	"miodb/internal/kvstore"
)

// TestShardSnapshotReadPaths: a router snapshot answers Get, GetMulti,
// Scan, and the merged iterator from its cut, across shards, while the
// live router moves on.
func TestShardSnapshotReadPaths(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()

	for i := 0; i < 200; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	for i := 0; i < 200; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.DeleteRange([]byte("k0050"), []byte("k0150")); err != nil {
		t.Fatal(err)
	}

	if v, err := snap.Get([]byte("k0100")); err != nil || string(v) != "old" {
		t.Fatalf("snap.Get = %q, %v", v, err)
	}
	values, errs := snap.GetMulti([][]byte{[]byte("k0000"), []byte("k0100"), []byte("k0199"), []byte("nope")})
	for i := 0; i < 3; i++ {
		if errs[i] != nil || string(values[i]) != "old" {
			t.Fatalf("snap mget[%d] = %q, %v", i, values[i], errs[i])
		}
	}
	if errs[3] != kvstore.ErrNotFound {
		t.Fatalf("snap mget[absent] err = %v", errs[3])
	}

	// Cut scan: all 200 keys, globally ordered, all old.
	var last string
	n := 0
	err = snap.Scan(nil, 0, func(k, v []byte) bool {
		if string(v) != "old" {
			t.Fatalf("snap scan saw %q=%q", k, v)
		}
		if string(k) <= last {
			t.Fatalf("snap scan out of order: %q after %q", k, last)
		}
		last = string(k)
		n++
		return true
	})
	if err != nil || n != 200 {
		t.Fatalf("snap scan n=%d err=%v", n, err)
	}
	// Live router reflects the range delete.
	n = 0
	if err := r.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("live scan n=%d, want 100", n)
	}
}

// TestShardSnapshotCutConsistency: concurrent multi-shard batches versus
// repeated snapshots — every batch must be entirely inside or entirely
// outside each cut. This is the guarantee cutMu provides; without it a
// capture can land between one batch's per-shard commits.
func TestShardSnapshotCutConsistency(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()

	// Keys chosen to land on different shards; every batch writes the same
	// round number to all of them.
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("cut%04d", i))
	}
	var stop atomic.Bool
	var writerErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; !stop.Load(); round++ {
			b := &core.Batch{}
			v := []byte(fmt.Sprintf("r%06d", round))
			for _, k := range keys {
				b.Put(k, v)
			}
			if err := r.Write(b); err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	for cap := 0; cap < 100; cap++ {
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		values, errs := snap.GetMulti(keys)
		snap.Close()
		var want string
		for i := range keys {
			if errs[i] == kvstore.ErrNotFound {
				want = "absent"
				continue
			}
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if want == "" {
				want = string(values[i])
			} else if string(values[i]) != want {
				t.Fatalf("torn cut: key %s = %q, others = %q", keys[i], values[i], want)
			}
		}
		if want == "absent" {
			// All-absent is a consistent (pre-first-batch) cut; mixed
			// absent/present would have tripped the comparison above.
			for i := range keys {
				if errs[i] != kvstore.ErrNotFound {
					t.Fatalf("torn cut: key %s present while others absent", keys[i])
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := writerErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestShardDeleteRangeBroadcast: a range delete reaches every shard
// atomically with respect to snapshots — a cut sees either no shard
// with the tombstone or all of them.
func TestShardDeleteRangeBroadcast(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	defer r.Close()
	for i := 0; i < 400; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	var delErr atomic.Value
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			var err error
			if i%2 == 0 {
				err = r.DeleteRange([]byte("k0000"), nil)
			} else {
				b := &core.Batch{}
				for j := 0; j < 400; j++ {
					b.Put([]byte(fmt.Sprintf("k%04d", j)), []byte("v"))
				}
				err = r.Write(b)
			}
			if err != nil {
				delErr.Store(err)
				return
			}
		}
	}()

	for cap := 0; cap < 60; cap++ {
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := snap.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		snap.Close()
		if n != 0 && n != 400 {
			t.Fatalf("torn range delete: cut has %d of 400 keys", n)
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := delErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestShardSnapshotSurvivesChurn: the cut stays intact through flushes
// and compactions on every shard, and a leaked snapshot blocks Close
// until released.
func TestShardSnapshotSurvivesChurn(t *testing.T) {
	r := mustRouter(t, 4, testOpts())
	for i := 0; i < 300; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 300; i++ {
			if err := r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("churn")); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 123, 299} {
		k := fmt.Sprintf("k%04d", i)
		if v, err := snap.Get([]byte(k)); err != nil || string(v) != fmt.Sprintf("old-%d", i) {
			t.Fatalf("snap.Get(%s) after churn = %q, %v", k, v, err)
		}
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardSnapshotSSDRefused: if the shards run in SSD mode the router
// refuses the capture and leaks nothing.
func TestShardSnapshotSSDRefused(t *testing.T) {
	opts := testOpts()
	opts.SSD = &core.SSDOptions{}
	r := mustRouter(t, 2, opts)
	defer r.Close()
	if _, err := r.Snapshot(); err != core.ErrSnapshotUnsupported {
		t.Fatalf("Snapshot on SSD shards err = %v", err)
	}
}
