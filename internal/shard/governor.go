package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"miodb/internal/core"
	"miodb/internal/stats"
)

// The adaptive memory governor: one global DRAM budget, continuously
// rebalanced across shards.
//
// A static split gives every shard budget/n bytes of memtable whether it
// is hammered or idle, so under skew the hot shards rotate and flush
// constantly while cold shards sit on idle arenas. The governor samples
// each shard's write heat (core.DB.Heat — user bytes, flushes,
// rotations) on a ticker, smooths it with an EWMA, and re-divides the
// budget proportionally: write-hot shards grow toward fewer flushes,
// cold shards shrink toward a floor. Targets are applied through
// core.DB.SetMemTableTarget, which only takes effect at each shard's
// next rotation — the governor never resizes a live arena.
//
// Two rules keep the loop honest:
//
//   - Budget: shrinks are applied before grows and every grow is capped
//     by the headroom the rest of the fleet leaves, so the sum of
//     applied targets never exceeds the budget — even mid-transition.
//   - Hysteresis: a move smaller than HysteresisFrac of the shard's
//     current target is skipped, so allocations don't thrash when the
//     heat signal wobbles around a steady state.

// GovernorOptions configures the adaptive memory governor. The zero
// value is usable: every field defaults as documented.
type GovernorOptions struct {
	// Budget is the global DRAM memtable budget in bytes, divided across
	// all shards. When > 0 each shard *starts* at Budget/n (overriding
	// opts.MemTableSize, so adaptive and static arms compare at equal
	// total memory); 0 adopts the static configuration's total
	// (n × the defaulted per-shard MemTableSize).
	Budget int64
	// Interval is the governor tick. Default 10ms — a few rotations of a
	// hot 64 KB shard, so decisions track the signal they act on.
	Interval time.Duration
	// FloorBytes is the per-shard minimum target: cold shards shrink to
	// this, never below (a shard must always be able to accept writes).
	// Default: Budget/(4n), at least 4 KB.
	FloorBytes int64
	// HysteresisFrac skips any move smaller than this fraction of the
	// shard's current target. Default 0.15.
	HysteresisFrac float64
	// Alpha is the EWMA weight of the newest heat interval in [0, 1];
	// higher reacts faster, lower smooths more. Default 0.5.
	Alpha float64
}

func (g GovernorOptions) withDefaults(n int) GovernorOptions {
	if g.Interval <= 0 {
		g.Interval = 10 * time.Millisecond
	}
	if g.FloorBytes <= 0 {
		g.FloorBytes = g.Budget / int64(4*n)
		if g.FloorBytes < 4<<10 {
			g.FloorBytes = 4 << 10
		}
	}
	if g.HysteresisFrac < 0 {
		g.HysteresisFrac = 0
	} else if g.HysteresisFrac == 0 {
		g.HysteresisFrac = 0.15
	}
	if g.Alpha <= 0 || g.Alpha > 1 {
		g.Alpha = 0.5
	}
	return g
}

// OpenGoverned is Open plus the adaptive memory governor. gov == nil is
// exactly Open: the static split, byte for byte — no goroutine, no
// target ever moved. With gov set, shards open at the even split of the
// budget and the governor loop starts rebalancing immediately.
func OpenGoverned(n int, opts core.Options, gov *GovernorOptions) (*Router, error) {
	if gov == nil {
		return Open(n, opts)
	}
	g := gov.withDefaults(n)
	if g.Budget > 0 {
		per := g.Budget / int64(n)
		if per < 4<<10 {
			return nil, fmt.Errorf("miodb/shard: memory budget %d over %d shards leaves %d B per shard (need ≥ 4096)", g.Budget, n, per)
		}
		opts.MemTableSize = per
	}
	r, err := Open(n, opts)
	if err != nil {
		return nil, err
	}
	if g.Budget <= 0 {
		// Adopt the static configuration's total so "turn the governor
		// on" never changes how much memory the store uses.
		for _, db := range r.shards {
			g.Budget += db.MemTableTarget()
		}
	}
	r.gov = newGovernor(r.shards, g)
	go r.gov.run()
	return r, nil
}

// governor is the rebalancing loop state; one per governed Router.
type governor struct {
	shards []*core.DB
	opts   GovernorOptions
	prev   []stats.Heat // last tick's cumulative heat sample per shard
	score  []float64    // EWMA of per-interval demand (bytes written)
	stop   chan struct{}
	done   chan struct{}
	moves  atomic.Int64 // applied retargets (observability)
}

func newGovernor(shards []*core.DB, opts GovernorOptions) *governor {
	return &governor{
		shards: shards,
		opts:   opts,
		prev:   make([]stats.Heat, len(shards)),
		score:  make([]float64, len(shards)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func (g *governor) run() {
	defer close(g.done)
	for i, db := range g.shards {
		g.prev[i] = db.Heat()
	}
	tick := time.NewTicker(g.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			g.rebalance()
		}
	}
}

// stopTicking halts the loop and waits for an in-flight rebalance to
// finish; idempotent.
func (g *governor) stopTicking() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}

// rebalance is one governor tick: sample heat, update scores, compute
// proportional shares, and apply them under the budget with hysteresis.
func (g *governor) rebalance() {
	n := len(g.shards)
	var total float64
	for i, db := range g.shards {
		h := db.Heat()
		d := h.Delta(g.prev[i])
		g.prev[i] = h
		g.score[i] = g.opts.Alpha*float64(d.UserBytes) + (1-g.opts.Alpha)*g.score[i]
		total += g.score[i]
	}

	budget := g.opts.Budget
	floor := g.opts.FloorBytes
	spare := budget - int64(n)*floor
	if spare < 0 {
		spare = 0
	}
	want := make([]int64, n)
	if total <= 0 {
		// No demand anywhere: hold the even split.
		for i := range want {
			want[i] = budget / int64(n)
		}
	} else {
		for i := range want {
			want[i] = floor + int64(float64(spare)*(g.score[i]/total))
		}
	}

	cur := make([]int64, n)
	var sum int64
	for i, db := range g.shards {
		cur[i] = db.MemTableTarget()
		sum += cur[i]
	}
	hyst := g.opts.HysteresisFrac

	// Shrinks first: they release headroom the grows below spend.
	for i, db := range g.shards {
		if want[i] >= cur[i] || float64(cur[i]-want[i]) < hyst*float64(cur[i]) {
			continue
		}
		applied := db.SetMemTableTarget(want[i])
		sum += applied - cur[i]
		cur[i] = applied
		g.moves.Add(1)
	}
	// Grows, each capped by the headroom the rest of the fleet leaves so
	// the applied targets never sum past the budget. SetMemTableTarget
	// may clamp further (the ChunkSize cap); the accounting uses the
	// applied value, not the ask.
	for i, db := range g.shards {
		if want[i] <= cur[i] || float64(want[i]-cur[i]) < hyst*float64(cur[i]) {
			continue
		}
		w := want[i]
		if headroom := budget - (sum - cur[i]); w > headroom {
			w = headroom
		}
		if w <= cur[i] {
			continue
		}
		applied := db.SetMemTableTarget(w)
		sum += applied - cur[i]
		cur[i] = applied
		g.moves.Add(1)
	}
}

// MemTableTargets returns every shard's next-memtable capacity target —
// the governor's current division of the budget (or the static split
// when no governor runs).
func (r *Router) MemTableTargets() []int64 {
	out := make([]int64, len(r.shards))
	for i, db := range r.shards {
		out[i] = db.MemTableTarget()
	}
	return out
}

// GovernorBudget returns the governor's global memtable budget in bytes,
// or 0 when the router runs the static split.
func (r *Router) GovernorBudget() int64 {
	if r.gov == nil {
		return 0
	}
	return r.gov.opts.Budget
}

// GovernorMoves returns how many retargets the governor has applied —
// 0 on a static router, and low on a steady workload (hysteresis).
func (r *Router) GovernorMoves() int64 {
	if r.gov == nil {
		return 0
	}
	return r.gov.moves.Load()
}

// stopGovernor halts the rebalancing loop if one runs; safe to call
// more than once, and a no-op on a static router.
func (r *Router) stopGovernor() {
	if r.gov != nil {
		r.gov.stopTicking()
	}
}
