// Package shard hash-partitions the keyspace over N independent MioDB
// engines, the standard route to multi-core write and read scaling once a
// single engine's front end (one MemTable, one WAL, one commit lock)
// becomes the ceiling. Each shard is a full core.DB — its own DRAM
// MemTable, WAL, elastic-buffer levels, compaction threads, and
// repository — so shards share nothing and scale independently; the
// Router in front of them is stateless apart from the shard table.
//
// Semantics relative to a single engine:
//
//   - Point operations (Put/Get/Delete) are indistinguishable: each key
//     lives on exactly one shard, chosen by a stable hash of its bytes.
//   - Write batches are split by routing hash and applied per shard.
//     Atomicity holds per shard (each shard's slice of the batch commits
//     with one WAL append and consecutive sequence numbers); there is no
//     cross-shard atomicity — a crash can surface some shards' slices
//     without others'.
//   - Scan/NewIterator merge the per-shard iterators through the shared
//     k-way heap (internal/iterx); shards partition the keyspace, so the
//     merged stream is globally ordered with no duplicate keys.
//   - Stats aggregates per-shard snapshots (stats.Aggregate) and keeps
//     the per-shard breakdown in Snapshot.Shards.
//   - Err latches the first shard error observed: one degraded shard
//     refuses writes for its slice of the keyspace while healthy shards
//     keep serving theirs.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/stats"
)

// Router fronts n independent core.DB shards. All methods are safe for
// concurrent use; the router itself holds no hot shared state, so
// concurrent operations on different shards never contend.
type Router struct {
	shards []*core.DB
	// firstErr latches the first shard error Err observes, so repeated
	// calls keep reporting one stable cause even if more shards degrade.
	firstErr atomic.Pointer[error]
	// gov is the adaptive memory governor (OpenGoverned); nil on a
	// static router — no goroutine, no target ever moved.
	gov *governor
	// cutMu orders multi-shard commits against cross-shard snapshot
	// capture. A batch that touches several shards (or a broadcast range
	// delete) holds the read side across all of its per-shard commits;
	// Snapshot holds the write side while it captures every shard's
	// bound. Without it a capture could land between one batch's
	// per-shard commits and see a torn cut. Single-shard operations never
	// touch it — their commit is atomic under the one shard's commit
	// lock, which SnapshotAll already holds during capture.
	cutMu sync.RWMutex
}

// Open creates a router over n fresh shards, each configured with opts
// (sizes are per shard: n shards of a 64 KB MemTable hold 64·n KB of
// buffered writes in total). n must be at least 1.
func Open(n int, opts core.Options) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("miodb/shard: shard count %d out of range (need ≥ 1)", n)
	}
	r := &Router{shards: make([]*core.DB, 0, n)}
	for i := 0; i < n; i++ {
		db, err := core.Open(opts)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("miodb/shard: open shard %d: %w", i, err)
		}
		r.shards = append(r.shards, db)
	}
	return r, nil
}

// shardOf routes a key with FNV-1a over its bytes. The hash is a pure
// function of the key, so routing is stable across processes and image
// restores — a requirement, since each shard's image only replays keys
// that hashed to it when they were written.
func shardOf(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard exposes one underlying engine (tests, fault injection).
func (r *Router) Shard(i int) *core.DB { return r.shards[i] }

// ShardFor returns the index key routes to.
func (r *Router) ShardFor(key []byte) int { return shardOf(key, len(r.shards)) }

// Put stores a key-value pair on the key's shard.
func (r *Router) Put(key, value []byte) error {
	return r.shards[shardOf(key, len(r.shards))].Put(key, value)
}

// Get returns the newest live value for key from its shard.
func (r *Router) Get(key []byte) ([]byte, error) {
	return r.shards[shardOf(key, len(r.shards))].Get(key)
}

// Delete writes a tombstone on the key's shard.
func (r *Router) Delete(key []byte) error {
	return r.shards[shardOf(key, len(r.shards))].Delete(key)
}

// DeleteRange deletes every key k with start ≤ k < end (empty end =
// unbounded) across all shards. A range spans hash partitions, so the
// tombstone is broadcast: each shard commits its own O(1) tombstone,
// concurrently. There is no cross-shard atomicity — on error (or a crash
// mid-broadcast) some shards may carry the tombstone while others do not,
// the same contract as a cross-shard batch.
func (r *Router) DeleteRange(start, end []byte) error {
	r.cutMu.RLock()
	defer r.cutMu.RUnlock()
	return r.each(func(db *core.DB) error { return db.DeleteRange(start, end) })
}

// GetMulti reads several keys in one operation, grouped by shard and
// fetched shard-concurrently. Results are positional: values[i] / errs[i]
// answer keys[i]. Each shard's group is answered from one pinned version
// (mutually consistent within the shard); like Scan, the combined result
// is not a single cross-shard cut — use Snapshot for that.
func (r *Router) GetMulti(getKeys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(getKeys))
	errs := make([]error, len(getKeys))
	if len(getKeys) == 0 {
		return values, errs
	}
	perKeys := make([][][]byte, len(r.shards))
	perIdx := make([][]int, len(r.shards))
	for i, key := range getKeys {
		s := shardOf(key, len(r.shards))
		perKeys[s] = append(perKeys[s], key)
		perIdx[s] = append(perIdx[s], i)
	}
	var wg sync.WaitGroup
	for s, group := range perKeys {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, group [][]byte) {
			defer wg.Done()
			vs, es := r.shards[s].GetMulti(group)
			for j, i := range perIdx[s] {
				values[i], errs[i] = vs[j], es[j]
			}
		}(s, group)
	}
	wg.Wait()
	return values, errs
}

// Write splits the batch by routing hash and applies each shard's slice
// as one commit on that shard. Atomicity is per shard: a shard's slice
// is logged with one WAL append and is all-or-nothing across a crash,
// but there is no cross-shard transaction — on error (or a crash mid
// apply) some shards may carry their slice while others do not. Shards
// are applied concurrently; the first error is returned after every
// touched shard has been attempted.
func (r *Router) Write(b *core.Batch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	per := make([][]kvstore.BatchOp, len(r.shards))
	emptyKey := false
	b.Each(func(key, value []byte, del, rangeDel bool) {
		if rangeDel {
			// A range spans hash partitions: broadcast the tombstone to
			// every shard, in batch order relative to the shard's own ops.
			for i := range per {
				per[i] = append(per[i], kvstore.BatchOp{Key: key, Value: value, RangeDelete: true})
			}
			return
		}
		if len(key) == 0 {
			emptyKey = true
			return
		}
		i := shardOf(key, len(r.shards))
		per[i] = append(per[i], kvstore.BatchOp{Key: key, Value: value, Delete: del})
	})
	if emptyKey {
		// Reject before touching any shard, matching core.DB.Write's
		// pre-validation: an invalid batch applies nowhere.
		return fmt.Errorf("miodb: empty key in batch")
	}
	return r.applySplit(per)
}

// WriteBatch is the kvstore.BatchWriter adapter: the server's MPUT and
// the harness feed batches through it. Same split and same per-shard
// atomicity contract as Write.
func (r *Router) WriteBatch(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	per := make([][]kvstore.BatchOp, len(r.shards))
	for _, op := range ops {
		if op.RangeDelete {
			for i := range per {
				per[i] = append(per[i], op)
			}
			continue
		}
		if len(op.Key) == 0 {
			return fmt.Errorf("miodb: empty key in batch")
		}
		i := shardOf(op.Key, len(r.shards))
		per[i] = append(per[i], op)
	}
	return r.applySplit(per)
}

// applySplit commits each shard's non-empty slice. A single touched
// shard commits inline (the common case for small batches); multiple
// shards commit concurrently so a cross-shard batch pays the slowest
// shard, not the sum.
func (r *Router) applySplit(per [][]kvstore.BatchOp) error {
	touched := 0
	last := -1
	for i, ops := range per {
		if len(ops) > 0 {
			touched++
			last = i
		}
	}
	switch touched {
	case 0:
		return nil
	case 1:
		return r.shards[last].WriteBatch(per[last])
	}
	// Multi-shard: hold the cut lock across all per-shard commits so a
	// concurrent Snapshot sees this batch entirely or not at all.
	r.cutMu.RLock()
	defer r.cutMu.RUnlock()
	var wg sync.WaitGroup
	errs := make([]error, len(per))
	for i, ops := range per {
		if len(ops) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, ops []kvstore.BatchOp) {
			defer wg.Done()
			errs[i] = r.shards[i].WriteBatch(ops)
		}(i, ops)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Scan calls fn for up to limit live keys ≥ start in global order across
// all shards; fn returning false stops early. limit ≤ 0 scans to the
// end. The slices passed to fn alias store memory and are only valid
// during the callback.
func (r *Router) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	it := r.NewIterator()
	defer it.Close()
	if it.Err() != nil {
		return it.Err()
	}
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

// Flush forces every shard's DRAM buffer out and waits for all
// background work to drain, shard-concurrently.
func (r *Router) Flush() error { return r.FlushAll() }

// FlushAll is Flush under the name core.DB uses.
func (r *Router) FlushAll() error {
	return r.each(func(db *core.DB) error { return db.FlushAll() })
}

// each runs fn on every shard concurrently and returns the first error
// by shard index.
func (r *Router) each(fn func(*core.DB) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.shards))
	for i, db := range r.shards {
		wg.Add(1)
		go func(i int, db *core.DB) {
			defer wg.Done()
			errs[i] = fn(db)
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates every shard's snapshot: counters summed, stalls
// maxed, devices merged by name, derived rates recomputed — with the
// per-shard breakdown retained in Snapshot.Shards.
func (r *Router) Stats() stats.Snapshot {
	per := make([]stats.Snapshot, len(r.shards))
	for i, db := range r.shards {
		per[i] = db.Stats()
	}
	return stats.Aggregate(per)
}

// ResetCounters clears device and cost counters on every shard.
func (r *Router) ResetCounters() {
	for _, db := range r.shards {
		db.ResetCounters()
	}
}

// ValueLogEnabled reports whether key-value separation is active (shards
// share one configuration, so probing the first is exact) — the
// kvstore.ValueLogger capability probe.
func (r *Router) ValueLogEnabled() bool {
	return len(r.shards) > 0 && r.shards[0].ValueLogEnabled()
}

// RunValueLogGC reclaims eligible value-log segments on every shard,
// shard-concurrently, and returns the total number reclaimed.
func (r *Router) RunValueLogGC() (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		first error
	)
	for _, db := range r.shards {
		wg.Add(1)
		go func(db *core.DB) {
			defer wg.Done()
			n, err := db.RunValueLogGC()
			mu.Lock()
			total += n
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(db)
	}
	wg.Wait()
	return total, first
}

// Err reports the first latched shard error, if any. A non-nil result
// wraps core.ErrDegraded: that shard has latched itself read-only and
// refuses writes for its slice of the keyspace, while healthy shards
// keep serving theirs. The first error observed stays the reported
// cause even if further shards degrade later.
func (r *Router) Err() error {
	if p := r.firstErr.Load(); p != nil {
		return *p
	}
	for _, db := range r.shards {
		if err := db.Err(); err != nil {
			r.firstErr.CompareAndSwap(nil, &err)
			// Re-load rather than returning err directly: a concurrent
			// caller may have latched a different shard's error first,
			// and Err promises one stable answer.
			return *r.firstErr.Load()
		}
	}
	return nil
}

// WaitIdle blocks until every shard's background work has drained.
func (r *Router) WaitIdle() {
	var wg sync.WaitGroup
	for _, db := range r.shards {
		wg.Add(1)
		go func(db *core.DB) {
			defer wg.Done()
			db.WaitIdle()
		}(db)
	}
	wg.Wait()
}

// Close shuts every shard down, shard-concurrently. Callers must stop
// issuing operations (and Close all iterators) first. A governed router
// stops its rebalancing loop before the shards go down.
func (r *Router) Close() error {
	r.stopGovernor()
	return r.each(func(db *core.DB) error {
		if db == nil {
			return nil
		}
		return db.Close()
	})
}

// CrashForTest simulates a simultaneous power failure across all shards:
// every shard's background work is dropped mid-flight and its crash
// image captured. The router is unusable afterwards; pass the images to
// RecoverShards. Test/torture-harness use only.
func (r *Router) CrashForTest() []*core.CrashImage {
	r.stopGovernor()
	imgs := make([]*core.CrashImage, len(r.shards))
	for i, db := range r.shards {
		imgs[i] = db.CrashForTest()
	}
	return imgs
}

// RecoverShards rebuilds a router from per-shard crash images, running
// each shard through the standard crash-recovery path.
func RecoverShards(imgs []*core.CrashImage, opts core.Options) (*Router, error) {
	r := &Router{shards: make([]*core.DB, 0, len(imgs))}
	for i, img := range imgs {
		db, err := core.Recover(img, opts)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("miodb/shard: recover shard %d: %w", i, err)
		}
		r.shards = append(r.shards, db)
	}
	return r, nil
}

var (
	_ kvstore.Store        = (*Router)(nil)
	_ kvstore.BatchWriter  = (*Router)(nil)
	_ kvstore.RangeDeleter = (*Router)(nil)
	_ kvstore.MultiGetter  = (*Router)(nil)
)
