package shard

import (
	"miodb/internal/core"
	"miodb/internal/iterx"
	"miodb/internal/keys"
)

// coreIterSource lifts a *core.Iterator into the iterx.Iterator contract
// so the router reuses the shared k-way merge heap. A core iterator is
// already user-visible — deduplicated per key, tombstones hidden — and
// shards partition the keyspace, so no two sources ever yield the same
// key; merge order depends only on Key(), and Seq/Kind are stubbed.
type coreIterSource struct{ it *core.Iterator }

func (s coreIterSource) SeekToFirst()    { s.it.SeekToFirst() }
func (s coreIterSource) Seek(key []byte) { s.it.Seek(key) }
func (s coreIterSource) Next()           { s.it.Next() }
func (s coreIterSource) Valid() bool     { return s.it.Valid() }
func (s coreIterSource) Key() []byte     { return s.it.Key() }
func (s coreIterSource) Value() []byte   { return s.it.Value() }
func (s coreIterSource) Seq() uint64     { return 0 }
func (s coreIterSource) Kind() keys.Kind { return keys.KindSet }

var _ iterx.Iterator = coreIterSource{}

// Iterator walks the live keys of every shard in one globally ordered
// stream. Each per-shard iterator pins that shard's version snapshot
// (an epoch pin), so the view is consistent per shard but not a single
// cross-shard cut: a write racing the iterator's creation may be visible
// on one shard and not on another. Callers must Close it to release the
// per-shard pins — a leaked iterator blocks every shard's Close.
type Iterator struct {
	subs []*core.Iterator
	it   *iterx.Merging
	err  error
}

// NewIterator opens one iterator per shard and merges them through the
// k-way heap.
func (r *Router) NewIterator() *Iterator {
	subs := make([]*core.Iterator, len(r.shards))
	srcs := make([]iterx.Iterator, len(r.shards))
	var firstErr error
	for i, db := range r.shards {
		subs[i] = db.NewIterator()
		if err := subs[i].Err(); err != nil && firstErr == nil {
			firstErr = err
		}
		srcs[i] = coreIterSource{subs[i]}
	}
	return &Iterator{subs: subs, it: iterx.NewMerging(srcs...), err: firstErr}
}

// SeekToFirst positions at the globally first live key.
func (it *Iterator) SeekToFirst() { it.it.SeekToFirst() }

// Seek positions at the first live key ≥ key.
func (it *Iterator) Seek(key []byte) { it.it.Seek(key) }

// Next advances to the next live key in global order.
func (it *Iterator) Next() { it.it.Next() }

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// Key returns the current key (valid until Next/Close).
func (it *Iterator) Key() []byte { return it.it.Key() }

// Value returns the current value (valid until Next/Close).
func (it *Iterator) Value() []byte { return it.it.Value() }

// Err returns the iterator's sticky error (ErrClosed when any shard was
// already closed at creation).
func (it *Iterator) Err() error { return it.err }

// Close releases every shard's version pin.
func (it *Iterator) Close() {
	for _, sub := range it.subs {
		sub.Close()
	}
}
