package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"miodb/internal/core"
)

// Sharded checkpoint images concatenate one core checkpoint image per
// shard into a single file, so a partitioned store checkpoints and
// restores as one artifact. The shard count is recorded in the header
// and validated on restore — an image written with N shards can only be
// reopened with N shards, because routing is a pure function of (key,
// shard count) and a different count would strand keys on shards their
// hash no longer selects.
//
// File format (little-endian):
//
//	magic(8) = "MioDBshd" | shardCount(4)
//	per shard: imageLen(8) | <core checkpoint image bytes>
const shardImageMagic = 0x4d696f4442736864 // "MioDBshd"

// Checkpoint writes a sharded checkpoint image to path (atomically, via
// a temporary file). Shards are quiesced and serialized one after
// another; each per-shard image is internally consistent, but writes
// issued concurrently with Checkpoint may land in a later shard's image
// and not an earlier one's. Callers wanting one cross-shard-consistent
// cut must pause writes for the duration.
func (r *Router) Checkpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = r.writeImage(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (r *Router) writeImage(f *os.File) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], shardImageMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.shards)))
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	for i, db := range r.shards {
		// Reserve the length word, stream the shard's image, then patch
		// the length in place — images are written once and never
		// buffered whole in memory.
		lenOff, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		var lw [8]byte
		if _, err := f.Write(lw[:]); err != nil {
			return err
		}
		if err := db.CheckpointTo(f); err != nil {
			return fmt.Errorf("miodb/shard: checkpoint shard %d: %w", i, err)
		}
		end, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(lw[:], uint64(end-lenOff-8))
		if _, err := f.WriteAt(lw[:], lenOff); err != nil {
			return err
		}
	}
	return nil
}

// ImageInfo reports whether path holds a sharded checkpoint image and,
// if so, its recorded shard count. A readable file with a different
// magic (e.g. a single-engine core image) returns sharded=false with no
// error, so callers can sniff the format before choosing a restore path.
func ImageInfo(path string) (shards int, sharded bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false, nil // too short to be a sharded image
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != shardImageMagic {
		return 0, false, nil
	}
	return int(binary.LittleEndian.Uint32(hdr[8:12])), true, nil
}

// OpenImage restores a router from a sharded checkpoint image. shards
// must match the count recorded in the image, or be 0 to adopt the
// recorded count. Every shard recovers through the standard
// crash-recovery path with the given per-shard options.
func OpenImage(path string, shards int, opts core.Options) (*Router, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("miodb/shard: image header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != shardImageMagic {
		return nil, fmt.Errorf("miodb/shard: not a sharded checkpoint image (single-engine image? open it with Shards ≤ 1)")
	}
	count := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if count < 1 || count > 1<<16 {
		return nil, fmt.Errorf("miodb/shard: absurd shard count %d in image", count)
	}
	if shards != 0 && shards != count {
		return nil, fmt.Errorf("miodb/shard: shard-count mismatch: image has %d shards, options request %d", count, shards)
	}
	r := &Router{shards: make([]*core.DB, 0, count)}
	for i := 0; i < count; i++ {
		var lw [8]byte
		if _, err := io.ReadFull(f, lw[:]); err != nil {
			r.Close()
			return nil, fmt.Errorf("miodb/shard: image shard %d length: %w", i, err)
		}
		n := int64(binary.LittleEndian.Uint64(lw[:]))
		lim := io.LimitReader(f, n)
		img, err := core.ReadImage(lim)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("miodb/shard: image shard %d: %w", i, err)
		}
		// The core image reader stops at its own region table; drain any
		// remainder of this shard's extent so the next length word is
		// read from the right offset.
		if _, err := io.Copy(io.Discard, lim); err != nil {
			r.Close()
			return nil, err
		}
		db, err := core.Recover(img, opts)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("miodb/shard: recover shard %d: %w", i, err)
		}
		r.shards = append(r.shards, db)
	}
	return r, nil
}
