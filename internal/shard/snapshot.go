package shard

import (
	"sync"

	"miodb/internal/core"
	"miodb/internal/iterx"
	"miodb/internal/kvstore"
)

// Snapshot is a consistent cross-shard cut: one core.Snapshot per shard,
// captured by core.SnapshotAll with every shard's commit lock held in
// shard-index order before any bound is read. A multi-shard batch is
// therefore either entirely inside the cut or entirely outside — the
// guarantee a plain Router.Scan (per-shard pins taken one after another)
// cannot give. Reads route exactly like the live Router's; the cut stays
// valid no matter how many writes, flushes, or compactions follow. Close
// it (and every iterator derived from it) to let reclamation resume — a
// leaked snapshot blocks every shard's Close.
type Snapshot struct {
	r     *Router
	snaps []*core.Snapshot // indexed by shard
}

// Snapshot captures a consistent cut across all shards. O(shards): no
// data is copied, no flush is forced. Returns
// core.ErrSnapshotUnsupported on SSD-mode stores. Capture excludes
// multi-shard batches mid-commit (cutMu), then takes every shard's
// commit lock before reading any bound, so the cut never tears a batch.
func (r *Router) Snapshot() (*Snapshot, error) {
	r.cutMu.Lock()
	defer r.cutMu.Unlock()
	snaps, err := core.SnapshotAll(r.shards)
	if err != nil {
		return nil, err
	}
	return &Snapshot{r: r, snaps: snaps}, nil
}

// SnapshotView adapts the cross-shard Snapshot to the kvstore capability
// interface the network server probes for.
func (r *Router) SnapshotView() (kvstore.SnapshotView, error) {
	s, err := r.Snapshot()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Get returns the value key had at capture, from the key's shard.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	return s.snaps[shardOf(key, len(s.snaps))].Get(key)
}

// GetMulti reads several keys from the cut, grouped by shard and fetched
// shard-concurrently. Results are positional: values[i] / errs[i] answer
// keys[i]. All answers come from the same capture, so they are mutually
// consistent across shards.
func (s *Snapshot) GetMulti(getKeys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(getKeys))
	errs := make([]error, len(getKeys))
	if len(getKeys) == 0 {
		return values, errs
	}
	perKeys := make([][][]byte, len(s.snaps))
	perIdx := make([][]int, len(s.snaps))
	for i, key := range getKeys {
		sh := shardOf(key, len(s.snaps))
		perKeys[sh] = append(perKeys[sh], key)
		perIdx[sh] = append(perIdx[sh], i)
	}
	var wg sync.WaitGroup
	for sh, group := range perKeys {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, group [][]byte) {
			defer wg.Done()
			vs, es := s.snaps[sh].GetMulti(group)
			for j, i := range perIdx[sh] {
				values[i], errs[i] = vs[j], es[j]
			}
		}(sh, group)
	}
	wg.Wait()
	return values, errs
}

// NewIterator walks the cut's live keys across every shard in one
// globally ordered stream, through the shared k-way merge heap. The
// per-shard sub-iterators each hold a reference on their core snapshot,
// so the iterator stays valid even if the Snapshot is closed first; it
// must itself be Closed before the stores shut down.
func (s *Snapshot) NewIterator() *Iterator {
	subs := make([]*core.Iterator, len(s.snaps))
	srcs := make([]iterx.Iterator, len(s.snaps))
	var firstErr error
	for i, snap := range s.snaps {
		subs[i] = snap.NewIterator()
		if err := subs[i].Err(); err != nil && firstErr == nil {
			firstErr = err
		}
		srcs[i] = coreIterSource{subs[i]}
	}
	return &Iterator{subs: subs, it: iterx.NewMerging(srcs...), err: firstErr}
}

// Scan calls fn for up to limit keys ≥ start as they existed at capture,
// in global order across all shards; fn returning false stops early.
// limit ≤ 0 scans to the end.
func (s *Snapshot) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	it := s.NewIterator()
	defer it.Close()
	if it.Err() != nil {
		return it.Err()
	}
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

// Close releases every shard's snapshot. Iterators already derived stay
// valid until their own Close. Idempotent.
func (s *Snapshot) Close() error {
	var first error
	for _, snap := range s.snaps {
		if err := snap.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
