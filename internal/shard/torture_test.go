package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"miodb/internal/core"
	"miodb/internal/nvm"
)

// tortureOp is one operation of a cross-shard batch, kept alongside the
// model so a batch cut off by an injected crash can be verified per
// shard after recovery.
type tortureOp struct {
	key, val string
	del      bool
}

// TestShardTortureCrossShardBatches is the sharded analogue of the core
// crash-torture harness, aimed at the router's weakest contractual
// point: a batch split across shards when one shard's device dies
// mid-commit. Every cycle writes randomized cross-shard batches with a
// crash plan armed on one victim shard, simulates a simultaneous power
// failure, recovers all shards, and verifies:
//
//   - every operation of every acknowledged batch is present on every
//     shard (no acked write lost anywhere);
//   - the one unacknowledged batch resolved per shard to all-or-nothing:
//     each shard's slice is either fully visible or fully absent, never
//     a partial slice (it was one WAL append);
//   - slices of the unacked batch that landed on healthy (non-victim)
//     shards are always present — only the victim's slice may vanish;
//   - each shard's structural invariants and region accounting hold.
//
// Deterministic per seed.
func TestShardTortureCrossShardBatches(t *testing.T) {
	const (
		shards   = 3
		keyspace = 400
		seed     = 1
	)
	cycles, batches := 20, 80
	if testing.Short() {
		cycles, batches = 6, 50
	}
	opts := testOpts()
	rng := rand.New(rand.NewSource(seed))
	r := mustRouter(t, shards, opts)
	defer func() {
		if r != nil {
			r.Close()
		}
	}()

	model := map[string]string{} // acked live values
	ever := map[string]bool{}    // every key ever acked
	var acked, uncertain, resurrected int

	for cycle := 0; cycle < cycles; cycle++ {
		// Arm a crash plan on one victim shard for most cycles; the rest
		// crash clean (background work dropped mid-flight on all shards).
		victim := rng.Intn(shards)
		_, dev := r.Shard(victim).Devices()
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			dev.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).
				CrashAfterBytes(1 + rng.Int63n(64<<10)).TornWrites())
		case 4, 5:
			dev.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).
				CrashAfterWrites(1 + rng.Intn(300)).TornWrites())
		default:
			victim = -1
		}

		// Write phase: cross-shard batches of distinct keys until the
		// armed crash cuts an ack off (at most one pending batch).
		var pending []tortureOp
		for bi := 0; bi < batches; bi++ {
			b := &core.Batch{}
			var ops []tortureOp
			used := map[string]bool{}
			for len(ops) < 2+rng.Intn(7) {
				k := fmt.Sprintf("k%04d", rng.Intn(keyspace))
				if used[k] {
					continue
				}
				used[k] = true
				if rng.Intn(8) == 0 {
					b.Delete([]byte(k))
					ops = append(ops, tortureOp{key: k, del: true})
				} else {
					v := fmt.Sprintf("v-c%d-b%d-%s", cycle, bi, k)
					b.Put([]byte(k), []byte(v))
					ops = append(ops, tortureOp{key: k, val: v})
				}
			}
			if err := r.Write(b); err != nil {
				if victim < 0 {
					t.Fatalf("cycle %d batch %d: write failed with no fault armed: %v", cycle, bi, err)
				}
				pending = ops
				uncertain++
				break
			}
			for _, o := range ops {
				ever[o.key] = true
				if o.del {
					delete(model, o.key)
				} else {
					model[o.key] = o.val
				}
			}
			acked++
		}

		// Simultaneous power failure on every shard, then recovery.
		imgs := r.CrashForTest()
		r = nil
		for _, img := range imgs {
			img.NVM.SetFaultPlan(nil)
		}
		re, err := RecoverShards(imgs, opts)
		if err != nil {
			t.Fatalf("cycle %d: recover: %v", cycle, err)
		}
		r = re
		r.WaitIdle()
		if err := r.Err(); err != nil {
			t.Fatalf("cycle %d: recovered router degraded: %v", cycle, err)
		}

		// Acked state: every key outside the pending batch must read
		// back exactly per the model, through the router's routing.
		inPending := map[string]bool{}
		for _, o := range pending {
			inPending[o.key] = true
		}
		for k := range ever {
			if inPending[k] {
				continue
			}
			got, err := r.Get([]byte(k))
			want, live := model[k]
			switch {
			case live && (err != nil || string(got) != want):
				t.Fatalf("cycle %d: acked key %q = %q, %v (want %q)", cycle, k, got, err, want)
			case !live && err != core.ErrNotFound:
				t.Fatalf("cycle %d: deleted key %q resurrected: %q, %v", cycle, k, got, err)
			}
		}

		// Pending batch: group its ops by shard and require each slice
		// to have resolved all-or-nothing. A slice on a healthy shard
		// was acknowledged by that shard before the router returned the
		// victim's error, so it must always be the "all" case.
		if pending != nil {
			perShard := map[int][]tortureOp{}
			for _, o := range pending {
				si := r.ShardFor([]byte(o.key))
				perShard[si] = append(perShard[si], o)
			}
			for si, slice := range perShard {
				allNew, allOld := true, true
				for _, o := range slice {
					got, err := r.Get([]byte(o.key))
					if err != nil && err != core.ErrNotFound {
						t.Fatalf("cycle %d shard %d: get %q: %v", cycle, si, o.key, err)
					}
					newOK := false
					if o.del {
						newOK = err == core.ErrNotFound
					} else {
						newOK = err == nil && string(got) == o.val
					}
					want, live := model[o.key]
					oldOK := false
					if live {
						oldOK = err == nil && string(got) == want
					} else {
						oldOK = err == core.ErrNotFound
					}
					allNew = allNew && newOK
					allOld = allOld && oldOK
				}
				if !allNew && !allOld {
					t.Fatalf("cycle %d: shard %d applied a partial batch slice: %+v", cycle, si, slice)
				}
				if si != victim && !allNew {
					t.Fatalf("cycle %d: healthy shard %d lost its acked slice of the failed batch: %+v", cycle, si, slice)
				}
				if allNew && !allOld {
					resurrected++
					for _, o := range slice {
						ever[o.key] = true
						if o.del {
							delete(model, o.key)
						} else {
							model[o.key] = o.val
						}
					}
				}
			}
		}

		// Structural invariants per shard, every cycle.
		for i := 0; i < r.NumShards(); i++ {
			if err := r.Shard(i).CheckConsistency(); err != nil {
				t.Fatalf("cycle %d shard %d: %v", cycle, i, err)
			}
			if err := r.Shard(i).CheckRegionAccounting(); err != nil {
				t.Fatalf("cycle %d shard %d: %v", cycle, i, err)
			}
		}
	}
	if acked == 0 {
		t.Fatal("torture run acked no batches")
	}
	t.Logf("shard torture: %d cycles, %d acked / %d uncertain batches, %d slices resurrected, %d keys tracked",
		cycles, acked, uncertain, resurrected, len(ever))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r = nil
}

// TestShardTortureSeeds runs shorter bursts across several seeds so the
// injected crashes land in different phases of different shards.
func TestShardTortureSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestShardTortureCrossShardBatches")
	}
	for seed := int64(2); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := testOpts()
			rng := rand.New(rand.NewSource(seed))
			r := mustRouter(t, 2, opts)
			model := map[string]string{}
			for cycle := 0; cycle < 6; cycle++ {
				_, dev := r.Shard(rng.Intn(2)).Devices()
				dev.SetFaultPlan(nvm.NewFaultPlan(rng.Int63()).
					CrashAfterBytes(1 + rng.Int63n(32<<10)).TornWrites())
				var pending tortureOp
				for i := 0; i < 200; i++ {
					k := fmt.Sprintf("k%03d", rng.Intn(200))
					v := fmt.Sprintf("v%d-%d", cycle, i)
					if err := r.Put([]byte(k), []byte(v)); err != nil {
						// Unacked put: after recovery either the old or
						// the new value is legitimate.
						pending = tortureOp{key: k, val: v}
						break
					}
					model[k] = v
				}
				imgs := r.CrashForTest()
				for _, img := range imgs {
					img.NVM.SetFaultPlan(nil)
				}
				var err error
				r, err = RecoverShards(imgs, opts)
				if err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				r.WaitIdle()
				for k, want := range model {
					got, err := r.Get([]byte(k))
					if k == pending.key && err == nil && string(got) == pending.val {
						model[k] = pending.val // the unacked put beat the crash
						continue
					}
					if err != nil || string(got) != want {
						t.Fatalf("cycle %d: acked %q = %q, %v (want %q)", cycle, k, got, err, want)
					}
				}
				if pending.key != "" {
					if _, ok := model[pending.key]; !ok {
						if got, err := r.Get([]byte(pending.key)); err == nil && string(got) == pending.val {
							model[pending.key] = pending.val
						}
					}
				}
			}
			r.Close()
		})
	}
}
