// Package client is the pipelined network client for the miodb server's
// protocol v2 (internal/server): many requests in flight per connection,
// responses matched to requests by tag, with a connection pool on top.
//
// A Conn multiplexes any number of goroutines over one TCP connection:
// each call claims a window slot and a fresh tag, hands its encoded
// frame to the connection's writer (which coalesces everything ready
// into single socket writes), and parks until the reader delivers the
// response bearing its tag — so N callers see N concurrent round trips
// over one socket instead of N sockets or N serialized round trips.
package client

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"

	"miodb/internal/kvstore"
	"miodb/internal/server"
)

// Options tunes a connection (or every connection of a pool).
type Options struct {
	// Window caps in-flight requests per connection; a caller beyond
	// the window blocks until a response frees a slot. Default 64.
	Window int
	// Conns is the pool size for DialPool. Default 1.
	Conns int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	return o
}

// tresp is a matched response.
type tresp struct {
	status  byte
	payload []byte
}

// Conn is one pipelined connection. All methods are safe for concurrent
// use by any number of goroutines.
type Conn struct {
	nc     net.Conn
	window chan struct{}
	reqCh  chan []byte

	mu      sync.Mutex
	pending map[uint64]chan tresp
	nextTag uint64
	err     error // terminal transport error, set once under mu

	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup
}

// Dial connects and negotiates protocol v2.
func Dial(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := nc.Write(server.MagicV2[:]); err != nil {
		nc.Close()
		return nil, err
	}
	c := &Conn{
		nc:      nc,
		window:  make(chan struct{}, opts.Window),
		reqCh:   make(chan []byte, opts.Window),
		pending: make(map[uint64]chan tresp),
		done:    make(chan struct{}),
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// fail latches the first transport error and wakes every waiter.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.nc.Close()
}

// Err returns the terminal transport error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; in-flight calls return an error.
func (c *Conn) Close() error {
	c.fail(fmt.Errorf("client: closed"))
	c.wg.Wait()
	return nil
}

// writeLoop coalesces queued request frames into single socket writes —
// with many callers in flight, one syscall carries many requests.
func (c *Conn) writeLoop() {
	defer c.wg.Done()
	buf := make([]byte, 0, 16<<10)
	for {
		var frame []byte
		select {
		case frame = <-c.reqCh:
		case <-c.done:
			return
		}
		buf = append(buf[:0], frame...)
	coalesce:
		for len(buf) < 256<<10 {
			select {
			case f := <-c.reqCh:
				buf = append(buf, f...)
			default:
				break coalesce
			}
		}
		if _, err := c.nc.Write(buf); err != nil {
			c.fail(err)
			return
		}
	}
}

// readLoop matches tagged responses (possibly out of request order) to
// their parked callers.
func (c *Conn) readLoop() {
	defer c.wg.Done()
	for {
		tag, status, payload, err := server.ReadTaggedResponse(c.nc)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("client: response for unknown tag %d", tag))
			return
		}
		ch <- tresp{status: status, payload: payload}
	}
}

// do runs one pipelined round trip.
func (c *Conn) do(op byte, key, val []byte) (byte, []byte, error) {
	select {
	case c.window <- struct{}{}:
	case <-c.done:
		return 0, nil, c.Err()
	}
	defer func() { <-c.window }()

	ch := make(chan tresp, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	c.nextTag++
	tag := c.nextTag
	c.pending[tag] = ch
	c.mu.Unlock()

	frame := server.AppendTaggedRequest(nil, tag, op, key, val)
	select {
	case c.reqCh <- frame:
	case <-c.done:
		c.abandon(tag)
		return 0, nil, c.Err()
	}
	select {
	case r := <-ch:
		return r.status, r.payload, nil
	case <-c.done:
		// The reader may have delivered concurrently with teardown.
		select {
		case r := <-ch:
			return r.status, r.payload, nil
		default:
		}
		c.abandon(tag)
		return 0, nil, c.Err()
	}
}

// abandon forgets a tag whose caller gave up.
func (c *Conn) abandon(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

// serverError maps a StatusError payload back onto the repository's
// sentinel errors, so errors.Is(err, kvstore.ErrDegraded) (and friends)
// holds on the client side exactly as it does in-process. The wire
// carries only the error text, so the match is on the sentinel's
// message — those strings are pinned in internal/kvstore precisely to
// keep this round trip stable. Unrecognized payloads stay plain
// "server: ..." errors.
func serverError(payload []byte) error {
	text := string(payload)
	for _, sentinel := range []error{
		kvstore.ErrDegraded,
		kvstore.ErrSnapshotUnsupported,
		kvstore.ErrValueLogCorrupt,
		kvstore.ErrClosed,
	} {
		if strings.Contains(text, sentinel.Error()) {
			return &wireError{text: "server: " + text, sentinel: sentinel}
		}
	}
	return fmt.Errorf("server: %s", text)
}

// wireError carries the server's full error text (which may include
// context beyond the sentinel, e.g. the degraded store's latched cause)
// while unwrapping to the matched sentinel.
type wireError struct {
	text     string
	sentinel error
}

func (e *wireError) Error() string { return e.text }
func (e *wireError) Unwrap() error { return e.sentinel }

// Get fetches the newest value for key; kvstore.ErrNotFound if absent.
func (c *Conn) Get(key []byte) ([]byte, error) {
	status, payload, err := c.do(server.OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case server.StatusOK:
		return payload, nil
	case server.StatusNotFound:
		return nil, kvstore.ErrNotFound
	default:
		return nil, serverError(payload)
	}
}

// Put stores a key-value pair.
func (c *Conn) Put(key, value []byte) error {
	return c.expectOK(c.do(server.OpPut, key, value))
}

// Delete removes a key.
func (c *Conn) Delete(key []byte) error {
	return c.expectOK(c.do(server.OpDelete, key, nil))
}

// Batch applies a batch of writes atomically in one round trip.
func (c *Conn) Batch(ops []kvstore.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	return c.expectOK(c.do(server.OpMPut, nil, server.EncodeBatchPayload(ops)))
}

// Scan returns up to limit ordered key-value pairs starting at start.
func (c *Conn) Scan(start []byte, limit int) ([][2][]byte, error) {
	var lim [4]byte
	binary.LittleEndian.PutUint32(lim[:], uint32(limit))
	status, payload, err := c.do(server.OpScan, start, lim[:])
	if err != nil {
		return nil, err
	}
	if status != server.StatusOK {
		return nil, serverError(payload)
	}
	return server.DecodeScanPayload(payload)
}

// GetMulti reads several keys in one round trip. Results are positional:
// values[i] and errs[i] answer keys[i], with kvstore.ErrNotFound per
// missing key. A transport or server failure is reported in every
// errs[i]. On a snapshot-capable store the answers come from one pinned
// version per shard (see Snapshot for a single cross-shard cut).
func (c *Conn) GetMulti(keys [][]byte) ([][]byte, []error) {
	return c.mget(0, keys)
}

// mget runs one MGET round trip against the live store (snapID 0) or a
// server-side snapshot.
func (c *Conn) mget(snapID uint64, keys [][]byte) ([][]byte, []error) {
	values := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return values, errs
	}
	fail := func(err error) ([][]byte, []error) {
		for i := range errs {
			errs[i] = err
		}
		return values, errs
	}
	status, payload, err := c.do(server.OpMGet, nil, server.EncodeMGetRequest(snapID, keys))
	if err != nil {
		return fail(err)
	}
	if status != server.StatusOK {
		return fail(serverError(payload))
	}
	vs, es, err := server.DecodeMGetResponse(payload)
	if err != nil {
		return fail(err)
	}
	if len(vs) != len(keys) {
		return fail(fmt.Errorf("client: mget answered %d of %d keys", len(vs), len(keys)))
	}
	return vs, es
}

// DeleteRange deletes every key k with start ≤ k < end in one round
// trip (empty end = unbounded). The server refuses if its store has no
// range-delete support.
func (c *Conn) DeleteRange(start, end []byte) error {
	return c.expectOK(c.do(server.OpDelRange, start, end))
}

// Snap is a server-side consistent snapshot, bound to the connection
// that captured it. Reads answer as of capture time no matter how many
// writes land afterwards. Close it when done — the server also releases
// every snapshot of a connection when the connection drops, so a
// crashed client cannot block store reclamation.
type Snap struct {
	c  *Conn
	id uint64
}

// Snapshot captures a consistent snapshot on the server and returns a
// handle for reading from it. On a sharded store the cut is consistent
// across shards.
func (c *Conn) Snapshot() (*Snap, error) {
	status, payload, err := c.do(server.OpSnap, nil, nil)
	if err != nil {
		return nil, err
	}
	if status != server.StatusOK {
		return nil, serverError(payload)
	}
	if len(payload) != 8 {
		return nil, fmt.Errorf("client: malformed snapshot id")
	}
	return &Snap{c: c, id: binary.LittleEndian.Uint64(payload)}, nil
}

// Get returns the value key had when the snapshot was captured.
func (s *Snap) Get(key []byte) ([]byte, error) {
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], s.id)
	status, payload, err := s.c.do(server.OpSnapGet, key, id[:])
	if err != nil {
		return nil, err
	}
	switch status {
	case server.StatusOK:
		return payload, nil
	case server.StatusNotFound:
		return nil, kvstore.ErrNotFound
	default:
		return nil, serverError(payload)
	}
}

// GetMulti reads several keys from the snapshot's cut in one round
// trip; all answers are mutually consistent.
func (s *Snap) GetMulti(keys [][]byte) ([][]byte, []error) {
	return s.c.mget(s.id, keys)
}

// Close releases the snapshot on the server, letting reclamation
// resume there.
func (s *Snap) Close() error {
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], s.id)
	return s.c.expectOK(s.c.do(server.OpSnapRel, nil, id[:]))
}

// Stats returns the server's cost-accounting line (store counters plus
// per-op service-latency percentiles).
func (c *Conn) Stats() (string, error) {
	status, payload, err := c.do(server.OpStats, nil, nil)
	if err != nil {
		return "", err
	}
	if status != server.StatusOK {
		return "", serverError(payload)
	}
	return string(payload), nil
}

func (c *Conn) expectOK(status byte, payload []byte, err error) error {
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return serverError(payload)
	}
	return nil
}
