package client

import (
	"sync/atomic"

	"miodb/internal/kvstore"
)

// Pool spreads callers over several pipelined connections round-robin.
// One connection already multiplexes many goroutines; a pool adds
// sockets when a single stream (or the server's per-connection window)
// becomes the bottleneck.
type Pool struct {
	conns []*Conn
	next  atomic.Uint64
}

// DialPool opens opts.Conns pipelined connections to addr.
func DialPool(addr string, opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	p := &Pool{conns: make([]*Conn, 0, opts.Conns)}
	for i := 0; i < opts.Conns; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// conn picks the next connection round-robin.
func (p *Pool) conn() *Conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// Get fetches the newest value for key; kvstore.ErrNotFound if absent.
func (p *Pool) Get(key []byte) ([]byte, error) { return p.conn().Get(key) }

// Put stores a key-value pair.
func (p *Pool) Put(key, value []byte) error { return p.conn().Put(key, value) }

// Delete removes a key.
func (p *Pool) Delete(key []byte) error { return p.conn().Delete(key) }

// Batch applies a batch of writes atomically in one round trip.
func (p *Pool) Batch(ops []kvstore.BatchOp) error { return p.conn().Batch(ops) }

// GetMulti reads several keys in one round trip over one pooled
// connection; results are positional.
func (p *Pool) GetMulti(keys [][]byte) ([][]byte, []error) {
	return p.conn().GetMulti(keys)
}

// DeleteRange deletes every key k with start ≤ k < end (empty end =
// unbounded) in one round trip.
func (p *Pool) DeleteRange(start, end []byte) error {
	return p.conn().DeleteRange(start, end)
}

// Snapshot captures a server-side snapshot. The handle is bound to the
// pooled connection that captured it; reads through it stay on that
// connection.
func (p *Pool) Snapshot() (*Snap, error) { return p.conn().Snapshot() }

// Scan returns up to limit ordered key-value pairs starting at start.
func (p *Pool) Scan(start []byte, limit int) ([][2][]byte, error) {
	return p.conn().Scan(start, limit)
}

// Stats returns the server's cost-accounting line.
func (p *Pool) Stats() (string, error) { return p.conn().Stats() }

// Close closes every pooled connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
