package client

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/server"
)

type miodbStore struct{ *core.DB }

func (s miodbStore) Flush() error { return s.DB.FlushAll() }

func startServer(t *testing.T, opts server.Options) string {
	t.Helper()
	db, err := core.Open(core.Options{MemTableSize: 64 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithOptions(miodbStore{db}, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr.String()
}

func TestConnRoundTrip(t *testing.T) {
	addr := startServer(t, server.Options{})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("absent")); err != kvstore.ErrNotFound {
		t.Fatalf("Get(absent) = %v", err)
	}
	if err := c.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("hello")); err != kvstore.ErrNotFound {
		t.Fatalf("Get after Delete = %v", err)
	}
	if err := c.Batch([]kvstore.BatchOp{
		{Key: []byte("b1"), Value: []byte("1")},
		{Key: []byte("b2"), Value: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Scan([]byte("b"), 10)
	if err != nil || len(pairs) != 2 {
		t.Fatalf("Scan = %d pairs, %v", len(pairs), err)
	}
	line, err := c.Stats()
	if err != nil || !strings.Contains(line, "puts=") {
		t.Fatalf("Stats = %q, %v", line, err)
	}
}

// TestPipelinedOracle drives many goroutines over ONE connection, each
// writing then reading back its own unique keys concurrently. Every read
// must return the value its own goroutine wrote — the tag matcher must
// never cross responses between callers even though the wire carries
// them interleaved and possibly reordered.
func TestPipelinedOracle(t *testing.T) {
	addr := startServer(t, server.Options{})
	c, err := Dial(addr, Options{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 32
	const perWorker = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				want := []byte(fmt.Sprintf("value-%02d-%04d", w, i))
				if err := c.Put(k, want); err != nil {
					errCh <- fmt.Errorf("worker %d put: %w", w, err)
					return
				}
				got, err := c.Get(k)
				if err != nil {
					errCh <- fmt.Errorf("worker %d get: %w", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("worker %d: got %q, want %q (responses crossed)", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestWindowLimitsInflight dials with a tiny window and checks the
// client never exceeds it: a server-side window twice the client's would
// mask violations, so we count in-flight ops at the client boundary.
func TestWindowLimitsInflight(t *testing.T) {
	addr := startServer(t, server.Options{})
	const window = 4
	c, err := Dial(addr, Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var inflight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// The window token is taken inside do(); approximate the
				// boundary by sampling around the call.
				n := inflight.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				c.Put([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v"))
				inflight.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	// The sampled concurrency can exceed the window (callers blocked on
	// the window still count), so assert only that the client made
	// progress with far more callers than slots — the stronger invariant
	// (per-connection server admission) is covered by the server tests.
	if maxSeen.Load() < window {
		t.Errorf("max concurrent callers %d, expected at least the window %d", maxSeen.Load(), window)
	}
	if _, err := c.Get([]byte("w0-0")); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRoundTripAndFanout(t *testing.T) {
	addr := startServer(t, server.Options{})
	p, err := DialPool(addr, Options{Conns: 4, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("pool size %d", p.Size())
	}

	const n = 200
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				k := []byte(fmt.Sprintf("p%d-%d", w, i))
				if err := p.Put(k, k); err != nil {
					errCh <- err
					return
				}
				if v, err := p.Get(k); err != nil || !bytes.Equal(v, k) {
					errCh <- fmt.Errorf("pool get %s: %q %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestClosePropagates checks callers in flight when the connection dies
// get errors, not hangs.
func TestClosePropagates(t *testing.T) {
	addr := startServer(t, server.Options{})
	c, err := Dial(addr, Options{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Put([]byte("k2"), []byte("v")); err == nil {
		t.Error("Put on closed conn succeeded")
	}
	if _, err := c.Get([]byte("k")); err == nil {
		t.Error("Get on closed conn succeeded")
	}
}

// TestSentinelRoundTrip pins the error-mapping contract: a sentinel
// error raised inside the store survives the wire as the same sentinel
// on the client — errors.Is holds across the network boundary exactly
// as it does in-process. The wire carries only text, so this works only
// as long as the sentinel messages in internal/kvstore stay stable;
// this test is the tripwire for anyone rewording them.
func TestSentinelRoundTrip(t *testing.T) {
	// Unit: payloads carrying extra context still map, and the full text
	// is preserved for humans.
	err := serverError([]byte(kvstore.ErrDegraded.Error() + ": simulated device fault"))
	if !errors.Is(err, kvstore.ErrDegraded) {
		t.Fatalf("degraded payload did not map: %v", err)
	}
	if !strings.Contains(err.Error(), "simulated device fault") {
		t.Fatalf("mapped error lost the cause: %v", err)
	}
	if mapped := serverError([]byte(kvstore.ErrValueLogCorrupt.Error())); !errors.Is(mapped, kvstore.ErrValueLogCorrupt) {
		t.Fatalf("vlog-corrupt payload did not map: %v", mapped)
	}
	if plain := serverError([]byte("something else entirely")); errors.Is(plain, kvstore.ErrDegraded) ||
		errors.Is(plain, kvstore.ErrClosed) {
		t.Fatalf("unrecognized payload mapped to a sentinel: %v", plain)
	}

	// End to end: an SSD-mode store refuses snapshots server-side; the
	// client must surface the same sentinel the in-process API returns.
	db, err2 := core.Open(core.Options{SSD: &core.SSDOptions{}, MemTableSize: 8 << 10, Levels: 3})
	if err2 != nil {
		t.Fatal(err2)
	}
	srv := server.NewWithOptions(miodbStore{db}, server.Options{})
	addr, err2 := srv.Listen("127.0.0.1:0")
	if err2 != nil {
		t.Fatal(err2)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err2 := Dial(addr.String(), Options{})
	if err2 != nil {
		t.Fatal(err2)
	}
	defer c.Close()
	if _, snapErr := c.Snapshot(); !errors.Is(snapErr, kvstore.ErrSnapshotUnsupported) {
		t.Fatalf("Snapshot on SSD store over the wire = %v, want ErrSnapshotUnsupported", snapErr)
	}
}
