package wal

import (
	"testing"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

// FuzzReplay feeds arbitrary bytes to the WAL replay cursor: it must
// never panic, and must never yield a record that was not appended by a
// well-formed writer (the CRC gate). Run with `go test -fuzz=FuzzReplay`;
// the seed corpus runs as a normal test.
func FuzzReplay(f *testing.F) {
	// Seeds: empty, garbage, and a valid log's raw bytes.
	f.Add([]byte{})
	f.Add([]byte("not a log at all, definitely"))
	{
		dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
		l := New(dev, 1<<14)
		l.Append([]byte("key"), []byte("value"), 7, keys.KindSet)
		l.Append([]byte("key2"), nil, 8, keys.KindDelete)
		raw := l.Region().Read(l.Region().Base(), int(l.Region().Size()))
		f.Add(append([]byte(nil), raw...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
		region := dev.NewRegion(1 << 14)
		if len(data) > 0 {
			// Copy the fuzz input into the arena in chunk-safe pieces.
			for off := 0; off < len(data); {
				n := len(data) - off
				if n > 1<<14 {
					n = 1 << 14
				}
				addr, err := region.Alloc(n)
				if err != nil {
					t.Skip()
				}
				region.Write(addr, data[off:off+n])
				off += n
			}
		}
		l := Attach(dev, region)
		count := 0
		_ = l.Replay(func(key, value []byte, seq uint64, kind keys.Kind) error {
			count++
			if len(key) == 0 && kind == keys.KindSet && seq == 0 {
				// Implausible but not invalid; just exercise access.
				_ = value
			}
			return nil
		})
		_ = count
	})
}
