package wal

import (
	"testing"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

// FuzzReplay feeds arbitrary bytes to the WAL replay cursor: it must
// never panic, and must never yield a record that was not appended by a
// well-formed writer (the CRC gate). Run with `go test -fuzz=FuzzReplay`;
// the seed corpus runs as a normal test.
func FuzzReplay(f *testing.F) {
	// Seeds: empty, garbage, and a valid log's raw bytes.
	f.Add([]byte{})
	f.Add([]byte("not a log at all, definitely"))
	{
		dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
		l := New(dev, 1<<14)
		l.Append([]byte("key"), []byte("value"), 7, keys.KindSet)
		l.Append([]byte("key2"), nil, 8, keys.KindDelete)
		raw := l.Region().Read(l.Region().Base(), int(l.Region().Size()))
		f.Add(append([]byte(nil), raw...))
	}
	{
		// A batched log with an injected torn tail: replay must stop at
		// the damage and report exactly the intact prefix.
		dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
		l := New(dev, 1<<14)
		l.AppendBatch([]Record{
			{Key: []byte("a"), Value: []byte("1"), Seq: 1, Kind: keys.KindSet},
			{Key: []byte("b"), Value: []byte("2"), Seq: 2, Kind: keys.KindSet},
		})
		dev.SetFaultPlan(nvm.NewFaultPlan(5).CrashAfterBytes(9).TornWrites())
		l.Append([]byte("torn-victim"), []byte("partial"), 3, keys.KindSet)
		raw := l.Region().Read(l.Region().Base(), int(l.Region().Size()))
		f.Add(append([]byte(nil), raw...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
		region := dev.NewRegion(1 << 14)
		if len(data) > 0 {
			// Copy the fuzz input into the arena in chunk-safe pieces.
			for off := 0; off < len(data); {
				n := len(data) - off
				if n > 1<<14 {
					n = 1 << 14
				}
				addr, err := region.Alloc(n)
				if err != nil {
					t.Skip()
				}
				region.Write(addr, data[off:off+n])
				off += n
			}
		}
		l := Attach(dev, region)
		count := int64(0)
		bytes := int64(0)
		st, err := l.Replay(func(key, value []byte, seq uint64, kind keys.Kind) error {
			count++
			bytes += int64(headerSize + 8 + 1 + 4 + len(key) + len(value))
			if len(key) == 0 && kind == keys.KindSet && seq == 0 {
				// Implausible but not invalid; just exercise access.
				_ = value
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay over fuzz bytes returned error: %v", err)
		}
		// Stats must agree with what the callback observed, and replay
		// must be read-only: a second pass sees the identical prefix.
		if st.Records != count || st.Bytes != bytes {
			t.Fatalf("stats %+v disagree with callback (count=%d bytes=%d)", st, count, bytes)
		}
		if l.Count() != 0 || l.Bytes() != 0 {
			t.Fatalf("replay mutated log counters: count=%d bytes=%d", l.Count(), l.Bytes())
		}
		st2, err := l.Replay(func(_, _ []byte, _ uint64, _ keys.Kind) error { return nil })
		if err != nil {
			t.Fatalf("second replay errored: %v", err)
		}
		if st2 != st {
			t.Fatalf("replay not idempotent: first %+v second %+v", st, st2)
		}
	})
}
