package wal

import (
	"fmt"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

// TestAppendTornWritePoisonsLog: an injected crash that tears an append
// mid-record must (a) fail the append, (b) latch the log poisoned so no
// further append can write unrecoverable records behind the garbage, and
// (c) leave a replayable prefix with the torn tail discarded.
func TestAppendTornWritePoisonsLog(t *testing.T) {
	space := vaddr.NewSpace()
	dev := nvm.NewDevice(space, nvm.NVMProfile())
	l := New(dev, 1<<16)

	good := 0
	for i := 0; ; i++ {
		if i == 3 {
			// Arm a byte budget that tears the next append partway.
			dev.SetFaultPlan(nvm.NewFaultPlan(7).CrashAfterBytes(10).TornWrites())
		}
		err := l.Append([]byte(fmt.Sprintf("key-%03d", i)), []byte("value-payload"), uint64(i+1), keys.KindSet)
		if err != nil {
			break
		}
		good++
	}
	if good != 3 {
		t.Fatalf("acked %d appends before the injected crash, want 3", good)
	}
	if !l.Poisoned() {
		t.Fatal("log not poisoned after torn append")
	}
	if err := l.Append([]byte("after"), []byte("v"), 99, keys.KindSet); err == nil {
		t.Fatal("poisoned log accepted a further append")
	}

	dev.SetFaultPlan(nil)
	got, st := replayAllStats(t, Attach(dev, l.Region()))
	if len(got) != good {
		t.Fatalf("replayed %d records, want the %d acked ones", len(got), good)
	}
	if !st.TornTail {
		t.Error("replay did not flag the torn tail")
	}
}

// TestAppendLostWriteRetryable: a failed append that persisted nothing
// (torn = -1) must leave the log clean: the caller may retry and replay
// sees no damage.
func TestAppendLostWriteRetryable(t *testing.T) {
	dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
	l := New(dev, 1<<16)
	if err := l.Append([]byte("a"), []byte("1"), 1, keys.KindSet); err != nil {
		t.Fatal(err)
	}
	// Probabilistic injection without TornWrites: failures lose the whole
	// write, never a prefix.
	dev.SetFaultPlan(nvm.NewFaultPlan(1).FailWritesEvery(1).AllTransient())
	if err := l.Append([]byte("b"), []byte("2"), 2, keys.KindSet); err == nil {
		t.Fatal("injected failure did not surface")
	}
	if l.Poisoned() {
		t.Fatal("fully-lost append poisoned the log")
	}
	dev.SetFaultPlan(nil)
	if err := l.Append([]byte("b"), []byte("2"), 2, keys.KindSet); err != nil {
		t.Fatalf("retry after lost write failed: %v", err)
	}
	got, st := replayAllStats(t, Attach(dev, l.Region()))
	if len(got) != 2 || st.TornTail {
		t.Fatalf("replay got %d records (torn=%v), want 2 clean", len(got), st.TornTail)
	}
}

// TestBatchSerialTornEquivalence: under the same byte-budget crash
// trigger, the batched and serial append paths must tear at the same
// media offset and recover the same record prefix — the property that
// keeps group commit crash-equivalent to serialized logging.
func TestBatchSerialTornEquivalence(t *testing.T) {
	mkRecs := func(n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{
				Key:   []byte(fmt.Sprintf("key-%04d", i)),
				Value: []byte(fmt.Sprintf("value-%04d-%s", i, string(make([]byte, i%40)))),
				Seq:   uint64(i + 1),
				Kind:  keys.KindSet,
			}
		}
		return recs
	}

	for _, budget := range []int64{1, 33, 64, 200, 1000, 4000} {
		recs := mkRecs(100)

		run := func(batched bool) []rec {
			dev := nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
			l := New(dev, 4096) // small chunks: straddle padding in play
			dev.SetFaultPlan(nvm.NewFaultPlan(42).CrashAfterBytes(budget).TornWrites())
			if batched {
				// Batch in groups of 7 until a group fails.
				for i := 0; i < len(recs); i += 7 {
					j := i + 7
					if j > len(recs) {
						j = len(recs)
					}
					if err := l.AppendBatch(recs[i:j]); err != nil {
						break
					}
				}
			} else {
				for _, r := range recs {
					if err := l.Append(r.Key, r.Value, r.Seq, r.Kind); err != nil {
						break
					}
				}
			}
			dev.SetFaultPlan(nil)
			return replayAll(t, Attach(dev, l.Region()))
		}

		serial := run(false)
		batched := run(true)

		// A batch run commits whole groups, so at the crash point the
		// batched log may be shorter by at most one group (the group the
		// serial path partially committed). Both must be prefixes of the
		// same record sequence, and the batched prefix must reach at
		// least the last full group before the serial tear.
		if len(batched) > len(serial) {
			t.Fatalf("budget %d: batched log recovered MORE records (%d) than serial (%d)",
				budget, len(batched), len(serial))
		}
		if serialFloor := len(serial) / 7 * 7; len(batched) < serialFloor {
			t.Fatalf("budget %d: batched recovered %d records, want at least %d (serial %d)",
				budget, len(batched), serialFloor, len(serial))
		}
		for i := range batched {
			if string(batched[i].key) != string(serial[i].key) || batched[i].seq != serial[i].seq {
				t.Fatalf("budget %d: record %d differs between batched and serial replay", budget, i)
			}
		}
	}
}
