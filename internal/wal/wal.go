// Package wal implements the write-ahead log MioDB keeps in NVM (§4.7):
// every KV update is appended to a persistent log before it is inserted
// into the DRAM MemTable, so the volatile buffer can always be rebuilt
// after a crash. One log instance covers one MemTable; when the memtable's
// one-piece flush completes, the log's arena is released in one shot.
//
// Record framing inside the NVM arena:
//
//	[ crc32(IEEE) uint32 | payloadLen uint32 ]  — 8-byte header
//	[ seq uint64 | kind uint8 | keyLen uint32 | key... | value... ]
//
// Records are bump-allocated; a record that would straddle a chunk boundary
// is placed at the next chunk start (the allocator's rule), and the replay
// cursor reproduces that rule. Fresh chunks are zero-filled, so a zero
// header terminates replay; the CRC catches partial records.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

const headerSize = 8

// Log is a write-ahead log in one NVM arena. Appends must be externally
// serialized (the store's write path already is).
type Log struct {
	dev    *nvm.Device
	region *vaddr.Region
	count  int64
	bytes  int64
	buf    []byte // reused encode buffer

	// poisoned latches once a failed append left a torn prefix on the
	// media: replay stops at that garbage record, so any further append
	// would be unreachable after a crash. Callers must stop appending
	// (rotate the log or degrade) once the log is poisoned.
	poisoned bool
}

// New creates a log on the device. chunkSize bounds the largest record
// (key+value+17 bytes of framing).
func New(dev *nvm.Device, chunkSize int) *Log {
	return &Log{dev: dev, region: dev.NewRegion(chunkSize)}
}

// Attach reopens an existing log arena for replay after a crash.
func Attach(dev *nvm.Device, region *vaddr.Region) *Log {
	return &Log{dev: dev, region: region}
}

// Region returns the backing arena (persisted in the superblock so
// recovery can find it).
func (l *Log) Region() *vaddr.Region { return l.region }

// Count returns the number of records appended or replayed.
func (l *Log) Count() int64 { return l.count }

// Bytes returns the log's total appended bytes including framing.
func (l *Log) Bytes() int64 { return l.bytes }

// Poisoned reports whether a failed append left an unreadable torn
// record on the media, making further appends unrecoverable.
func (l *Log) Poisoned() bool { return l.poisoned }

// Record is one update inside a batched append.
type Record struct {
	Key, Value []byte
	Seq        uint64
	Kind       keys.Kind
}

// recordTotal returns the framed (unaligned) size of one record.
func recordTotal(key, value []byte) int {
	return headerSize + 8 + 1 + 4 + len(key) + len(value)
}

// encodeRecord frames one record into b (which must hold recordTotal
// bytes) and returns the framed size.
func encodeRecord(b []byte, key, value []byte, seq uint64, kind keys.Kind) int {
	payload := 8 + 1 + 4 + len(key) + len(value)
	total := headerSize + payload
	binary.LittleEndian.PutUint32(b[4:8], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:16], seq)
	b[16] = byte(kind)
	binary.LittleEndian.PutUint32(b[17:21], uint32(len(key)))
	copy(b[21:], key)
	copy(b[21+len(key):], value)
	binary.LittleEndian.PutUint32(b[0:4], crc32.ChecksumIEEE(b[8:total]))
	return total
}

// Append durably logs one update. The write is charged to the NVM device
// as a single sequential append — the cheap, sequential half of the
// paper's "insertion of KV pairs that often incurs random memory accesses
// can be performed in the fast DRAM".
func (l *Log) Append(key, value []byte, seq uint64, kind keys.Kind) error {
	if l.poisoned {
		return fmt.Errorf("wal: log poisoned by earlier torn append")
	}
	total := recordTotal(key, value)
	if total > l.region.ChunkSize() {
		return fmt.Errorf("wal: record of %d bytes exceeds max %d", total, l.region.ChunkSize())
	}
	if cap(l.buf) < total {
		l.buf = make([]byte, total)
	}
	b := l.buf[:total]
	encodeRecord(b, key, value, seq, kind)

	// Gate on the device's fault plan before touching the arena. The
	// checked size is the 8-byte-aligned footprint — the same bytes
	// AppendBatch charges for these records — so a byte-budget crash
	// trigger tears the serial and batched paths at identical media
	// offsets.
	if out := l.dev.CheckWrite(int(alignUp8(int64(total)))); out.Err != nil {
		l.tear(b, out.Torn)
		return fmt.Errorf("wal: append: %w", out.Err)
	}

	addr, err := l.region.Alloc(total)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.region.Write(addr, b)
	l.count++
	l.bytes += int64(total)
	return nil
}

// tear persists the first torn bytes of the encoded record b (an injected
// torn write) and poisons the log. torn <= 0 persists nothing and leaves
// the log clean: a fully-lost append is retryable.
func (l *Log) tear(b []byte, torn int) {
	if torn <= 0 {
		return
	}
	if torn > len(b) {
		torn = len(b)
	}
	if addr, err := l.region.Alloc(len(b)); err == nil {
		l.region.Write(addr, b[:torn])
	}
	l.poisoned = true
}

// AppendBatch durably logs a group of updates — the WAL half of group
// commit. All records of a run that fits the current arena chunk are
// framed into one encode buffer and written with a single region write,
// so the NVM device is charged one sequential append (one per-operation
// latency) for the whole run instead of one per record. Groups larger
// than a chunk are split at chunk boundaries, exactly where the
// bump allocator would split them anyway.
//
// The resulting bytes are identical to calling Append once per record:
// the same per-record framing, the same 8-byte alignment between
// records, and the same padding-to-next-chunk rule for records that
// would straddle a boundary. Replay cannot distinguish the two, which
// keeps group-committed logs byte-compatible with the existing recovery
// path (all-or-prefix per group: a torn tail still truncates at the
// first bad CRC).
func (l *Log) AppendBatch(recs []Record) error {
	if l.poisoned {
		return fmt.Errorf("wal: log poisoned by earlier torn append")
	}
	chunk := int64(l.region.ChunkSize())
	i := 0
	for i < len(recs) {
		// Room left in the chunk the next allocation lands in. If the
		// first record of the run does not fit the remainder, the
		// allocator pads to the next chunk start, so a full chunk is
		// available there.
		off := l.region.Size()
		room := chunk - off%chunk
		first := int64(recordTotal(recs[i].Key, recs[i].Value))
		if first > chunk {
			return fmt.Errorf("wal: record of %d bytes exceeds max %d", first, chunk)
		}
		if alignUp8(first) > room {
			room = chunk
		}

		// Extend the run greedily while aligned records keep fitting.
		run := int64(0)
		unaligned := int64(0)
		j := i
		for j < len(recs) {
			t := int64(recordTotal(recs[j].Key, recs[j].Value))
			if t > chunk {
				return fmt.Errorf("wal: record of %d bytes exceeds max %d", t, chunk)
			}
			at := alignUp8(t)
			if run+at > room {
				break
			}
			run += at
			unaligned += t
			j++
		}

		// One encode pass, one allocation, one device write for the run.
		if cap(l.buf) < int(run) {
			l.buf = make([]byte, run)
		}
		b := l.buf[:run]
		for k := range b {
			b[k] = 0 // alignment gaps must read back as zero padding
		}
		pos := int64(0)
		for k := i; k < j; k++ {
			t := encodeRecord(b[pos:], recs[k].Key, recs[k].Value, recs[k].Seq, recs[k].Kind)
			pos += alignUp8(int64(t))
		}
		if out := l.dev.CheckWrite(int(run)); out.Err != nil {
			l.tear(b, out.Torn)
			return fmt.Errorf("wal: append batch: %w", out.Err)
		}
		addr, err := l.region.Alloc(int(run))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.region.Write(addr, b)
		l.count += int64(j - i)
		l.bytes += unaligned
		i = j
	}
	return nil
}

func alignUp8(n int64) int64 { return (n + 7) &^ 7 }

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records and Bytes count the intact records delivered to fn and
	// their framed (unaligned) sizes.
	Records, Bytes int64
	// TornTail is true when replay stopped at a damaged record — a CRC
	// mismatch or a malformed/truncated header, the signature of a write
	// interrupted mid-record — rather than at a clean zero-header EOF.
	// Either way the prefix before the stop point is the recovered log.
	TornTail bool
}

// Replay invokes fn for every intact record in order. It stops at the
// first zero header (end of log) or CRC mismatch (torn tail write), which
// is the standard recovery contract: a torn final record is discarded.
// The returned stats distinguish the two stop reasons.
//
// Replay is read-only and idempotent: it does not touch the log's
// Count/Bytes counters, so a retried replay (e.g. after a mid-replay
// error) observes the same log it saw the first time.
func (l *Log) Replay(fn func(key, value []byte, seq uint64, kind keys.Kind) error) (ReplayStats, error) {
	var st ReplayStats
	chunk := int64(l.region.ChunkSize())
	off := int64(0)
	if l.region.Index() == 0 {
		off = 8 // region 0 reserves the nil-address word
	}
	size := l.region.Size()
	for {
		if off+headerSize > size {
			return st, nil
		}
		// Reproduce the allocator's straddle rule: a header crossing a
		// chunk boundary means the record was placed at the next chunk.
		if off/chunk != (off+headerSize-1)/chunk {
			off = (off + chunk - 1) / chunk * chunk
			continue
		}
		hdr := l.region.Read(l.region.Base().Add(off), headerSize)
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		payloadLen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if crc == 0 && payloadLen == 0 {
			// Zero header: either end of log, or straddle padding —
			// retry once from the next chunk boundary.
			next := (off/chunk + 1) * chunk
			if next == off {
				return st, nil
			}
			if next+headerSize > size {
				return st, nil
			}
			nh := l.region.Read(l.region.Base().Add(next), headerSize)
			if binary.LittleEndian.Uint32(nh[0:4]) == 0 && binary.LittleEndian.Uint32(nh[4:8]) == 0 {
				return st, nil
			}
			off = next
			continue
		}
		total := headerSize + payloadLen
		if payloadLen < 13 || off/chunk != (off+total-1)/chunk || off+total > size {
			st.TornTail = true // malformed tail: interrupted mid-record
			return st, nil
		}
		payload := l.region.Read(l.region.Base().Add(off+headerSize), int(payloadLen))
		if crc32.ChecksumIEEE(payload) != crc {
			st.TornTail = true // torn write at the tail
			return st, nil
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		kind := keys.Kind(payload[8])
		keyLen := int64(binary.LittleEndian.Uint32(payload[9:13]))
		if 13+keyLen > payloadLen {
			st.TornTail = true
			return st, nil
		}
		key := payload[13 : 13+keyLen]
		value := payload[13+keyLen:]
		if err := fn(key, value, seq, kind); err != nil {
			return st, err
		}
		st.Records++
		st.Bytes += total
		off += (total + 7) &^ 7
	}
}

// Release frees the log's arena after its MemTable has been durably
// flushed to a PMTable.
func (l *Log) Release() {
	l.dev.Release(l.region)
}
