package wal

import (
	"bytes"
	"fmt"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

func newDev() *nvm.Device {
	return nvm.NewDevice(vaddr.NewSpace(), nvm.NVMProfile())
}

type rec struct {
	key, value []byte
	seq        uint64
	kind       keys.Kind
}

func replayAll(t *testing.T, l *Log) []rec {
	out, _ := replayAllStats(t, l)
	return out
}

func replayAllStats(t *testing.T, l *Log) ([]rec, ReplayStats) {
	t.Helper()
	var out []rec
	st, err := l.Replay(func(k, v []byte, seq uint64, kind keys.Kind) error {
		out = append(out, rec{append([]byte(nil), k...), append([]byte(nil), v...), seq, kind})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != int64(len(out)) {
		t.Fatalf("ReplayStats.Records = %d, delivered %d", st.Records, len(out))
	}
	return out, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dev := newDev()
	l := New(dev, 1<<16)
	want := []rec{}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := bytes.Repeat([]byte{byte(i)}, i%300)
		kind := keys.KindSet
		if i%7 == 0 {
			kind, v = keys.KindDelete, nil
		}
		if err := l.Append(k, v, uint64(i+1), kind); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{k, v, uint64(i + 1), kind})
	}
	got, st := replayAllStats(t, Attach(dev, l.Region()))
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if st.TornTail {
		t.Error("ReplayStats.TornTail = true for a clean log")
	}
	for i := range want {
		if !bytes.Equal(got[i].key, want[i].key) ||
			!bytes.Equal(got[i].value, want[i].value) ||
			got[i].seq != want[i].seq || got[i].kind != want[i].kind {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestEmptyLogReplay(t *testing.T) {
	dev := newDev()
	l := New(dev, 1<<16)
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
}

func TestReplayAcrossChunkBoundaries(t *testing.T) {
	dev := newDev()
	l := New(dev, 4096) // tiny chunks force straddle padding
	var want []rec
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := bytes.Repeat([]byte("v"), 1000) // ~4 records per chunk
		if err := l.Append(k, v, uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{k, v, uint64(i + 1), keys.KindSet})
	}
	got := replayAll(t, Attach(dev, l.Region()))
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].seq != want[i].seq || !bytes.Equal(got[i].key, want[i].key) {
			t.Fatalf("record %d mismatch after chunk crossings", i)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dev := newDev()
	l := New(dev, 4096)
	if err := l.Append([]byte("k"), make([]byte, 5000), 1, keys.KindSet); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dev := newDev()
	l := New(dev, 1<<16)
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("k%d", i)), []byte("v"), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn final record: corrupt bytes just past the good tail.
	region := l.Region()
	addr, err := region.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	region.Write(addr, []byte{0xff, 0xff, 0xff, 0xff, 40, 0, 0, 0, 1, 2, 3})
	got, st := replayAllStats(t, Attach(dev, region))
	if len(got) != 10 {
		t.Fatalf("replay returned %d records, want 10 (torn tail dropped)", len(got))
	}
	if !st.TornTail {
		t.Error("ReplayStats.TornTail = false for a corrupted tail")
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	dev := newDev()
	l := New(dev, 1<<16)
	for i := 0; i < 5; i++ {
		l.Append([]byte("k"), []byte("v"), uint64(i+1), keys.KindSet)
	}
	wantErr := fmt.Errorf("boom")
	n := 0
	_, err := Attach(dev, l.Region()).Replay(func(_, _ []byte, _ uint64, _ keys.Kind) error {
		n++
		if n == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("Replay error = %v, want %v", err, wantErr)
	}
}

func TestCountersAndRelease(t *testing.T) {
	dev := newDev()
	l := New(dev, 1<<16)
	for i := 0; i < 5; i++ {
		l.Append([]byte("key"), []byte("value"), uint64(i+1), keys.KindSet)
	}
	if l.Count() != 5 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Bytes() == 0 {
		t.Error("Bytes = 0")
	}
	// WAL appends are charged to the device (the 1× WAL component of WA).
	if dev.Counters().BytesWritten == 0 {
		t.Error("device saw no WAL write traffic")
	}
	l.Release()
	if !l.Region().Released() {
		t.Error("region not released")
	}
}
