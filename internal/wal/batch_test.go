package wal

import (
	"bytes"
	"fmt"
	"testing"

	"miodb/internal/keys"
)

// batchFixtures builds a record stream that exercises alignment padding
// (odd key/value lengths) and chunk-straddle padding (values sized so runs
// cross chunk boundaries at varying offsets).
func batchFixtures(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d-%s", i, bytes.Repeat([]byte("k"), i%13)))
		var v []byte
		kind := keys.KindSet
		switch {
		case i%11 == 0:
			kind = keys.KindDelete
		case i%3 == 0:
			v = bytes.Repeat([]byte{byte(i)}, 900+i%17) // straddles 4 KB chunks
		default:
			v = bytes.Repeat([]byte{byte(i)}, i%97)
		}
		recs = append(recs, Record{Key: k, Value: v, Seq: uint64(i + 1), Kind: kind})
	}
	return recs
}

// TestAppendBatchByteCompatible proves AppendBatch lays out records
// byte-for-byte as repeated Append would: same extent, same content, so a
// WAL written by the group-commit path replays identically under recovery
// code that has never heard of batches.
func TestAppendBatchByteCompatible(t *testing.T) {
	for _, chunk := range []int{4096, 1 << 16} {
		recs := batchFixtures(300)

		one := New(newDev(), chunk)
		for _, r := range recs {
			if err := one.Append(r.Key, r.Value, r.Seq, r.Kind); err != nil {
				t.Fatal(err)
			}
		}

		// Batch in uneven group sizes, including size-1 groups.
		batched := New(newDev(), chunk)
		for i := 0; i < len(recs); {
			n := 1 + (i*7)%9
			if i+n > len(recs) {
				n = len(recs) - i
			}
			if err := batched.AppendBatch(recs[i : i+n]); err != nil {
				t.Fatal(err)
			}
			i += n
		}

		if one.Count() != batched.Count() || one.Bytes() != batched.Bytes() {
			t.Fatalf("chunk %d: counters diverge: (%d,%d) vs (%d,%d)",
				chunk, one.Count(), one.Bytes(), batched.Count(), batched.Bytes())
		}
		r1, r2 := one.Region(), batched.Region()
		if r1.Size() != r2.Size() {
			t.Fatalf("chunk %d: extent diverges: %d vs %d", chunk, r1.Size(), r2.Size())
		}
		ext := r1.Size()
		for off := int64(0); off < ext; off += int64(chunk) {
			n := int64(chunk)
			if off+n > ext {
				n = ext - off
			}
			b1 := r1.Bytes(r1.Base().Add(off), int(n))
			b2 := r2.Bytes(r2.Base().Add(off), int(n))
			if !bytes.Equal(b1, b2) {
				t.Fatalf("chunk %d: content diverges in [%d,%d)", chunk, off, off+n)
			}
		}

		// And the batched log replays the exact record stream.
		got := replayAll(t, batched)
		if len(got) != len(recs) {
			t.Fatalf("chunk %d: replayed %d records, want %d", chunk, len(got), len(recs))
		}
		for i, r := range recs {
			if !bytes.Equal(got[i].key, r.Key) || !bytes.Equal(got[i].value, r.Value) ||
				got[i].seq != r.Seq || got[i].kind != r.Kind {
				t.Fatalf("chunk %d: record %d mismatch", chunk, i)
			}
		}
	}
}

// TestAppendBatchChargesOneWritePerRun checks the device-model win the
// pipeline claims: a coalesced append performs far fewer metered device
// writes than per-record appends for the same payload.
func TestAppendBatchChargesOneWritePerRun(t *testing.T) {
	recs := batchFixtures(256)

	devOne := newDev()
	one := New(devOne, 1<<16)
	for _, r := range recs {
		if err := one.Append(r.Key, r.Value, r.Seq, r.Kind); err != nil {
			t.Fatal(err)
		}
	}

	devBatch := newDev()
	batched := New(devBatch, 1<<16)
	if err := batched.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}

	w1, w2 := devOne.Counters().Writes, devBatch.Counters().Writes
	if w1 != int64(len(recs)) {
		t.Fatalf("per-record appends issued %d device writes, want %d", w1, len(recs))
	}
	// One write per contiguous run; the whole batch spans few chunks.
	if w2 > 4 {
		t.Fatalf("batched append issued %d device writes, want <= 4", w2)
	}
	// The streaming run covers the 8-byte alignment gaps between records
	// (≤ 7 bytes each) that per-record appends skip; byte traffic may
	// exceed the per-record total by at most that padding.
	b1, b2 := devOne.Counters().BytesWritten, devBatch.Counters().BytesWritten
	if b2 < b1 || b2 > b1+int64(len(recs))*7 {
		t.Fatalf("byte traffic diverges beyond padding: %d vs %d", b1, b2)
	}
}
