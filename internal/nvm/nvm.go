// Package nvm models byte-addressable memory devices — DRAM and
// non-volatile memory (NVM) — for the hybrid memory system the paper
// targets.
//
// The paper evaluates on Intel Optane DC Persistent Memory, which is not
// available here; the substitution (documented in DESIGN.md) is a device
// model that preserves the two properties every experiment depends on:
//
//  1. Byte addressability: regions of the device are ordinary vaddr arenas,
//     so persistent skip lists manipulate 8-byte words in place.
//  2. Asymmetric performance: each device charges calibrated per-operation
//     latency and per-byte bandwidth costs. The default NVM profile follows
//     the paper's §2.1 measurements (NVM random-write bandwidth ≈ 7× lower
//     than DRAM; access latency ≈ 300 ns vs ~80 ns).
//
// Devices also count bytes read/written, which feeds the write-amplification
// ratio (device write traffic ÷ user-written bytes) reported in Fig 2(d),
// Table 1, and Fig 11.
package nvm

import (
	"runtime"
	"sync/atomic"
	"time"

	"miodb/internal/vaddr"
)

// Profile describes the performance characteristics of a memory device.
type Profile struct {
	// Name identifies the device class in stats output.
	Name string
	// ReadLatency and WriteLatency are fixed per-operation costs.
	ReadLatency, WriteLatency time.Duration
	// ReadNanosPerByte and WriteNanosPerByte are inverse bandwidths.
	ReadNanosPerByte, WriteNanosPerByte float64
}

// DRAMProfile models DRAM: the host memory the simulation itself runs in,
// so no extra cost is injected.
func DRAMProfile() Profile {
	return Profile{Name: "dram"}
}

// NVMProfile models Optane-class persistent memory relative to DRAM:
// ~300 ns access latency, ~6.5 GB/s read and ~2 GB/s write streaming
// bandwidth (the paper's "random write throughput of Intel Optane DCPMM is
// almost 7 times lower than that of DRAM").
func NVMProfile() Profile {
	return Profile{
		Name:              "nvm",
		ReadLatency:       300 * time.Nanosecond,
		WriteLatency:      300 * time.Nanosecond,
		ReadNanosPerByte:  0.15, // ≈ 6.5 GB/s
		WriteNanosPerByte: 0.5,  // ≈ 2.0 GB/s
	}
}

// Device is a metered memory device bound to a shared virtual address
// space. It implements vaddr.Meter: every metered region access charges the
// device's latency/bandwidth model and its byte counters.
type Device struct {
	space   *vaddr.Space
	profile Profile
	// free marks an all-zero profile (DRAM): no delay can ever be charged,
	// so the metering fast path skips the charge arithmetic entirely. This
	// matters because the memtable skip list charges its device on every
	// node access.
	free bool

	// simulate enables latency injection; byte accounting is always on.
	simulate atomic.Bool
	// timeScale scales injected delays (1.0 = full model). Stored as
	// nanos-per-nano ×1e6 to keep it atomic.
	timeScaleMicro atomic.Int64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64

	// debt accumulates sub-granularity delays so tiny operations (8-byte
	// pointer stores) are charged in aggregate instead of per-op spinning.
	debt atomic.Int64

	// faults, when non-nil, is consulted by the error-returning seams of
	// the storage stack (WAL appends, manifest appends, flush/compaction
	// entry points) via CheckWrite/CheckRead. The metering callbacks
	// OnRead/OnWrite stay infallible: raw pointer stores into mapped NVM
	// cannot fail on real hardware either.
	faults atomic.Pointer[FaultPlan]
}

// NewDevice creates a device over the given space. Latency simulation
// starts disabled; call SetSimulation(true) for benchmark runs.
func NewDevice(space *vaddr.Space, profile Profile) *Device {
	d := &Device{space: space, profile: profile}
	d.free = profile.ReadLatency == 0 && profile.WriteLatency == 0 &&
		profile.ReadNanosPerByte == 0 && profile.WriteNanosPerByte == 0
	d.timeScaleMicro.Store(1_000_000)
	return d
}

// Space returns the shared virtual address space.
func (d *Device) Space() *vaddr.Space { return d.space }

// Profile returns the device's performance profile.
func (d *Device) Profile() Profile { return d.profile }

// SetSimulation toggles latency injection. Byte accounting (for write
// amplification) is unaffected.
func (d *Device) SetSimulation(on bool) { d.simulate.Store(on) }

// SetTimeScale scales all injected delays; 0 disables them, 1 is the full
// calibrated model. Useful to shrink wall-clock time of large sweeps while
// preserving relative costs.
func (d *Device) SetTimeScale(scale float64) {
	d.timeScaleMicro.Store(int64(scale * 1e6))
}

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan.
func (d *Device) SetFaultPlan(p *FaultPlan) { d.faults.Store(p) }

// Faults returns the installed fault plan, or nil.
func (d *Device) Faults() *FaultPlan { return d.faults.Load() }

// CheckWrite gates an n-byte logical write against the fault plan. The
// nil-plan fast path costs one atomic load.
func (d *Device) CheckWrite(n int) WriteOutcome {
	return d.faults.Load().CheckWrite(n)
}

// CheckRead gates an n-byte logical read against the fault plan.
func (d *Device) CheckRead(n int) error {
	return d.faults.Load().CheckRead(n)
}

// NewRegion allocates a fresh metered region on this device.
func (d *Device) NewRegion(chunkSize int) *vaddr.Region {
	return d.space.NewRegion(chunkSize, d)
}

// Clone bulk-copies src into a new region on this device (the one-piece
// flush transfer). The whole extent is charged as a single streaming write.
func (d *Device) Clone(src *vaddr.Region) *vaddr.Region {
	return d.space.Clone(src, d)
}

// Release returns a region's memory to the system.
func (d *Device) Release(r *vaddr.Region) { d.space.Release(r) }

// OnRead implements vaddr.Meter.
func (d *Device) OnRead(n int) {
	d.bytesRead.Add(int64(n))
	d.reads.Add(1)
	if !d.free && d.simulate.Load() {
		d.charge(d.profile.ReadLatency, d.profile.ReadNanosPerByte, n)
	}
}

// OnWrite implements vaddr.Meter.
func (d *Device) OnWrite(n int) {
	d.bytesWritten.Add(int64(n))
	d.writes.Add(1)
	if !d.free && d.simulate.Load() {
		d.charge(d.profile.WriteLatency, d.profile.WriteNanosPerByte, n)
	}
}

// charge injects latency + bandwidth delay, scaled by the time scale.
// Delays below the granularity threshold accumulate in debt and are paid in
// bulk, so that metering 8-byte atomic stores stays cheap and the aggregate
// bandwidth model remains accurate.
func (d *Device) charge(lat time.Duration, nsPerByte float64, n int) {
	scale := float64(d.timeScaleMicro.Load()) / 1e6
	if scale <= 0 {
		return
	}
	ns := int64(scale * (float64(lat) + nsPerByte*float64(n)))
	if ns <= 0 {
		return
	}
	const granularity = 4096 // ns: pay debt in ≥4 µs units
	total := d.debt.Add(ns)
	if total < granularity {
		return
	}
	if d.debt.CompareAndSwap(total, 0) {
		Spin(time.Duration(total))
	}
}

// Counters is a snapshot of a device's traffic counters.
type Counters struct {
	Name                    string
	BytesRead, BytesWritten int64
	Reads, Writes           int64
}

// Counters returns the device's accumulated traffic.
func (d *Device) Counters() Counters {
	return Counters{
		Name:         d.profile.Name,
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		Reads:        d.reads.Load(),
		Writes:       d.writes.Load(),
	}
}

// ResetCounters zeroes the traffic counters (used between benchmark
// phases so load-phase traffic does not pollute run-phase metrics).
func (d *Device) ResetCounters() {
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.reads.Store(0)
	d.writes.Store(0)
}

// Spin delays the calling goroutine for roughly dur. Short waits poll the
// clock (time.Sleep cannot resolve microseconds reliably); longer waits
// sleep. The poll loop yields to the scheduler on every iteration: on a
// machine with few cores, a non-yielding busy-wait in a background
// compaction goroutine would steal whole scheduler quanta from foreground
// operations and masquerade as tail latency — the opposite of what the
// device model intends (a device wait occupies the device, not the CPU).
func Spin(dur time.Duration) {
	if dur <= 0 {
		return
	}
	if dur >= 100*time.Microsecond {
		time.Sleep(dur)
		return
	}
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
