package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the base error returned by fault-plan triggered failures.
// Use IsTransient to decide whether a retry is worthwhile.
var ErrInjected = errors.New("nvm: injected device fault")

// ErrCrashed is returned once a crash trigger has fired: the device is
// gone and every subsequent operation fails persistently.
var ErrCrashed = errors.New("nvm: device crashed (injected)")

// transientErr wraps an injected fault that models a recoverable device
// condition (media retry, thermal throttle) rather than a hard failure.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() + " (transient)" }
func (e transientErr) Unwrap() error   { return e.err }
func (e transientErr) Transient() bool { return true }

// IsTransient reports whether err models a recoverable device condition:
// callers should retry with backoff. Persistent faults (including crash
// triggers) must instead latch degraded mode.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// WriteOutcome describes the result of gating a write through a fault
// plan. Err == nil means the write may proceed in full. With a non-nil
// Err, Torn >= 0 means the first Torn bytes still reached the media (a
// torn write): callers able to express partial persistence should apply
// exactly that prefix before surfacing Err. Torn < 0 means nothing was
// persisted.
type WriteOutcome struct {
	Err  error
	Torn int
}

// FaultStats counts what a plan has done so far.
type FaultStats struct {
	CheckedWrites, CheckedReads   int64
	InjectedWrites, InjectedReads int64
	TornBytes                     int64
	Crashed                       bool
}

// FaultPlan is an injectable fault schedule shared by the byte-addressable
// devices (nvm.Device) and the block devices (vfs.Disk). A nil plan
// injects nothing. All methods are safe for concurrent use.
//
// Three trigger families compose:
//
//   - error injection: every Nth checked op and/or an independent
//     per-op probability fails. The first TransientBudget injected
//     errors are transient (retryable); the rest are persistent, unless
//     AllTransient keeps every injection retryable.
//   - torn writes: an injected write failure may report a random prefix
//     as persisted, modeling a power cut mid-line-flush.
//   - crash triggers: after N checked writes or after a byte budget is
//     exhausted, the plan "crashes": the triggering write is torn at the
//     remaining budget, OnCrash fires once, and every later op fails
//     with ErrCrashed (persistent).
type FaultPlan struct {
	mu  sync.Mutex
	rng *rand.Rand

	writeEveryN int // fail every Nth checked write (0 = off)
	writeProb   float64
	readEveryN  int
	readProb    float64

	transientBudget int // first N injections are transient
	allTransient    bool

	tornWrites bool // injected write errors report a random persisted prefix

	crashAfterWrites int   // countdown in checked writes (0 = off)
	crashAfterBytes  int64 // countdown in checked bytes (<0 = off)
	crashed          bool
	onCrash          func()

	writeDelay    time.Duration // per-checked-write brake (0 = off)
	writeDelayMin int           // brake only writes of at least this many bytes

	stats FaultStats
}

// NewFaultPlan creates an empty plan with a deterministic RNG.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed)), crashAfterBytes: -1}
}

// FailWritesEvery makes every nth checked write fail (n <= 0 disables).
func (p *FaultPlan) FailWritesEvery(n int) *FaultPlan {
	p.mu.Lock()
	p.writeEveryN = n
	p.mu.Unlock()
	return p
}

// FailWritesProb makes each checked write fail with probability prob.
func (p *FaultPlan) FailWritesProb(prob float64) *FaultPlan {
	p.mu.Lock()
	p.writeProb = prob
	p.mu.Unlock()
	return p
}

// FailReadsEvery makes every nth checked read fail (n <= 0 disables).
func (p *FaultPlan) FailReadsEvery(n int) *FaultPlan {
	p.mu.Lock()
	p.readEveryN = n
	p.mu.Unlock()
	return p
}

// FailReadsProb makes each checked read fail with probability prob.
func (p *FaultPlan) FailReadsProb(prob float64) *FaultPlan {
	p.mu.Lock()
	p.readProb = prob
	p.mu.Unlock()
	return p
}

// TransientFirst makes the first n injected errors transient; later ones
// are persistent.
func (p *FaultPlan) TransientFirst(n int) *FaultPlan {
	p.mu.Lock()
	p.transientBudget = n
	p.mu.Unlock()
	return p
}

// AllTransient makes every injected error transient (retryable).
func (p *FaultPlan) AllTransient() *FaultPlan {
	p.mu.Lock()
	p.allTransient = true
	p.mu.Unlock()
	return p
}

// TornWrites makes injected write failures report a random persisted
// prefix instead of losing the whole write.
func (p *FaultPlan) TornWrites() *FaultPlan {
	p.mu.Lock()
	p.tornWrites = true
	p.mu.Unlock()
	return p
}

// CrashAfterWrites arms a crash trigger that fires on the nth checked
// write from now (n >= 1).
func (p *FaultPlan) CrashAfterWrites(n int) *FaultPlan {
	p.mu.Lock()
	p.crashAfterWrites = n
	p.mu.Unlock()
	return p
}

// CrashAfterBytes arms a crash trigger that fires once n checked write
// bytes have been consumed; the triggering write is torn at the
// remaining budget.
func (p *FaultPlan) CrashAfterBytes(n int64) *FaultPlan {
	p.mu.Lock()
	p.crashAfterBytes = n
	p.mu.Unlock()
	return p
}

// DelayWrites makes every checked write of at least minBytes pay a fixed
// delay before its verdict — a brake, not a fault: no error is injected
// and no counter advances beyond the usual CheckedWrites tally. Backlog
// tests use it to slow the bulk flush path deterministically relative to
// foreground writes; the size floor lets them spare the small manifest
// and gate records that share the device (minBytes ≤ 0 brakes them all).
func (p *FaultPlan) DelayWrites(minBytes int, d time.Duration) *FaultPlan {
	p.mu.Lock()
	p.writeDelay = d
	p.writeDelayMin = minBytes
	p.mu.Unlock()
	return p
}

// SetOnCrash registers a callback invoked exactly once, without the
// plan's lock held, when a crash trigger fires.
func (p *FaultPlan) SetOnCrash(fn func()) *FaultPlan {
	p.mu.Lock()
	p.onCrash = fn
	p.mu.Unlock()
	return p
}

// Crashed reports whether a crash trigger has fired.
func (p *FaultPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Stats returns a snapshot of the plan's counters.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Crashed = p.crashed
	return s
}

// classify wraps ErrInjected as transient or persistent according to the
// remaining transient budget. Caller holds p.mu.
func (p *FaultPlan) classifyLocked(err error) error {
	if p.allTransient {
		return transientErr{err}
	}
	if p.transientBudget > 0 {
		p.transientBudget--
		return transientErr{err}
	}
	return err
}

// CheckWrite gates an n-byte write. See WriteOutcome for the contract.
func (p *FaultPlan) CheckWrite(n int) WriteOutcome {
	if p == nil {
		return WriteOutcome{Torn: -1}
	}
	p.mu.Lock()
	delay := p.writeDelay
	if n < p.writeDelayMin {
		delay = 0
	}
	p.mu.Unlock()
	if delay > 0 {
		// Outside the plan's lock so concurrent device users stack their
		// delays in wall time only when they really contend on the device.
		Spin(delay)
	}
	var onCrash func()
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return WriteOutcome{Err: ErrCrashed, Torn: -1}
	}
	p.stats.CheckedWrites++
	out := WriteOutcome{Torn: -1}

	// Crash triggers take priority over plain error injection.
	crash := false
	if p.crashAfterWrites > 0 {
		p.crashAfterWrites--
		if p.crashAfterWrites == 0 {
			crash = true
			if p.tornWrites && n > 0 {
				out.Torn = p.rng.Intn(n + 1)
			}
		}
	}
	if !crash && p.crashAfterBytes >= 0 {
		if int64(n) > p.crashAfterBytes {
			crash = true
			out.Torn = int(p.crashAfterBytes) // remaining budget reaches media
		} else {
			p.crashAfterBytes -= int64(n)
			if p.crashAfterBytes == 0 {
				crash = true
				out.Torn = n // whole write landed; device dies after
				p.crashAfterBytes = -1
			}
		}
	}
	if crash {
		p.crashed = true
		p.stats.InjectedWrites++
		if out.Torn > 0 {
			p.stats.TornBytes += int64(out.Torn)
		}
		out.Err = fmt.Errorf("%w (after %d writes)", ErrCrashed, p.stats.CheckedWrites)
		onCrash, p.onCrash = p.onCrash, nil
		p.mu.Unlock()
		if onCrash != nil {
			onCrash()
		}
		return out
	}

	inject := false
	if p.writeEveryN > 0 && p.stats.CheckedWrites%int64(p.writeEveryN) == 0 {
		inject = true
	}
	if !inject && p.writeProb > 0 && p.rng.Float64() < p.writeProb {
		inject = true
	}
	if inject {
		p.stats.InjectedWrites++
		out.Err = p.classifyLocked(fmt.Errorf("%w: write op %d", ErrInjected, p.stats.CheckedWrites))
		if p.tornWrites && n > 0 {
			out.Torn = p.rng.Intn(n + 1)
			p.stats.TornBytes += int64(out.Torn)
		}
	}
	p.mu.Unlock()
	return out
}

// CheckRead gates an n-byte read, returning nil or an injected error.
func (p *FaultPlan) CheckRead(n int) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrCrashed
	}
	p.stats.CheckedReads++
	inject := false
	if p.readEveryN > 0 && p.stats.CheckedReads%int64(p.readEveryN) == 0 {
		inject = true
	}
	if !inject && p.readProb > 0 && p.rng.Float64() < p.readProb {
		inject = true
	}
	if !inject {
		return nil
	}
	p.stats.InjectedReads++
	return p.classifyLocked(fmt.Errorf("%w: read op %d", ErrInjected, p.stats.CheckedReads))
}
