package nvm

import (
	"errors"
	"testing"
)

func TestFaultPlanEveryN(t *testing.T) {
	p := NewFaultPlan(1).FailWritesEvery(3)
	var fails int
	for i := 0; i < 9; i++ {
		if out := p.CheckWrite(16); out.Err != nil {
			fails++
			if !errors.Is(out.Err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", out.Err)
			}
			if out.Torn >= 0 {
				t.Fatalf("torn writes not enabled, got Torn=%d", out.Torn)
			}
		}
	}
	if fails != 3 {
		t.Fatalf("every-3rd over 9 ops: want 3 failures, got %d", fails)
	}
}

func TestFaultPlanProbDeterministic(t *testing.T) {
	run := func() []int64 {
		p := NewFaultPlan(42).FailWritesProb(0.3)
		var failedAt []int64
		for i := int64(1); i <= 50; i++ {
			if out := p.CheckWrite(8); out.Err != nil {
				failedAt = append(failedAt, i)
			}
		}
		return failedAt
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.3 over 50 ops should inject at least once")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
}

func TestFaultPlanTransientBudget(t *testing.T) {
	p := NewFaultPlan(7).FailWritesEvery(1).TransientFirst(2)
	for i := 0; i < 2; i++ {
		out := p.CheckWrite(8)
		if out.Err == nil || !IsTransient(out.Err) {
			t.Fatalf("injection %d: want transient, got %v", i, out.Err)
		}
	}
	out := p.CheckWrite(8)
	if out.Err == nil || IsTransient(out.Err) {
		t.Fatalf("after budget: want persistent, got %v", out.Err)
	}
}

func TestFaultPlanAllTransient(t *testing.T) {
	p := NewFaultPlan(7).FailWritesEvery(1).AllTransient()
	for i := 0; i < 5; i++ {
		out := p.CheckWrite(8)
		if out.Err == nil || !IsTransient(out.Err) {
			t.Fatalf("op %d: want transient, got %v", i, out.Err)
		}
	}
}

func TestFaultPlanCrashAfterWrites(t *testing.T) {
	fired := 0
	p := NewFaultPlan(3).CrashAfterWrites(3).SetOnCrash(func() { fired++ })
	for i := 0; i < 2; i++ {
		if out := p.CheckWrite(8); out.Err != nil {
			t.Fatalf("op %d: premature failure %v", i, out.Err)
		}
	}
	out := p.CheckWrite(8)
	if !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("3rd op: want ErrCrashed, got %v", out.Err)
	}
	if IsTransient(out.Err) {
		t.Fatal("crash must be persistent")
	}
	if fired != 1 {
		t.Fatalf("OnCrash fired %d times", fired)
	}
	if !p.Crashed() {
		t.Fatal("Crashed() false after trigger")
	}
	// Everything after the crash fails persistently, including reads.
	if out := p.CheckWrite(8); !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", out.Err)
	}
	if err := p.CheckRead(8); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	if fired != 1 {
		t.Fatalf("OnCrash re-fired: %d", fired)
	}
}

func TestFaultPlanCrashAfterBytes(t *testing.T) {
	p := NewFaultPlan(9).CrashAfterBytes(100)
	// 64 bytes fit: no failure.
	if out := p.CheckWrite(64); out.Err != nil {
		t.Fatalf("within budget: %v", out.Err)
	}
	// 64 more exceed the remaining 36: torn at exactly 36.
	out := p.CheckWrite(64)
	if !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", out.Err)
	}
	if out.Torn != 36 {
		t.Fatalf("want torn prefix 36, got %d", out.Torn)
	}
	st := p.Stats()
	if !st.Crashed || st.TornBytes != 36 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFaultPlanTornWrites(t *testing.T) {
	p := NewFaultPlan(11).FailWritesEvery(1).TornWrites()
	sawTorn := false
	for i := 0; i < 32; i++ {
		out := p.CheckWrite(128)
		if out.Err == nil {
			t.Fatal("every-1 must always fail")
		}
		if out.Torn < 0 || out.Torn > 128 {
			t.Fatalf("torn out of range: %d", out.Torn)
		}
		if out.Torn > 0 {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Fatal("32 torn injections produced no nonzero prefix")
	}
}

func TestNilPlanFastPath(t *testing.T) {
	var p *FaultPlan
	if out := p.CheckWrite(8); out.Err != nil || out.Torn != -1 {
		t.Fatalf("nil plan: %+v", out)
	}
	if err := p.CheckRead(8); err != nil {
		t.Fatalf("nil plan read: %v", err)
	}
}

func TestDeviceFaultHooks(t *testing.T) {
	d := NewDevice(nil, DRAMProfile())
	if out := d.CheckWrite(8); out.Err != nil {
		t.Fatalf("no plan installed: %v", out.Err)
	}
	d.SetFaultPlan(NewFaultPlan(1).FailWritesEvery(1).FailReadsEvery(1))
	if out := d.CheckWrite(8); out.Err == nil {
		t.Fatal("plan installed but write passed")
	}
	if err := d.CheckRead(8); err == nil {
		t.Fatal("plan installed but read passed")
	}
	d.SetFaultPlan(nil)
	if out := d.CheckWrite(8); out.Err != nil {
		t.Fatalf("plan removed: %v", out.Err)
	}
}
