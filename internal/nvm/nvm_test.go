package nvm

import (
	"testing"
	"time"

	"miodb/internal/vaddr"
)

func TestDeviceRegionAndCounters(t *testing.T) {
	space := vaddr.NewSpace()
	d := NewDevice(space, NVMProfile())
	r := d.NewRegion(4096)
	a, err := r.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	r.Write(a, make([]byte, 64))
	r.Read(a, 64)
	c := d.Counters()
	if c.BytesWritten != 64 || c.BytesRead != 64 {
		t.Errorf("counters = %+v", c)
	}
	if c.Name != "nvm" {
		t.Errorf("Name = %s", c.Name)
	}
	d.ResetCounters()
	if c := d.Counters(); c.BytesWritten != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestCloneChargesBulkWrite(t *testing.T) {
	space := vaddr.NewSpace()
	dram := NewDevice(space, DRAMProfile())
	nv := NewDevice(space, NVMProfile())
	src := dram.NewRegion(4096)
	for i := 0; i < 10; i++ {
		a, _ := src.Alloc(512)
		src.Write(a, make([]byte, 512))
	}
	before := nv.Counters().BytesWritten
	clone := nv.Clone(src)
	written := nv.Counters().BytesWritten - before
	if written < src.Size() {
		t.Errorf("clone charged %d bytes, extent %d", written, src.Size())
	}
	if clone.Size() != src.Size() {
		t.Errorf("clone size %d != src %d", clone.Size(), src.Size())
	}
}

func TestLatencyInjectionAggregates(t *testing.T) {
	space := vaddr.NewSpace()
	d := NewDevice(space, NVMProfile())
	r := d.NewRegion(1 << 20)
	a, _ := r.Alloc(1 << 19)
	payload := make([]byte, 1<<19) // 512 KiB

	start := time.Now()
	r.Write(a, payload)
	fast := time.Since(start)

	d.SetSimulation(true)
	start = time.Now()
	r.Write(a, payload) // 512 KiB at 0.5 ns/B ≈ 262 µs
	slow := time.Since(start)
	if slow < 100*time.Microsecond {
		t.Errorf("simulated bulk write took %v, expected ≥ ~260µs", slow)
	}
	_ = fast

	// Small writes accumulate debt and pay it in aggregate: total time
	// for many 8-byte writes still reflects the bandwidth model's order
	// of magnitude without per-op spinning.
	d.SetTimeScale(1)
	start = time.Now()
	for i := 0; i < 1000; i++ {
		r.Store64(a, uint64(i)) // 8 KB total + 1000 × 300 ns latency
	}
	agg := time.Since(start)
	if agg < 100*time.Microsecond {
		t.Errorf("aggregated small writes took %v, expected ≥ ~300µs of modeled latency", agg)
	}
}

func TestTimeScaleZeroDisables(t *testing.T) {
	space := vaddr.NewSpace()
	d := NewDevice(space, NVMProfile())
	d.SetSimulation(true)
	d.SetTimeScale(0)
	r := d.NewRegion(1 << 20)
	a, _ := r.Alloc(1 << 19)
	start := time.Now()
	for i := 0; i < 20; i++ {
		r.Write(a, make([]byte, 1<<19))
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("TimeScale 0 still slow: %v", el)
	}
}

func TestSpinBounds(t *testing.T) {
	start := time.Now()
	Spin(50 * time.Microsecond)
	el := time.Since(start)
	if el < 40*time.Microsecond {
		t.Errorf("Spin(50µs) returned after %v", el)
	}
	Spin(0)  // no-op
	Spin(-1) // no-op
}

func TestProfiles(t *testing.T) {
	if DRAMProfile().WriteNanosPerByte != 0 {
		t.Error("DRAM profile should inject no cost")
	}
	nv := NVMProfile()
	if nv.WriteNanosPerByte <= nv.ReadNanosPerByte {
		t.Error("NVM writes should be slower than reads (asymmetry)")
	}
	if nv.WriteLatency < 100*time.Nanosecond {
		t.Error("NVM latency unrealistically low")
	}
}
