package vfs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestCreateWriteRead(t *testing.T) {
	d := NewDisk(SSDProfile())
	w := d.Create("a.sst")
	payload := bytes.Repeat([]byte("abc"), 1000)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if w.Offset() != int64(len(payload)) {
		t.Errorf("Offset = %d", w.Offset())
	}
	w.Sync()

	r, err := d.Open("a.sst")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(payload)) {
		t.Errorf("Size = %d", r.Size())
	}
	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[500:600]) {
		t.Error("ReadAt returned wrong bytes")
	}
	// Out-of-range reads fail.
	if _, err := r.ReadAt(buf, int64(len(payload))-50); err == nil {
		t.Error("short read not reported")
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestOpenMissingAndRemove(t *testing.T) {
	d := NewDisk(SSDProfile())
	if _, err := d.Open("nope"); err == nil {
		t.Error("Open of missing file succeeded")
	}
	d.Create("x")
	d.Create("y")
	if got := d.List(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("List = %v", got)
	}
	d.Remove("x")
	if got := d.List(); len(got) != 1 || got[0] != "y" {
		t.Errorf("List after Remove = %v", got)
	}
	// Readers opened before Remove keep working (compaction semantics).
	w := d.Create("z")
	w.Write([]byte("data"))
	r, _ := d.Open("z")
	d.Remove("z")
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 0); err != nil || string(buf) != "data" {
		t.Error("reader broken after Remove")
	}
}

func TestCountersAndTotalSize(t *testing.T) {
	d := NewDisk(NVMBlockProfile())
	w := d.Create("f")
	w.Write(make([]byte, 1000))
	r, _ := d.Open("f")
	r.ReadAt(make([]byte, 400), 0)
	c := d.Counters()
	if c.BytesWritten != 1000 || c.BytesRead != 400 {
		t.Errorf("counters = %+v", c)
	}
	if d.TotalSize() != 1000 {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
	d.ResetCounters()
	if c := d.Counters(); c.BytesWritten != 0 || c.BytesRead != 0 {
		t.Error("ResetCounters did not zero")
	}
}

func TestLatencyInjection(t *testing.T) {
	d := NewDisk(SSDProfile()) // 80 µs read latency
	w := d.Create("f")
	w.Write(make([]byte, 64))
	r, _ := d.Open("f")

	// Without simulation: fast.
	start := time.Now()
	for i := 0; i < 10; i++ {
		r.ReadAt(make([]byte, 64), 0)
	}
	fast := time.Since(start)

	d.SetSimulation(true)
	start = time.Now()
	for i := 0; i < 10; i++ {
		r.ReadAt(make([]byte, 64), 0)
	}
	slow := time.Since(start)
	if slow < 10*80*time.Microsecond/2 {
		t.Errorf("simulated reads took %v, expected ≥ ~400µs", slow)
	}
	if slow < fast {
		t.Error("simulation did not slow reads down")
	}

	// TimeScale 0 disables delays again.
	d.SetTimeScale(0)
	start = time.Now()
	for i := 0; i < 10; i++ {
		r.ReadAt(make([]byte, 64), 0)
	}
	if rescaled := time.Since(start); rescaled > slow {
		t.Error("TimeScale 0 did not disable delays")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewDisk(NVMBlockProfile())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			w := d.Create(name)
			for i := 0; i < 100; i++ {
				w.Write([]byte{byte(i)})
			}
			r, err := d.Open(name)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 100)
			if _, err := r.ReadAt(buf, 0); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if len(d.List()) != 4 {
		t.Errorf("List = %v", d.List())
	}
}
