package vfs

import (
	"bytes"
	"errors"
	"testing"

	"miodb/internal/nvm"
)

// TestWriterTornWrite verifies that an injected write failure persists
// exactly the torn prefix the plan reports and surfaces the error.
func TestWriterTornWrite(t *testing.T) {
	d := NewDisk(SSDProfile())
	w := d.Create("sst")
	payload := bytes.Repeat([]byte{0xAB}, 100)

	// Budget of 150 bytes: first 100-byte write lands whole, second is
	// torn at 50.
	d.SetFaultPlan(nvm.NewFaultPlan(1).CrashAfterBytes(150))
	n, err := w.Write(payload)
	if err != nil || n != 100 {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write(payload)
	if !errors.Is(err, nvm.ErrCrashed) {
		t.Fatalf("second write: want ErrCrashed, got %v", err)
	}
	if n != 50 {
		t.Fatalf("torn prefix: want 50, got %d", n)
	}
	if w.Offset() != 150 {
		t.Fatalf("offset: want 150, got %d", w.Offset())
	}

	// The media holds exactly 150 bytes; reads past the crash fail.
	d.SetFaultPlan(nil)
	r, err := d.Open("sst")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 150 {
		t.Fatalf("file size: want 150, got %d", r.Size())
	}
}

// TestReaderFaults verifies read-side injection surfaces through ReadAt.
func TestReaderFaults(t *testing.T) {
	d := NewDisk(SSDProfile())
	w := d.Create("f")
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	d.SetFaultPlan(nvm.NewFaultPlan(1).FailReadsEvery(2))
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, err := r.ReadAt(buf, 0); !errors.Is(err, nvm.ErrInjected) {
		t.Fatalf("second read: want ErrInjected, got %v", err)
	}
}
