// Package vfs models the block-storage side of the storage hierarchy: an
// in-memory file system whose reads and writes are charged against a
// device performance profile. Two profiles matter here:
//
//   - an SSD profile (~80 µs access latency, ~0.5 GB/s writes, ~2 GB/s
//     reads) for the paper's DRAM-NVM-SSD experiments (§5.4), and
//   - an NVM-as-block-device profile for the "in-memory mode" baselines,
//     which keep block-format SSTables on NVM (§5: "all SSTables in
//     NoveLSM and MatrixKV are stored in NVM without using SSD").
//
// Unlike the byte-addressable nvm.Device, data here is only reachable
// through explicit file reads/writes — which is exactly why the baselines
// pay serialization and deserialization costs that MioDB avoids.
package vfs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"miodb/internal/nvm"
)

// SSDProfile models a datacenter NVMe SSD.
func SSDProfile() nvm.Profile {
	return nvm.Profile{
		Name:              "ssd",
		ReadLatency:       80 * time.Microsecond,
		WriteLatency:      30 * time.Microsecond, // absorbed by device write cache
		ReadNanosPerByte:  0.5,                   // ≈ 2.0 GB/s
		WriteNanosPerByte: 2.0,                   // ≈ 0.5 GB/s
	}
}

// NVMBlockProfile models NVM accessed through a block/file interface, as
// the baselines use it for SSTables in the in-memory mode: NVM speed, but
// only via explicit I/O.
func NVMBlockProfile() nvm.Profile {
	p := nvm.NVMProfile()
	p.Name = "nvm-block"
	return p
}

// Disk is a simulated block device holding named files.
type Disk struct {
	profile  nvm.Profile
	simulate atomic.Bool
	scale    atomic.Int64 // time scale ×1e6

	mu    sync.Mutex
	files map[string]*file

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// faults, when non-nil, gates file writes (torn-write truncation on
	// injected failures) and reads, sharing the nvm fault vocabulary.
	faults atomic.Pointer[nvm.FaultPlan]
}

type file struct {
	mu   sync.RWMutex
	data []byte
}

// NewDisk creates an empty disk with the given profile. Latency simulation
// starts disabled, matching nvm.Device.
func NewDisk(profile nvm.Profile) *Disk {
	d := &Disk{profile: profile, files: map[string]*file{}}
	d.scale.Store(1_000_000)
	return d
}

// SetSimulation toggles latency injection.
func (d *Disk) SetSimulation(on bool) { d.simulate.Store(on) }

// SetTimeScale scales injected delays (0 disables, 1 = full model).
func (d *Disk) SetTimeScale(scale float64) { d.scale.Store(int64(scale * 1e6)) }

// Profile returns the device profile.
func (d *Disk) Profile() nvm.Profile { return d.profile }

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan.
func (d *Disk) SetFaultPlan(p *nvm.FaultPlan) { d.faults.Store(p) }

// Faults returns the installed fault plan, or nil.
func (d *Disk) Faults() *nvm.FaultPlan { return d.faults.Load() }

func (d *Disk) delay(lat time.Duration, nsPerByte float64, n int) {
	if !d.simulate.Load() {
		return
	}
	scale := float64(d.scale.Load()) / 1e6
	if scale <= 0 {
		return
	}
	nvm.Spin(time.Duration(scale * (float64(lat) + nsPerByte*float64(n))))
}

// Counters returns accumulated traffic (feeds write amplification).
func (d *Disk) Counters() nvm.Counters {
	return nvm.Counters{
		Name:         d.profile.Name,
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}

// ResetCounters zeroes traffic counters between benchmark phases.
func (d *Disk) ResetCounters() {
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
}

// Create creates (or truncates) a file and returns a sequential writer.
func (d *Disk) Create(name string) *Writer {
	d.mu.Lock()
	f := &file{}
	d.files[name] = f
	d.mu.Unlock()
	return &Writer{disk: d, f: f}
}

// Open returns a random-access reader for the named file.
func (d *Disk) Open(name string) (*Reader, error) {
	d.mu.Lock()
	f, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("vfs: file %q not found", name)
	}
	return &Reader{disk: d, f: f}, nil
}

// Remove deletes a file (obsolete SSTables after compaction).
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	delete(d.files, name)
	d.mu.Unlock()
}

// List returns the file names in sorted order.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the bytes currently stored on the disk.
func (d *Disk) TotalSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, f := range d.files {
		f.mu.RLock()
		total += int64(len(f.data))
		f.mu.RUnlock()
	}
	return total
}

// Writer appends to a file sequentially. Not safe for concurrent use.
type Writer struct {
	disk *Disk
	f    *file
	off  int64
}

// Write appends p, charging bandwidth. The disk is unbounded, so writes
// only fail under fault injection: an injected failure may leave a torn
// prefix of p on the media (per the plan's WriteOutcome) before
// returning the error — the partial state recovery must tolerate.
func (w *Writer) Write(p []byte) (int, error) {
	if out := w.disk.faults.Load().CheckWrite(len(p)); out.Err != nil {
		n := 0
		if out.Torn > 0 {
			n = out.Torn
			w.disk.bytesWritten.Add(int64(n))
			w.f.mu.Lock()
			w.f.data = append(w.f.data, p[:n]...)
			w.f.mu.Unlock()
			w.off += int64(n)
		}
		return n, out.Err
	}
	w.disk.bytesWritten.Add(int64(len(p)))
	w.disk.delay(0, w.disk.profile.WriteNanosPerByte, len(p))
	w.f.mu.Lock()
	w.f.data = append(w.f.data, p...)
	w.f.mu.Unlock()
	w.off += int64(len(p))
	return len(p), nil
}

// Offset returns the bytes written so far (the current file size).
func (w *Writer) Offset() int64 { return w.off }

// Sync charges one device write latency, modeling the flush of buffered
// data to stable media.
func (w *Writer) Sync() {
	w.disk.delay(w.disk.profile.WriteLatency, 0, 0)
}

// Reader reads a file at arbitrary offsets. Safe for concurrent use.
type Reader struct {
	disk *Disk
	f    *file
}

// Size returns the current file size.
func (r *Reader) Size() int64 {
	r.f.mu.RLock()
	defer r.f.mu.RUnlock()
	return int64(len(r.f.data))
}

// ReadAt fills p from the given offset, charging one access latency plus
// bandwidth — the block-granularity cost MioDB's byte-addressable design
// avoids.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if err := r.disk.faults.Load().CheckRead(len(p)); err != nil {
		return 0, err
	}
	r.disk.bytesRead.Add(int64(len(p)))
	r.disk.delay(r.disk.profile.ReadLatency, r.disk.profile.ReadNanosPerByte, len(p))
	r.f.mu.RLock()
	defer r.f.mu.RUnlock()
	if off < 0 || off > int64(len(r.f.data)) {
		return 0, fmt.Errorf("vfs: read at %d past size %d", off, len(r.f.data))
	}
	n := copy(p, r.f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("vfs: short read (%d of %d)", n, len(p))
	}
	return n, nil
}
