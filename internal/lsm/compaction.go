package lsm

import (
	"bytes"
	"fmt"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
)

// compactLevel performs one compaction from level into level+1:
// pick inputs (all of L0, or one round-robin file of Ln), gather every
// overlapping file in the next level, merge-sort them dropping shadowed
// versions, and write fresh SSTables into the next level. The rewrite of
// next-level data is the write amplification the paper's Fig 2(d) and
// Fig 11 measure; while L0 is being compacted, incoming flushes stack up
// and the write path throttles — the stall mechanics of §2.3.
func (l *Levels) compactLevel(level int) {
	start := time.Now()

	l.mu.Lock()
	var inputs []*FileMeta
	if level == 0 {
		// All L0 files participate (they overlap arbitrarily).
		inputs = append(inputs, l.files[0]...)
	} else {
		if len(l.files[level]) == 0 {
			l.mu.Unlock()
			return
		}
		ptr := l.compactPtr[level] % len(l.files[level])
		inputs = append(inputs, l.files[level][ptr])
		l.compactPtr[level]++
	}
	// Key range of the inputs.
	var smallest, largest []byte
	for _, f := range inputs {
		if smallest == nil || bytes.Compare(f.Smallest, smallest) < 0 {
			smallest = f.Smallest
		}
		if largest == nil || bytes.Compare(f.Largest, largest) > 0 {
			largest = f.Largest
		}
	}
	// Every next-level file overlapping that range joins the merge.
	next := level + 1
	var overlaps []*FileMeta
	for _, f := range l.files[next] {
		if bytes.Compare(f.Largest, smallest) < 0 || bytes.Compare(f.Smallest, largest) > 0 {
			continue
		}
		overlaps = append(overlaps, f)
	}
	l.mu.Unlock()

	// Merge all inputs. Older duplicates are dropped; tombstones are
	// dropped only when nothing deeper can hold the key.
	all := make([]iterx.Iterator, 0, len(inputs)+len(overlaps))
	for _, f := range inputs {
		all = append(all, f.table.NewIterator())
	}
	for _, f := range overlaps {
		all = append(all, f.table.NewIterator())
	}
	merged := iterx.NewMerging(all...)
	dropTombstones := l.isBottom(next)
	src := iterx.Iterator(newDedup(merged, dropTombstones))

	outputs, err := l.buildTables(src, l.opts.TableSize)
	if err != nil {
		// The simulated disk cannot fail; a build error is a programming
		// error worth surfacing loudly in tests.
		panic(err)
	}

	// Install: drop inputs from both levels, splice outputs into next.
	l.mu.Lock()
	drop := map[uint64]bool{}
	for _, f := range inputs {
		drop[f.ID] = true
	}
	for _, f := range overlaps {
		drop[f.ID] = true
	}
	keep := func(fs []*FileMeta) []*FileMeta {
		out := fs[:0:0]
		for _, f := range fs {
			if !drop[f.ID] {
				out = append(out, f)
			}
		}
		return out
	}
	l.files[level] = keep(l.files[level])
	merged2 := append(keep(l.files[next]), outputs...)
	sortBySmallest(merged2)
	l.files[next] = merged2
	l.mu.Unlock()

	// Remove obsolete files from the disk; open readers hold their data.
	for _, f := range inputs {
		l.opts.Disk.Remove(f.Name)
	}
	for _, f := range overlaps {
		l.opts.Disk.Remove(f.Name)
	}

	if l.opts.Stats != nil {
		l.opts.Stats.AddCompaction(time.Since(start))
	}
}

// isBottom reports whether no level below `level` holds data, so
// tombstones compacted into it can be dropped.
func (l *Levels) isBottom(level int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := level + 1; i < len(l.files); i++ {
		if len(l.files[i]) > 0 {
			return false
		}
	}
	return true
}

func sortBySmallest(fs []*FileMeta) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && bytes.Compare(fs[j].Smallest, fs[j-1].Smallest) < 0; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// dedup yields only the newest version of each key, optionally dropping
// tombstones (bottom-level semantics). Unlike iterx.Visible it keeps
// tombstones when they must shadow deeper levels.
type dedup struct {
	in             iterx.Iterator
	dropTombstones bool
	lastKey        []byte
	valid          bool
}

func newDedup(in iterx.Iterator, dropTombstones bool) *dedup {
	return &dedup{in: in, dropTombstones: dropTombstones}
}

func (d *dedup) advance() {
	for d.in.Valid() {
		k := d.in.Key()
		if d.lastKey != nil && bytes.Equal(k, d.lastKey) {
			d.in.Next()
			continue
		}
		d.lastKey = append(d.lastKey[:0], k...)
		if d.dropTombstones && d.in.Kind() == keys.KindDelete {
			d.in.Next()
			continue
		}
		d.valid = true
		return
	}
	d.valid = false
}

func (d *dedup) SeekToFirst() { d.in.SeekToFirst(); d.lastKey = nil; d.advance() }
func (d *dedup) Seek(key []byte) {
	d.in.Seek(key)
	d.lastKey = nil
	d.advance()
}
func (d *dedup) Next() {
	if !d.valid {
		return
	}
	d.in.Next()
	d.advance()
}
func (d *dedup) Valid() bool     { return d.valid }
func (d *dedup) Key() []byte     { return d.in.Key() }
func (d *dedup) Value() []byte   { return d.in.Value() }
func (d *dedup) Seq() uint64     { return d.in.Seq() }
func (d *dedup) Kind() keys.Kind { return d.in.Kind() }

var _ iterx.Iterator = (*dedup)(nil)

// MergeIntoLevel merges an external (key asc, seq desc) entry stream with
// every file of the target level overlapping [smallest, largest] and
// installs the result back into that level. MatrixKV's column compaction
// uses it to push matrix-container columns straight into L1, bypassing
// the L0 file-count machinery entirely — the fine-grained compaction that
// shortens its stalls.
func (l *Levels) MergeIntoLevel(level int, extra iterx.Iterator, smallest, largest []byte) error {
	if level < 1 || level >= len(l.files) {
		return fmt.Errorf("lsm: MergeIntoLevel(%d) out of range", level)
	}
	start := time.Now()
	l.mu.Lock()
	var overlaps []*FileMeta
	for _, f := range l.files[level] {
		if bytes.Compare(f.Largest, smallest) < 0 || bytes.Compare(f.Smallest, largest) > 0 {
			continue
		}
		overlaps = append(overlaps, f)
	}
	l.mu.Unlock()

	all := make([]iterx.Iterator, 0, len(overlaps)+1)
	all = append(all, extra)
	for _, f := range overlaps {
		all = append(all, f.table.NewIterator())
	}
	src := newDedup(iterx.NewMerging(all...), l.isBottom(level))
	outputs, err := l.buildTables(src, l.opts.TableSize)
	if err != nil {
		return err
	}

	l.mu.Lock()
	drop := map[uint64]bool{}
	for _, f := range overlaps {
		drop[f.ID] = true
	}
	kept := l.files[level][:0:0]
	for _, f := range l.files[level] {
		if !drop[f.ID] {
			kept = append(kept, f)
		}
	}
	kept = append(kept, outputs...)
	sortBySmallest(kept)
	l.files[level] = kept
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, f := range overlaps {
		l.opts.Disk.Remove(f.Name)
	}
	if l.opts.Stats != nil {
		l.opts.Stats.AddCompaction(time.Since(start))
	}
	return nil
}
