// Package lsm implements a classic leveled LSM-tree over SSTables on a
// simulated block device — LevelDB's on-disk half. It is the shared
// substrate for every system in the comparison that keeps block-format
// data:
//
//   - the LevelDB-style baseline (its entire persistent store),
//   - NoveLSM (SSTables below its NVM memtable),
//   - MatrixKV (levels L1+ below the matrix container),
//   - MioDB's DRAM-NVM-SSD mode (SSTables below the elastic buffer).
//
// It reproduces the behaviours the paper measures against: leveled
// compaction with a 10× fanout, L0 file-count write throttling (slowdown)
// and blocking (stop) — the sources of cumulative and interval stalls —
// and the compaction rewrite traffic that dominates write amplification.
package lsm

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/sstable"
	"miodb/internal/stats"
	"miodb/internal/vfs"
)

// Options configures the tree. Zero fields take scaled-down defaults that
// preserve the paper's ratios (64 KB tables standing in for 64 MB, 10×
// fanout, LevelDB's 4/8 L0 thresholds).
type Options struct {
	Disk  *vfs.Disk
	Stats *stats.Recorder
	// TableSize is the target SSTable size.
	TableSize int64
	// L1Size caps level 1; level k caps at L1Size × Fanout^(k-1).
	L1Size int64
	// Fanout is the per-level size ratio (paper: amplification factor 10).
	Fanout int
	// NumLevels bounds the tree depth.
	NumLevels int
	// BlockSize is the SSTable data block size.
	BlockSize int
	// BloomBitsPerKey sizes per-table bloom filters.
	BloomBitsPerKey int
	// Compression flate-compresses SSTable data blocks (off by default;
	// see sstable.BuilderOptions.Compression).
	Compression bool
	// L0Slowdown and L0Stop are L0 file-count thresholds for write
	// throttling and write blocking.
	L0Slowdown, L0Stop int
}

func (o Options) withDefaults() Options {
	if o.TableSize <= 0 {
		o.TableSize = 64 << 10
	}
	if o.L1Size <= 0 {
		o.L1Size = 10 * o.TableSize
	}
	if o.Fanout <= 0 {
		o.Fanout = 10
	}
	if o.NumLevels <= 0 {
		o.NumLevels = 7
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 16
	}
	if o.L0Slowdown <= 0 {
		o.L0Slowdown = 4
	}
	if o.L0Stop <= 0 {
		o.L0Stop = 8
	}
	return o
}

// FileMeta describes one SSTable in the tree.
type FileMeta struct {
	ID                uint64
	Name              string
	Size              int64
	Smallest, Largest []byte
	table             *sstable.Table
}

// Levels is the leveled tree. All public methods are safe for concurrent
// use; one background goroutine runs compactions.
type Levels struct {
	opts Options

	mu         sync.Mutex
	cond       *sync.Cond // signaled when shape changes (L0 drained, etc.)
	files      [][]*FileMeta
	nextID     uint64
	compacting bool
	closed     bool
	compactPtr []int // round-robin compaction cursor per level

	wg sync.WaitGroup
}

// New creates an empty tree and starts its compaction goroutine.
func New(opts Options) *Levels {
	opts = opts.withDefaults()
	l := &Levels{
		opts:       opts,
		files:      make([][]*FileMeta, opts.NumLevels),
		compactPtr: make([]int, opts.NumLevels),
		nextID:     1,
	}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.compactionLoop()
	return l
}

// Close stops the compaction goroutine (after finishing in-flight work).
func (l *Levels) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
}

// Options returns the effective options.
func (l *Levels) Options() Options { return l.opts }

// FlushToL0 serializes the iterator's content into one new L0 SSTable.
// It blocks the caller for the full serialization + device write — the
// flush cost the paper measures in Fig 2(c) and Table 1.
func (l *Levels) FlushToL0(it iterx.Iterator) error {
	metas, err := l.buildTables(it, 1<<62) // single table regardless of size
	if err != nil {
		return err
	}
	l.mu.Lock()
	// L0 is ordered newest first.
	l.files[0] = append(metas, l.files[0]...)
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// buildTables writes the iterator into SSTables of at most maxBytes each.
func (l *Levels) buildTables(it iterx.Iterator, maxBytes int64) ([]*FileMeta, error) {
	var out []*FileMeta
	var b *sstable.Builder
	var meta *FileMeta
	var w *vfs.Writer

	finish := func() error {
		if b == nil {
			return nil
		}
		if err := b.Finish(); err != nil {
			return err
		}
		r, err := l.opts.Disk.Open(meta.Name)
		if err != nil {
			return err
		}
		t, err := sstable.Open(r, l.opts.Stats)
		if err != nil {
			return err
		}
		meta.table = t
		meta.Size = t.Size
		meta.Smallest = t.Smallest
		meta.Largest = t.Largest
		out = append(out, meta)
		b, meta, w = nil, nil, nil
		return nil
	}

	for it.SeekToFirst(); it.Valid(); it.Next() {
		if b == nil {
			l.mu.Lock()
			id := l.nextID
			l.nextID++
			l.mu.Unlock()
			meta = &FileMeta{ID: id, Name: fmt.Sprintf("%06d.sst", id)}
			w = l.opts.Disk.Create(meta.Name)
			b = sstable.NewBuilder(w, sstable.BuilderOptions{
				BlockSize:       l.opts.BlockSize,
				BloomBitsPerKey: l.opts.BloomBitsPerKey,
				Stats:           l.opts.Stats,
				Compression:     l.opts.Compression,
			})
		}
		if err := b.Add(it.Key(), it.Seq(), it.Kind(), it.Value()); err != nil {
			return nil, err
		}
		if b.EstimatedSize() >= maxBytes {
			if err := finish(); err != nil {
				return nil, err
			}
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	_ = w
	return out, nil
}

// L0Count returns the number of level-0 tables (the stall signal).
func (l *Levels) L0Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.files[0])
}

// WriteDelay reports how the write path must throttle right now:
// a positive sleep duration when L0 is at the slowdown threshold
// (cumulative stall), or block=true when it is at the stop threshold
// (interval stall).
func (l *Levels) WriteDelay() (sleep time.Duration, block bool) {
	n := l.L0Count()
	switch {
	case n >= l.opts.L0Stop:
		return 0, true
	case n >= l.opts.L0Slowdown:
		return time.Millisecond, false // LevelDB's 1 ms per-write slowdown
	default:
		return 0, false
	}
}

// WaitL0BelowStop blocks until L0 drains below the stop threshold,
// returning the time spent blocked (the interval stall).
func (l *Levels) WaitL0BelowStop() time.Duration {
	start := time.Now()
	l.mu.Lock()
	for len(l.files[0]) >= l.opts.L0Stop && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
	return time.Since(start)
}

// Get searches the tree for the newest version of key.
func (l *Levels) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	l.mu.Lock()
	snapshot := make([][]*FileMeta, len(l.files))
	for i, fs := range l.files {
		snapshot[i] = fs
	}
	l.mu.Unlock()

	// L0: files overlap arbitrarily, and when two buffers feed L0 (e.g.
	// NoveLSM's DRAM and NVM memtables) their sequence ranges interleave
	// across files — so pick the newest version by sequence, not by file
	// order.
	var bestV []byte
	var bestS uint64
	var bestK keys.Kind
	bestFound := false
	for _, f := range snapshot[0] {
		if !keyInRange(key, f) {
			continue
		}
		if v, s, k, found := f.table.Get(key); found && (!bestFound || s > bestS) {
			bestV, bestS, bestK, bestFound = v, s, k, true
		}
	}
	if bestFound {
		return bestV, bestS, bestK, true
	}
	// L1+: at most one file can contain the key.
	for level := 1; level < len(snapshot); level++ {
		for _, f := range snapshot[level] {
			if keyInRange(key, f) {
				if v, s, k, found := f.table.Get(key); found {
					return v, s, k, true
				}
				break
			}
			if bytes.Compare(key, f.Smallest) < 0 {
				break // sorted level; no later file can contain key
			}
		}
	}
	return nil, 0, 0, false
}

func keyInRange(key []byte, f *FileMeta) bool {
	return bytes.Compare(key, f.Smallest) >= 0 && bytes.Compare(key, f.Largest) <= 0
}

// Iterators returns one iterator per live table (newest first), for scans.
func (l *Levels) Iterators() []iterx.Iterator {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []iterx.Iterator
	for _, fs := range l.files {
		for _, f := range fs {
			out = append(out, f.table.NewIterator())
		}
	}
	return out
}

// LevelSizes returns the byte size of each level (diagnostics).
func (l *Levels) LevelSizes() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.files))
	for i, fs := range l.files {
		for _, f := range fs {
			out[i] += f.Size
		}
	}
	return out
}

// TableCount returns the total number of live SSTables.
func (l *Levels) TableCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, fs := range l.files {
		n += len(fs)
	}
	return n
}

// WaitIdle blocks until no compaction is needed or running (benchmarks
// call it to separate load and read phases).
func (l *Levels) WaitIdle() {
	l.mu.Lock()
	for (l.compacting || l.pickLocked() >= 0) && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// maxLevelBytes returns the size cap of a level (level ≥ 1).
func (l *Levels) maxLevelBytes(level int) int64 {
	size := l.opts.L1Size
	for i := 1; i < level; i++ {
		size *= int64(l.opts.Fanout)
	}
	return size
}

// pickLocked chooses the level most in need of compaction, or -1.
// L0 scores by file count, deeper levels by size ratio, LevelDB-style.
func (l *Levels) pickLocked() int {
	bestLevel, bestScore := -1, 1.0
	score0 := float64(len(l.files[0])) / float64(l.opts.L0Slowdown)
	if score0 >= bestScore {
		bestLevel, bestScore = 0, score0
	}
	for level := 1; level < len(l.files)-1; level++ {
		var size int64
		for _, f := range l.files[level] {
			size += f.Size
		}
		score := float64(size) / float64(l.maxLevelBytes(level))
		if score > bestScore {
			bestLevel, bestScore = level, score
		}
	}
	return bestLevel
}

func (l *Levels) compactionLoop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for l.pickLocked() < 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		level := l.pickLocked()
		l.compacting = true
		l.mu.Unlock()

		l.compactLevel(level)

		l.mu.Lock()
		l.compacting = false
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// FlushToL0Sized is FlushToL0 splitting the output into tables of at most
// maxBytes each — used when a very large buffer (NoveLSM's NVM memtable)
// spills into L0 as multiple SSTables.
func (l *Levels) FlushToL0Sized(it iterx.Iterator, maxBytes int64) error {
	if maxBytes <= 0 {
		maxBytes = l.opts.TableSize
	}
	metas, err := l.buildTables(it, maxBytes)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.files[0] = append(metas, l.files[0]...)
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}
