package lsm

import (
	"fmt"
	"testing"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/stats"
)

func TestFlushToL0SizedSplitsTables(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	kvs := map[string]string{}
	for i := 0; i < 400; i++ {
		kvs[fmt.Sprintf("key-%05d", i)] = fmt.Sprintf("%0128d", i)
	}
	// ~56 KB of payload split into ≤8 KB tables → several L0 files.
	if err := l.FlushToL0Sized(memIter(t, kvs, 1), 8<<10); err != nil {
		t.Fatal(err)
	}
	if n := l.L0Count(); n < 4 {
		t.Errorf("FlushToL0Sized produced %d tables, expected a split", n)
	}
	for k, v := range kvs {
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q ok=%v", k, got, ok)
		}
	}
}

// colSource adapts a slice to iterx.Iterator for MergeIntoLevel.
type colSource struct {
	keys, vals []string
	seqs       []uint64
	pos        int
}

func (c *colSource) SeekToFirst() { c.pos = 0 }
func (c *colSource) Seek(k []byte) {
	c.pos = 0
	for c.pos < len(c.keys) && c.keys[c.pos] < string(k) {
		c.pos++
	}
}
func (c *colSource) Next()           { c.pos++ }
func (c *colSource) Valid() bool     { return c.pos < len(c.keys) }
func (c *colSource) Key() []byte     { return []byte(c.keys[c.pos]) }
func (c *colSource) Value() []byte   { return []byte(c.vals[c.pos]) }
func (c *colSource) Seq() uint64     { return c.seqs[c.pos] }
func (c *colSource) Kind() keys.Kind { return keys.KindSet }

var _ iterx.Iterator = (*colSource)(nil)

func TestMergeIntoLevelReplacesOverlaps(t *testing.T) {
	st := &stats.Recorder{}
	opts := testOptions(st)
	opts.L0Slowdown = 1 // drain L0 eagerly so the seed data settles in L1
	l := New(opts)
	defer l.Close()

	// Seed L1 via a normal flush + compaction drain.
	base := map[string]string{}
	for i := 0; i < 200; i++ {
		base[fmt.Sprintf("key-%05d", i)] = "old"
	}
	if err := l.FlushToL0(memIter(t, base, 1)); err != nil {
		t.Fatal(err)
	}
	l.WaitIdle()

	// Column: newer versions of a key subrange, straight into L1.
	col := &colSource{}
	for i := 50; i < 100; i++ {
		col.keys = append(col.keys, fmt.Sprintf("key-%05d", i))
		col.vals = append(col.vals, "new")
		col.seqs = append(col.seqs, uint64(1000+i))
	}
	if err := l.MergeIntoLevel(1, col, []byte(col.keys[0]), []byte(col.keys[len(col.keys)-1])); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%05d", i)
		want := "old"
		if i >= 50 && i < 100 {
			want = "new"
		}
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q ok=%v, want %q", k, got, ok, want)
		}
	}
	// Level ordering invariant: files sorted, non-overlapping.
	l.mu.Lock()
	defer l.mu.Unlock()
	for lvl := 1; lvl < len(l.files); lvl++ {
		for i := 1; i < len(l.files[lvl]); i++ {
			if string(l.files[lvl][i-1].Largest) >= string(l.files[lvl][i].Smallest) {
				t.Fatalf("level %d files overlap after MergeIntoLevel", lvl)
			}
		}
	}
}

func TestMergeIntoLevelValidation(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	if err := l.MergeIntoLevel(0, &colSource{}, nil, nil); err == nil {
		t.Error("MergeIntoLevel(0) accepted")
	}
	if err := l.MergeIntoLevel(99, &colSource{}, nil, nil); err == nil {
		t.Error("MergeIntoLevel(99) accepted")
	}
}

func TestL0GetPicksNewestBySeq(t *testing.T) {
	// Two L0 tables with interleaved sequence ranges for the same key —
	// the NoveLSM dual-pipeline case. File order must not decide.
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	older := &colSource{keys: []string{"k"}, vals: []string{"newer-seq"}, seqs: []uint64{100}}
	if err := l.FlushToL0(older); err != nil {
		t.Fatal(err)
	}
	// This file is added later (newer by file order) but holds an older seq.
	newerFile := &colSource{keys: []string{"k"}, vals: []string{"older-seq"}, seqs: []uint64{50}}
	if err := l.FlushToL0(newerFile); err != nil {
		t.Fatal(err)
	}
	v, seq, _, ok := l.Get([]byte("k"))
	if !ok || string(v) != "newer-seq" || seq != 100 {
		t.Fatalf("L0 Get = %q seq=%d, want newest by sequence", v, seq)
	}
}

func TestCompressedLevels(t *testing.T) {
	st := &stats.Recorder{}
	opts := testOptions(st)
	opts.Compression = true
	l := New(opts)
	defer l.Close()
	kvs := map[string]string{}
	for i := 0; i < 300; i++ {
		kvs[fmt.Sprintf("key-%05d", i)] = fmt.Sprintf("%0512d", i) // compressible
	}
	if err := l.FlushToL0(memIter(t, kvs, 1)); err != nil {
		t.Fatal(err)
	}
	l.WaitIdle()
	for k, v := range kvs {
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("compressed-levels Get(%s) broken", k)
		}
	}
	// Disk footprint must be well below the raw payload.
	if sz := l.opts.Disk.TotalSize(); sz > 300*512/2 {
		t.Errorf("compressed levels hold %d bytes for ~150KB payload", sz)
	}
}
