package lsm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
)

func testOptions(st *stats.Recorder) Options {
	return Options{
		Disk:      vfs.NewDisk(vfs.NVMBlockProfile()),
		Stats:     st,
		TableSize: 8 << 10, // small tables to force deep trees quickly
		L1Size:    32 << 10,
		Fanout:    10,
		NumLevels: 5,
	}
}

// memIter builds a memtable-backed iterator with the given entries.
func memIter(t testing.TB, kvs map[string]string, seqBase uint64) iterx.Iterator {
	t.Helper()
	dram := nvm.NewDevice(vaddr.NewSpace(), nvm.DRAMProfile())
	mt, err := memtable.New(dram, 1<<30, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqBase
	for k, v := range kvs {
		kind := keys.KindSet
		if v == "<del>" {
			kind = keys.KindDelete
			v = ""
		}
		if err := mt.Add([]byte(k), []byte(v), seq, kind); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	return mt.NewIterator()
}

func TestFlushAndGet(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	kvs := map[string]string{}
	for i := 0; i < 200; i++ {
		kvs[fmt.Sprintf("key-%04d", i)] = fmt.Sprintf("val-%04d", i)
	}
	if err := l.FlushToL0(memIter(t, kvs, 1)); err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q ok=%v", k, got, ok)
		}
	}
	if _, _, _, ok := l.Get([]byte("missing")); ok {
		t.Error("found missing key")
	}
}

func TestCompactionReducesL0AndPreservesData(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(7))
	seq := uint64(1)
	for flush := 0; flush < 12; flush++ {
		kvs := map[string]string{}
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("key-%05d", rnd.Intn(800))
			v := fmt.Sprintf("val-%d-%d", flush, i)
			kvs[k] = v
			golden[k] = v
		}
		if err := l.FlushToL0(memIter(t, kvs, seq)); err != nil {
			t.Fatal(err)
		}
		seq += 1000
	}
	l.WaitIdle()
	if n := l.L0Count(); n >= l.opts.L0Slowdown {
		t.Errorf("L0 still has %d tables after WaitIdle", n)
	}
	for k, v := range golden {
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("after compaction Get(%s) = %q ok=%v, want %q", k, got, ok, v)
		}
	}
	// Compaction must have produced rewrite traffic (write amplification).
	snap := st.Snapshot()
	if snap.Compactions == 0 {
		t.Error("no compactions ran")
	}
	sizes := l.LevelSizes()
	deeper := int64(0)
	for _, s := range sizes[1:] {
		deeper += s
	}
	if deeper == 0 {
		t.Error("no data reached levels below L0")
	}
}

func TestTombstonesShadowAndDropAtBottom(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	base := map[string]string{}
	for i := 0; i < 100; i++ {
		base[fmt.Sprintf("key-%03d", i)] = "v"
	}
	if err := l.FlushToL0(memIter(t, base, 1)); err != nil {
		t.Fatal(err)
	}
	dels := map[string]string{}
	for i := 0; i < 100; i += 2 {
		dels[fmt.Sprintf("key-%03d", i)] = "<del>"
	}
	if err := l.FlushToL0(memIter(t, dels, 1000)); err != nil {
		t.Fatal(err)
	}
	// Tombstones must shadow older values immediately.
	_, _, kind, ok := l.Get([]byte("key-000"))
	if !ok || kind != keys.KindDelete {
		t.Fatalf("Get(key-000): kind=%d ok=%v, want tombstone", kind, ok)
	}
	if v, _, kind, ok := l.Get([]byte("key-001")); !ok || kind != keys.KindSet || string(v) != "v" {
		t.Fatal("undeleted key broken")
	}
}

func TestMergingScanAcrossLevels(t *testing.T) {
	st := &stats.Recorder{}
	l := New(testOptions(st))
	defer l.Close()
	golden := map[string]string{}
	seq := uint64(1)
	for flush := 0; flush < 8; flush++ {
		kvs := map[string]string{}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%05d", (flush*53+i*11)%500)
			kvs[k] = fmt.Sprintf("v-%d-%d", flush, i)
		}
		if err := l.FlushToL0(memIter(t, kvs, seq)); err != nil {
			t.Fatal(err)
		}
		seq += 1000
		for k, v := range kvs {
			golden[k] = v
		}
	}
	l.WaitIdle()
	scan := iterx.NewVisible(iterx.NewMerging(l.Iterators()...))
	seen := map[string]string{}
	var prev string
	for scan.SeekToFirst(); scan.Valid(); scan.Next() {
		k := string(scan.Key())
		if prev != "" && k <= prev {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = k
		seen[k] = string(scan.Value())
	}
	if len(seen) != len(golden) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(golden))
	}
	for k, v := range golden {
		if seen[k] != v {
			t.Fatalf("scan[%s] = %q, want %q", k, seen[k], v)
		}
	}
}

func TestWriteDelaySignals(t *testing.T) {
	// Levels with compaction effectively stalled (we never wait) —
	// directly exercise the threshold logic by stuffing L0.
	st := &stats.Recorder{}
	opts := testOptions(st)
	opts.L0Slowdown = 2
	opts.L0Stop = 4
	l := New(opts)
	defer l.Close()

	if sleep, block := l.WriteDelay(); sleep != 0 || block {
		t.Error("fresh tree should not throttle")
	}
	seq := uint64(1)
	for i := 0; i < 6; i++ {
		kvs := map[string]string{fmt.Sprintf("k%d", i): "v"}
		if err := l.FlushToL0(memIter(t, kvs, seq)); err != nil {
			t.Fatal(err)
		}
		seq += 10
	}
	// Depending on compaction progress L0 may already have drained; force
	// the check loop to observe a drained tree eventually.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, block := l.WriteDelay(); !block {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("L0 never drained below stop threshold")
		}
		time.Sleep(time.Millisecond)
	}
	l.WaitIdle()
}

func TestLevelSizeCapsRespectedEventually(t *testing.T) {
	st := &stats.Recorder{}
	opts := testOptions(st)
	l := New(opts)
	defer l.Close()
	seq := uint64(1)
	rnd := rand.New(rand.NewSource(3))
	for flush := 0; flush < 20; flush++ {
		kvs := map[string]string{}
		for i := 0; i < 200; i++ {
			kvs[fmt.Sprintf("key-%06d", rnd.Intn(5000))] = fmt.Sprintf("%0128d", i)
		}
		if err := l.FlushToL0(memIter(t, kvs, seq)); err != nil {
			t.Fatal(err)
		}
		seq += 1000
	}
	l.WaitIdle()
	sizes := l.LevelSizes()
	for level := 1; level < len(sizes)-1; level++ {
		if sizes[level] > 2*l.maxLevelBytes(level) {
			t.Errorf("level %d size %d far exceeds cap %d", level, sizes[level], l.maxLevelBytes(level))
		}
	}
}
