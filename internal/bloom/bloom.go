// Package bloom implements the mergeable bloom filter MioDB attaches to
// every PMTable (§4.6): fixed-size bit arrays that can be OR-merged when
// two PMTables are compacted, so filters propagate down the elastic buffer
// without rehashing any key.
//
// The filter uses double hashing (Kirsch–Mitzenmatcher) over a 64-bit FNV-1a
// base hash, the standard construction in LSM stores. The paper configures
// 16 bits per key; with the optimal k = bits/key × ln 2 ≈ 11 probes the
// false-positive rate is ≈ 4.6×10⁻⁴ — and doubles in effect each time two
// full filters merge, which is exactly the level-count trade-off Fig 9
// studies.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a fixed-size mergeable bloom filter. It is not safe for
// concurrent mutation; the store mutates filters only from the single
// goroutine that owns the table being built or merged.
type Filter struct {
	bits   []uint64
	probes int
	nkeys  int
}

// New creates a filter sized for expectedKeys at bitsPerKey (the paper uses
// 16). All PMTable filters in one store are created with identical
// parameters so that Merge is well defined.
func New(expectedKeys, bitsPerKey int) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	nbits := expectedKeys * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	probes := int(float64(bitsPerKey) * math.Ln2)
	if probes < 1 {
		probes = 1
	}
	if probes > 30 {
		probes = 30
	}
	return &Filter{
		bits:   make([]uint64, (nbits+63)/64),
		probes: probes,
	}
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h := hash64(key)
	delta := h>>17 | h<<47
	n := uint64(len(f.bits)) * 64
	for i := 0; i < f.probes; i++ {
		pos := h % n
		f.bits[pos/64] |= 1 << (pos % 64)
		h += delta
	}
	f.nkeys++
}

// MayContain reports whether key was possibly added. False means definitely
// absent.
func (f *Filter) MayContain(key []byte) bool {
	h := hash64(key)
	delta := h>>17 | h<<47
	n := uint64(len(f.bits)) * 64
	for i := 0; i < f.probes; i++ {
		pos := h % n
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Merge ORs other into f. Both filters must have been created with the same
// size and probe count; Merge returns an error otherwise. This is the
// paper's "OR operations to implement a mergeable bloom filter".
func (f *Filter) Merge(other *Filter) error {
	if other == nil {
		return nil
	}
	if len(f.bits) != len(other.bits) || f.probes != other.probes {
		return fmt.Errorf("bloom: merging incompatible filters (%d/%d bits, %d/%d probes)",
			len(f.bits)*64, len(other.bits)*64, f.probes, other.probes)
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.nkeys += other.nkeys
	return nil
}

// Keys returns the number of keys added (including via Merge).
func (f *Filter) Keys() int { return f.nkeys }

// FillRatio returns the fraction of set bits, a proxy for the
// false-positive rate ((fill)^probes).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(len(f.bits)*64)
}

// FalsePositiveRate estimates the current false-positive probability.
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.probes))
}

// Encode serializes the filter for storage in an SSTable or superblock.
func (f *Filter) Encode() []byte {
	out := make([]byte, 12+len(f.bits)*8)
	binary.LittleEndian.PutUint32(out[0:4], uint32(f.probes))
	binary.LittleEndian.PutUint64(out[4:12], uint64(f.nkeys))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[12+i*8:], w)
	}
	return out
}

// Decode reconstructs a filter serialized by Encode.
func Decode(data []byte) (*Filter, error) {
	if len(data) < 12 || (len(data)-12)%8 != 0 {
		return nil, fmt.Errorf("bloom: malformed filter encoding (%d bytes)", len(data))
	}
	f := &Filter{
		probes: int(binary.LittleEndian.Uint32(data[0:4])),
		nkeys:  int(binary.LittleEndian.Uint64(data[4:12])),
		bits:   make([]uint64, (len(data)-12)/8),
	}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[12+i*8:])
	}
	return f, nil
}

func hash64(key []byte) uint64 {
	// FNV-1a, inlined to avoid the hash/fnv allocation.
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// Clone returns an independent copy of the filter. Merges build their
// result on a clone so that readers concurrently probing the source
// filters never observe a mutation.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:   make([]uint64, len(f.bits)),
		probes: f.probes,
		nkeys:  f.nkeys,
	}
	copy(c.bits, f.bits)
	return c
}
