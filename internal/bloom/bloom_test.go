package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 16)
	for i := 0; i < 1000; i++ {
		f.Add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(key(i)) {
			t.Fatalf("false negative for %s", key(i))
		}
	}
	if f.Keys() != 1000 {
		t.Errorf("Keys() = %d", f.Keys())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 16)
	for i := 0; i < 10000; i++ {
		f.Add(key(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 16 bits/key with 11 probes has theoretical FPR ≈ 4.6e-4;
	// allow generous slack for hash quality.
	if rate > 0.01 {
		t.Errorf("false positive rate %.4f too high", rate)
	}
	if est := f.FalsePositiveRate(); est > 0.01 {
		t.Errorf("estimated FPR %.4f too high", est)
	}
}

func TestMerge(t *testing.T) {
	a := New(1000, 16)
	b := New(1000, 16)
	for i := 0; i < 500; i++ {
		a.Add(key(i))
	}
	for i := 500; i < 1000; i++ {
		b.Add(key(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !a.MayContain(key(i)) {
			t.Fatalf("merged filter lost %s", key(i))
		}
	}
	if a.Keys() != 1000 {
		t.Errorf("merged Keys() = %d", a.Keys())
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(1000, 16)
	b := New(100000, 16)
	if err := a.Merge(b); err == nil {
		t.Error("merging different-size filters should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op, got %v", err)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	// Property: a key added to either side is present after merge.
	f := func(ks [][]byte) bool {
		a, b := New(64, 16), New(64, 16)
		for i, k := range ks {
			if i%2 == 0 {
				a.Add(k)
			} else {
				b.Add(k)
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for _, k := range ks {
			if !a.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := New(256, 16)
	for i := 0; i < 256; i++ {
		f.Add(key(i))
	}
	dec, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if !dec.MayContain(key(i)) {
			t.Fatalf("decoded filter lost %s", key(i))
		}
	}
	if dec.Keys() != f.Keys() || dec.probes != f.probes {
		t.Error("decoded metadata mismatch")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("Decode of garbage should fail")
	}
}

func TestTinyAndDegenerateFilters(t *testing.T) {
	f := New(0, 0) // clamped internally
	f.Add([]byte("x"))
	if !f.MayContain([]byte("x")) {
		t.Error("tiny filter false negative")
	}
	empty := New(100, 16)
	if empty.FillRatio() != 0 {
		t.Error("empty filter has set bits")
	}
}
