package vaddr

// Clone creates a new region in the space with the same chunk size as src,
// bulk-copies src's entire allocated extent into it chunk-by-chunk, and
// returns the new region. Intra-region offsets are preserved exactly, so an
// address a pointing into src maps to the identical offset in the clone:
//
//	clone.Base() + a.Offset()
//
// This is the machinery behind one-piece flushing (§4.2): the immutable
// MemTable's arena is copied to NVM as one batched memcpy, after which a
// background pass "swizzles" every stored pointer by rebasing its region
// index — see pmtable.Swizzle.
//
// The destination meter is charged once for the full transfer, modeling a
// single streaming write at device bandwidth.
func (s *Space) Clone(src *Region, meter Meter) *Region {
	dst := s.NewRegion(src.chunkSize, meter)

	src.mu.Lock()
	extent := src.allocOff
	src.mu.Unlock()

	dst.mu.Lock()
	if err := dst.ensureLocked(extent); err != nil {
		dst.mu.Unlock()
		panic(err)
	}
	dst.allocOff = extent
	dst.mu.Unlock()

	if extent > 0 {
		if meter != nil {
			meter.OnWrite(int(extent))
		}
		srcChunks := *src.chunks.Load()
		dstChunks := *dst.chunks.Load()
		remaining := extent
		for i := 0; remaining > 0; i++ {
			n := int64(src.chunkSize)
			if n > remaining {
				n = remaining
			}
			copy(dstChunks[i][:n], srcChunks[i][:n])
			remaining -= n
		}
	}
	return dst
}

// Rebase translates an address from one region's space to another region
// created by Clone: same offset, new region index. Nil stays nil and
// addresses outside src are returned unchanged.
func Rebase(a Addr, src, dst *Region) Addr {
	if a.IsNil() || a.Region() != src.index {
		return a
	}
	return dst.base.Add(a.Offset())
}
