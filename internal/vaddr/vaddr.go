// Package vaddr implements a 64-bit virtual address space over growable,
// chunked byte arenas.
//
// It is the foundation of the simulated byte-addressable NVM: persistent
// data structures (skip lists, write-ahead logs, superblocks) store links
// between nodes as Addr values — plain uint64 virtual addresses — instead of
// Go pointers. The Go garbage collector never scans arena contents, which
// sidesteps the classic problem of building persistent pointer-based
// structures in a garbage-collected language, and mirrors how a real
// persistent-memory program addresses a mapped DCPMM region.
//
// Address layout (64 bits):
//
//	[ region index : 24 bits ][ offset within region : 40 bits ]
//
// Each region owns up to 1 TiB of virtual space, backed lazily by fixed-size
// chunks. Chunks never move once allocated, so readers may hold byte slices
// into a region while other goroutines allocate — the single-writer /
// many-reader discipline used throughout the store.
//
// Addr 0 is the nil address: region 0 reserves its first word so that no
// live object is ever placed at address 0.
package vaddr

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a virtual address inside a Space. The zero value is the nil
// address and never refers to a live object.
type Addr uint64

// NilAddr is the zero Addr, used as the null link in persistent structures.
const NilAddr Addr = 0

const (
	offsetBits = 40
	offsetMask = (1 << offsetBits) - 1

	// MaxRegionSize is the largest virtual extent of a single region.
	MaxRegionSize = int64(1) << offsetBits
)

// Region returns the region index encoded in the address.
func (a Addr) Region() uint32 { return uint32(a >> offsetBits) }

// Offset returns the byte offset within the region.
func (a Addr) Offset() int64 { return int64(a & offsetMask) }

// Add returns the address n bytes past a. It must not cross a region
// boundary; callers allocate objects so that they never do.
func (a Addr) Add(n int64) Addr { return a + Addr(n) }

// IsNil reports whether a is the nil address.
func (a Addr) IsNil() bool { return a == NilAddr }

// String renders the address as region:offset for diagnostics.
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%#x", a.Region(), a.Offset())
}

// Meter observes traffic into and out of a region. The NVM and SSD device
// models implement it to charge bandwidth/latency costs and to account
// bytes for the write-amplification metric.
type Meter interface {
	// OnRead is invoked before n bytes are read from the region.
	OnRead(n int)
	// OnWrite is invoked before n bytes are written to the region.
	OnWrite(n int)
}

// Space is a collection of regions forming one virtual address space.
// A Space is safe for concurrent use.
type Space struct {
	mu      sync.Mutex
	regions atomic.Pointer[[]*Region]
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	s := &Space{}
	empty := make([]*Region, 0, 16)
	s.regions.Store(&empty)
	return s
}

// NewRegion creates a region with the given chunk size (rounded up to a
// power of two, minimum 4 KiB). Objects allocated in the region must fit in
// a single chunk. meter may be nil.
func (s *Space) NewRegion(chunkSize int, meter Meter) *Region {
	if chunkSize < 4096 {
		chunkSize = 4096
	}
	// Round up to a power of two so offset math stays cheap.
	cs := 4096
	for cs < chunkSize {
		cs <<= 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.regions.Load()
	idx := uint32(len(cur))
	if int64(idx) >= 1<<24 {
		panic("vaddr: region index space exhausted")
	}
	r := &Region{
		space:     s,
		index:     idx,
		base:      Addr(uint64(idx) << offsetBits),
		chunkSize: cs,
		chunkMask: int64(cs - 1),
		meter:     meter,
	}
	chunks := make([][]byte, 0, 8)
	r.chunks.Store(&chunks)
	if idx == 0 {
		// Reserve the first word of region 0 so that Addr 0 is never a
		// live object: the nil-address invariant.
		if _, err := r.Alloc(8); err != nil {
			panic(err)
		}
	}
	next := make([]*Region, len(cur)+1)
	copy(next, cur)
	next[idx] = r
	s.regions.Store(&next)
	return r
}

// Restore places a region at a specific index — the checkpoint-image
// loader rebuilding a space whose region indices are baked into persisted
// virtual addresses. The slot must be vacant; gaps below it are filled
// with nil entries (they were volatile regions not captured in the image).
func (s *Space) Restore(index uint32, chunkSize int, meter Meter) (*Region, error) {
	if chunkSize < 4096 {
		chunkSize = 4096
	}
	cs := 4096
	for cs < chunkSize {
		cs <<= 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.regions.Load()
	if int(index) < len(cur) && cur[index] != nil {
		return nil, fmt.Errorf("vaddr: restore into occupied region slot %d", index)
	}
	r := &Region{
		space:     s,
		index:     index,
		base:      Addr(uint64(index) << offsetBits),
		chunkSize: cs,
		chunkMask: int64(cs - 1),
		meter:     meter,
	}
	chunks := make([][]byte, 0, 8)
	r.chunks.Store(&chunks)
	n := len(cur)
	if int(index) >= n {
		n = int(index) + 1
	}
	next := make([]*Region, n)
	copy(next, cur)
	next[index] = r
	s.regions.Store(&next)
	return r, nil
}

// Region returns the region with the given index, or nil if none exists.
func (s *Space) Region(index uint32) *Region {
	cur := *s.regions.Load()
	if int(index) >= len(cur) {
		return nil
	}
	return cur[index]
}

// RegionOf resolves the region containing addr, or nil for NilAddr or a
// released region.
func (s *Space) RegionOf(addr Addr) *Region {
	if addr.IsNil() {
		return nil
	}
	return s.Region(addr.Region())
}

// Release detaches a region from the space: new allocations fail, and
// address resolution through the space no longer finds it, so the Go
// garbage collector reclaims the chunks once the last direct holder drops
// its reference. A reader that already resolved the region keeps seeing
// intact (stale but consistent) data — the property the stores rely on
// when they retire memtables and arenas while lock-free readers may still
// be traversing them (arena-granularity garbage collection, mirroring the
// paper's lazy memory freeing).
func (s *Space) Release(r *Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.regions.Load()
	if int(r.index) >= len(cur) || cur[r.index] != r {
		return // already released
	}
	next := make([]*Region, len(cur))
	copy(next, cur)
	next[r.index] = nil
	s.regions.Store(&next)
	r.released.Store(true)
}

// Regions returns a snapshot of the live regions (nil entries elided).
func (s *Space) Regions() []*Region {
	cur := *s.regions.Load()
	out := make([]*Region, 0, len(cur))
	for _, r := range cur {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Region is a growable arena inside a Space. Allocation is bump-pointer;
// individual objects are never freed — the whole region is released at once
// when the structures inside it become garbage.
type Region struct {
	space     *Space
	index     uint32
	base      Addr
	chunkSize int
	chunkMask int64
	meter     Meter
	released  atomic.Bool

	mu       sync.Mutex // guards allocOff and chunk growth
	allocOff int64
	chunks   atomic.Pointer[[][]byte] // copy-on-append; chunks never move
}

// Index returns the region's index within its Space.
func (r *Region) Index() uint32 { return r.index }

// Space returns the address space the region belongs to.
func (r *Region) Space() *Space { return r.space }

// Base returns the first virtual address of the region.
func (r *Region) Base() Addr { return r.base }

// ChunkSize returns the backing chunk size in bytes.
func (r *Region) ChunkSize() int { return r.chunkSize }

// Size returns the number of bytes allocated so far.
func (r *Region) Size() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.allocOff
}

// Footprint returns the bytes of backing memory currently committed.
func (r *Region) Footprint() int64 {
	return int64(len(*r.chunks.Load())) * int64(r.chunkSize)
}

// Released reports whether the region's memory has been dropped.
func (r *Region) Released() bool { return r.released.Load() }

// Alloc reserves n bytes (rounded up to 8-byte alignment) and returns the
// address of the reservation. The reservation never spans a chunk boundary;
// n must be at most ChunkSize. Alloc charges the region's meter for the
// allocation write traffic lazily — callers charge on actual writes.
func (r *Region) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return NilAddr, fmt.Errorf("vaddr: invalid allocation size %d", n)
	}
	n = (n + 7) &^ 7
	if n > r.chunkSize {
		return NilAddr, fmt.Errorf("vaddr: allocation %d exceeds chunk size %d", n, r.chunkSize)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released.Load() {
		return NilAddr, fmt.Errorf("vaddr: allocation in released region %d", r.index)
	}
	off := r.allocOff
	// Pad to the next chunk if the object would straddle a boundary.
	if off&^r.chunkMask != (off+int64(n)-1)&^r.chunkMask {
		off = (off + r.chunkMask) &^ r.chunkMask
	}
	end := off + int64(n)
	if end > MaxRegionSize {
		return NilAddr, fmt.Errorf("vaddr: region %d virtual space exhausted", r.index)
	}
	if err := r.ensureLocked(end); err != nil {
		return NilAddr, err
	}
	r.allocOff = end
	return r.base.Add(off), nil
}

// ensureLocked commits chunks to cover [0, end). Caller holds r.mu.
func (r *Region) ensureLocked(end int64) error {
	need := int((end + r.chunkMask) >> uint(trailingZeros(r.chunkSize)))
	cur := *r.chunks.Load()
	if len(cur) >= need {
		return nil
	}
	next := make([][]byte, need)
	copy(next, cur)
	for i := len(cur); i < need; i++ {
		next[i] = alignedChunk(r.chunkSize)
	}
	r.chunks.Store(&next)
	return nil
}

func trailingZeros(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// chunkFor returns the chunk and intra-chunk offset for a region offset.
func (r *Region) chunkFor(off int64) ([]byte, int) {
	chunks := *r.chunks.Load()
	ci := int(off >> uint(trailingZeros(r.chunkSize)))
	if ci >= len(chunks) {
		panic(fmt.Sprintf("vaddr: access past end of region %d at offset %#x (released=%v)",
			r.index, off, r.released.Load()))
	}
	return chunks[ci], int(off & r.chunkMask)
}

// Bytes returns the n bytes at addr as a slice aliasing the backing chunk.
// The range must lie within one chunk (guaranteed for any single Alloc
// reservation). No meter charge is applied; use Read/Write for metered
// access.
func (r *Region) Bytes(addr Addr, n int) []byte {
	c, o := r.chunkFor(addr.Offset())
	if o+n > len(c) {
		panic(fmt.Sprintf("vaddr: range [%v,+%d) crosses chunk boundary", addr, n))
	}
	return c[o : o+n : o+n]
}

// Read returns the n bytes at addr, charging the meter for a read.
func (r *Region) Read(addr Addr, n int) []byte {
	if r.meter != nil {
		r.meter.OnRead(n)
	}
	return r.Bytes(addr, n)
}

// Write copies data to addr, charging the meter for a write.
func (r *Region) Write(addr Addr, data []byte) {
	if r.meter != nil {
		r.meter.OnWrite(len(data))
	}
	copy(r.Bytes(addr, len(data)), data)
}

// CopyFrom bulk-copies length bytes from src at srcAddr to dst at dstAddr.
// It is the "one memcpy" primitive behind one-piece flushing: the copy
// proceeds chunk-by-chunk at full memory bandwidth and charges dst's meter
// once for the whole transfer.
func (r *Region) CopyFrom(dstAddr Addr, src *Region, srcAddr Addr, length int64) {
	if r.meter != nil {
		r.meter.OnWrite(int(length))
	}
	for length > 0 {
		sc, so := src.chunkFor(srcAddr.Offset())
		dc, do := r.chunkFor(dstAddr.Offset())
		n := int64(len(sc) - so)
		if m := int64(len(dc) - do); m < n {
			n = m
		}
		if n > length {
			n = length
		}
		copy(dc[do:do+int(n)], sc[so:so+int(n)])
		srcAddr = srcAddr.Add(n)
		dstAddr = dstAddr.Add(n)
		length -= n
	}
}

// Meter returns the region's meter (may be nil).
func (r *Region) Meter() Meter { return r.meter }

// ChargeRead charges the region's meter for an n-byte read without
// returning data. Callers use it when they access bytes through an
// unmetered path but still owe the device model the traffic.
func (r *Region) ChargeRead(n int) {
	if r.meter != nil {
		r.meter.OnRead(n)
	}
}

// ChargeWrite charges the region's meter for an n-byte write.
func (r *Region) ChargeWrite(n int) {
	if r.meter != nil {
		r.meter.OnWrite(n)
	}
}

// RestoreExtent commits backing chunks covering [0, extent) and sets the
// allocation cursor — the second half of checkpoint-image loading, before
// the loader copies the saved bytes in.
func (r *Region) RestoreExtent(extent int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLocked(extent); err != nil {
		return err
	}
	if extent > r.allocOff {
		r.allocOff = extent
	}
	return nil
}
