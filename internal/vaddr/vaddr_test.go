package vaddr

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddrEncoding(t *testing.T) {
	a := Addr(uint64(7)<<offsetBits | 0x1234)
	if a.Region() != 7 {
		t.Errorf("Region() = %d, want 7", a.Region())
	}
	if a.Offset() != 0x1234 {
		t.Errorf("Offset() = %#x, want 0x1234", a.Offset())
	}
	if a.Add(8).Offset() != 0x123c {
		t.Errorf("Add(8).Offset() = %#x", a.Add(8).Offset())
	}
	if !NilAddr.IsNil() || a.IsNil() {
		t.Error("IsNil misbehaves")
	}
	if NilAddr.String() != "nil" {
		t.Errorf("NilAddr.String() = %q", NilAddr.String())
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(region uint32, offset uint64) bool {
		region &= 1<<24 - 1
		offset &= offsetMask
		a := Addr(uint64(region)<<offsetBits | offset)
		return a.Region() == region && a.Offset() == int64(offset)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNilAddrNeverAllocated(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	a, err := r.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.IsNil() {
		t.Fatal("first allocation in region 0 returned the nil address")
	}
}

func TestAllocAlignmentAndChunking(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	var prevEnd int64
	for i, n := range []int{1, 7, 8, 9, 100, 4096, 4000, 200} {
		a, err := r.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if a.Offset()%8 != 0 {
			t.Errorf("alloc %d: offset %#x not 8-aligned", i, a.Offset())
		}
		padded := int64((n + 7) &^ 7)
		start, end := a.Offset(), a.Offset()+padded-1
		if start/4096 != end/4096 {
			t.Errorf("alloc %d of %d bytes straddles chunk: [%#x,%#x]", i, n, start, end)
		}
		if start < prevEnd {
			t.Errorf("alloc %d overlaps previous", i)
		}
		prevEnd = end + 1
		// The full reservation must be addressable.
		b := r.Bytes(a, n)
		if len(b) != n {
			t.Errorf("Bytes len = %d, want %d", len(b), n)
		}
	}
}

func TestAllocTooLarge(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	if _, err := r.Alloc(4097); err == nil {
		t.Error("Alloc larger than chunk should fail")
	}
	if _, err := r.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := r.Alloc(-5); err == nil {
		t.Error("Alloc(-5) should fail")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	a, _ := r.Alloc(64)
	data := []byte("the quick brown fox jumps over the lazy dog")
	r.Write(a, data)
	got := r.Read(a, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestAtomicWordOps(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	a, _ := r.Alloc(8)
	r.Store64(a, 0xdeadbeefcafebabe)
	if v := r.Load64(a); v != 0xdeadbeefcafebabe {
		t.Errorf("Load64 = %#x", v)
	}
	if !r.CompareAndSwap64(a, 0xdeadbeefcafebabe, 42) {
		t.Error("CAS failed")
	}
	if v := r.Load64(a); v != 42 {
		t.Errorf("after CAS, Load64 = %d", v)
	}
	if r.CompareAndSwap64(a, 0, 1) {
		t.Error("CAS with wrong old succeeded")
	}
}

func TestPutGetUint64(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	a, _ := r.Alloc(8)
	r.PutUint64(a, 123456789)
	if v := r.Uint64(a); v != 123456789 {
		t.Errorf("Uint64 = %d", v)
	}
	// PutUint64 and Store64 must agree on byte layout (little endian).
	r.Store64(a, 0x0102030405060708)
	if v := r.Uint64(a); v != 0x0102030405060708 {
		t.Errorf("mixed atomic/plain word = %#x", v)
	}
}

func TestRegionGrowthConcurrentReads(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion(4096, nil)
	a, _ := r.Alloc(8)
	r.Store64(a, 7)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := r.Load64(a); v != 7 {
					t.Errorf("Load64 = %d during growth", v)
					return
				}
			}
		}()
	}
	// Force many chunk growths while readers run.
	for i := 0; i < 1000; i++ {
		if _, err := r.Alloc(4096); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCloneAndRebase(t *testing.T) {
	s := NewSpace()
	src := s.NewRegion(4096, nil)
	// Fill several chunks with a recognizable pattern and self-pointers.
	addrs := make([]Addr, 50)
	for i := range addrs {
		a, err := src.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		src.PutUint64(a, uint64(i))
		if i > 0 {
			src.PutUint64(a.Add(8), uint64(addrs[i-1])) // pointer to previous
		}
	}
	dst := s.Clone(src, nil)
	if dst.Size() != src.Size() {
		t.Fatalf("clone size %d != src size %d", dst.Size(), src.Size())
	}
	for i, a := range addrs {
		ra := Rebase(a, src, dst)
		if ra.Region() != dst.Index() || ra.Offset() != a.Offset() {
			t.Fatalf("Rebase mangles address: %v -> %v", a, ra)
		}
		if v := dst.Uint64(ra); v != uint64(i) {
			t.Errorf("clone[%d] = %d, want %d", i, v, i)
		}
		if i > 0 {
			ptr := Addr(dst.Uint64(ra.Add(8)))
			if ptr != addrs[i-1] {
				t.Errorf("clone kept pre-rebase pointer mangled: %v", ptr)
			}
			if reb := Rebase(ptr, src, dst); reb.Offset() != addrs[i-1].Offset() {
				t.Errorf("rebased pointer wrong offset")
			}
		}
	}
	// Rebase leaves nil and foreign addresses alone.
	if Rebase(NilAddr, src, dst) != NilAddr {
		t.Error("Rebase(nil) != nil")
	}
	other := s.NewRegion(4096, nil)
	oa, _ := other.Alloc(8)
	if Rebase(oa, src, dst) != oa {
		t.Error("Rebase of foreign address changed it")
	}
}

func TestRelease(t *testing.T) {
	s := NewSpace()
	r1 := s.NewRegion(4096, nil)
	r2 := s.NewRegion(4096, nil)
	a, _ := r2.Alloc(16)
	r2.Write(a, []byte("hello"))

	s.Release(r1)
	if s.Region(r1.Index()) != nil {
		t.Error("released region still resolvable")
	}
	if !r1.Released() {
		t.Error("Released() false after release")
	}
	// Other regions unaffected.
	if got := string(r2.Read(a, 5)); got != "hello" {
		t.Errorf("r2 data corrupted after releasing r1: %q", got)
	}
	// Alloc in a released region fails.
	if _, err := r1.Alloc(8); err == nil {
		t.Error("Alloc in released region succeeded")
	}
	// Double release is a no-op.
	s.Release(r1)
	// Regions() elides the released slot.
	for _, r := range s.Regions() {
		if r == r1 {
			t.Error("Regions() includes released region")
		}
	}
}

type countingMeter struct {
	reads, writes, readBytes, writeBytes int
}

func (m *countingMeter) OnRead(n int)  { m.reads++; m.readBytes += n }
func (m *countingMeter) OnWrite(n int) { m.writes++; m.writeBytes += n }

func TestMeterCharges(t *testing.T) {
	s := NewSpace()
	m := &countingMeter{}
	r := s.NewRegion(4096, m)
	a, _ := r.Alloc(64)

	r.Write(a, make([]byte, 10))
	if m.writeBytes != 10 {
		t.Errorf("writeBytes = %d, want 10", m.writeBytes)
	}
	r.Read(a, 10)
	if m.readBytes != 10 {
		t.Errorf("readBytes = %d, want 10", m.readBytes)
	}
	r.Store64(a, 1)
	if m.writeBytes != 18 {
		t.Errorf("writeBytes after Store64 = %d, want 18", m.writeBytes)
	}
	r.ChargeRead(100)
	r.ChargeWrite(200)
	if m.readBytes != 110 || m.writeBytes != 218 {
		t.Errorf("charge helpers: read=%d write=%d", m.readBytes, m.writeBytes)
	}
	// Bytes() and Load64 are unmetered by design: no further charges.
	before := m.readBytes
	r.Bytes(a, 8)
	r.Load64(a)
	if m.readBytes != before {
		t.Errorf("Bytes/Load64 charged the meter: %d -> %d", before, m.readBytes)
	}
}

func TestCopyFromCrossChunks(t *testing.T) {
	s := NewSpace()
	src := s.NewRegion(4096, nil)
	dst := s.NewRegion(4096, nil)
	// Build a multi-chunk source payload.
	var srcAddrs []Addr
	payload := make([]byte, 0, 3*4096)
	for i := 0; i < 3; i++ {
		a, _ := src.Alloc(4096)
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 4096)
		src.Write(a, chunk)
		srcAddrs = append(srcAddrs, a)
		payload = append(payload, chunk...)
	}
	// Destination spanning the same extent.
	var dstAddrs []Addr
	for i := 0; i < 3; i++ {
		a, _ := dst.Alloc(4096)
		dstAddrs = append(dstAddrs, a)
	}
	dst.CopyFrom(dstAddrs[0], src, srcAddrs[0], 3*4096)
	got := make([]byte, 0, 3*4096)
	for _, a := range dstAddrs {
		got = append(got, dst.Bytes(a, 4096)...)
	}
	if !bytes.Equal(got, payload) {
		t.Error("CopyFrom corrupted multi-chunk payload")
	}
}

func TestRestoreSparseRegions(t *testing.T) {
	s := NewSpace()
	// Restore regions at sparse indices, as the checkpoint loader does
	// when volatile regions are absent from the image.
	r5, err := s.Restore(5, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r5.RestoreExtent(10000); err != nil {
		t.Fatal(err)
	}
	if r5.Size() != 10000 {
		t.Errorf("Size = %d", r5.Size())
	}
	// Gaps resolve to nil.
	for i := uint32(0); i < 5; i++ {
		if s.Region(i) != nil {
			t.Errorf("gap region %d not nil", i)
		}
	}
	// Occupied slots are rejected.
	if _, err := s.Restore(5, 4096, nil); err == nil {
		t.Error("restore into occupied slot accepted")
	}
	// NewRegion continues past restored indices without collision.
	fresh := s.NewRegion(4096, nil)
	if fresh.Index() <= 5 {
		t.Errorf("fresh region index %d collides with restored range", fresh.Index())
	}
	// Data written into the restored extent is addressable.
	addr := r5.Base().Add(8192)
	r5.Write(addr, []byte("restored"))
	if got := string(r5.Read(addr, 8)); got != "restored" {
		t.Errorf("restored region data = %q", got)
	}
}
