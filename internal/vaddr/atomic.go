package vaddr

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// This file is the only place in the repository that uses package unsafe.
// It provides 8-byte atomic loads and stores on arena memory, the analogue
// of the 8-byte atomic writes to persistent memory that the paper's
// zero-copy compaction relies on ("we exploit atomic writes to update
// pointers in a lock-free manner", §4.3). Chunks are allocated 8-byte
// aligned (see alignedChunk), and Alloc rounds every reservation to 8
// bytes, so any word-offset access is aligned.

// alignedChunk allocates a chunk of the given size whose first byte is
// 8-byte aligned. Go's allocator aligns large byte slices far more strictly
// than this in practice; the trim below makes the guarantee unconditional.
func alignedChunk(size int) []byte {
	b := make([]byte, size+8)
	off := int(uintptr(unsafe.Pointer(&b[0])) & 7)
	if off != 0 {
		off = 8 - off
	}
	return b[off : off+size : off+size]
}

// word returns a pointer to the aligned 8-byte word at addr.
func (r *Region) word(addr Addr) *uint64 {
	c, o := r.chunkFor(addr.Offset())
	if o&7 != 0 {
		panic("vaddr: unaligned atomic access at " + addr.String())
	}
	return (*uint64)(unsafe.Pointer(&c[o]))
}

// Load64 atomically loads the 8-byte word at addr.
func (r *Region) Load64(addr Addr) uint64 {
	return atomic.LoadUint64(r.word(addr))
}

// Store64 atomically stores v to the 8-byte word at addr, charging the
// meter for an 8-byte write. These stores are the entire write traffic of a
// zero-copy compaction.
func (r *Region) Store64(addr Addr, v uint64) {
	if r.meter != nil {
		r.meter.OnWrite(8)
	}
	atomic.StoreUint64(r.word(addr), v)
}

// CompareAndSwap64 atomically compares-and-swaps the word at addr.
func (r *Region) CompareAndSwap64(addr Addr, old, new uint64) bool {
	if r.meter != nil {
		r.meter.OnWrite(8)
	}
	return atomic.CompareAndSwapUint64(r.word(addr), old, new)
}

// LoadAddr atomically loads an Addr-typed word.
func (r *Region) LoadAddr(addr Addr) Addr { return Addr(r.Load64(addr)) }

// StoreAddr atomically stores an Addr-typed word.
func (r *Region) StoreAddr(addr Addr, v Addr) { r.Store64(addr, uint64(v)) }

// PutUint64 writes v non-atomically (little endian) without metering; used
// while initializing freshly allocated, not-yet-published objects.
func (r *Region) PutUint64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(r.Bytes(addr, 8), v)
}

// Uint64 reads a word non-atomically (little endian) without metering; safe
// for fields that are immutable after publication.
func (r *Region) Uint64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(r.Bytes(addr, 8))
}
