// Package leveldbkv is the classic LevelDB-style baseline: a DRAM
// memtable + write-ahead log in front of a leveled SSTable tree on a
// block device. In the paper's "in-memory mode" the block device is NVM
// accessed through a file interface; in the hierarchy mode it is an SSD.
//
// It exhibits exactly the pathologies the paper measures: memtable
// flushing pays full serialization; reads from SSTables pay
// deserialization; L0 pile-ups throttle (cumulative stalls) and block
// (interval stalls) the write path; and leveled compaction multiplies
// write traffic (write amplification ≈ fanout × depth).
package leveldbkv

import (
	"fmt"
	"sync"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
	"miodb/internal/wal"
)

// Options configures the baseline.
type Options struct {
	// MemTableSize is the DRAM buffer capacity.
	MemTableSize int64
	// ChunkSize bounds the largest entry.
	ChunkSize int
	// Disk hosts the SSTables; nil creates an NVM-block-profile disk
	// (the paper's in-memory mode).
	Disk *vfs.Disk
	// LSM tunes the leveled tree.
	LSM lsm.Options
	// DisableWAL turns off write-ahead logging.
	DisableWAL bool
	// Simulate enables device latency injection; TimeScale scales it.
	Simulate  bool
	TimeScale float64
}

func (o Options) withDefaults() Options {
	if o.MemTableSize <= 0 {
		o.MemTableSize = 64 << 10
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256 << 10
	}
	if o.ChunkSize < int(o.MemTableSize/4) {
		o.ChunkSize = int(o.MemTableSize)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	return o
}

// DB is a LevelDB-style store.
type DB struct {
	opts  Options
	space *vaddr.Space
	dram  *nvm.Device
	nvm   *nvm.Device // hosts the WAL
	disk  *vfs.Disk
	lsm   *lsm.Levels
	st    *stats.Recorder

	writeMu sync.Mutex
	seq     uint64

	mu     sync.Mutex
	cond   *sync.Cond
	mem    *handle
	imm    *handle // at most one, LevelDB-style
	closed bool

	wg sync.WaitGroup
}

type handle struct {
	mt  *memtable.MemTable
	log *wal.Log
}

// Open creates a store.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	space := vaddr.NewSpace()
	db := &DB{
		opts:  opts,
		space: space,
		dram:  nvm.NewDevice(space, nvm.DRAMProfile()),
		nvm:   nvm.NewDevice(space, nvm.NVMProfile()),
		st:    &stats.Recorder{},
	}
	db.cond = sync.NewCond(&db.mu)
	db.dram.SetSimulation(opts.Simulate)
	db.nvm.SetSimulation(opts.Simulate)
	db.dram.SetTimeScale(opts.TimeScale)
	db.nvm.SetTimeScale(opts.TimeScale)

	db.disk = opts.Disk
	if db.disk == nil {
		db.disk = vfs.NewDisk(vfs.NVMBlockProfile())
	}
	db.disk.SetSimulation(opts.Simulate)
	db.disk.SetTimeScale(opts.TimeScale)

	lo := opts.LSM
	lo.Disk = db.disk
	lo.Stats = db.st
	db.lsm = lsm.New(lo)

	mem, err := db.newHandle()
	if err != nil {
		return nil, err
	}
	db.mem = mem

	db.wg.Add(1)
	go db.flushLoop()
	return db, nil
}

func (db *DB) newHandle() (*handle, error) {
	mt, err := memtable.New(db.dram, db.opts.MemTableSize, db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	h := &handle{mt: mt}
	if !db.opts.DisableWAL {
		h.log = wal.New(db.nvm, db.opts.ChunkSize)
	}
	return h, nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error { return db.write(key, value, keys.KindSet) }

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error { return db.write(key, nil, keys.KindDelete) }

func (db *DB) write(key, value []byte, kind keys.Kind) error {
	if len(key) == 0 {
		return fmt.Errorf("leveldbkv: empty key")
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}
	db.seq++
	seq := db.seq

	db.mu.Lock()
	mem := db.mem
	db.mu.Unlock()
	if mem.log != nil {
		if err := mem.log.Append(key, value, seq, kind); err != nil {
			return err
		}
	}
	if err := mem.mt.Add(key, value, seq, kind); err != nil {
		return err
	}
	db.st.AddUserBytes(int64(len(key) + len(value)))
	if kind == keys.KindDelete {
		db.st.CountDelete()
	} else {
		db.st.CountPut()
	}
	return nil
}

// makeRoomForWrite implements LevelDB's throttling ladder: a 1 ms
// slowdown per write when L0 is crowded (cumulative stall), a full block
// while L0 is at the stop limit or while the previous memtable is still
// flushing (interval stall).
func (db *DB) makeRoomForWrite() error {
	slowedDown := false
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return kvstore.ErrClosed
		}
		sleep, block := db.lsm.WriteDelay()
		switch {
		case sleep > 0 && !slowedDown:
			db.mu.Unlock()
			time.Sleep(sleep)
			db.st.AddCumulativeStall(sleep)
			slowedDown = true
			continue
		case !db.mem.mt.Full():
			db.mu.Unlock()
			return nil
		case db.imm != nil:
			// Previous memtable still flushing: the write path blocks —
			// an interval stall the client observes directly.
			start := time.Now()
			for db.imm != nil && !db.closed {
				db.cond.Wait()
			}
			db.st.AddIntervalStall(time.Since(start))
			db.mu.Unlock()
			continue
		case block:
			db.mu.Unlock()
			d := db.lsm.WaitL0BelowStop()
			db.st.AddIntervalStall(d)
			continue
		default:
			// Rotate.
			fresh, err := db.newHandle()
			if err != nil {
				db.mu.Unlock()
				return err
			}
			db.imm = db.mem
			db.mem = fresh
			db.cond.Broadcast()
			db.mu.Unlock()
			return nil
		}
	}
}

func (db *DB) flushLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for db.imm == nil && !db.closed {
			db.cond.Wait()
		}
		if db.imm == nil && db.closed {
			db.mu.Unlock()
			return
		}
		imm := db.imm
		db.mu.Unlock()

		start := time.Now()
		if err := db.lsm.FlushToL0(imm.mt.NewIterator()); err != nil {
			panic(err)
		}
		db.st.AddFlush(time.Since(start), imm.mt.ApproximateBytes())

		db.mu.Lock()
		db.imm = nil
		db.cond.Broadcast()
		db.mu.Unlock()
		imm.mt.Release()
		if imm.log != nil {
			imm.log.Release()
		}
	}
}

// Get returns the newest live value for key.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.st.CountGet()
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	db.mu.Unlock()

	if v, _, kind, ok := mem.mt.Get(key); ok {
		return finishGet(v, kind)
	}
	if imm != nil {
		if v, _, kind, ok := imm.mt.Get(key); ok {
			return finishGet(v, kind)
		}
	}
	if v, _, kind, ok := db.lsm.Get(key); ok {
		return finishGet(v, kind)
	}
	return nil, kvstore.ErrNotFound
}

func finishGet(v []byte, kind keys.Kind) ([]byte, error) {
	if kind == keys.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Scan walks live keys ≥ start in order.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	db.st.CountScan()
	db.mu.Lock()
	sources := []iterx.Iterator{db.mem.mt.NewIterator()}
	if db.imm != nil {
		sources = append(sources, db.imm.mt.NewIterator())
	}
	db.mu.Unlock()
	sources = append(sources, db.lsm.Iterators()...)
	it := iterx.NewVisible(iterx.NewMerging(sources...))
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

// Flush forces the memtable out and drains compactions.
func (db *DB) Flush() error {
	db.writeMu.Lock()
	db.mu.Lock()
	needRotate := !db.mem.mt.Empty()
	db.mu.Unlock()
	if needRotate {
		for {
			db.mu.Lock()
			if db.imm == nil {
				fresh, err := db.newHandle()
				if err != nil {
					db.mu.Unlock()
					db.writeMu.Unlock()
					return err
				}
				db.imm = db.mem
				db.mem = fresh
				db.cond.Broadcast()
				db.mu.Unlock()
				break
			}
			db.cond.Wait()
			db.mu.Unlock()
		}
	}
	db.writeMu.Unlock()

	// Wait for the flush and all compactions.
	db.mu.Lock()
	for db.imm != nil && !db.closed {
		db.cond.Wait()
	}
	db.mu.Unlock()
	db.lsm.WaitIdle()
	return nil
}

// Stats returns cost accounting with device traffic attached.
func (db *DB) Stats() stats.Snapshot {
	s := db.st.Snapshot()
	nc := db.nvm.Counters()
	dc := db.disk.Counters()
	s.AttachDevices(
		stats.DeviceCounters{Name: nc.Name, BytesRead: nc.BytesRead, BytesWritten: nc.BytesWritten},
		stats.DeviceCounters{Name: dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten},
	)
	return s
}

// ResetCounters clears device and cost counters between bench phases.
func (db *DB) ResetCounters() {
	db.dram.ResetCounters()
	db.nvm.ResetCounters()
	db.disk.ResetCounters()
	db.st.Reset()
}

// Close shuts the store down.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.wg.Wait()
	db.lsm.Close()
	return nil
}

var _ kvstore.Store = (*DB)(nil)
