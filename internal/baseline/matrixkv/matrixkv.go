package matrixkv

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
	"miodb/internal/wal"
)

// Options configures the store.
type Options struct {
	// MemTableSize is the DRAM buffer capacity.
	MemTableSize int64
	// NVMBufferSize is the matrix container budget (paper: 8 GB → 8 MB).
	// Column compaction starts at 60% occupancy; writers throttle above
	// the budget and block at 2×.
	NVMBufferSize int64
	// ColumnBytes is the target data volume of one column compaction
	// (the fine grain that keeps MatrixKV's stalls short).
	ColumnBytes int64
	// ChunkSize bounds the largest entry.
	ChunkSize int
	// Disk hosts L1+ SSTables (nil: NVM-block profile).
	Disk *vfs.Disk
	// LSM tunes the on-disk tree. Its L0 is unused: columns merge
	// directly into L1.
	LSM lsm.Options
	// DisableWAL turns off logging.
	DisableWAL bool
	// Simulate/TimeScale control latency injection.
	Simulate  bool
	TimeScale float64
}

func (o Options) withDefaults() Options {
	if o.MemTableSize <= 0 {
		o.MemTableSize = 64 << 10
	}
	if o.NVMBufferSize <= 0 {
		o.NVMBufferSize = 8 << 20
	}
	if o.ColumnBytes <= 0 {
		o.ColumnBytes = 2 * o.MemTableSize
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256 << 10
	}
	if o.ChunkSize < int(o.MemTableSize/4) {
		o.ChunkSize = int(o.MemTableSize)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	return o
}

// DB is a MatrixKV store.
type DB struct {
	opts  Options
	space *vaddr.Space
	dram  *nvm.Device
	nvm   *nvm.Device
	disk  *vfs.Disk
	lsm   *lsm.Levels
	st    *stats.Recorder

	writeMu sync.Mutex
	seq     uint64

	mu     sync.Mutex
	cond   *sync.Cond
	mem    *handle
	imms   []*handle // immutable memtables pending row build, oldest first
	rowID  uint64
	rows   []*row // newest first
	closed bool

	// Column compaction cursor state: the current cycle number and the
	// key frontier within the cycle (nil = start of keyspace).
	cycle  int
	cursor []byte

	liveBytes int64 // unconsumed container bytes

	wg sync.WaitGroup
}

type handle struct {
	mt  *memtable.MemTable
	log *wal.Log
}

// Open creates a store.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	space := vaddr.NewSpace()
	db := &DB{
		opts:  opts,
		space: space,
		dram:  nvm.NewDevice(space, nvm.DRAMProfile()),
		nvm:   nvm.NewDevice(space, nvm.NVMProfile()),
		st:    &stats.Recorder{},
	}
	db.cond = sync.NewCond(&db.mu)
	db.dram.SetSimulation(opts.Simulate)
	db.nvm.SetSimulation(opts.Simulate)
	db.dram.SetTimeScale(opts.TimeScale)
	db.nvm.SetTimeScale(opts.TimeScale)

	db.disk = opts.Disk
	if db.disk == nil {
		db.disk = vfs.NewDisk(vfs.NVMBlockProfile())
	}
	db.disk.SetSimulation(opts.Simulate)
	db.disk.SetTimeScale(opts.TimeScale)
	lo := opts.LSM
	lo.Disk = db.disk
	lo.Stats = db.st
	db.lsm = lsm.New(lo)

	mem, err := db.newHandle()
	if err != nil {
		return nil, err
	}
	db.mem = mem

	db.wg.Add(2)
	go db.flushLoop()
	go db.columnLoop()
	return db, nil
}

func (db *DB) newHandle() (*handle, error) {
	mt, err := memtable.New(db.dram, db.opts.MemTableSize, db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	h := &handle{mt: mt}
	if !db.opts.DisableWAL {
		h.log = wal.New(db.nvm, db.opts.ChunkSize)
	}
	return h, nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error { return db.write(key, value, keys.KindSet) }

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error { return db.write(key, nil, keys.KindDelete) }

func (db *DB) write(key, value []byte, kind keys.Kind) error {
	if len(key) == 0 {
		return fmt.Errorf("matrixkv: empty key")
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.makeRoomForWrite(); err != nil {
		return err
	}
	db.seq++
	seq := db.seq
	db.mu.Lock()
	mem := db.mem
	db.mu.Unlock()
	if mem.log != nil {
		if err := mem.log.Append(key, value, seq, kind); err != nil {
			return err
		}
	}
	if err := mem.mt.Add(key, value, seq, kind); err != nil {
		return err
	}
	db.st.AddUserBytes(int64(len(key) + len(value)))
	if kind == keys.KindDelete {
		db.st.CountDelete()
	} else {
		db.st.CountPut()
	}
	return nil
}

// makeRoomForWrite throttles against the container budget instead of an
// L0 file count: over budget, every write is delayed (cumulative stall);
// at 2× budget it blocks (rare — column compaction is fine-grained, which
// is exactly MatrixKV's contribution); and it rotates a full memtable.
func (db *DB) makeRoomForWrite() error {
	slowedDown := false
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return kvstore.ErrClosed
		}
		switch {
		case db.liveBytes >= 4*db.opts.NVMBufferSize:
			// Far over budget: block outright. MatrixKV's design goal is
			// that column compaction keeps the container from ever
			// reaching this point (the paper reports zero interval
			// stalls), so this is a safety valve.
			start := time.Now()
			for db.liveBytes >= 4*db.opts.NVMBufferSize && !db.closed {
				db.cond.Wait()
			}
			db.st.AddIntervalStall(time.Since(start))
			db.mu.Unlock()
			continue
		case db.liveBytes >= db.opts.NVMBufferSize && !slowedDown:
			// Over budget: slow every write down, harder the further
			// over — MatrixKV's remaining cumulative stalls (62.5% of
			// write time in the paper's Fig 2(a)).
			over := time.Duration(db.liveBytes / db.opts.NVMBufferSize)
			db.mu.Unlock()
			delay := over * time.Millisecond
			time.Sleep(delay)
			db.st.AddCumulativeStall(delay)
			slowedDown = true
			continue
		case !db.mem.mt.Full():
			db.mu.Unlock()
			return nil
		case len(db.imms) >= maxImms:
			// RocksDB-style bounded immutable queue: block only when
			// several flushes are backlogged.
			start := time.Now()
			for len(db.imms) >= maxImms && !db.closed {
				db.cond.Wait()
			}
			db.st.AddIntervalStall(time.Since(start))
			db.mu.Unlock()
			continue
		default:
			fresh, err := db.newHandle()
			if err != nil {
				db.mu.Unlock()
				return err
			}
			db.imms = append(db.imms, db.mem)
			db.mem = fresh
			db.cond.Broadcast()
			db.mu.Unlock()
			return nil
		}
	}
}

// maxImms bounds the immutable-memtable backlog (RocksDB's
// max_write_buffer_number analogue).
const maxImms = 4

// flushLoop serializes immutable memtables into container rows.
func (db *DB) flushLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for len(db.imms) == 0 && !db.closed {
			db.cond.Wait()
		}
		if len(db.imms) == 0 && db.closed {
			db.mu.Unlock()
			return
		}
		imm := db.imms[0]
		db.mu.Unlock()

		start := time.Now()
		db.mu.Lock()
		db.rowID++
		id := db.rowID
		db.mu.Unlock()

		r := buildRow(db.nvm, id, imm.mt, db.opts.ChunkSize, db.st)
		db.st.AddFlush(time.Since(start), imm.mt.ApproximateBytes())

		db.mu.Lock()
		// Stamp the consumption origin at publication time, under the
		// same lock the column compactor advances the cursor with — a
		// stamp taken earlier could predate a whole column extraction
		// and wrongly mark the row's copy of that range as consumed.
		r.joinCycle = db.cycle
		r.sufFrom = db.cursor
		db.rows = append([]*row{r}, db.rows...)
		db.liveBytes += r.size
		db.imms = db.imms[1:]
		db.cond.Broadcast()
		db.mu.Unlock()

		imm.mt.Release()
		if imm.log != nil {
			imm.log.Release()
		}
	}
}

// consumedLocked reports whether the row's copy of key has already been
// column-compacted into L1. A row joins at cursor position sufFrom during
// cycle joinCycle; the column cursor sweeps the keyspace cyclically:
//
//	same cycle:   consumed = sufFrom ≤ key < cursor
//	next cycle:   consumed = key ≥ sufFrom (last cycle) or key < cursor
//	two cycles on: fully consumed (the row is dead and dropped).
func (db *DB) consumedLocked(r *row, key []byte) bool {
	geSuf := r.sufFrom == nil || bytes.Compare(key, r.sufFrom) >= 0
	ltCur := db.cursor != nil && bytes.Compare(key, db.cursor) < 0
	switch db.cycle - r.joinCycle {
	case 0:
		return geSuf && ltCur
	case 1:
		return geSuf || ltCur
	default:
		return db.cycle > r.joinCycle+1
	}
}

// rowDeadLocked reports whether every key of the row has been consumed.
func (db *DB) rowDeadLocked(r *row) bool {
	if r.count == 0 {
		return true
	}
	switch db.cycle - r.joinCycle {
	case 0:
		return false
	case 1:
		// Dead once the prefix sweep reaches the suffix start.
		return r.sufFrom == nil || (db.cursor != nil && bytes.Compare(db.cursor, r.sufFrom) >= 0)
	default:
		return true
	}
}

// columnLoop runs fine-grained column compactions whenever the container
// is over its soft watermark: it extracts one key-range column across all
// rows and merges it directly into L1 — a small, bounded unit of work, so
// the container drains smoothly instead of in L0-sized lurches.
func (db *DB) columnLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for db.liveBytes < db.opts.NVMBufferSize*6/10 && !db.closed {
			db.cond.Wait()
		}
		if db.closed && db.liveBytes == 0 {
			db.mu.Unlock()
			return
		}
		if db.closed && len(db.rows) == 0 {
			db.mu.Unlock()
			return
		}
		if len(db.rows) == 0 {
			// Budget pressure can only come from rows; nothing to do.
			db.mu.Unlock()
			continue
		}
		db.mu.Unlock()
		db.compactOneColumn()
	}
}

// compactOneColumn extracts the next column [cursor, end) and merges it
// into L1.
func (db *DB) compactOneColumn() {
	start := time.Now()
	db.mu.Lock()
	rows := append([]*row(nil), db.rows...)
	cycle, cursor := db.cycle, db.cursor
	db.mu.Unlock()

	// Gather per-row iterators positioned at the cursor. A row that
	// joined mid-cycle already had its suffix consumed by this cycle's
	// earlier columns — skip those entries so each version is extracted
	// exactly once in its lifetime.
	var its []iterx.Iterator
	for _, r := range rows {
		it := r.newIter(db.st)
		if cursor == nil {
			it.SeekToFirst()
		} else {
			it.Seek(cursor)
		}
		skip := consumedPredicate(r, cycle, cursor)
		fit := &filteredIter{in: it, skip: skip}
		fit.settle()
		if fit.Valid() {
			its = append(its, fit)
		}
	}
	merged := iterx.NewMerging(its...)
	merged.SeekToFirst()

	// Pull entries until the column target, finishing the last key.
	var col []columnEntry
	var colBytes int64
	var lastKey []byte
	for merged.Valid() {
		k := merged.Key()
		if colBytes >= db.opts.ColumnBytes && lastKey != nil && !bytes.Equal(k, lastKey) {
			break
		}
		col = append(col, columnEntry{
			key:   append([]byte(nil), k...),
			value: append([]byte(nil), merged.Value()...),
			seq:   merged.Seq(),
			kind:  merged.Kind(),
		})
		colBytes += int64(entryHeader + len(k) + len(merged.Value()))
		lastKey = col[len(col)-1].key
		merged.Next()
	}
	wrapped := !merged.Valid()
	var end []byte
	if !wrapped {
		end = append([]byte(nil), merged.Key()...)
	}

	if len(col) > 0 {
		// Feed the column into L1 as a sorted stream.
		ci := &colIter{entries: col}
		smallest, largest := col[0].key, col[len(col)-1].key
		if err := db.lsm.MergeIntoLevel(1, ci, smallest, largest); err != nil {
			panic(err)
		}
	}

	// Advance the cursor, retire consumed bytes, drop dead rows.
	db.mu.Lock()
	// Rows published while this column was extracting were not part of
	// the snapshot, so none of their entries moved — but they recorded
	// sufFrom = the pre-column cursor, which would wrongly mark their
	// [cursor, end) range consumed. Re-stamp them as joining at the
	// post-column frontier.
	inSnapshot := make(map[uint64]bool, len(rows))
	for _, r := range rows {
		inSnapshot[r.id] = true
	}
	for _, r := range db.rows {
		if inSnapshot[r.id] {
			continue
		}
		if wrapped {
			r.joinCycle = db.cycle + 1
			r.sufFrom = nil
		} else {
			r.joinCycle = db.cycle
			r.sufFrom = append([]byte(nil), end...)
		}
	}
	if wrapped {
		db.cycle++
		db.cursor = nil
	} else {
		db.cursor = end
	}
	db.liveBytes -= colBytes
	if db.liveBytes < 0 {
		db.liveBytes = 0
	}
	var live []*row
	for _, r := range db.rows {
		if db.rowDeadLocked(r) {
			r.release(db.nvm)
			continue
		}
		live = append(live, r)
	}
	db.rows = live
	db.cond.Broadcast()
	db.mu.Unlock()
	db.st.AddCompaction(time.Since(start))
}

// columnEntry is one extracted entry of a column.
type columnEntry struct {
	key, value []byte
	seq        uint64
	kind       keys.Kind
}

// colIter streams an extracted column into the L1 merge.
type colIter struct {
	entries []columnEntry
	pos     int
}

func (c *colIter) SeekToFirst() { c.pos = 0 }
func (c *colIter) Seek(k []byte) {
	c.pos = 0
	for c.pos < len(c.entries) && bytes.Compare(c.entries[c.pos].key, k) < 0 {
		c.pos++
	}
}
func (c *colIter) Next()           { c.pos++ }
func (c *colIter) Valid() bool     { return c.pos < len(c.entries) }
func (c *colIter) Key() []byte     { return c.entries[c.pos].key }
func (c *colIter) Value() []byte   { return c.entries[c.pos].value }
func (c *colIter) Seq() uint64     { return c.entries[c.pos].seq }
func (c *colIter) Kind() keys.Kind { return c.entries[c.pos].kind }

// consumedPredicate returns the already-consumed test for a row given a
// snapshot of the column cursor state (see consumedLocked).
func consumedPredicate(r *row, cycle int, cursor []byte) func(key []byte) bool {
	switch cycle - r.joinCycle {
	case 0:
		// Only keys in [sufFrom, cursor) are consumed; the sweep starts
		// at cursor, so nothing ahead of it is consumed yet.
		return func([]byte) bool { return false }
	case 1:
		suf := r.sufFrom
		return func(key []byte) bool {
			return suf == nil || bytes.Compare(key, suf) >= 0
		}
	default:
		return func([]byte) bool { return true }
	}
}

// filteredIter skips entries the predicate marks consumed.
type filteredIter struct {
	in   *rowIter
	skip func(key []byte) bool
}

func (f *filteredIter) settle() {
	for f.in.Valid() && f.skip(f.in.Key()) {
		f.in.Next()
	}
}
func (f *filteredIter) SeekToFirst()    { f.in.SeekToFirst(); f.settle() }
func (f *filteredIter) Seek(k []byte)   { f.in.Seek(k); f.settle() }
func (f *filteredIter) Next()           { f.in.Next(); f.settle() }
func (f *filteredIter) Valid() bool     { return f.in.Valid() }
func (f *filteredIter) Key() []byte     { return f.in.Key() }
func (f *filteredIter) Value() []byte   { return f.in.Value() }
func (f *filteredIter) Seq() uint64     { return f.in.Seq() }
func (f *filteredIter) Kind() keys.Kind { return f.in.Kind() }

// Get returns the newest live value: memtables, then the matrix container
// rows newest-first (paying row deserialization), then L1+.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.st.CountGet()
	db.mu.Lock()
	mem := db.mem
	imms := append([]*handle(nil), db.imms...)
	rows := append([]*row(nil), db.rows...)
	db.mu.Unlock()

	if v, _, kind, ok := mem.mt.Get(key); ok {
		return finishGet(v, kind)
	}
	for i := len(imms) - 1; i >= 0; i-- { // newest first
		if v, _, kind, ok := imms[i].mt.Get(key); ok {
			return finishGet(v, kind)
		}
	}
	for _, r := range rows {
		db.mu.Lock()
		consumed := db.consumedLocked(r, key)
		db.mu.Unlock()
		if consumed {
			continue
		}
		if v, _, kind, ok := r.get(key, db.st); ok {
			return finishGet(v, kind)
		}
	}
	if v, _, kind, ok := db.lsm.Get(key); ok {
		return finishGet(v, kind)
	}
	return nil, kvstore.ErrNotFound
}

func finishGet(v []byte, kind keys.Kind) ([]byte, error) {
	if kind == keys.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Scan walks live keys ≥ start in order. Rows are included in full; the
// visibility wrapper collapses duplicates with L1+ copies (same versions).
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	db.st.CountScan()
	db.mu.Lock()
	sources := []iterx.Iterator{db.mem.mt.NewIterator()}
	for _, h := range db.imms {
		sources = append(sources, h.mt.NewIterator())
	}
	for _, r := range db.rows {
		sources = append(sources, r.newIter(db.st))
	}
	db.mu.Unlock()
	sources = append(sources, db.lsm.Iterators()...)
	it := iterx.NewVisible(iterx.NewMerging(sources...))
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

// Flush forces the memtable into the container and drains compactions.
func (db *DB) Flush() error {
	db.writeMu.Lock()
	db.mu.Lock()
	needRotate := !db.mem.mt.Empty()
	db.mu.Unlock()
	if needRotate {
		for {
			db.mu.Lock()
			if len(db.imms) < maxImms {
				fresh, err := db.newHandle()
				if err != nil {
					db.mu.Unlock()
					db.writeMu.Unlock()
					return err
				}
				db.imms = append(db.imms, db.mem)
				db.mem = fresh
				db.cond.Broadcast()
				db.mu.Unlock()
				break
			}
			db.cond.Wait()
			db.mu.Unlock()
		}
	}
	db.writeMu.Unlock()
	db.mu.Lock()
	for len(db.imms) > 0 && !db.closed {
		db.cond.Wait()
	}
	db.mu.Unlock()
	db.lsm.WaitIdle()
	return nil
}

// Stats returns cost accounting with device traffic attached.
func (db *DB) Stats() stats.Snapshot {
	s := db.st.Snapshot()
	nc := db.nvm.Counters()
	dc := db.disk.Counters()
	s.AttachDevices(
		stats.DeviceCounters{Name: nc.Name, BytesRead: nc.BytesRead, BytesWritten: nc.BytesWritten},
		stats.DeviceCounters{Name: dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten},
	)
	return s
}

// ResetCounters clears device and cost counters between bench phases.
func (db *DB) ResetCounters() {
	db.dram.ResetCounters()
	db.nvm.ResetCounters()
	db.disk.ResetCounters()
	db.st.Reset()
}

// ContainerBytes returns the live (unconsumed) bytes in the matrix
// container (diagnostics).
func (db *DB) ContainerBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.liveBytes
}

// Close shuts the store down.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.wg.Wait()
	db.lsm.Close()
	return nil
}

var _ kvstore.Store = (*DB)(nil)
