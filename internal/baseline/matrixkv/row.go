// Package matrixkv reimplements MatrixKV (Yao et al., ATC'20) as the
// MioDB paper evaluates it: the first LSM level is replaced by a *matrix
// container* in NVM — rows are serialized, sorted runs flushed from the
// DRAM memtable, with in-DRAM sparse indexes — and a fine-grained *column
// compaction* merges one key-range column of all rows at a time into L1
// SSTables, bypassing L0 entirely.
//
// Cost structure reproduced, per the paper's §2.3/§3.1:
//
//   - Memtable flushes serialize into rows (cheaper than a full SSTable
//     path, but still real serialization on NVM).
//   - Reads touching the container deserialize row segments (the large-L0
//     deserialization cost the paper calls out).
//   - Column compactions are small, so stalls are short — but the write
//     path still throttles when the container outgrows its budget, which
//     is where MatrixKV's remaining cumulative stalls come from.
package matrixkv

import (
	"bytes"
	"encoding/binary"
	"sort"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
)

// rowIndexStride is how many entries share one index point. The paper's
// matrix container keeps its row indexes in DRAM ("on-DRAM indexes for
// the matrix container"); indexing every entry makes point probes a DRAM
// binary search plus at most one NVM entry deserialization, which is the
// cost model the paper's read results imply.
const rowIndexStride = 1

// row is one serialized run of the matrix container: sorted entries in an
// NVM region with a sparse in-DRAM index ("on-DRAM indexes for the matrix
// container"). Row data is immutable; column compaction consumes logical
// key ranges tracked by cycle arithmetic in the container.
type row struct {
	id     uint64
	region *vaddr.Region
	size   int64

	// segs maps the row's dense logical byte stream onto its region
	// allocations: segment i covers logical [i*chunkSize, …).
	segs []vaddr.Addr

	// Sparse index: the key and byte offset of every stride-th entry,
	// plus a terminator at the end offset.
	indexKeys [][]byte
	indexOffs []int64

	count          int
	minKey, maxKey []byte
	minSeq, maxSeq uint64

	// Consumption state (guarded by the container mutex): the row joined
	// during column cycle joinCycle with the column cursor at sufFrom;
	// see consumed() in matrixkv.go for the covering rule.
	joinCycle int
	sufFrom   []byte
	dead      bool
}

// entry layout: [u32 klen][u32 vlen][u64 trailer][key][value], 8-aligned
// per allocation chunk rules are avoided by writing the row as one blob
// across chunk-sized segments.
const entryHeader = 16

// buildRow serializes a memtable into a fresh NVM row. The encode loop is
// charged as serialization time; the NVM write as device traffic.
func buildRow(dev *nvm.Device, id uint64, mt *memtable.MemTable, chunkSize int, st *stats.Recorder) *row {
	start := time.Now()
	r := &row{id: id, region: dev.NewRegion(chunkSize)}
	chunkSize = r.region.ChunkSize() // rounded to a power of two
	var buf []byte
	it := mt.NewIterator()
	n := 0
	var off int64
	writeSeg := func(seg []byte) {
		addr, err := r.region.Alloc(chunkSize)
		if err != nil {
			panic(err)
		}
		r.region.Write(addr, seg)
		r.segs = append(r.segs, addr)
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k, v := it.Key(), it.Value()
		if n%rowIndexStride == 0 {
			r.indexKeys = append(r.indexKeys, append([]byte(nil), k...))
			r.indexOffs = append(r.indexOffs, off+int64(len(buf)))
		}
		var hdr [entryHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(v)))
		binary.LittleEndian.PutUint64(hdr[8:16], keys.Trailer(it.Seq(), it.Kind()))
		buf = append(buf, hdr[:]...)
		buf = append(buf, k...)
		buf = append(buf, v...)
		if r.minKey == nil {
			r.minKey = append([]byte(nil), k...)
		}
		r.maxKey = append(r.maxKey[:0], k...)
		if s := it.Seq(); r.minSeq == 0 || s < r.minSeq {
			r.minSeq = s
		}
		if s := it.Seq(); s > r.maxSeq {
			r.maxSeq = s
		}
		n++
		// Write out in chunk-size segments so entries pack densely.
		for len(buf) >= chunkSize {
			writeSeg(buf[:chunkSize])
			buf = buf[chunkSize:]
			off += int64(chunkSize)
		}
	}
	if len(buf) > 0 {
		writeSeg(buf)
		off += int64(len(buf))
	}
	r.count = n
	r.size = off
	r.indexKeys = append(r.indexKeys, nil) // terminator
	r.indexOffs = append(r.indexOffs, off)
	if st != nil {
		st.AddSerialize(time.Since(start))
	}
	return r
}

// readAt returns n bytes at logical offset off. Row blobs are written in
// dense chunk-size segments, so a logical range may span segments.
func (r *row) readAt(off int64, n int) []byte {
	out := make([]byte, 0, n)
	chunk := int64(r.region.ChunkSize())
	for n > 0 {
		seg := r.segs[off/chunk]
		inSeg := int(chunk - off%chunk)
		if inSeg > n {
			inSeg = n
		}
		out = append(out, r.region.Read(seg.Add(off%chunk), inSeg)...)
		off += int64(inSeg)
		n -= inSeg
	}
	return out
}

// rowIter decodes a row sequentially from a sparse-index position. It is
// the deserialization path: every decoded segment charges the clock.
type rowIter struct {
	r   *row
	st  *stats.Recorder
	off int64

	key   []byte
	value []byte
	seq   uint64
	kind  keys.Kind
	valid bool
}

func (r *row) newIter(st *stats.Recorder) *rowIter { return &rowIter{r: r, st: st} }

// SeekToFirst positions at the row's first entry.
func (it *rowIter) SeekToFirst() {
	it.off = 0
	it.valid = it.r.count > 0
	if it.valid {
		it.decode()
	}
}

// Seek positions at the first entry with key ≥ target, using the sparse
// index to skip ahead and decoding forward from there.
func (it *rowIter) Seek(target []byte) {
	// Binary search the sparse index for the last point strictly before
	// target. A point with key == target may sit in the middle of that
	// key's version run (versions order newest-first), so starting there
	// would skip the newer versions; starting strictly before the key
	// guarantees the scan meets the newest version first.
	lo, hi := 0, len(it.r.indexKeys)-1 // last is terminator
	pos := 0
	for lo < hi {
		mid := (lo + hi) / 2
		if it.r.indexKeys[mid] != nil && bytes.Compare(it.r.indexKeys[mid], target) < 0 {
			pos = mid
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.off = it.r.indexOffs[pos]
	it.valid = it.off < it.r.size
	if it.valid {
		it.decode()
		for it.valid && bytes.Compare(it.key, target) < 0 {
			it.Next()
		}
	}
}

// decode reads the entry at the current offset.
func (it *rowIter) decode() {
	start := time.Now()
	hdr := it.r.readAt(it.off, entryHeader)
	klen := int(binary.LittleEndian.Uint32(hdr[0:4]))
	vlen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	seq, kind := keys.UnpackTrailer(binary.LittleEndian.Uint64(hdr[8:16]))
	body := it.r.readAt(it.off+entryHeader, klen+vlen)
	it.key = body[:klen]
	it.value = body[klen:]
	it.seq, it.kind = seq, kind
	if it.st != nil {
		it.st.AddDeserialize(time.Since(start))
	}
}

// Next advances one entry.
func (it *rowIter) Next() {
	if !it.valid {
		return
	}
	it.off += entryHeader + int64(len(it.key)+len(it.value))
	if it.off >= it.r.size {
		it.valid = false
		return
	}
	it.decode()
}

// Valid reports whether positioned on an entry.
func (it *rowIter) Valid() bool { return it.valid }

// Key returns the current user key.
func (it *rowIter) Key() []byte { return it.key }

// Value returns the current value.
func (it *rowIter) Value() []byte { return it.value }

// Seq returns the current sequence number.
func (it *rowIter) Seq() uint64 { return it.seq }

// Kind returns the current entry kind.
func (it *rowIter) Kind() keys.Kind { return it.kind }

var _ iterx.Iterator = (*rowIter)(nil)

// get returns the newest version of key in the row (ignoring consumption
// state, which the container checks). The in-DRAM index answers presence
// exactly, so a miss costs no NVM access at all and a hit deserializes
// exactly one entry.
func (r *row) get(key []byte, st *stats.Recorder) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	if r.count == 0 || bytes.Compare(key, r.minKey) < 0 || bytes.Compare(key, r.maxKey) > 0 {
		return nil, 0, 0, false
	}
	// First index entry with key ≥ target; entries order (key asc, seq
	// desc), so an exact match here is the newest version.
	n := len(r.indexKeys) - 1 // last is the terminator
	i := sort.Search(n, func(i int) bool { return bytes.Compare(r.indexKeys[i], key) >= 0 })
	if i >= n || !bytes.Equal(r.indexKeys[i], key) {
		return nil, 0, 0, false
	}
	it := r.newIter(st)
	it.off = r.indexOffs[i]
	it.valid = true
	it.decode()
	return it.Value(), it.Seq(), it.Kind(), true
}

// release frees the row's NVM region.
func (r *row) release(dev *nvm.Device) {
	dev.Release(r.region)
}
