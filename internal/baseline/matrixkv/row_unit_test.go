package matrixkv

import (
	"fmt"
	"math/rand"
	"testing"

	"miodb/internal/keys"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/vaddr"
)

func TestRowBuildAndLookup(t *testing.T) {
	space := vaddr.NewSpace()
	dram := nvm.NewDevice(space, nvm.DRAMProfile())
	nv := nvm.NewDevice(space, nvm.NVMProfile())
	mt, _ := memtable.New(dram, 1<<30, 8<<10)
	rnd := rand.New(rand.NewSource(1))
	golden := map[string]string{}
	goldenSeq := map[string]uint64{}
	for seq := uint64(1); seq <= 2000; seq++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(700))
		v := fmt.Sprintf("val-%d-%d", seq, rnd.Intn(1000))
		if err := mt.Add([]byte(k), []byte(v), seq, keys.KindSet); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
		goldenSeq[k] = seq
	}
	r := buildRow(nv, 1, mt, 8<<10, nil)
	if r.count != 2000 {
		t.Fatalf("row count = %d", r.count)
	}
	for k, v := range golden {
		val, seq, _, ok := r.get([]byte(k), nil)
		if !ok {
			t.Fatalf("row.get(%s) missing", k)
		}
		if string(val) != v || seq != goldenSeq[k] {
			t.Fatalf("row.get(%s) = %q seq=%d, want %q seq=%d", k, val, seq, v, goldenSeq[k])
		}
	}
	// Full iteration in order.
	it := r.newIter(nil)
	n := 0
	var prevKey []byte
	var prevSeq uint64
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prevKey != nil && keys.Compare(prevKey, prevSeq, it.Key(), it.Seq()) >= 0 {
			t.Fatalf("row iteration out of order at %q", it.Key())
		}
		prevKey = append(prevKey[:0], it.Key()...)
		prevSeq = it.Seq()
		n++
	}
	if n != 2000 {
		t.Fatalf("iterated %d entries", n)
	}
}
